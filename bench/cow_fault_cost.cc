// E2 — "fork is slow even after it returns" (§4): the copy-on-write tax.
//
// fork's headline latency hides deferred cost: every first write to an
// inherited page traps, copies 4KiB, and remaps. This bench measures write
// latency per page over a fixed buffer in three regimes:
//
//   warm      : pages private and writable (no kernel involvement)
//   demand    : fresh mapping (minor fault, zero-fill)  — the spawn child's tax
//   cow-child : just-forked child rewriting inherited pages — fork's tax
//   cow-parent: the parent re-writing after the child dies (still COW-marked)
//
// Expected shape: cow-child ≈ demand + copy ≫ warm; and the parent pays too,
// even though "it did nothing". Real kernel, timed in the child, reported via
// pipe.
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <vector>

#include "src/benchlib/memtouch.h"
#include "src/benchlib/table.h"
#include "src/common/clock.h"
#include "src/common/pipe.h"
#include "src/common/string_util.h"
#include "src/common/syscall.h"

namespace forklift {
namespace {

constexpr size_t kPage = 4096;

double WritePassNsPerPage(uint8_t* data, size_t bytes) {
  Stopwatch sw;
  for (size_t off = 0; off < bytes; off += kPage) {
    data[off] = 1;
  }
  return static_cast<double>(sw.ElapsedNanos()) / (static_cast<double>(bytes) / kPage);
}

double DemandFaultNsPerPage(size_t bytes) {
  void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) {
    return -1;
  }
#ifdef MADV_NOHUGEPAGE
  ::madvise(p, bytes, MADV_NOHUGEPAGE);
#endif
  double ns = WritePassNsPerPage(static_cast<uint8_t*>(p), bytes);
  ::munmap(p, bytes);
  return ns;
}

// Forks; the child rewrites the buffer (all COW) and reports ns/page.
double CowChildNsPerPage(uint8_t* data, size_t bytes) {
  auto pipe = MakePipe();
  if (!pipe.ok()) {
    return -1;
  }
  pid_t pid = ::fork();
  if (pid < 0) {
    return -1;
  }
  if (pid == 0) {
    double ns = WritePassNsPerPage(data, bytes);
    (void)WriteFull(pipe->write_end.get(), &ns, sizeof(ns));
    _exit(0);
  }
  pipe->write_end.Reset();
  double ns = -1;
  (void)ReadFull(pipe->read_end.get(), &ns, sizeof(ns));
  int status;
  ::waitpid(pid, &status, 0);
  return ns;
}

// Forks a child that idles until killed; the PARENT rewrites its own pages
// (write-protected by the fork) and pays the COW tax for owning memory it
// shared with a child it never asked to share with.
double CowParentNsPerPage(uint8_t* data, size_t bytes) {
  auto pipe = MakePipe();
  if (!pipe.ok()) {
    return -1;
  }
  pid_t pid = ::fork();
  if (pid < 0) {
    return -1;
  }
  if (pid == 0) {
    // Signal readiness, then wait for the parent to finish measuring.
    char c = 'r';
    (void)WriteFull(pipe->write_end.get(), &c, 1);
    pause();
    _exit(0);
  }
  pipe->write_end.Reset();
  char c;
  (void)ReadFull(pipe->read_end.get(), &c, 1);
  double ns = WritePassNsPerPage(data, bytes);
  ::kill(pid, SIGKILL);
  int status;
  ::waitpid(pid, &status, 0);
  return ns;
}

}  // namespace
}  // namespace forklift

int main() {
  using namespace forklift;

  PrintBanner("E2: the COW tax — per-page write latency after fork (real kernel)");
  std::printf("all cells in ns/page (4KiB); median of 9 runs\n\n");

  const std::vector<size_t> sizes_mib = {16, 64, 256};
  TablePrinter table({"buffer", "warm", "demand_zero", "cow_child", "cow_parent",
                      "cow_child/warm"});

  for (size_t mib : sizes_mib) {
    size_t bytes = mib << 20;
    HeapBallast ballast;
    if (!ballast.Resize(bytes).ok()) {
      std::fprintf(stderr, "ballast failed\n");
      return 1;
    }

    auto median_of = [](std::vector<double> v) {
      std::sort(v.begin(), v.end());
      return v[v.size() / 2];
    };
    std::vector<double> warm, demand, cow_child, cow_parent;
    for (int i = 0; i < 9; ++i) {
      ballast.TouchAll();
      warm.push_back(WritePassNsPerPage(ballast.data(), bytes));
      demand.push_back(DemandFaultNsPerPage(bytes));
      ballast.TouchAll();
      cow_child.push_back(CowChildNsPerPage(ballast.data(), bytes));
      ballast.TouchAll();
      cow_parent.push_back(CowParentNsPerPage(ballast.data(), bytes));
    }
    double w = median_of(warm), d = median_of(demand), cc = median_of(cow_child),
           cp = median_of(cow_parent);
    table.AddRow({HumanBytes(bytes), TablePrinter::Cell(w, 0), TablePrinter::Cell(d, 0),
                  TablePrinter::Cell(cc, 0), TablePrinter::Cell(cp, 0),
                  TablePrinter::Cell(cc / w, 1)});
  }

  table.Print();
  std::printf("\nShape check: cow_child and cow_parent ≫ warm (trap + 4KiB copy per page);\n"
              "the parent pays even though only the child was 'created'. CSV follows.\n\n%s",
              table.ToCsv().c_str());
  return 0;
}
