// E1 — Figure 1 of "A fork() in the road" (HotOS'19), on the real kernel.
//
// Measures the latency of creating (and reaping) a minimal child process —
// /bin/true — as a function of how much DIRTY anonymous memory the parent
// holds, for each creation primitive:
//
//   fork+exec     : cost grows with the parent's footprint (page-table copy)
//   vfork+exec    : flat (shares the address space, copies nothing)
//   posix_spawn   : flat (vfork/CLONE_VM under the hood in glibc)
//   fork (only)   : the kernel fork cost in isolation (child exits w/o exec)
//
// Expected shape (the paper's): fork's curve rises roughly linearly with the
// dirty heap; vfork and posix_spawn stay within noise of their 0-byte cost.
// Absolute values differ from the paper's 2019 testbed; the ordering and the
// crossover (fork worse than spawn everywhere, increasingly so) must hold.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/benchlib/memtouch.h"
#include "src/benchlib/table.h"
#include "src/common/clock.h"
#include "src/common/stats.h"
#include "src/common/string_util.h"
#include "src/spawn/spawner.h"

namespace forklift {
namespace {

// One spawn+wait of /bin/true via the Spawner with the given backend.
double SpawnTrueMillis(SpawnBackendKind kind) {
  Stopwatch sw;
  auto child = Spawner("/bin/true")
                   .SetStdout(Stdio::Null())
                   .SetStderr(Stdio::Null())
                   .SetBackend(kind)
                   .Spawn();
  if (!child.ok()) {
    std::fprintf(stderr, "spawn failed: %s\n", child.error().ToString().c_str());
    return -1;
  }
  auto st = child->Wait();
  if (!st.ok() || !st->Success()) {
    std::fprintf(stderr, "child failed\n");
    return -1;
  }
  return sw.ElapsedMillis();
}

// Raw fork (no exec): child _exits immediately. Isolates the kernel's
// address-space duplication cost.
double ForkOnlyMillis() {
  Stopwatch sw;
  pid_t pid = ::fork();
  if (pid < 0) {
    return -1;
  }
  if (pid == 0) {
    _exit(0);
  }
  int status;
  ::waitpid(pid, &status, 0);
  return sw.ElapsedMillis();
}

struct Series {
  const char* name;
  SampleStats stats;
};

}  // namespace
}  // namespace forklift

int main() {
  using namespace forklift;

  PrintBanner("E1 / Figure 1: process-creation latency vs. parent dirty memory (real kernel)");
  std::printf("child = /bin/true; median of N iterations per cell; times in milliseconds\n\n");

  const std::vector<size_t> heap_mib = {0, 16, 64, 128, 256, 512, 1024};
  TablePrinter table({"heap_dirty", "fork+exec_ms", "fork_p99_ms", "vfork+exec_ms",
                      "posix_spawn_ms", "fork_only_ms", "fork/spawn_ratio"});

  HeapBallast ballast;
  for (size_t mib : heap_mib) {
    if (!ballast.Resize(mib << 20).ok()) {
      std::fprintf(stderr, "ballast resize to %zu MiB failed\n", mib);
      return 1;
    }
    int iters = mib >= 512 ? 7 : (mib >= 128 ? 11 : 21);

    SampleStats fork_exec, vfork_exec, pspawn, fork_only;
    for (int i = 0; i < iters; ++i) {
      // Re-dirty so each fork sees a fully-resident writable heap (earlier
      // forks downgraded it to COW read-only).
      ballast.TouchAll();
      fork_exec.Add(SpawnTrueMillis(SpawnBackendKind::kForkExec));
      ballast.TouchAll();
      vfork_exec.Add(SpawnTrueMillis(SpawnBackendKind::kVfork));
      ballast.TouchAll();
      pspawn.Add(SpawnTrueMillis(SpawnBackendKind::kPosixSpawn));
      ballast.TouchAll();
      fork_only.Add(ForkOnlyMillis());
    }
    double ratio = fork_exec.Median() / pspawn.Median();
    table.AddRow({HumanBytes(mib << 20), TablePrinter::Cell(fork_exec.Median(), 3),
                  TablePrinter::Cell(fork_exec.Percentile(99), 3),
                  TablePrinter::Cell(vfork_exec.Median(), 3),
                  TablePrinter::Cell(pspawn.Median(), 3),
                  TablePrinter::Cell(fork_only.Median(), 3), TablePrinter::Cell(ratio, 1)});
    std::fprintf(stderr, "  [%s done]\n", HumanBytes(mib << 20).c_str());
  }

  table.Print();
  std::printf("\nPaper-shape check: fork+exec and fork_only should grow with heap size;\n"
              "vfork+exec and posix_spawn should stay flat. CSV follows.\n\n%s",
              table.ToCsv().c_str());
  return 0;
}
