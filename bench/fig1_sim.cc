// E1s — Figure 1, reproduced on the deterministic procsim kernel.
//
// Same sweep as bench/fig1_process_creation but on the simulated process
// subsystem, which (a) extends the range to 16 GiB without caring about host
// RAM, (b) attributes the fork cost to its mechanisms (PTE copies vs. page-
// table page allocations vs. task setup), and (c) is bit-for-bit reproducible.
// The simulated curves must match the real ones in SHAPE: fork linear in
// resident pages, vfork and spawn flat.
#include <cstdio>
#include <vector>

#include "src/benchlib/table.h"
#include "src/common/string_util.h"
#include "src/procsim/kernel.h"

namespace forklift::procsim {
namespace {

ProgramImage TrueImage() {
  ProgramImage img;
  img.name = "true";
  img.text_bytes = 256 * 1024;
  img.data_bytes = 64 * 1024;
  img.stack_bytes = 64 * 1024;
  img.touched_at_start_bytes = 32 * 1024;
  return img;
}

// Measured simulated cost of one create+exit+wait cycle under `op`.
template <typename Op>
uint64_t MeasureNs(SimKernel& kernel, Op&& op) {
  uint64_t before = kernel.clock().now_ns();
  op();
  return kernel.clock().now_ns() - before;
}

}  // namespace
}  // namespace forklift::procsim

int main() {
  using namespace forklift;
  using namespace forklift::procsim;

  PrintBanner("E1s / Figure 1 (simulated): creation cost vs. parent dirty memory");
  std::printf("deterministic procsim kernel; costs in simulated microseconds\n\n");

  const std::vector<uint64_t> heap_mib = {0, 16, 64, 256, 1024, 4096, 16384};
  TablePrinter table({"heap_dirty", "fork_us", "vfork_us", "spawn_us", "pte_copies",
                      "pt_pages", "fork/spawn"});

  for (uint64_t mib : heap_mib) {
    SimKernel::Config config;
    config.phys_frames = 32ull << 20;  // 128 GiB: never the bottleneck here
    SimKernel kernel(config);
    auto init = kernel.CreateInit(TrueImage());
    if (!init.ok()) {
      std::fprintf(stderr, "init failed\n");
      return 1;
    }
    Pid parent = *init;
    if (mib > 0) {
      auto base = kernel.MapAnon(parent, mib << 20, "ballast");
      if (!base.ok() || !kernel.Touch(parent, *base, mib << 20, true).ok()) {
        std::fprintf(stderr, "ballast failed\n");
        return 1;
      }
    }

    uint64_t pte_before = kernel.clock().ops_for(CostKind::kPteCopy);
    uint64_t alloc_before = kernel.clock().ops_for(CostKind::kPtePageAlloc);
    uint64_t fork_ns = MeasureNs(kernel, [&] {
      auto child = kernel.Fork(parent);
      if (child.ok()) {
        (void)kernel.Exit(*child, 0);
        (void)kernel.Wait(parent, *child);
      }
    });
    uint64_t pte_copies = kernel.clock().ops_for(CostKind::kPteCopy) - pte_before;
    uint64_t pt_pages = kernel.clock().ops_for(CostKind::kPtePageAlloc) - alloc_before;

    uint64_t vfork_ns = MeasureNs(kernel, [&] {
      auto child = kernel.Vfork(parent);
      if (child.ok()) {
        (void)kernel.Exit(*child, 0, /*flush_streams=*/false);
        (void)kernel.Wait(parent, *child);
      }
    });

    uint64_t spawn_ns = MeasureNs(kernel, [&] {
      auto child = kernel.Spawn(parent, TrueImage());
      if (child.ok()) {
        (void)kernel.Exit(*child, 0);
        (void)kernel.Wait(parent, *child);
      }
    });

    table.AddRow({HumanBytes(mib << 20), TablePrinter::Cell(fork_ns / 1e3, 1),
                  TablePrinter::Cell(vfork_ns / 1e3, 1), TablePrinter::Cell(spawn_ns / 1e3, 1),
                  TablePrinter::Cell(pte_copies), TablePrinter::Cell(pt_pages),
                  TablePrinter::Cell(static_cast<double>(fork_ns) / spawn_ns, 1)});
  }

  table.Print();
  std::printf(
      "\nShape check: fork_us linear in heap (pte_copies column IS the mechanism);\n"
      "vfork_us and spawn_us constant. CSV follows.\n\n%s",
      table.ToCsv().c_str());
  return 0;
}
