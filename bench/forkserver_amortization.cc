// E5 — fork servers and worker pools (§6): what the ecosystem's workaround
// actually buys.
//
// Four ways to get 'a process ran a task' semantics, measured as sustained
// requests/second over a fixed batch:
//
//   direct fork+exec      : pay full creation per task, from THIS (large) process
//   direct posix_spawn    : pay cheap creation per task
//   fork server (zygote)  : creation happens in a small helper process
//   warm worker pool      : no creation at all after startup
//
// To make the zygote's advantage visible the client process carries dirty
// ballast (the Android/AFL scenario: the app is big, the zygote is small).
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "src/benchlib/memtouch.h"
#include "src/benchlib/table.h"
#include "src/common/clock.h"
#include "src/common/string_util.h"
#include "src/forkserver/client.h"
#include "src/forkserver/pool.h"
#include "src/forkserver/server.h"
#include "src/spawn/spawner.h"

namespace forklift {
namespace {

constexpr int kTasks = 60;

double DirectRate(SpawnBackendKind kind) {
  Stopwatch sw;
  for (int i = 0; i < kTasks; ++i) {
    auto child = Spawner("/bin/true").SetBackend(kind).Spawn();
    if (!child.ok() || !child->Wait().ok()) {
      return -1;
    }
  }
  return kTasks / sw.ElapsedSeconds();
}

double ForkServerRate(ForkServerClient& client) {
  Stopwatch sw;
  for (int i = 0; i < kTasks; ++i) {
    Spawner s("/bin/true");
    auto child = client.Spawn(s);
    if (!child.ok() || !child->Wait().ok()) {
      return -1;
    }
  }
  return kTasks / sw.ElapsedSeconds();
}

double PoolRate(ShellWorkerPool& pool) {
  Stopwatch sw;
  for (int i = 0; i < kTasks; ++i) {
    auto r = pool.Execute("true");
    if (!r.ok() || r->exit_code != 0) {
      return -1;
    }
  }
  return kTasks / sw.ElapsedSeconds();
}

// N threads issuing spawn+wait, either all multiplexed over one shared
// channel (its internal mutex serializes them) or each on a private channel.
double ThreadedRate(std::vector<ForkServerClient*>& clients, int threads) {
  std::atomic<uint64_t> completed{0};
  std::vector<std::thread> workers;
  Stopwatch sw;
  for (int t = 0; t < threads; ++t) {
    ForkServerClient* client = clients[static_cast<size_t>(t) % clients.size()];
    workers.emplace_back([client, &completed] {
      for (int i = 0; i < kTasks / 3; ++i) {
        Spawner s("/bin/true");
        auto child = client->Spawn(s);
        if (child.ok() && child->Wait().ok()) {
          ++completed;
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  return static_cast<double>(completed.load()) / sw.ElapsedSeconds();
}

void ChannelContentionSection(ForkServerClient& primary) {
  PrintBanner("E5b: shared channel vs private channels (3 client threads)");
  auto c1 = primary.NewChannel();
  auto c2 = primary.NewChannel();
  auto c3 = primary.NewChannel();
  if (!c1.ok() || !c2.ok() || !c3.ok()) {
    std::fprintf(stderr, "channel setup failed\n");
    return;
  }
  std::vector<ForkServerClient*> shared = {c1->get()};
  std::vector<ForkServerClient*> priv = {c1->get(), c2->get(), c3->get()};
  TablePrinter table({"layout", "spawns/s"});
  table.AddRow({"1 shared channel", TablePrinter::Cell(ThreadedRate(shared, 3), 0)});
  table.AddRow({"3 private channels", TablePrinter::Cell(ThreadedRate(priv, 3), 0)});
  table.Print();
  std::printf("(the zygote itself is single-threaded; private channels remove only the\n"
              " client-side lock — the residual gap is the server's serialization)\n");
}

}  // namespace
}  // namespace forklift

int main() {
  using namespace forklift;

  PrintBanner("E5: zygote & pool amortization — /bin/true tasks per second");
  std::printf("client ballast varies; the fork server was started while small\n\n");

  // Start the zygote FIRST, before the ballast exists — that is the entire
  // trick: its forks stay cheap no matter how big we get.
  auto handle = StartForkServerProcess();
  if (!handle.ok()) {
    std::fprintf(stderr, "fork server start failed\n");
    return 1;
  }
  ForkServerClient client(std::move(handle->client_sock));

  ShellWorkerPool pool;
  if (!pool.Start({.workers = 2}).ok()) {
    std::fprintf(stderr, "pool start failed\n");
    return 1;
  }

  TablePrinter table({"client_ballast", "fork+exec/s", "posix_spawn/s", "forkserver/s",
                      "warm_pool/s", "zygote_vs_fork"});

  HeapBallast ballast;
  for (size_t mib : {0, 128, 512}) {
    if (!ballast.Resize(mib << 20).ok()) {
      std::fprintf(stderr, "ballast failed\n");
      return 1;
    }
    double fork_rate = DirectRate(SpawnBackendKind::kForkExec);
    ballast.TouchAll();
    double spawn_rate = DirectRate(SpawnBackendKind::kPosixSpawn);
    ballast.TouchAll();
    double server_rate = ForkServerRate(client);
    double pool_rate = PoolRate(pool);
    table.AddRow({HumanBytes(mib << 20), TablePrinter::Cell(fork_rate, 0),
                  TablePrinter::Cell(spawn_rate, 0), TablePrinter::Cell(server_rate, 0),
                  TablePrinter::Cell(pool_rate, 0),
                  TablePrinter::Cell(server_rate / fork_rate, 1)});
    std::fprintf(stderr, "  [%s done]\n", HumanBytes(mib << 20).c_str());
  }

  (void)pool.Stop();
  table.Print();
  ChannelContentionSection(client);
  (void)client.Shutdown();
  (void)WaitForExit(handle->server_pid);
  std::printf("\nShape check: fork+exec/s degrades as the client grows; forkserver/s and\n"
              "warm_pool/s hold steady (zygote_vs_fork ratio grows with ballast).\n"
              "CSV follows.\n\n%s",
              table.ToCsv().c_str());
  return 0;
}
