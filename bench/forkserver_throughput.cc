// Fork-server data-plane throughput: what the v2 pipelined protocol and the
// sharded zygote pool buy over the v1 one-request-per-round-trip channel.
//
// Three configurations spawn-and-wait a short-lived child through a zygote.
// The child runs ~10ms (`/bin/sleep 0.01`): long enough to outlive the spawn
// round trip, the way real children outlive theirs. That is exactly the case
// v1 handles worst — the wait reaches the server while the child is alive and
// parks the whole single-threaded zygote in WaitForExit — and the case the
// v2 parked-wait path turns into a pidfd watch that blocks nobody. (With a
// child that dies faster than the round trip, every mode converges on the
// zygote's raw fork+exec rate and the protocol difference vanishes.)
//
//   v1-blocking        one server process, one LegacyForkServerClient shared
//                      by T threads behind its channel mutex. Every spawn is
//                      a full round trip, and every kWait parks the single-
//                      threaded SERVER in WaitForExit until the child dies —
//                      head-of-line blocking for everyone else on the socket.
//   pipelined          same single server, but a protocol-v2 ForkServerClient:
//                      T threads keep a window of D requests in flight; waits
//                      park server-side on the child's pidfd watch, so fork
//                      work overlaps child lifetimes on one channel.
//   sharded-pipelined  a ShardedForkServer pool (S zygotes, least-outstanding
//                      routing) in front of the same pipelined client path.
//   pipelined-trivial  the pipelined channel on the pure data-plane workload:
//                      /bin/true children, submit→pid only (the server reaps
//                      exits on its pidfd watches). Isolates wire cost from
//                      child lifetime; the baseline for the batched cell.
//   batched-trivial    same workload, but every depth-D window rides ONE
//                      kSpawnBatch frame, and the flat-combining submit queue
//                      plus the server's reply coalescing collapse the wire
//                      to ~one writev per burst in each direction.
//
// Each cell launches a fixed number of spawns and reports aggregate
// spawns/second plus per-op (submit→wait-complete) latency percentiles; the
// op latency at depth D honestly includes pipeline queueing. Every cell also
// reports write-side wire syscalls per spawn (writev+sendmsg deltas from
// forklift_wire_syscalls_total — client AND zygote side, since the metrics
// arena is shared across the fork). `--json <path>` dumps the series as
// BENCH_forkserver_throughput.json; `--quick` shrinks the per-cell spawn
// count for CI smoke runs.
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/benchlib/json_writer.h"
#include "src/benchlib/table.h"
#include "src/common/clock.h"
#include "src/common/stats.h"
#include "src/forkserver/client.h"
#include "src/forkserver/server.h"
#include "src/forkserver/sharded.h"
#include "src/obs/registry.h"
#include "src/spawn/spawner.h"

namespace forklift {
namespace {

struct CellResult {
  std::string mode;
  int threads = 0;
  int shards = 0;
  int depth = 0;
  uint64_t spawns = 0;
  uint64_t failures = 0;
  double seconds = 0;
  double spawns_per_sec = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double wire_write_syscalls_per_spawn = 0;
};

SpawnRequest WorkloadRequest() {
  auto req = Spawner("/bin/sleep").Arg("0.01").BuildRequest();
  if (!req.ok()) {
    std::fprintf(stderr, "BuildRequest: %s\n", req.error().ToString().c_str());
    std::exit(1);
  }
  return std::move(req).value();
}

// The pure data-plane workload: a child that dies immediately, so the cell
// measures the wire, not the child. The *-trivial cells use submit→pid as
// the op (no per-child kWait); the server still reaps every exit promptly on
// its pidfd watches, so nothing accumulates.
SpawnRequest TrivialRequest() {
  auto req = Spawner("/bin/true").BuildRequest();
  if (!req.ok()) {
    std::fprintf(stderr, "BuildRequest: %s\n", req.error().ToString().c_str());
    std::exit(1);
  }
  return std::move(req).value();
}

// Sum of write-side wire syscalls (writev + sendmsg) from the shared metrics
// arena. Both halves of the channel count: the bench forks the zygote after
// the arena exists, so server-side flushes land in the same counters.
uint64_t WireWriteSyscalls() {
  auto& reg = obs::MetricsRegistry::Global();
  return reg.GetCounter("forklift_wire_syscalls_total{op=\"writev\"}").Value() +
         reg.GetCounter("forklift_wire_syscalls_total{op=\"sendmsg\"}").Value();
}

// One thread's share of the cell, v1 style: strictly serial round trips
// through the shared legacy client.
void V1Worker(LegacyForkServerClient* client, const SpawnRequest& req, int ops,
              SampleStats* lat_ms, uint64_t* failures) {
  for (int i = 0; i < ops; ++i) {
    Stopwatch sw;
    auto pid = client->LaunchRequest(req);
    if (!pid.ok()) {
      ++*failures;
      continue;
    }
    auto st = client->WaitRemote(*pid);
    if (!st.ok() || !st->Success()) {
      ++*failures;
      continue;
    }
    lat_ms->Add(sw.ElapsedSeconds() * 1e3);
  }
}

// One thread's share, pipelined: a window of `depth` spawns is submitted
// before the first await, so the zygote's fork work overlaps both the
// channel round trips and the children's lifetimes.
void PipelinedWorker(RemoteSpawnService* service, ForkServerClient* channel,
                     ShardedForkServer* pool, const SpawnRequest& req, int ops, int depth,
                     SampleStats* lat_ms, uint64_t* failures) {
  struct InFlight {
    Stopwatch start;
    pid_t pid = -1;
  };
  int submitted = 0;
  while (submitted < ops) {
    int window = std::min(depth, ops - submitted);
    submitted += window;
    std::vector<InFlight> flights;
    flights.reserve(window);

    if (channel != nullptr) {
      std::vector<std::pair<Stopwatch, ForkServerClient::PendingReply>> launches;
      launches.reserve(window);
      for (int i = 0; i < window; ++i) {
        Stopwatch start;
        auto p = channel->LaunchAsync(req);
        if (!p.ok()) {
          ++*failures;
          continue;
        }
        launches.emplace_back(start, std::move(*p));
      }
      for (auto& [start, p] : launches) {
        auto pid = p.AwaitPid();
        if (!pid.ok()) {
          ++*failures;
          continue;
        }
        flights.push_back({start, *pid});
      }
    } else {
      std::vector<std::pair<Stopwatch, ShardedForkServer::PendingSpawn>> launches;
      launches.reserve(window);
      for (int i = 0; i < window; ++i) {
        Stopwatch start;
        auto p = pool->LaunchAsync(req);
        if (!p.ok()) {
          ++*failures;
          continue;
        }
        launches.emplace_back(start, std::move(*p));
      }
      for (auto& [start, p] : launches) {
        auto pid = p.AwaitPid();
        if (!pid.ok()) {
          ++*failures;
          continue;
        }
        flights.push_back({start, *pid});
      }
    }

    for (const InFlight& flight : flights) {
      auto st = service->WaitRemote(flight.pid);
      if (!st.ok() || !st->Success()) {
        ++*failures;
        continue;
      }
      lat_ms->Add(flight.start.ElapsedSeconds() * 1e3);
    }
  }
}

// One thread's share of a *-trivial cell: windows of `depth` submit→pid ops
// against /bin/true children. `batched` picks between D individual LaunchAsync
// frames per window and one kSpawnBatch frame carrying the whole window — the
// only variable between the two trivial cells, so their ratio is the price of
// per-request framing.
void TrivialWorker(ForkServerClient* channel, const SpawnRequest& req, int ops, int depth,
                   bool batched, SampleStats* lat_ms, uint64_t* failures) {
  int submitted = 0;
  while (submitted < ops) {
    int window = std::min(depth, ops - submitted);
    submitted += window;
    Stopwatch start;
    std::vector<ForkServerClient::PendingReply> pending;
    if (batched) {
      std::vector<SpawnRequest> burst(static_cast<size_t>(window), req);
      auto p = channel->LaunchBatchAsync(burst);
      if (!p.ok()) {
        *failures += static_cast<uint64_t>(window);
        continue;
      }
      pending = std::move(*p);
    } else {
      pending.reserve(static_cast<size_t>(window));
      for (int i = 0; i < window; ++i) {
        auto p = channel->LaunchAsync(req);
        if (!p.ok()) {
          ++*failures;
          continue;
        }
        pending.push_back(std::move(*p));
      }
    }
    for (auto& p : pending) {
      auto pid = p.AwaitPid();
      if (!pid.ok()) {
        ++*failures;
        continue;
      }
      // Whole-window latency attributed to each op: both cells are charged
      // identically, so the per-op numbers stay comparable across the pair.
      lat_ms->Add(start.ElapsedSeconds() * 1e3);
    }
  }
}

CellResult RunCell(const std::string& mode, int threads, int shards, int depth, int total_ops) {
  CellResult cell;
  cell.mode = mode;
  cell.threads = threads;
  cell.shards = shards;
  cell.depth = depth;

  bool trivial = mode == "pipelined-trivial" || mode == "batched-trivial";
  SpawnRequest req = trivial ? TrivialRequest() : WorkloadRequest();
  std::vector<SampleStats> lat(threads);
  std::vector<uint64_t> failures(threads, 0);
  int per_thread = total_ops / threads;
  uint64_t wire_before = WireWriteSyscalls();

  auto run_threads = [&](auto&& body) {
    Stopwatch sw;
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] { body(t); });
    }
    for (auto& w : workers) {
      w.join();
    }
    cell.seconds = sw.ElapsedSeconds();
  };

  if (mode == "v1-blocking") {
    auto handle = StartForkServerProcess();
    if (!handle.ok()) {
      std::fprintf(stderr, "server start: %s\n", handle.error().ToString().c_str());
      std::exit(1);
    }
    LegacyForkServerClient client(std::move(handle->client_sock));
    run_threads([&](int t) { V1Worker(&client, req, per_thread, &lat[t], &failures[t]); });
    (void)client.Shutdown();
    (void)WaitForExit(handle->server_pid);
  } else if (mode == "pipelined" || trivial) {
    auto handle = StartForkServerProcess();
    if (!handle.ok()) {
      std::fprintf(stderr, "server start: %s\n", handle.error().ToString().c_str());
      std::exit(1);
    }
    ForkServerClient client(std::move(handle->client_sock));
    if (trivial) {
      bool batched = mode == "batched-trivial";
      run_threads([&](int t) {
        TrivialWorker(&client, req, per_thread, depth, batched, &lat[t], &failures[t]);
      });
    } else {
      run_threads([&](int t) {
        PipelinedWorker(&client, &client, nullptr, req, per_thread, depth, &lat[t], &failures[t]);
      });
    }
    (void)client.Shutdown();
    (void)WaitForExit(handle->server_pid);
  } else {
    ShardedForkServer::Options opts;
    opts.shards = static_cast<size_t>(shards);
    auto pool = ShardedForkServer::Start(opts);
    if (!pool.ok()) {
      std::fprintf(stderr, "pool start: %s\n", pool.error().ToString().c_str());
      std::exit(1);
    }
    run_threads([&](int t) {
      PipelinedWorker(pool->get(), nullptr, pool->get(), req, per_thread, depth, &lat[t],
                      &failures[t]);
    });
    (void)(*pool)->Shutdown();
  }

  SampleStats all;
  for (const auto& s : lat) {
    for (double x : s.Samples()) {
      all.Add(x);
    }
  }
  for (uint64_t f : failures) {
    cell.failures += f;
  }
  cell.spawns = all.Count();
  cell.spawns_per_sec = cell.seconds > 0 ? static_cast<double>(cell.spawns) / cell.seconds : 0;
  uint64_t wire_delta = WireWriteSyscalls() - wire_before;
  cell.wire_write_syscalls_per_spawn =
      cell.spawns > 0 ? static_cast<double>(wire_delta) / static_cast<double>(cell.spawns) : 0;
  if (!all.Empty()) {
    cell.p50_ms = all.Percentile(50);
    cell.p95_ms = all.Percentile(95);
    cell.p99_ms = all.Percentile(99);
  }
  return cell;
}

}  // namespace
}  // namespace forklift

int main(int argc, char** argv) {
  using namespace forklift;

  std::string json_path;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "forkserver_throughput: --json requires an output path\n");
        return 2;
      }
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json PATH]\n", argv[0]);
      return 2;
    }
  }

  const int ops = quick ? 80 : 400;
  PrintBanner("E8: fork-server data plane — v1 blocking vs pipelined vs sharded");
  std::printf("host has %u hardware threads; %d spawns per cell\n\n",
              std::thread::hardware_concurrency(), ops);

  // The acceptance cell pair: v1 at 4 threads vs sharded+pipelined at 4
  // threads. Depth 8 keeps each channel saturated without stacking enough
  // live children to swamp a small host.
  struct CellSpec {
    const char* mode;
    int threads;
    int shards;
    int depth;
  };
  const CellSpec specs[] = {
      {"v1-blocking", 1, 1, 1},           {"v1-blocking", 4, 1, 1},
      {"pipelined", 1, 1, 8},             {"pipelined", 4, 1, 8},
      {"sharded-pipelined", 4, 2, 8},     {"sharded-pipelined", 4, 4, 8},
      {"pipelined-trivial", 4, 1, 16},    {"batched-trivial", 4, 1, 16},
  };

  std::vector<CellResult> cells;
  TablePrinter table({"mode", "threads", "shards", "depth", "spawns/s", "p50 ms", "p95 ms",
                      "p99 ms", "wr-sys/op", "failures"});
  for (const CellSpec& spec : specs) {
    CellResult cell = RunCell(spec.mode, spec.threads, spec.shards, spec.depth, ops);
    table.AddRow({cell.mode, TablePrinter::Cell(static_cast<uint64_t>(cell.threads)),
                  TablePrinter::Cell(static_cast<uint64_t>(cell.shards)),
                  TablePrinter::Cell(static_cast<uint64_t>(cell.depth)),
                  TablePrinter::Cell(cell.spawns_per_sec, 0), TablePrinter::Cell(cell.p50_ms, 2),
                  TablePrinter::Cell(cell.p95_ms, 2), TablePrinter::Cell(cell.p99_ms, 2),
                  TablePrinter::Cell(cell.wire_write_syscalls_per_spawn, 2),
                  TablePrinter::Cell(cell.failures)});
    std::fprintf(stderr, "  [%s t=%d s=%d done: %.0f spawns/s]\n", cell.mode.c_str(),
                 cell.threads, cell.shards, cell.spawns_per_sec);
    cells.push_back(std::move(cell));
  }
  table.Print();

  double v1_at_4 = 0;
  double best_sharded = 0;
  double pipelined_trivial = 0;
  double batched_trivial = 0;
  double batched_wire_per_spawn = 0;
  for (const CellResult& cell : cells) {
    if (cell.mode == "v1-blocking" && cell.threads == 4) {
      v1_at_4 = cell.spawns_per_sec;
    }
    if (cell.mode == "sharded-pipelined" && cell.spawns_per_sec > best_sharded) {
      best_sharded = cell.spawns_per_sec;
    }
    if (cell.mode == "pipelined-trivial") {
      pipelined_trivial = cell.spawns_per_sec;
    }
    if (cell.mode == "batched-trivial") {
      batched_trivial = cell.spawns_per_sec;
      batched_wire_per_spawn = cell.wire_write_syscalls_per_spawn;
    }
  }
  double speedup = v1_at_4 > 0 ? best_sharded / v1_at_4 : 0;
  double batched_speedup = pipelined_trivial > 0 ? batched_trivial / pipelined_trivial : 0;
  std::printf("\nsharded+pipelined over v1 single socket (4 threads): %.1fx\n", speedup);
  std::printf("batched over pipelined, trivial children (4 threads): %.2fx "
              "(%.2f write-side wire syscalls per spawn batched)\n",
              batched_speedup, batched_wire_per_spawn);

  if (!json_path.empty()) {
    JsonWriter json;
    json.BeginObject();
    json.Key("bench").Value("forkserver_throughput");
    json.Key("quick").Value(quick);
    json.Key("spawns_per_cell").Value(ops);
    json.Key("host_hw_threads").Value(static_cast<int>(std::thread::hardware_concurrency()));
    json.Key("cells").BeginArray();
    for (const CellResult& cell : cells) {
      json.BeginObject();
      json.Key("mode").Value(cell.mode);
      json.Key("threads").Value(cell.threads);
      json.Key("shards").Value(cell.shards);
      json.Key("depth").Value(cell.depth);
      json.Key("spawns").Value(cell.spawns);
      json.Key("failures").Value(cell.failures);
      json.Key("seconds").Value(cell.seconds);
      json.Key("spawns_per_sec").Value(cell.spawns_per_sec);
      json.Key("p50_ms").Value(cell.p50_ms);
      json.Key("p95_ms").Value(cell.p95_ms);
      json.Key("p99_ms").Value(cell.p99_ms);
      json.Key("wire_write_syscalls_per_spawn").Value(cell.wire_write_syscalls_per_spawn);
      json.EndObject();
    }
    json.EndArray();
    json.Key("speedup_sharded_pipelined_over_v1").Value(speedup);
    json.Key("speedup_batched_over_pipelined_trivial").Value(batched_speedup);
    json.EndObject();
    auto written = WriteTextFile(json_path, json.str() + "\n");
    if (!written.ok()) {
      std::fprintf(stderr, "write %s: %s\n", json_path.c_str(),
                   written.error().ToString().c_str());
      return 1;
    }
    std::printf("json written to %s\n", json_path.c_str());
  }
  return 0;
}
