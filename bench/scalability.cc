// E3 — "fork doesn't scale" (§4): concurrent process creation throughput.
//
// N threads spawn-and-reap /bin/true in a loop for a fixed wall-clock window;
// we report aggregate spawns/second per thread count and primitive. On a
// machine with enough cores, fork's curve flattens first (mmap_sem/page-table
// serialization); with ballast the effect is amplified because every fork
// write-protects the SAME parent address space under the same locks. (On a
// single-core host the absolute numbers compress, but fork-with-ballast vs
// spawn-with-ballast still separates.)
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "src/benchlib/memtouch.h"
#include "src/benchlib/table.h"
#include "src/common/clock.h"
#include "src/common/string_util.h"
#include "src/spawn/spawner.h"

namespace forklift {
namespace {

constexpr double kWindowSeconds = 1.0;

double ThroughputAt(SpawnBackendKind kind, int threads) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  Stopwatch sw;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto child = Spawner("/bin/true").SetBackend(kind).Spawn();
        if (!child.ok()) {
          ++failures;
          continue;
        }
        auto st = child->Wait();
        if (st.ok() && st->Success()) {
          ++completed;
        } else {
          ++failures;
        }
      }
    });
  }
  while (sw.ElapsedSeconds() < kWindowSeconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true);
  for (auto& w : workers) {
    w.join();
  }
  if (failures.load() > 0) {
    std::fprintf(stderr, "  (%llu failures)\n",
                 static_cast<unsigned long long>(failures.load()));
  }
  return static_cast<double>(completed.load()) / sw.ElapsedSeconds();
}

}  // namespace
}  // namespace forklift

int main() {
  using namespace forklift;

  PrintBanner("E3: concurrent creation throughput (spawns/second, 1s window per cell)");
  std::printf("host has %u hardware threads\n\n", std::thread::hardware_concurrency());

  TablePrinter table({"threads", "ballast", "fork+exec/s", "posix_spawn/s", "spawn/fork"});
  HeapBallast ballast;
  for (size_t mib : {0, 256}) {
    if (!ballast.Resize(mib << 20).ok()) {
      std::fprintf(stderr, "ballast failed\n");
      return 1;
    }
    for (int threads : {1, 2, 4}) {
      ballast.TouchAll();
      double fork_rate = ThroughputAt(SpawnBackendKind::kForkExec, threads);
      ballast.TouchAll();
      double spawn_rate = ThroughputAt(SpawnBackendKind::kPosixSpawn, threads);
      table.AddRow({TablePrinter::Cell(static_cast<uint64_t>(threads)), HumanBytes(mib << 20),
                    TablePrinter::Cell(fork_rate, 0), TablePrinter::Cell(spawn_rate, 0),
                    TablePrinter::Cell(spawn_rate / fork_rate, 1)});
      std::fprintf(stderr, "  [%zu MiB x %d threads done]\n", mib, threads);
    }
  }

  table.Print();
  std::printf("\nShape check: spawn/fork ratio ≥ 1 everywhere and grows with ballast;\n"
              "fork throughput with ballast collapses (every spawn re-copies the heap's\n"
              "page tables). CSV follows.\n\n%s",
              table.ToCsv().c_str());
  return 0;
}
