// E3 — "fork doesn't scale" (§4): concurrent process creation throughput,
// plus exit-notification latency (sleep-poll loop vs pidfd/epoll reactor).
//
// Part 1: N threads spawn-and-reap /bin/true in a loop for a fixed wall-clock
// window; we report aggregate spawns/second per thread count and primitive.
// On a machine with enough cores, fork's curve flattens first
// (mmap_sem/page-table serialization); with ballast the effect is amplified
// because every fork write-protects the SAME parent address space under the
// same locks. (On a single-core host the absolute numbers compress, but
// fork-with-ballast vs spawn-with-ballast still separates.)
//
// Part 2: how long after a long-lived child dies does the parent find out?
// The legacy WaitDeadline loop slept in an escalating 50µs→5ms backoff, so a
// supervised child's exit was observed up to a full cap interval late; the
// reactor parks on a pidfd and wakes on the exit itself. We park a child
// (sh blocked on read), let the legacy backoff escalate to its cap, kill the
// pipe at a staggered phase inside the poll window, and time close→detection
// for both detectors. p50/p95 per mode; the reactor's p50 should be an order
// of magnitude lower.
//
// `--json <path>` additionally dumps both series as a machine-readable
// artifact (the BENCH_scalability.json convention).
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/benchlib/json_writer.h"
#include "src/benchlib/memtouch.h"
#include "src/benchlib/table.h"
#include "src/common/clock.h"
#include "src/common/reactor.h"
#include "src/common/string_util.h"
#include "src/spawn/spawner.h"

namespace forklift {
namespace {

constexpr double kWindowSeconds = 1.0;
constexpr int kLatencySamples = 20;
constexpr uint64_t kPollFloorNs = 50'000;    // the legacy loop's first sleep
constexpr uint64_t kPollCapNs = 5'000'000;   // ... and its escalation cap

double ThroughputAt(SpawnBackendKind kind, int threads) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  Stopwatch sw;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto child = Spawner("/bin/true").SetBackend(kind).Spawn();
        if (!child.ok()) {
          ++failures;
          continue;
        }
        auto st = child->Wait();
        if (st.ok() && st->Success()) {
          ++completed;
        } else {
          ++failures;
        }
      }
    });
  }
  while (sw.ElapsedSeconds() < kWindowSeconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true);
  for (auto& w : workers) {
    w.join();
  }
  if (failures.load() > 0) {
    std::fprintf(stderr, "  (%llu failures)\n",
                 static_cast<unsigned long long>(failures.load()));
  }
  return static_cast<double>(completed.load()) / sw.ElapsedSeconds();
}

// ---------------------------------------------------------------------------
// Part 2: exit-notification latency.

void SleepNs(uint64_t ns) {
  timespec ts{static_cast<time_t>(ns / 1000000000ull),
              static_cast<long>(ns % 1000000000ull)};
  ::nanosleep(&ts, nullptr);
}

// A child parked on a blocking read: it exits the instant its stdin pipe
// closes, and it signals readiness (one line on stdout) once the shell is up,
// so the measurement window never includes interpreter startup.
Result<Child> SpawnParkedChild() {
  FORKLIFT_ASSIGN_OR_RETURN(Child child, Spawner("/bin/sh")
                                             .Arg("-c")
                                             .Arg("echo r; read line")
                                             .SetStdin(Stdio::Pipe())
                                             .SetStdout(Stdio::Pipe())
                                             .SetStderr(Stdio::Null())
                                             .Spawn());
  char buf[2];
  size_t got = 0;
  while (got < sizeof(buf)) {
    ssize_t n = ::read(child.stdout_fd().get(), buf + got, sizeof(buf) - got);
    if (n <= 0) {
      (void)child.KillAndWait();
      return LogicalError("latency bench: parked child died before ready");
    }
    got += static_cast<size_t>(n);
  }
  return child;
}

// One sample of the legacy detector: TryWait + escalating nanosleep, exactly
// the loop WaitDeadline used before the reactor. The child stays parked while
// the backoff escalates to its cap (the steady state of any supervised
// child), then the exit lands at a staggered phase inside the cap window.
Result<uint64_t> LegacyDetectOnce(int sample) {
  FORKLIFT_ASSIGN_OR_RETURN(Child child, SpawnParkedChild());
  uint64_t interval = kPollFloorNs;
  while (interval < kPollCapNs) {
    FORKLIFT_RETURN_IF_ERROR(child.TryWait());
    SleepNs(interval);
    interval = std::min(interval * 2, kPollCapNs);
  }
  // Golden-ratio stagger: spread exits uniformly across the poll window so
  // the series samples the detection-delay distribution, not one phase. The
  // exit lands `phase` into a cap-length sleep, so the loop's next check
  // happens `cap - phase` later — model that by finishing the in-flight tick.
  uint64_t phase = (static_cast<uint64_t>(sample) * 1'618'034) % kPollCapNs;
  SleepNs(phase);
  uint64_t t0 = MonotonicNanos();
  child.stdin_fd().Reset();  // EOF: the parked read returns, the child exits
  SleepNs(kPollCapNs - phase);
  for (;;) {
    FORKLIFT_ASSIGN_OR_RETURN(std::optional<ExitStatus> st, child.TryWait());
    if (st.has_value()) {
      return MonotonicNanos() - t0;
    }
    SleepNs(interval);
  }
}

// One sample of the reactor detector: a ChildWatch parked in epoll.
Result<uint64_t> ReactorDetectOnce() {
  FORKLIFT_ASSIGN_OR_RETURN(Child child, SpawnParkedChild());
  FORKLIFT_ASSIGN_OR_RETURN(Reactor reactor, Reactor::Create());
  bool exited = false;
  FORKLIFT_ASSIGN_OR_RETURN(
      ChildWatch watch,
      ChildWatch::Arm(reactor, child.pid(), [&exited] { exited = true; }));
  uint64_t t0 = MonotonicNanos();
  child.stdin_fd().Reset();
  while (!exited) {
    FORKLIFT_RETURN_IF_ERROR(reactor.PollOnce(-1));
  }
  uint64_t latency = MonotonicNanos() - t0;
  FORKLIFT_RETURN_IF_ERROR(child.TryWait());
  return latency;
}

struct LatencyStats {
  double p50_us = 0;
  double p95_us = 0;
  double mean_us = 0;
};

LatencyStats Summarize(std::vector<uint64_t> samples_ns) {
  std::sort(samples_ns.begin(), samples_ns.end());
  LatencyStats stats;
  double total = 0;
  for (uint64_t s : samples_ns) {
    total += static_cast<double>(s);
  }
  stats.mean_us = total / static_cast<double>(samples_ns.size()) / 1e3;
  stats.p50_us = static_cast<double>(samples_ns[samples_ns.size() / 2]) / 1e3;
  stats.p95_us = static_cast<double>(samples_ns[samples_ns.size() * 95 / 100]) / 1e3;
  return stats;
}

}  // namespace
}  // namespace forklift

int main(int argc, char** argv) {
  using namespace forklift;

  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "scalability: --json requires an output path\n");
        return 2;
      }
      json_path = argv[++i];
    }
  }

  PrintBanner("E3: concurrent creation throughput (spawns/second, 1s window per cell)");
  std::printf("host has %u hardware threads\n\n", std::thread::hardware_concurrency());

  struct ThroughputRow {
    int threads;
    size_t ballast_bytes;
    double fork_rate;
    double spawn_rate;
  };
  std::vector<ThroughputRow> throughput_rows;

  TablePrinter table({"threads", "ballast", "fork+exec/s", "posix_spawn/s", "spawn/fork"});
  HeapBallast ballast;
  for (size_t mib : {0, 256}) {
    if (!ballast.Resize(mib << 20).ok()) {
      std::fprintf(stderr, "ballast failed\n");
      return 1;
    }
    for (int threads : {1, 2, 4}) {
      ballast.TouchAll();
      double fork_rate = ThroughputAt(SpawnBackendKind::kForkExec, threads);
      ballast.TouchAll();
      double spawn_rate = ThroughputAt(SpawnBackendKind::kPosixSpawn, threads);
      table.AddRow({TablePrinter::Cell(static_cast<uint64_t>(threads)), HumanBytes(mib << 20),
                    TablePrinter::Cell(fork_rate, 0), TablePrinter::Cell(spawn_rate, 0),
                    TablePrinter::Cell(spawn_rate / fork_rate, 1)});
      throughput_rows.push_back({threads, mib << 20, fork_rate, spawn_rate});
      std::fprintf(stderr, "  [%zu MiB x %d threads done]\n", mib, threads);
    }
  }

  table.Print();
  std::printf("\nShape check: spawn/fork ratio ≥ 1 everywhere and grows with ballast;\n"
              "fork throughput with ballast collapses (every spawn re-copies the heap's\n"
              "page tables). CSV follows.\n\n%s",
              table.ToCsv().c_str());
  (void)ballast.Resize(0);

  PrintBanner("E3b: exit-notification latency — sleep-poll loop vs pidfd/epoll reactor");
  std::vector<uint64_t> legacy_ns;
  std::vector<uint64_t> reactor_ns;
  for (int i = 0; i < kLatencySamples; ++i) {
    auto legacy = LegacyDetectOnce(i);
    auto reactor = ReactorDetectOnce();
    if (!legacy.ok() || !reactor.ok()) {
      std::fprintf(stderr, "latency sample failed: %s\n",
                   (!legacy.ok() ? legacy.error() : reactor.error()).ToString().c_str());
      return 1;
    }
    legacy_ns.push_back(*legacy);
    reactor_ns.push_back(*reactor);
  }
  LatencyStats legacy_stats = Summarize(legacy_ns);
  LatencyStats reactor_stats = Summarize(reactor_ns);

  TablePrinter latency_table({"detector", "p50 (us)", "p95 (us)", "mean (us)"});
  latency_table.AddRow({"poll-loop", TablePrinter::Cell(legacy_stats.p50_us, 0),
                        TablePrinter::Cell(legacy_stats.p95_us, 0),
                        TablePrinter::Cell(legacy_stats.mean_us, 0)});
  latency_table.AddRow({"reactor", TablePrinter::Cell(reactor_stats.p50_us, 0),
                        TablePrinter::Cell(reactor_stats.p95_us, 0),
                        TablePrinter::Cell(reactor_stats.mean_us, 0)});
  latency_table.Print();
  std::printf("\nShape check: the poll loop eats up to a full 5ms backoff tick before it\n"
              "notices the exit; the reactor wakes on the pidfd edge, so its p50 sits at\n"
              "the cost of the child's own teardown. reactor/poll p50 ratio: %.2f\n",
              reactor_stats.p50_us / legacy_stats.p50_us);

  if (!json_path.empty()) {
    JsonWriter w;
    w.BeginObject();
    w.Key("bench").Value("scalability");
    w.Key("hardware_threads").Value(static_cast<uint64_t>(std::thread::hardware_concurrency()));
    w.Key("throughput").BeginArray();
    for (const auto& row : throughput_rows) {
      w.BeginObject();
      w.Key("threads").Value(row.threads);
      w.Key("ballast_bytes").Value(static_cast<uint64_t>(row.ballast_bytes));
      w.Key("forkexec_per_s").Value(row.fork_rate);
      w.Key("posix_spawn_per_s").Value(row.spawn_rate);
      w.Key("spawn_over_fork").Value(row.spawn_rate / row.fork_rate);
      w.EndObject();
    }
    w.EndArray();
    w.Key("exit_latency").BeginObject();
    w.Key("samples_per_mode").Value(kLatencySamples);
    w.Key("modes").BeginArray();
    for (const auto* mode : {&legacy_stats, &reactor_stats}) {
      w.BeginObject();
      w.Key("mode").Value(mode == &legacy_stats ? "poll-loop" : "reactor");
      w.Key("p50_us").Value(mode->p50_us);
      w.Key("p95_us").Value(mode->p95_us);
      w.Key("mean_us").Value(mode->mean_us);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    w.EndObject();
    auto wrote = WriteTextFile(json_path, w.str() + "\n");
    if (!wrote.ok()) {
      std::fprintf(stderr, "--json: %s\n", wrote.error().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  }
  return 0;
}
