// E6 — page-size and topology ablations on the simulator (§5).
//
// Two ablations the paper's argument implies but its testbed could not vary:
//
//   (a) page size: with 2MiB pages fork copies 512x fewer PTEs — the slope of
//       Figure 1 drops by ~2.5 orders of magnitude, which is why THP blunts
//       (but does not eliminate) fork's cost;
//   (b) CPU fan-out: fork write-protects the parent's LIVE address space, so
//       the more CPUs the parent's threads run on, the more shootdown IPIs
//       each fork sends — the multiprocessor "doesn't scale" claim isolated
//       from every other cost.
#include <cstdio>
#include <vector>

#include "src/benchlib/table.h"
#include "src/common/string_util.h"
#include "src/procsim/kernel.h"

namespace forklift::procsim {
namespace {

ProgramImage TinyImage() {
  ProgramImage img;
  img.name = "tiny";
  img.text_bytes = 128 * 1024;
  img.data_bytes = 64 * 1024;
  img.stack_bytes = 64 * 1024;
  img.touched_at_start_bytes = 32 * 1024;
  return img;
}

uint64_t ForkCostNs(SimKernel& kernel, Pid parent, uint64_t* pte_copies) {
  uint64_t ns_before = kernel.clock().now_ns();
  uint64_t pte_before = kernel.clock().ops_for(CostKind::kPteCopy);
  auto child = kernel.Fork(parent);
  uint64_t ns = kernel.clock().now_ns() - ns_before;
  if (pte_copies != nullptr) {
    *pte_copies = kernel.clock().ops_for(CostKind::kPteCopy) - pte_before;
  }
  if (child.ok()) {
    (void)kernel.Exit(*child, 0);
    (void)kernel.Wait(parent, *child);
  }
  return ns;
}

void PageSizeAblation() {
  forklift::PrintBanner("E6a: fork cost vs page size (simulated)");
  forklift::TablePrinter table(
      {"heap_dirty", "4K_fork_us", "4K_ptes", "2M_fork_us", "2M_ptes", "speedup"});
  for (uint64_t mib : {64, 256, 1024, 4096}) {
    uint64_t cost[2];
    uint64_t ptes[2];
    int i = 0;
    for (PageSize size : {PageSize::k4K, PageSize::k2M}) {
      SimKernel::Config config;
      config.phys_frames = 32ull << 20;
      SimKernel kernel(config);
      auto init = kernel.CreateInit(TinyImage());
      if (!init.ok()) {
        return;
      }
      auto base = kernel.MapAnon(*init, mib << 20, "ballast", size);
      if (!base.ok() || !kernel.Touch(*init, *base, mib << 20, true).ok()) {
        return;
      }
      cost[i] = ForkCostNs(kernel, *init, &ptes[i]);
      ++i;
    }
    table.AddRow({forklift::HumanBytes(mib << 20), forklift::TablePrinter::Cell(cost[0] / 1e3, 1),
                  forklift::TablePrinter::Cell(ptes[0]),
                  forklift::TablePrinter::Cell(cost[1] / 1e3, 1),
                  forklift::TablePrinter::Cell(ptes[1]),
                  forklift::TablePrinter::Cell(static_cast<double>(cost[0]) / cost[1], 1)});
  }
  table.Print();
  std::printf("(2MiB pages copy 512x fewer PTEs; residual cost is task setup — why THP\n"
              " mitigates Figure 1's slope but cannot make fork O(1))\n");
}

void ShootdownAblation() {
  forklift::PrintBanner("E6b: fork-time TLB shootdown IPIs vs CPUs running the parent");
  forklift::TablePrinter table({"active_cpus", "ipis_per_fork", "shootdown_us", "fork_us"});
  for (size_t active : {1, 2, 4, 8, 16}) {
    SimKernel::Config config;
    config.cpus = 16;
    config.phys_frames = 1u << 20;
    SimKernel kernel(config);
    auto init = kernel.CreateInit(TinyImage());
    if (!init.ok()) {
      return;
    }
    auto base = kernel.MapAnon(*init, 64ull << 20, "ballast");
    if (!base.ok() || !kernel.Touch(*init, *base, 64ull << 20, true).ok()) {
      return;
    }
    // The parent's threads are active on `active` CPUs.
    for (size_t cpu = 0; cpu < active; ++cpu) {
      kernel.tlbs().SetActive(cpu, (*kernel.Find(*init))->as->asid());
    }
    uint64_t ipi_before = kernel.clock().ops_for(CostKind::kTlbShootdownIpi);
    uint64_t ipi_ns_before = kernel.clock().ns_for(CostKind::kTlbShootdownIpi);
    uint64_t fork_ns = ForkCostNs(kernel, *init, nullptr);
    uint64_t ipis = kernel.clock().ops_for(CostKind::kTlbShootdownIpi) - ipi_before;
    uint64_t ipi_ns = kernel.clock().ns_for(CostKind::kTlbShootdownIpi) - ipi_ns_before;
    table.AddRow({forklift::TablePrinter::Cell(static_cast<uint64_t>(active)),
                  forklift::TablePrinter::Cell(ipis),
                  forklift::TablePrinter::Cell(ipi_ns / 1e3, 1),
                  forklift::TablePrinter::Cell(fork_ns / 1e3, 1)});
  }
  table.Print();
  std::printf("(each additional CPU running the parent adds one IPI per fork — the cost\n"
              " is imposed on CPUs that never asked to participate)\n");
}

}  // namespace
}  // namespace forklift::procsim

int main() {
  forklift::procsim::PageSizeAblation();
  forklift::procsim::ShootdownAblation();
  return 0;
}
