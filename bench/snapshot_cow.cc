// E8 — the one fork use-case the paper concedes (§3/§5): COW snapshots.
//
// Redis-style persistence: a service with a large in-memory state wants a
// point-in-time snapshot while continuing to serve writes. Two designs:
//
//   fork snapshot : fork(); the child walks (reads) the frozen state while
//                   the parent keeps writing — each parent write to a
//                   not-yet-copied page pays a COW break;
//   eager copy    : stop the world, copy every page to a buffer, resume.
//
// The figure: initiation latency (pause), total work, and peak memory
// amplification, as a function of state size and of the write rate during
// the snapshot. fork wins initiation by orders of magnitude and loses
// (bounded) memory; that IS the trade the paper says keeps fork alive.
// Simulated: deterministic, with exact frame accounting.
#include <cstdio>
#include <vector>

#include "src/benchlib/table.h"
#include "src/common/string_util.h"
#include "src/procsim/kernel.h"

namespace forklift::procsim {
namespace {

ProgramImage ServerImage() {
  ProgramImage img;
  img.name = "kvserver";
  img.touched_at_start_bytes = 0;
  return img;
}

struct SnapshotOutcome {
  uint64_t initiation_us;  // service pause before writes may resume
  uint64_t total_us;       // complete snapshot cost (incl. concurrent tax)
  uint64_t peak_frames;    // memory amplification high-water mark
};

// Fork-based: fork, then interleave (parent writes `write_pages` randomly
// spread) with (child reads the whole heap, i.e. the serializer walk).
SnapshotOutcome ForkSnapshot(uint64_t heap_mib, double write_fraction) {
  SimKernel::Config config;
  config.phys_frames = 32ull << 20;
  SimKernel kernel(config);
  auto init = kernel.CreateInit(ServerImage());
  auto base = kernel.MapAnon(*init, heap_mib << 20, "state");
  (void)kernel.Touch(*init, *base, heap_mib << 20, true);

  SnapshotOutcome out{};
  uint64_t t0 = kernel.clock().now_ns();
  auto child = kernel.Fork(*init);
  out.initiation_us = (kernel.clock().now_ns() - t0) / 1000;

  // Concurrent phase. Order does not change totals in the deterministic
  // model: parent writes its share (COW breaks), child reads everything.
  uint64_t heap_bytes = heap_mib << 20;
  uint64_t write_bytes = static_cast<uint64_t>(heap_bytes * write_fraction);
  (void)kernel.Touch(*init, *base, write_bytes, true);        // parent's write load
  (void)kernel.Touch(*child, *base, heap_bytes, false);       // child serializes
  out.peak_frames = kernel.memory().used_frames();
  (void)kernel.Exit(*child, 0);
  (void)kernel.Wait(*init, *child);
  out.total_us = (kernel.clock().now_ns() - t0) / 1000;
  return out;
}

// Eager: stop the world and copy every resident page into a scratch buffer.
SnapshotOutcome EagerSnapshot(uint64_t heap_mib, double write_fraction) {
  SimKernel::Config config;
  config.phys_frames = 32ull << 20;
  SimKernel kernel(config);
  auto init = kernel.CreateInit(ServerImage());
  auto base = kernel.MapAnon(*init, heap_mib << 20, "state");
  (void)kernel.Touch(*init, *base, heap_mib << 20, true);

  SnapshotOutcome out{};
  uint64_t t0 = kernel.clock().now_ns();
  uint64_t pages = (heap_mib << 20) / kPageSize4K;
  // The copy IS the pause: reads of the source plus a frame copy per page.
  auto scratch = kernel.MapAnon(*init, heap_mib << 20, "snapshot-buffer");
  (void)kernel.Touch(*init, *scratch, heap_mib << 20, true);
  kernel.clock().Charge(CostKind::kFrameCopy4K, pages);
  out.initiation_us = (kernel.clock().now_ns() - t0) / 1000;
  out.peak_frames = kernel.memory().used_frames();
  // Post-pause writes are free of snapshot tax.
  uint64_t write_bytes = static_cast<uint64_t>((heap_mib << 20) * write_fraction);
  (void)kernel.Touch(*init, *base, write_bytes, true);
  out.total_us = (kernel.clock().now_ns() - t0) / 1000;
  return out;
}

}  // namespace
}  // namespace forklift::procsim

int main() {
  using namespace forklift;
  using namespace forklift::procsim;

  PrintBanner("E8: COW snapshots — why fork survives (simulated, Redis scenario)");
  std::printf("pause = service stall to initiate; amp = peak frames / state frames\n\n");

  TablePrinter table({"state", "writes", "fork_pause_us", "eager_pause_us", "pause_ratio",
                      "fork_total_us", "eager_total_us", "fork_amp", "eager_amp"});
  for (uint64_t mib : {256, 1024, 4096}) {
    for (double wf : {0.05, 0.25, 1.0}) {
      auto f = ForkSnapshot(mib, wf);
      auto e = EagerSnapshot(mib, wf);
      uint64_t state_frames = (mib << 20) / kPageSize4K;
      table.AddRow({HumanBytes(mib << 20), TablePrinter::Cell(wf * 100, 0) + "%",
                    TablePrinter::Cell(f.initiation_us), TablePrinter::Cell(e.initiation_us),
                    TablePrinter::Cell(static_cast<double>(e.initiation_us) /
                                           static_cast<double>(f.initiation_us),
                                       0),
                    TablePrinter::Cell(f.total_us), TablePrinter::Cell(e.total_us),
                    TablePrinter::Cell(static_cast<double>(f.peak_frames) / state_frames, 2),
                    TablePrinter::Cell(static_cast<double>(e.peak_frames) / state_frames, 2)});
    }
  }
  table.Print();
  std::printf("\nShape check: fork pauses >100x less (page-table copy vs full data copy)\n"
              "but amplifies memory by 1+write_fraction; eager always doubles memory and\n"
              "the pause grows linearly with state. CSV follows.\n\n%s",
              table.ToCsv().c_str());
  return 0;
}
