// E4 — the process-creation API comparison table (§6 of the paper).
//
// Two halves:
//   1. google-benchmark microbenchmarks: steady-state latency of each
//      primitive (plus the Spawner layer itself) with a small parent, i.e.
//      the left edge of Figure 1 where API overhead dominates;
//   2. a capability matrix showing which child attributes each backend can
//      express — the "spawn APIs are less flexible than fork" half of the
//      paper's argument, as data. A cell is determined by actually attempting
//      the feature through the library, not hardcoded.
#include <benchmark/benchmark.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>

#include "src/benchlib/table.h"
#include "src/spawn/command.h"
#include "src/spawn/spawner.h"

namespace forklift {
namespace {

void SpawnTrue(benchmark::State& state, SpawnBackendKind kind) {
  for (auto _ : state) {
    auto child = Spawner("/bin/true").SetBackend(kind).Spawn();
    if (!child.ok()) {
      state.SkipWithError(child.error().ToString().c_str());
      return;
    }
    auto st = child->Wait();
    if (!st.ok() || !st->Success()) {
      state.SkipWithError("child failed");
      return;
    }
  }
}

void BM_ForkExec(benchmark::State& state) { SpawnTrue(state, SpawnBackendKind::kForkExec); }
void BM_VforkExec(benchmark::State& state) { SpawnTrue(state, SpawnBackendKind::kVfork); }
void BM_PosixSpawn(benchmark::State& state) { SpawnTrue(state, SpawnBackendKind::kPosixSpawn); }
void BM_CloneVm(benchmark::State& state) { SpawnTrue(state, SpawnBackendKind::kCloneVm); }

// Raw fork+waitpid without exec: the floor for any fork-based API.
void BM_ForkOnly(benchmark::State& state) {
  for (auto _ : state) {
    pid_t pid = ::fork();
    if (pid == 0) {
      _exit(0);
    }
    int status;
    ::waitpid(pid, &status, 0);
  }
}

// The Spawner's own request-building overhead (no process created).
void BM_SpawnerBuildRequest(benchmark::State& state) {
  for (auto _ : state) {
    Spawner s("/bin/true");
    s.SetEnv("A", "1").SetCwd("/tmp");
    auto req = s.BuildRequest();
    benchmark::DoNotOptimize(req);
  }
}

// Full capture path: pipes + poll pump + reap.
void BM_RunAndCapture(benchmark::State& state) {
  for (auto _ : state) {
    auto r = RunAndCapture("/bin/echo", {"x"});
    if (!r.ok()) {
      state.SkipWithError("run failed");
      return;
    }
    benchmark::DoNotOptimize(r->stdout_data);
  }
}

BENCHMARK(BM_ForkOnly)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ForkExec)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_VforkExec)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PosixSpawn)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_CloneVm)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SpawnerBuildRequest)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_RunAndCapture)->Unit(benchmark::kMicrosecond);

// --- capability matrix -------------------------------------------------------

const char* Try(SpawnBackendKind kind, void (*configure)(Spawner&)) {
  Spawner s("/bin/true");
  configure(s);
  s.SetBackend(kind).SetStdout(Stdio::Null()).SetStderr(Stdio::Null());
  auto child = s.Spawn();
  if (!child.ok()) {
    return child.error().code() == 0 ? "no" : "fail";
  }
  auto st = child->Wait();
  return (st.ok() && st->exited) ? "yes" : "fail";
}

void PrintCapabilityMatrix() {
  struct Feature {
    const char* name;
    void (*configure)(Spawner&);
  };
  const Feature kFeatures[] = {
      {"basic exec", [](Spawner&) {}},
      {"set cwd", [](Spawner& s) { s.SetCwd("/tmp"); }},
      {"set umask", [](Spawner& s) { s.SetUmask(022); }},
      {"rlimits", [](Spawner& s) { s.AddRlimit(RLIMIT_NOFILE, 256, 256); }},
      {"niceness", [](Spawner& s) { s.SetNice(5); }},
      {"new session", [](Spawner& s) { s.NewSession(); }},
      {"process group", [](Spawner& s) { s.SetProcessGroup(0); }},
      {"reset signals", [](Spawner& s) { s.ResetSignals(true); }},
      {"close other fds", [](Spawner& s) { s.CloseOtherFds(); }},
      {"fd redirection", [](Spawner& s) { s.SetStdin(Stdio::Null()); }},
  };

  PrintBanner("E4: capability matrix — which attributes each primitive can express");
  TablePrinter table({"feature", "fork+exec", "vfork+exec", "posix_spawn", "clone_vm"});
  for (const auto& f : kFeatures) {
    table.AddRow({f.name, Try(SpawnBackendKind::kForkExec, f.configure),
                  Try(SpawnBackendKind::kVfork, f.configure),
                  Try(SpawnBackendKind::kPosixSpawn, f.configure),
                  Try(SpawnBackendKind::kCloneVm, f.configure)});
  }
  table.Print();
  std::printf("('no' = the primitive cannot express the attribute — the API gap the paper\n"
              " blames for fork's survival; forklift closes it via the fork-family backends)\n");
}

}  // namespace
}  // namespace forklift

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  forklift::PrintCapabilityMatrix();
  return 0;
}
