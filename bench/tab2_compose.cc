// E7 — what safety costs (§4 turned around): the price of auditing fork's
// hazards, and of the secure-by-default spawn path, in google-benchmark form.
//
// The paper argues fork is unsafe *because* making it safe is expensive and
// nobody pays; this table prices the checks so the claim is quantitative:
// a full ForkGuard audit vs. the cost of the fork it guards, fd audits as the
// table grows, lock-registry snapshots, and wipe-on-fork secret allocation.
#include <benchmark/benchmark.h>
#include <fcntl.h>
#include <unistd.h>

#include <vector>

#include "src/common/pipe.h"
#include "src/common/syscall.h"
#include "src/hazards/fd_audit.h"
#include "src/hazards/fork_guard.h"
#include "src/hazards/lock_registry.h"
#include "src/hazards/secret.h"
#include "src/spawn/spawner.h"

namespace forklift {
namespace {

void BM_ForkGuardCheckNow(benchmark::State& state) {
  // Populate the fd table to the requested size.
  std::vector<UniqueFd> extras;
  for (int i = 0; i < state.range(0); ++i) {
    auto fd = OpenFd("/dev/null", O_RDONLY | O_CLOEXEC);
    if (!fd.ok()) {
      state.SkipWithError("open failed");
      return;
    }
    extras.push_back(std::move(fd).value());
  }
  for (auto _ : state) {
    auto report = ForkGuard::CheckNow();
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_ForkGuardCheckNow)->Arg(8)->Arg(64)->Arg(512)->Unit(benchmark::kMicrosecond);

void BM_FdAuditAlone(benchmark::State& state) {
  std::vector<UniqueFd> extras;
  for (int i = 0; i < state.range(0); ++i) {
    auto fd = OpenFd("/dev/null", O_RDONLY);
    if (!fd.ok()) {
      state.SkipWithError("open failed");
      return;
    }
    extras.push_back(std::move(fd).value());
  }
  for (auto _ : state) {
    auto report = FindInheritableFds();
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_FdAuditAlone)->Arg(8)->Arg(64)->Arg(512)->Unit(benchmark::kMicrosecond);

void BM_LockRegistrySnapshot(benchmark::State& state) {
  std::vector<std::unique_ptr<TrackedMutex>> mutexes;
  for (int i = 0; i < state.range(0); ++i) {
    mutexes.push_back(std::make_unique<TrackedMutex>("m" + std::to_string(i)));
  }
  mutexes[0]->lock();
  for (auto _ : state) {
    auto held = LockRegistry::Instance().HeldByOtherThreads();
    benchmark::DoNotOptimize(held);
  }
  mutexes[0]->unlock();
}
BENCHMARK(BM_LockRegistrySnapshot)->Arg(16)->Arg(256)->Unit(benchmark::kMicrosecond);

void BM_TrackedMutexLockUnlock(benchmark::State& state) {
  TrackedMutex mu("bench");
  for (auto _ : state) {
    mu.lock();
    mu.unlock();
  }
}
BENCHMARK(BM_TrackedMutexLockUnlock)->Unit(benchmark::kNanosecond);

void BM_PlainMutexLockUnlock(benchmark::State& state) {
  std::mutex mu;
  for (auto _ : state) {
    mu.lock();
    mu.unlock();
  }
}
BENCHMARK(BM_PlainMutexLockUnlock)->Unit(benchmark::kNanosecond);

void BM_SecretBufferCreate(benchmark::State& state) {
  for (auto _ : state) {
    auto buf = SecretBuffer::Create(4096);
    benchmark::DoNotOptimize(buf);
  }
}
BENCHMARK(BM_SecretBufferCreate)->Unit(benchmark::kMicrosecond);

// The end-to-end comparison the table exists for: bare fork+exec vs the
// secure-by-default spawn with the full audit in front.
void BM_BareForkExecTrue(benchmark::State& state) {
  for (auto _ : state) {
    auto child = Spawner("/bin/true").Spawn();
    if (!child.ok() || !child->Wait().ok()) {
      state.SkipWithError("spawn failed");
      return;
    }
  }
}
BENCHMARK(BM_BareForkExecTrue)->Unit(benchmark::kMicrosecond);

void BM_AuditedSpawnTrue(benchmark::State& state) {
  for (auto _ : state) {
    auto report = ForkGuard::CheckNow();
    benchmark::DoNotOptimize(report);
    auto child = Spawner("/bin/true")
                     .CloseOtherFds()
                     .SetBackend(SpawnBackendKind::kPosixSpawn)
                     .Spawn();
    if (!child.ok() || !child->Wait().ok()) {
      state.SkipWithError("spawn failed");
      return;
    }
  }
}
BENCHMARK(BM_AuditedSpawnTrue)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace forklift

BENCHMARK_MAIN();
