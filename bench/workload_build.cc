// E10 — macro-workload: a build-system driver (simulated).
//
// The paper's motivating scenario is the shell/make pattern: a driver process
// repeatedly launches short-lived tools. Here a driver with a realistic
// footprint (parsed build graph in its heap) launches `kJobs` compile jobs
// and waits for each, with every creation primitive. This aggregates all the
// micro effects — per-creation page-table copies, fd inheritance, image
// loads — into the number a build engineer sees: total driver-side creation
// overhead per build.
#include <cstdio>
#include <vector>

#include "src/benchlib/table.h"
#include "src/common/string_util.h"
#include "src/procsim/cross_process.h"
#include "src/procsim/kernel.h"

namespace forklift::procsim {
namespace {

constexpr int kJobs = 400;

ProgramImage CompilerImage() {
  ProgramImage img;
  img.name = "cc1";
  img.text_bytes = 4ull << 20;   // a real compiler is not tiny
  img.data_bytes = 1ull << 20;
  img.stack_bytes = 256 * 1024;
  img.touched_at_start_bytes = 512 * 1024;
  return img;
}

ProgramImage DriverImage() {
  ProgramImage img;
  img.name = "make";
  return img;
}

enum class Mode { kFork, kVfork, kSpawn, kBuilder };

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kFork:
      return "fork+exec";
    case Mode::kVfork:
      return "vfork+exec";
    case Mode::kSpawn:
      return "spawn";
    case Mode::kBuilder:
      return "builder";
  }
  return "?";
}

// Runs the whole build; returns total simulated creation-side microseconds
// (the jobs' own runtime is identical across modes and excluded).
Result<uint64_t> RunBuild(Mode mode, uint64_t driver_heap_mib) {
  SimKernel::Config config;
  config.phys_frames = 32ull << 20;
  SimKernel kernel(config);
  FORKLIFT_ASSIGN_OR_RETURN(Pid driver, kernel.CreateInit(DriverImage()));
  if (driver_heap_mib > 0) {
    FORKLIFT_ASSIGN_OR_RETURN(Vaddr heap,
                              kernel.MapAnon(driver, driver_heap_mib << 20, "build-graph"));
    FORKLIFT_RETURN_IF_ERROR(kernel.Touch(driver, heap, driver_heap_mib << 20, true));
  }

  uint64_t total = 0;
  for (int job = 0; job < kJobs; ++job) {
    uint64_t t0 = kernel.clock().now_ns();
    Pid child = 0;
    switch (mode) {
      case Mode::kFork: {
        FORKLIFT_ASSIGN_OR_RETURN(child, kernel.Fork(driver));
        FORKLIFT_RETURN_IF_ERROR(kernel.Exec(child, CompilerImage()));
        break;
      }
      case Mode::kVfork: {
        FORKLIFT_ASSIGN_OR_RETURN(child, kernel.Vfork(driver));
        FORKLIFT_RETURN_IF_ERROR(kernel.Exec(child, CompilerImage()));
        break;
      }
      case Mode::kSpawn: {
        FORKLIFT_ASSIGN_OR_RETURN(child, kernel.Spawn(driver, CompilerImage()));
        break;
      }
      case Mode::kBuilder: {
        FORKLIFT_ASSIGN_OR_RETURN(ProcessBuilder builder,
                                  ProcessBuilder::Create(&kernel, driver));
        child = builder.pid();
        FORKLIFT_RETURN_IF_ERROR(builder.LoadImage(CompilerImage()));
        FORKLIFT_RETURN_IF_ERROR(std::move(builder).Start());
        break;
      }
    }
    total += kernel.clock().now_ns() - t0;
    FORKLIFT_RETURN_IF_ERROR(kernel.Exit(child, 0));
    FORKLIFT_ASSIGN_OR_RETURN(int code, kernel.Wait(driver, child));
    (void)code;
  }
  return total / 1000;  // us
}

}  // namespace
}  // namespace forklift::procsim

int main() {
  using namespace forklift;
  using namespace forklift::procsim;

  PrintBanner("E10: build-driver macro-workload — 400 compile jobs (simulated)");
  std::printf("cells: total creation-side cost for the whole build, simulated ms\n\n");

  TablePrinter table({"driver_heap", "fork+exec_ms", "vfork+exec_ms", "spawn_ms",
                      "builder_ms", "fork/spawn"});
  for (uint64_t mib : {16, 128, 512, 2048}) {
    uint64_t cells[4];
    int i = 0;
    for (Mode mode : {Mode::kFork, Mode::kVfork, Mode::kSpawn, Mode::kBuilder}) {
      auto us = RunBuild(mode, mib);
      if (!us.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", ModeName(mode), us.error().ToString().c_str());
        return 1;
      }
      cells[i++] = *us;
    }
    table.AddRow({HumanBytes(mib << 20), TablePrinter::Cell(cells[0] / 1e3, 1),
                  TablePrinter::Cell(cells[1] / 1e3, 1), TablePrinter::Cell(cells[2] / 1e3, 1),
                  TablePrinter::Cell(cells[3] / 1e3, 1),
                  TablePrinter::Cell(static_cast<double>(cells[0]) / cells[2], 1)});
  }
  table.Print();
  std::printf("\nShape check: fork's build overhead grows with the DRIVER's heap (every job\n"
              "re-pays the page-table copy); vfork/spawn/builder are flat. This is make -jN\n"
              "from a large build graph, the paper's everyday victim. CSV follows.\n\n%s",
              table.ToCsv().c_str());
  return 0;
}
