// E9 — cross-process construction vs fork vs spawn (§6's endgame, simulated).
//
// The paper's closing argument: the *right* primitive is neither fork (copies
// everything) nor a monolithic spawn (all-or-nothing flags) but explicit
// cross-process operations where cost is proportional to what the child is
// actually given. This bench creates a child three ways from parents of
// increasing size, granting the child a fixed small working set, and reports
// creation cost and the number of capability transfers.
#include <cstdio>
#include <vector>

#include "src/benchlib/table.h"
#include "src/common/string_util.h"
#include "src/procsim/cross_process.h"
#include "src/procsim/kernel.h"

namespace forklift::procsim {
namespace {

ProgramImage WorkerImage() {
  ProgramImage img;
  img.name = "worker";
  img.text_bytes = 256 * 1024;
  img.data_bytes = 128 * 1024;
  img.stack_bytes = 64 * 1024;
  img.touched_at_start_bytes = 32 * 1024;
  return img;
}

struct Cell {
  uint64_t us = 0;
  bool ok = false;
};

// Parent setup shared by all three paths: `heap_mib` dirty + 32 open fds +
// one 1 MiB shared-work buffer the child genuinely needs.
struct World {
  SimKernel kernel;
  Pid parent = 0;
  Vaddr shared_buf = 0;
  std::vector<Fd> fds;

  explicit World(uint64_t heap_mib) {
    SimKernel::Config config;
    config.phys_frames = 32ull << 20;
    kernel = SimKernel(config);
    parent = *kernel.CreateInit(WorkerImage());
    if (heap_mib > 0) {
      auto base = kernel.MapAnon(parent, heap_mib << 20, "heap");
      (void)kernel.Touch(parent, *base, heap_mib << 20, true);
    }
    auto buf = kernel.MapAnon(parent, 1u << 20, "workbuf");
    shared_buf = *buf;
    (void)kernel.Touch(parent, shared_buf, 1u << 20, true);
    for (int i = 0; i < 32; ++i) {
      fds.push_back(*kernel.OpenFile(parent, "fd" + std::to_string(i), i % 2 == 0));
    }
  }
};

Cell ViaFork(World& w) {
  uint64_t t0 = w.kernel.clock().now_ns();
  auto child = w.kernel.Fork(w.parent);
  Cell c;
  c.ok = child.ok();
  c.us = (w.kernel.clock().now_ns() - t0) / 1000;
  if (child.ok()) {
    (void)w.kernel.Exit(*child, 0);
    (void)w.kernel.Wait(w.parent, *child);
  }
  return c;
}

Cell ViaSpawn(World& w) {
  uint64_t t0 = w.kernel.clock().now_ns();
  auto child = w.kernel.Spawn(w.parent, WorkerImage());
  Cell c;
  c.ok = child.ok();
  c.us = (w.kernel.clock().now_ns() - t0) / 1000;
  if (child.ok()) {
    (void)w.kernel.Exit(*child, 0);
    (void)w.kernel.Wait(w.parent, *child);
  }
  return c;
}

Cell ViaBuilder(World& w) {
  uint64_t t0 = w.kernel.clock().now_ns();
  auto builder = ProcessBuilder::Create(&w.kernel, w.parent);
  Cell c;
  if (!builder.ok()) {
    return c;
  }
  Pid pid = builder->pid();
  c.ok = builder->LoadImage(WorkerImage()).ok() &&
         builder->ShareRegion(w.shared_buf, /*writable=*/true).ok() &&
         builder->GrantFd(w.fds[1]).ok() && builder->GrantFd(w.fds[3]).ok() &&
         std::move(*builder).Start().ok();
  c.us = (w.kernel.clock().now_ns() - t0) / 1000;
  if (c.ok) {
    (void)w.kernel.Exit(pid, 0);
    (void)w.kernel.Wait(w.parent, pid);
  }
  return c;
}

}  // namespace
}  // namespace forklift::procsim

int main() {
  using namespace forklift;
  using namespace forklift::procsim;

  PrintBanner("E9: explicit construction vs fork vs spawn (simulated)");
  std::printf("child needs: its image + one 1MiB shared buffer + 2 of the parent's 32 fds\n\n");

  TablePrinter table({"parent_heap", "fork_us", "spawn_us", "builder_us", "fork/builder"});
  for (uint64_t mib : {0, 64, 512, 4096}) {
    World w(mib);
    Cell f = ViaFork(w);
    Cell s = ViaSpawn(w);
    Cell b = ViaBuilder(w);
    if (!f.ok || !s.ok || !b.ok) {
      std::fprintf(stderr, "a path failed at %llu MiB\n", static_cast<unsigned long long>(mib));
      return 1;
    }
    table.AddRow({HumanBytes(mib << 20), TablePrinter::Cell(f.us), TablePrinter::Cell(s.us),
                  TablePrinter::Cell(b.us),
                  TablePrinter::Cell(static_cast<double>(f.us) / static_cast<double>(b.us), 1)});
  }
  table.Print();
  std::printf("\nShape check: builder cost is flat and tracks the grant list (image + 1MiB\n"
              "+ 2 fds); spawn is flat but pays blanket fd inheritance; fork grows with\n"
              "the parent. CSV follows.\n\n%s",
              table.ToCsv().c_str());
  return 0;
}
