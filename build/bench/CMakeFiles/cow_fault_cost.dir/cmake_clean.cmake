file(REMOVE_RECURSE
  "CMakeFiles/cow_fault_cost.dir/cow_fault_cost.cc.o"
  "CMakeFiles/cow_fault_cost.dir/cow_fault_cost.cc.o.d"
  "cow_fault_cost"
  "cow_fault_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cow_fault_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
