# Empty compiler generated dependencies file for cow_fault_cost.
# This may be replaced when dependencies are built.
