file(REMOVE_RECURSE
  "CMakeFiles/fig1_process_creation.dir/fig1_process_creation.cc.o"
  "CMakeFiles/fig1_process_creation.dir/fig1_process_creation.cc.o.d"
  "fig1_process_creation"
  "fig1_process_creation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_process_creation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
