# Empty compiler generated dependencies file for fig1_process_creation.
# This may be replaced when dependencies are built.
