file(REMOVE_RECURSE
  "CMakeFiles/fig1_sim.dir/fig1_sim.cc.o"
  "CMakeFiles/fig1_sim.dir/fig1_sim.cc.o.d"
  "fig1_sim"
  "fig1_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
