# Empty dependencies file for fig1_sim.
# This may be replaced when dependencies are built.
