file(REMOVE_RECURSE
  "CMakeFiles/forkserver_amortization.dir/forkserver_amortization.cc.o"
  "CMakeFiles/forkserver_amortization.dir/forkserver_amortization.cc.o.d"
  "forkserver_amortization"
  "forkserver_amortization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forkserver_amortization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
