# Empty dependencies file for forkserver_amortization.
# This may be replaced when dependencies are built.
