file(REMOVE_RECURSE
  "CMakeFiles/sim_pagetable.dir/sim_pagetable.cc.o"
  "CMakeFiles/sim_pagetable.dir/sim_pagetable.cc.o.d"
  "sim_pagetable"
  "sim_pagetable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_pagetable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
