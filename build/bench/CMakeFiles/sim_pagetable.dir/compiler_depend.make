# Empty compiler generated dependencies file for sim_pagetable.
# This may be replaced when dependencies are built.
