file(REMOVE_RECURSE
  "CMakeFiles/snapshot_cow.dir/snapshot_cow.cc.o"
  "CMakeFiles/snapshot_cow.dir/snapshot_cow.cc.o.d"
  "snapshot_cow"
  "snapshot_cow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapshot_cow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
