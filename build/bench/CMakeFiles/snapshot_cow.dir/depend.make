# Empty dependencies file for snapshot_cow.
# This may be replaced when dependencies are built.
