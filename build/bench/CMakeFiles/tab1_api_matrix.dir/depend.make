# Empty dependencies file for tab1_api_matrix.
# This may be replaced when dependencies are built.
