file(REMOVE_RECURSE
  "CMakeFiles/tab2_compose.dir/tab2_compose.cc.o"
  "CMakeFiles/tab2_compose.dir/tab2_compose.cc.o.d"
  "tab2_compose"
  "tab2_compose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab2_compose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
