# Empty compiler generated dependencies file for tab2_compose.
# This may be replaced when dependencies are built.
