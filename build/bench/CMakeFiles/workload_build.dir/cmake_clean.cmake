file(REMOVE_RECURSE
  "CMakeFiles/workload_build.dir/workload_build.cc.o"
  "CMakeFiles/workload_build.dir/workload_build.cc.o.d"
  "workload_build"
  "workload_build.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
