# Empty compiler generated dependencies file for workload_build.
# This may be replaced when dependencies are built.
