file(REMOVE_RECURSE
  "CMakeFiles/xproc_builder.dir/xproc_builder.cc.o"
  "CMakeFiles/xproc_builder.dir/xproc_builder.cc.o.d"
  "xproc_builder"
  "xproc_builder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xproc_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
