# Empty compiler generated dependencies file for xproc_builder.
# This may be replaced when dependencies are built.
