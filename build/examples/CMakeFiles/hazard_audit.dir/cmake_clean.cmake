file(REMOVE_RECURSE
  "CMakeFiles/hazard_audit.dir/hazard_audit.cpp.o"
  "CMakeFiles/hazard_audit.dir/hazard_audit.cpp.o.d"
  "hazard_audit"
  "hazard_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hazard_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
