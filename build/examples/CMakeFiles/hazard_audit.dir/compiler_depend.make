# Empty compiler generated dependencies file for hazard_audit.
# This may be replaced when dependencies are built.
