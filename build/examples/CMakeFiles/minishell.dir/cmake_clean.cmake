file(REMOVE_RECURSE
  "CMakeFiles/minishell.dir/minishell.cpp.o"
  "CMakeFiles/minishell.dir/minishell.cpp.o.d"
  "minishell"
  "minishell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minishell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
