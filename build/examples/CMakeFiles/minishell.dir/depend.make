# Empty dependencies file for minishell.
# This may be replaced when dependencies are built.
