file(REMOVE_RECURSE
  "CMakeFiles/service_fleet.dir/service_fleet.cpp.o"
  "CMakeFiles/service_fleet.dir/service_fleet.cpp.o.d"
  "service_fleet"
  "service_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
