# Empty dependencies file for service_fleet.
# This may be replaced when dependencies are built.
