file(REMOVE_RECURSE
  "CMakeFiles/zygote_service.dir/zygote_service.cpp.o"
  "CMakeFiles/zygote_service.dir/zygote_service.cpp.o.d"
  "zygote_service"
  "zygote_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zygote_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
