# Empty dependencies file for zygote_service.
# This may be replaced when dependencies are built.
