file(REMOVE_RECURSE
  "CMakeFiles/forklift_benchlib.dir/memtouch.cc.o"
  "CMakeFiles/forklift_benchlib.dir/memtouch.cc.o.d"
  "CMakeFiles/forklift_benchlib.dir/table.cc.o"
  "CMakeFiles/forklift_benchlib.dir/table.cc.o.d"
  "libforklift_benchlib.a"
  "libforklift_benchlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forklift_benchlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
