file(REMOVE_RECURSE
  "libforklift_benchlib.a"
)
