# Empty dependencies file for forklift_benchlib.
# This may be replaced when dependencies are built.
