file(REMOVE_RECURSE
  "CMakeFiles/forklift_common.dir/env.cc.o"
  "CMakeFiles/forklift_common.dir/env.cc.o.d"
  "CMakeFiles/forklift_common.dir/log.cc.o"
  "CMakeFiles/forklift_common.dir/log.cc.o.d"
  "CMakeFiles/forklift_common.dir/pipe.cc.o"
  "CMakeFiles/forklift_common.dir/pipe.cc.o.d"
  "CMakeFiles/forklift_common.dir/stats.cc.o"
  "CMakeFiles/forklift_common.dir/stats.cc.o.d"
  "CMakeFiles/forklift_common.dir/string_util.cc.o"
  "CMakeFiles/forklift_common.dir/string_util.cc.o.d"
  "CMakeFiles/forklift_common.dir/syscall.cc.o"
  "CMakeFiles/forklift_common.dir/syscall.cc.o.d"
  "libforklift_common.a"
  "libforklift_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forklift_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
