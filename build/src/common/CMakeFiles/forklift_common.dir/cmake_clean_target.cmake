file(REMOVE_RECURSE
  "libforklift_common.a"
)
