# Empty compiler generated dependencies file for forklift_common.
# This may be replaced when dependencies are built.
