
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/forkserver/client.cc" "src/forkserver/CMakeFiles/forklift_forkserver.dir/client.cc.o" "gcc" "src/forkserver/CMakeFiles/forklift_forkserver.dir/client.cc.o.d"
  "/root/repo/src/forkserver/fd_transfer.cc" "src/forkserver/CMakeFiles/forklift_forkserver.dir/fd_transfer.cc.o" "gcc" "src/forkserver/CMakeFiles/forklift_forkserver.dir/fd_transfer.cc.o.d"
  "/root/repo/src/forkserver/pool.cc" "src/forkserver/CMakeFiles/forklift_forkserver.dir/pool.cc.o" "gcc" "src/forkserver/CMakeFiles/forklift_forkserver.dir/pool.cc.o.d"
  "/root/repo/src/forkserver/protocol.cc" "src/forkserver/CMakeFiles/forklift_forkserver.dir/protocol.cc.o" "gcc" "src/forkserver/CMakeFiles/forklift_forkserver.dir/protocol.cc.o.d"
  "/root/repo/src/forkserver/server.cc" "src/forkserver/CMakeFiles/forklift_forkserver.dir/server.cc.o" "gcc" "src/forkserver/CMakeFiles/forklift_forkserver.dir/server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spawn/CMakeFiles/forklift_spawn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/forklift_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
