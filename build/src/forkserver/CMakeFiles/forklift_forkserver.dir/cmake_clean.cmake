file(REMOVE_RECURSE
  "CMakeFiles/forklift_forkserver.dir/client.cc.o"
  "CMakeFiles/forklift_forkserver.dir/client.cc.o.d"
  "CMakeFiles/forklift_forkserver.dir/fd_transfer.cc.o"
  "CMakeFiles/forklift_forkserver.dir/fd_transfer.cc.o.d"
  "CMakeFiles/forklift_forkserver.dir/pool.cc.o"
  "CMakeFiles/forklift_forkserver.dir/pool.cc.o.d"
  "CMakeFiles/forklift_forkserver.dir/protocol.cc.o"
  "CMakeFiles/forklift_forkserver.dir/protocol.cc.o.d"
  "CMakeFiles/forklift_forkserver.dir/server.cc.o"
  "CMakeFiles/forklift_forkserver.dir/server.cc.o.d"
  "libforklift_forkserver.a"
  "libforklift_forkserver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forklift_forkserver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
