file(REMOVE_RECURSE
  "libforklift_forkserver.a"
)
