# Empty compiler generated dependencies file for forklift_forkserver.
# This may be replaced when dependencies are built.
