
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hazards/env_audit.cc" "src/hazards/CMakeFiles/forklift_hazards.dir/env_audit.cc.o" "gcc" "src/hazards/CMakeFiles/forklift_hazards.dir/env_audit.cc.o.d"
  "/root/repo/src/hazards/fd_audit.cc" "src/hazards/CMakeFiles/forklift_hazards.dir/fd_audit.cc.o" "gcc" "src/hazards/CMakeFiles/forklift_hazards.dir/fd_audit.cc.o.d"
  "/root/repo/src/hazards/fork_guard.cc" "src/hazards/CMakeFiles/forklift_hazards.dir/fork_guard.cc.o" "gcc" "src/hazards/CMakeFiles/forklift_hazards.dir/fork_guard.cc.o.d"
  "/root/repo/src/hazards/lock_registry.cc" "src/hazards/CMakeFiles/forklift_hazards.dir/lock_registry.cc.o" "gcc" "src/hazards/CMakeFiles/forklift_hazards.dir/lock_registry.cc.o.d"
  "/root/repo/src/hazards/secret.cc" "src/hazards/CMakeFiles/forklift_hazards.dir/secret.cc.o" "gcc" "src/hazards/CMakeFiles/forklift_hazards.dir/secret.cc.o.d"
  "/root/repo/src/hazards/stdio_audit.cc" "src/hazards/CMakeFiles/forklift_hazards.dir/stdio_audit.cc.o" "gcc" "src/hazards/CMakeFiles/forklift_hazards.dir/stdio_audit.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/forklift_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
