file(REMOVE_RECURSE
  "CMakeFiles/forklift_hazards.dir/env_audit.cc.o"
  "CMakeFiles/forklift_hazards.dir/env_audit.cc.o.d"
  "CMakeFiles/forklift_hazards.dir/fd_audit.cc.o"
  "CMakeFiles/forklift_hazards.dir/fd_audit.cc.o.d"
  "CMakeFiles/forklift_hazards.dir/fork_guard.cc.o"
  "CMakeFiles/forklift_hazards.dir/fork_guard.cc.o.d"
  "CMakeFiles/forklift_hazards.dir/lock_registry.cc.o"
  "CMakeFiles/forklift_hazards.dir/lock_registry.cc.o.d"
  "CMakeFiles/forklift_hazards.dir/secret.cc.o"
  "CMakeFiles/forklift_hazards.dir/secret.cc.o.d"
  "CMakeFiles/forklift_hazards.dir/stdio_audit.cc.o"
  "CMakeFiles/forklift_hazards.dir/stdio_audit.cc.o.d"
  "libforklift_hazards.a"
  "libforklift_hazards.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forklift_hazards.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
