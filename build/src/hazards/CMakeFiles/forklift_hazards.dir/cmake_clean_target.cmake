file(REMOVE_RECURSE
  "libforklift_hazards.a"
)
