# Empty dependencies file for forklift_hazards.
# This may be replaced when dependencies are built.
