
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/procsim/address_space.cc" "src/procsim/CMakeFiles/forklift_procsim.dir/address_space.cc.o" "gcc" "src/procsim/CMakeFiles/forklift_procsim.dir/address_space.cc.o.d"
  "/root/repo/src/procsim/cost_model.cc" "src/procsim/CMakeFiles/forklift_procsim.dir/cost_model.cc.o" "gcc" "src/procsim/CMakeFiles/forklift_procsim.dir/cost_model.cc.o.d"
  "/root/repo/src/procsim/cross_process.cc" "src/procsim/CMakeFiles/forklift_procsim.dir/cross_process.cc.o" "gcc" "src/procsim/CMakeFiles/forklift_procsim.dir/cross_process.cc.o.d"
  "/root/repo/src/procsim/kernel.cc" "src/procsim/CMakeFiles/forklift_procsim.dir/kernel.cc.o" "gcc" "src/procsim/CMakeFiles/forklift_procsim.dir/kernel.cc.o.d"
  "/root/repo/src/procsim/page_table.cc" "src/procsim/CMakeFiles/forklift_procsim.dir/page_table.cc.o" "gcc" "src/procsim/CMakeFiles/forklift_procsim.dir/page_table.cc.o.d"
  "/root/repo/src/procsim/phys_mem.cc" "src/procsim/CMakeFiles/forklift_procsim.dir/phys_mem.cc.o" "gcc" "src/procsim/CMakeFiles/forklift_procsim.dir/phys_mem.cc.o.d"
  "/root/repo/src/procsim/tlb.cc" "src/procsim/CMakeFiles/forklift_procsim.dir/tlb.cc.o" "gcc" "src/procsim/CMakeFiles/forklift_procsim.dir/tlb.cc.o.d"
  "/root/repo/src/procsim/trace.cc" "src/procsim/CMakeFiles/forklift_procsim.dir/trace.cc.o" "gcc" "src/procsim/CMakeFiles/forklift_procsim.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/forklift_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
