file(REMOVE_RECURSE
  "CMakeFiles/forklift_procsim.dir/address_space.cc.o"
  "CMakeFiles/forklift_procsim.dir/address_space.cc.o.d"
  "CMakeFiles/forklift_procsim.dir/cost_model.cc.o"
  "CMakeFiles/forklift_procsim.dir/cost_model.cc.o.d"
  "CMakeFiles/forklift_procsim.dir/cross_process.cc.o"
  "CMakeFiles/forklift_procsim.dir/cross_process.cc.o.d"
  "CMakeFiles/forklift_procsim.dir/kernel.cc.o"
  "CMakeFiles/forklift_procsim.dir/kernel.cc.o.d"
  "CMakeFiles/forklift_procsim.dir/page_table.cc.o"
  "CMakeFiles/forklift_procsim.dir/page_table.cc.o.d"
  "CMakeFiles/forklift_procsim.dir/phys_mem.cc.o"
  "CMakeFiles/forklift_procsim.dir/phys_mem.cc.o.d"
  "CMakeFiles/forklift_procsim.dir/tlb.cc.o"
  "CMakeFiles/forklift_procsim.dir/tlb.cc.o.d"
  "CMakeFiles/forklift_procsim.dir/trace.cc.o"
  "CMakeFiles/forklift_procsim.dir/trace.cc.o.d"
  "libforklift_procsim.a"
  "libforklift_procsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forklift_procsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
