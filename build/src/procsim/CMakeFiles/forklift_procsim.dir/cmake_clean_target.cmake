file(REMOVE_RECURSE
  "libforklift_procsim.a"
)
