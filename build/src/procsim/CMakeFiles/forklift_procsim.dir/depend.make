# Empty dependencies file for forklift_procsim.
# This may be replaced when dependencies are built.
