
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spawn/backend_clone3.cc" "src/spawn/CMakeFiles/forklift_spawn.dir/backend_clone3.cc.o" "gcc" "src/spawn/CMakeFiles/forklift_spawn.dir/backend_clone3.cc.o.d"
  "/root/repo/src/spawn/backend_common.cc" "src/spawn/CMakeFiles/forklift_spawn.dir/backend_common.cc.o" "gcc" "src/spawn/CMakeFiles/forklift_spawn.dir/backend_common.cc.o.d"
  "/root/repo/src/spawn/backend_forkexec.cc" "src/spawn/CMakeFiles/forklift_spawn.dir/backend_forkexec.cc.o" "gcc" "src/spawn/CMakeFiles/forklift_spawn.dir/backend_forkexec.cc.o.d"
  "/root/repo/src/spawn/backend_posix_spawn.cc" "src/spawn/CMakeFiles/forklift_spawn.dir/backend_posix_spawn.cc.o" "gcc" "src/spawn/CMakeFiles/forklift_spawn.dir/backend_posix_spawn.cc.o.d"
  "/root/repo/src/spawn/backend_vfork.cc" "src/spawn/CMakeFiles/forklift_spawn.dir/backend_vfork.cc.o" "gcc" "src/spawn/CMakeFiles/forklift_spawn.dir/backend_vfork.cc.o.d"
  "/root/repo/src/spawn/child.cc" "src/spawn/CMakeFiles/forklift_spawn.dir/child.cc.o" "gcc" "src/spawn/CMakeFiles/forklift_spawn.dir/child.cc.o.d"
  "/root/repo/src/spawn/command.cc" "src/spawn/CMakeFiles/forklift_spawn.dir/command.cc.o" "gcc" "src/spawn/CMakeFiles/forklift_spawn.dir/command.cc.o.d"
  "/root/repo/src/spawn/daemonize.cc" "src/spawn/CMakeFiles/forklift_spawn.dir/daemonize.cc.o" "gcc" "src/spawn/CMakeFiles/forklift_spawn.dir/daemonize.cc.o.d"
  "/root/repo/src/spawn/fd_actions.cc" "src/spawn/CMakeFiles/forklift_spawn.dir/fd_actions.cc.o" "gcc" "src/spawn/CMakeFiles/forklift_spawn.dir/fd_actions.cc.o.d"
  "/root/repo/src/spawn/spawner.cc" "src/spawn/CMakeFiles/forklift_spawn.dir/spawner.cc.o" "gcc" "src/spawn/CMakeFiles/forklift_spawn.dir/spawner.cc.o.d"
  "/root/repo/src/spawn/supervisor.cc" "src/spawn/CMakeFiles/forklift_spawn.dir/supervisor.cc.o" "gcc" "src/spawn/CMakeFiles/forklift_spawn.dir/supervisor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/forklift_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
