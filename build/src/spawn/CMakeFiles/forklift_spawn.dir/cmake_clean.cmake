file(REMOVE_RECURSE
  "CMakeFiles/forklift_spawn.dir/backend_clone3.cc.o"
  "CMakeFiles/forklift_spawn.dir/backend_clone3.cc.o.d"
  "CMakeFiles/forklift_spawn.dir/backend_common.cc.o"
  "CMakeFiles/forklift_spawn.dir/backend_common.cc.o.d"
  "CMakeFiles/forklift_spawn.dir/backend_forkexec.cc.o"
  "CMakeFiles/forklift_spawn.dir/backend_forkexec.cc.o.d"
  "CMakeFiles/forklift_spawn.dir/backend_posix_spawn.cc.o"
  "CMakeFiles/forklift_spawn.dir/backend_posix_spawn.cc.o.d"
  "CMakeFiles/forklift_spawn.dir/backend_vfork.cc.o"
  "CMakeFiles/forklift_spawn.dir/backend_vfork.cc.o.d"
  "CMakeFiles/forklift_spawn.dir/child.cc.o"
  "CMakeFiles/forklift_spawn.dir/child.cc.o.d"
  "CMakeFiles/forklift_spawn.dir/command.cc.o"
  "CMakeFiles/forklift_spawn.dir/command.cc.o.d"
  "CMakeFiles/forklift_spawn.dir/daemonize.cc.o"
  "CMakeFiles/forklift_spawn.dir/daemonize.cc.o.d"
  "CMakeFiles/forklift_spawn.dir/fd_actions.cc.o"
  "CMakeFiles/forklift_spawn.dir/fd_actions.cc.o.d"
  "CMakeFiles/forklift_spawn.dir/spawner.cc.o"
  "CMakeFiles/forklift_spawn.dir/spawner.cc.o.d"
  "CMakeFiles/forklift_spawn.dir/supervisor.cc.o"
  "CMakeFiles/forklift_spawn.dir/supervisor.cc.o.d"
  "libforklift_spawn.a"
  "libforklift_spawn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forklift_spawn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
