file(REMOVE_RECURSE
  "libforklift_spawn.a"
)
