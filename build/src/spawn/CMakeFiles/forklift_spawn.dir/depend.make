# Empty dependencies file for forklift_spawn.
# This may be replaced when dependencies are built.
