file(REMOVE_RECURSE
  "CMakeFiles/common_posix_test.dir/common/pipe_test.cc.o"
  "CMakeFiles/common_posix_test.dir/common/pipe_test.cc.o.d"
  "CMakeFiles/common_posix_test.dir/common/syscall_test.cc.o"
  "CMakeFiles/common_posix_test.dir/common/syscall_test.cc.o.d"
  "common_posix_test"
  "common_posix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_posix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
