# Empty dependencies file for common_posix_test.
# This may be replaced when dependencies are built.
