file(REMOVE_RECURSE
  "CMakeFiles/experiments_shape_test.dir/experiments/shape_test.cc.o"
  "CMakeFiles/experiments_shape_test.dir/experiments/shape_test.cc.o.d"
  "experiments_shape_test"
  "experiments_shape_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/experiments_shape_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
