# Empty compiler generated dependencies file for experiments_shape_test.
# This may be replaced when dependencies are built.
