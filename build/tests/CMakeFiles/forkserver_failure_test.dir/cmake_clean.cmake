file(REMOVE_RECURSE
  "CMakeFiles/forkserver_failure_test.dir/forkserver/failure_test.cc.o"
  "CMakeFiles/forkserver_failure_test.dir/forkserver/failure_test.cc.o.d"
  "forkserver_failure_test"
  "forkserver_failure_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forkserver_failure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
