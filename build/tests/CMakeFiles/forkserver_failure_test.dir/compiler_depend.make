# Empty compiler generated dependencies file for forkserver_failure_test.
# This may be replaced when dependencies are built.
