file(REMOVE_RECURSE
  "CMakeFiles/forkserver_fd_transfer_test.dir/forkserver/fd_transfer_test.cc.o"
  "CMakeFiles/forkserver_fd_transfer_test.dir/forkserver/fd_transfer_test.cc.o.d"
  "forkserver_fd_transfer_test"
  "forkserver_fd_transfer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forkserver_fd_transfer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
