# Empty dependencies file for forkserver_fd_transfer_test.
# This may be replaced when dependencies are built.
