file(REMOVE_RECURSE
  "CMakeFiles/forkserver_protocol_test.dir/forkserver/protocol_test.cc.o"
  "CMakeFiles/forkserver_protocol_test.dir/forkserver/protocol_test.cc.o.d"
  "forkserver_protocol_test"
  "forkserver_protocol_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forkserver_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
