# Empty dependencies file for forkserver_protocol_test.
# This may be replaced when dependencies are built.
