file(REMOVE_RECURSE
  "CMakeFiles/forkserver_server_test.dir/forkserver/server_test.cc.o"
  "CMakeFiles/forkserver_server_test.dir/forkserver/server_test.cc.o.d"
  "forkserver_server_test"
  "forkserver_server_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forkserver_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
