# Empty dependencies file for forkserver_server_test.
# This may be replaced when dependencies are built.
