file(REMOVE_RECURSE
  "CMakeFiles/forkserver_wire_test.dir/forkserver/wire_test.cc.o"
  "CMakeFiles/forkserver_wire_test.dir/forkserver/wire_test.cc.o.d"
  "forkserver_wire_test"
  "forkserver_wire_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forkserver_wire_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
