# Empty compiler generated dependencies file for forkserver_wire_test.
# This may be replaced when dependencies are built.
