file(REMOVE_RECURSE
  "CMakeFiles/hazards_aslr_test.dir/hazards/aslr_test.cc.o"
  "CMakeFiles/hazards_aslr_test.dir/hazards/aslr_test.cc.o.d"
  "hazards_aslr_test"
  "hazards_aslr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hazards_aslr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
