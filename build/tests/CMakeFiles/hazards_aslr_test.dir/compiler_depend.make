# Empty compiler generated dependencies file for hazards_aslr_test.
# This may be replaced when dependencies are built.
