file(REMOVE_RECURSE
  "CMakeFiles/hazards_env_audit_test.dir/hazards/env_audit_test.cc.o"
  "CMakeFiles/hazards_env_audit_test.dir/hazards/env_audit_test.cc.o.d"
  "hazards_env_audit_test"
  "hazards_env_audit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hazards_env_audit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
