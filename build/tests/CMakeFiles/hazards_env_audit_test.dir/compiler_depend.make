# Empty compiler generated dependencies file for hazards_env_audit_test.
# This may be replaced when dependencies are built.
