# Empty compiler generated dependencies file for hazards_fd_audit_test.
# This may be replaced when dependencies are built.
