# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for hazards_fd_audit_test.
