file(REMOVE_RECURSE
  "CMakeFiles/hazards_fork_guard_test.dir/hazards/fork_guard_test.cc.o"
  "CMakeFiles/hazards_fork_guard_test.dir/hazards/fork_guard_test.cc.o.d"
  "hazards_fork_guard_test"
  "hazards_fork_guard_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hazards_fork_guard_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
