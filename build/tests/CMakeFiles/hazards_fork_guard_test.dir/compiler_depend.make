# Empty compiler generated dependencies file for hazards_fork_guard_test.
# This may be replaced when dependencies are built.
