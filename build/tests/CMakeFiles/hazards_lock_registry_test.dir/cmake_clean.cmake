file(REMOVE_RECURSE
  "CMakeFiles/hazards_lock_registry_test.dir/hazards/lock_registry_test.cc.o"
  "CMakeFiles/hazards_lock_registry_test.dir/hazards/lock_registry_test.cc.o.d"
  "hazards_lock_registry_test"
  "hazards_lock_registry_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hazards_lock_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
