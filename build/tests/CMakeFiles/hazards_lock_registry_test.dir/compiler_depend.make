# Empty compiler generated dependencies file for hazards_lock_registry_test.
# This may be replaced when dependencies are built.
