# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for hazards_lock_registry_test.
