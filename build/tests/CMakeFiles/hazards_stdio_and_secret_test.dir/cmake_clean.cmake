file(REMOVE_RECURSE
  "CMakeFiles/hazards_stdio_and_secret_test.dir/hazards/stdio_and_secret_test.cc.o"
  "CMakeFiles/hazards_stdio_and_secret_test.dir/hazards/stdio_and_secret_test.cc.o.d"
  "hazards_stdio_and_secret_test"
  "hazards_stdio_and_secret_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hazards_stdio_and_secret_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
