# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for hazards_stdio_and_secret_test.
