# Empty dependencies file for hazards_stdio_and_secret_test.
# This may be replaced when dependencies are built.
