file(REMOVE_RECURSE
  "CMakeFiles/procsim_address_space_test.dir/procsim/address_space_test.cc.o"
  "CMakeFiles/procsim_address_space_test.dir/procsim/address_space_test.cc.o.d"
  "procsim_address_space_test"
  "procsim_address_space_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procsim_address_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
