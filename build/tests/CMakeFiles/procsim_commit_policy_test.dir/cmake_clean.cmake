file(REMOVE_RECURSE
  "CMakeFiles/procsim_commit_policy_test.dir/procsim/commit_policy_test.cc.o"
  "CMakeFiles/procsim_commit_policy_test.dir/procsim/commit_policy_test.cc.o.d"
  "procsim_commit_policy_test"
  "procsim_commit_policy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procsim_commit_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
