# Empty compiler generated dependencies file for procsim_commit_policy_test.
# This may be replaced when dependencies are built.
