# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for procsim_commit_policy_test.
