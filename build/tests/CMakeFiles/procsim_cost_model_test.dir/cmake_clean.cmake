file(REMOVE_RECURSE
  "CMakeFiles/procsim_cost_model_test.dir/procsim/cost_model_test.cc.o"
  "CMakeFiles/procsim_cost_model_test.dir/procsim/cost_model_test.cc.o.d"
  "procsim_cost_model_test"
  "procsim_cost_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procsim_cost_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
