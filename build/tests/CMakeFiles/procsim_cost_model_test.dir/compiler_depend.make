# Empty compiler generated dependencies file for procsim_cost_model_test.
# This may be replaced when dependencies are built.
