file(REMOVE_RECURSE
  "CMakeFiles/procsim_cross_process_test.dir/procsim/cross_process_test.cc.o"
  "CMakeFiles/procsim_cross_process_test.dir/procsim/cross_process_test.cc.o.d"
  "procsim_cross_process_test"
  "procsim_cross_process_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procsim_cross_process_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
