# Empty dependencies file for procsim_cross_process_test.
# This may be replaced when dependencies are built.
