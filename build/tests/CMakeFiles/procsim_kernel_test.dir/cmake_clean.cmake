file(REMOVE_RECURSE
  "CMakeFiles/procsim_kernel_test.dir/procsim/kernel_test.cc.o"
  "CMakeFiles/procsim_kernel_test.dir/procsim/kernel_test.cc.o.d"
  "procsim_kernel_test"
  "procsim_kernel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procsim_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
