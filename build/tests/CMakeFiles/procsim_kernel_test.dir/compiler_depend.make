# Empty compiler generated dependencies file for procsim_kernel_test.
# This may be replaced when dependencies are built.
