file(REMOVE_RECURSE
  "CMakeFiles/procsim_page_table_test.dir/procsim/page_table_test.cc.o"
  "CMakeFiles/procsim_page_table_test.dir/procsim/page_table_test.cc.o.d"
  "procsim_page_table_test"
  "procsim_page_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procsim_page_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
