# Empty dependencies file for procsim_page_table_test.
# This may be replaced when dependencies are built.
