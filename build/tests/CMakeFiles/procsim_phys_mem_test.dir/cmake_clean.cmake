file(REMOVE_RECURSE
  "CMakeFiles/procsim_phys_mem_test.dir/procsim/phys_mem_test.cc.o"
  "CMakeFiles/procsim_phys_mem_test.dir/procsim/phys_mem_test.cc.o.d"
  "procsim_phys_mem_test"
  "procsim_phys_mem_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procsim_phys_mem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
