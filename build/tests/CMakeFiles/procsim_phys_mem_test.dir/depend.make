# Empty dependencies file for procsim_phys_mem_test.
# This may be replaced when dependencies are built.
