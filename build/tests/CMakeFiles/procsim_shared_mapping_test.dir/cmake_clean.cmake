file(REMOVE_RECURSE
  "CMakeFiles/procsim_shared_mapping_test.dir/procsim/shared_mapping_test.cc.o"
  "CMakeFiles/procsim_shared_mapping_test.dir/procsim/shared_mapping_test.cc.o.d"
  "procsim_shared_mapping_test"
  "procsim_shared_mapping_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procsim_shared_mapping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
