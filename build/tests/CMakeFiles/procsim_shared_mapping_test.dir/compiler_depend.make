# Empty compiler generated dependencies file for procsim_shared_mapping_test.
# This may be replaced when dependencies are built.
