# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for procsim_shared_mapping_test.
