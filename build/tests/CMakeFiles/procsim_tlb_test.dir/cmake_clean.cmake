file(REMOVE_RECURSE
  "CMakeFiles/procsim_tlb_test.dir/procsim/tlb_test.cc.o"
  "CMakeFiles/procsim_tlb_test.dir/procsim/tlb_test.cc.o.d"
  "procsim_tlb_test"
  "procsim_tlb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procsim_tlb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
