# Empty compiler generated dependencies file for procsim_tlb_test.
# This may be replaced when dependencies are built.
