file(REMOVE_RECURSE
  "CMakeFiles/procsim_trace_test.dir/procsim/trace_test.cc.o"
  "CMakeFiles/procsim_trace_test.dir/procsim/trace_test.cc.o.d"
  "procsim_trace_test"
  "procsim_trace_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procsim_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
