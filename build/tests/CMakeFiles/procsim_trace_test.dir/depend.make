# Empty dependencies file for procsim_trace_test.
# This may be replaced when dependencies are built.
