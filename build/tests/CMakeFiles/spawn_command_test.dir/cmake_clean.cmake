file(REMOVE_RECURSE
  "CMakeFiles/spawn_command_test.dir/spawn/command_test.cc.o"
  "CMakeFiles/spawn_command_test.dir/spawn/command_test.cc.o.d"
  "spawn_command_test"
  "spawn_command_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spawn_command_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
