# Empty compiler generated dependencies file for spawn_command_test.
# This may be replaced when dependencies are built.
