# Empty compiler generated dependencies file for spawn_fd_actions_test.
# This may be replaced when dependencies are built.
