file(REMOVE_RECURSE
  "CMakeFiles/spawn_fd_plan_exec_test.dir/spawn/fd_plan_exec_test.cc.o"
  "CMakeFiles/spawn_fd_plan_exec_test.dir/spawn/fd_plan_exec_test.cc.o.d"
  "spawn_fd_plan_exec_test"
  "spawn_fd_plan_exec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spawn_fd_plan_exec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
