# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for spawn_fd_plan_exec_test.
