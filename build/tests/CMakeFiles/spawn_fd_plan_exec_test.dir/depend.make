# Empty dependencies file for spawn_fd_plan_exec_test.
# This may be replaced when dependencies are built.
