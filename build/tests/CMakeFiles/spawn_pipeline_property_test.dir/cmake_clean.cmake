file(REMOVE_RECURSE
  "CMakeFiles/spawn_pipeline_property_test.dir/spawn/pipeline_property_test.cc.o"
  "CMakeFiles/spawn_pipeline_property_test.dir/spawn/pipeline_property_test.cc.o.d"
  "spawn_pipeline_property_test"
  "spawn_pipeline_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spawn_pipeline_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
