# Empty dependencies file for spawn_pipeline_property_test.
# This may be replaced when dependencies are built.
