file(REMOVE_RECURSE
  "CMakeFiles/spawn_spawner_test.dir/spawn/spawner_test.cc.o"
  "CMakeFiles/spawn_spawner_test.dir/spawn/spawner_test.cc.o.d"
  "spawn_spawner_test"
  "spawn_spawner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spawn_spawner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
