# Empty compiler generated dependencies file for spawn_spawner_test.
# This may be replaced when dependencies are built.
