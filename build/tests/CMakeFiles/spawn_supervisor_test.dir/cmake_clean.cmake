file(REMOVE_RECURSE
  "CMakeFiles/spawn_supervisor_test.dir/spawn/supervisor_test.cc.o"
  "CMakeFiles/spawn_supervisor_test.dir/spawn/supervisor_test.cc.o.d"
  "spawn_supervisor_test"
  "spawn_supervisor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spawn_supervisor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
