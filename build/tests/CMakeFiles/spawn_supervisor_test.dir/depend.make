# Empty dependencies file for spawn_supervisor_test.
# This may be replaced when dependencies are built.
