file(REMOVE_RECURSE
  "CMakeFiles/tools_forkliftd_test.dir/tools/forkliftd_test.cc.o"
  "CMakeFiles/tools_forkliftd_test.dir/tools/forkliftd_test.cc.o.d"
  "tools_forkliftd_test"
  "tools_forkliftd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tools_forkliftd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
