# Empty compiler generated dependencies file for tools_forkliftd_test.
# This may be replaced when dependencies are built.
