file(REMOVE_RECURSE
  "CMakeFiles/forklift-run.dir/forklift_run.cc.o"
  "CMakeFiles/forklift-run.dir/forklift_run.cc.o.d"
  "forklift-run"
  "forklift-run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forklift-run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
