# Empty compiler generated dependencies file for forklift-run.
# This may be replaced when dependencies are built.
