file(REMOVE_RECURSE
  "CMakeFiles/forkliftd.dir/forkliftd.cc.o"
  "CMakeFiles/forkliftd.dir/forkliftd.cc.o.d"
  "forkliftd"
  "forkliftd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forkliftd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
