# Empty compiler generated dependencies file for forkliftd.
# This may be replaced when dependencies are built.
