// hazard_audit — §4 of the paper, live: make a process messy the way real
// programs are (leaky fds, buffered output, a lock held by a worker thread,
// an in-memory secret), then ask the ForkGuard whether fork would be safe.
//
// Run: ./build/examples/hazard_audit
#include <fcntl.h>
#include <unistd.h>

#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <thread>

#include "src/common/pipe.h"
#include "src/common/syscall.h"
#include "src/hazards/fd_audit.h"
#include "src/hazards/fork_guard.h"
#include "src/hazards/lock_registry.h"
#include "src/hazards/secret.h"
#include "src/hazards/stdio_audit.h"

using namespace forklift;

int main() {
  std::printf("=== forklift hazard audit demo ===\n\n");

  // A clean process first.
  auto clean = ForkGuard::CheckNow();
  if (!clean.ok()) {
    std::fprintf(stderr, "audit failed: %s\n", clean.error().ToString().c_str());
    return 1;
  }
  std::printf("[1] pristine process: %zu finding(s)\n%s\n\n", clean->finding_count(),
              clean->ToString().c_str());

  // Hazard A: descriptors without CLOEXEC (every child would inherit them).
  auto leaky_pipe = MakePipe(/*cloexec=*/false);
  auto log_fd = OpenFd("/tmp/forklift_demo_log", O_WRONLY | O_CREAT, 0644);
  if (!leaky_pipe.ok() || !log_fd.ok()) {
    return 1;
  }

  // Hazard B: unflushed buffered output (fork would duplicate it).
  FILE* log_stream = std::tmpfile();
  setvbuf(log_stream, nullptr, _IOFBF, 8192);
  std::fputs("half-written log line without newline", log_stream);
  StdioAudit::Instance().Register("applog", log_stream);

  // Hazard C: a lock held by another thread (a forked child would deadlock
  // on it — think malloc's arena lock).
  TrackedMutex cache_lock("cache.shard0");
  std::mutex cv_mu;
  std::condition_variable cv;
  bool locked = false, release = false;
  std::thread worker([&] {
    std::lock_guard<TrackedMutex> hold(cache_lock);
    {
      std::lock_guard<std::mutex> l(cv_mu);
      locked = true;
    }
    cv.notify_all();
    std::unique_lock<std::mutex> l(cv_mu);
    cv.wait(l, [&] { return release; });
  });
  {
    std::unique_lock<std::mutex> l(cv_mu);
    cv.wait(l, [&] { return locked; });
  }

  // Now audit again.
  auto dirty = ForkGuard::CheckNow();
  if (!dirty.ok()) {
    return 1;
  }
  std::printf("[2] after making a mess: %zu finding(s)\n%s\n\n", dirty->finding_count(),
              dirty->ToString().c_str());

  // The fd audit in detail.
  auto fds = AuditFds();
  if (fds.ok()) {
    std::printf("[3] full descriptor table (%zu open):\n", fds->size());
    for (const auto& info : *fds) {
      std::printf("    %s\n", info.ToString().c_str());
    }
    std::printf("\n");
  }

  // Secrets: protected memory that cannot reach a forked child.
  auto secret = SecretBuffer::Create(64);
  if (secret.ok()) {
    (void)secret->Store("sk-live-EXAMPLE-KEY");
    std::printf("[4] secret stored in a %s buffer (wipe-on-fork: %s)\n",
                secret->wipe_on_fork() ? "kernel-wiped" : "plain",
                secret->wipe_on_fork() ? "yes — forked children see zeros" : "NO");
  }

  // Fix the fixable hazards and show the report shrink.
  size_t flushed = StdioAudit::Instance().FlushAll();
  (void)SetCloexec(leaky_pipe->read_end.get(), true);
  (void)SetCloexec(leaky_pipe->write_end.get(), true);
  (void)SetCloexec(log_fd->get(), true);
  {
    std::lock_guard<std::mutex> l(cv_mu);
    release = true;
  }
  cv.notify_all();
  worker.join();

  auto fixed = ForkGuard::CheckNow();
  if (!fixed.ok()) {
    return 1;
  }
  std::printf("\n[5] after remediation (flushed %zu buffered bytes, CLOEXEC'd 3 fds,\n"
              "    released the foreign lock): %zu finding(s)\n%s\n",
              flushed, fixed->finding_count(), fixed->ToString().c_str());

  StdioAudit::Instance().Unregister(log_stream);
  std::fclose(log_stream);
  std::remove("/tmp/forklift_demo_log");
  return 0;
}
