// minishell — a usable mini shell built entirely on the forklift public API.
//
// The paper's motivating use case for fork is "it's how shells work". This
// example is a working shell with pipelines, redirections, environment
// assignment, backends and builtins — and user code never calls fork: every
// process comes from a Spawner, on whichever backend you pick at runtime.
//
// Usage:
//   ./build/examples/minishell            # interactive
//   echo 'ls -l | head -3' | ./build/examples/minishell
//
// Supported syntax (no globbing or expansion):
//   cmd a b | cmd2 c | cmd3        pipelines
//   cmd > file   cmd >> file       stdout redirection
//   cmd < file                     stdin redirection
//   VAR=value cmd                  per-command environment
//   'single' "double" back\slash   quoting (literal; no $ expansion)
//   cd DIR, exit [N], backend [NAME], help    builtins
//
// `backend` picks the SpawnService route every subsequent command launches
// through: forkexec | vfork | spawn | clone3 run in-process; forkserver and
// sharded route the spawn to a zygote — the pipeline's fds ride along over
// SCM_RIGHTS, and the shell holds the same ProcessHandle either way.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "src/common/pipe.h"
#include "src/common/string_util.h"
#include "src/forkserver/service_adapters.h"
#include "src/forkserver/sharded.h"
#include "src/spawn/process_handle.h"
#include "src/spawn/service.h"
#include "src/spawn/spawner.h"

using namespace forklift;

namespace {

struct ParsedCommand {
  std::vector<std::string> argv;
  std::vector<std::pair<std::string, std::string>> env;
  std::string stdin_path;
  std::string stdout_path;
  bool stdout_append = false;
};

struct ParsedLine {
  std::vector<ParsedCommand> stages;
};

// Shell-style tokenizer: whitespace splits; '...' and "..." group literally
// (no expansion); backslash escapes the next character outside single quotes.
// `|`, `<`, `>`, `>>` are their own tokens when unquoted.
bool Tokenize(const std::string& line, std::vector<std::string>* out, std::string* error) {
  out->clear();
  std::string cur;
  bool have_token = false;
  size_t i = 0;
  auto flush = [&] {
    if (have_token) {
      out->push_back(cur);
      cur.clear();
      have_token = false;
    }
  };
  while (i < line.size()) {
    char c = line[i];
    if (c == ' ' || c == '\t') {
      flush();
      ++i;
      continue;
    }
    if (c == '\'' || c == '"') {
      char quote = c;
      ++i;
      have_token = true;
      while (i < line.size() && line[i] != quote) {
        if (quote == '"' && line[i] == '\\' && i + 1 < line.size()) {
          ++i;  // backslash escapes inside double quotes
        }
        cur.push_back(line[i++]);
      }
      if (i >= line.size()) {
        *error = std::string("unterminated ") + quote + "-quote";
        return false;
      }
      ++i;  // closing quote
      continue;
    }
    if (c == '\\') {
      if (i + 1 >= line.size()) {
        *error = "trailing backslash";
        return false;
      }
      cur.push_back(line[i + 1]);
      have_token = true;
      i += 2;
      continue;
    }
    if (c == '|' || c == '<' || c == '>') {
      flush();
      if (c == '>' && i + 1 < line.size() && line[i + 1] == '>') {
        out->push_back(">>");
        i += 2;
      } else {
        out->push_back(std::string(1, c));
        ++i;
      }
      continue;
    }
    cur.push_back(c);
    have_token = true;
    ++i;
  }
  flush();
  return true;
}

bool ParseLine(const std::string& line, ParsedLine* out, std::string* error) {
  out->stages.clear();
  ParsedCommand cur;
  auto flush_stage = [&]() -> bool {
    if (cur.argv.empty()) {
      *error = "empty pipeline stage";
      return false;
    }
    out->stages.push_back(std::move(cur));
    cur = ParsedCommand{};
    return true;
  };

  std::vector<std::string> tokens;
  if (!Tokenize(line, &tokens, error)) {
    return false;
  }
  for (size_t i = 0; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    if (tok == "|") {
      if (!flush_stage()) {
        return false;
      }
      continue;
    }
    if (tok == "<" || tok == ">" || tok == ">>") {
      if (i + 1 >= tokens.size()) {
        *error = "missing filename after '" + tok + "'";
        return false;
      }
      const std::string& path = tokens[++i];
      if (tok == "<") {
        cur.stdin_path = path;
      } else {
        cur.stdout_path = path;
        cur.stdout_append = tok == ">>";
      }
      continue;
    }
    // VAR=value prefixes (only before the program name).
    size_t eq = tok.find('=');
    if (cur.argv.empty() && eq != std::string::npos && eq > 0 &&
        tok.find('/') == std::string::npos) {
      cur.env.emplace_back(tok.substr(0, eq), tok.substr(eq + 1));
      continue;
    }
    cur.argv.push_back(tok);
  }
  if (cur.argv.empty() && out->stages.empty()) {
    return true;  // blank line
  }
  return flush_stage();
}

class MiniShell {
 public:
  MiniShell() {
    // Every mechanism the shell can name, registered once; the `backend`
    // builtin just changes which route commands are pinned to.
    service_.AddLocalRoute(SpawnBackendKind::kForkExec);
    service_.AddLocalRoute(SpawnBackendKind::kVfork);
    service_.AddLocalRoute(SpawnBackendKind::kPosixSpawn);
    service_.AddLocalRoute(SpawnBackendKind::kCloneVm);
    service_.AddRoute(ForkServerTransport::StartInProcess());  // forks lazily
    service_.AddRoute(ShardedTransport::StartLazy(ShardedForkServer::Options{}));
  }

  int Run() {
    std::string line;
    while (Prompt(), std::getline(std::cin, line)) {
      Execute(line);
      if (exiting_) {
        break;
      }
    }
    return exit_code_;
  }

 private:
  void Prompt() {
    if (isatty(STDIN_FILENO)) {
      std::printf("forklift[%s]$ ", route_.c_str());
      std::fflush(stdout);
    }
  }

  void Execute(const std::string& line) {
    ParsedLine parsed;
    std::string error;
    if (!ParseLine(line, &parsed, &error)) {
      std::fprintf(stderr, "minishell: %s\n", error.c_str());
      return;
    }
    if (parsed.stages.empty()) {
      return;
    }
    if (parsed.stages.size() == 1 && TryBuiltin(parsed.stages[0])) {
      return;
    }
    RunExternal(parsed);
  }

  bool TryBuiltin(const ParsedCommand& cmd) {
    const std::string& name = cmd.argv[0];
    if (name == "exit") {
      exit_code_ = cmd.argv.size() > 1 ? std::atoi(cmd.argv[1].c_str()) : 0;
      exiting_ = true;
      return true;
    }
    if (name == "cd") {
      const char* dir = cmd.argv.size() > 1 ? cmd.argv[1].c_str() : getenv("HOME");
      if (dir == nullptr || ::chdir(dir) < 0) {
        std::perror("cd");
      }
      return true;
    }
    if (name == "backend") {
      if (cmd.argv.size() > 1) {
        const std::string& want = cmd.argv[1];
        if (want == "fork" || want == "forkexec") {
          route_ = "local:forkexec";
        } else if (want == "vfork") {
          route_ = "local:vfork";
        } else if (want == "spawn" || want == "posix_spawn") {
          route_ = "local:posix_spawn";
        } else if (want == "clone3") {
          route_ = "local:clone3";
        } else if (want == "forkserver" || want == "sharded") {
          route_ = want;
        } else {
          std::fprintf(stderr, "backend: forkexec | vfork | spawn | clone3 | "
                               "forkserver | sharded\n");
        }
      }
      std::printf("backend: %s\n", route_.c_str());
      return true;
    }
    if (name == "help") {
      std::printf("builtins: cd DIR, exit [N], backend "
                  "[forkexec|vfork|spawn|clone3|forkserver|sharded], help\n"
                  "syntax:   cmd a | cmd2 b, < file, > file, >> file, VAR=v cmd\n");
      return true;
    }
    return false;
  }

  void RunExternal(const ParsedLine& line) {
    std::vector<Pipe> pipes;
    for (size_t i = 0; i + 1 < line.stages.size(); ++i) {
      auto p = MakePipe();
      if (!p.ok()) {
        std::fprintf(stderr, "minishell: %s\n", p.error().ToString().c_str());
        return;
      }
      pipes.push_back(std::move(p).value());
    }

    std::vector<ProcessHandle> children;
    for (size_t i = 0; i < line.stages.size(); ++i) {
      const ParsedCommand& cmd = line.stages[i];
      Spawner s(cmd.argv[0]);
      for (size_t a = 1; a < cmd.argv.size(); ++a) {
        s.Arg(cmd.argv[a]);
      }
      for (const auto& [k, v] : cmd.env) {
        s.SetEnv(k, v);
      }

      if (!cmd.stdin_path.empty()) {
        s.SetStdin(Stdio::Path(cmd.stdin_path));
      } else if (i > 0) {
        s.SetStdin(Stdio::Fd(pipes[i - 1].read_end.get()));
      }
      if (!cmd.stdout_path.empty()) {
        s.SetStdout(cmd.stdout_append ? Stdio::AppendPath(cmd.stdout_path)
                                      : Stdio::Path(cmd.stdout_path));
      } else if (i + 1 < line.stages.size()) {
        s.SetStdout(Stdio::Fd(pipes[i].write_end.get()));
      }

      auto child = service_.Spawn(s, route_);
      if (!child.ok()) {
        std::fprintf(stderr, "minishell: %s: %s\n", cmd.argv[0].c_str(),
                     child.error().ToString().c_str());
        for (auto& c : children) {
          (void)c.KillAndWait();
        }
        return;
      }
      children.push_back(std::move(child).value());
    }
    pipes.clear();  // drop parent copies so EOF propagates

    for (auto& c : children) {
      auto st = c.Wait();
      if (st.ok() && !st->Success() && isatty(STDIN_FILENO)) {
        std::fprintf(stderr, "minishell: [%d] %s\n", static_cast<int>(c.pid()),
                     st->ToString().c_str());
      }
    }
  }

  SpawnService service_;
  std::string route_ = "local:posix_spawn";
  bool exiting_ = false;
  int exit_code_ = 0;
};

}  // namespace

int main() { return MiniShell().Run(); }
