// forklift quickstart — the 60-second tour of the spawn API.
//
// Build & run:  ./build/examples/quickstart
//
// Shows the three everyday shapes: run-and-capture, a spawner with explicit
// stdio plumbing, and a shell-free pipeline — all without fork appearing
// anywhere in user code (the backend is selectable, and the default engine is
// swappable for posix_spawn with one call).
#include <cstdio>

#include "src/spawn/command.h"
#include "src/spawn/spawner.h"

using namespace forklift;

int main() {
  // 1. One-liner: run a program, collect everything.
  auto result = RunAndCapture("uname", {"-sr"});
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.error().ToString().c_str());
    return 1;
  }
  std::printf("[1] uname says: %s", result->stdout_data.c_str());

  // 2. Full control: environment, working directory, stdio dispositions,
  //    and the creation primitive itself.
  auto child = Spawner("/bin/sh")
                   .Args({"-c", "echo \"pwd=$(pwd) who=$FORKLIFT_USER\""})
                   .SetEnv("FORKLIFT_USER", "quickstart")
                   .SetCwd("/tmp")
                   .SetStdout(Stdio::Pipe())
                   .SetBackend(SpawnBackendKind::kPosixSpawn)  // or kForkExec, kVfork
                   .Spawn();
  if (!child.ok()) {
    std::fprintf(stderr, "error: %s\n", child.error().ToString().c_str());
    return 1;
  }
  auto outcome = child->Communicate();
  if (!outcome.ok()) {
    std::fprintf(stderr, "error: %s\n", outcome.error().ToString().c_str());
    return 1;
  }
  std::printf("[2] child (exit %d) said: %s", outcome->status.exit_code,
              outcome->stdout_data.c_str());

  // 3. A pipeline, concurrently spawned, no /bin/sh required:
  //    printf 'c\nb\na\n' | sort | head -n 2
  auto pipeline = RunPipeline({
      {"printf", {"c\\nb\\na\\n"}},
      {"sort", {}},
      {"head", {"-n", "2"}},
  });
  if (!pipeline.ok()) {
    std::fprintf(stderr, "error: %s\n", pipeline.error().ToString().c_str());
    return 1;
  }
  std::printf("[3] pipeline output:\n%s", pipeline->stdout_data.c_str());
  return 0;
}
