// service_fleet — run a small fleet of services under the Supervisor:
// restart-on-failure with backoff, abandonment of crash-loopers, and a
// graceful TERM→KILL shutdown. This is the layer the paper's §4 complaints
// make painful to write on raw fork/SIGCHLD, shown on the spawn API instead.
//
// Every (re)start routes through one SpawnService, so where the fleet's
// children actually come from (which local backend, or a zygote) is routing
// policy, not supervisor code.
//
// Run: ./build/examples/service_fleet
#include <cstdio>

#include "src/spawn/service.h"
#include "src/spawn/supervisor.h"

using namespace forklift;

int main() {
  // posix_spawn primary with a fork+exec fallback: if the fast path ever
  // fails as a transport would, the chain degrades instead of the fleet.
  SpawnService spawns;
  spawns.AddLocalRoute(SpawnBackendKind::kPosixSpawn);
  spawns.AddLocalRoute(SpawnBackendKind::kForkExec);

  Supervisor::Options opts;
  opts.restart_backoff_base_seconds = 0.05;
  opts.max_consecutive_failures = 3;
  opts.shutdown_grace_seconds = 1.0;
  Supervisor fleet(opts, &spawns);

  // A long-running worker, a periodic one-shot, and a crash-looper.
  Spawner steady("/bin/sh");
  steady.Args({"-c", "sleep 600"});
  Spawner periodic("/bin/sh");
  periodic.Args({"-c", "sleep 0.2; exit 0"});
  Spawner crasher("/bin/sh");
  crasher.Args({"-c", "sleep 0.05; exit 1"});

  auto steady_id = fleet.Launch(steady, "steady-worker", RestartPolicy::kOnFailure);
  auto periodic_id = fleet.Launch(periodic, "periodic-task", RestartPolicy::kAlways);
  auto crasher_id = fleet.Launch(crasher, "crash-looper", RestartPolicy::kOnFailure);
  if (!steady_id.ok() || !periodic_id.ok() || !crasher_id.ok()) {
    std::fprintf(stderr, "launch failed\n");
    return 1;
  }
  std::printf("fleet up: %zu services running\n", fleet.running_count());

  // Supervise for ~2 seconds of wall time, narrating events.
  for (int tick = 0; tick < 20; ++tick) {
    auto events = fleet.WaitEvents(0.1);
    if (!events.ok()) {
      std::fprintf(stderr, "supervision error: %s\n", events.error().ToString().c_str());
      return 1;
    }
    for (const auto& ev : *events) {
      std::printf("  [%s] %s%s%s\n", ev.name.c_str(), ev.status.ToString().c_str(),
                  ev.will_restart ? " -> restarting" : "",
                  ev.abandoned ? " -> ABANDONED (crash loop)" : "");
    }
  }

  std::printf("\nafter 2s: steady started %llu time(s), periodic %llu, crasher %llu\n",
              static_cast<unsigned long long>(fleet.StartCount(*steady_id).ValueOr(0)),
              static_cast<unsigned long long>(fleet.StartCount(*periodic_id).ValueOr(0)),
              static_cast<unsigned long long>(fleet.StartCount(*crasher_id).ValueOr(0)));
  std::printf("shutting the fleet down gracefully...\n");
  if (!fleet.ShutdownAll().ok()) {
    std::fprintf(stderr, "shutdown reported an error\n");
    return 1;
  }
  std::printf("fleet down. %zu services running\n", fleet.running_count());
  return 0;
}
