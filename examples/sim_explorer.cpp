// sim_explorer — drive the procsim kernel interactively-ish: build a process
// tree, watch COW sharing, break it with writes, and read the cost ledger.
// This is §5 of the paper (what fork makes the kernel do) made observable.
//
// Run: ./build/examples/sim_explorer
#include <cstdio>

#include "src/common/string_util.h"
#include "src/procsim/kernel.h"
#include "src/procsim/trace.h"

using namespace forklift;
using namespace forklift::procsim;

namespace {

void ShowProcess(SimKernel& kernel, Pid pid, const char* label) {
  auto proc = kernel.Find(pid);
  if (!proc.ok()) {
    return;
  }
  auto& as = *(*proc)->as;
  std::printf("  %-8s pid=%llu resident=%s pt_pages=%llu cow_breaks=%llu faults=%llu\n", label,
              static_cast<unsigned long long>(pid),
              HumanBytes(as.mapped_bytes()).c_str(),
              static_cast<unsigned long long>(as.table_pages()),
              static_cast<unsigned long long>(as.cow_breaks()),
              static_cast<unsigned long long>(as.demand_faults()));
}

}  // namespace

int main() {
  SimKernel kernel;
  KernelTracer tracer;
  kernel.AttachTracer(&tracer);
  std::printf("=== procsim explorer ===\n\n");

  ProgramImage shell;
  shell.name = "shell";
  auto init = kernel.CreateInit(shell);
  if (!init.ok()) {
    std::fprintf(stderr, "boot failed: %s\n", init.error().ToString().c_str());
    return 1;
  }
  Pid parent = *init;

  std::printf("[1] booted init and dirtied a 64 MiB heap\n");
  auto heap = kernel.MapAnon(parent, 64ull << 20, "heap");
  if (!heap.ok() || !kernel.Touch(parent, *heap, 64ull << 20, true).ok()) {
    return 1;
  }
  ShowProcess(kernel, parent, "init");
  std::printf("  physical frames in use: %llu\n\n",
              static_cast<unsigned long long>(kernel.memory().used_frames()));

  std::printf("[2] fork: the whole page-table radix is replicated, no data copied\n");
  uint64_t ns_before = kernel.clock().now_ns();
  auto child = kernel.Fork(parent);
  if (!child.ok()) {
    return 1;
  }
  std::printf("  fork cost: %s of simulated time\n",
              HumanNanos(static_cast<double>(kernel.clock().now_ns() - ns_before)).c_str());
  ShowProcess(kernel, parent, "init");
  ShowProcess(kernel, *child, "child");
  std::printf("  physical frames in use: %llu (unchanged: COW sharing)\n\n",
              static_cast<unsigned long long>(kernel.memory().used_frames()));
  std::printf("process table:\n%s\n", kernel.FormatProcessTable().c_str());

  std::printf("[3] the child rewrites a quarter of the heap: COW breaks, frames split\n");
  if (!kernel.Touch(*child, *heap, 16ull << 20, true).ok()) {
    return 1;
  }
  ShowProcess(kernel, *child, "child");
  std::printf("  physical frames in use: %llu (+4096 copied frames)\n\n",
              static_cast<unsigned long long>(kernel.memory().used_frames()));

  std::printf("[4] grandchild via spawn: fresh image, parent size irrelevant\n");
  ProgramImage tool;
  tool.name = "tool";
  ns_before = kernel.clock().now_ns();
  auto grandchild = kernel.Spawn(*child, tool);
  if (!grandchild.ok()) {
    return 1;
  }
  std::printf("  spawn cost: %s of simulated time\n",
              HumanNanos(static_cast<double>(kernel.clock().now_ns() - ns_before)).c_str());
  ShowProcess(kernel, *grandchild, "tool");

  std::printf("\n[5] unwind the tree and read the cost ledger\n");
  (void)kernel.Exit(*grandchild, 0);
  (void)kernel.Wait(*child, *grandchild);
  (void)kernel.Exit(*child, 0);
  (void)kernel.Wait(parent, *child);
  std::printf("  frames after teardown: %llu\n",
              static_cast<unsigned long long>(kernel.memory().used_frames()));
  std::printf("\nsimulated-time ledger (%s total):\n%s\n",
              HumanNanos(static_cast<double>(kernel.clock().now_ns())).c_str(),
              kernel.clock().Breakdown().c_str());

  std::printf("\nkernel journal:\n%s", tracer.ToString().c_str());
  return 0;
}
