// zygote_service — the Android-zygote scenario from §6 of the paper.
//
// A "big" application process (we simulate bigness with dirty ballast) needs
// to launch many short-lived helpers. Forking the big process directly pays
// the Figure-1 tax on every launch; instead, a tiny fork server started
// before the application grew does the forking, with the client's pipes
// passed over SCM_RIGHTS so the helpers still talk to us directly.
//
// Both paths go through one SpawnService — the caller picks a *route*
// ("local:forkexec" vs "forkserver") and holds the same ProcessHandle either
// way; where the child's parent lives is the routing layer's business.
//
// Run: ./build/examples/zygote_service [ballast_mib]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/benchlib/memtouch.h"
#include "src/common/clock.h"
#include "src/common/pipe.h"
#include "src/common/string_util.h"
#include "src/common/syscall.h"
#include "src/forkserver/service_adapters.h"
#include "src/spawn/process_handle.h"
#include "src/spawn/service.h"
#include "src/spawn/spawner.h"

using namespace forklift;

namespace {

// Launches `date` through the given route and returns its output plus the
// wall time of launch+read+reap.
struct LaunchResult {
  std::string output;
  double millis = -1;
};

LaunchResult ViaRoute(SpawnService& service, const char* route) {
  LaunchResult r;
  Stopwatch sw;
  // An explicit pipe + Stdio::Fd works on every route: locally the fd is
  // dup2'd into the child, remotely it rides SCM_RIGHTS to the server.
  auto pipe = MakePipe();
  if (!pipe.ok()) {
    return r;
  }
  Spawner s("date");
  s.Arg("+%T").SetStdout(Stdio::Fd(pipe->write_end.get()));
  auto child = service.Spawn(s, route);
  if (!child.ok()) {
    std::fprintf(stderr, "%s spawn failed: %s\n", route, child.error().ToString().c_str());
    return r;
  }
  pipe->write_end.Reset();
  auto data = ReadAll(pipe->read_end.get());
  auto st = child->Wait();
  if (!data.ok() || !st.ok()) {
    return r;
  }
  r.output = *data;
  r.millis = sw.ElapsedMillis();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  size_t ballast_mib = argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 512;

  // Step 1: start the zygote while we are still small. The transport forks
  // lazily, so probe it now — before the ballast — to pin the server's
  // address-space snapshot at "tiny".
  SpawnService service;
  auto zygote = ForkServerTransport::StartInProcess();
  ForkServerTransport* zygote_probe = zygote.get();
  service.AddRoute(std::move(zygote));
  service.AddLocalRoute(SpawnBackendKind::kForkExec);
  if (!zygote_probe->Probe().ok()) {
    std::fprintf(stderr, "zygote not answering\n");
    return 1;
  }
  std::printf("zygote up, application about to bloat to %zu MiB...\n", ballast_mib);

  // Step 2: become a big application.
  HeapBallast ballast;
  if (!ballast.Resize(ballast_mib << 20).ok()) {
    std::fprintf(stderr, "ballast allocation failed\n");
    return 1;
  }

  // Step 3: launch helpers over both routes and compare.
  constexpr int kLaunches = 10;
  double direct_total = 0, zygote_total = 0;
  std::string last_direct, last_zygote;
  for (int i = 0; i < kLaunches; ++i) {
    ballast.TouchAll();  // stay dirty, as a real app's heap would be
    LaunchResult d = ViaRoute(service, "local:forkexec");
    LaunchResult z = ViaRoute(service, "forkserver");
    if (d.millis < 0 || z.millis < 0) {
      return 1;
    }
    direct_total += d.millis;
    zygote_total += z.millis;
    last_direct = d.output;
    last_zygote = z.output;
  }

  std::printf("\nhelper output (direct):  %s", last_direct.c_str());
  std::printf("helper output (zygote):  %s\n", last_zygote.c_str());
  std::printf("avg launch via direct fork+exec : %6.2f ms (parent: %s dirty)\n",
              direct_total / kLaunches, HumanBytes(ballast_mib << 20).c_str());
  std::printf("avg launch via zygote           : %6.2f ms (zygote stayed tiny)\n",
              zygote_total / kLaunches);
  std::printf("speedup: %.1fx\n", direct_total / zygote_total);

  RouteMetrics::Snapshot stats = service.RouteStats("forkserver");
  std::printf("route 'forkserver': %llu attempts, %llu successes\n",
              static_cast<unsigned long long>(stats.attempts),
              static_cast<unsigned long long>(stats.successes));
  return 0;  // the transport shuts its server down on destruction
}
