// zygote_service — the Android-zygote scenario from §6 of the paper.
//
// A "big" application process (we simulate bigness with dirty ballast) needs
// to launch many short-lived helpers. Forking the big process directly pays
// the Figure-1 tax on every launch; instead, a tiny fork server started
// before the application grew does the forking, with the client's pipes
// passed over SCM_RIGHTS so the helpers still talk to us directly.
//
// Run: ./build/examples/zygote_service [ballast_mib]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/benchlib/memtouch.h"
#include "src/common/clock.h"
#include "src/common/pipe.h"
#include "src/common/string_util.h"
#include "src/common/syscall.h"
#include "src/forkserver/client.h"
#include "src/forkserver/server.h"
#include "src/spawn/spawner.h"

using namespace forklift;

namespace {

// Launches `date` through the given spawn path and returns its output plus
// the wall time of launch+read+reap.
struct LaunchResult {
  std::string output;
  double millis = -1;
};

LaunchResult ViaDirectFork() {
  LaunchResult r;
  Stopwatch sw;
  auto child = Spawner("date").Arg("+%T").SetStdout(Stdio::Pipe()).Spawn();
  if (!child.ok()) {
    std::fprintf(stderr, "direct spawn failed: %s\n", child.error().ToString().c_str());
    return r;
  }
  auto oc = child->Communicate();
  if (!oc.ok()) {
    return r;
  }
  r.output = oc->stdout_data;
  r.millis = sw.ElapsedMillis();
  return r;
}

LaunchResult ViaZygote(ForkServerClient& zygote) {
  LaunchResult r;
  Stopwatch sw;
  auto pipe = MakePipe();
  if (!pipe.ok()) {
    return r;
  }
  Spawner s("date");
  s.Arg("+%T").SetStdout(Stdio::Fd(pipe->write_end.get()));
  auto child = zygote.Spawn(s);
  if (!child.ok()) {
    std::fprintf(stderr, "zygote spawn failed: %s\n", child.error().ToString().c_str());
    return r;
  }
  pipe->write_end.Reset();
  auto data = ReadAll(pipe->read_end.get());
  auto st = child->Wait();
  if (!data.ok() || !st.ok()) {
    return r;
  }
  r.output = *data;
  r.millis = sw.ElapsedMillis();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  size_t ballast_mib = argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 512;

  // Step 1: start the zygote while we are still small.
  auto handle = StartForkServerProcess();
  if (!handle.ok()) {
    std::fprintf(stderr, "failed to start zygote: %s\n", handle.error().ToString().c_str());
    return 1;
  }
  ForkServerClient zygote(std::move(handle->client_sock));
  if (!zygote.Ping().ok()) {
    std::fprintf(stderr, "zygote not answering\n");
    return 1;
  }
  std::printf("zygote up (pid %d), application about to bloat to %zu MiB...\n",
              static_cast<int>(handle->server_pid), ballast_mib);

  // Step 2: become a big application.
  HeapBallast ballast;
  if (!ballast.Resize(ballast_mib << 20).ok()) {
    std::fprintf(stderr, "ballast allocation failed\n");
    return 1;
  }

  // Step 3: launch helpers both ways and compare.
  constexpr int kLaunches = 10;
  double direct_total = 0, zygote_total = 0;
  std::string last_direct, last_zygote;
  for (int i = 0; i < kLaunches; ++i) {
    ballast.TouchAll();  // stay dirty, as a real app's heap would be
    LaunchResult d = ViaDirectFork();
    LaunchResult z = ViaZygote(zygote);
    if (d.millis < 0 || z.millis < 0) {
      return 1;
    }
    direct_total += d.millis;
    zygote_total += z.millis;
    last_direct = d.output;
    last_zygote = z.output;
  }

  std::printf("\nhelper output (direct):  %s", last_direct.c_str());
  std::printf("helper output (zygote):  %s\n", last_zygote.c_str());
  std::printf("avg launch via direct fork+exec : %6.2f ms (parent: %s dirty)\n",
              direct_total / kLaunches, HumanBytes(ballast_mib << 20).c_str());
  std::printf("avg launch via zygote           : %6.2f ms (zygote stayed tiny)\n",
              zygote_total / kLaunches);
  std::printf("speedup: %.1fx\n", direct_total / zygote_total);

  (void)zygote.Shutdown();
  (void)WaitForExit(handle->server_pid);
  return 0;
}
