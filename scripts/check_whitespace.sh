#!/bin/sh
# Mechanical whitespace hygiene for the whole tree: no tab indentation in
# C++ sources, no trailing whitespace, and every text file ends in exactly
# one newline. CI runs this as a hard gate; run it locally before pushing.
#
# Usage: scripts/check_whitespace.sh   (from the repo root)
set -u

fail=0

files=$(git ls-files '*.cc' '*.cpp' '*.cxx' '*.h' '*.hpp' '*.md' '*.txt' '*.yml' '*.supp' '*.sh')

for f in $files; do
  if grep -n "$(printf '\t')" "$f" >/dev/null; then
    echo "TAB: $f"
    grep -n "$(printf '\t')" "$f" | head -3
    fail=1
  fi
  if grep -n ' $' "$f" >/dev/null; then
    echo "TRAILING WHITESPACE: $f"
    grep -n ' $' "$f" | head -3
    fail=1
  fi
  if [ -s "$f" ] && [ "$(tail -c 1 "$f" | od -An -c | tr -d ' \n')" != '\n' ]; then
    echo "MISSING FINAL NEWLINE: $f"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "whitespace check FAILED"
  exit 1
fi
echo "whitespace check passed ($(echo "$files" | wc -w) files)"
