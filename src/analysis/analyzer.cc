#include "src/analysis/analyzer.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "src/analysis/rules/rules.h"
#include "src/common/string_util.h"

namespace forklift {
namespace analysis {

namespace {

// Extracts the `(R1,R2)` rule list following an ignore marker; an absent or
// unparenthesized tail means "all rules".
std::set<std::string> ParseRuleList(std::string_view rest) {
  std::set<std::string> rules;
  if (!rest.empty() && rest.front() == '(') {
    size_t close = rest.find(')');
    std::string_view list = rest.substr(1, close == std::string_view::npos ? rest.size() - 1 : close - 1);
    for (const auto& id : Split(std::string(list), ',')) {
      std::string trimmed(Trim(id));
      if (!trimmed.empty()) {
        rules.insert(trimmed);
      }
    }
  }
  return rules;
}

}  // namespace

// A plain `forklint:ignore` on a line with code shields that line; on a line
// of its own it shields the line after it (so a note can sit above the
// flagged statement). The explicit `forklint:ignore-next` form always shields
// the next line, even as a trailing comment on a line of code.
std::vector<Suppression> ParseSuppressions(const LexedFile& lexed) {
  std::set<int> token_lines;
  for (const auto& t : lexed.tokens) {
    token_lines.insert(t.line);
  }
  std::vector<Suppression> out;
  for (const auto& c : lexed.comments) {
    size_t at = c.text.find("forklint:ignore");
    if (at == std::string::npos) {
      continue;
    }
    Suppression s;
    std::string_view rest = std::string_view(c.text).substr(at + 15);
    if (StartsWith(rest, "-next")) {
      s.line = c.end_line + 1;
      rest.remove_prefix(5);
    } else {
      s.line = token_lines.count(c.line) ? c.line : c.end_line + 1;
    }
    s.rules = ParseRuleList(rest);
    out.push_back(std::move(s));
  }
  return out;
}

bool IsSuppressed(const Finding& f, const std::vector<Suppression>& sups) {
  for (const auto& s : sups) {
    if (s.line == f.line && (s.rules.empty() || s.rules.count(f.rule))) {
      return true;
    }
  }
  return false;
}

Analyzer::Analyzer() : rules_(BuildAllRules()) {}

Status Analyzer::EnableOnly(const std::vector<std::string>& rule_ids) {
  for (const auto& id : rule_ids) {
    bool known = std::any_of(rules_.begin(), rules_.end(),
                             [&](const auto& r) { return r->id() == id; });
    if (!known) {
      return LogicalError("unknown rule id: " + id);
    }
  }
  enabled_ = rule_ids;
  return Status::Ok();
}

bool Analyzer::RuleEnabled(std::string_view id) const {
  return enabled_.empty() ||
         std::find(enabled_.begin(), enabled_.end(), id) != enabled_.end();
}

FileReport Analyzer::AnalyzeLexed(const FileContext& ctx,
                                  const std::vector<Suppression>& sups) const {
  FileReport report;
  report.path = ctx.path();
  for (const auto& rule : rules_) {
    if (!RuleEnabled(rule->id())) {
      continue;
    }
    std::vector<Finding> raw;
    rule->Check(ctx, &raw);
    for (auto& f : raw) {
      f.rule = rule->id();
      f.path = ctx.path();
      if (IsSuppressed(f, sups)) {
        ++report.suppressed;
      } else {
        report.findings.push_back(std::move(f));
      }
    }
  }
  std::stable_sort(report.findings.begin(), report.findings.end(),
                   [](const Finding& a, const Finding& b) { return a.line < b.line; });
  return report;
}

FileReport Analyzer::AnalyzeSource(std::string_view source, std::string path) const {
  LexedFile lexed = Lex(source);
  auto suppressions = ParseSuppressions(lexed);
  FileContext ctx(std::move(path), std::move(lexed));
  return AnalyzeLexed(ctx, suppressions);
}

Result<FileReport> Analyzer::AnalyzeFile(const std::string& path) const {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return ErrnoError("open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    return ErrnoError("read " + path);
  }
  return AnalyzeSource(buf.str(), path);
}

}  // namespace analysis
}  // namespace forklift
