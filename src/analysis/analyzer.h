// forklift/analysis: the forklint analyzer — lexes a file, builds the
// FileContext, runs the rule set, and filters `// forklint:ignore` findings.
#ifndef SRC_ANALYSIS_ANALYZER_H_
#define SRC_ANALYSIS_ANALYZER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/analysis/rule.h"
#include "src/common/result.h"

namespace forklift {
namespace analysis {

// All findings for one file, post-suppression, sorted by line.
struct FileReport {
  std::string path;
  std::vector<Finding> findings;
  size_t suppressed = 0;  // findings dropped by forklint:ignore comments
};

class Analyzer {
 public:
  // Builds the full R1–R8 rule set (see rules/rules.h).
  Analyzer();

  // Restricts subsequent analysis to the given rule ids (e.g. {"R1","R3"}).
  // Unknown ids are reported as an error. Empty = all rules.
  Status EnableOnly(const std::vector<std::string>& rule_ids);

  // `path` is used for reporting and for path-scoped rules (R7); the file is
  // not read — callers pass the source, so tests can lint snippets under any
  // display path.
  FileReport AnalyzeSource(std::string_view source, std::string path) const;

  // Reads `path` and analyzes it.
  Result<FileReport> AnalyzeFile(const std::string& path) const;

  const std::vector<std::unique_ptr<Rule>>& rules() const { return rules_; }

 private:
  std::vector<std::unique_ptr<Rule>> rules_;
  std::vector<std::string> enabled_;  // empty = all
};

}  // namespace analysis
}  // namespace forklift

#endif  // SRC_ANALYSIS_ANALYZER_H_
