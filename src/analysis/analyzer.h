// forklift/analysis: the forklint analyzer — lexes a file, builds the
// FileContext, runs the rule set, and filters `// forklint:ignore` findings.
#ifndef SRC_ANALYSIS_ANALYZER_H_
#define SRC_ANALYSIS_ANALYZER_H_

#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/analysis/rule.h"
#include "src/common/result.h"

namespace forklift {
namespace analysis {

// All findings for one file, post-suppression, sorted by line.
struct FileReport {
  std::string path;
  std::vector<Finding> findings;
  size_t suppressed = 0;  // findings dropped by forklint:ignore comments
};

// One parsed suppression comment: the source line it shields and the rule ids
// it silences (empty set = all rules). Two spellings:
//   `// forklint:ignore(RN)`      — shields its own line when it shares the
//                                   line with code, else the line below
//   `// forklint:ignore-next(RN)` — always shields the line below, so a
//                                   trailing comment can shield the NEXT
//                                   statement without moving it
struct Suppression {
  int line = 0;
  std::set<std::string> rules;
};

std::vector<Suppression> ParseSuppressions(const LexedFile& lexed);
bool IsSuppressed(const Finding& f, const std::vector<Suppression>& sups);

class Analyzer {
 public:
  // Builds the full rule set (see rules/rules.h): per-file R1–R8 plus the
  // interprocedural R9–R12, which only fire under ProjectAnalyzer.
  Analyzer();

  // Restricts subsequent analysis to the given rule ids (e.g. {"R1","R3"}).
  // Unknown ids are reported as an error. Empty = all rules.
  Status EnableOnly(const std::vector<std::string>& rule_ids);

  // `path` is used for reporting and for path-scoped rules (R7); the file is
  // not read — callers pass the source, so tests can lint snippets under any
  // display path.
  FileReport AnalyzeSource(std::string_view source, std::string path) const;

  // Runs the per-file rules over an already-built context with pre-parsed
  // suppressions — the path ProjectAnalyzer uses so each file is lexed once.
  FileReport AnalyzeLexed(const FileContext& ctx, const std::vector<Suppression>& sups) const;

  // Reads `path` and analyzes it.
  Result<FileReport> AnalyzeFile(const std::string& path) const;

  // True when `id` is enabled under the current EnableOnly filter.
  bool RuleEnabled(std::string_view id) const;

  const std::vector<std::unique_ptr<Rule>>& rules() const { return rules_; }

 private:
  std::vector<std::unique_ptr<Rule>> rules_;
  std::vector<std::string> enabled_;  // empty = all
};

}  // namespace analysis
}  // namespace forklift

#endif  // SRC_ANALYSIS_ANALYZER_H_
