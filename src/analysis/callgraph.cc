#include "src/analysis/callgraph.h"

#include <algorithm>
#include <deque>

namespace forklift {
namespace analysis {

void CallGraph::Build(std::vector<FunctionSummary>* fns) {
  fns_ = fns;
  by_name_.clear();
  resolved_.assign(fns->size(), {});
  callers_.assign(fns->size(), {});
  for (size_t i = 0; i < fns->size(); ++i) {
    const FunctionSummary& fn = (*fns)[i];
    if (fn.name != "<lambda>") {
      by_name_[fn.name].push_back(i);
    }
  }
  for (size_t i = 0; i < fns->size(); ++i) {
    const FunctionSummary& fn = (*fns)[i];
    resolved_[i].assign(fn.calls.size(), -1);
    for (size_t c = 0; c < fn.calls.size(); ++c) {
      int target = Resolve(fn.calls[c].callee, fn.calls[c].arity, fn.path);
      resolved_[i][c] = target;
      if (target >= 0) {
        auto& callers = callers_[static_cast<size_t>(target)];
        if (std::find(callers.begin(), callers.end(), i) == callers.end()) {
          callers.push_back(i);
        }
      }
    }
  }
}

int CallGraph::Resolve(const std::string& name, int arity,
                       const std::string& from_path) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return -1;
  }
  const std::vector<size_t>& candidates = it->second;
  // 1) same-file definition with matching arity (first in declaration order —
  //    a re-opened namespace can redefine, but one TU rarely overloads itself
  //    in a way this tricks).
  for (size_t idx : candidates) {
    const FunctionSummary& f = (*fns_)[idx];
    if (f.path == from_path && f.arity == arity) {
      return static_cast<int>(idx);
    }
  }
  // 2) same-file definition unique by name (default-argument calls).
  int same_file = -1;
  for (size_t idx : candidates) {
    if ((*fns_)[idx].path == from_path) {
      if (same_file >= 0) {
        same_file = -1;
        break;
      }
      same_file = static_cast<int>(idx);
    }
  }
  if (same_file >= 0) {
    return same_file;
  }
  // 3) cross-file definition unique by name+arity.
  int by_arity = -1;
  for (size_t idx : candidates) {
    if ((*fns_)[idx].arity == arity) {
      if (by_arity >= 0) {
        by_arity = -1;  // ambiguous across files: refuse to guess
        break;
      }
      by_arity = static_cast<int>(idx);
    }
  }
  if (by_arity >= 0) {
    return by_arity;
  }
  // 4) cross-file definition unique by name.
  return candidates.size() == 1 ? static_cast<int>(candidates[0]) : -1;
}

std::vector<CallGraph::Hop> CallGraph::ChainTo(
    size_t from, const std::function<bool(const FunctionSummary&)>& pred) const {
  if (fns_ == nullptr || from >= fns_->size()) {
    return {};
  }
  // BFS over resolved call edges; parent_[v] remembers the edge that reached v.
  std::vector<int> parent_fn(fns_->size(), -1);
  std::vector<size_t> parent_call(fns_->size(), 0);
  std::vector<char> seen(fns_->size(), 0);
  seen[from] = 1;
  std::deque<size_t> queue{from};
  while (!queue.empty()) {
    size_t u = queue.front();
    queue.pop_front();
    for (size_t c = 0; c < (*fns_)[u].calls.size(); ++c) {
      int t = resolved_[u][c];
      if (t < 0 || seen[static_cast<size_t>(t)]) {
        continue;
      }
      size_t v = static_cast<size_t>(t);
      seen[v] = 1;
      parent_fn[v] = static_cast<int>(u);
      parent_call[v] = c;
      if (pred((*fns_)[v])) {
        std::vector<Hop> chain;
        for (size_t cur = v; parent_fn[cur] >= 0;
             cur = static_cast<size_t>(parent_fn[cur])) {
          chain.push_back({static_cast<size_t>(parent_fn[cur]), parent_call[cur]});
        }
        std::reverse(chain.begin(), chain.end());
        return chain;
      }
      queue.push_back(v);
    }
  }
  return {};
}

}  // namespace analysis
}  // namespace forklift
