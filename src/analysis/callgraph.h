// forklift/analysis: the cross-translation-unit call graph.
//
// Nodes are the FunctionSummary entries extracted from every file on the
// command line; edges are call sites resolved by a name+arity heuristic (no
// real overload resolution — precision over recall, so an ambiguous name
// simply stays unresolved and produces no edge and no finding). Resolution
// prefers, in order: a same-file definition with matching arity, a same-file
// definition unique by name, a cross-file definition unique by name+arity,
// and finally a cross-file definition unique by name. Lambdas ("<lambda>")
// are never link targets.
#ifndef SRC_ANALYSIS_CALLGRAPH_H_
#define SRC_ANALYSIS_CALLGRAPH_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/analysis/summary.h"

namespace forklift {
namespace analysis {

class CallGraph {
 public:
  // Links call sites across `fns` (kept by pointer; must outlive the graph).
  void Build(std::vector<FunctionSummary>* fns);

  size_t size() const { return fns_ == nullptr ? 0 : fns_->size(); }
  const FunctionSummary& fn(size_t i) const { return (*fns_)[i]; }

  // Index of the function `calls[call_idx]` of function `fn_idx` resolves to,
  // or -1 when unresolved (external, ambiguous, or a lambda).
  int ResolveCall(size_t fn_idx, size_t call_idx) const {
    return resolved_[fn_idx][call_idx];
  }

  // Functions holding at least one call site that resolves to `fn_idx`.
  const std::vector<size_t>& Callers(size_t fn_idx) const { return callers_[fn_idx]; }

  // The resolution heuristic itself, exposed for tests: definition index for
  // a call to `name` with `arity` arguments made from `from_path`, or -1.
  int Resolve(const std::string& name, int arity, const std::string& from_path) const;

  // One edge on a call chain: function `fn` at its call site `call`.
  struct Hop {
    size_t fn;
    size_t call;
  };

  // Shortest chain of call edges from `from` to any function satisfying
  // `pred`; the last hop's resolved target is the satisfying function. Empty
  // when nothing reachable satisfies it (or `from` itself already does —
  // callers handle the direct case before asking for a chain).
  std::vector<Hop> ChainTo(size_t from,
                           const std::function<bool(const FunctionSummary&)>& pred) const;

 private:
  std::vector<FunctionSummary>* fns_ = nullptr;
  std::unordered_map<std::string, std::vector<size_t>> by_name_;  // decl order
  std::vector<std::vector<int>> resolved_;   // [fn][call] -> target or -1
  std::vector<std::vector<size_t>> callers_;  // [fn] -> caller indices
};

// Everything an interprocedural rule (R9–R12) may look at once the program is
// linked: the graph (which owns access to every FunctionSummary) plus
// program-wide facts computed by the ProjectAnalyzer.
struct ProjectContext {
  const CallGraph* graph = nullptr;
  // Some function anywhere in the program creates a thread (nullptr = the
  // program is single-threaded as far as the analysis can see). R12's trigger.
  const FunctionSummary* thread_witness = nullptr;
};

}  // namespace analysis
}  // namespace forklift

#endif  // SRC_ANALYSIS_CALLGRAPH_H_
