// FileContext: recovers the structure forklint's rules key off — matched
// brackets, function body spans, and fork()/vfork() call sites with their
// `pid == 0` child branches. All of it is heuristic token matching; the
// patterns covered are the ones that occur in real fork call sites (and in
// this repo): direct `if (fork() == 0)`, assignment + later `if (pid == 0)`
// / `if (0 == pid)` / `if (!pid)`, and the inverted `if (pid != 0) ... else`
// / `if (pid > 0) ... else` forms where the child is the else branch.
#include <array>

#include "src/analysis/rule.h"

namespace forklift {
namespace analysis {

namespace {

bool IsPunct(const Token& t, std::string_view text) {
  return t.kind == TokKind::kPunct && t.text == text;
}
bool IsIdent(const Token& t, std::string_view text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

constexpr std::array<std::string_view, 7> kControlKeywords = {
    "if", "while", "for", "switch", "return", "catch", "sizeof"};

bool IsControlKeyword(const Token& t) {
  if (t.kind != TokKind::kIdent) {
    return false;
  }
  for (std::string_view k : kControlKeywords) {
    if (t.text == k) {
      return true;
    }
  }
  return false;
}

char OpenFor(char close) { return close == ')' ? '(' : close == '}' ? '{' : '['; }

}  // namespace

FileContext::FileContext(std::string path, LexedFile lexed)
    : path_(std::move(path)), lexed_(std::move(lexed)) {
  BuildFunctions();
  BuildForkSites();
}

size_t FileContext::MatchForward(size_t open) const {
  const auto& toks = lexed_.tokens;
  if (open >= toks.size() || toks[open].kind != TokKind::kPunct) {
    return toks.size();
  }
  const std::string& o = toks[open].text;
  std::string c = o == "(" ? ")" : o == "{" ? "}" : o == "[" ? "]" : "";
  if (c.empty()) {
    return toks.size();
  }
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (IsPunct(toks[i], o)) {
      ++depth;
    } else if (IsPunct(toks[i], c)) {
      if (--depth == 0) {
        return i;
      }
    }
  }
  return toks.size();
}

bool FileContext::IsCallTo(size_t ident, std::string_view name) const {
  const auto& toks = lexed_.tokens;
  return ident + 1 < toks.size() && toks[ident].kind == TokKind::kIdent &&
         toks[ident].text == name && IsPunct(toks[ident + 1], "(");
}

bool FileContext::IsCallArgListOpen(size_t open) const {
  const auto& toks = lexed_.tokens;
  if (open == 0 || open >= toks.size() || !IsPunct(toks[open], "(")) {
    return false;
  }
  const Token& prev = toks[open - 1];
  return prev.kind == TokKind::kIdent && !IsControlKeyword(prev);
}

const FunctionSpan* FileContext::EnclosingFunction(size_t tok) const {
  const FunctionSpan* best = nullptr;
  for (const auto& f : functions_) {
    if (tok > f.body_begin && tok < f.body_end &&
        (best == nullptr || f.body_begin > best->body_begin)) {
      best = &f;
    }
  }
  return best;
}

// A `{` opens a function body when, walking back over cv/ref/exception-spec
// noise, we land on the `)` of a parameter list whose head is a plain
// identifier (not a control keyword). Constructor init-lists make the walk
// land on the last initializer's `)` instead — the recovered name is then the
// member's, but the body span (the part rules use) is still right.
void FileContext::BuildFunctions() {
  const auto& toks = lexed_.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!IsPunct(toks[i], "{")) {
      continue;
    }
    size_t j = i;
    while (j > 0) {
      const Token& t = toks[j - 1];
      if (IsIdent(t, "const") || IsIdent(t, "noexcept") || IsIdent(t, "override") ||
          IsIdent(t, "final") || IsIdent(t, "mutable") || IsPunct(t, "&") || IsPunct(t, "&&")) {
        --j;
        continue;
      }
      break;
    }
    if (j == 0 || !IsPunct(toks[j - 1], ")")) {
      continue;
    }
    // Match the `)` back to its `(`.
    int depth = 0;
    size_t open = toks.size();
    for (size_t k = j - 1; k + 1 > 0; --k) {
      char c0 = toks[k].kind == TokKind::kPunct && toks[k].text.size() == 1 ? toks[k].text[0] : 0;
      if (c0 == ')' || c0 == '}' || c0 == ']') {
        ++depth;
      } else if (c0 == '(' || c0 == '{' || c0 == '[') {
        if (--depth == 0 && c0 == OpenFor(')')) {
          open = k;
          break;
        }
        if (depth == 0) {
          break;  // mismatched bracket kind; not a parameter list
        }
      }
      if (k == 0) {
        break;
      }
    }
    if (open == toks.size() || open == 0) {
      continue;
    }
    const Token& head = toks[open - 1];
    FunctionSpan span;
    if (head.kind == TokKind::kIdent && !IsControlKeyword(head)) {
      span.name = head.text;
    } else if (IsPunct(head, "]")) {
      span.name = "<lambda>";
    } else {
      continue;
    }
    span.body_begin = i;
    span.body_end = MatchForward(i);
    functions_.push_back(std::move(span));
  }
}

void FileContext::BuildForkSites() {
  const auto& toks = lexed_.tokens;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    bool is_vfork = IsCallTo(i, "vfork");
    if (!is_vfork && !IsCallTo(i, "fork")) {
      continue;
    }
    // Reject member calls (obj.fork()) and foreign qualified names
    // (procsim::fork()); a bare `::fork` is the real thing.
    size_t head = i;
    if (head > 0 && IsPunct(toks[head - 1], "::")) {
      if (head > 1 && toks[head - 2].kind == TokKind::kIdent) {
        continue;  // ns::fork — not the libc symbol
      }
      head -= 1;
    }
    if (head > 0 && (IsPunct(toks[head - 1], ".") || IsPunct(toks[head - 1], "->"))) {
      continue;
    }

    ForkSite site;
    site.call_index = i;
    site.is_vfork = is_vfork;
    size_t close = MatchForward(i + 1);
    if (close >= toks.size()) {
      fork_sites_.push_back(std::move(site));
      continue;
    }

    // Result binding: `var = [::]fork()` (also inside `(pid = fork())`).
    if (head >= 2 && IsPunct(toks[head - 1], "=") && toks[head - 2].kind == TokKind::kIdent) {
      site.result_var = toks[head - 2].text;
      site.checked = true;
    }

    // Direct comparison: `fork() == 0`, `fork() != 0`, `0 == fork()`.
    bool direct_eq_zero = false;
    if (close + 2 < toks.size() &&
        (IsPunct(toks[close + 1], "==") || IsPunct(toks[close + 1], "!="))) {
      site.checked = true;
      direct_eq_zero = IsPunct(toks[close + 1], "==") && toks[close + 2].text == "0";
    }
    if (head >= 2 && toks[head - 2].text == "0" &&
        (IsPunct(toks[head - 1], "==") || IsPunct(toks[head - 1], "!="))) {
      site.checked = true;
      direct_eq_zero = IsPunct(toks[head - 1], "==");
    }
    if (head >= 1 && IsPunct(toks[head - 1], "!")) {
      site.checked = true;  // if (!fork()) — child branch follows
      direct_eq_zero = true;
    }

    if (direct_eq_zero) {
      // Find the `)` closing the enclosing if-condition, then the branch.
      size_t cond_close = close + 1;
      int depth = 1;  // we are inside the if's `(`
      while (cond_close < toks.size() && depth > 0) {
        if (IsPunct(toks[cond_close], "(")) {
          ++depth;
        } else if (IsPunct(toks[cond_close], ")")) {
          --depth;
        }
        if (depth == 0) {
          break;
        }
        ++cond_close;
      }
      BranchAfter(cond_close, &site);
    } else if (!site.result_var.empty()) {
      FindChildBranchByVar(close, site.result_var, &site);
    }
    fork_sites_.push_back(std::move(site));
  }
}

// Records the branch starting after condition-close token `cond_close` as the
// child span: a `{...}` block or a single statement up to `;`.
void FileContext::BranchAfter(size_t cond_close, ForkSite* site) {
  const auto& toks = lexed_.tokens;
  size_t b = cond_close + 1;
  if (b >= toks.size()) {
    return;
  }
  if (IsPunct(toks[b], "{")) {
    site->child_begin = b + 1;
    site->child_end = MatchForward(b);
    return;
  }
  size_t e = b;
  while (e < toks.size() && !IsPunct(toks[e], ";")) {
    ++e;
  }
  site->child_begin = b;
  site->child_end = e;
}

// Scans forward from the fork statement for the branch dispatching on `var`.
// `if (var == 0)` / `if (0 == var)` / `if (!var)` mark the then-branch as the
// child; `if (var != 0)` / `if (var > 0)` / `if (var)` with an `else` mark the
// else-branch.
void FileContext::FindChildBranchByVar(size_t from, const std::string& var, ForkSite* site) {
  const auto& toks = lexed_.tokens;
  for (size_t i = from; i + 3 < toks.size(); ++i) {
    if (!IsIdent(toks[i], "if") || !IsPunct(toks[i + 1], "(")) {
      continue;
    }
    size_t cond_close = MatchForward(i + 1);
    if (cond_close >= toks.size()) {
      return;
    }
    size_t n = cond_close - (i + 2);  // tokens inside the condition
    bool then_is_child = false;
    bool else_is_child = false;
    if (n == 3 && IsIdent(toks[i + 2], var) && IsPunct(toks[i + 3], "==") &&
        toks[i + 4].text == "0") {
      then_is_child = true;
    } else if (n == 3 && toks[i + 2].text == "0" && IsPunct(toks[i + 3], "==") &&
               IsIdent(toks[i + 4], var)) {
      then_is_child = true;
    } else if (n == 2 && IsPunct(toks[i + 2], "!") && IsIdent(toks[i + 3], var)) {
      then_is_child = true;
    } else if (n == 3 && IsIdent(toks[i + 2], var) &&
               (IsPunct(toks[i + 3], "!=") || IsPunct(toks[i + 3], ">")) &&
               toks[i + 4].text == "0") {
      else_is_child = true;
    } else if (n == 1 && IsIdent(toks[i + 2], var)) {
      else_is_child = true;
    } else {
      continue;
    }

    if (then_is_child) {
      BranchAfter(cond_close, site);
      return;
    }
    if (!else_is_child) {
      return;
    }
    // Skip the then-branch, require `else`.
    size_t b = cond_close + 1;
    size_t after_then;
    if (b < toks.size() && IsPunct(toks[b], "{")) {
      after_then = MatchForward(b) + 1;
    } else {
      after_then = b;
      while (after_then < toks.size() && !IsPunct(toks[after_then], ";")) {
        ++after_then;
      }
      ++after_then;
    }
    if (after_then < toks.size() && IsIdent(toks[after_then], "else")) {
      BranchAfter(after_then, site);  // treat `else` like a condition-close
    }
    return;
  }
}

}  // namespace analysis
}  // namespace forklift
