#include "src/analysis/lexer.h"

#include <cctype>

namespace forklift {
namespace analysis {

namespace {

// Multi-character punctuators, longest first so greedy matching is correct.
// Only operators that change token boundaries matter to the rules ("::" must
// not lex as two ":", "==" must not lex as two "="); the exotic ones are here
// so surrounding tokens stay clean.
constexpr std::string_view kPunct3[] = {"<<=", ">>=", "...", "->*"};
constexpr std::string_view kPunct2[] = {"::", "->", "==", "!=", "<=", ">=", "&&", "||",
                                        "+=", "-=", "*=", "/=", "%=", "|=", "&=", "^=",
                                        "<<", ">>", "++", "--", ".*", "##"};

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

// The splicing pass: physical backslash-newlines are removed (as translation
// phase 2 does) while every surviving character remembers its original line.
// This is what makes `// comment \` correctly swallow the next physical line
// and lets string/identifier continuations lex as one token.
struct Spliced {
  std::string text;
  std::vector<int> line;  // line[i] = 1-based source line of text[i]
};

Spliced Splice(std::string_view src) {
  Spliced out;
  out.text.reserve(src.size());
  out.line.reserve(src.size() + 1);
  int line = 1;
  for (size_t i = 0; i < src.size(); ++i) {
    if (src[i] == '\\' && i + 1 < src.size() &&
        (src[i + 1] == '\n' || (src[i + 1] == '\r' && i + 2 < src.size() && src[i + 2] == '\n'))) {
      i += (src[i + 1] == '\r') ? 2 : 1;  // skip the splice entirely
      ++line;
      continue;
    }
    out.text.push_back(src[i]);
    out.line.push_back(line);
    if (src[i] == '\n') {
      ++line;
    }
  }
  out.line.push_back(line);  // sentinel so line lookup at EOF is safe
  return out;
}

class Lexer {
 public:
  explicit Lexer(std::string_view source) : sp_(Splice(source)) {}

  LexedFile Run() {
    bool line_start = true;  // only whitespace seen so far on this line
    while (pos_ < sp_.text.size()) {
      char c = sp_.text[pos_];
      if (c == '\n') {
        ++pos_;
        line_start = true;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '/' && Peek(1) == '/') {
        LexLineComment();
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        LexBlockComment();
        continue;
      }
      if (c == '#' && line_start) {
        SkipDirective();
        line_start = true;
        continue;
      }
      line_start = false;
      if (IsIdentStart(c)) {
        LexIdentOrRawString();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && std::isdigit(static_cast<unsigned char>(Peek(1))))) {
        LexNumber();
        continue;
      }
      if (c == '"') {
        LexString();
        continue;
      }
      if (c == '\'') {
        LexCharLit();
        continue;
      }
      LexPunct();
    }
    return std::move(out_);
  }

 private:
  char Peek(size_t ahead) const {
    return pos_ + ahead < sp_.text.size() ? sp_.text[pos_ + ahead] : '\0';
  }
  int LineAt(size_t p) const { return sp_.line[p < sp_.line.size() ? p : sp_.line.size() - 1]; }

  void LexLineComment() {
    size_t start = pos_;
    pos_ += 2;
    size_t body = pos_;
    while (pos_ < sp_.text.size() && sp_.text[pos_] != '\n') {
      ++pos_;
    }
    out_.comments.push_back({std::string(sp_.text, body, pos_ - body), LineAt(start),
                             LineAt(pos_ == 0 ? 0 : pos_ - 1)});
  }

  void LexBlockComment() {
    size_t start = pos_;
    pos_ += 2;
    size_t body = pos_;
    while (pos_ < sp_.text.size() && !(sp_.text[pos_] == '*' && Peek(1) == '/')) {
      ++pos_;
    }
    size_t body_end = pos_;
    if (pos_ < sp_.text.size()) {
      pos_ += 2;  // closing */
    }
    out_.comments.push_back({std::string(sp_.text, body, body_end - body), LineAt(start),
                             LineAt(body_end == 0 ? 0 : body_end - 1)});
  }

  // A directive runs to end of line; splicing already merged continuations.
  // Block comments inside the directive may hide the newline, so step through
  // them instead of scanning blindly.
  void SkipDirective() {
    while (pos_ < sp_.text.size() && sp_.text[pos_] != '\n') {
      if (sp_.text[pos_] == '/' && Peek(1) == '*') {
        LexBlockComment();
        continue;
      }
      if (sp_.text[pos_] == '/' && Peek(1) == '/') {
        LexLineComment();
        return;
      }
      ++pos_;
    }
  }

  void LexIdentOrRawString() {
    size_t start = pos_;
    while (pos_ < sp_.text.size() && IsIdentChar(sp_.text[pos_])) {
      ++pos_;
    }
    std::string text(sp_.text, start, pos_ - start);
    // Encoding prefixes glue onto a following quote: R"(..)", u8"s", L'c'.
    if (pos_ < sp_.text.size() && sp_.text[pos_] == '"' &&
        (text == "R" || text == "u8R" || text == "uR" || text == "LR" || text == "UR")) {
      LexRawString(start);
      return;
    }
    if (pos_ < sp_.text.size() && (sp_.text[pos_] == '"' || sp_.text[pos_] == '\'') &&
        (text == "u8" || text == "u" || text == "L" || text == "U")) {
      if (sp_.text[pos_] == '"') {
        LexString();
      } else {
        LexCharLit();
      }
      out_.tokens.back().line = LineAt(start);
      return;
    }
    out_.tokens.push_back({TokKind::kIdent, std::move(text), LineAt(start)});
  }

  void LexRawString(size_t start) {
    ++pos_;  // opening quote
    std::string delim;
    while (pos_ < sp_.text.size() && sp_.text[pos_] != '(') {
      delim.push_back(sp_.text[pos_++]);
    }
    if (pos_ < sp_.text.size()) {
      ++pos_;  // opening paren
    }
    std::string closer = ")" + delim + "\"";
    size_t end = sp_.text.find(closer, pos_);
    size_t body_end = (end == std::string::npos) ? sp_.text.size() : end;
    out_.tokens.push_back(
        {TokKind::kString, std::string(sp_.text, pos_, body_end - pos_), LineAt(start)});
    pos_ = (end == std::string::npos) ? sp_.text.size() : end + closer.size();
  }

  void LexString() {
    size_t start = pos_++;
    std::string text;
    while (pos_ < sp_.text.size() && sp_.text[pos_] != '"') {
      if (sp_.text[pos_] == '\\' && pos_ + 1 < sp_.text.size()) {
        text.push_back(sp_.text[pos_++]);
      }
      text.push_back(sp_.text[pos_++]);
    }
    if (pos_ < sp_.text.size()) {
      ++pos_;  // closing quote
    }
    out_.tokens.push_back({TokKind::kString, std::move(text), LineAt(start)});
  }

  void LexCharLit() {
    size_t start = pos_++;
    std::string text;
    while (pos_ < sp_.text.size() && sp_.text[pos_] != '\'') {
      if (sp_.text[pos_] == '\\' && pos_ + 1 < sp_.text.size()) {
        text.push_back(sp_.text[pos_++]);
      }
      text.push_back(sp_.text[pos_++]);
    }
    if (pos_ < sp_.text.size()) {
      ++pos_;
    }
    out_.tokens.push_back({TokKind::kChar, std::move(text), LineAt(start)});
  }

  void LexNumber() {
    size_t start = pos_;
    // Loose pp-number scan: digits, letters (hex/suffixes/exponents), digit
    // separators, and a sign directly after an exponent marker.
    while (pos_ < sp_.text.size()) {
      char c = sp_.text[pos_];
      if (IsIdentChar(c) || c == '.' || c == '\'') {
        ++pos_;
        continue;
      }
      if ((c == '+' || c == '-') && pos_ > start) {
        char prev = sp_.text[pos_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          ++pos_;
          continue;
        }
      }
      break;
    }
    out_.tokens.push_back({TokKind::kNumber, std::string(sp_.text, start, pos_ - start),
                           LineAt(start)});
  }

  void LexPunct() {
    size_t start = pos_;
    std::string_view rest(sp_.text.data() + pos_, sp_.text.size() - pos_);
    for (std::string_view op : kPunct3) {
      if (rest.substr(0, 3) == op) {
        pos_ += 3;
        out_.tokens.push_back({TokKind::kPunct, std::string(op), LineAt(start)});
        return;
      }
    }
    for (std::string_view op : kPunct2) {
      if (rest.substr(0, 2) == op) {
        pos_ += 2;
        out_.tokens.push_back({TokKind::kPunct, std::string(op), LineAt(start)});
        return;
      }
    }
    out_.tokens.push_back({TokKind::kPunct, std::string(1, sp_.text[pos_]), LineAt(start)});
    ++pos_;
  }

  Spliced sp_;
  size_t pos_ = 0;
  LexedFile out_;
};

}  // namespace

LexedFile Lex(std::string_view source) { return Lexer(source).Run(); }

}  // namespace analysis
}  // namespace forklift
