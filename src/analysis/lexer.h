// forklift/analysis: a dependency-free C++ token-stream lexer for forklint.
//
// This is not a compiler front end. forklint's rules (see rules/) pattern-match
// hazards around fork()/vfork() call sites, and for that a flat token stream
// with accurate line numbers is enough — no preprocessing, no AST, no types.
// What the lexer *must* get right is everything that would otherwise produce
// false positives: comments (so `// call fork() here` is not a call site),
// string and character literals (so "fork(" in a log message is not a call),
// raw strings, and backslash-newline line continuations (which can extend a
// line comment onto the next physical line). Preprocessor directive lines are
// skipped wholesale: macro bodies are a place hazards can hide, but flagging
// them without expansion is guesswork.
//
// Comments are preserved out-of-band so the analyzer can honor inline
// `// forklint:ignore(RN)` suppressions and tests can read expectation markers.
#ifndef SRC_ANALYSIS_LEXER_H_
#define SRC_ANALYSIS_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

namespace forklift {
namespace analysis {

enum class TokKind {
  kIdent,   // identifiers and keywords
  kNumber,  // numeric literals (loosely lexed; rules only compare text)
  kString,  // string literal, text = contents without quotes/prefix
  kChar,    // character literal, text = contents without quotes
  kPunct,   // operator / punctuator, multi-char ops kept together ("::", "==")
};

struct Token {
  TokKind kind;
  std::string text;
  int line;  // 1-based physical line of the token's first character
};

struct Comment {
  std::string text;  // without the // or /* */ markers
  int line;          // first physical line
  int end_line;      // last physical line (== line for single-line comments)
};

struct LexedFile {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

// Tokenizes C++ source. Never fails: unrecognized bytes are skipped, an
// unterminated literal or comment runs to end of input. Line numbers refer to
// the original (pre-splice) source.
LexedFile Lex(std::string_view source);

}  // namespace analysis
}  // namespace forklift

#endif  // SRC_ANALYSIS_LEXER_H_
