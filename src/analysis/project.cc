#include "src/analysis/project.h"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "src/analysis/callgraph.h"
#include "src/common/string_util.h"

namespace forklift {
namespace analysis {

namespace {

uint64_t Fnv1a(std::string_view s, uint64_t h) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string HexKey(uint64_t key) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kDigits[key & 0xf];
    key >>= 4;
  }
  return out;
}

// `sup` lines carry the rule set as "*" (all rules) or a comma list.
std::string RuleSpec(const Suppression& s) {
  if (s.rules.empty()) {
    return "*";
  }
  std::vector<std::string> ids(s.rules.begin(), s.rules.end());
  return Join(ids, ",");
}

}  // namespace

Status ProjectAnalyzer::EnableOnly(const std::vector<std::string>& rule_ids) {
  Status st = analyzer_.EnableOnly(rule_ids);
  if (st.ok()) {
    enabled_ = rule_ids;
  }
  return st;
}

ProjectAnalyzer::FileUnit ProjectAnalyzer::AnalyzeOne(const std::string& path,
                                                      std::string_view source) const {
  LexedFile lexed = Lex(source);
  FileUnit unit;
  unit.sups = ParseSuppressions(lexed);
  FileContext ctx(path, std::move(lexed));
  unit.report = analyzer_.AnalyzeLexed(ctx, unit.sups);
  unit.summaries = ExtractSummaries(ctx);
  return unit;
}

ProjectReport ProjectAnalyzer::AnalyzeSources(const std::vector<ProjectInput>& inputs) const {
  std::vector<FileUnit> units;
  units.reserve(inputs.size());
  for (const auto& in : inputs) {
    units.push_back(AnalyzeOne(in.path, in.source));
  }
  return Finish(std::move(units));
}

Result<ProjectReport> ProjectAnalyzer::AnalyzeFiles(const std::vector<std::string>& paths) const {
  std::vector<FileUnit> units;
  units.reserve(paths.size());
  size_t hits = 0;
  size_t misses = 0;
  const std::string sig = CacheSignature();
  for (const auto& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      return ErrnoError("open " + path);
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    if (in.bad()) {
      return ErrnoError("read " + path);
    }
    const std::string source = buf.str();
    if (cache_dir_.empty()) {
      units.push_back(AnalyzeOne(path, source));
      continue;
    }
    uint64_t key = Fnv1a(sig, Fnv1a(path, Fnv1a(source, 1469598103934665603ULL)));
    const std::string entry =
        (std::filesystem::path(cache_dir_) / HexKey(key)).string();
    FileUnit unit;
    if (TryLoadCache(entry, path, &unit)) {
      ++hits;
    } else {
      ++misses;
      unit = AnalyzeOne(path, source);
      SaveCache(entry, unit);
    }
    units.push_back(std::move(unit));
  }
  ProjectReport report = Finish(std::move(units));
  report.cache_hits = hits;
  report.cache_misses = misses;
  return report;
}

ProjectReport ProjectAnalyzer::Finish(std::vector<FileUnit> units) const {
  // Link: one flat summary vector (paths identify provenance), one graph.
  std::vector<FunctionSummary> all;
  for (const auto& unit : units) {
    all.insert(all.end(), unit.summaries.begin(), unit.summaries.end());
  }
  CallGraph graph;
  graph.Build(&all);
  PropagateSummaries(graph, &all);

  const FunctionSummary* thread_witness = nullptr;
  for (const auto& fn : all) {
    if (fn.thread_line != 0) {
      thread_witness = &fn;
      break;
    }
  }
  ProjectContext pctx;
  pctx.graph = &graph;
  pctx.thread_witness = thread_witness;

  std::unordered_map<std::string, size_t> unit_by_path;
  for (size_t i = 0; i < units.size(); ++i) {
    unit_by_path.emplace(units[i].report.path, i);
  }

  for (const auto& rule : analyzer_.rules()) {
    if (!analyzer_.RuleEnabled(rule->id())) {
      continue;
    }
    const auto* project_rule = dynamic_cast<const ProjectRule*>(rule.get());
    if (project_rule == nullptr) {
      continue;
    }
    std::vector<Finding> raw;
    project_rule->CheckProject(pctx, &raw);
    for (auto& f : raw) {
      f.rule = rule->id();
      auto it = unit_by_path.find(f.path);
      if (it == unit_by_path.end()) {
        continue;  // points at nothing we were given (cannot happen today)
      }
      FileUnit& unit = units[it->second];
      if (IsSuppressed(f, unit.sups)) {
        ++unit.report.suppressed;
      } else {
        unit.report.findings.push_back(std::move(f));
      }
    }
  }

  ProjectReport report;
  report.files.reserve(units.size());
  for (auto& unit : units) {
    std::stable_sort(unit.report.findings.begin(), unit.report.findings.end(),
                     [](const Finding& a, const Finding& b) { return a.line < b.line; });
    report.files.push_back(std::move(unit.report));
  }
  return report;
}

std::string ProjectAnalyzer::CacheSignature() const {
  return "forklint-project-v1;" + Join(enabled_, ",");
}

// Cache entry layout (line-oriented, mirrors the summary wire form):
//   forklint-cache 1
//   path <path>
//   suppressed <count>
//   finding <rule> <line> <message...>
//   rel <line> <path> <message...>        (attached to the previous finding)
//   sup <line> <*|R1,R2>
//   summaries 1                            (SerializeSummaries output)
//   ...
bool ProjectAnalyzer::TryLoadCache(const std::string& file, const std::string& path,
                                   FileUnit* out) const {
  std::ifstream in(file, std::ios::binary);
  if (!in) {
    return false;
  }
  std::string line;
  if (!std::getline(in, line) || line != "forklint-cache 1") {
    return false;
  }
  if (!std::getline(in, line) || !StartsWith(line, "path ") || line.substr(5) != path) {
    return false;  // (astronomically unlikely) hash collision across paths
  }
  out->report = {};
  out->report.path = path;
  out->sups.clear();
  std::ostringstream summary_text;
  bool in_summaries = false;
  while (std::getline(in, line)) {
    if (in_summaries) {
      summary_text << line << '\n';
      continue;
    }
    if (line == "summaries 1") {
      in_summaries = true;
      summary_text << line << '\n';
      continue;
    }
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "suppressed") {
      ls >> out->report.suppressed;
    } else if (kind == "finding") {
      Finding f;
      ls >> f.rule >> f.line;
      std::getline(ls, f.message);
      f.message = std::string(Trim(f.message));
      if (ls.fail()) {
        return false;
      }
      f.path = path;
      out->report.findings.push_back(std::move(f));
    } else if (kind == "rel") {
      if (out->report.findings.empty()) {
        return false;
      }
      RelatedLocation rel;
      ls >> rel.line >> rel.path;
      std::getline(ls, rel.message);
      rel.message = std::string(Trim(rel.message));
      if (ls.fail()) {
        return false;
      }
      out->report.findings.back().related.push_back(std::move(rel));
    } else if (kind == "sup") {
      Suppression s;
      std::string spec;
      ls >> s.line >> spec;
      if (ls.fail()) {
        return false;
      }
      if (spec != "*") {
        for (const auto& id : Split(spec, ',')) {
          s.rules.insert(id);
        }
      }
      out->sups.push_back(std::move(s));
    } else if (!kind.empty()) {
      return false;
    }
  }
  if (!in_summaries) {
    return false;
  }
  if (!DeserializeSummaries(summary_text.str(), &out->summaries)) {
    return false;
  }
  // The wire form carries no path (the entry is per-file); restamp it.
  for (auto& fn : out->summaries) {
    fn.path = path;
  }
  return true;
}

void ProjectAnalyzer::SaveCache(const std::string& file, const FileUnit& unit) const {
  std::error_code ec;
  std::filesystem::create_directories(cache_dir_, ec);  // best-effort
  std::ofstream out(file, std::ios::binary | std::ios::trunc);
  if (!out) {
    return;  // a cold cache every run is slower, never wrong
  }
  out << "forklint-cache 1\n";
  out << "path " << unit.report.path << '\n';
  out << "suppressed " << unit.report.suppressed << '\n';
  for (const auto& f : unit.report.findings) {
    out << "finding " << f.rule << ' ' << f.line << ' ' << f.message << '\n';
    for (const auto& rel : f.related) {
      out << "rel " << rel.line << ' ' << rel.path << ' ' << rel.message << '\n';
    }
  }
  for (const auto& s : unit.sups) {
    out << "sup " << s.line << ' ' << RuleSpec(s) << '\n';
  }
  out << SerializeSummaries(unit.summaries);
}

}  // namespace analysis
}  // namespace forklift
