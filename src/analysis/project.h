// forklift/analysis: whole-program ("--project") forklint.
//
// ProjectAnalyzer treats every input file as one program: each file is lexed
// once and run through the per-file rules exactly as in per-file mode, then
// its function summaries are extracted, linked into a cross-TU CallGraph,
// propagated to a fixed point, and handed to the interprocedural rules
// (R9–R12) whose findings are routed back to the file units they point at —
// so suppression comments and baselines work identically for both rule
// classes.
//
// Summaries (and the per-file findings) are cacheable: AnalyzeFiles keys a
// cache entry on the FNV-1a hash of the file's content + path + the analyzer
// signature, so an unchanged file costs one hash instead of a re-lex. The
// transitive may-* facts are never cached — they depend on the whole program
// and are recomputed on every run.
#ifndef SRC_ANALYSIS_PROJECT_H_
#define SRC_ANALYSIS_PROJECT_H_

#include <string>
#include <vector>

#include "src/analysis/analyzer.h"
#include "src/analysis/summary.h"
#include "src/common/result.h"

namespace forklift {
namespace analysis {

// One file handed to the project analyzer (tests pass sources directly so
// fixtures can be linted under any display path).
struct ProjectInput {
  std::string path;
  std::string source;
};

// The whole program's findings, one FileReport per input in input order.
struct ProjectReport {
  std::vector<FileReport> files;
  size_t cache_hits = 0;
  size_t cache_misses = 0;

  size_t total_findings() const {
    size_t n = 0;
    for (const auto& f : files) {
      n += f.findings.size();
    }
    return n;
  }
};

class ProjectAnalyzer {
 public:
  Status EnableOnly(const std::vector<std::string>& rule_ids);

  // Directory for cached per-file results ("" = caching off). Created on
  // first write; unreadable/corrupt entries are silently recomputed.
  void set_cache_dir(std::string dir) { cache_dir_ = std::move(dir); }

  // Analyzes in-memory sources as one program (no cache involved).
  ProjectReport AnalyzeSources(const std::vector<ProjectInput>& inputs) const;

  // Reads every path and analyzes them as one program, using the summary
  // cache when a cache dir is set. Fails on the first unreadable file.
  Result<ProjectReport> AnalyzeFiles(const std::vector<std::string>& paths) const;

  const Analyzer& analyzer() const { return analyzer_; }

 private:
  struct FileUnit {
    FileReport report;
    std::vector<Suppression> sups;
    std::vector<FunctionSummary> summaries;
  };

  FileUnit AnalyzeOne(const std::string& path, std::string_view source) const;
  ProjectReport Finish(std::vector<FileUnit> units) const;

  // Cache plumbing: entries live at <cache_dir>/<hex16-of-key>.
  std::string CacheSignature() const;
  bool TryLoadCache(const std::string& file, const std::string& path, FileUnit* out) const;
  void SaveCache(const std::string& file, const FileUnit& unit) const;

  Analyzer analyzer_;
  std::vector<std::string> enabled_;  // mirror of the filter, for the cache key
  std::string cache_dir_;
};

}  // namespace analysis
}  // namespace forklift

#endif  // SRC_ANALYSIS_PROJECT_H_
