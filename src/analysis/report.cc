#include "src/analysis/report.h"

#include <cstdio>

#include "src/benchlib/json_writer.h"

namespace forklift {
namespace analysis {

namespace {

size_t TotalFindings(const std::vector<FileReport>& reports) {
  size_t n = 0;
  for (const auto& r : reports) {
    n += r.findings.size();
  }
  return n;
}

size_t TotalSuppressed(const std::vector<FileReport>& reports) {
  size_t n = 0;
  for (const auto& r : reports) {
    n += r.suppressed;
  }
  return n;
}

}  // namespace

std::string RenderText(const std::vector<FileReport>& reports) {
  std::string out;
  for (const auto& r : reports) {
    for (const auto& f : r.findings) {
      out += f.path + ":" + std::to_string(f.line) + ": [" + f.rule + "] " + f.message + "\n";
      for (const auto& rel : f.related) {
        out += "  note: " + rel.path + ":" + std::to_string(rel.line) + ": " + rel.message + "\n";
      }
    }
  }
  char summary[160];
  std::snprintf(summary, sizeof(summary),
                "forklint: %zu finding(s), %zu suppressed, %zu file(s) scanned\n",
                TotalFindings(reports), TotalSuppressed(reports), reports.size());
  out += summary;
  return out;
}

std::string RenderJson(const std::vector<FileReport>& reports) {
  JsonWriter w;
  w.BeginObject().Key("findings").BeginArray();
  for (const auto& r : reports) {
    for (const auto& f : r.findings) {
      w.BeginObject()
          .Key("rule").Value(f.rule)
          .Key("path").Value(f.path)
          .Key("line").Value(f.line)
          .Key("message").Value(f.message);
      if (!f.related.empty()) {
        w.Key("related").BeginArray();
        for (const auto& rel : f.related) {
          w.BeginObject()
              .Key("path").Value(rel.path)
              .Key("line").Value(rel.line)
              .Key("message").Value(rel.message)
              .EndObject();
        }
        w.EndArray();
      }
      w.EndObject();
    }
  }
  w.EndArray()
      .Key("count").Value(static_cast<uint64_t>(TotalFindings(reports)))
      .Key("suppressed").Value(static_cast<uint64_t>(TotalSuppressed(reports)))
      .EndObject();
  return w.str();
}

std::string RenderSarif(const Analyzer& analyzer, const std::vector<FileReport>& reports) {
  JsonWriter w;
  w.BeginObject()
      .Key("$schema")
      .Value("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/"
             "sarif-schema-2.1.0.json")
      .Key("version").Value("2.1.0")
      .Key("runs").BeginArray().BeginObject()
      .Key("tool").BeginObject().Key("driver").BeginObject()
      .Key("name").Value("forklint")
      .Key("informationUri").Value("https://dl.acm.org/doi/10.1145/3317550.3321435")
      .Key("rules").BeginArray();
  for (const auto& rule : analyzer.rules()) {
    w.BeginObject()
        .Key("id").Value(std::string(rule->id()))
        .Key("shortDescription").BeginObject()
        .Key("text").Value(std::string(rule->summary()))
        .EndObject()
        .EndObject();
  }
  w.EndArray().EndObject().EndObject();  // rules, driver, tool

  w.Key("results").BeginArray();
  for (const auto& r : reports) {
    for (const auto& f : r.findings) {
      w.BeginObject()
          .Key("ruleId").Value(f.rule)
          .Key("level").Value("warning")
          .Key("message").BeginObject().Key("text").Value(f.message).EndObject()
          .Key("locations").BeginArray().BeginObject()
          .Key("physicalLocation").BeginObject()
          .Key("artifactLocation").BeginObject().Key("uri").Value(f.path).EndObject()
          .Key("region").BeginObject().Key("startLine").Value(f.line).EndObject()
          .EndObject()  // physicalLocation
          .EndObject().EndArray();  // location, locations
      // The call chain (lock site, hops, fork/exec site) rides along as SARIF
      // relatedLocations, so viewers can walk the interprocedural path.
      if (!f.related.empty()) {
        w.Key("relatedLocations").BeginArray();
        for (const auto& rel : f.related) {
          w.BeginObject()
              .Key("physicalLocation").BeginObject()
              .Key("artifactLocation").BeginObject().Key("uri").Value(rel.path).EndObject()
              .Key("region").BeginObject().Key("startLine").Value(rel.line).EndObject()
              .EndObject()  // physicalLocation
              .Key("message").BeginObject().Key("text").Value(rel.message).EndObject()
              .EndObject();
        }
        w.EndArray();
      }
      w.EndObject();  // result
    }
  }
  w.EndArray().EndObject().EndArray().EndObject();  // results, run, runs, root
  return w.str();
}

}  // namespace analysis
}  // namespace forklift
