// forklift/analysis: rendering forklint results as text, JSON, or SARIF.
//
// SARIF (Static Analysis Results Interchange Format 2.1.0) is the subset
// GitHub code scanning and most editors consume: tool.driver with rule
// metadata, plus one result per finding carrying ruleId, message, and a
// physical location (uri + startLine). Built on benchlib's JsonWriter so the
// tool stays dependency-free.
#ifndef SRC_ANALYSIS_REPORT_H_
#define SRC_ANALYSIS_REPORT_H_

#include <string>
#include <vector>

#include "src/analysis/analyzer.h"

namespace forklift {
namespace analysis {

// `path:line: [RN] message` lines plus a one-line summary.
std::string RenderText(const std::vector<FileReport>& reports);

// {"findings":[{rule,path,line,message}...],"count":N,"suppressed":M}
std::string RenderJson(const std::vector<FileReport>& reports);

// SARIF 2.1.0. `analyzer` supplies the rule catalog for tool.driver.rules.
std::string RenderSarif(const Analyzer& analyzer, const std::vector<FileReport>& reports);

}  // namespace analysis
}  // namespace forklift

#endif  // SRC_ANALYSIS_REPORT_H_
