// forklift/analysis: the forklint rule framework.
//
// A Rule inspects one file's token stream plus the pre-computed fork-site and
// function-span context and emits findings. Rules are deliberately syntactic:
// forklint trades soundness for review-time feedback, so every rule is a
// heuristic with an escape hatch (`// forklint:ignore(RN)` at the call site).
#ifndef SRC_ANALYSIS_RULE_H_
#define SRC_ANALYSIS_RULE_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "src/analysis/lexer.h"

namespace forklift {
namespace analysis {

// A secondary location attached to a finding — interprocedural rules use a
// chain of these to show how the hazard is reached (lock site, call hops,
// fork/exec site). Rendered as SARIF `relatedLocations`.
struct RelatedLocation {
  std::string path;
  int line = 0;
  std::string message;
};

// One hazard at one source location. For per-file rules, `rule` and `path`
// are stamped by the Analyzer after the rule runs; rules only fill line +
// message. Project rules span files, so they fill `path` themselves (the
// rule id is still stamped by the driver).
struct Finding {
  std::string rule;
  std::string path;
  int line = 0;
  std::string message;
  std::vector<RelatedLocation> related;
};

// A fork()/vfork() call site with whatever surrounding structure the analyzer
// could recover. Token indices refer to FileContext::tokens.
struct ForkSite {
  size_t call_index = 0;  // index of the `fork`/`vfork` identifier token
  bool is_vfork = false;
  bool checked = false;      // return value assigned or compared
  std::string result_var;    // "" when the result is discarded or compared inline
  // Child-branch token range [child_begin, child_end), or 0,0 when no
  // `pid == 0`-style branch was found after the call.
  size_t child_begin = 0;
  size_t child_end = 0;
};

// A function (or lambda/ctor) body span [body_begin, body_end) in tokens,
// where body_begin indexes the opening `{`. Innermost spans come last.
struct FunctionSpan {
  std::string name;  // best-effort; "<lambda>" for lambdas
  size_t body_begin = 0;
  size_t body_end = 0;
};

// Everything a rule may look at for one file.
class FileContext {
 public:
  FileContext(std::string path, LexedFile lexed);

  const std::string& path() const { return path_; }
  const std::vector<Token>& tokens() const { return lexed_.tokens; }
  const std::vector<Comment>& comments() const { return lexed_.comments; }
  const std::vector<ForkSite>& fork_sites() const { return fork_sites_; }
  const std::vector<FunctionSpan>& functions() const { return functions_; }

  // Index of the token matching the `(`/`{`/`[` at `open`, or tokens().size()
  // if unbalanced.
  size_t MatchForward(size_t open) const;

  // True when tokens()[ident] is an identifier directly followed by `(` —
  // i.e. it reads as a call (or function-style cast).
  bool IsCallTo(size_t ident, std::string_view name) const;

  // True when the `(` at `open` opens a *call* argument list rather than an
  // `if`/`while`/... condition or a parenthesized expression.
  bool IsCallArgListOpen(size_t open) const;

  // Innermost function span containing token index `tok`, or nullptr.
  const FunctionSpan* EnclosingFunction(size_t tok) const;

 private:
  void BuildFunctions();
  void BuildForkSites();
  void BranchAfter(size_t cond_close, ForkSite* site);
  void FindChildBranchByVar(size_t from, const std::string& var, ForkSite* site);

  std::string path_;
  LexedFile lexed_;
  std::vector<ForkSite> fork_sites_;
  std::vector<FunctionSpan> functions_;
};

class Rule {
 public:
  virtual ~Rule() = default;

  virtual std::string_view id() const = 0;       // "R1".."R12"
  virtual std::string_view summary() const = 0;  // one line, used in --list-rules and SARIF
  virtual void Check(const FileContext& ctx, std::vector<Finding>* out) const = 0;
};

// Everything an interprocedural rule may look at: the linked call graph over
// all translation units plus program-wide facts. Defined in callgraph.h.
struct ProjectContext;

// A rule that needs the whole program. In per-file mode these rules are
// silent (Check is a no-op); ProjectAnalyzer drives CheckProject once the
// call graph is linked and summaries are propagated.
class ProjectRule : public Rule {
 public:
  void Check(const FileContext&, std::vector<Finding>*) const override {}
  virtual void CheckProject(const ProjectContext& ctx, std::vector<Finding>* out) const = 0;
};

}  // namespace analysis
}  // namespace forklift

#endif  // SRC_ANALYSIS_RULE_H_
