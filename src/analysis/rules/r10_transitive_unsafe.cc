// R10: the fork child calls a function that *transitively* reaches an
// async-signal-unsafe operation (interprocedural R1 — HotOS'19 §4). R1 flags
// `printf` written directly between fork() and exec; it is blind to
// `ReportStatus()` whose implementation three calls down allocates or takes
// the stdio lock. This rule follows the call graph from every call made in a
// child branch and reports the full chain to the unsafe site. Direct unsafe
// uses in the child stay R1's findings — R10 only fires on calls R1 cannot
// see through, so the two never double-report one line.
#include "src/analysis/callgraph.h"
#include "src/analysis/rules/rules.h"

namespace forklift {
namespace analysis {

namespace {

bool HasDirectUnsafe(const FunctionSummary& f) { return !f.unsafe_calls.empty(); }

class TransitiveUnsafeRule : public ProjectRule {
 public:
  std::string_view id() const override { return "R10"; }
  std::string_view summary() const override {
    return "fork child calls a function that transitively reaches async-signal-unsafe code";
  }

  void CheckProject(const ProjectContext& ctx, std::vector<Finding>* out) const override {
    const CallGraph& graph = *ctx.graph;
    for (size_t i = 0; i < graph.size(); ++i) {
      const FunctionSummary& fn = graph.fn(i);
      for (size_t c = 0; c < fn.calls.size(); ++c) {
        const CallSiteRef& call = fn.calls[c];
        if (!call.in_child_branch) {
          continue;
        }
        int target = graph.ResolveCall(i, c);
        if (target < 0 || !graph.fn(static_cast<size_t>(target)).may_unsafe) {
          continue;
        }
        size_t unsafe_holder = static_cast<size_t>(target);
        Finding f;
        f.path = fn.path;
        f.line = call.line;
        if (!HasDirectUnsafe(graph.fn(unsafe_holder))) {
          auto chain = graph.ChainTo(unsafe_holder, HasDirectUnsafe);
          for (const auto& hop : chain) {
            const FunctionSummary& via = graph.fn(hop.fn);
            const CallSiteRef& hop_call = via.calls[hop.call];
            f.related.push_back({via.path, hop_call.line,
                                 "via call to " + hop_call.callee + "()"});
            int next = graph.ResolveCall(hop.fn, hop.call);
            if (next >= 0) {
              unsafe_holder = static_cast<size_t>(next);
            }
          }
        }
        const FunctionSummary& holder = graph.fn(unsafe_holder);
        std::string unsafe_name =
            holder.unsafe_calls.empty() ? "?" : holder.unsafe_calls.front().name;
        f.message = call.callee + "() in the fork child reaches " + unsafe_name +
                    " (in " + holder.name +
                    "()); only async-signal-safe operations are legal before exec";
        if (!holder.unsafe_calls.empty()) {
          f.related.push_back({holder.path, holder.unsafe_calls.front().line,
                               unsafe_name + " — the async-signal-unsafe operation"});
        }
        out->push_back(std::move(f));
      }
    }
  }
};

}  // namespace

std::unique_ptr<Rule> MakeTransitiveUnsafeRule() {
  return std::make_unique<TransitiveUnsafeRule>();
}

}  // namespace analysis
}  // namespace forklift
