// R11: a descriptor created without CLOEXEC escapes its creating function in
// a program where that function's callers can reach exec (interprocedural R2
// — HotOS'19 §4/§5: fd inheritance is the default, so every leaked fd ends up
// in every exec'd child). R2 flags each non-CLOEXEC creation locally; R11
// cuts the noise the other way — it fires only when the fd provably leaves
// the function that made it (returned or passed on) *and* an exec is
// reachable from the creating function or one of its transitive callers,
// i.e. when the leak has an actual route into a foreign process image.
#include "src/analysis/callgraph.h"
#include "src/analysis/rules/rules.h"

namespace forklift {
namespace analysis {

namespace {

bool HasDirectExec(const FunctionSummary& f) { return f.exec_line != 0; }

class FdEscapeExecRule : public ProjectRule {
 public:
  std::string_view id() const override { return "R11"; }
  std::string_view summary() const override {
    return "non-CLOEXEC descriptor escapes its creating function and an exec is reachable";
  }

  void CheckProject(const ProjectContext& ctx, std::vector<Finding>* out) const override {
    const CallGraph& graph = *ctx.graph;
    for (size_t i = 0; i < graph.size(); ++i) {
      const FunctionSummary& fn = graph.fn(i);
      for (const LeakyFdRef& leak : fn.leaky_fds) {
        if (!leak.escapes) {
          continue;
        }
        // Does any function in the creating function's caller closure (itself
        // included) reach an exec? Walk Callers() upward, breadth-first.
        int witness = FindExecWitness(graph, i);
        if (witness < 0) {
          continue;
        }
        const FunctionSummary& wfn = graph.fn(static_cast<size_t>(witness));
        Finding f;
        f.path = fn.path;
        f.line = leak.line;
        f.message = leak.call + "() without CLOEXEC: the descriptor is " + leak.escape_how +
                    " out of " + fn.name + "() and " + wfn.name +
                    "() can reach exec, so it leaks into the exec'd child";
        f.related.push_back({fn.path, leak.escape_line, "descriptor " + leak.escape_how + " here"});
        AppendExecChain(graph, static_cast<size_t>(witness), &f);
        out->push_back(std::move(f));
      }
    }
  }

 private:
  // Nearest function, by caller-edges from `creator` (itself first), whose
  // may_exec bit is set; -1 when exec is unreachable from the whole closure.
  static int FindExecWitness(const CallGraph& graph, size_t creator) {
    std::vector<char> seen(graph.size(), 0);
    std::vector<size_t> queue{creator};
    seen[creator] = 1;
    for (size_t q = 0; q < queue.size(); ++q) {
      size_t u = queue[q];
      if (graph.fn(u).may_exec) {
        return static_cast<int>(u);
      }
      for (size_t caller : graph.Callers(u)) {
        if (!seen[caller]) {
          seen[caller] = 1;
          queue.push_back(caller);
        }
      }
    }
    return -1;
  }

  static void AppendExecChain(const CallGraph& graph, size_t witness, Finding* f) {
    size_t exec_holder = witness;
    if (!HasDirectExec(graph.fn(witness))) {
      auto chain = graph.ChainTo(witness, HasDirectExec);
      for (const auto& hop : chain) {
        const FunctionSummary& via = graph.fn(hop.fn);
        const CallSiteRef& call = via.calls[hop.call];
        f->related.push_back({via.path, call.line, "via call to " + call.callee + "()"});
        int next = graph.ResolveCall(hop.fn, hop.call);
        if (next >= 0) {
          exec_holder = static_cast<size_t>(next);
        }
      }
    }
    const FunctionSummary& holder = graph.fn(exec_holder);
    if (holder.exec_line != 0) {
      f->related.push_back({holder.path, holder.exec_line,
                            holder.exec_callee + "() replaces the process image here"});
    }
  }
};

}  // namespace

std::unique_ptr<Rule> MakeFdEscapeExecRule() {
  return std::make_unique<FdEscapeExecRule>();
}

}  // namespace analysis
}  // namespace forklift
