// R12: raw fork() in a program that creates threads (HotOS'19 §4: "fork is
// hostile to threads" — the child gets a single-threaded snapshot of a
// multithreaded address space, with every other thread's locks and state
// frozen mid-flight). Per-file analysis cannot see that *some other* TU
// spawns threads; this rule fires program-wide once any thread creation
// exists anywhere, against every fork site outside the sanctioned
// src/spawn/ wrappers (which are written to the async-signal-safe contract
// and are the designated fork authority per R7).
#include "src/analysis/callgraph.h"
#include "src/analysis/rules/rules.h"

namespace forklift {
namespace analysis {

namespace {

class ForkInThreadedRule : public ProjectRule {
 public:
  std::string_view id() const override { return "R12"; }
  std::string_view summary() const override {
    return "fork() outside src/spawn/ in a program that creates threads";
  }

  void CheckProject(const ProjectContext& ctx, std::vector<Finding>* out) const override {
    if (ctx.thread_witness == nullptr) {
      return;  // no thread creation anywhere: plain fork semantics apply
    }
    const FunctionSummary& witness = *ctx.thread_witness;
    const CallGraph& graph = *ctx.graph;
    for (size_t i = 0; i < graph.size(); ++i) {
      const FunctionSummary& fn = graph.fn(i);
      if (fn.path.find("src/spawn/") != std::string::npos) {
        continue;  // the sanctioned wrappers own their fork sites
      }
      for (const ForkSiteRef& fork : fn.forks) {
        Finding f;
        f.path = fn.path;
        f.line = fork.line;
        f.message = std::string(fork.is_vfork ? "vfork()" : "fork()") +
                    " in a program that creates threads (" + witness.name + "() in " +
                    witness.path + "); the child inherits a torn multithreaded snapshot — "
                    "use the src/spawn/ wrappers";
        f.related.push_back({witness.path, witness.thread_line,
                             "thread creation making the program multithreaded"});
        out->push_back(std::move(f));
      }
    }
  }
};

}  // namespace

std::unique_ptr<Rule> MakeForkInThreadedRule() {
  return std::make_unique<ForkInThreadedRule>();
}

}  // namespace analysis
}  // namespace forklift
