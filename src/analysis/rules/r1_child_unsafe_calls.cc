// R1: after fork() in a (potentially) multithreaded process, the child may
// only call async-signal-safe functions until it execs or _exits (HotOS'19 §4:
// fork is hostile to threads — another thread may hold the malloc arena lock
// or stdio lock at the instant of the snapshot, and the child inherits the
// locked lock with no owner). Flags known-unsafe calls, allocation, stdio,
// std::string construction, and lock acquisition inside the child branch.
#include "src/analysis/rules/rule_util.h"
#include "src/analysis/rules/rules.h"
#include "src/analysis/rules/unsafe_sets.h"

namespace forklift {
namespace analysis {

namespace {

using rule_util::IsExecOrHardExit;
using rule_util::IsMemberCall;
using rule_util::IsPunct;
using rule_util::kUnsafeFree;
using rule_util::kUnsafeMember;
using rule_util::kUnsafeStd;

class ChildUnsafeCallsRule : public Rule {
 public:
  std::string_view id() const override { return "R1"; }
  std::string_view summary() const override {
    return "only async-signal-safe calls are legal between fork() and exec/_exit in the child";
  }

  void Check(const FileContext& ctx, std::vector<Finding>* out) const override {
    const auto& toks = ctx.tokens();
    for (const auto& site : ctx.fork_sites()) {
      if (site.child_begin == 0 && site.child_end == 0) {
        continue;
      }
      for (size_t i = site.child_begin; i < site.child_end && i < toks.size(); ++i) {
        if (IsExecOrHardExit(toks, i)) {
          break;  // past exec/_exit only the (already doomed) error path runs
        }
        const Token& t = toks[i];
        if (t.kind == TokKind::kIdent && (t.text == "new" || t.text == "delete")) {
          out->push_back({"", "", t.line,
                          "'" + t.text + "' allocates in the fork child; the heap lock may be "
                          "held by a thread that no longer exists"});
          continue;
        }
        if (t.kind != TokKind::kIdent || i + 1 >= toks.size()) {
          continue;
        }
        // std::X where X is allocating/locking.
        if (IsPunct(toks[i + 1], "::") && t.text == "std" && i + 2 < toks.size()) {
          for (std::string_view bad : kUnsafeStd) {
            if (toks[i + 2].text == bad) {
              out->push_back({"", "", t.line,
                              "std::" + toks[i + 2].text +
                                  " in the fork child allocates or locks; only "
                                  "async-signal-safe operations are legal before exec"});
              break;
            }
          }
          continue;
        }
        if (!IsPunct(toks[i + 1], "(")) {
          continue;
        }
        if (IsMemberCall(toks, i)) {
          for (std::string_view bad : kUnsafeMember) {
            if (t.text == bad) {
              out->push_back({"", "", t.line,
                              "." + t.text + "() in the fork child acquires a lock whose owner "
                              "thread was not copied by fork"});
              break;
            }
          }
          continue;
        }
        for (std::string_view bad : kUnsafeFree) {
          if (t.text == bad) {
            out->push_back({"", "", t.line,
                            t.text + "() is not async-signal-safe; between fork() and exec the "
                            "child may hold another thread's lock state (use write/_exit)"});
            break;
          }
        }
      }
    }
  }
};

}  // namespace

std::unique_ptr<Rule> MakeChildUnsafeCallsRule() {
  return std::make_unique<ChildUnsafeCallsRule>();
}

}  // namespace analysis
}  // namespace forklift
