// R2: descriptors created without CLOEXEC leak into every child a later
// fork/exec produces (HotOS'19 §4: fork doesn't compose — each call site must
// remember to opt *out* of inheritance, and one miss is a security bug).
// Flags raw open/creat/pipe/socket/socketpair/accept/dup and this repo's own
// wrappers (OpenFd without O_CLOEXEC, MakePipe(false), MakeSocketPair(false));
// the fix is always the atomic flag variant, not a follow-up fcntl.
//
// Precision over recall: the rule inspects the *flags argument* of each call.
// A flags argument that mentions a variable (any identifier with a lowercase
// letter — macros are ALL_CAPS) is indeterminate and not flagged, so wrappers
// that forward caller flags don't produce noise; the wrapper's call sites are
// checked instead. Declarations (`Result<UniqueFd> OpenFd(...)`) are skipped.
#include "src/analysis/rules/rule_util.h"
#include "src/analysis/rules/rules.h"

namespace forklift {
namespace analysis {

namespace {

using rule_util::ArgRange;
using rule_util::FlagState;
using rule_util::InspectFlagArg;
using rule_util::IsForeignQualified;
using rule_util::IsMemberCall;
using rule_util::IsPunct;
using rule_util::LooksLikeDeclaration;
using rule_util::SplitArgs;

class CloexecRule : public Rule {
 public:
  std::string_view id() const override { return "R2"; }
  std::string_view summary() const override {
    return "descriptor creation must use O_CLOEXEC/SOCK_CLOEXEC (pipe2/accept4/dup3) atomically";
  }

  void Check(const FileContext& ctx, std::vector<Finding>* out) const override {
    const auto& toks = ctx.tokens();
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kIdent || !IsPunct(toks[i + 1], "(")) {
        continue;
      }
      if (IsMemberCall(toks, i) || IsForeignQualified(toks, i) ||
          LooksLikeDeclaration(toks, i)) {
        continue;  // file.open(...), ns::pipe(...), and signatures are not libc calls
      }
      const std::string& name = toks[i].text;
      size_t close = ctx.MatchForward(i + 1);
      if (close >= toks.size()) {
        continue;
      }
      auto args = SplitArgs(toks, i + 1, close);
      auto flag = [&](const std::string& msg) {
        out->push_back({"", "", toks[i].line, msg, {}});
      };
      auto check = [&](size_t flags_pos, std::string_view cloexec, const std::string& msg) {
        if (InspectFlagArg(toks, args, flags_pos, cloexec) == FlagState::kMissing) {
          flag(msg);
        }
      };

      if (name == "open" || name == "OpenFd") {
        check(1, "O_CLOEXEC",
              name + "() without O_CLOEXEC: the descriptor leaks into every exec'd child");
      } else if (name == "openat") {
        check(2, "O_CLOEXEC",
              "openat() without O_CLOEXEC: the descriptor leaks into every exec'd child");
      } else if (name == "creat") {
        flag("creat() cannot take O_CLOEXEC; use open(..., O_CREAT|O_WRONLY|O_CLOEXEC)");
      } else if (name == "pipe") {
        flag("pipe() cannot set CLOEXEC atomically; use pipe2(fds, O_CLOEXEC)");
      } else if (name == "pipe2") {
        check(1, "O_CLOEXEC", "pipe2() without O_CLOEXEC: both ends leak into every exec'd child");
      } else if (name == "socket" || name == "socketpair") {
        check(1, "SOCK_CLOEXEC",
              name + "() without SOCK_CLOEXEC: the socket leaks into every exec'd child");
      } else if (name == "accept") {
        flag("accept() cannot set CLOEXEC atomically; use accept4(..., SOCK_CLOEXEC)");
      } else if (name == "accept4") {
        check(3, "SOCK_CLOEXEC",
              "accept4() without SOCK_CLOEXEC: the socket leaks into every exec'd child");
      } else if (name == "dup") {
        flag("dup() drops CLOEXEC; use fcntl(fd, F_DUPFD_CLOEXEC, 0) or dup3(..., O_CLOEXEC)");
      } else if (name == "fopen" && !FopenModeHasE(toks, i + 2, close)) {
        flag("fopen() without 'e' in the mode string: the FILE's fd leaks into exec'd children");
      } else if (name == "MakePipe" || name == "MakeSocketPair") {
        // cloexec defaults to true; only an explicit literal `false` is a leak.
        if (!args.empty() && args[0].begin < args[0].end) {
          for (size_t j = args[0].begin; j < args[0].end; ++j) {
            if (toks[j].kind == TokKind::kIdent && toks[j].text == "false") {
              flag(name + "(/*cloexec=*/false) creates deliberately leaky descriptors; "
                   "prefer the default and re-enable inheritance via fd actions");
              break;
            }
          }
        }
      }
    }
  }

 private:
  // fopen's cloexec spelling is the glibc 'e' mode flag; the mode string is
  // the last string literal in the argument list.
  static bool FopenModeHasE(const std::vector<Token>& toks, size_t from, size_t to) {
    const Token* last_string = nullptr;
    for (size_t j = from; j < to && j < toks.size(); ++j) {
      if (toks[j].kind == TokKind::kString) {
        last_string = &toks[j];
      }
    }
    return last_string != nullptr && last_string->text.find('e') != std::string::npos;
  }
};

}  // namespace

std::unique_ptr<Rule> MakeCloexecRule() { return std::make_unique<CloexecRule>(); }

}  // namespace analysis
}  // namespace forklift
