// R3: fork() can and does fail (EAGAIN under pid/rlimit pressure, ENOMEM
// under overcommit accounting — HotOS'19 §5 on why fork gets slower and less
// reliable as the parent grows). An unchecked return value means the "child"
// code runs in the parent on failure, or the pid is simply lost.
#include "src/analysis/rules/rules.h"

namespace forklift {
namespace analysis {

namespace {

class UncheckedForkRule : public Rule {
 public:
  std::string_view id() const override { return "R3"; }
  std::string_view summary() const override {
    return "fork()/vfork() return value must be checked (it fails under memory/pid pressure)";
  }

  void Check(const FileContext& ctx, std::vector<Finding>* out) const override {
    for (const auto& site : ctx.fork_sites()) {
      if (site.checked) {
        continue;
      }
      const Token& t = ctx.tokens()[site.call_index];
      out->push_back({"", "", t.line,
                      t.text + "() return value is unchecked: on failure (-1) there is no "
                      "child, and the error path runs in the parent"});
    }
  }
};

}  // namespace

std::unique_ptr<Rule> MakeUncheckedForkRule() { return std::make_unique<UncheckedForkRule>(); }

}  // namespace analysis
}  // namespace forklift
