// R4: a fork child that fails must leave via _exit(), not exit(). exit() runs
// atexit handlers and flushes stdio buffers the child shares (by COW copy)
// with the parent — the paper's §4 double-flush hazard: buffered bytes written
// once by the parent appear twice because the child flushed its inherited
// copy on the way out.
#include "src/analysis/rules/rule_util.h"
#include "src/analysis/rules/rules.h"

namespace forklift {
namespace analysis {

namespace {

using rule_util::IsExecOrHardExit;
using rule_util::IsMemberCall;
using rule_util::IsPunct;

class ExitInChildRule : public Rule {
 public:
  std::string_view id() const override { return "R4"; }
  std::string_view summary() const override {
    return "fork children must terminate with _exit(), not exit() (atexit/stdio double-flush)";
  }

  void Check(const FileContext& ctx, std::vector<Finding>* out) const override {
    const auto& toks = ctx.tokens();
    for (const auto& site : ctx.fork_sites()) {
      if (site.child_begin == 0 && site.child_end == 0) {
        continue;
      }
      for (size_t i = site.child_begin; i < site.child_end && i < toks.size(); ++i) {
        if (IsExecOrHardExit(toks, i)) {
          break;
        }
        const Token& t = toks[i];
        if (t.kind != TokKind::kIdent || (t.text != "exit" && t.text != "quick_exit")) {
          continue;
        }
        if (i + 1 >= toks.size() || !IsPunct(toks[i + 1], "(") || IsMemberCall(toks, i)) {
          continue;
        }
        out->push_back({"", "", t.line,
                        t.text + "() in the fork child runs atexit handlers and flushes the "
                        "parent's inherited stdio buffers (duplicating output); use _exit()"});
      }
    }
  }
};

}  // namespace

std::unique_ptr<Rule> MakeExitInChildRule() { return std::make_unique<ExitInChildRule>(); }

}  // namespace analysis
}  // namespace forklift
