// R5: a vfork child borrows the parent's stack and address space while the
// parent is suspended (HotOS'19 §5: "vfork is dangerous"). Returning from the
// enclosing function corrupts the stack frame the parent is about to resume
// into, and any store — even initializing a local — is a write the parent
// observes. The child may only exec or _exit; everything it needs must be
// computed before the vfork.
#include "src/analysis/rules/rule_util.h"
#include "src/analysis/rules/rules.h"

namespace forklift {
namespace analysis {

namespace {

using rule_util::IsExecOrHardExit;
using rule_util::IsPunct;

constexpr std::string_view kCompoundAssign[] = {"+=", "-=", "*=", "/=", "%=",
                                                "|=", "&=", "^=", "<<=", ">>="};

class VforkAbuseRule : public Rule {
 public:
  std::string_view id() const override { return "R5"; }
  std::string_view summary() const override {
    return "a vfork child runs on the parent's stack: no return, no writes, only exec/_exit";
  }

  void Check(const FileContext& ctx, std::vector<Finding>* out) const override {
    const auto& toks = ctx.tokens();
    for (const auto& site : ctx.fork_sites()) {
      if (!site.is_vfork || (site.child_begin == 0 && site.child_end == 0)) {
        continue;
      }
      for (size_t i = site.child_begin; i < site.child_end && i < toks.size(); ++i) {
        if (IsExecOrHardExit(toks, i)) {
          break;
        }
        const Token& t = toks[i];
        if (t.kind == TokKind::kIdent && t.text == "return") {
          out->push_back({"", "", t.line,
                          "return in a vfork child unwinds a stack frame the suspended parent "
                          "still owns; terminate via exec or _exit only"});
          continue;
        }
        if (t.kind != TokKind::kPunct) {
          continue;
        }
        bool is_assign = t.text == "=" || t.text == "++" || t.text == "--";
        for (std::string_view op : kCompoundAssign) {
          is_assign = is_assign || t.text == op;
        }
        if (is_assign) {
          out->push_back({"", "", t.line,
                          "write ('" + t.text + "') in a vfork child lands in the parent's "
                          "address space; move the computation before the vfork"});
        }
      }
    }
  }
};

}  // namespace

std::unique_ptr<Rule> MakeVforkAbuseRule() { return std::make_unique<VforkAbuseRule>(); }

}  // namespace analysis
}  // namespace forklift
