// R6: every fork obligates someone to reap the child; a pid that is neither
// waited on nor handed off becomes a zombie holding a process-table slot
// (part of the paper's "fork sets implicit obligations the API does not
// surface" argument). The rule passes when the enclosing function waits
// (waitpid & friends, or this repo's ChildWatch/Wait* machinery) or visibly
// transfers ownership of the pid (returns it, stores it, or passes it to a
// call).
#include <array>

#include "src/analysis/rules/rule_util.h"
#include "src/analysis/rules/rules.h"

namespace forklift {
namespace analysis {

namespace {

using rule_util::IsIdent;
using rule_util::IsPunct;

// Reaping vocabulary: libc wait calls plus this repo's blessed wrappers
// (src/common/syscall.h, src/common/reactor.h, src/spawn/child.h).
constexpr std::array<std::string_view, 12> kWaitIdents = {
    "wait",    "waitpid",     "waitid",       "wait3",        "wait4",     "WaitPid",
    "WaitForExit", "WaitDeadline", "ChildWatch", "Communicate", "AwaitExec", "Reap"};

class ZombieRiskRule : public Rule {
 public:
  std::string_view id() const override { return "R6"; }
  std::string_view summary() const override {
    return "a forked pid must be waited on or handed off, or the child becomes a zombie";
  }

  void Check(const FileContext& ctx, std::vector<Finding>* out) const override {
    const auto& toks = ctx.tokens();
    for (const auto& site : ctx.fork_sites()) {
      const FunctionSpan* fn = ctx.EnclosingFunction(site.call_index);
      size_t begin = fn ? fn->body_begin : 0;
      size_t end = fn ? fn->body_end : toks.size();

      bool waits = false;
      for (size_t i = begin; i < end && i < toks.size() && !waits; ++i) {
        if (toks[i].kind != TokKind::kIdent) {
          continue;
        }
        for (std::string_view w : kWaitIdents) {
          if (toks[i].text == w) {
            waits = true;
            break;
          }
        }
      }
      if (waits || (!site.result_var.empty() &&
                    PidHandedOff(ctx, site, end))) {
        continue;
      }
      const Token& t = toks[site.call_index];
      out->push_back({"", "", t.line,
                      t.text + "() child is never reaped here: no wait call in scope and the "
                      "pid is not returned, stored, or passed on (zombie risk)"});
    }
  }

 private:
  // True when the fork's pid variable is visibly transferred after the call:
  // `return pid`, `x = pid`, or `pid` as an argument in a call list.
  static bool PidHandedOff(const FileContext& ctx, const ForkSite& site, size_t end) {
    const auto& toks = ctx.tokens();
    for (size_t i = site.call_index + 1; i < end && i < toks.size(); ++i) {
      if (!IsIdent(toks[i], site.result_var)) {
        continue;
      }
      if (i > 0 && (IsIdent(toks[i - 1], "return") || IsPunct(toks[i - 1], "="))) {
        return true;
      }
      // Argument position: preceded by a call's `(` or a `,` at call depth.
      if (i > 0 && IsPunct(toks[i - 1], ",")) {
        return true;
      }
      if (i > 0 && IsPunct(toks[i - 1], "(") && ctx.IsCallArgListOpen(i - 1)) {
        return true;
      }
    }
    return false;
  }
};

}  // namespace

std::unique_ptr<Rule> MakeZombieRiskRule() { return std::make_unique<ZombieRiskRule>(); }

}  // namespace analysis
}  // namespace forklift
