// R7 (repo policy, not a portable hazard): raw ::fork()/vfork() is confined
// to src/spawn/, where the backends pair it with the async-signal-safe child
// trampoline, exec-error pipe, fd-action plan, and reaping machinery.
// Anywhere else must go through Spawner so the paper's §4 hazards stay
// handled in exactly one place. This is the analyzer twin of the runtime
// ForkGuard: the guard catches a hazardous fork as it happens, R7 stops the
// call site from existing.
#include "src/analysis/rules/rules.h"

namespace forklift {
namespace analysis {

namespace {

class RawForkPolicyRule : public Rule {
 public:
  std::string_view id() const override { return "R7"; }
  std::string_view summary() const override {
    return "raw fork()/vfork() is reserved for src/spawn/ backends; use Spawner elsewhere";
  }

  void Check(const FileContext& ctx, std::vector<Finding>* out) const override {
    if (ctx.path().find("src/spawn/") != std::string::npos) {
      return;
    }
    for (const auto& site : ctx.fork_sites()) {
      const Token& t = ctx.tokens()[site.call_index];
      out->push_back({"", "", t.line,
                      "raw " + t.text + "() outside src/spawn/: route process creation through "
                      "Spawner so fd hygiene, exec-error reporting, and reaping stay centralized"});
    }
  }
};

}  // namespace

std::unique_ptr<Rule> MakeRawForkPolicyRule() { return std::make_unique<RawForkPolicyRule>(); }

}  // namespace analysis
}  // namespace forklift
