// R8: installing signal handlers between fork and exec is doubly wrong: exec
// resets caught signals to SIG_DFL, so the handler evaporates at the very
// next line, and until then the child runs inherited handler code whose data
// structures (the parent's) are in an indeterminate mid-operation state
// (HotOS'19 §4: fork snapshots signal dispositions along with everything
// else). Blocking signals (sigprocmask) is fine and deliberately not flagged.
#include "src/analysis/rules/rule_util.h"
#include "src/analysis/rules/rules.h"

namespace forklift {
namespace analysis {

namespace {

using rule_util::IsExecOrHardExit;
using rule_util::IsMemberCall;
using rule_util::IsPunct;

class SignalInChildRule : public Rule {
 public:
  std::string_view id() const override { return "R8"; }
  std::string_view summary() const override {
    return "no signal-handler installation between fork and exec (exec resets dispositions)";
  }

  void Check(const FileContext& ctx, std::vector<Finding>* out) const override {
    const auto& toks = ctx.tokens();
    for (const auto& site : ctx.fork_sites()) {
      if (site.child_begin == 0 && site.child_end == 0) {
        continue;
      }
      for (size_t i = site.child_begin; i < site.child_end && i < toks.size(); ++i) {
        if (IsExecOrHardExit(toks, i)) {
          break;
        }
        const Token& t = toks[i];
        if (t.kind != TokKind::kIdent ||
            (t.text != "signal" && t.text != "sigaction" && t.text != "bsd_signal" &&
             t.text != "sigset")) {
          continue;
        }
        if (i + 1 >= toks.size() || !IsPunct(toks[i + 1], "(") || IsMemberCall(toks, i)) {
          continue;
        }
        out->push_back({"", "", t.line,
                        t.text + "() between fork and exec: exec resets dispositions to "
                        "SIG_DFL, and the inherited handler state is mid-operation (set "
                        "handlers after exec, or block with sigprocmask instead)"});
      }
    }
  }
};

}  // namespace

std::unique_ptr<Rule> MakeSignalInChildRule() { return std::make_unique<SignalInChildRule>(); }

}  // namespace analysis
}  // namespace forklift
