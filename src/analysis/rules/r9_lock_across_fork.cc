// R9: fork() reachable while a lock may be held (HotOS'19 §4: the child
// snapshots every lock in its acquired state, but the owning threads are gone
// — any later acquire in the child deadlocks, and even in the parent, forking
// under a lock stretches the critical section across an entire process copy).
// The per-file rules can only see a fork adjacent to its guard; this rule
// follows the call graph, so `lock_guard g(mu); Helper();` is caught when
// Helper() transitively reaches fork().
#include "src/analysis/callgraph.h"
#include "src/analysis/rules/rules.h"

namespace forklift {
namespace analysis {

namespace {

bool HasDirectFork(const FunctionSummary& f) { return !f.forks.empty(); }

class LockAcrossForkRule : public ProjectRule {
 public:
  std::string_view id() const override { return "R9"; }
  std::string_view summary() const override {
    return "fork() reachable (directly or through callees) while a lock may be held";
  }

  void CheckProject(const ProjectContext& ctx, std::vector<Finding>* out) const override {
    const CallGraph& graph = *ctx.graph;
    for (size_t i = 0; i < graph.size(); ++i) {
      const FunctionSummary& fn = graph.fn(i);
      for (const ForkSiteRef& fork : fn.forks) {
        if (!fork.lock_held) {
          continue;
        }
        Finding f;
        f.path = fn.path;
        f.line = fork.line;
        f.message = std::string(fork.is_vfork ? "vfork()" : "fork()") + " while " +
                    fork.lock_desc + " acquired at line " + std::to_string(fork.lock_line) +
                    " is held; the child inherits the locked state with no owner thread";
        f.related.push_back({fn.path, fork.lock_line, "lock acquired here (" + fork.lock_desc + ")"});
        out->push_back(std::move(f));
      }
      for (size_t c = 0; c < fn.calls.size(); ++c) {
        const CallSiteRef& call = fn.calls[c];
        if (!call.lock_held) {
          continue;
        }
        int target = graph.ResolveCall(i, c);
        if (target < 0 || !graph.fn(static_cast<size_t>(target)).may_fork) {
          continue;
        }
        Finding f;
        f.path = fn.path;
        f.line = call.line;
        f.message = "call to " + call.callee + "() while " + call.lock_desc +
                    " acquired at line " + std::to_string(call.lock_line) +
                    " is held; " + call.callee + "() can reach fork()";
        f.related.push_back({fn.path, call.lock_line, "lock acquired here (" + call.lock_desc + ")"});
        AppendForkChain(graph, static_cast<size_t>(target), &f);
        out->push_back(std::move(f));
      }
    }
  }

 private:
  // Appends the hop-by-hop path from `start` to a concrete fork site.
  static void AppendForkChain(const CallGraph& graph, size_t start, Finding* f) {
    size_t fork_holder = start;
    if (!HasDirectFork(graph.fn(start))) {
      auto chain = graph.ChainTo(start, HasDirectFork);
      for (const auto& hop : chain) {
        const FunctionSummary& via = graph.fn(hop.fn);
        const CallSiteRef& call = via.calls[hop.call];
        f->related.push_back({via.path, call.line, "via call to " + call.callee + "()"});
        int next = graph.ResolveCall(hop.fn, hop.call);
        if (next >= 0) {
          fork_holder = static_cast<size_t>(next);
        }
      }
    }
    const FunctionSummary& holder = graph.fn(fork_holder);
    if (!holder.forks.empty()) {
      f->related.push_back({holder.path, holder.forks.front().line,
                            std::string(holder.forks.front().is_vfork ? "vfork()" : "fork()") +
                                " happens here"});
    }
  }
};

}  // namespace

std::unique_ptr<Rule> MakeLockAcrossForkRule() {
  return std::make_unique<LockAcrossForkRule>();
}

}  // namespace analysis
}  // namespace forklift
