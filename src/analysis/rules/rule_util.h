// Shared token-matching helpers for the concrete rules and the summary
// extractor (src/analysis/summary.cc), which mirrors the rules' call and
// flag heuristics when building per-function summaries.
#ifndef SRC_ANALYSIS_RULES_RULE_UTIL_H_
#define SRC_ANALYSIS_RULES_RULE_UTIL_H_

#include <string_view>
#include <vector>

#include "src/analysis/rule.h"

namespace forklift {
namespace analysis {
namespace rule_util {

inline bool IsPunct(const Token& t, std::string_view text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

inline bool IsIdent(const Token& t, std::string_view text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

// True when tokens[i] names an exec-family entry point or a hard child exit —
// the boundary past which the "between fork and exec" rules stop looking.
inline bool IsExecOrHardExit(const std::vector<Token>& toks, size_t i) {
  if (toks[i].kind != TokKind::kIdent) {
    return false;
  }
  const std::string& t = toks[i].text;
  return t == "_exit" || t == "_Exit" || t.rfind("exec", 0) == 0 || t == "fexecve" ||
         t == "ChildExec";  // this repo's child-side trampoline (never returns)
}

// True when tokens[i] names an exec-family call proper (the process-image
// replacement, not the _exit escape hatches) — what may_exec propagates.
inline bool IsExecCall(const std::vector<Token>& toks, size_t i) {
  if (toks[i].kind != TokKind::kIdent) {
    return false;
  }
  const std::string& t = toks[i].text;
  return t == "execl" || t == "execlp" || t == "execle" || t == "execv" || t == "execvp" ||
         t == "execvpe" || t == "execve" || t == "execveat" || t == "fexecve" ||
         t == "posix_spawn" || t == "posix_spawnp" || t == "ChildExec";
}

// True when the identifier at `i` is called as a member (`x.f()` / `x->f()`).
inline bool IsMemberCall(const std::vector<Token>& toks, size_t i) {
  return i > 0 && (IsPunct(toks[i - 1], ".") || IsPunct(toks[i - 1], "->"));
}

// True when the identifier at `i` is qualified by a namespace/class other than
// the global one (`ns::f`; plain `::f` is NOT foreign-qualified).
inline bool IsForeignQualified(const std::vector<Token>& toks, size_t i) {
  return i >= 2 && IsPunct(toks[i - 1], "::") && toks[i - 2].kind == TokKind::kIdent;
}

// True when the identifier at `i` heads a declaration or definition signature
// rather than a call: the preceding token is part of a type (`UniqueFd>`,
// `int`, `*`, `&`).
inline bool LooksLikeDeclaration(const std::vector<Token>& toks, size_t i) {
  if (i == 0) {
    return false;
  }
  const Token& prev = toks[i - 1];
  if (IsPunct(prev, ">") || IsPunct(prev, "*") || IsPunct(prev, "&")) {
    return true;
  }
  if (prev.kind != TokKind::kIdent) {
    return false;
  }
  // Keywords that legitimately precede a call expression.
  return prev.text != "return" && prev.text != "throw" && prev.text != "else" &&
         prev.text != "do" && prev.text != "co_return" && prev.text != "co_await";
}

struct ArgRange {
  size_t begin;  // first token of the argument
  size_t end;    // one past the last token
};

// Splits tokens strictly inside (open, close) on top-level commas.
inline std::vector<ArgRange> SplitArgs(const std::vector<Token>& toks, size_t open,
                                       size_t close) {
  std::vector<ArgRange> args;
  if (close <= open + 1) {
    return args;
  }
  size_t start = open + 1;
  int depth = 0;
  for (size_t i = open + 1; i < close; ++i) {
    const std::string& t = toks[i].kind == TokKind::kPunct ? toks[i].text : "";
    if (t == "(" || t == "[" || t == "{") {
      ++depth;
    } else if (t == ")" || t == "]" || t == "}") {
      --depth;
    } else if (t == "," && depth == 0) {
      args.push_back({start, i});
      start = i + 1;
    }
  }
  args.push_back({start, close});
  return args;
}

enum class FlagState { kHasCloexec, kIndeterminate, kMissing };

// Inspects the flags argument at `position` for `cloexec_name`. A flags
// argument that mentions a variable (any identifier with a lowercase letter —
// macros are ALL_CAPS) is indeterminate: the caller may pass CLOEXEC through.
inline FlagState InspectFlagArg(const std::vector<Token>& toks,
                                const std::vector<ArgRange>& args, size_t position,
                                std::string_view cloexec_name) {
  if (position >= args.size()) {
    return FlagState::kMissing;  // flags argument absent entirely
  }
  FlagState state = FlagState::kMissing;
  for (size_t i = args[position].begin; i < args[position].end; ++i) {
    if (toks[i].kind != TokKind::kIdent) {
      continue;
    }
    if (toks[i].text == cloexec_name) {
      return FlagState::kHasCloexec;
    }
    for (char c : toks[i].text) {
      if (c >= 'a' && c <= 'z') {
        state = FlagState::kIndeterminate;  // a variable; caller may pass CLOEXEC
        break;
      }
    }
  }
  return state;
}

}  // namespace rule_util
}  // namespace analysis
}  // namespace forklift

#endif  // SRC_ANALYSIS_RULES_RULE_UTIL_H_
