// Shared token-matching helpers for the concrete rules. Internal to rules/.
#ifndef SRC_ANALYSIS_RULES_RULE_UTIL_H_
#define SRC_ANALYSIS_RULES_RULE_UTIL_H_

#include <string_view>

#include "src/analysis/rule.h"

namespace forklift {
namespace analysis {
namespace rule_util {

inline bool IsPunct(const Token& t, std::string_view text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

inline bool IsIdent(const Token& t, std::string_view text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

// True when tokens[i] names an exec-family entry point or a hard child exit —
// the boundary past which the "between fork and exec" rules stop looking.
inline bool IsExecOrHardExit(const std::vector<Token>& toks, size_t i) {
  if (toks[i].kind != TokKind::kIdent) {
    return false;
  }
  const std::string& t = toks[i].text;
  return t == "_exit" || t == "_Exit" || t.rfind("exec", 0) == 0 || t == "fexecve" ||
         t == "ChildExec";  // this repo's child-side trampoline (never returns)
}

// True when the identifier at `i` is called as a member (`x.f()` / `x->f()`).
inline bool IsMemberCall(const std::vector<Token>& toks, size_t i) {
  return i > 0 && (IsPunct(toks[i - 1], ".") || IsPunct(toks[i - 1], "->"));
}

// True when the identifier at `i` is qualified by a namespace/class other than
// the global one (`ns::f`; plain `::f` is NOT foreign-qualified).
inline bool IsForeignQualified(const std::vector<Token>& toks, size_t i) {
  return i >= 2 && IsPunct(toks[i - 1], "::") && toks[i - 2].kind == TokKind::kIdent;
}

}  // namespace rule_util
}  // namespace analysis
}  // namespace forklift

#endif  // SRC_ANALYSIS_RULES_RULE_UTIL_H_
