#include "src/analysis/rules/rules.h"

namespace forklift {
namespace analysis {

std::vector<std::unique_ptr<Rule>> BuildAllRules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(MakeChildUnsafeCallsRule());
  rules.push_back(MakeCloexecRule());
  rules.push_back(MakeUncheckedForkRule());
  rules.push_back(MakeExitInChildRule());
  rules.push_back(MakeVforkAbuseRule());
  rules.push_back(MakeZombieRiskRule());
  rules.push_back(MakeRawForkPolicyRule());
  rules.push_back(MakeSignalInChildRule());
  rules.push_back(MakeLockAcrossForkRule());
  rules.push_back(MakeTransitiveUnsafeRule());
  rules.push_back(MakeFdEscapeExecRule());
  rules.push_back(MakeForkInThreadedRule());
  return rules;
}

}  // namespace analysis
}  // namespace forklift
