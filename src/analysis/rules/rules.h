// forklift/analysis: the concrete forklint rule set. R1–R8 are per-file;
// R9–R12 are interprocedural (ProjectRule, silent outside --project mode).
// Each rule mechanizes one hazard class from "A fork() in the road"
// (HotOS'19 §4/§5); DESIGN.md §2.8 maps every rule to the paper claim it
// checks.
#ifndef SRC_ANALYSIS_RULES_RULES_H_
#define SRC_ANALYSIS_RULES_RULES_H_

#include <memory>
#include <vector>

#include "src/analysis/rule.h"

namespace forklift {
namespace analysis {

std::unique_ptr<Rule> MakeChildUnsafeCallsRule();  // R1
std::unique_ptr<Rule> MakeCloexecRule();           // R2
std::unique_ptr<Rule> MakeUncheckedForkRule();     // R3
std::unique_ptr<Rule> MakeExitInChildRule();       // R4
std::unique_ptr<Rule> MakeVforkAbuseRule();        // R5
std::unique_ptr<Rule> MakeZombieRiskRule();        // R6
std::unique_ptr<Rule> MakeRawForkPolicyRule();     // R7
std::unique_ptr<Rule> MakeSignalInChildRule();     // R8
std::unique_ptr<Rule> MakeLockAcrossForkRule();    // R9  (interprocedural)
std::unique_ptr<Rule> MakeTransitiveUnsafeRule();  // R10 (interprocedural)
std::unique_ptr<Rule> MakeFdEscapeExecRule();      // R11 (interprocedural)
std::unique_ptr<Rule> MakeForkInThreadedRule();    // R12 (interprocedural)

// All rules, in id order.
std::vector<std::unique_ptr<Rule>> BuildAllRules();

}  // namespace analysis
}  // namespace forklift

#endif  // SRC_ANALYSIS_RULES_RULES_H_
