// The async-signal-unsafe name sets shared by R1 (direct calls in the child
// branch) and the summary extractor (direct unsafe use anywhere in a function
// body, which R10 propagates through the call graph).
#ifndef SRC_ANALYSIS_RULES_UNSAFE_SETS_H_
#define SRC_ANALYSIS_RULES_UNSAFE_SETS_H_

#include <array>
#include <string_view>

namespace forklift {
namespace analysis {
namespace rule_util {

// Free functions that allocate, take process-wide locks, or touch stdio
// buffers — the classic post-fork deadlock/corruption set.
inline constexpr std::array<std::string_view, 24> kUnsafeFree = {
    "malloc",  "calloc",   "realloc", "free",    "printf", "fprintf",
    "sprintf", "snprintf", "vfprintf", "puts",   "fputs",  "fputc",
    "fwrite",  "fread",    "fopen",   "fclose",  "fflush", "perror",
    "syslog",  "setenv",   "putenv",  "getenv",  "localtime", "pthread_mutex_lock"};

// Member functions whose very invocation means a lock acquire.
inline constexpr std::array<std::string_view, 3> kUnsafeMember = {"lock", "unlock", "try_lock"};

// std::-qualified names that allocate or lock under the hood.
inline constexpr std::array<std::string_view, 7> kUnsafeStd = {
    "string", "cout", "cerr", "clog", "lock_guard", "unique_lock", "scoped_lock"};

inline bool InUnsafeFree(std::string_view name) {
  for (std::string_view bad : kUnsafeFree) {
    if (name == bad) {
      return true;
    }
  }
  return false;
}

inline bool InUnsafeMember(std::string_view name) {
  for (std::string_view bad : kUnsafeMember) {
    if (name == bad) {
      return true;
    }
  }
  return false;
}

inline bool InUnsafeStd(std::string_view name) {
  for (std::string_view bad : kUnsafeStd) {
    if (name == bad) {
      return true;
    }
  }
  return false;
}

}  // namespace rule_util
}  // namespace analysis
}  // namespace forklift

#endif  // SRC_ANALYSIS_RULES_UNSAFE_SETS_H_
