#include "src/analysis/summary.h"

#include <algorithm>
#include <sstream>

#include "src/analysis/callgraph.h"
#include "src/analysis/rules/rule_util.h"
#include "src/analysis/rules/unsafe_sets.h"

namespace forklift {
namespace analysis {

namespace {

using rule_util::FlagState;
using rule_util::InspectFlagArg;
using rule_util::InUnsafeFree;
using rule_util::InUnsafeMember;
using rule_util::InUnsafeStd;
using rule_util::IsExecCall;
using rule_util::IsIdent;
using rule_util::IsMemberCall;
using rule_util::IsPunct;
using rule_util::LooksLikeDeclaration;
using rule_util::SplitArgs;

bool IsControlKeyword(const Token& t) {
  if (t.kind != TokKind::kIdent) {
    return false;
  }
  return t.text == "if" || t.text == "while" || t.text == "for" || t.text == "switch" ||
         t.text == "return" || t.text == "catch" || t.text == "sizeof";
}

bool IsGuardName(std::string_view s) {
  return s == "lock_guard" || s == "unique_lock" || s == "scoped_lock" || s == "shared_lock";
}

// Live lock state while scanning a function body. RAII guards die with their
// enclosing block; explicit locks die with their unlock. `.unlock()` with no
// explicit lock outstanding releases the most recent guard (the
// unique_lock-released-early pattern), erring toward fewer false positives.
struct LockTracker {
  struct Entry {
    int depth;
    int line;
    std::string desc;
  };
  std::vector<Entry> raii;
  std::vector<Entry> taken;  // explicit .lock()/pthread_mutex_lock

  bool held() const { return !raii.empty() || !taken.empty(); }
  const Entry* current() const {
    if (!taken.empty() && (raii.empty() || taken.back().line >= raii.back().line)) {
      return &taken.back();
    }
    return raii.empty() ? nullptr : &raii.back();
  }
  void CloseBlock(int closing_depth) {
    while (!raii.empty() && raii.back().depth >= closing_depth) {
      raii.pop_back();
    }
  }
  void Release() {
    if (!taken.empty()) {
      taken.pop_back();
    } else if (!raii.empty()) {
      raii.pop_back();
    }
  }
};

// Argument count at a call: tokens (open, close) split on top-level commas;
// `()` and `(void)` are zero.
int CallArity(const std::vector<Token>& toks, size_t open, size_t close) {
  if (close <= open + 1) {
    return 0;
  }
  if (close == open + 2 && IsIdent(toks[open + 1], "void")) {
    return 0;
  }
  return static_cast<int>(SplitArgs(toks, open, close).size());
}

// Parameter count of the definition whose body opens at `body_begin`:
// walk back over cv/ref/exception-spec noise to the parameter list.
int DefinitionArity(const FileContext& ctx, size_t body_begin) {
  const auto& toks = ctx.tokens();
  size_t j = body_begin;
  while (j > 0) {
    const Token& t = toks[j - 1];
    if (IsIdent(t, "const") || IsIdent(t, "noexcept") || IsIdent(t, "override") ||
        IsIdent(t, "final") || IsIdent(t, "mutable") || IsPunct(t, "&") || IsPunct(t, "&&")) {
      --j;
      continue;
    }
    break;
  }
  if (j == 0 || !IsPunct(toks[j - 1], ")")) {
    return 0;
  }
  int depth = 0;
  for (size_t k = j - 1; k + 1 > 0; --k) {
    if (IsPunct(toks[k], ")")) {
      ++depth;
    } else if (IsPunct(toks[k], "(")) {
      if (--depth == 0) {
        return CallArity(toks, k, j - 1);
      }
    }
    if (k == 0) {
      break;
    }
  }
  return 0;
}

// Calls whose only job is to consume or repair a descriptor — passing an fd
// to them is not an escape.
bool IsFdConsumer(std::string_view name) {
  return name == "close" || name == "fclose" || name == "SetCloexec";
}

// Fills `leak->escapes` if `var` leaves the function after token `from`:
// `return var` or `var` inside some later call's argument list.
void ScanForEscape(const FileContext& ctx, size_t from, size_t span_end, LeakyFdRef* leak) {
  const auto& toks = ctx.tokens();
  const std::string& var = leak->var;
  if (var.empty()) {
    return;
  }
  for (size_t i = from; i < span_end && i < toks.size(); ++i) {
    if (IsIdent(toks[i], "return")) {
      for (size_t j = i + 1; j < span_end && j < toks.size() && !IsPunct(toks[j], ";"); ++j) {
        if (IsIdent(toks[j], var)) {
          leak->escapes = true;
          leak->escape_line = toks[j].line;
          leak->escape_how = "returned";
          return;
        }
      }
      continue;
    }
    if (toks[i].kind != TokKind::kIdent || i + 1 >= toks.size() || !IsPunct(toks[i + 1], "(") ||
        IsControlKeyword(toks[i]) || LooksLikeDeclaration(toks, i) ||
        IsFdConsumer(toks[i].text)) {
      continue;
    }
    size_t close = ctx.MatchForward(i + 1);
    if (close >= toks.size()) {
      continue;
    }
    for (size_t j = i + 2; j < close; ++j) {
      if (IsIdent(toks[j], var)) {
        leak->escapes = true;
        leak->escape_line = toks[j].line;
        leak->escape_how = "passed to " + toks[i].text + "()";
        return;
      }
    }
  }
}

// The result-variable of `var = NAME(...)` (also `Type var = NAME(...)`), or
// "" when the result is discarded/compared inline.
std::string ResultVar(const std::vector<Token>& toks, size_t call_ident) {
  if (call_ident >= 2 && IsPunct(toks[call_ident - 1], "=") &&
      toks[call_ident - 2].kind == TokKind::kIdent) {
    return toks[call_ident - 2].text;
  }
  return "";
}

// Classifies a call as a descriptor creation and, when it cannot have set
// CLOEXEC, records a LeakyFdRef (mirrors R2's per-call logic).
void MaybeRecordFdCreation(const FileContext& ctx, size_t i, size_t close, size_t span_end,
                           FunctionSummary* fn) {
  const auto& toks = ctx.tokens();
  const std::string& name = toks[i].text;
  auto args = SplitArgs(toks, i + 1, close);
  bool leaky = false;
  std::string var;
  auto missing = [&](size_t pos, std::string_view flag) {
    return InspectFlagArg(toks, args, pos, flag) == FlagState::kMissing;
  };
  if (name == "open" || name == "OpenFd") {
    leaky = missing(1, "O_CLOEXEC");
  } else if (name == "openat") {
    leaky = missing(2, "O_CLOEXEC");
  } else if (name == "pipe2") {
    leaky = missing(1, "O_CLOEXEC");
  } else if (name == "socket" || name == "socketpair") {
    leaky = missing(1, "SOCK_CLOEXEC");
  } else if (name == "accept4") {
    leaky = missing(3, "SOCK_CLOEXEC");
  } else if (name == "creat" || name == "pipe" || name == "accept" || name == "dup") {
    leaky = true;  // no atomic CLOEXEC spelling exists for these
  } else if (name == "fopen") {
    const Token* last_string = nullptr;
    for (size_t j = i + 2; j < close; ++j) {
      if (toks[j].kind == TokKind::kString) {
        last_string = &toks[j];
      }
    }
    leaky = last_string == nullptr || last_string->text.find('e') == std::string::npos;
  } else if (name == "MakePipe" || name == "MakeSocketPair") {
    // cloexec defaults to true; only an explicit literal `false` is a leak.
    for (const auto& arg : args) {
      for (size_t j = arg.begin; j < arg.end; ++j) {
        leaky = leaky || IsIdent(toks[j], "false");
      }
    }
  } else {
    return;
  }
  if (!leaky) {
    return;
  }
  LeakyFdRef leak;
  leak.line = toks[i].line;
  leak.call = name;
  if ((name == "pipe" || name == "pipe2" || name == "socketpair") && !args.empty()) {
    for (size_t j = args[0].begin; j < args[0].end; ++j) {
      if (toks[j].kind == TokKind::kIdent) {
        leak.var = toks[j].text;
        break;
      }
    }
  } else {
    leak.var = ResultVar(toks, i);
  }
  if (i >= 1 && IsIdent(toks[i - 1], "return")) {
    leak.escapes = true;
    leak.escape_line = toks[i].line;
    leak.escape_how = "returned";
  } else {
    ScanForEscape(ctx, close + 1, span_end, &leak);
  }
  fn->leaky_fds.push_back(std::move(leak));
}

}  // namespace

std::vector<FunctionSummary> ExtractSummaries(const FileContext& ctx) {
  const auto& toks = ctx.tokens();
  const auto& spans = ctx.functions();

  // Child-branch tokens, exec-bounded, exactly as R1 walks them.
  std::vector<char> in_child(toks.size(), 0);
  for (const auto& site : ctx.fork_sites()) {
    for (size_t i = site.child_begin; i < site.child_end && i < toks.size(); ++i) {
      if (rule_util::IsExecOrHardExit(toks, i)) {
        break;
      }
      in_child[i] = 1;
    }
  }
  // Token index of each fork call for O(1) membership while scanning.
  std::vector<char> is_fork_tok(toks.size(), 0);
  std::vector<char> fork_is_vfork(toks.size(), 0);
  for (const auto& site : ctx.fork_sites()) {
    is_fork_tok[site.call_index] = 1;
    fork_is_vfork[site.call_index] = site.is_vfork;
  }

  std::vector<FunctionSummary> out;
  out.reserve(spans.size());
  for (size_t s = 0; s < spans.size(); ++s) {
    const FunctionSpan& span = spans[s];
    if (span.body_end > toks.size()) {
      continue;  // unbalanced body; nothing trustworthy to summarize
    }
    FunctionSummary fn;
    fn.name = span.name;
    fn.path = ctx.path();
    fn.arity = DefinitionArity(ctx, span.body_begin);
    fn.line = toks[span.body_begin].line;

    // Directly-nested spans (lambdas with parameter lists, local classes) own
    // their tokens; skipping whole balanced ranges keeps brace depth honest.
    std::vector<const FunctionSpan*> nested;
    for (size_t t = s + 1; t < spans.size() && spans[t].body_begin < span.body_end; ++t) {
      if (spans[t].body_end <= span.body_end) {
        nested.push_back(&spans[t]);
      }
    }
    size_t next_nested = 0;

    LockTracker locks;
    int depth = 0;
    for (size_t i = span.body_begin; i < span.body_end; ++i) {
      while (next_nested < nested.size() && nested[next_nested]->body_begin < i) {
        ++next_nested;
      }
      if (next_nested < nested.size() && i == nested[next_nested]->body_begin) {
        i = nested[next_nested]->body_end;  // lands on the nested `}`; loop ++ skips past
        ++next_nested;
        continue;
      }
      const Token& t = toks[i];
      if (IsPunct(t, "{")) {
        ++depth;
        continue;
      }
      if (IsPunct(t, "}")) {
        locks.CloseBlock(depth);
        --depth;
        continue;
      }
      if (t.kind != TokKind::kIdent) {
        continue;
      }
      bool is_member = IsMemberCall(toks, i);
      bool next_is_paren = i + 1 < toks.size() && IsPunct(toks[i + 1], "(");

      // RAII guard declarations: std::lock_guard<std::mutex> g(mu).
      if (IsGuardName(t.text) && !is_member && i + 1 < toks.size() &&
          (IsPunct(toks[i + 1], "<") || toks[i + 1].kind == TokKind::kIdent)) {
        locks.raii.push_back({depth, t.line, "std::" + t.text});
        continue;
      }
      // std::-qualified unsafe names (allocation, stdio streams, guards).
      if (t.text == "std" && i + 2 < toks.size() && IsPunct(toks[i + 1], "::") &&
          InUnsafeStd(toks[i + 2].text)) {
        fn.unsafe_calls.push_back({"std::" + toks[i + 2].text, t.line});
        // fall through: the guard push happens at the name token itself
      }
      if (t.text == "new" || t.text == "delete") {
        fn.unsafe_calls.push_back({t.text, t.line});
        continue;
      }
      // Thread creation.
      if ((t.text == "pthread_create" && next_is_paren && !is_member) ||
          ((t.text == "thread" || t.text == "jthread" || t.text == "async") && i >= 2 &&
           IsPunct(toks[i - 1], "::") && IsIdent(toks[i - 2], "std") &&
           (i + 1 >= toks.size() || !IsPunct(toks[i + 1], "::")))) {
        if (fn.thread_line == 0) {
          fn.thread_line = t.line;
        }
        continue;
      }
      if (!next_is_paren) {
        continue;
      }
      // Fork sites (recognized by FileContext, member/ns-qualified already
      // rejected there).
      if (is_fork_tok[i]) {
        ForkSiteRef fork;
        fork.line = t.line;
        fork.is_vfork = fork_is_vfork[i];
        if (const auto* cur = locks.current(); cur != nullptr && locks.held()) {
          fork.lock_held = true;
          fork.lock_line = cur->line;
          fork.lock_desc = cur->desc;
        }
        fn.forks.push_back(std::move(fork));
        continue;
      }
      if (t.text == "fork" || t.text == "vfork") {
        continue;  // ns-qualified or member fork — not the libc symbol
      }
      // Exec-family calls terminate chains; record, don't link. Hard exits
      // (_exit/_Exit) terminate too and are never edges.
      if (IsExecCall(toks, i) && !is_member) {
        if (fn.exec_line == 0) {
          fn.exec_line = t.line;
          fn.exec_callee = t.text;
        }
        continue;
      }
      if (rule_util::IsExecOrHardExit(toks, i)) {
        continue;
      }
      // Explicit lock calls double as unsafe uses (R1's member set).
      if (is_member && InUnsafeMember(t.text)) {
        fn.unsafe_calls.push_back({"." + t.text + "()", t.line});
        if (t.text == "lock") {
          locks.taken.push_back({depth, t.line, ".lock()"});
        } else if (t.text == "unlock") {
          locks.Release();
        }
        continue;
      }
      if (t.text == "pthread_mutex_unlock") {
        locks.Release();
        continue;
      }
      if (InUnsafeFree(t.text)) {
        fn.unsafe_calls.push_back({t.text + "()", t.line});
        if (t.text == "pthread_mutex_lock") {
          locks.taken.push_back({depth, t.line, "pthread_mutex_lock"});
        }
        continue;
      }
      if (IsControlKeyword(t) || LooksLikeDeclaration(toks, i)) {
        continue;
      }
      size_t close = ctx.MatchForward(i + 1);
      if (close >= toks.size()) {
        continue;
      }
      MaybeRecordFdCreation(ctx, i, close, span.body_end, &fn);
      // `std::move(x)` and friends are noise, not edges; our own namespaces
      // (`forklift::X(...)`) are real links and keep their unqualified name.
      if (i >= 2 && IsPunct(toks[i - 1], "::") && IsIdent(toks[i - 2], "std")) {
        continue;
      }
      CallSiteRef call;
      call.callee = t.text;
      call.arity = CallArity(toks, i + 1, close);
      call.line = t.line;
      call.is_member = is_member;
      call.in_child_branch = in_child[i] != 0;
      if (const auto* cur = locks.current(); cur != nullptr && locks.held()) {
        call.lock_held = true;
        call.lock_line = cur->line;
        call.lock_desc = cur->desc;
      }
      fn.calls.push_back(std::move(call));
    }
    out.push_back(std::move(fn));
  }
  return out;
}

void PropagateSummaries(const CallGraph& graph, std::vector<FunctionSummary>* fns) {
  for (auto& fn : *fns) {
    fn.may_fork = !fn.forks.empty();
    fn.may_exec = fn.exec_line != 0;
    fn.may_unsafe = !fn.unsafe_calls.empty();
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < fns->size(); ++i) {
      FunctionSummary& fn = (*fns)[i];
      for (size_t c = 0; c < fn.calls.size(); ++c) {
        int target = graph.ResolveCall(i, c);
        if (target < 0) {
          continue;
        }
        const FunctionSummary& callee = (*fns)[static_cast<size_t>(target)];
        if (callee.may_fork && !fn.may_fork) {
          fn.may_fork = changed = true;
        }
        if (callee.may_exec && !fn.may_exec) {
          fn.may_exec = changed = true;
        }
        if (callee.may_unsafe && !fn.may_unsafe) {
          fn.may_unsafe = changed = true;
        }
      }
    }
  }
}

std::string SerializeSummaries(const std::vector<FunctionSummary>& fns) {
  std::ostringstream out;
  out << "summaries 1\n";
  for (const auto& fn : fns) {
    out << "fn " << fn.arity << ' ' << fn.line << ' ' << fn.name << '\n';
    for (const auto& c : fn.calls) {
      out << "call " << c.arity << ' ' << c.line << ' ' << (c.is_member ? 1 : 0) << ' '
          << (c.lock_held ? 1 : 0) << ' ' << c.lock_line << ' ' << (c.in_child_branch ? 1 : 0)
          << ' ' << c.callee << ' ' << (c.lock_desc.empty() ? "-" : c.lock_desc) << '\n';
    }
    for (const auto& f : fn.forks) {
      out << "fork " << f.line << ' ' << (f.is_vfork ? 1 : 0) << ' ' << (f.lock_held ? 1 : 0)
          << ' ' << f.lock_line << ' ' << (f.lock_desc.empty() ? "-" : f.lock_desc) << '\n';
    }
    for (const auto& l : fn.leaky_fds) {
      out << "leak " << l.line << ' ' << (l.escapes ? 1 : 0) << ' ' << l.escape_line << ' '
          << l.call << ' ' << (l.var.empty() ? "-" : l.var) << ' '
          << (l.escape_how.empty() ? "-" : l.escape_how) << '\n';
    }
    for (const auto& u : fn.unsafe_calls) {
      out << "unsafe " << u.line << ' ' << u.name << '\n';
    }
    if (fn.thread_line != 0) {
      out << "thread " << fn.thread_line << '\n';
    }
    if (fn.exec_line != 0) {
      out << "exec " << fn.exec_line << ' ' << fn.exec_callee << '\n';
    }
  }
  return out.str();
}

bool DeserializeSummaries(std::string_view text, std::vector<FunctionSummary>* out) {
  std::istringstream in{std::string(text)};
  std::string line;
  if (!std::getline(in, line) || line != "summaries 1") {
    return false;
  }
  out->clear();
  auto undash = [](std::string s) { return s == "-" ? std::string() : s; };
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "fn") {
      FunctionSummary fn;
      ls >> fn.arity >> fn.line >> fn.name;
      if (ls.fail()) {
        return false;
      }
      out->push_back(std::move(fn));
      continue;
    }
    if (out->empty()) {
      return false;
    }
    FunctionSummary& fn = out->back();
    if (kind == "call") {
      CallSiteRef c;
      int member = 0, lock = 0, child = 0;
      ls >> c.arity >> c.line >> member >> lock >> c.lock_line >> child >> c.callee;
      std::string desc;
      ls >> desc;
      if (ls.fail()) {
        return false;
      }
      c.is_member = member != 0;
      c.lock_held = lock != 0;
      c.in_child_branch = child != 0;
      c.lock_desc = undash(desc);
      fn.calls.push_back(std::move(c));
    } else if (kind == "fork") {
      ForkSiteRef f;
      int vfork = 0, lock = 0;
      ls >> f.line >> vfork >> lock >> f.lock_line;
      std::string desc;
      ls >> desc;
      if (ls.fail()) {
        return false;
      }
      f.is_vfork = vfork != 0;
      f.lock_held = lock != 0;
      f.lock_desc = undash(desc);
      fn.forks.push_back(std::move(f));
    } else if (kind == "leak") {
      LeakyFdRef l;
      int escapes = 0;
      std::string var;
      ls >> l.line >> escapes >> l.escape_line >> l.call >> var;
      if (ls.fail()) {
        return false;
      }
      l.escapes = escapes != 0;
      l.var = undash(var);
      std::string rest;
      std::getline(ls, rest);
      std::string_view how = rest;
      while (!how.empty() && how.front() == ' ') {
        how.remove_prefix(1);
      }
      l.escape_how = undash(std::string(how));
      fn.leaky_fds.push_back(std::move(l));
    } else if (kind == "unsafe") {
      UnsafeCallRef u;
      ls >> u.line >> u.name;
      if (ls.fail()) {
        return false;
      }
      fn.unsafe_calls.push_back(std::move(u));
    } else if (kind == "thread") {
      ls >> fn.thread_line;
    } else if (kind == "exec") {
      ls >> fn.exec_line >> fn.exec_callee;
    } else if (!kind.empty()) {
      return false;
    }
  }
  return true;
}

}  // namespace analysis
}  // namespace forklift
