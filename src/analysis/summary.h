// forklift/analysis: per-function summaries — the unit of forklint's
// whole-program analysis.
//
// A FunctionSummary is everything the interprocedural rules (R9–R12) need to
// know about one function without re-reading its body: the calls it makes
// (with the lock state and fork-child context at each call site), its own
// fork/exec/thread-creation sites, its direct async-signal-unsafe uses, and
// any non-CLOEXEC descriptors it creates that escape it. Summaries are
// extracted per file (so they can be cached keyed by file content hash) and
// linked across translation units by the CallGraph; PropagateSummaries then
// runs the transitive may-* facts to a fixed point over the graph, cycles
// included.
//
// Like the per-file rules, everything here is heuristic token matching —
// precision over recall. Lock tracking understands RAII guards
// (lock_guard/unique_lock/scoped_lock scopes die with their enclosing block)
// and explicit .lock()/.unlock()/pthread_mutex_lock pairs; calls made from
// lambda bodies are attributed to the lambda (an unlinkable node), not the
// enclosing function, so indirect dispatch never manufactures a false chain.
#ifndef SRC_ANALYSIS_SUMMARY_H_
#define SRC_ANALYSIS_SUMMARY_H_

#include <string>
#include <vector>

#include "src/analysis/rule.h"

namespace forklift {
namespace analysis {

// One call expression inside a function body.
struct CallSiteRef {
  std::string callee;  // unqualified name as written
  int arity = 0;       // argument count at the call site
  int line = 0;
  bool is_member = false;       // x.f() / x->f()
  bool lock_held = false;       // a guard or explicit lock is live at the call
  int lock_line = 0;            // where that lock was acquired (0 = none)
  std::string lock_desc;        // "std::lock_guard", ".lock()", ...
  bool in_child_branch = false;  // inside a fork child branch, before exec/_exit
};

struct ForkSiteRef {
  int line = 0;
  bool is_vfork = false;
  bool lock_held = false;
  int lock_line = 0;
  std::string lock_desc;
};

// A descriptor created without CLOEXEC, and whether its value leaves the
// creating function (returned, or passed onward as a call argument).
struct LeakyFdRef {
  int line = 0;
  std::string call;  // creating call (open, pipe, MakePipe, ...)
  std::string var;   // variable the fd landed in ("" = unknown)
  bool escapes = false;
  int escape_line = 0;
  std::string escape_how;  // "returned" or "passed to F()"
};

struct UnsafeCallRef {
  std::string name;  // printf, new, std::string, .lock(), ...
  int line = 0;
};

struct FunctionSummary {
  std::string name;  // unqualified; "<lambda>" for lambdas (never a link target)
  std::string path;
  int arity = 0;  // parameter count of the definition (overload resolution key)
  int line = 0;   // line of the body's opening brace

  std::vector<CallSiteRef> calls;
  std::vector<ForkSiteRef> forks;
  std::vector<LeakyFdRef> leaky_fds;
  std::vector<UnsafeCallRef> unsafe_calls;  // direct async-signal-unsafe uses
  int thread_line = 0;  // first pthread_create/std::thread/std::async site (0 = none)
  int exec_line = 0;    // first exec-family call (0 = none)
  std::string exec_callee;

  // Transitive facts, computed by PropagateSummaries over the call graph.
  bool may_fork = false;    // reaches a fork()/vfork() site
  bool may_exec = false;    // reaches an exec-family call
  bool may_unsafe = false;  // reaches an async-signal-unsafe use
};

// Extracts summaries for every function span in one analyzed file.
std::vector<FunctionSummary> ExtractSummaries(const FileContext& ctx);

class CallGraph;  // callgraph.h

// Runs may_fork/may_exec/may_unsafe to a fixed point over the linked graph.
// Terminates on cycles (monotone boolean lattice).
void PropagateSummaries(const CallGraph& graph, std::vector<FunctionSummary>* fns);

// Cache serialization: a stable line-oriented text form of one file's
// summaries (transitive bits excluded — they are recomputed per program).
std::string SerializeSummaries(const std::vector<FunctionSummary>& fns);
bool DeserializeSummaries(std::string_view text, std::vector<FunctionSummary>* out);

}  // namespace analysis
}  // namespace forklift

#endif  // SRC_ANALYSIS_SUMMARY_H_
