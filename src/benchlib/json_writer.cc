#include "src/benchlib/json_writer.h"

#include <cstdio>

namespace forklift {

namespace {

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the comma (if any) was emitted by Key()
  }
  if (!container_has_items_.empty()) {
    if (container_has_items_.back()) {
      out_ += ',';
    }
    container_has_items_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  container_has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  container_has_items_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  container_has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  container_has_items_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& name) {
  if (!container_has_items_.empty()) {
    if (container_has_items_.back()) {
      out_ += ',';
    }
    container_has_items_.back() = true;
  }
  out_ += '"';
  out_ += EscapeJson(name);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(const std::string& v) {
  BeforeValue();
  out_ += '"';
  out_ += EscapeJson(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Value(const char* v) { return Value(std::string(v)); }

JsonWriter& JsonWriter::Value(double v) {
  BeforeValue();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t v) {
  BeforeValue();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Value(int v) {
  BeforeValue();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Value(bool v) {
  BeforeValue();
  out_ += v ? "true" : "false";
  return *this;
}

Status WriteTextFile(const std::string& path, const std::string& content) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return ErrnoError("fopen " + path);
  }
  size_t written = std::fwrite(content.data(), 1, content.size(), f);
  int close_rc = std::fclose(f);
  if (written != content.size() || close_rc != 0) {
    return ErrnoError("write " + path);
  }
  return Status::Ok();
}

}  // namespace forklift
