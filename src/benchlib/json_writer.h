// forklift/benchlib: minimal streaming JSON emitter.
//
// Bench binaries accept `--json <path>` and dump their series as a machine-
// readable BENCH_*.json artifact next to the human-readable table, so result
// trajectories can be tracked across commits without scraping stdout. The
// writer is append-only with automatic comma management; no external JSON
// dependency (the container pins the toolchain).
#ifndef SRC_BENCHLIB_JSON_WRITER_H_
#define SRC_BENCHLIB_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"

namespace forklift {

class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  // Key must be followed by exactly one Value/Begin* call.
  JsonWriter& Key(const std::string& name);

  JsonWriter& Value(const std::string& v);
  JsonWriter& Value(const char* v);
  JsonWriter& Value(double v);
  JsonWriter& Value(uint64_t v);
  JsonWriter& Value(int v);
  JsonWriter& Value(bool v);

  // The document built so far (complete once every Begin* is closed).
  const std::string& str() const { return out_; }

 private:
  void BeforeValue();

  std::string out_;
  std::vector<bool> container_has_items_;
  bool pending_key_ = false;
};

// Writes `content` to `path` (truncating), for `--json` output files.
Status WriteTextFile(const std::string& path, const std::string& content);

}  // namespace forklift

#endif  // SRC_BENCHLIB_JSON_WRITER_H_
