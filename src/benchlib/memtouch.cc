#include "src/benchlib/memtouch.h"

#include <sys/mman.h>

namespace forklift {

namespace {
constexpr size_t kPage = 4096;
}

HeapBallast::~HeapBallast() {
  if (data_ != nullptr) {
    ::munmap(data_, bytes_);
  }
}

Status HeapBallast::Resize(size_t bytes) {
  if (data_ != nullptr) {
    ::munmap(data_, bytes_);
    data_ = nullptr;
    bytes_ = 0;
  }
  if (bytes == 0) {
    return Status::Ok();
  }
  void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) {
    return ErrnoError("mmap ballast");
  }
  // Ask the kernel NOT to back this with transparent huge pages: the paper's
  // figure measures the 4KiB-page regime (its text then notes THP as the
  // mitigation, which bench/fig1_sim ablates explicitly).
#ifdef MADV_NOHUGEPAGE
  ::madvise(p, bytes, MADV_NOHUGEPAGE);
#endif
  data_ = static_cast<uint8_t*>(p);
  bytes_ = bytes;
  TouchAll();
  return Status::Ok();
}

void HeapBallast::TouchAll() {
  for (size_t off = 0; off < bytes_; off += kPage) {
    data_[off] = static_cast<uint8_t>(off >> 12);
  }
}

}  // namespace forklift
