// forklift/benchlib: the Figure-1 workload generator — a parent process that
// owns a configurable amount of DIRTY anonymous memory. Dirty matters: fork's
// page-table copy and posix_spawn's indifference to it are both functions of
// resident pages, not of vm size, so every page is written, not just mapped.
#ifndef SRC_BENCHLIB_MEMTOUCH_H_
#define SRC_BENCHLIB_MEMTOUCH_H_

#include <cstddef>
#include <cstdint>

#include "src/common/result.h"

namespace forklift {

class HeapBallast {
 public:
  HeapBallast() = default;
  ~HeapBallast();

  HeapBallast(const HeapBallast&) = delete;
  HeapBallast& operator=(const HeapBallast&) = delete;

  // Maps `bytes` of anonymous memory and writes one word per 4KiB page.
  // Replaces any previous ballast.
  Status Resize(size_t bytes);

  // Re-dirties every page (e.g. after a fork downgraded them to COW, to
  // restore a "hot parent" before the next measurement).
  void TouchAll();

  size_t bytes() const { return bytes_; }
  uint8_t* data() { return data_; }

 private:
  uint8_t* data_ = nullptr;
  size_t bytes_ = 0;
};

}  // namespace forklift

#endif  // SRC_BENCHLIB_MEMTOUCH_H_
