#include "src/benchlib/table.h"

#include <algorithm>

namespace forklift {

std::string TablePrinter::Cell(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::Cell(uint64_t v) { return std::to_string(v); }

void TablePrinter::Print(FILE* out) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      std::fprintf(out, "%s%-*s", i == 0 ? "" : "  ", static_cast<int>(widths[i]), cell.c_str());
    }
    std::fprintf(out, "\n");
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) {
    total += w + 2;
  }
  for (size_t i = 0; i + 2 < total; ++i) {
    std::fputc('-', out);
  }
  std::fputc('\n', out);
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string TablePrinter::ToCsv() const {
  std::string out;
  auto append_row = [&out](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) {
        out += ',';
      }
      out += row[i];
    }
    out += '\n';
  };
  append_row(headers_);
  for (const auto& row : rows_) {
    append_row(row);
  }
  return out;
}

void PrintBanner(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

}  // namespace forklift
