// forklift/benchlib: aligned table output for experiment results.
//
// Every bench binary prints its series as one of these tables (and optionally
// CSV) so EXPERIMENTS.md can quote results verbatim.
#ifndef SRC_BENCHLIB_TABLE_H_
#define SRC_BENCHLIB_TABLE_H_

#include <cstdio>
#include <string>
#include <vector>

namespace forklift {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  // Convenience for numeric cells.
  static std::string Cell(double v, int precision = 2);
  static std::string Cell(uint64_t v);

  void Print(FILE* out = stdout) const;
  std::string ToCsv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Section banner: "== E1: ... ==".
void PrintBanner(const std::string& title);

}  // namespace forklift

#endif  // SRC_BENCHLIB_TABLE_H_
