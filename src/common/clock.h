// forklift/common: monotonic timing for the benchmark harnesses.
#ifndef SRC_COMMON_CLOCK_H_
#define SRC_COMMON_CLOCK_H_

#include <cstdint>
#include <ctime>

namespace forklift {

// Nanoseconds from CLOCK_MONOTONIC. Monotonic across the process, unaffected
// by wall-clock adjustment; the only clock benchmark code should use.
inline uint64_t MonotonicNanos() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull + static_cast<uint64_t>(ts.tv_nsec);
}

// Scoped stopwatch: elapsed time since construction.
class Stopwatch {
 public:
  Stopwatch() : start_(MonotonicNanos()) {}

  void Reset() { start_ = MonotonicNanos(); }
  uint64_t ElapsedNanos() const { return MonotonicNanos() - start_; }
  double ElapsedMicros() const { return static_cast<double>(ElapsedNanos()) / 1e3; }
  double ElapsedMillis() const { return static_cast<double>(ElapsedNanos()) / 1e6; }
  double ElapsedSeconds() const { return static_cast<double>(ElapsedNanos()) / 1e9; }

 private:
  uint64_t start_;
};

}  // namespace forklift

#endif  // SRC_COMMON_CLOCK_H_
