#include "src/common/env.h"

extern char** environ;

namespace forklift {

EnvMap EnvMap::FromCurrent() { return FromBlock(environ); }

EnvMap EnvMap::FromBlock(char* const* envp) {
  EnvMap env;
  if (envp == nullptr) {
    return env;
  }
  for (char* const* p = envp; *p != nullptr; ++p) {
    std::string_view entry(*p);
    size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      continue;
    }
    env.vars_.emplace(std::string(entry.substr(0, eq)), std::string(entry.substr(eq + 1)));
  }
  return env;
}

EnvMap EnvMap::FromStrings(const std::vector<std::string>& entries) {
  EnvMap env;
  for (const auto& entry : entries) {
    size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      continue;
    }
    env.vars_[entry.substr(0, eq)] = entry.substr(eq + 1);
  }
  return env;
}

void EnvMap::Set(std::string_view key, std::string_view value) {
  vars_[std::string(key)] = std::string(value);
}

void EnvMap::Unset(std::string_view key) {
  auto it = vars_.find(key);
  if (it != vars_.end()) {
    vars_.erase(it);
  }
}

std::optional<std::string> EnvMap::Get(std::string_view key) const {
  auto it = vars_.find(key);
  if (it == vars_.end()) {
    return std::nullopt;
  }
  return it->second;
}

bool EnvMap::Has(std::string_view key) const { return vars_.count(std::string(key)) != 0; }

std::vector<std::string> EnvMap::ToStrings() const {
  std::vector<std::string> out;
  out.reserve(vars_.size());
  for (const auto& [k, v] : vars_) {
    out.push_back(k + "=" + v);
  }
  return out;
}

ArgvBlock EnvMap::ToBlock() const { return ArgvBlock(ToStrings()); }

}  // namespace forklift
