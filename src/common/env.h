// forklift/common: environment and argv block handling.
//
// exec-family calls want NUL-terminated char* arrays whose storage outlives the
// call (and, for vfork/posix_spawn, must not be touched by the parent while the
// child runs). ArgvBlock owns stable storage for such an array. EnvMap is an
// ordered key→value view of an environment with POSIX "KEY=VALUE" encoding.
#ifndef SRC_COMMON_ENV_H_
#define SRC_COMMON_ENV_H_

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace forklift {

// Owns the strings and the char* vector; `data()` is valid until the block is
// destroyed or mutated.
class ArgvBlock {
 public:
  ArgvBlock() { Finalize(); }
  explicit ArgvBlock(const std::vector<std::string>& args) {
    for (const auto& a : args) {
      Add(a);
    }
    Finalize();
  }

  void Add(std::string_view arg) {
    storage_.push_back(std::string(arg));
    Finalize();
  }

  size_t size() const { return storage_.size(); }
  bool empty() const { return storage_.empty(); }
  const std::string& operator[](size_t i) const { return storage_[i]; }

  // NULL-terminated array suitable for execv/posix_spawn. The pointed-to
  // strings are owned by this block.
  char* const* data() const { return const_cast<char* const*>(pointers_.data()); }

  const std::vector<std::string>& strings() const { return storage_; }

 private:
  void Finalize() {
    pointers_.clear();
    pointers_.reserve(storage_.size() + 1);
    for (auto& s : storage_) {
      pointers_.push_back(s.data());
    }
    pointers_.push_back(nullptr);
  }

  std::vector<std::string> storage_;
  std::vector<char*> pointers_;
};

// An environment as a sorted map. Conversion to/from the "KEY=VALUE" block
// format used by execve and `environ`.
class EnvMap {
 public:
  EnvMap() = default;

  // Snapshot of the calling process's environment.
  static EnvMap FromCurrent();
  // Parse a NULL-terminated "KEY=VALUE" array. Entries without '=' ignored.
  static EnvMap FromBlock(char* const* envp);
  // Parse a vector of "KEY=VALUE" strings.
  static EnvMap FromStrings(const std::vector<std::string>& entries);

  void Set(std::string_view key, std::string_view value);
  void Unset(std::string_view key);
  std::optional<std::string> Get(std::string_view key) const;
  bool Has(std::string_view key) const;
  size_t size() const { return vars_.size(); }

  // "KEY=VALUE" strings, sorted by key (deterministic for tests and hashing).
  std::vector<std::string> ToStrings() const;
  // Stable-storage block for exec.
  ArgvBlock ToBlock() const;

  const std::map<std::string, std::string, std::less<>>& vars() const { return vars_; }

 private:
  std::map<std::string, std::string, std::less<>> vars_;
};

}  // namespace forklift

#endif  // SRC_COMMON_ENV_H_
