#include "src/common/log.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>

namespace forklift {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

void Logf(LogLevel level, const char* fmt, ...) {
  // One level load, one buffer, one write(2): the whole emission is a single
  // atomic step per message, so concurrent threads can neither shear a line
  // nor observe a level change between the check and the write.
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  char buf[2048];
  int off = std::snprintf(buf, sizeof(buf), "[forklift %s] ", LevelTag(level));
  va_list ap;
  va_start(ap, fmt);
  const size_t avail = sizeof(buf) - static_cast<size_t>(off);
  int n = std::vsnprintf(buf + off, avail, fmt, ap);
  va_end(ap);
  if (n < 0) {
    return;
  }
  size_t len;
  if (static_cast<size_t>(n) < avail) {
    // Fully rendered (n < avail means off + n <= sizeof(buf) - 1, so the
    // newline always fits without dropping a message byte).
    len = static_cast<size_t>(off) + static_cast<size_t>(n);
    buf[len++] = '\n';
  } else {
    // The message overflowed the buffer: overwrite the tail with an explicit
    // truncation marker instead of silently dropping the end of the line.
    std::memcpy(buf + sizeof(buf) - 4, "...\n", 4);
    len = sizeof(buf);
  }
  ssize_t ignored = ::write(STDERR_FILENO, buf, len);
  (void)ignored;
}

}  // namespace forklift
