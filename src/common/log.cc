#include "src/common/log.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>

namespace forklift {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

void Logf(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  char buf[2048];
  int off = std::snprintf(buf, sizeof(buf), "[forklift %s] ", LevelTag(level));
  va_list ap;
  va_start(ap, fmt);
  int n = std::vsnprintf(buf + off, sizeof(buf) - static_cast<size_t>(off) - 1, fmt, ap);
  va_end(ap);
  if (n < 0) {
    return;
  }
  size_t len = static_cast<size_t>(off) + static_cast<size_t>(n);
  if (len >= sizeof(buf) - 1) {
    len = sizeof(buf) - 2;
  }
  buf[len++] = '\n';
  // Single write so concurrent messages do not interleave mid-line.
  ssize_t ignored = ::write(STDERR_FILENO, buf, len);
  (void)ignored;
}

}  // namespace forklift
