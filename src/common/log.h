// forklift/common: minimal leveled logging to stderr.
//
// This is deliberately tiny: the library's hot paths never log, and the child
// side of a fork must not log at all (stdio is not async-signal-safe), so a
// printf-style stderr logger covers every legitimate use.
#ifndef SRC_COMMON_LOG_H_
#define SRC_COMMON_LOG_H_

#include <cstdarg>

namespace forklift {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

// Global threshold; messages below it are dropped. Default kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// printf-style. Thread-safe (single write() per message).
void Logf(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

#define FORKLIFT_DLOG(...) ::forklift::Logf(::forklift::LogLevel::kDebug, __VA_ARGS__)
#define FORKLIFT_LOG(...) ::forklift::Logf(::forklift::LogLevel::kInfo, __VA_ARGS__)
#define FORKLIFT_WARN(...) ::forklift::Logf(::forklift::LogLevel::kWarn, __VA_ARGS__)
#define FORKLIFT_ERROR(...) ::forklift::Logf(::forklift::LogLevel::kError, __VA_ARGS__)

}  // namespace forklift

#endif  // SRC_COMMON_LOG_H_
