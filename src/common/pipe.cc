#include "src/common/pipe.h"

#include <cerrno>

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include "src/faultinject/faultinject.h"

namespace forklift {

Result<Pipe> MakePipe(bool cloexec) {
  int fds[2];
  auto inj = fault::Check("pipe.pipe2", fault::Op::kCreateFd);
  if (inj.is_errno()) {
    errno = inj.err;
    return ErrnoError("pipe2");
  }
  if (::pipe2(fds, cloexec ? O_CLOEXEC : 0) < 0) {
    return ErrnoError("pipe2");
  }
  Pipe p;
  p.read_end = UniqueFd(fds[0]);
  p.write_end = UniqueFd(fds[1]);
  return p;
}

Result<SocketPair> MakeSocketPair(bool cloexec) {
  int fds[2];
  auto inj = fault::Check("pipe.socketpair", fault::Op::kCreateFd);
  if (inj.is_errno()) {
    errno = inj.err;
    return ErrnoError("socketpair");
  }
  int type = SOCK_STREAM | (cloexec ? SOCK_CLOEXEC : 0);
  if (::socketpair(AF_UNIX, type, 0, fds) < 0) {
    return ErrnoError("socketpair");
  }
  SocketPair p;
  p.first = UniqueFd(fds[0]);
  p.second = UniqueFd(fds[1]);
  return p;
}

}  // namespace forklift
