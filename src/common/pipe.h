// forklift/common: pipe and socketpair construction.
//
// All pairs are created close-on-exec by default — the library's "secure by
// default" stance (HotOS'19 §4: fork/exec leaks every inherited descriptor
// unless each call site remembers CLOEXEC). Descriptors are *selectively*
// re-enabled for inheritance by the spawn fd-action machinery, never by
// leaving CLOEXEC off at creation.
#ifndef SRC_COMMON_PIPE_H_
#define SRC_COMMON_PIPE_H_

#include "src/common/result.h"
#include "src/common/unique_fd.h"

namespace forklift {

// A unidirectional pipe. Data written to `write_end` appears on `read_end`.
struct Pipe {
  UniqueFd read_end;
  UniqueFd write_end;
};

// pipe2(O_CLOEXEC). Pass cloexec=false only for deliberate inheritance tests.
Result<Pipe> MakePipe(bool cloexec = true);

// A connected AF_UNIX stream socket pair (bidirectional, supports SCM_RIGHTS).
struct SocketPair {
  UniqueFd first;
  UniqueFd second;
};

Result<SocketPair> MakeSocketPair(bool cloexec = true);

}  // namespace forklift

#endif  // SRC_COMMON_PIPE_H_
