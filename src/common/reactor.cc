#include "src/common/reactor.h"

#include <sys/epoll.h>
#include <sys/timerfd.h>
#include <sys/wait.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/syscall.h>
#endif

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <utility>
#include <vector>

#include "src/common/clock.h"
#include "src/faultinject/faultinject.h"

namespace forklift {

namespace {

std::atomic<bool> g_force_pidfd_fallback{false};

}  // namespace

int PidfdOpen(pid_t pid) {
  if (g_force_pidfd_fallback.load(std::memory_order_relaxed)) {
    errno = ENOSYS;
    return -1;
  }
  auto inj = fault::Check("reactor.pidfd_open", fault::Op::kPidfdOpen);
  if (inj.is_errno()) {
    errno = inj.err;
    return -1;
  }
#if defined(__linux__) && defined(SYS_pidfd_open)
  // Close-on-exec by construction (pidfd_open(2)): safe to hold across spawns.
  return static_cast<int>(::syscall(SYS_pidfd_open, pid, 0));
#else
  (void)pid;
  errno = ENOSYS;
  return -1;
#endif
}

void TestOnlyForcePidfdFallback(bool force) {
  g_force_pidfd_fallback.store(force, std::memory_order_relaxed);
}

Result<Reactor> Reactor::Create() {
  Reactor reactor;
  auto ep_inj = fault::Check("reactor.epoll_create", fault::Op::kCreateFd);
  if (ep_inj.is_errno()) {
    errno = ep_inj.err;
    return ErrnoError("epoll_create1");
  }
  int ep = ::epoll_create1(EPOLL_CLOEXEC);
  if (ep < 0) {
    return ErrnoError("epoll_create1");
  }
  reactor.epoll_fd_.Reset(ep);
  auto tfd_inj = fault::Check("reactor.timerfd_create", fault::Op::kCreateFd);
  if (tfd_inj.is_errno()) {
    errno = tfd_inj.err;
    return ErrnoError("timerfd_create");
  }
  int tfd = ::timerfd_create(CLOCK_MONOTONIC, TFD_NONBLOCK | TFD_CLOEXEC);
  if (tfd < 0) {
    return ErrnoError("timerfd_create");
  }
  reactor.timer_fd_.Reset(tfd);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = tfd;
  auto add_inj = fault::Check("reactor.epoll_ctl_add", fault::Op::kEpollCtl);
  if (add_inj.is_errno()) {
    errno = add_inj.err;
    return ErrnoError("epoll_ctl(ADD timerfd)");
  }
  if (::epoll_ctl(ep, EPOLL_CTL_ADD, tfd, &ev) < 0) {
    return ErrnoError("epoll_ctl(ADD timerfd)");
  }
  return reactor;
}

Status Reactor::AddFd(int fd, uint32_t events, FdCallback callback) {
  if (fd < 0) {
    return LogicalError("Reactor::AddFd: invalid fd");
  }
  if (fd_watches_.count(fd) != 0 || fd == timer_fd_.get()) {
    return LogicalError("Reactor::AddFd: fd already registered");
  }
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  auto inj = fault::Check("reactor.epoll_ctl_add", fault::Op::kEpollCtl);
  if (inj.is_errno()) {
    errno = inj.err;
    return ErrnoError("epoll_ctl(ADD)");
  }
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &ev) < 0) {
    return ErrnoError("epoll_ctl(ADD)");
  }
  fd_watches_.emplace(fd, std::make_shared<FdCallback>(std::move(callback)));
  return Status::Ok();
}

Status Reactor::ModifyFd(int fd, uint32_t events) {
  if (fd_watches_.count(fd) == 0) {
    return LogicalError("Reactor::ModifyFd: fd not registered");
  }
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  auto inj = fault::Check("reactor.epoll_ctl_mod", fault::Op::kEpollCtl);
  if (inj.is_errno()) {
    errno = inj.err;
    return ErrnoError("epoll_ctl(MOD)");
  }
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, fd, &ev) < 0) {
    return ErrnoError("epoll_ctl(MOD)");
  }
  return Status::Ok();
}

Status Reactor::RemoveFd(int fd) {
  auto it = fd_watches_.find(fd);
  if (it == fd_watches_.end()) {
    return LogicalError("Reactor::RemoveFd: fd not registered");
  }
  fd_watches_.erase(it);
  auto inj = fault::Check("reactor.epoll_ctl_del", fault::Op::kEpollCtl);
  if (inj.is_errno()) {
    errno = inj.err;
    return ErrnoError("epoll_ctl(DEL)");
  }
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr) < 0) {
    return ErrnoError("epoll_ctl(DEL)");
  }
  return Status::Ok();
}

bool Reactor::HasFd(int fd) const { return fd_watches_.count(fd) != 0; }

Status Reactor::RearmTimerFd() {
  itimerspec spec{};
  if (!timers_by_deadline_.empty()) {
    // TFD_TIMER_ABSTIME against CLOCK_MONOTONIC; an all-zero it_value would
    // disarm, so a deadline already in the past is clamped to 1ns (fires
    // immediately).
    uint64_t deadline = std::max<uint64_t>(timers_by_deadline_.begin()->first, 1);
    spec.it_value.tv_sec = static_cast<time_t>(deadline / 1000000000ull);
    spec.it_value.tv_nsec = static_cast<long>(deadline % 1000000000ull);
  }
  auto inj = fault::Check("reactor.timerfd_settime", fault::Op::kFcntl);
  if (inj.is_errno()) {
    errno = inj.err;
    return ErrnoError("timerfd_settime");
  }
  if (::timerfd_settime(timer_fd_.get(), TFD_TIMER_ABSTIME, &spec, nullptr) < 0) {
    return ErrnoError("timerfd_settime");
  }
  return Status::Ok();
}

Reactor::TimerId Reactor::AddTimerAt(uint64_t deadline_ns, TimerCallback callback) {
  TimerId id = next_timer_id_++;
  timers_by_deadline_.emplace(
      deadline_ns, TimerEntry{id, std::make_shared<TimerCallback>(std::move(callback))});
  timer_deadlines_.emplace(id, deadline_ns);
  // AddTimerAt has no error channel; a failed rearm would leave this timer
  // armed in the maps but never delivered by the kernel — an unbounded hang
  // for whoever waits on it. Park the error for the next PollOnce instead.
  Status rearmed = RearmTimerFd();
  if (!rearmed.ok() && pending_error_.ok()) {
    pending_error_ = std::move(rearmed);
  }
  return id;
}

Reactor::TimerId Reactor::AddTimerAfter(double delay_seconds, TimerCallback callback) {
  uint64_t delay_ns =
      delay_seconds <= 0 ? 0 : static_cast<uint64_t>(delay_seconds * 1e9);
  return AddTimerAt(MonotonicNanos() + delay_ns, std::move(callback));
}

void Reactor::CancelTimer(TimerId id) {
  auto it = timer_deadlines_.find(id);
  if (it == timer_deadlines_.end()) {
    return;
  }
  auto [begin, end] = timers_by_deadline_.equal_range(it->second);
  for (auto entry = begin; entry != end; ++entry) {
    if (entry->second.id == id) {
      timers_by_deadline_.erase(entry);
      break;
    }
  }
  timer_deadlines_.erase(it);
  Status rearmed = RearmTimerFd();
  if (!rearmed.ok() && pending_error_.ok()) {
    pending_error_ = std::move(rearmed);
  }
}

Result<int> Reactor::PollOnce(int timeout_ms) {
  if (!pending_error_.ok()) {
    Status deferred = std::move(pending_error_);
    pending_error_ = Status::Ok();
    return Err(deferred.error());
  }
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  int ready;
  for (;;) {
    auto inj = fault::Check("reactor.epoll_wait", fault::Op::kEpollWait);
    if (inj.is_errno()) {
      ready = -1;
      errno = inj.err;
    } else {
      ready = ::epoll_wait(epoll_fd_.get(), events, kMaxEvents, timeout_ms);
    }
    if (ready >= 0) {
      break;
    }
    if (errno != EINTR) {
      return ErrnoError("epoll_wait");
    }
  }

  int dispatched = 0;
  for (int i = 0; i < ready; ++i) {
    if (events[i].data.fd == timer_fd_.get()) {
      uint64_t expirations = 0;
      (void)::read(timer_fd_.get(), &expirations, sizeof(expirations));
      // Harvest everything due before invoking anything: callbacks may add or
      // cancel timers, and a cancel only reaches timers still in the maps.
      uint64_t now = MonotonicNanos();
      std::vector<TimerEntry> due;
      while (!timers_by_deadline_.empty() && timers_by_deadline_.begin()->first <= now) {
        due.push_back(std::move(timers_by_deadline_.begin()->second));
        timer_deadlines_.erase(due.back().id);
        timers_by_deadline_.erase(timers_by_deadline_.begin());
      }
      FORKLIFT_RETURN_IF_ERROR(RearmTimerFd());
      for (auto& entry : due) {
        (*entry.callback)();
        ++dispatched;
      }
      continue;
    }
    // A callback earlier in this batch may have removed this fd (or replaced
    // it — in which case the new watch harmlessly sees a possibly-stale event
    // mask). Holding the shared_ptr keeps the closure alive even if the
    // callback unregisters itself mid-invocation.
    auto it = fd_watches_.find(events[i].data.fd);
    if (it == fd_watches_.end()) {
      continue;
    }
    std::shared_ptr<FdCallback> callback = it->second;
    (*callback)(events[i].events);
    ++dispatched;
  }
  return dispatched;
}

// ---------------------------------------------------------------------------
// ChildWatch

struct ChildWatch::State {
  Reactor* reactor = nullptr;
  pid_t pid = -1;
  int pidfd = -1;  // borrowed from the owning ChildWatch, for self-removal
  std::function<void()> on_exit;
  bool fired = false;
  uint64_t poll_interval_ns = 50'000;  // fallback: 50us, doubling to 5ms
  Reactor::TimerId timer_id = 0;

  static void Fire(const std::shared_ptr<State>& state);
  static void ArmFallbackTimer(const std::shared_ptr<State>& state);
};

// Consumes the watch: fires on_exit exactly once and drops the closure so a
// later Disarm is a no-op.
void ChildWatch::State::Fire(const std::shared_ptr<State>& state) {
  if (state->fired) {
    return;
  }
  state->fired = true;
  std::function<void()> on_exit = std::move(state->on_exit);
  state->on_exit = nullptr;
  if (on_exit) {
    on_exit();
  }
}

namespace {

// Non-reaping liveness probe. True when the child is waitable (or already
// gone — ECHILD means someone else reaped it, which for a watch is "exited").
bool ChildIsWaitable(pid_t pid) {
  siginfo_t si;
  si.si_pid = 0;
  int rc = ::waitid(P_PID, static_cast<id_t>(pid), &si, WEXITED | WNOHANG | WNOWAIT);
  if (rc < 0) {
    return errno == ECHILD;
  }
  return si.si_pid == pid;
}

}  // namespace

void ChildWatch::State::ArmFallbackTimer(const std::shared_ptr<State>& state) {
  Reactor* reactor = state->reactor;
  state->timer_id =
      reactor->AddTimerAt(MonotonicNanos() + state->poll_interval_ns, [state] {
        state->timer_id = 0;
        if (state->fired || !state->on_exit) {
          return;
        }
        if (ChildIsWaitable(state->pid)) {
          Fire(state);
          return;
        }
        state->poll_interval_ns = std::min<uint64_t>(state->poll_interval_ns * 2, 5'000'000);
        ArmFallbackTimer(state);
      });
}

Result<ChildWatch> ChildWatch::Arm(Reactor& reactor, pid_t pid,
                                   std::function<void()> on_exit) {
  if (pid <= 0) {
    return LogicalError("ChildWatch::Arm: invalid pid");
  }
  ChildWatch watch;
  watch.reactor_ = &reactor;
  watch.state_ = std::make_shared<State>();
  watch.state_->reactor = &reactor;
  watch.state_->pid = pid;
  watch.state_->on_exit = std::move(on_exit);

  int pidfd = PidfdOpen(pid);
  if (pidfd >= 0) {
    watch.pidfd_.Reset(pidfd);
    watch.state_->pidfd = pidfd;
    std::shared_ptr<State> state = watch.state_;
    Status added = reactor.AddFd(pidfd, EPOLLIN, [state](uint32_t) {
      if (state->fired) {
        return;
      }
      // Re-validate before firing: an event harvested in this epoll batch can
      // be stale if another callback closed an fd whose number was reused for
      // this pidfd. A real pidfd EPOLLIN implies the child is waitable.
      if (!ChildIsWaitable(state->pid)) {
        return;
      }
      (void)state->reactor->RemoveFd(state->pidfd);
      State::Fire(state);
    });
    if (!added.ok()) {
      return Err(added.error());
    }
    return watch;
  }
  // pidfd_open unavailable (pre-5.3 kernel, seccomp, ESRCH race): poll the
  // pid through reactor timers instead, same escalation as the legacy loop.
  State::ArmFallbackTimer(watch.state_);
  return watch;
}

ChildWatch::ChildWatch(ChildWatch&& other) noexcept
    : reactor_(std::exchange(other.reactor_, nullptr)),
      pidfd_(std::move(other.pidfd_)),
      state_(std::move(other.state_)) {}

ChildWatch& ChildWatch::operator=(ChildWatch&& other) noexcept {
  if (this != &other) {
    Disarm();
    reactor_ = std::exchange(other.reactor_, nullptr);
    pidfd_ = std::move(other.pidfd_);
    state_ = std::move(other.state_);
  }
  return *this;
}

ChildWatch::~ChildWatch() { Disarm(); }

void ChildWatch::Disarm() {
  if (!state_) {
    return;
  }
  if (!state_->fired) {
    state_->fired = true;
    state_->on_exit = nullptr;
    if (pidfd_.valid() && reactor_ != nullptr && reactor_->HasFd(pidfd_.get())) {
      (void)reactor_->RemoveFd(pidfd_.get());
    }
    if (state_->timer_id != 0 && reactor_ != nullptr) {
      reactor_->CancelTimer(state_->timer_id);
    }
  }
  pidfd_.Reset();
  state_.reset();
  reactor_ = nullptr;
}

bool ChildWatch::armed() const { return state_ != nullptr && !state_->fired; }

}  // namespace forklift
