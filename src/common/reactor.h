// forklift/common: Reactor — the event loop child-lifecycle plumbing runs on.
//
// Every layer that used to discover child exits by nanosleep-backoff polling
// (Child::WaitDeadline, Supervisor, the fork server, the worker pool) now
// blocks in one epoll_wait(2) instead: descriptors (sockets, pipes, pidfds)
// and timerfd-backed timers share a single wait, so an exit or a byte of
// output wakes the caller within a scheduler quantum rather than on the next
// poll tick. The reactor is deliberately single-threaded — forklift's
// supervision layers are single-threaded by design — so callbacks run inline
// inside PollOnce and no locking is needed.
//
// ChildWatch is the lifecycle primitive built on top: it arms a one-shot
// "this pid became waitable" callback through pidfd_open(2) (Linux ≥ 5.3).
// Where pidfd_open is unavailable (old kernel, seccomp filter), it degrades
// to reactor-timer polling with the same 50µs→5ms escalation the old code
// used — but driven by timerfd through the same epoll set, so callers are
// written once against one API and never sleep-poll themselves.
#ifndef SRC_COMMON_REACTOR_H_
#define SRC_COMMON_REACTOR_H_

#include <sys/types.h>

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "src/common/result.h"
#include "src/common/unique_fd.h"

namespace forklift {

class Reactor {
 public:
  using TimerId = uint64_t;
  // Receives the ready epoll event mask (EPOLLIN | EPOLLHUP | ...).
  using FdCallback = std::function<void(uint32_t)>;
  using TimerCallback = std::function<void()>;

  static Result<Reactor> Create();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;
  Reactor(Reactor&&) noexcept = default;
  Reactor& operator=(Reactor&&) noexcept = default;
  ~Reactor() = default;

  // Registers `fd` (borrowed, not owned) for `events` (EPOLLIN etc.). The
  // callback may add or remove watches — including removing its own — from
  // inside its invocation.
  Status AddFd(int fd, uint32_t events, FdCallback callback);
  Status ModifyFd(int fd, uint32_t events);
  // Removing an fd that is not registered is an error; removing one whose
  // events are already harvested into the current dispatch batch suppresses
  // the pending callback.
  Status RemoveFd(int fd);
  bool HasFd(int fd) const;

  // One-shot timers against MonotonicNanos(). Callbacks may re-arm.
  TimerId AddTimerAt(uint64_t deadline_ns, TimerCallback callback);
  TimerId AddTimerAfter(double delay_seconds, TimerCallback callback);
  // Cancels a pending timer; a timer already due inside the current dispatch
  // batch still fires.
  void CancelTimer(TimerId id);

  // Waits for readiness and dispatches callbacks. `timeout_ms` < 0 blocks
  // until at least one fd or timer fires; 0 is a non-blocking poll. Returns
  // the number of callbacks dispatched (0 on timeout). Also surfaces any
  // timer-rearm failure deferred from AddTimerAt/CancelTimer (which cannot
  // return a Status themselves): a lost rearm means a timer that will never
  // fire, and reporting it here turns a silent hang into a clean error.
  Result<int> PollOnce(int timeout_ms);

  size_t fd_watch_count() const { return fd_watches_.size(); }
  size_t timer_count() const { return timers_by_deadline_.size(); }

 private:
  struct TimerEntry {
    TimerId id;
    std::shared_ptr<TimerCallback> callback;
  };

  Reactor() = default;

  Status RearmTimerFd();

  UniqueFd epoll_fd_;
  UniqueFd timer_fd_;
  std::map<int, std::shared_ptr<FdCallback>> fd_watches_;
  std::multimap<uint64_t, TimerEntry> timers_by_deadline_;
  std::map<TimerId, uint64_t> timer_deadlines_;  // id -> deadline, for cancel
  TimerId next_timer_id_ = 1;
  // First RearmTimerFd failure from a void API (AddTimerAt/CancelTimer),
  // delivered by the next PollOnce.
  Status pending_error_;
};

// Arms a one-shot notification for "pid is waitable" through a Reactor. Fires
// `on_exit` exactly once, then disarms itself; it never reaps — the owner of
// the pid calls waitpid/TryWait afterwards, preserving whatever wait
// discipline the caller already has.
//
// The watch must not outlive the reactor it is armed on.
class ChildWatch {
 public:
  ChildWatch() = default;
  static Result<ChildWatch> Arm(Reactor& reactor, pid_t pid, std::function<void()> on_exit);

  ChildWatch(const ChildWatch&) = delete;
  ChildWatch& operator=(const ChildWatch&) = delete;
  ChildWatch(ChildWatch&& other) noexcept;
  ChildWatch& operator=(ChildWatch&& other) noexcept;
  ~ChildWatch();

  // Idempotent; called by the destructor and automatically after `on_exit`
  // fires.
  void Disarm();

  bool armed() const;
  // True when this watch rides a pidfd; false on the timer-poll fallback.
  bool using_pidfd() const { return pidfd_.valid(); }

 private:
  struct State;

  Reactor* reactor_ = nullptr;
  UniqueFd pidfd_;
  std::shared_ptr<State> state_;
};

// pidfd_open(2) if the kernel provides it (Linux ≥ 5.3); -1/errno otherwise.
// Exposed so callers can probe capability once instead of per-spawn.
int PidfdOpen(pid_t pid);

// Forces every subsequent ChildWatch::Arm onto the timer-poll fallback, as if
// pidfd_open returned ENOSYS. Test-only; not thread-safe against concurrent
// Arm calls.
void TestOnlyForcePidfdFallback(bool force);

}  // namespace forklift

#endif  // SRC_COMMON_REACTOR_H_
