// forklift/common: Result<T> — the library-wide error channel.
//
// forklift never throws across a public API boundary. Fallible operations return
// Result<T> (a value or an Error) or Status (Result<void>). Error carries an
// errno-domain code plus a human-readable context string describing the operation
// that failed, so callers can both branch on the code and log something useful.
//
// This is a from-scratch std::expected analogue (the toolchain is C++20, expected
// landed in C++23) specialized for the POSIX errno domain that this library lives
// in. Keep it boring: no monadic tower, just the handful of combinators call
// sites actually use (Map, AndThen, ValueOr).
#ifndef SRC_COMMON_RESULT_H_
#define SRC_COMMON_RESULT_H_

#include <cerrno>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "src/common/strerror.h"

namespace forklift {

// An error: an errno-domain code plus context. `code == 0` is reserved for
// "logical" failures that have no errno (protocol violations, bad arguments
// detected in-library); such errors still carry a message.
class Error {
 public:
  Error() = default;
  Error(int code, std::string context) : code_(code), context_(std::move(context)) {}

  // Builds an Error from the current errno. Call immediately after the failing
  // syscall, before anything can clobber errno.
  static Error FromErrno(std::string_view op) {
    int saved = errno;
    return Error(saved, std::string(op));
  }

  // A logical (non-errno) failure.
  static Error Logical(std::string message) { return Error(0, std::move(message)); }

  int code() const { return code_; }
  const std::string& context() const { return context_; }

  bool IsErrno(int e) const { return code_ == e; }

  // "open /etc/passwd: Permission denied (EACCES)"-style rendering.
  std::string ToString() const {
    if (code_ == 0) {
      return context_;
    }
    std::string out = context_;
    out += ": ";
    // strerror_r-backed: the pipelined client's receiver thread renders
    // transport errors concurrently with spawn threads.
    out += SafeStrerror(code_);
    return out;
  }

 private:
  int code_ = 0;
  std::string context_;
};

// Tag wrapper so Result<T> construction from an error is unambiguous even when
// T is itself constructible from Error-ish things.
struct ErrTag {
  Error error;
};

inline ErrTag Err(Error e) { return ErrTag{std::move(e)}; }
inline ErrTag ErrnoError(std::string_view op) { return ErrTag{Error::FromErrno(op)}; }
inline ErrTag LogicalError(std::string message) {
  return ErrTag{Error::Logical(std::move(message))};
}

template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit: `return value;` and `return Err(...)` both read well.
  Result(T value) : state_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(ErrTag err) : state_(std::move(err.error)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return ok(); }

  // Precondition: ok(). Aborts otherwise — an unchecked access is a bug in the
  // caller, not a recoverable condition.
  T& value() & {
    CheckOk();
    return std::get<T>(state_);
  }
  const T& value() const& {
    CheckOk();
    return std::get<T>(state_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(state_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  // Precondition: !ok().
  const Error& error() const {
    CheckErr();
    return std::get<Error>(state_);
  }

  T ValueOr(T fallback) const& { return ok() ? std::get<T>(state_) : std::move(fallback); }
  T ValueOr(T fallback) && {
    return ok() ? std::get<T>(std::move(state_)) : std::move(fallback);
  }

  // Applies `f` to the value if ok, propagating the error otherwise.
  template <typename F>
  auto Map(F&& f) && -> Result<decltype(f(std::declval<T&&>()))> {
    if (!ok()) {
      return Err(std::get<Error>(std::move(state_)));
    }
    return f(std::get<T>(std::move(state_)));
  }

  // Like Map but `f` itself returns a Result.
  template <typename F>
  auto AndThen(F&& f) && -> decltype(f(std::declval<T&&>())) {
    if (!ok()) {
      return Err(std::get<Error>(std::move(state_)));
    }
    return f(std::get<T>(std::move(state_)));
  }

 private:
  void CheckOk() const {
    if (!ok()) {
      __builtin_trap();
    }
  }
  void CheckErr() const {
    if (ok()) {
      __builtin_trap();
    }
  }

  std::variant<T, Error> state_;
};

// Result<void>: success carries nothing.
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(ErrTag err) : error_(std::move(err.error)) {}  // NOLINT

  static Status Ok() { return Status(); }

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Error& error() const {
    if (ok()) {
      __builtin_trap();
    }
    return *error_;
  }

  std::string ToString() const { return ok() ? "OK" : error_->ToString(); }

 private:
  std::optional<Error> error_;
};

// Propagate-on-error helpers. Usage:
//   FORKLIFT_RETURN_IF_ERROR(DoThing());
//   FORKLIFT_ASSIGN_OR_RETURN(auto fd, OpenFile(path));
#define FORKLIFT_RETURN_IF_ERROR(expr)                   \
  do {                                                   \
    auto forklift_status_ = (expr);                      \
    if (!forklift_status_.ok()) {                        \
      return ::forklift::Err(forklift_status_.error());  \
    }                                                    \
  } while (0)

#define FORKLIFT_CONCAT_INNER_(a, b) a##b
#define FORKLIFT_CONCAT_(a, b) FORKLIFT_CONCAT_INNER_(a, b)

#define FORKLIFT_ASSIGN_OR_RETURN(decl, expr)                             \
  auto FORKLIFT_CONCAT_(forklift_res_, __LINE__) = (expr);                \
  if (!FORKLIFT_CONCAT_(forklift_res_, __LINE__).ok()) {                  \
    return ::forklift::Err(FORKLIFT_CONCAT_(forklift_res_, __LINE__).error()); \
  }                                                                       \
  decl = std::move(FORKLIFT_CONCAT_(forklift_res_, __LINE__)).value()

}  // namespace forklift

#endif  // SRC_COMMON_RESULT_H_
