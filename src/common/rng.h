// forklift/common: deterministic pseudo-random numbers.
//
// Simulation and property tests need reproducible randomness that is identical
// across platforms and standard-library versions, which rules out std::mt19937
// seeding quirks and distribution implementations. SplitMix64 seeds
// xoshiro256**, and the integer-range / double helpers are implemented here so
// every run of every experiment is bit-for-bit reproducible from its seed.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>

namespace forklift {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 expansion of the seed into xoshiro state; never all-zero.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  // xoshiro256** next.
  uint64_t Next() {
    uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound == 0 returns 0. Lemire's unbiased method.
  uint64_t Below(uint64_t bound) {
    if (bound == 0) {
      return 0;
    }
    // Rejection sampling on the high bits of a 128-bit product.
    for (;;) {
      uint64_t x = Next();
      __uint128_t m = static_cast<__uint128_t>(x) * bound;
      uint64_t lo = static_cast<uint64_t>(m);
      if (lo >= bound || lo >= static_cast<uint64_t>(-bound) % bound) {
        return static_cast<uint64_t>(m >> 64);
      }
    }
  }

  // Uniform in [lo, hi] inclusive. Precondition: lo <= hi.
  uint64_t Range(uint64_t lo, uint64_t hi) { return lo + Below(hi - lo + 1); }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  bool Chance(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace forklift

#endif  // SRC_COMMON_RNG_H_
