#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace forklift {

double SampleStats::Sum() const {
  double s = 0;
  for (double x : samples_) {
    s += x;
  }
  return s;
}

double SampleStats::Mean() const { return samples_.empty() ? 0.0 : Sum() / Count(); }

double SampleStats::Min() const {
  return samples_.empty() ? 0.0 : *std::min_element(samples_.begin(), samples_.end());
}

double SampleStats::Max() const {
  return samples_.empty() ? 0.0 : *std::max_element(samples_.begin(), samples_.end());
}

double SampleStats::Stddev() const {
  if (samples_.size() < 2) {
    return 0.0;
  }
  double m = Mean();
  double acc = 0;
  for (double x : samples_) {
    acc += (x - m) * (x - m);
  }
  return std::sqrt(acc / (Count() - 1));
}

void SampleStats::EnsureSorted() const {
  if (!sorted_) {
    sorted_samples_ = samples_;
    std::sort(sorted_samples_.begin(), sorted_samples_.end());
    sorted_ = true;
  }
}

double SampleStats::Percentile(double p) const {
  EnsureSorted();
  if (sorted_samples_.empty()) {
    return 0.0;
  }
  if (p <= 0) {
    return sorted_samples_.front();
  }
  if (p >= 100) {
    return sorted_samples_.back();
  }
  double rank = p / 100.0 * (sorted_samples_.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  double frac = rank - lo;
  if (lo + 1 >= sorted_samples_.size()) {
    return sorted_samples_.back();
  }
  return sorted_samples_[lo] * (1 - frac) + sorted_samples_[lo + 1] * frac;
}

std::string SampleStats::Summary() const {
  char buf[256];
  if (samples_.empty()) {
    return "n=0";
  }
  std::snprintf(buf, sizeof(buf), "n=%zu mean=%.3f p50=%.3f p95=%.3f p99=%.3f min=%.3f max=%.3f",
                Count(), Mean(), Percentile(50), Percentile(95), Percentile(99), Min(), Max());
  return buf;
}

}  // namespace forklift
