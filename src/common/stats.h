// forklift/common: sample statistics for the experiment harnesses.
//
// SampleStats stores the raw samples (experiments here are small — thousands of
// points, not millions) so it can report exact percentiles, which matter for
// latency distributions with long COW-fault tails.
#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace forklift {

class SampleStats {
 public:
  void Add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  size_t Count() const { return samples_.size(); }
  bool Empty() const { return samples_.empty(); }

  double Sum() const;
  double Mean() const;
  double Min() const;
  double Max() const;
  // Sample standard deviation (n-1 denominator); 0 for n < 2.
  double Stddev() const;
  // Exact percentile by linear interpolation between order statistics.
  // `p` in [0,100]. Precondition: not Empty().
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

  const std::vector<double>& Samples() const { return samples_; }

  // "n=100 mean=1.23 p50=1.20 p99=2.31 min=1.01 max=2.40"
  std::string Summary() const;

 private:
  void EnsureSorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_samples_;
  mutable bool sorted_ = false;
};

}  // namespace forklift

#endif  // SRC_COMMON_STATS_H_
