// forklift/common: thread-safe errno rendering.
//
// std::strerror may return a pointer into a static buffer; the pipelined
// fork-server client's receiver thread renders transport errors concurrently
// with spawn threads rendering theirs, so every errno-to-text conversion in
// the library goes through SafeStrerror, which is strerror_r-backed and
// writes into a caller-local buffer.
//
// glibc with _GNU_SOURCE gives the GNU strerror_r (returns char*, may ignore
// the buffer); POSIX gives the XSI variant (returns int, fills the buffer).
// Which one we got is a property of the toolchain, not the code — the
// overload pair below dispatches on the return type so both build unchanged.
#ifndef SRC_COMMON_STRERROR_H_
#define SRC_COMMON_STRERROR_H_

#include <string.h>

#include <cstdio>
#include <string>

namespace forklift {

namespace internal {

// XSI strerror_r: int return, 0 on success with the buffer filled.
inline const char* StrerrorResult(int rc, const char* buf) {
  return rc == 0 ? buf : nullptr;
}

// GNU strerror_r: returns the message (which may or may not be the buffer).
inline const char* StrerrorResult(const char* ret, const char* /*buf*/) { return ret; }

}  // namespace internal

inline std::string SafeStrerror(int err) {
  char buf[256];
  buf[0] = '\0';
  const char* msg = internal::StrerrorResult(::strerror_r(err, buf, sizeof(buf)), buf);
  if (msg != nullptr && msg[0] != '\0') {
    return std::string(msg);
  }
  char fallback[32];
  std::snprintf(fallback, sizeof(fallback), "errno %d", err);
  return std::string(fallback);
}

}  // namespace forklift

#endif  // SRC_COMMON_STRERROR_H_
