#include "src/common/string_util.h"

#include <cctype>
#include <cstdio>

namespace forklift {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (;;) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    if (i > start) {
      out.emplace_back(s.substr(start, i - start));
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) {
    ++b;
  }
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) {
    --e;
  }
  return s.substr(b, e - b);
}

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  size_t unit = 0;
  while (v >= 1024.0 && unit + 1 < sizeof(kUnits) / sizeof(kUnits[0])) {
    v /= 1024.0;
    ++unit;
  }
  char buf[64];
  if (v == static_cast<uint64_t>(v)) {
    std::snprintf(buf, sizeof(buf), "%llu%s", static_cast<unsigned long long>(v), kUnits[unit]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f%s", v, kUnits[unit]);
  }
  return buf;
}

std::string HumanNanos(double nanos) {
  char buf[64];
  if (nanos < 1e3) {
    std::snprintf(buf, sizeof(buf), "%.0fns", nanos);
  } else if (nanos < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fus", nanos / 1e3);
  } else if (nanos < 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fms", nanos / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", nanos / 1e9);
  }
  return buf;
}

}  // namespace forklift
