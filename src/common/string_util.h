// forklift/common: small string helpers used across the library.
#ifndef SRC_COMMON_STRING_UTIL_H_
#define SRC_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace forklift {

// Splits on any occurrence of `sep`. Empty fields are preserved
// ("a,,b" → {"a","","b"}); an empty input yields {""}.
std::vector<std::string> Split(std::string_view s, char sep);

// Splits on runs of whitespace; no empty fields; empty/blank input yields {}.
std::vector<std::string> SplitWhitespace(std::string_view s);

std::string Join(const std::vector<std::string>& parts, std::string_view sep);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

// Human-readable byte size: "4.0KiB", "2.5MiB", "3GiB".
std::string HumanBytes(uint64_t bytes);

// Human-readable nanoseconds: "840ns", "1.24us", "3.5ms", "2.1s".
std::string HumanNanos(double nanos);

}  // namespace forklift

#endif  // SRC_COMMON_STRING_UTIL_H_
