#include "src/common/syscall.h"

#include <fcntl.h>
#include <limits.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>

#include <cerrno>
#include <cstring>

#include "src/faultinject/faultinject.h"

namespace forklift {

Status WaitFdReadable(int fd) {
  struct pollfd pfd = {fd, POLLIN, 0};
  for (;;) {
    int r = ::poll(&pfd, 1, -1);
    if (r >= 0) {
      return Status::Ok();
    }
    if (errno != EINTR) {
      return ErrnoError("poll(POLLIN)");
    }
  }
}

Status WaitFdWritable(int fd) {
  struct pollfd pfd = {fd, POLLOUT, 0};
  for (;;) {
    int r = ::poll(&pfd, 1, -1);
    if (r >= 0) {
      return Status::Ok();
    }
    if (errno != EINTR) {
      return ErrnoError("poll(POLLOUT)");
    }
  }
}

Result<UniqueFd> OpenFd(const std::string& path, int flags, mode_t mode) {
  for (;;) {
    int fd;
    auto inj = fault::Check("syscall.open", fault::Op::kOpen);
    if (inj.is_errno()) {
      fd = -1;
      errno = inj.err;
    } else {
      fd = ::open(path.c_str(), flags, mode);
    }
    if (fd >= 0) {
      return UniqueFd(fd);
    }
    if (errno != EINTR) {
      return ErrnoError("open " + path);
    }
  }
}

Result<size_t> ReadFull(int fd, void* buf, size_t len) {
  size_t done = 0;
  auto* p = static_cast<char*>(buf);
  while (done < len) {
    ssize_t n;
    auto inj = fault::Check("syscall.read_full", fault::Op::kRead);
    if (inj.is_errno()) {
      n = -1;
      errno = inj.err;
    } else {
      size_t want = len - done;
      if (inj.is_short() && want > 1) want = 1;
      n = ::read(fd, p + done, want);
    }
    if (n == 0) {
      break;  // EOF
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Non-blocking fd with no data yet. This is not EOF and not an
        // error: wait for readability, keeping the `done` bytes already
        // banked, then resume.
        FORKLIFT_RETURN_IF_ERROR(WaitFdReadable(fd));
        continue;
      }
      return ErrnoError("read");
    }
    done += static_cast<size_t>(n);
  }
  return done;
}

Status WriteFull(int fd, const void* buf, size_t len) {
  size_t done = 0;
  const auto* p = static_cast<const char*>(buf);
  while (done < len) {
    ssize_t n;
    auto inj = fault::Check("syscall.write_full", fault::Op::kWrite);
    if (inj.is_errno()) {
      n = -1;
      errno = inj.err;
    } else {
      size_t want = len - done;
      if (inj.is_short() && want > 1) want = 1;
      n = ::write(fd, p + done, want);
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Non-blocking fd with a full buffer: wait for space and resume the
        // partial write instead of reporting a bogus failure.
        FORKLIFT_RETURN_IF_ERROR(WaitFdWritable(fd));
        continue;
      }
      return ErrnoError("write");
    }
    done += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Result<std::string> ReadAll(int fd, size_t max_bytes) {
  std::string out;
  char buf[16384];
  for (;;) {
    ssize_t n;
    auto inj = fault::Check("syscall.read_all", fault::Op::kRead);
    if (inj.is_errno()) {
      n = -1;
      errno = inj.err;
    } else {
      size_t want = sizeof(buf);
      if (inj.is_short()) want = 1;
      n = ::read(fd, buf, want);
    }
    if (n == 0) {
      return out;
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        FORKLIFT_RETURN_IF_ERROR(WaitFdReadable(fd));
        continue;
      }
      return ErrnoError("read");
    }
    if (out.size() + static_cast<size_t>(n) > max_bytes) {
      // The error must say how much real data is being thrown away — a bare
      // "cap exceeded" silently discards everything read so far.
      return LogicalError("ReadAll: output exceeds max_bytes cap (" +
                          std::to_string(out.size() + static_cast<size_t>(n)) +
                          "+ bytes read, cap " + std::to_string(max_bytes) +
                          "; all read bytes discarded)");
    }
    out.append(buf, static_cast<size_t>(n));
  }
}

Result<uint64_t> WritevFull(int fd, struct iovec* iov, size_t iovcnt) {
  uint64_t syscalls = 0;
  size_t idx = 0;
  // Gathered writes to a socket must go through sendmsg(MSG_NOSIGNAL): a peer
  // that died mid-flush turns plain writev into fatal SIGPIPE, not EPIPE.
  // ENOTSOCK on the first attempt downgrades to writev for pipes and files.
  bool plain_writev = false;
  while (idx < iovcnt) {
    // Skip exhausted (or empty) entries so the active window always starts at
    // a non-empty iovec — a short write must resume at the interrupted byte.
    if (iov[idx].iov_len == 0) {
      ++idx;
      continue;
    }
    size_t window = std::min(iovcnt - idx, static_cast<size_t>(IOV_MAX));
    ssize_t n;
    auto inj = fault::Check("syscall.writev_full", fault::Op::kWrite);
    if (inj.is_errno()) {
      n = -1;
      errno = inj.err;
    } else if (inj.is_short()) {
      // A short kernel write delivers a prefix; emulate the worst case — one
      // byte of the first pending iovec — and let the resume logic take over.
      n = plain_writev ? ::write(fd, iov[idx].iov_base, 1)
                       : ::send(fd, iov[idx].iov_base, 1, MSG_NOSIGNAL);
      if (n < 0 && errno == ENOTSOCK) {
        plain_writev = true;
        n = ::write(fd, iov[idx].iov_base, 1);
      }
      if (n > 0) ++syscalls;
    } else {
      if (!plain_writev) {
        struct msghdr msg;
        std::memset(&msg, 0, sizeof(msg));
        msg.msg_iov = iov + idx;
        msg.msg_iovlen = window;
        n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
        if (n < 0 && errno == ENOTSOCK) {
          plain_writev = true;
        }
      }
      if (plain_writev) {
        n = ::writev(fd, iov + idx, static_cast<int>(window));
      }
      if (n > 0) ++syscalls;
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        FORKLIFT_RETURN_IF_ERROR(WaitFdWritable(fd));
        continue;
      }
      return ErrnoError("writev");
    }
    size_t done = static_cast<size_t>(n);
    while (done > 0 && idx < iovcnt) {
      if (done >= iov[idx].iov_len) {
        done -= iov[idx].iov_len;
        iov[idx].iov_len = 0;
        ++idx;
      } else {
        iov[idx].iov_base = static_cast<char*>(iov[idx].iov_base) + done;
        iov[idx].iov_len -= done;
        done = 0;
      }
    }
  }
  return syscalls;
}

Result<int> WaitPid(pid_t pid, int options) {
  for (;;) {
    int status = 0;
    pid_t r;
    auto inj = fault::Check("syscall.waitpid", fault::Op::kWait);
    if (inj.is_errno()) {
      r = -1;
      errno = inj.err;
    } else {
      r = ::waitpid(pid, &status, options);
    }
    if (r >= 0) {
      // r == 0 only with WNOHANG and no state change; report status 0 — callers
      // using WNOHANG should use Child::TryWait which interprets this.
      return status;
    }
    if (errno != EINTR) {
      return ErrnoError("waitpid");
    }
  }
}

std::string ExitStatus::ToString() const {
  if (exited) {
    return "exit(" + std::to_string(exit_code) + ")";
  }
  if (signaled) {
    return "signal(" + std::to_string(term_signal) + ")";
  }
  return "unknown";
}

ExitStatus DecodeWaitStatus(int raw_status) {
  ExitStatus s;
  if (WIFEXITED(raw_status)) {
    s.exited = true;
    s.exit_code = WEXITSTATUS(raw_status);
  } else if (WIFSIGNALED(raw_status)) {
    s.signaled = true;
    s.term_signal = WTERMSIG(raw_status);
  }
  return s;
}

Result<ExitStatus> WaitForExit(pid_t pid) {
  FORKLIFT_ASSIGN_OR_RETURN(int raw, WaitPid(pid));
  return DecodeWaitStatus(raw);
}

Status SetCloexec(int fd, bool enabled) {
  auto inj = fault::Check("syscall.set_cloexec", fault::Op::kFcntl);
  if (inj.is_errno()) {
    errno = inj.err;
    return ErrnoError("fcntl(F_GETFD)");
  }
  int flags = ::fcntl(fd, F_GETFD);
  if (flags < 0) {
    return ErrnoError("fcntl(F_GETFD)");
  }
  int want = enabled ? (flags | FD_CLOEXEC) : (flags & ~FD_CLOEXEC);
  if (want != flags && ::fcntl(fd, F_SETFD, want) < 0) {
    return ErrnoError("fcntl(F_SETFD)");
  }
  return Status::Ok();
}

Result<bool> GetCloexec(int fd) {
  int flags = ::fcntl(fd, F_GETFD);
  if (flags < 0) {
    return ErrnoError("fcntl(F_GETFD)");
  }
  return (flags & FD_CLOEXEC) != 0;
}

Status SetNonBlocking(int fd, bool enabled) {
  auto inj = fault::Check("syscall.set_nonblocking", fault::Op::kFcntl);
  if (inj.is_errno()) {
    errno = inj.err;
    return ErrnoError("fcntl(F_GETFL)");
  }
  int flags = ::fcntl(fd, F_GETFL);
  if (flags < 0) {
    return ErrnoError("fcntl(F_GETFL)");
  }
  int want = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (want != flags && ::fcntl(fd, F_SETFL, want) < 0) {
    return ErrnoError("fcntl(F_SETFL)");
  }
  return Status::Ok();
}

Status Dup2(int oldfd, int newfd) {
  for (;;) {
    int r;
    auto inj = fault::Check("syscall.dup2", fault::Op::kDup);
    if (inj.is_errno()) {
      r = -1;
      errno = inj.err;
    } else {
      r = ::dup2(oldfd, newfd);
    }
    if (r >= 0) {
      return Status::Ok();
    }
    if (errno != EINTR && errno != EBUSY) {
      return ErrnoError("dup2");
    }
  }
}

}  // namespace forklift
