// forklift/common: thin, EINTR-aware wrappers around the syscalls the library
// uses. Each wrapper returns Result/Status with the failing operation named in
// the error context, so call sites never hand-roll errno plumbing.
#ifndef SRC_COMMON_SYSCALL_H_
#define SRC_COMMON_SYSCALL_H_

#include <sys/types.h>
#include <sys/uio.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/result.h"
#include "src/common/unique_fd.h"

namespace forklift {

// open(2) with EINTR retry. `flags`/`mode` as in open(2).
Result<UniqueFd> OpenFd(const std::string& path, int flags, mode_t mode = 0);

// Reads exactly `len` bytes unless EOF intervenes; returns the number of bytes
// actually read (< len only at EOF). Retries EINTR.
Result<size_t> ReadFull(int fd, void* buf, size_t len);

// Writes all `len` bytes. Retries EINTR and short writes.
Status WriteFull(int fd, const void* buf, size_t len);

// Reads until EOF into a string (for draining pipes). `max_bytes` caps runaway
// children; exceeding it is an error, not a truncation.
Result<std::string> ReadAll(int fd, size_t max_bytes = 64u << 20);

// Writes every byte described by `iov[0..iovcnt)` as one gathered stream,
// retrying EINTR, absorbing EAGAIN (wait-for-writable, then resume), and
// resuming short writes at the correct offset *within* the interrupted iovec.
// Chunks at IOV_MAX for oversized arrays. Sockets are written with
// sendmsg(MSG_NOSIGNAL) so a dead peer yields EPIPE instead of fatal SIGPIPE;
// ENOTSOCK downgrades to writev(2) for pipes and files. Mutates the caller's
// iovec array in place to track progress (callers rebuild it per flush
// anyway). Returns the number of write syscalls that moved bytes, so
// transports can account syscalls/frame.
Result<uint64_t> WritevFull(int fd, struct iovec* iov, size_t iovcnt);

// waitpid(2) with EINTR retry. Returns the raw wait status.
Result<int> WaitPid(pid_t pid, int options = 0);

// Decoded wait status for ergonomic matching.
struct ExitStatus {
  bool exited = false;    // WIFEXITED
  int exit_code = 0;      // WEXITSTATUS if exited
  bool signaled = false;  // WIFSIGNALED
  int term_signal = 0;    // WTERMSIG if signaled

  bool Success() const { return exited && exit_code == 0; }
  std::string ToString() const;
};

ExitStatus DecodeWaitStatus(int raw_status);

// Blocks until `pid` changes state, returns decoded status.
Result<ExitStatus> WaitForExit(pid_t pid);

// Sets/clears FD_CLOEXEC on `fd`.
Status SetCloexec(int fd, bool enabled);
Result<bool> GetCloexec(int fd);

// Sets O_NONBLOCK on `fd`.
Status SetNonBlocking(int fd, bool enabled);

// dup2 with EINTR retry (dup2 can return EINTR on some kernels).
Status Dup2(int oldfd, int newfd);

// Blocks (EINTR-retrying poll) until `fd` is readable/writable or in an
// error/hangup state. ReadFull/WriteFull/ReadAll use these to absorb EAGAIN
// from non-blocking descriptors — the reactor sets O_NONBLOCK on pipe ends it
// hands out, and an EAGAIN mid-transfer must mean "wait", never "fail" (and
// certainly never "EOF").
Status WaitFdReadable(int fd);
Status WaitFdWritable(int fd);

}  // namespace forklift

#endif  // SRC_COMMON_SYSCALL_H_
