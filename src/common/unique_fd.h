// forklift/common: UniqueFd — RAII ownership of a POSIX file descriptor.
//
// Every fd owned by forklift code lives in a UniqueFd; a raw int fd in an API
// signature always means "borrowed, not owned". The destructor close()s; EINTR
// on close is deliberately not retried (POSIX leaves the fd state unspecified
// after EINTR, and retrying risks closing a recycled descriptor).
#ifndef SRC_COMMON_UNIQUE_FD_H_
#define SRC_COMMON_UNIQUE_FD_H_

#include <unistd.h>

#include <utility>

namespace forklift {

class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.Release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      Reset(other.Release());
    }
    return *this;
  }

  // Borrows the descriptor. Returns -1 when empty.
  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  explicit operator bool() const { return valid(); }

  // Transfers ownership to the caller.
  [[nodiscard]] int Release() { return std::exchange(fd_, -1); }

  // Closes the current descriptor (if any) and adopts `fd`.
  void Reset(int fd = -1) {
    if (fd_ >= 0 && fd_ != fd) {
      ::close(fd_);
    }
    fd_ = fd;
  }

 private:
  int fd_ = -1;
};

}  // namespace forklift

#endif  // SRC_COMMON_UNIQUE_FD_H_
