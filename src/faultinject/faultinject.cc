#include "src/faultinject/faultinject.h"

#include <errno.h>
#include <pthread.h>
#include <sched.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <sys/mman.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <unordered_map>

namespace forklift {
namespace fault {
namespace {

// ---------------------------------------------------------------------------
// Shared registry. One anonymous MAP_SHARED region holds every site's
// counters, so a child forked after the mapping exists (the fork-server
// zygote, a mid-spawn helper) updates the same counters the driver reads.
// std::atomic on shared memory is valid here because these sizes are
// lock-free and address-free on every platform we target (x86-64, aarch64).
// ---------------------------------------------------------------------------

constexpr size_t kMaxSites = 128;
constexpr size_t kMaxSiteName = 56;  // includes NUL

constexpr uint32_t kSlotFree = 0;
constexpr uint32_t kSlotBusy = 1;   // claimed, name not yet published
constexpr uint32_t kSlotReady = 2;

struct Slot {
  std::atomic<uint32_t> state;
  uint32_t op;
  char name[kMaxSiteName];
  std::atomic<uint64_t> hits;
  std::atomic<uint64_t> injected;
};

struct Registry {
  std::atomic<uint64_t> injections_fired;
  Slot slots[kMaxSites];
};

static_assert(std::atomic<uint64_t>::is_always_lock_free,
              "shared-memory counters require lock-free 64-bit atomics");
static_assert(std::atomic<uint32_t>::is_always_lock_free,
              "shared-memory slot states require lock-free 32-bit atomics");

// Process enable state: 0 = env not consulted yet, 1 = disabled, 2 = enabled.
// The disabled fast path in Check() is a single relaxed load of this.
constexpr int kStateUnresolved = 0;
constexpr int kStateDisabled = 1;
constexpr int kStateEnabled = 2;

std::atomic<int> g_state{kStateUnresolved};
Registry* g_registry = nullptr;

// The active plan. Written only by InstallPlan/ClearPlan, which the contract
// requires to run before the activity under test — Check() reads it without
// locking. `site` lives in a fixed buffer so a forked child never touches
// heap metadata the parent may have been mutating.
struct ActivePlan {
  uint64_t seed;
  char site[kMaxSiteName];
  Mode mode;
  uint64_t every;
  uint64_t nth;
  uint64_t limit;
  bool trace;
};
ActivePlan g_plan;

// Serializes registry creation, slot lookup caching, and env resolution.
// Forked children (zygote shards, spawn helpers) call Check() too, and in a
// multi-threaded parent — the pipelined fork-server client runs a receiver
// thread that hits Check() on every recvmsg — fork(2) can land while another
// thread holds this lock, leaving the child a mutex nobody will ever unlock.
// The atfork hooks below take the lock around every fork so the child always
// inherits it unlocked (glibc runs them for fork, not vfork; vfork children
// never reach Check() before exec).
std::mutex g_mu;
std::unordered_map<std::string, Slot*>* g_slot_cache = nullptr;

void LockBeforeFork() { g_mu.lock(); }
void UnlockAfterFork() { g_mu.unlock(); }
struct AtforkGuard {
  AtforkGuard() { ::pthread_atfork(&LockBeforeFork, &UnlockAfterFork, &UnlockAfterFork); }
};
AtforkGuard g_atfork_guard;

Registry* EnsureRegistryLocked() {
  if (g_registry != nullptr) return g_registry;
  void* mem = ::mmap(nullptr, sizeof(Registry), PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) {
    // Fall back to private memory: injection still works within this
    // process; only cross-process counter visibility is lost.
    mem = ::calloc(1, sizeof(Registry));
    if (mem == nullptr) return nullptr;
  }
  g_registry = new (mem) Registry();
  return g_registry;
}

uint64_t Fnv1a(const char* s) {
  uint64_t h = 1469598103934665603ull;
  for (; *s != '\0'; ++s) {
    h ^= static_cast<unsigned char>(*s);
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

Slot* FindOrClaimSlot(const char* site, Op op) {
  Registry* reg;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    reg = EnsureRegistryLocked();
    if (reg == nullptr) return nullptr;
    if (g_slot_cache == nullptr) {
      g_slot_cache = new std::unordered_map<std::string, Slot*>();
    }
    auto it = g_slot_cache->find(site);
    if (it != g_slot_cache->end()) return it->second;
  }
  for (size_t i = 0; i < kMaxSites; ++i) {
    Slot& slot = reg->slots[i];
    uint32_t state = slot.state.load(std::memory_order_acquire);
    if (state == kSlotFree) {
      uint32_t expected = kSlotFree;
      if (slot.state.compare_exchange_strong(expected, kSlotBusy,
                                             std::memory_order_acq_rel)) {
        ::strncpy(slot.name, site, kMaxSiteName - 1);
        slot.name[kMaxSiteName - 1] = '\0';
        slot.op = static_cast<uint32_t>(op);
        slot.hits.store(0, std::memory_order_relaxed);
        slot.injected.store(0, std::memory_order_relaxed);
        slot.state.store(kSlotReady, std::memory_order_release);
        state = kSlotReady;
      } else {
        state = expected;
      }
    }
    // Another process may have the slot mid-claim; wait for the name.
    while (state == kSlotBusy) {
      ::sched_yield();
      state = slot.state.load(std::memory_order_acquire);
    }
    if (state == kSlotReady && ::strncmp(slot.name, site, kMaxSiteName) == 0) {
      std::lock_guard<std::mutex> lock(g_mu);
      (*g_slot_cache)[site] = &slot;
      return &slot;
    }
  }
  return nullptr;  // registry full: count nothing, inject nothing
}

bool ParseU64(std::string_view text, uint64_t* out) {
  if (text.empty() || text.size() > 19) return false;
  uint64_t v = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

void ResetCountersLocked() {
  if (g_registry == nullptr) return;
  g_registry->injections_fired.store(0, std::memory_order_relaxed);
  for (size_t i = 0; i < kMaxSites; ++i) {
    Slot& slot = g_registry->slots[i];
    if (slot.state.load(std::memory_order_acquire) != kSlotReady) continue;
    slot.hits.store(0, std::memory_order_relaxed);
    slot.injected.store(0, std::memory_order_relaxed);
  }
}

}  // namespace

bool SiteGlobMatch(std::string_view pattern, std::string_view site) {
  // Iterative '*' glob (no '?', no classes). Classic backtracking-pointer
  // formulation: linear in practice for the short names used here.
  size_t p = 0, s = 0;
  size_t star = std::string_view::npos, star_s = 0;
  while (s < site.size()) {
    if (p < pattern.size() && (pattern[p] == site[s])) {
      ++p;
      ++s;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_s = s;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      s = ++star_s;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kNone: return "none";
    case Mode::kEintr: return "eintr";
    case Mode::kEagain: return "eagain";
    case Mode::kEnomem: return "enomem";
    case Mode::kEmfile: return "emfile";
    case Mode::kEio: return "eio";
    case Mode::kShort: return "short";
  }
  return "?";
}

bool ModeFromName(std::string_view name, Mode* out) {
  static constexpr Mode kAll[] = {Mode::kNone,   Mode::kEintr, Mode::kEagain,
                                  Mode::kEnomem, Mode::kEmfile, Mode::kEio,
                                  Mode::kShort};
  for (Mode m : kAll) {
    if (name == ModeName(m)) {
      *out = m;
      return true;
    }
  }
  return false;
}

const char* OpName(Op op) {
  switch (op) {
    case Op::kRead: return "read";
    case Op::kWrite: return "write";
    case Op::kOpen: return "open";
    case Op::kWait: return "wait";
    case Op::kDup: return "dup";
    case Op::kDupFd: return "dupfd";
    case Op::kFcntl: return "fcntl";
    case Op::kEpollWait: return "epoll_wait";
    case Op::kEpollCtl: return "epoll_ctl";
    case Op::kPidfdOpen: return "pidfd_open";
    case Op::kCreateFd: return "create_fd";
    case Op::kSendmsg: return "sendmsg";
    case Op::kRecvmsg: return "recvmsg";
  }
  return "?";
}

int ErrnoForMode(Mode mode) {
  switch (mode) {
    case Mode::kEintr: return EINTR;
    case Mode::kEagain: return EAGAIN;
    case Mode::kEnomem: return ENOMEM;
    case Mode::kEmfile: return EMFILE;
    case Mode::kEio: return EIO;
    case Mode::kNone:
    case Mode::kShort: return 0;
  }
  return 0;
}

bool ModeApplies(Mode mode, Op op) {
  // The table of faults the real kernel can produce at each op AND that the
  // wrapper contract covers. Keeping this strict is what makes the sweep's
  // invariants meaningful: eintr/eagain/short runs MUST succeed, so they may
  // only be injected where a retry loop is specified to exist.
  switch (op) {
    case Op::kRead:
    case Op::kWrite:
      return mode == Mode::kEintr || mode == Mode::kEagain ||
             mode == Mode::kEio || mode == Mode::kShort;
    case Op::kOpen:
      return mode == Mode::kEintr || mode == Mode::kEmfile ||
             mode == Mode::kEnomem;
    case Op::kWait:
      return mode == Mode::kEintr;
    case Op::kDup:
      return mode == Mode::kEintr || mode == Mode::kEmfile;
    case Op::kDupFd:
      return mode == Mode::kEmfile;
    case Op::kFcntl:
      return mode == Mode::kEnomem;
    case Op::kEpollWait:
      return mode == Mode::kEintr || mode == Mode::kEnomem;
    case Op::kEpollCtl:
      return mode == Mode::kEnomem;
    case Op::kPidfdOpen:
      return mode == Mode::kEmfile || mode == Mode::kEnomem;
    case Op::kCreateFd:
      return mode == Mode::kEmfile || mode == Mode::kEnomem;
    case Op::kSendmsg:
      return mode == Mode::kEintr || mode == Mode::kEagain ||
             mode == Mode::kEnomem || mode == Mode::kShort;
    case Op::kRecvmsg:
      return mode == Mode::kEintr || mode == Mode::kEagain ||
             mode == Mode::kEmfile || mode == Mode::kShort;
  }
  return false;
}

std::vector<Mode> ApplicableModes(Op op) {
  static constexpr Mode kAll[] = {Mode::kEintr, Mode::kEagain, Mode::kEnomem,
                                  Mode::kEmfile, Mode::kEio, Mode::kShort};
  std::vector<Mode> out;
  for (Mode m : kAll) {
    if (ModeApplies(m, op)) out.push_back(m);
  }
  return out;
}

bool ModeIsRecoverable(Mode mode) {
  return mode == Mode::kEintr || mode == Mode::kEagain || mode == Mode::kShort;
}

bool ParsePlanSpec(std::string_view text, PlanSpec* out, std::string* error) {
  PlanSpec spec;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string_view::npos) comma = text.size();
    std::string_view tok = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (tok.empty()) {
      if (comma == text.size()) break;
      continue;
    }
    size_t eq = tok.find('=');
    if (eq == std::string_view::npos) {
      if (error != nullptr) {
        *error = "expected key=value, got '" + std::string(tok) + "'";
      }
      return false;
    }
    std::string_view key = tok.substr(0, eq);
    std::string_view val = tok.substr(eq + 1);
    if (key == "seed") {
      if (!ParseU64(val, &spec.seed)) {
        if (error != nullptr) *error = "bad seed '" + std::string(val) + "'";
        return false;
      }
    } else if (key == "site") {
      if (val.empty() || val.size() >= kMaxSiteName) {
        if (error != nullptr) *error = "bad site glob '" + std::string(val) + "'";
        return false;
      }
      spec.site = std::string(val);
    } else if (key == "mode") {
      if (!ModeFromName(val, &spec.mode)) {
        if (error != nullptr) *error = "unknown mode '" + std::string(val) + "'";
        return false;
      }
    } else if (key == "every") {
      if (!ParseU64(val, &spec.every)) {
        if (error != nullptr) *error = "bad every '" + std::string(val) + "'";
        return false;
      }
    } else if (key == "nth") {
      if (!ParseU64(val, &spec.nth)) {
        if (error != nullptr) *error = "bad nth '" + std::string(val) + "'";
        return false;
      }
    } else if (key == "limit") {
      if (!ParseU64(val, &spec.limit)) {
        if (error != nullptr) *error = "bad limit '" + std::string(val) + "'";
        return false;
      }
    } else if (key == "trace") {
      if (val == "1" || val == "true") {
        spec.trace = true;
      } else if (val == "0" || val == "false") {
        spec.trace = false;
      } else {
        if (error != nullptr) *error = "bad trace '" + std::string(val) + "'";
        return false;
      }
    } else {
      if (error != nullptr) *error = "unknown key '" + std::string(key) + "'";
      return false;
    }
    if (comma == text.size()) break;
  }
  if (spec.nth != 0 && spec.every != 0) {
    if (error != nullptr) *error = "nth and every are mutually exclusive";
    return false;
  }
  // A mode with no schedule means "the first matching hit".
  if (spec.mode != Mode::kNone && spec.nth == 0 && spec.every == 0) {
    spec.nth = 1;
  }
  *out = spec;
  return true;
}

void InstallPlan(const PlanSpec& spec) {
  std::lock_guard<std::mutex> lock(g_mu);
  if (EnsureRegistryLocked() == nullptr) return;
  g_plan.seed = spec.seed;
  ::strncpy(g_plan.site, spec.site.c_str(), kMaxSiteName - 1);
  g_plan.site[kMaxSiteName - 1] = '\0';
  g_plan.mode = spec.mode;
  g_plan.every = spec.every;
  g_plan.nth = spec.nth;
  g_plan.limit = spec.limit;
  g_plan.trace = spec.trace;
  if (g_plan.mode != Mode::kNone && g_plan.nth == 0 && g_plan.every == 0) {
    g_plan.nth = 1;
  }
  ResetCountersLocked();
  g_state.store(kStateEnabled, std::memory_order_release);
}

void ClearPlan() {
  std::lock_guard<std::mutex> lock(g_mu);
  g_state.store(kStateDisabled, std::memory_order_release);
}

bool Enabled() {
  return g_state.load(std::memory_order_acquire) == kStateEnabled;
}

void InstallPlanFromEnv() {
  const char* env = ::getenv("FORKLIFT_FAULTS");
  if (env == nullptr || env[0] == '\0') {
    g_state.store(kStateDisabled, std::memory_order_release);
    return;
  }
  PlanSpec spec;
  std::string error;
  if (!ParsePlanSpec(env, &spec, &error)) {
    ::fprintf(stderr, "forklift: ignoring malformed FORKLIFT_FAULTS=%s (%s)\n",
              env, error.c_str());
    g_state.store(kStateDisabled, std::memory_order_release);
    return;
  }
  InstallPlan(spec);
}

Injection Check(const char* site, Op op) {
  int state = g_state.load(std::memory_order_relaxed);
  if (state == kStateDisabled) return Injection{};
  if (state == kStateUnresolved) {
    {
      std::lock_guard<std::mutex> lock(g_mu);
      state = g_state.load(std::memory_order_relaxed);
    }
    if (state == kStateUnresolved) InstallPlanFromEnv();
    state = g_state.load(std::memory_order_acquire);
    if (state != kStateEnabled) return Injection{};
  }

  Slot* slot = FindOrClaimSlot(site, op);
  if (slot == nullptr) return Injection{};
  uint64_t index = slot->hits.fetch_add(1, std::memory_order_relaxed) + 1;

  if (g_plan.trace || g_plan.mode == Mode::kNone) return Injection{};
  if (!ModeApplies(g_plan.mode, op)) return Injection{};
  if (!SiteGlobMatch(g_plan.site, site)) return Injection{};

  bool scheduled = false;
  if (g_plan.nth != 0) {
    scheduled = (index == g_plan.nth);
  } else if (g_plan.every != 0) {
    // A seeded residue class: which of every N hits fires depends only on
    // (seed, site), so the schedule replays exactly under the same seed.
    uint64_t phase = SplitMix64(g_plan.seed ^ Fnv1a(site)) % g_plan.every;
    scheduled = (index % g_plan.every == phase);
  }
  if (!scheduled) return Injection{};

  if (g_plan.limit != 0) {
    // Claim one of the `limit` injection tickets without overshooting.
    uint64_t cur = g_registry->injections_fired.load(std::memory_order_relaxed);
    for (;;) {
      if (cur >= g_plan.limit) return Injection{};
      if (g_registry->injections_fired.compare_exchange_weak(
              cur, cur + 1, std::memory_order_acq_rel)) {
        break;
      }
    }
  } else {
    g_registry->injections_fired.fetch_add(1, std::memory_order_acq_rel);
  }
  slot->injected.fetch_add(1, std::memory_order_relaxed);

  Injection inj;
  inj.mode = g_plan.mode;
  inj.err = ErrnoForMode(g_plan.mode);
  return inj;
}

std::vector<SiteReport> Snapshot() {
  std::vector<SiteReport> out;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    if (g_registry == nullptr) return out;
  }
  for (size_t i = 0; i < kMaxSites; ++i) {
    Slot& slot = g_registry->slots[i];
    if (slot.state.load(std::memory_order_acquire) != kSlotReady) continue;
    SiteReport r;
    r.site.assign(slot.name);
    r.op = static_cast<Op>(slot.op);
    r.hits = slot.hits.load(std::memory_order_relaxed);
    r.injected = slot.injected.load(std::memory_order_relaxed);
    out.push_back(std::move(r));
  }
  std::sort(out.begin(), out.end(),
            [](const SiteReport& a, const SiteReport& b) { return a.site < b.site; });
  return out;
}

uint64_t InjectionsFired() {
  std::lock_guard<std::mutex> lock(g_mu);
  if (g_registry == nullptr) return 0;
  return g_registry->injections_fired.load(std::memory_order_acquire);
}

}  // namespace fault
}  // namespace forklift
