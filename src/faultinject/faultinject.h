// forklift/faultinject: deterministic, seeded syscall fault injection.
//
// The paper's failure modes (§4–§5) live in the rarely-taken branches: EINTR
// mid-handshake, EMFILE while relocating a transferred descriptor, a short
// write splitting a wire frame. This layer sits behind the forklift:: syscall
// wrappers and lets a test (or FORKLIFT_FAULTS in the environment) force those
// branches deterministically: every wrapper consults Check(site, op) before
// the real syscall and either proceeds, fails with an injected errno, or is
// clamped to a 1-byte "short" transfer.
//
// Determinism: the plan is pure state + a counter. The nth/every/limit
// schedule depends only on the seed and the sequence of site hits, never on
// wall-clock or randomness drawn at injection time.
//
// Cross-process: hit and injection counters live in a MAP_SHARED anonymous
// region, so a fork-server zygote (forked after InstallPlan) shares one
// counter space with the test driver. A sweep therefore sees — and can
// target — sites that only execute inside the server process. Slot claiming
// is lock-free (CAS per slot); counting is a single fetch_add.
//
// The disabled fast path is one relaxed atomic load; production builds keep
// the hooks compiled in and pay nothing measurable.
#ifndef SRC_FAULTINJECT_FAULTINJECT_H_
#define SRC_FAULTINJECT_FAULTINJECT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace forklift {
namespace fault {

// What kind of operation a site performs. Injection modes are gated on this:
// injecting EAGAIN into epoll_wait or EINTR into fcntl would manufacture
// failures the real kernel cannot produce, and the sweep's "EINTR must be
// survived" invariant depends on only injecting faults the wrapper contract
// covers.
enum class Op : uint32_t {
  kRead = 0,      // read(2)-like byte transfer into the caller
  kWrite,         // write(2)-like byte transfer out of the caller
  kOpen,          // open(2)
  kWait,          // waitpid(2)/waitid(2)
  kDup,           // dup2(2) (EINTR-retried by the wrapper)
  kDupFd,         // fcntl(F_DUPFD*) (not EINTR-retried)
  kFcntl,         // other fcntl/timerfd control operations
  kEpollWait,     // epoll_wait(2)
  kEpollCtl,      // epoll_ctl(2)
  kPidfdOpen,     // pidfd_open(2)
  kCreateFd,      // pipe2/socketpair/epoll_create1/timerfd_create
  kSendmsg,       // sendmsg(2)
  kRecvmsg,       // recvmsg(2)
};

enum class Mode : uint32_t {
  kNone = 0,
  kEintr,   // EINTR: every wrapper with a retry loop must survive this
  kEagain,  // EAGAIN: byte-transfer wrappers must wait-and-retry, not fail
  kEnomem,  // ENOMEM: must surface as a clean Status, no leak, no hang
  kEmfile,  // EMFILE: ditto (descriptor exhaustion)
  kEio,     // EIO: hard I/O error on a byte transfer
  kShort,   // transfer clamped to 1 byte: loops must resume, framing must hold
};

// The decision returned to a fault point.
struct Injection {
  Mode mode = Mode::kNone;
  int err = 0;  // errno to fail with; 0 for kNone / kShort

  bool active() const { return mode != Mode::kNone; }
  bool is_errno() const { return err != 0; }
  bool is_short() const { return mode == Mode::kShort; }
};

// A parsed FORKLIFT_FAULTS specification, e.g.
//   FORKLIFT_FAULTS=seed=42,site=fdtransfer.*,mode=eintr,every=3
//   FORKLIFT_FAULTS=site=syscall.read_full,mode=short,nth=2
//   FORKLIFT_FAULTS=trace=1
struct PlanSpec {
  uint64_t seed = 1;
  std::string site = "*";    // glob over site names ('*' matches any run)
  Mode mode = Mode::kNone;
  uint64_t every = 0;        // inject on a seeded residue class of hits
  uint64_t nth = 0;          // inject exactly on the nth matching hit
  uint64_t limit = 1;        // max injections across all processes; 0 = unlimited
  bool trace = false;        // record site hits, inject nothing
};

// Parses "key=value,key=value". Returns false and fills `error` on a bad key,
// value, or mode name. On success `out` holds the spec with defaults applied
// (a mode with neither nth nor every set becomes nth=1).
bool ParsePlanSpec(std::string_view text, PlanSpec* out, std::string* error);

// Installs `spec` and resets all counters. Not safe against concurrent
// Check() calls — install before the activity under test starts (the sweep
// driver installs between runs; forked children inherit the active plan).
void InstallPlan(const PlanSpec& spec);

// Disables injection. The registry survives so Snapshot() still reports the
// finished run.
void ClearPlan();

// True when a plan (including a trace-only plan) is active in this process.
bool Enabled();

// The hook the syscall wrappers call. Returns the injection decision for this
// hit of `site` (a stable dotted name, e.g. "syscall.read_full"). Counts the
// hit in the shared registry even when nothing is injected.
Injection Check(const char* site, Op op);

// Reads FORKLIFT_FAULTS and installs it if present and well-formed; malformed
// specs are reported on stderr and ignored (a typo must not silently disable
// a fault campaign AND the main workload). Called lazily by the first Check()
// in a process; explicit calls are idempotent per install.
void InstallPlanFromEnv();

// Everything known about one site.
struct SiteReport {
  std::string site;
  Op op = Op::kRead;
  uint64_t hits = 0;
  uint64_t injected = 0;
};

// Snapshot of the shared registry (sorted by site name). Includes hits from
// every process sharing the mapping (e.g. a fork-server zygote).
std::vector<SiteReport> Snapshot();

// Total injections fired across all processes since InstallPlan.
uint64_t InjectionsFired();

// Mode/op vocabulary used by the sweep driver and the spec parser.
const char* ModeName(Mode mode);
bool ModeFromName(std::string_view name, Mode* out);
const char* OpName(Op op);
int ErrnoForMode(Mode mode);
bool ModeApplies(Mode mode, Op op);
std::vector<Mode> ApplicableModes(Op op);

// True for modes the wrappers promise to absorb (retry until success): a run
// that only injected these must still succeed end to end.
bool ModeIsRecoverable(Mode mode);

// Simple '*'-glob match, exposed for tests.
bool SiteGlobMatch(std::string_view pattern, std::string_view site);

}  // namespace fault
}  // namespace forklift

#endif  // SRC_FAULTINJECT_FAULTINJECT_H_
