#include "src/forkserver/client.h"

#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/common/clock.h"
#include "src/common/pipe.h"
#include "src/faultinject/faultinject.h"
#include "src/forkserver/fd_transfer.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"

namespace forklift {

namespace {

// Maps a server-side {ok, err, context} reply triple onto the local error
// channel.
Status ReplyToStatus(bool ok, int32_t err, const std::string& context, const char* what) {
  if (ok) {
    return Status::Ok();
  }
  if (err != 0) {
    return Err(Error(err, std::string(what) + ": " + context));
  }
  return LogicalError(std::string(what) + ": " + context);
}

// The legacy client's scratch-encode path: clear the reusable writer, encode
// the frame, hand back views; mu_ (held across the round trip) serializes the
// scratch. The pipelined client instead encodes *framed* bytes — length
// prefix inline — into recycled buffers for the submission queue.
Status EncodeSpawnFrameInto(WireWriter& w, std::vector<int>* fds, const SpawnRequest& req,
                            const FrameMeta& meta) {
  w.Clear();
  fds->clear();
  return EncodeSpawnRequestInto(w, req, fds, meta);
}

void EncodeWaitFrameInto(WireWriter& w, pid_t pid, const FrameMeta& meta) {
  w.Clear();
  w.Reserve(20 + 4);
  EncodeHeaderInto(w, MsgType::kWait, meta);
  w.PutI32(static_cast<int32_t>(pid));
}

void EncodeControlFrameInto(WireWriter& w, MsgType type, const FrameMeta& meta) {
  w.Clear();
  EncodeHeaderInto(w, type, meta);
}

// Submission-queue flush caps: one run never exceeds this many frames or
// bytes, so a burst can't grow a single writev without bound while
// submitters keep appending (fairness: later frames ride the next run).
constexpr size_t kMaxFlushFrames = 64;
constexpr size_t kMaxFlushBytes = 256u << 10;
constexpr size_t kMaxSpareBufs = 64;
// Client-side chunking for LaunchBatch: comfortably under kMaxSpawnBatch,
// large enough that per-frame overhead is noise.
constexpr size_t kSpawnBatchChunk = 256;

obs::Histogram& FramesPerFlush() {
  static obs::Histogram h =
      obs::MetricsRegistry::Global().GetHistogram("forklift_wire_frames_per_flush");
  return h;
}

// The one socket-connect path both clients share (and the fault site the
// sweep drives to prove a refused/failed connect degrades cleanly).
Result<UniqueFd> ConnectUnixSocket(const std::string& path, const char* who) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    return LogicalError(std::string(who) + ": socket path too long");
  }
  int fd;
  auto inj = fault::Check("client.connect_socket", fault::Op::kCreateFd);
  if (inj.is_errno()) {
    fd = -1;
    errno = inj.err;
  } else {
    fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  }
  if (fd < 0) {
    return ErrnoError("socket (forkserver client)");
  }
  UniqueFd sock(fd);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  path.copy(addr.sun_path, sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return ErrnoError("connect " + path);
  }
  return sock;
}

}  // namespace

std::vector<Result<pid_t>> RemoteSpawnService::LaunchBatch(
    const std::vector<SpawnRequest>& reqs) {
  std::vector<Result<pid_t>> out;
  out.reserve(reqs.size());
  for (const SpawnRequest& req : reqs) {
    out.push_back(LaunchRequest(req));
  }
  return out;
}

Result<std::optional<ExitStatus>> RemoteSpawnService::WaitRemoteFor(pid_t pid,
                                                                    double timeout_seconds) {
  (void)pid;
  (void)timeout_seconds;
  return LogicalError("forkserver: this transport cannot poll a remote wait "
                      "(v1 channel? use WaitRemote)");
}

Result<ExitStatus> RemoteChild::Wait() {
  if (!valid() || service_ == nullptr) {
    return LogicalError("RemoteChild::Wait on invalid handle");
  }
  return service_->WaitRemote(pid_);
}

Status RemoteChild::Kill(int sig) {
  if (!valid()) {
    return LogicalError("RemoteChild::Kill on invalid handle");
  }
  if (::kill(pid_, sig) < 0) {
    return ErrnoError("kill (remote child)");
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// ForkServerClient (pipelined, protocol v2)

// A completion slot. Lifetime: acquired (registered in pending_) at submit,
// filled by the receiver, released back to free_ by the awaiting caller — or
// by the receiver itself if the caller dropped the handle first. All fields
// are guarded by mu_.
struct ForkServerClient::Slot {
  uint64_t id = 0;
  bool done = false;
  bool abandoned = false;      // handle destroyed before the reply arrived
  Status transport = Status::Ok();
  MsgType type = MsgType::kSpawn;
  SpawnReply spawn;
  WaitReply wait;
  StatsReply stats;
};

ForkServerClient::ForkServerClient(UniqueFd sock) : sock_(std::move(sock)) {
  receiver_ = std::thread([this] { ReceiverLoop(); });
}

ForkServerClient::~ForkServerClient() {
  // Wake the receiver out of recvmsg; it marks the channel dead (failing any
  // still-pending requests) and exits.
  if (receiver_.joinable()) {
    ::shutdown(sock_.get(), SHUT_RDWR);
    receiver_.join();
  }
}

Result<std::unique_ptr<ForkServerClient>> ForkServerClient::ConnectPath(
    const std::string& path) {
  FORKLIFT_ASSIGN_OR_RETURN(UniqueFd sock,
                            ConnectUnixSocket(path, "ForkServerClient::ConnectPath"));
  return std::make_unique<ForkServerClient>(std::move(sock));
}

ForkServerClient::Slot* ForkServerClient::AcquireSlotLocked(uint64_t* id_out,
                                                            uint64_t explicit_id) {
  Slot* slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slots_.push_back(std::make_unique<Slot>());
    slot = slots_.back().get();
  }
  *id_out = explicit_id != 0 ? explicit_id : obs::NextRequestId();
  slot->id = *id_out;
  slot->done = false;
  slot->abandoned = false;
  slot->transport = Status::Ok();
  pending_.emplace(*id_out, slot);
  outstanding_.store(pending_.size(), std::memory_order_relaxed);
  return slot;
}

void ForkServerClient::FreeSlotLocked(Slot* slot) {
  slot->spawn.context.clear();
  slot->wait.context.clear();
  slot->stats.context.clear();
  slot->stats.body.clear();
  free_.push_back(slot);
}

void ForkServerClient::AbortSubmit(uint64_t id, Slot* slot) {
  std::lock_guard<std::mutex> lock(mu_);
  // Abort happens only on encode failures now — nothing hit the wire, no
  // reply can exist — but a concurrent Die may have completed the slot;
  // either way nobody holds a handle, so recycle it.
  pending_.erase(id);
  outstanding_.store(pending_.size(), std::memory_order_relaxed);
  FreeSlotLocked(slot);
}

// --- submission queue ---

std::string ForkServerClient::TakeBuf() {
  std::lock_guard<std::mutex> lock(q_mu_);
  if (spare_bufs_.empty()) {
    return std::string();
  }
  std::string buf = std::move(spare_bufs_.back());
  spare_bufs_.pop_back();
  return buf;
}

void ForkServerClient::RecycleBuf(std::string buf) {
  buf.clear();
  std::lock_guard<std::mutex> lock(q_mu_);
  if (spare_bufs_.size() < kMaxSpareBufs) {
    spare_bufs_.push_back(std::move(buf));
  }
}

void ForkServerClient::SubmitFramed(std::string frame) {
  std::unique_lock<std::mutex> lock(q_mu_);
  q_.push_back(std::move(frame));
  if (flushing_) {
    // An active flusher picks this frame up in its next run — that is the
    // coalescing: our frame rides someone else's writev and we return now.
    return;
  }
  // No flusher and we just made the queue non-empty: flush it ourselves. A
  // lone request is therefore never delayed waiting for company.
  flushing_ = true;
  DrainQueue(lock);
  flushing_ = false;
  lock.unlock();
  q_cv_.notify_all();
}

void ForkServerClient::DrainQueue(std::unique_lock<std::mutex>& lock) {
  std::vector<std::string> run;
  std::vector<struct iovec> iov;
  while (!q_.empty()) {
    size_t take = 0;
    size_t bytes = 0;
    while (take < q_.size() && take < kMaxFlushFrames && bytes < kMaxFlushBytes) {
      bytes += q_[take].size();
      ++take;
    }
    run.assign(std::make_move_iterator(q_.begin()),
               std::make_move_iterator(q_.begin() + take));
    q_.erase(q_.begin(), q_.begin() + take);
    // Release the lock around the write: submitters appending during the
    // syscall form the next run.
    lock.unlock();
    iov.resize(run.size());
    for (size_t i = 0; i < run.size(); ++i) {
      iov[i].iov_base = run[i].data();
      iov[i].iov_len = run[i].size();
    }
    auto sent = SendGathered(sock_.get(), iov.data(), iov.size(), {});
    FramesPerFlush().Observe(run.size());
    if (!sent.ok()) {
      Die(Err(sent.error()));
      lock.lock();
      // Die already failed every queued frame's slot; the bytes are dead.
      q_.clear();
      return;
    }
    lock.lock();
    for (auto& buf : run) {
      buf.clear();
      if (spare_bufs_.size() < kMaxSpareBufs) {
        spare_bufs_.push_back(std::move(buf));
      }
    }
    run.clear();
  }
}

Status ForkServerClient::SubmitFdFrame(std::string_view frame, const std::vector<int>& fds) {
  std::unique_lock<std::mutex> lock(q_mu_);
  q_cv_.wait(lock, [this] { return !flushing_; });
  flushing_ = true;
  // Ordering: everything queued before us must hit the wire first.
  DrainQueue(lock);
  lock.unlock();
  // `frame` carries its length prefix, which SendFrame re-derives — strip it
  // and let SendFrame's combined sendmsg (and its zero-progress fallback)
  // attach the fds to the prefix bytes.
  Status st = SendFrame(sock_.get(), frame.substr(4), fds);
  if (!st.ok()) {
    Die(st);
  }
  lock.lock();
  if (st.ok()) {
    // Frames enqueued while we were inside SendFrame saw flushing_ == true
    // and returned, counting on the active flusher to ship them. We are that
    // flusher: drain again before stepping down, or those frames sit queued
    // with nobody responsible and their submitters hang in Await*.
    DrainQueue(lock);
  } else {
    // Die already failed every pending slot; the queued bytes are dead.
    q_.clear();
  }
  flushing_ = false;
  lock.unlock();
  q_cv_.notify_all();
  return st;
}

// Submit contract: a returned error means the frame never hit the wire (the
// slot was recycled, the request is safely retryable elsewhere — the sharded
// router relies on this). Once the frame is queued, transport failures are
// not reported here: they kill the channel and surface through Await*.
Result<ForkServerClient::PendingReply> ForkServerClient::SubmitSpawn(const SpawnRequest& req,
                                                                     uint64_t request_id) {
  uint64_t id;
  Slot* slot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (dead_) {
      return Err(death_.error());
    }
    slot = AcquireSlotLocked(&id, request_id);
  }
  const uint64_t send_start = MonotonicNanos();
  WireWriter w;
  w.AdoptBuffer(TakeBuf());
  w.PutU32(0);  // length prefix, backfilled once the size is known
  std::vector<int> fds;
  Status st = EncodeSpawnRequestInto(w, req, &fds, FrameMeta{kForkServerProtocolV2, id});
  if (st.ok()) {
    w.PokeU32(0, static_cast<uint32_t>(w.size() - 4));
    st = w.status();
  }
  if (!st.ok()) {
    AbortSubmit(id, slot);
    return Err(st.error());
  }
  if (fds.empty()) {
    SubmitFramed(w.Take());
  } else {
    // The fds are borrowed from the caller, so the frame cannot sit in the
    // queue past this call's return: send synchronously.
    SubmitFdFrame(w.data(), fds);
    RecycleBuf(w.Take());
  }
  // The id on the wire IS the trace id, so the encode+send span correlates
  // with the service's submit/route spans without any plumbing.
  obs::Tracer::Global().Record(id, "wire.send", send_start, MonotonicNanos());
  return PendingReply(this, slot);
}

Result<ForkServerClient::PendingReply> ForkServerClient::SubmitWait(pid_t pid) {
  uint64_t id;
  Slot* slot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (dead_) {
      return Err(death_.error());
    }
    slot = AcquireSlotLocked(&id, 0);
  }
  WireWriter w;
  w.AdoptBuffer(TakeBuf());
  w.Reserve(4 + 20 + 4);
  w.PutU32(0);
  EncodeHeaderInto(w, MsgType::kWait, FrameMeta{kForkServerProtocolV2, id});
  w.PutI32(static_cast<int32_t>(pid));
  w.PokeU32(0, static_cast<uint32_t>(w.size() - 4));
  if (Status st = w.status(); !st.ok()) {
    AbortSubmit(id, slot);
    return Err(st.error());
  }
  SubmitFramed(w.Take());
  return PendingReply(this, slot);
}

Result<ForkServerClient::PendingReply> ForkServerClient::SubmitControl(
    MsgType type, const std::vector<int>& fds) {
  uint64_t id;
  Slot* slot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (dead_) {
      return Err(death_.error());
    }
    slot = AcquireSlotLocked(&id, 0);
  }
  WireWriter w;
  w.AdoptBuffer(TakeBuf());
  w.PutU32(0);
  EncodeHeaderInto(w, type, FrameMeta{kForkServerProtocolV2, id});
  w.PokeU32(0, static_cast<uint32_t>(w.size() - 4));
  if (Status st = w.status(); !st.ok()) {
    AbortSubmit(id, slot);
    return Err(st.error());
  }
  if (fds.empty()) {
    SubmitFramed(w.Take());
  } else {
    SubmitFdFrame(w.data(), fds);  // kNewChannel ships its socket inline
    RecycleBuf(w.Take());
  }
  return PendingReply(this, slot);
}

Result<ForkServerClient::PendingReply> ForkServerClient::SubmitStats(obs::StatsFormat format) {
  uint64_t id;
  Slot* slot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (dead_) {
      return Err(death_.error());
    }
    slot = AcquireSlotLocked(&id, 0);
  }
  WireWriter w;
  w.AdoptBuffer(TakeBuf());
  w.Reserve(4 + 20 + 1);
  w.PutU32(0);
  EncodeHeaderInto(w, MsgType::kStats, FrameMeta{kForkServerProtocolV2, id});
  w.PutU8(static_cast<uint8_t>(format));
  w.PokeU32(0, static_cast<uint32_t>(w.size() - 4));
  if (Status st = w.status(); !st.ok()) {
    AbortSubmit(id, slot);
    return Err(st.error());
  }
  SubmitFramed(w.Take());
  return PendingReply(this, slot);
}

Result<ForkServerClient::PendingReply> ForkServerClient::LaunchAsync(const SpawnRequest& req,
                                                                     uint64_t request_id) {
  return SubmitSpawn(req, request_id);
}

Result<ForkServerClient::PendingReply> ForkServerClient::WaitAsync(pid_t pid) {
  return SubmitWait(pid);
}

Result<ForkServerClient::PendingReply> ForkServerClient::PingAsync() {
  return SubmitControl(MsgType::kPing, {});
}

Result<ForkServerClient::PendingReply> ForkServerClient::StatsAsync(obs::StatsFormat format) {
  return SubmitStats(format);
}

Result<std::vector<ForkServerClient::PendingReply>> ForkServerClient::LaunchBatchAsync(
    const std::vector<SpawnRequest>& reqs, uint64_t first_id) {
  std::vector<PendingReply> out;
  if (reqs.empty()) {
    return out;
  }
  if (reqs.size() > kMaxSpawnBatch) {
    return LogicalError("forkserver client: batch exceeds kMaxSpawnBatch");
  }
  const uint64_t base = first_id != 0 ? first_id : obs::NextRequestIdRange(reqs.size());
  std::vector<Slot*> slots(reqs.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (dead_) {
      return Err(death_.error());
    }
    for (size_t i = 0; i < reqs.size(); ++i) {
      uint64_t id;
      slots[i] = AcquireSlotLocked(&id, base + i);
    }
  }
  const uint64_t send_start = MonotonicNanos();
  WireWriter w;
  w.AdoptBuffer(TakeBuf());
  w.PutU32(0);
  std::vector<int> fds;
  Status st = EncodeSpawnBatchInto(w, reqs, &fds, FrameMeta{kForkServerProtocolV2, base});
  if (st.ok()) {
    w.PokeU32(0, static_cast<uint32_t>(w.size() - 4));
    st = w.status();
  }
  if (!st.ok()) {
    // Pre-wire failure: unregister the whole id range so the burst is
    // retryable (singly, or on another shard).
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < reqs.size(); ++i) {
      pending_.erase(base + i);
      FreeSlotLocked(slots[i]);
    }
    outstanding_.store(pending_.size(), std::memory_order_relaxed);
    return Err(st.error());
  }
  if (fds.empty()) {
    SubmitFramed(w.Take());
  } else {
    SubmitFdFrame(w.data(), fds);
    RecycleBuf(w.Take());
  }
  obs::Tracer::Global().Record(base, "wire.send", send_start, MonotonicNanos());
  out.reserve(reqs.size());
  for (Slot* slot : slots) {
    out.push_back(PendingReply(this, slot));
  }
  return out;
}

std::vector<Result<pid_t>> ForkServerClient::LaunchBatch(const std::vector<SpawnRequest>& reqs) {
  std::vector<Result<pid_t>> out;
  out.reserve(reqs.size());
  size_t i = 0;
  while (i < reqs.size()) {
    const size_t n = std::min(reqs.size() - i, kSpawnBatchChunk);
    // The common case (burst fits one chunk) avoids copying the requests.
    std::vector<SpawnRequest> copy;
    const std::vector<SpawnRequest>* chunk = &reqs;
    if (n != reqs.size()) {
      copy.assign(reqs.begin() + static_cast<ptrdiff_t>(i),
                  reqs.begin() + static_cast<ptrdiff_t>(i + n));
      chunk = &copy;
    }
    auto batch = LaunchBatchAsync(*chunk);
    if (batch.ok()) {
      for (PendingReply& pending : *batch) {
        out.push_back(pending.AwaitPid());
      }
    } else {
      // Encode-stage failure — e.g. the chunk's combined fd transfers exceed
      // the per-frame cap. Fall back to singles so one heavy entry degrades
      // the burst to the old path instead of failing it.
      for (size_t j = 0; j < n; ++j) {
        out.push_back(LaunchRequest((*chunk)[j]));
      }
    }
    i += n;
  }
  return out;
}

Result<pid_t> ForkServerClient::AwaitSpawn(Slot* slot) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [slot] { return slot->done; });
  Status transport = slot->transport;
  MsgType type = slot->type;
  SpawnReply reply = std::move(slot->spawn);
  FreeSlotLocked(slot);
  lock.unlock();
  FORKLIFT_RETURN_IF_ERROR(transport);
  if (type != MsgType::kSpawnReply) {
    return LogicalError("forkserver client: expected spawn reply");
  }
  FORKLIFT_RETURN_IF_ERROR(ReplyToStatus(reply.ok, reply.err, reply.context, "forkserver spawn"));
  return static_cast<pid_t>(reply.pid);
}

Result<ExitStatus> ForkServerClient::AwaitWait(Slot* slot) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [slot] { return slot->done; });
  Status transport = slot->transport;
  MsgType type = slot->type;
  WaitReply reply = std::move(slot->wait);
  FreeSlotLocked(slot);
  lock.unlock();
  FORKLIFT_RETURN_IF_ERROR(transport);
  if (type != MsgType::kWaitReply) {
    return LogicalError("forkserver client: expected wait reply");
  }
  FORKLIFT_RETURN_IF_ERROR(ReplyToStatus(reply.ok, reply.err, reply.context, "forkserver wait"));
  return reply.status;
}

Result<std::optional<ExitStatus>> ForkServerClient::AwaitWaitFor(Slot* slot,
                                                                 double timeout_seconds) {
  std::unique_lock<std::mutex> lock(mu_);
  if (timeout_seconds < 0) {
    timeout_seconds = 0;
  }
  bool done = cv_.wait_for(lock, std::chrono::duration<double>(timeout_seconds),
                           [slot] { return slot->done; });
  if (!done) {
    // Leave the slot registered: the server still owes exactly one reply for
    // this request_id, and a later Await* collects it.
    return std::optional<ExitStatus>();
  }
  Status transport = slot->transport;
  MsgType type = slot->type;
  WaitReply reply = std::move(slot->wait);
  FreeSlotLocked(slot);
  lock.unlock();
  FORKLIFT_RETURN_IF_ERROR(transport);
  if (type != MsgType::kWaitReply) {
    return LogicalError("forkserver client: expected wait reply");
  }
  FORKLIFT_RETURN_IF_ERROR(ReplyToStatus(reply.ok, reply.err, reply.context, "forkserver wait"));
  return std::optional<ExitStatus>(reply.status);
}

Result<std::string> ForkServerClient::AwaitStatsSlot(Slot* slot) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [slot] { return slot->done; });
  Status transport = slot->transport;
  MsgType type = slot->type;
  StatsReply reply = std::move(slot->stats);
  FreeSlotLocked(slot);
  lock.unlock();
  FORKLIFT_RETURN_IF_ERROR(transport);
  if (type != MsgType::kStatsReply) {
    return LogicalError("forkserver client: expected stats reply");
  }
  FORKLIFT_RETURN_IF_ERROR(ReplyToStatus(reply.ok, reply.err, reply.context, "forkserver stats"));
  return std::move(reply.body);
}

Status ForkServerClient::AwaitControlSlot(Slot* slot, MsgType expected) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [slot] { return slot->done; });
  Status transport = slot->transport;
  MsgType type = slot->type;
  SpawnReply reply = std::move(slot->spawn);  // server-side errors ride a SpawnReply
  FreeSlotLocked(slot);
  lock.unlock();
  FORKLIFT_RETURN_IF_ERROR(transport);
  if (type == MsgType::kSpawnReply) {
    FORKLIFT_RETURN_IF_ERROR(ReplyToStatus(reply.ok, reply.err, reply.context, "forkserver"));
  }
  if (type != expected) {
    return LogicalError("forkserver client: unexpected reply type");
  }
  return Status::Ok();
}

void ForkServerClient::DiscardSlot(Slot* slot) {
  std::lock_guard<std::mutex> lock(mu_);
  if (slot->done) {
    FreeSlotLocked(slot);
  } else {
    // Still in flight: the receiver recycles it when the reply arrives.
    slot->abandoned = true;
  }
}

void ForkServerClient::Die(const Status& cause) {
  std::lock_guard<std::mutex> lock(mu_);
  dead_ = true;
  death_ = cause;
  for (auto& [id, slot] : pending_) {
    slot->done = true;
    slot->transport = cause;
    if (slot->abandoned) {
      FreeSlotLocked(slot);
    }
  }
  pending_.clear();
  outstanding_.store(0, std::memory_order_relaxed);
  cv_.notify_all();
}

void ForkServerClient::DispatchFrame(const Frame& frame) {
  WireReader reader(frame.payload);
  auto hdr = DecodeHeader(reader);
  if (!hdr.ok()) {
    Die(Err(hdr.error()));
    return;
  }
  if (hdr->meta.request_id == 0) {
    // A v1 reply on a v2 channel: the peer did not echo our request_id, so it
    // cannot be correlated — the channel's pipelining contract is broken
    // (v1-only server, or the server's unsolicited error reply to a frame it
    // could not parse). Fail pending requests rather than hang them.
    Die(LogicalError("forkserver client: uncorrelated v1 reply on pipelined channel "
                     "(v1-only server?)"));
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pending_.find(hdr->meta.request_id);
  if (it == pending_.end()) {
    return;  // reply to an aborted submit; drop it
  }
  Slot* slot = it->second;
  pending_.erase(it);
  outstanding_.store(pending_.size(), std::memory_order_relaxed);
  slot->type = hdr->type;
  switch (hdr->type) {
    case MsgType::kSpawnReply: {
      auto reply = DecodeSpawnReply(frame.payload);
      if (reply.ok()) {
        slot->spawn = std::move(*reply);
      } else {
        slot->transport = Err(reply.error());
      }
      break;
    }
    case MsgType::kWaitReply: {
      auto reply = DecodeWaitReply(frame.payload);
      if (reply.ok()) {
        slot->wait = std::move(*reply);
      } else {
        slot->transport = Err(reply.error());
      }
      break;
    }
    case MsgType::kStatsReply: {
      auto reply = DecodeStatsReply(frame.payload);
      if (reply.ok()) {
        slot->stats = std::move(*reply);
      } else {
        slot->transport = Err(reply.error());
      }
      break;
    }
    default:
      break;  // control acks carry no body
  }
  slot->done = true;
  if (slot->abandoned) {
    FreeSlotLocked(slot);
  }
  cv_.notify_all();
}

void ForkServerClient::ReceiverLoop() {
  // Drain-everything receive: one recvmsg gulp pulls in however many replies
  // the server coalesced into its writev, and every complete frame is
  // dispatched before the next syscall. The Frame lives for the life of the
  // channel so its payload capacity is reused.
  FrameBuffer fb;
  Frame frame;
  for (;;) {
    auto has = fb.Next(&frame);
    if (!has.ok()) {
      Die(Err(has.error()));
      return;
    }
    if (*has) {
      DispatchFrame(frame);
      continue;
    }
    auto drained = DrainSocketInto(sock_.get(), &fb);
    if (!drained.ok()) {
      Die(Err(drained.error()));
      return;
    }
    if (drained->eof) {
      Die(LogicalError(fb.buffered() != 0
                           ? "forkserver client: server closed mid-frame"
                           : "forkserver client: server closed the channel"));
      return;
    }
    if (drained->would_block) {
      // Only possible if the socket is O_NONBLOCK (it is not today); park
      // until readable rather than spinning.
      Status st = WaitFdReadable(sock_.get());
      if (!st.ok()) {
        Die(st);
        return;
      }
    }
  }
}

bool ForkServerClient::dead() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dead_;
}

Result<pid_t> ForkServerClient::LaunchRequest(const SpawnRequest& req) {
  FORKLIFT_ASSIGN_OR_RETURN(PendingReply pending, LaunchAsync(req));
  return pending.AwaitPid();
}

Result<RemoteChild> ForkServerClient::Spawn(const Spawner& spawner) {
  FORKLIFT_ASSIGN_OR_RETURN(SpawnRequest req, spawner.BuildRequest());
  FORKLIFT_ASSIGN_OR_RETURN(pid_t pid, LaunchRequest(req));
  return RemoteChild(this, pid);
}

Result<ExitStatus> ForkServerClient::WaitRemote(pid_t pid) {
  // Adopt a wait parked by WaitRemoteFor rather than racing it with a second
  // kWait: once the server has served the exit, a fresh kWait gets ECHILD.
  {
    std::unique_lock<std::mutex> lock(parked_mu_);
    auto it = parked_.find(pid);
    if (it != parked_.end()) {
      PendingReply pending = std::move(it->second);
      parked_.erase(it);
      lock.unlock();
      return pending.AwaitExit();
    }
  }
  FORKLIFT_ASSIGN_OR_RETURN(PendingReply pending, WaitAsync(pid));
  return pending.AwaitExit();
}

Result<std::optional<ExitStatus>> ForkServerClient::WaitRemoteFor(pid_t pid,
                                                                  double timeout_seconds) {
  std::lock_guard<std::mutex> lock(parked_mu_);
  auto it = parked_.find(pid);
  if (it == parked_.end()) {
    auto pending = SubmitWait(pid);
    if (!pending.ok()) {
      return Err(pending.error());
    }
    it = parked_.emplace(pid, std::move(*pending)).first;
  }
  auto st = it->second.AwaitExitFor(timeout_seconds);
  if (!st.ok() || st.value().has_value()) {
    // Completion (or transport death) consumed the handle; drop the entry so
    // a later poll for a recycled pid starts a fresh wait.
    parked_.erase(it);
  }
  return st;
}

Status ForkServerClient::Ping() {
  FORKLIFT_ASSIGN_OR_RETURN(PendingReply pending, PingAsync());
  return pending.AwaitControl(MsgType::kPong);
}

Result<std::string> ForkServerClient::Stats(obs::StatsFormat format) {
  FORKLIFT_ASSIGN_OR_RETURN(PendingReply pending, StatsAsync(format));
  return pending.AwaitStats();
}

Status ForkServerClient::Shutdown() {
  auto pending = SubmitControl(MsgType::kShutdown, {});
  if (!pending.ok()) {
    if (dead()) {
      return Status::Ok();  // server already gone: shutdown achieved regardless
    }
    return Err(pending.error());
  }
  Status st = pending->AwaitControl(MsgType::kShutdownAck);
  if (!st.ok() && dead()) {
    return Status::Ok();  // server died at EOF instead of acking: same outcome
  }
  return st;
}

Result<std::unique_ptr<ForkServerClient>> ForkServerClient::NewChannel() {
  FORKLIFT_ASSIGN_OR_RETURN(SocketPair sp, MakeSocketPair());
  FORKLIFT_ASSIGN_OR_RETURN(PendingReply pending,
                            SubmitControl(MsgType::kNewChannel, {sp.second.get()}));
  FORKLIFT_RETURN_IF_ERROR(pending.AwaitControl(MsgType::kNewChannelAck));
  return std::make_unique<ForkServerClient>(std::move(sp.first));
}

// --- PendingReply ---

ForkServerClient::PendingReply::PendingReply(PendingReply&& other) noexcept
    : client_(other.client_), slot_(other.slot_) {
  other.client_ = nullptr;
  other.slot_ = nullptr;
}

ForkServerClient::PendingReply& ForkServerClient::PendingReply::operator=(
    PendingReply&& other) noexcept {
  if (this != &other) {
    if (client_ != nullptr) {
      client_->DiscardSlot(slot_);
    }
    client_ = other.client_;
    slot_ = other.slot_;
    other.client_ = nullptr;
    other.slot_ = nullptr;
  }
  return *this;
}

ForkServerClient::PendingReply::~PendingReply() {
  if (client_ != nullptr) {
    client_->DiscardSlot(slot_);
  }
}

Result<pid_t> ForkServerClient::PendingReply::AwaitPid() {
  if (!valid()) {
    return LogicalError("PendingReply::AwaitPid on empty handle");
  }
  ForkServerClient* client = client_;
  Slot* slot = slot_;
  client_ = nullptr;
  slot_ = nullptr;
  return client->AwaitSpawn(slot);
}

Result<ExitStatus> ForkServerClient::PendingReply::AwaitExit() {
  if (!valid()) {
    return LogicalError("PendingReply::AwaitExit on empty handle");
  }
  ForkServerClient* client = client_;
  Slot* slot = slot_;
  client_ = nullptr;
  slot_ = nullptr;
  return client->AwaitWait(slot);
}

Result<std::optional<ExitStatus>> ForkServerClient::PendingReply::AwaitExitFor(
    double timeout_seconds) {
  if (!valid()) {
    return LogicalError("PendingReply::AwaitExitFor on empty handle");
  }
  auto st = client_->AwaitWaitFor(slot_, timeout_seconds);
  if (st.ok() && !st.value().has_value()) {
    return st;  // timed out: handle stays valid, the wait stays parked
  }
  // Completed (value or transport/protocol error): AwaitWaitFor freed the
  // slot either way, so the handle must be consumed on both paths.
  client_ = nullptr;
  slot_ = nullptr;
  return st;
}

Result<std::string> ForkServerClient::PendingReply::AwaitStats() {
  if (!valid()) {
    return LogicalError("PendingReply::AwaitStats on empty handle");
  }
  ForkServerClient* client = client_;
  Slot* slot = slot_;
  client_ = nullptr;
  slot_ = nullptr;
  return client->AwaitStatsSlot(slot);
}

Status ForkServerClient::PendingReply::AwaitControl(MsgType expected) {
  if (!valid()) {
    return LogicalError("PendingReply::AwaitControl on empty handle");
  }
  ForkServerClient* client = client_;
  Slot* slot = slot_;
  client_ = nullptr;
  slot_ = nullptr;
  return client->AwaitControlSlot(slot, expected);
}

// ---------------------------------------------------------------------------
// LegacyForkServerClient (v1, one frame in flight)

Result<std::unique_ptr<LegacyForkServerClient>> LegacyForkServerClient::ConnectPath(
    const std::string& path) {
  FORKLIFT_ASSIGN_OR_RETURN(UniqueFd sock,
                            ConnectUnixSocket(path, "LegacyForkServerClient::ConnectPath"));
  return std::make_unique<LegacyForkServerClient>(std::move(sock));
}

Result<pid_t> LegacyForkServerClient::LaunchRequest(const SpawnRequest& req) {
  std::lock_guard<std::mutex> lock(mu_);
  FORKLIFT_RETURN_IF_ERROR(EncodeSpawnFrameInto(scratch_, &scratch_fds_, req, FrameMeta{}));
  FORKLIFT_RETURN_IF_ERROR(SendFrame(sock_.get(), scratch_.data(), scratch_fds_));
  FORKLIFT_ASSIGN_OR_RETURN(RecvResult rr, RecvFrame(sock_.get()));
  if (rr.eof) {
    return LogicalError("forkserver client: server closed the socket");
  }
  FORKLIFT_ASSIGN_OR_RETURN(SpawnReply reply, DecodeSpawnReply(rr.frame.payload));
  FORKLIFT_RETURN_IF_ERROR(ReplyToStatus(reply.ok, reply.err, reply.context, "forkserver spawn"));
  return static_cast<pid_t>(reply.pid);
}

Result<RemoteChild> LegacyForkServerClient::Spawn(const Spawner& spawner) {
  FORKLIFT_ASSIGN_OR_RETURN(SpawnRequest req, spawner.BuildRequest());
  FORKLIFT_ASSIGN_OR_RETURN(pid_t pid, LaunchRequest(req));
  return RemoteChild(this, pid);
}

Status LegacyForkServerClient::Ping() {
  std::lock_guard<std::mutex> lock(mu_);
  EncodeControlFrameInto(scratch_, MsgType::kPing, FrameMeta{});
  FORKLIFT_RETURN_IF_ERROR(SendFrame(sock_.get(), scratch_.data()));
  FORKLIFT_ASSIGN_OR_RETURN(RecvResult rr, RecvFrame(sock_.get()));
  if (rr.eof) {
    return LogicalError("forkserver client: server closed during ping");
  }
  WireReader reader(rr.frame.payload);
  FORKLIFT_ASSIGN_OR_RETURN(FrameHeader hdr, DecodeHeader(reader));
  if (hdr.type != MsgType::kPong) {
    return LogicalError("forkserver client: expected pong");
  }
  return Status::Ok();
}

Status LegacyForkServerClient::Shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  EncodeControlFrameInto(scratch_, MsgType::kShutdown, FrameMeta{});
  FORKLIFT_RETURN_IF_ERROR(SendFrame(sock_.get(), scratch_.data()));
  FORKLIFT_ASSIGN_OR_RETURN(RecvResult rr, RecvFrame(sock_.get()));
  if (rr.eof) {
    return Status::Ok();  // server died at EOF: shutdown achieved regardless
  }
  WireReader reader(rr.frame.payload);
  FORKLIFT_ASSIGN_OR_RETURN(FrameHeader hdr, DecodeHeader(reader));
  if (hdr.type != MsgType::kShutdownAck) {
    return LogicalError("forkserver client: expected shutdown ack");
  }
  return Status::Ok();
}

Result<ExitStatus> LegacyForkServerClient::WaitRemote(pid_t pid) {
  std::lock_guard<std::mutex> lock(mu_);
  EncodeWaitFrameInto(scratch_, pid, FrameMeta{});
  FORKLIFT_RETURN_IF_ERROR(SendFrame(sock_.get(), scratch_.data()));
  FORKLIFT_ASSIGN_OR_RETURN(RecvResult rr, RecvFrame(sock_.get()));
  if (rr.eof) {
    return LogicalError("forkserver client: server closed during wait");
  }
  FORKLIFT_ASSIGN_OR_RETURN(WaitReply reply, DecodeWaitReply(rr.frame.payload));
  FORKLIFT_RETURN_IF_ERROR(ReplyToStatus(reply.ok, reply.err, reply.context, "forkserver wait"));
  return reply.status;
}

Result<pid_t> ForkServerBackend::Launch(const SpawnRequest& req) {
  if (service_ == nullptr) {
    return LogicalError("ForkServerBackend: no client");
  }
  return service_->LaunchRequest(req);
}

}  // namespace forklift
