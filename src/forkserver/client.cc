#include "src/forkserver/client.h"

#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>

#include <utility>

#include "src/common/pipe.h"
#include "src/forkserver/fd_transfer.h"
#include "src/forkserver/protocol.h"
#include "src/forkserver/wire.h"

namespace forklift {

Result<ExitStatus> RemoteChild::Wait() {
  if (!valid() || client_ == nullptr) {
    return LogicalError("RemoteChild::Wait on invalid handle");
  }
  return client_->WaitRemote(pid_);
}

Status RemoteChild::Kill(int sig) {
  if (!valid()) {
    return LogicalError("RemoteChild::Kill on invalid handle");
  }
  if (::kill(pid_, sig) < 0) {
    return ErrnoError("kill (remote child)");
  }
  return Status::Ok();
}

ForkServerClient::ForkServerClient(UniqueFd sock) : sock_(std::move(sock)) {}

Result<std::unique_ptr<ForkServerClient>> ForkServerClient::ConnectPath(
    const std::string& path) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    return LogicalError("ForkServerClient::ConnectPath: socket path too long");
  }
  int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return ErrnoError("socket (forkserver client)");
  }
  UniqueFd sock(fd);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  path.copy(addr.sun_path, sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return ErrnoError("connect " + path);
  }
  return std::make_unique<ForkServerClient>(std::move(sock));
}

Result<pid_t> ForkServerClient::LaunchRequest(const SpawnRequest& req) {
  std::vector<int> fds;
  FORKLIFT_ASSIGN_OR_RETURN(std::string payload, EncodeSpawnRequest(req, &fds));

  std::lock_guard<std::mutex> lock(mu_);
  FORKLIFT_RETURN_IF_ERROR(SendFrame(sock_.get(), payload, fds));
  FORKLIFT_ASSIGN_OR_RETURN(RecvResult rr, RecvFrame(sock_.get()));
  if (rr.eof) {
    return LogicalError("forkserver client: server closed the socket");
  }
  FORKLIFT_ASSIGN_OR_RETURN(SpawnReply reply, DecodeSpawnReply(rr.frame.payload));
  if (!reply.ok) {
    if (reply.err != 0) {
      return Err(Error(reply.err, "forkserver spawn: " + reply.context));
    }
    return LogicalError("forkserver spawn: " + reply.context);
  }
  return static_cast<pid_t>(reply.pid);
}

Result<RemoteChild> ForkServerClient::Spawn(const Spawner& spawner) {
  FORKLIFT_ASSIGN_OR_RETURN(SpawnRequest req, spawner.BuildRequest());
  FORKLIFT_ASSIGN_OR_RETURN(pid_t pid, LaunchRequest(req));
  return RemoteChild(this, pid);
}

Result<std::unique_ptr<ForkServerClient>> ForkServerClient::NewChannel() {
  FORKLIFT_ASSIGN_OR_RETURN(SocketPair sp, MakeSocketPair());
  std::lock_guard<std::mutex> lock(mu_);
  FORKLIFT_RETURN_IF_ERROR(
      SendFrame(sock_.get(), EncodeControl(MsgType::kNewChannel), {sp.second.get()}));
  FORKLIFT_ASSIGN_OR_RETURN(RecvResult rr, RecvFrame(sock_.get()));
  if (rr.eof) {
    return LogicalError("forkserver client: server closed during channel setup");
  }
  WireReader reader(rr.frame.payload);
  FORKLIFT_ASSIGN_OR_RETURN(MsgType type, DecodeHeader(reader));
  if (type != MsgType::kNewChannelAck) {
    return LogicalError("forkserver client: expected channel ack");
  }
  return std::make_unique<ForkServerClient>(std::move(sp.first));
}

Status ForkServerClient::Ping() {
  std::lock_guard<std::mutex> lock(mu_);
  FORKLIFT_RETURN_IF_ERROR(SendFrame(sock_.get(), EncodeControl(MsgType::kPing)));
  FORKLIFT_ASSIGN_OR_RETURN(RecvResult rr, RecvFrame(sock_.get()));
  if (rr.eof) {
    return LogicalError("forkserver client: server closed during ping");
  }
  WireReader reader(rr.frame.payload);
  FORKLIFT_ASSIGN_OR_RETURN(MsgType type, DecodeHeader(reader));
  if (type != MsgType::kPong) {
    return LogicalError("forkserver client: expected pong");
  }
  return Status::Ok();
}

Status ForkServerClient::Shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  FORKLIFT_RETURN_IF_ERROR(SendFrame(sock_.get(), EncodeControl(MsgType::kShutdown)));
  FORKLIFT_ASSIGN_OR_RETURN(RecvResult rr, RecvFrame(sock_.get()));
  if (rr.eof) {
    return Status::Ok();  // server died at EOF: shutdown achieved regardless
  }
  WireReader reader(rr.frame.payload);
  FORKLIFT_ASSIGN_OR_RETURN(MsgType type, DecodeHeader(reader));
  if (type != MsgType::kShutdownAck) {
    return LogicalError("forkserver client: expected shutdown ack");
  }
  return Status::Ok();
}

Result<ExitStatus> ForkServerClient::WaitRemote(pid_t pid) {
  std::lock_guard<std::mutex> lock(mu_);
  FORKLIFT_RETURN_IF_ERROR(SendFrame(sock_.get(), EncodeWait(static_cast<int32_t>(pid))));
  FORKLIFT_ASSIGN_OR_RETURN(RecvResult rr, RecvFrame(sock_.get()));
  if (rr.eof) {
    return LogicalError("forkserver client: server closed during wait");
  }
  FORKLIFT_ASSIGN_OR_RETURN(WaitReply reply, DecodeWaitReply(rr.frame.payload));
  if (!reply.ok) {
    if (reply.err != 0) {
      return Err(Error(reply.err, "forkserver wait: " + reply.context));
    }
    return LogicalError("forkserver wait: " + reply.context);
  }
  return reply.status;
}

Result<pid_t> ForkServerBackend::Launch(const SpawnRequest& req) {
  if (client_ == nullptr) {
    return LogicalError("ForkServerBackend: no client");
  }
  return client_->LaunchRequest(req);
}

}  // namespace forklift
