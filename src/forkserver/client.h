// forklift/forkserver: the client side — talk to a zygote.
//
// RemoteChild mirrors spawn::Child for processes that are NOT our children
// (they belong to the server), so waiting is a protocol round-trip instead of
// waitpid. ForkServerClient is the pipelined protocol-v2 client: requests are
// tagged with a request_id and many may be in flight on one channel at once; a
// dedicated receiver thread matches out-of-order replies back to their
// issuers, so a slow kWait no longer head-of-line-blocks every other caller
// sharing the socket. LegacyForkServerClient keeps the v1 one-frame-at-a-time
// behavior (lock across the round trip) for v1 servers and as the baseline in
// throughput experiments. ForkServerBackend adapts either — or the sharded
// pool — to the SpawnBackend interface for fire-and-forget launches through a
// plain Spawner.
#ifndef SRC_FORKSERVER_CLIENT_H_
#define SRC_FORKSERVER_CLIENT_H_

#include <sys/types.h>

#include <atomic>
#include <condition_variable>
#include <csignal>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/common/syscall.h"
#include "src/common/unique_fd.h"
#include "src/forkserver/protocol.h"
#include "src/forkserver/wire.h"
#include "src/obs/export.h"
#include "src/spawn/backend.h"
#include "src/spawn/spawner.h"

namespace forklift {

// The spawn/wait surface a remote child needs from whatever launched it: a
// single pipelined channel, a legacy v1 channel, or the sharded pool all
// implement it, so RemoteChild and ForkServerBackend work against any.
class RemoteSpawnService {
 public:
  virtual ~RemoteSpawnService() = default;

  // Ships an already-resolved request; returns the remote pid.
  virtual Result<pid_t> LaunchRequest(const SpawnRequest& req) = 0;

  // Ships a burst of requests, returning one result per entry in order. The
  // default loops LaunchRequest; batch-capable transports override it to put
  // the whole burst in one kSpawnBatch frame (one writev, one route).
  virtual std::vector<Result<pid_t>> LaunchBatch(const std::vector<SpawnRequest>& reqs);

  // Blocks (via the server) until the child exits.
  virtual Result<ExitStatus> WaitRemote(pid_t pid) = 0;

  // Polls (via the server) for the child's exit, blocking at most
  // `timeout_seconds` (0 = pure poll); nullopt means still running. This is
  // the only safe liveness probe for a remote child: the server reaps it on
  // exit, after which the kernel may recycle the pid, so kill(pid, 0) can
  // report an unrelated process as "still running". Repeated calls for the
  // same pid are cheap — the underlying wait is parked server-side once and
  // re-polled. The default (v1 transports, which cannot park a wait without
  // stalling the channel) reports the poll as unsupported.
  virtual Result<std::optional<ExitStatus>> WaitRemoteFor(pid_t pid, double timeout_seconds);
};

// A process created on our behalf by the fork server. Exit status comes from
// the server, which is the actual parent.
class RemoteChild {
 public:
  RemoteChild() = default;
  RemoteChild(RemoteSpawnService* service, pid_t pid) : service_(service), pid_(pid) {}

  pid_t pid() const { return pid_; }
  bool valid() const { return pid_ > 0; }

  // Blocks (via the server) until the child exits.
  Result<ExitStatus> Wait();

  // kill(2) directly: pids are in our namespace even though parentage is not.
  Status Kill(int sig = SIGTERM);

 private:
  RemoteSpawnService* service_ = nullptr;
  pid_t pid_ = -1;
};

// Pipelined protocol-v2 client. Thread-safe: any number of threads may issue
// requests concurrently; each request gets a fresh request_id and a
// completion slot, and the receiver thread completes slots as replies
// arrive — in whatever order the server answers. Completed slots are
// recycled, so the steady-state hot path allocates nothing.
//
// The send path is a flat-combining submission queue: each submitter encodes
// its frame (length prefix inline) into a recycled buffer and enqueues it.
// The first submitter to find no active flusher becomes the flusher and
// drains the queue — everything queued by then, including frames other
// threads appended while it was encoding — in one writev per run. A lone
// request is never delayed: with an empty queue the submitter flushes its own
// frame immediately. Frames carrying fds are sent synchronously (the fds are
// borrowed): the pending run is flushed first for ordering, then the frame
// goes out as a single sendmsg with the fds attached to its own first bytes.
class ForkServerClient final : public RemoteSpawnService {
  struct Slot;

 public:
  // Takes ownership of the client end of the server's socket and starts the
  // receiver thread.
  explicit ForkServerClient(UniqueFd sock);
  ~ForkServerClient() override;
  ForkServerClient(const ForkServerClient&) = delete;
  ForkServerClient& operator=(const ForkServerClient&) = delete;

  // Connects to a daemon listening on an AF_UNIX path (ForkServer::Listen /
  // the forkliftd tool).
  static Result<std::unique_ptr<ForkServerClient>> ConnectPath(const std::string& path);

  // A single in-flight request. Await* blocks until the reply (or channel
  // death) and consumes the handle; destroying an un-awaited handle is safe —
  // the reply is discarded when it arrives.
  class PendingReply {
   public:
    PendingReply() = default;
    PendingReply(PendingReply&& other) noexcept;
    PendingReply& operator=(PendingReply&& other) noexcept;
    PendingReply(const PendingReply&) = delete;
    PendingReply& operator=(const PendingReply&) = delete;
    ~PendingReply();

    bool valid() const { return client_ != nullptr; }
    Result<pid_t> AwaitPid();                // expects kSpawnReply
    Result<ExitStatus> AwaitExit();          // expects kWaitReply
    Result<std::string> AwaitStats();        // expects kStatsReply; returns the body
    Status AwaitControl(MsgType expected);   // kPong / kShutdownAck / kNewChannelAck

    // Timed variant of AwaitExit. Timeout returns nullopt and KEEPS the
    // handle valid: the server answers each parked kWait exactly once, so
    // abandoning the request on timeout would lose the exit status — the
    // same in-flight wait stays collectable by a later Await*. Completion
    // (value or transport death) consumes the handle as usual.
    Result<std::optional<ExitStatus>> AwaitExitFor(double timeout_seconds);

   private:
    friend class ForkServerClient;
    PendingReply(ForkServerClient* client, Slot* slot) : client_(client), slot_(slot) {}

    ForkServerClient* client_ = nullptr;
    Slot* slot_ = nullptr;
  };

  // --- pipelined API: submit without waiting, await later ---
  // `request_id` 0 allocates a fresh process-wide id (obs::NextRequestId);
  // a routed caller passes its trace id so the frame on the wire carries it.
  Result<PendingReply> LaunchAsync(const SpawnRequest& req, uint64_t request_id = 0);
  Result<PendingReply> WaitAsync(pid_t pid);
  Result<PendingReply> PingAsync();
  Result<PendingReply> StatsAsync(obs::StatsFormat format);

  // Ships a burst of spawns as one kSpawnBatch frame (one encode, one wire
  // submission, one route through a sharded pool). Returns one PendingReply
  // per request, in order; entry i completes under request_id first_id + i.
  // `first_id` 0 allocates a contiguous range via obs::NextRequestIdRange.
  // Fails whole (no slots registered) on encode errors; the burst must fit
  // one frame (≤ kMaxSpawnBatch entries, ≤ kMaxFdsPerFrame total fds) — the
  // synchronous LaunchBatch chunks arbitrary bursts for you.
  Result<std::vector<PendingReply>> LaunchBatchAsync(const std::vector<SpawnRequest>& reqs,
                                                     uint64_t first_id = 0);

  // --- synchronous API (submit + await) ---

  // Ships the spawner's resolved request to the server. Pipe stdio is not
  // supported over the wire (create pipes locally and use Stdio::Fd /
  // PassFd — the descriptors are transferred via SCM_RIGHTS).
  Result<RemoteChild> Spawn(const Spawner& spawner);

  // Round-trip liveness probe.
  Status Ping();

  // Fetches the server's rendered metrics export (kStats round trip).
  Result<std::string> Stats(obs::StatsFormat format);

  // Asks the server to exit after acknowledging.
  Status Shutdown();

  // Used by RemoteChild. The wait parks server-side on the child's pidfd
  // watch, so it blocks only the calling thread, not the channel. Adopts a
  // wait already parked by WaitRemoteFor for the same pid, so the two can be
  // mixed freely — the server serves each child's exit status exactly once.
  Result<ExitStatus> WaitRemote(pid_t pid) override;

  // Timed/non-blocking exit poll. The first call for a pid submits one kWait
  // and parks the handle; later calls re-poll the same parked wait until it
  // completes (the server answers it exactly once, so abandoning it between
  // polls would lose the exit status). Concurrent polls serialize.
  Result<std::optional<ExitStatus>> WaitRemoteFor(pid_t pid, double timeout_seconds) override;

  // Low-level: ship an already-resolved request; returns the remote pid.
  Result<pid_t> LaunchRequest(const SpawnRequest& req) override;

  // Synchronous batch: chunks the burst to fit per-frame caps, ships each
  // chunk as one kSpawnBatch frame, awaits every reply. One result per
  // request, in order.
  std::vector<Result<pid_t>> LaunchBatch(const std::vector<SpawnRequest>& reqs) override;

  // Opens an additional private channel to the same server (the new socket
  // travels over this one via SCM_RIGHTS). With pipelining one channel rarely
  // needs company, but private channels still isolate fd-carrying spawns.
  Result<std::unique_ptr<ForkServerClient>> NewChannel();

  // Requests in flight (the sharded router's load metric). Lock-free: a
  // relaxed atomic mirror of pending_.size(), so routers polling every shard
  // per spawn never contend with completion traffic.
  size_t outstanding() const { return outstanding_.load(std::memory_order_relaxed); }

  // True once the transport failed or the server closed the channel; every
  // subsequent submit fails fast with the recorded cause.
  bool dead() const;

 private:
  Result<PendingReply> SubmitSpawn(const SpawnRequest& req, uint64_t request_id);
  Result<PendingReply> SubmitWait(pid_t pid);
  Result<PendingReply> SubmitControl(MsgType type, const std::vector<int>& fds);
  Result<PendingReply> SubmitStats(obs::StatsFormat format);

  // --- submission queue ---
  // Takes a recycled encode buffer (or a fresh one) for a framed encode.
  std::string TakeBuf();
  void RecycleBuf(std::string buf);
  // Enqueues a complete frame (length prefix included); becomes the flusher
  // if none is active. Transport failures are not reported here — they kill
  // the channel (Die) and surface through every pending slot's Await.
  void SubmitFramed(std::string frame);
  // Synchronous fd-carrying submit: waits out any active flusher, drains the
  // queue for ordering, then sends `frame` (prefix included, `fds` attached
  // to its first bytes) as one sendmsg. Returns the transport status so the
  // caller can recycle its buffer either way.
  Status SubmitFdFrame(std::string_view frame, const std::vector<int>& fds);
  // Drains q_ in gathered runs; called with q_mu_ held and flushing_ set,
  // releases the lock around each writev. On transport failure kills the
  // channel and discards the queue.
  void DrainQueue(std::unique_lock<std::mutex>& lock);

  // Registers a slot for the given id — 0 allocates a fresh one (mu_).
  Slot* AcquireSlotLocked(uint64_t* id_out, uint64_t explicit_id);
  void FreeSlotLocked(Slot* slot);
  // Unregisters + frees a slot whose frame never hit the wire.
  void AbortSubmit(uint64_t id, Slot* slot);

  Result<pid_t> AwaitSpawn(Slot* slot);
  Result<ExitStatus> AwaitWait(Slot* slot);
  Result<std::string> AwaitStatsSlot(Slot* slot);
  Result<std::optional<ExitStatus>> AwaitWaitFor(Slot* slot, double timeout_seconds);
  Status AwaitControlSlot(Slot* slot, MsgType expected);
  void DiscardSlot(Slot* slot);  // un-awaited handle destroyed

  void ReceiverLoop();
  void DispatchFrame(const struct Frame& frame);
  // Fails every pending request and marks the channel dead.
  void Die(const Status& cause);

  UniqueFd sock_;

  // Send side: the flat-combining submission queue. q_mu_ protects the queue
  // and flusher election only — it is never held across a syscall (DrainQueue
  // releases it around each writev) and never taken together with mu_.
  std::mutex q_mu_;
  std::condition_variable q_cv_;  // signaled when flushing_ clears
  std::vector<std::string> q_;    // complete frames awaiting the wire
  std::vector<std::string> spare_bufs_;  // recycled encode buffers
  bool flushing_ = false;

  // Completion state shared with the receiver thread. Request ids come from
  // the process-wide obs::NextRequestId counter (they double as trace ids),
  // so there is no per-channel id state.
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<uint64_t, Slot*> pending_;
  std::vector<std::unique_ptr<Slot>> slots_;  // owns every slot ever created
  std::vector<Slot*> free_;                   // completed slots ready for reuse
  std::atomic<size_t> outstanding_{0};        // mirrors pending_.size()
  bool dead_ = false;
  Status death_ = Status::Ok();

  // WaitRemoteFor's parked waits: at most one in-flight kWait per polled pid,
  // held across calls. Declared after mu_ (PendingReply destruction discards
  // its slot under mu_); parked_mu_ is never taken while holding mu_ or q_mu_.
  std::mutex parked_mu_;
  std::unordered_map<pid_t, PendingReply> parked_;

  std::thread receiver_;  // started last, joined first
};

// The pre-pipelining client: one v1 frame in flight, a mutex held across the
// full round trip. Kept for v1-only servers and as the head-of-line-blocking
// baseline that bench/forkserver_throughput measures the v2 data plane
// against.
class LegacyForkServerClient final : public RemoteSpawnService {
 public:
  explicit LegacyForkServerClient(UniqueFd sock) : sock_(std::move(sock)) {}

  static Result<std::unique_ptr<LegacyForkServerClient>> ConnectPath(const std::string& path);

  Result<RemoteChild> Spawn(const Spawner& spawner);
  Status Ping();
  Status Shutdown();
  Result<ExitStatus> WaitRemote(pid_t pid) override;
  Result<pid_t> LaunchRequest(const SpawnRequest& req) override;

 private:
  std::mutex mu_;
  UniqueFd sock_;
  // Same shared scratch-encode helpers as the pipelined client (the v1 meta
  // just leaves request_id at 0); mu_ is held across the round trip anyway,
  // so it also serializes the scratch.
  WireWriter scratch_;
  std::vector<int> scratch_fds_;
};

// SpawnBackend adapter: lets `Spawner::SetCustomBackend(&backend)` route a
// spawn through the zygote (single channel or sharded pool). The returned pid
// is NOT waitable by the caller (the server is the parent) — use
// ForkServerClient::Spawn for supervised children; the adapter exists for
// latency experiments and fire-and-forget.
class ForkServerBackend : public SpawnBackend {
 public:
  explicit ForkServerBackend(RemoteSpawnService* service) : service_(service) {}

  Result<pid_t> Launch(const SpawnRequest& req) override;
  const char* Name() const override { return "forkserver"; }

 private:
  RemoteSpawnService* service_;
};

}  // namespace forklift

#endif  // SRC_FORKSERVER_CLIENT_H_
