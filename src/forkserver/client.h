// forklift/forkserver: the client side — talk to a zygote.
//
// RemoteChild mirrors spawn::Child for processes that are NOT our children
// (they belong to the server), so waiting is a protocol round-trip instead of
// waitpid. ForkServerBackend adapts the client to the SpawnBackend interface
// for fire-and-forget launches through a plain Spawner.
#ifndef SRC_FORKSERVER_CLIENT_H_
#define SRC_FORKSERVER_CLIENT_H_

#include <sys/types.h>

#include <memory>
#include <mutex>

#include "src/common/result.h"
#include "src/common/syscall.h"
#include "src/common/unique_fd.h"
#include "src/spawn/backend.h"
#include "src/spawn/spawner.h"

namespace forklift {

class ForkServerClient;

// A process created on our behalf by the fork server. Exit status comes from
// the server, which is the actual parent.
class RemoteChild {
 public:
  RemoteChild() = default;
  RemoteChild(ForkServerClient* client, pid_t pid) : client_(client), pid_(pid) {}

  pid_t pid() const { return pid_; }
  bool valid() const { return pid_ > 0; }

  // Blocks (via the server) until the child exits.
  Result<ExitStatus> Wait();

  // kill(2) directly: pids are in our namespace even though parentage is not.
  Status Kill(int sig = 15);

 private:
  ForkServerClient* client_ = nullptr;
  pid_t pid_ = -1;
};

// Thread-safe client: requests are serialized over the single socket.
class ForkServerClient {
 public:
  // Takes ownership of the client end of the server's socket.
  explicit ForkServerClient(UniqueFd sock);

  // Connects to a daemon listening on an AF_UNIX path (ForkServer::Listen /
  // the forkliftd tool).
  static Result<std::unique_ptr<ForkServerClient>> ConnectPath(const std::string& path);

  // Ships the spawner's resolved request to the server. Pipe stdio is not
  // supported over the wire (create pipes locally and use Stdio::Fd /
  // PassFd — the descriptors are transferred via SCM_RIGHTS).
  Result<RemoteChild> Spawn(const Spawner& spawner);

  // Round-trip liveness probe.
  Status Ping();

  // Asks the server to exit after acknowledging.
  Status Shutdown();

  // Used by RemoteChild.
  Result<ExitStatus> WaitRemote(pid_t pid);

  // Low-level: ship an already-resolved request; returns the remote pid.
  Result<pid_t> LaunchRequest(const SpawnRequest& req);

  // Opens an additional private channel to the same server (the new socket
  // travels over this one via SCM_RIGHTS). Each channel serializes its own
  // requests, so one channel per thread removes all client-side contention.
  Result<std::unique_ptr<ForkServerClient>> NewChannel();

 private:
  std::mutex mu_;
  UniqueFd sock_;
};

// SpawnBackend adapter: lets `Spawner::SetCustomBackend(&backend)` route a
// spawn through the zygote. The returned pid is NOT waitable by the caller
// (the server is the parent) — use ForkServerClient::Spawn for supervised
// children; the adapter exists for latency experiments and fire-and-forget.
class ForkServerBackend : public SpawnBackend {
 public:
  explicit ForkServerBackend(ForkServerClient* client) : client_(client) {}

  Result<pid_t> Launch(const SpawnRequest& req) override;
  const char* Name() const override { return "forkserver"; }

 private:
  ForkServerClient* client_;
};

}  // namespace forklift

#endif  // SRC_FORKSERVER_CLIENT_H_
