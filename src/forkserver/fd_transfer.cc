#include "src/forkserver/fd_transfer.h"

#include <limits.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "src/common/syscall.h"
#include "src/faultinject/faultinject.h"
#include "src/obs/registry.h"

namespace forklift {

namespace {

// Wire syscall accounting. One counter per op so the bench can compute
// write-side syscalls per spawn; handles resolve once and the arena is shared
// across forked shards, so client- and server-side calls land in the same
// slots.
obs::Counter& WritevOps() {
  static obs::Counter c = obs::MetricsRegistry::Global().GetCounter(
      "forklift_wire_syscalls_total{op=\"writev\"}");
  return c;
}
obs::Counter& SendmsgOps() {
  static obs::Counter c = obs::MetricsRegistry::Global().GetCounter(
      "forklift_wire_syscalls_total{op=\"sendmsg\"}");
  return c;
}
obs::Counter& RecvmsgOps() {
  static obs::Counter c = obs::MetricsRegistry::Global().GetCounter(
      "forklift_wire_syscalls_total{op=\"recvmsg\"}");
  return c;
}

// Sends `len` bytes starting at `data`, attaching `fds` to the first segment.
Status SendAll(int sock, const void* data, size_t len, const std::vector<int>& fds) {
  const char* p = static_cast<const char*>(data);
  bool fds_pending = !fds.empty();
  size_t sent = 0;
  while (sent < len || fds_pending) {
    auto inj = fault::Check("fdtransfer.sendmsg", fault::Op::kSendmsg);

    msghdr msg{};
    iovec iov{};
    iov.iov_base = const_cast<char*>(p + sent);
    iov.iov_len = len - sent;
    // A short send must still carry the fds: SCM_RIGHTS rides whatever first
    // segment succeeds, however small.
    if (inj.is_short() && iov.iov_len > 1) iov.iov_len = 1;
    msg.msg_iov = &iov;
    msg.msg_iovlen = 1;

    alignas(cmsghdr) char cbuf[CMSG_SPACE(sizeof(int) * kMaxFdsPerFrame)];
    if (fds_pending) {
      msg.msg_control = cbuf;
      msg.msg_controllen = CMSG_SPACE(sizeof(int) * fds.size());
      cmsghdr* cmsg = CMSG_FIRSTHDR(&msg);
      cmsg->cmsg_level = SOL_SOCKET;
      cmsg->cmsg_type = SCM_RIGHTS;
      cmsg->cmsg_len = CMSG_LEN(sizeof(int) * fds.size());
      std::memcpy(CMSG_DATA(cmsg), fds.data(), sizeof(int) * fds.size());
    }

    ssize_t n;
    if (inj.is_errno()) {
      n = -1;
      errno = inj.err;
    } else {
      n = ::sendmsg(sock, &msg, MSG_NOSIGNAL);
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Non-blocking peer socket with a full buffer: wait for space and
        // resume — a frame must never be abandoned halfway.
        FORKLIFT_RETURN_IF_ERROR(WaitFdWritable(sock));
        continue;
      }
      return ErrnoError("sendmsg");
    }
    SendmsgOps().Increment();
    fds_pending = false;  // ancillary data goes out with the first successful segment
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

// Receives exactly `len` bytes; any SCM_RIGHTS descriptors encountered are
// appended to `fds` (already wrapped for leak-safety). Returns bytes received
// (< len only if EOF).
Result<size_t> RecvAll(int sock, void* data, size_t len, std::vector<UniqueFd>* fds) {
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < len) {
    auto inj = fault::Check("fdtransfer.recvmsg", fault::Op::kRecvmsg);

    msghdr msg{};
    iovec iov{};
    iov.iov_base = p + got;
    iov.iov_len = len - got;
    // A short receive still delivers the ancillary payload attached to the
    // byte it reads — the fd-collection loop below must cope either way.
    if (inj.is_short() && iov.iov_len > 1) iov.iov_len = 1;
    msg.msg_iov = &iov;
    msg.msg_iovlen = 1;
    alignas(cmsghdr) char cbuf[CMSG_SPACE(sizeof(int) * kMaxFdsPerFrame)];
    msg.msg_control = cbuf;
    msg.msg_controllen = sizeof(cbuf);

    ssize_t n;
    if (inj.is_errno()) {
      n = -1;
      errno = inj.err;
    } else {
      n = ::recvmsg(sock, &msg, MSG_CMSG_CLOEXEC);
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        FORKLIFT_RETURN_IF_ERROR(WaitFdReadable(sock));
        continue;
      }
      return ErrnoError("recvmsg");
    }
    RecvmsgOps().Increment();
    for (cmsghdr* cmsg = CMSG_FIRSTHDR(&msg); cmsg != nullptr; cmsg = CMSG_NXTHDR(&msg, cmsg)) {
      if (cmsg->cmsg_level == SOL_SOCKET && cmsg->cmsg_type == SCM_RIGHTS) {
        size_t nfds = (cmsg->cmsg_len - CMSG_LEN(0)) / sizeof(int);
        const int* cfds = reinterpret_cast<const int*>(CMSG_DATA(cmsg));
        for (size_t i = 0; i < nfds; ++i) {
          fds->emplace_back(cfds[i]);
        }
      }
    }
    if ((msg.msg_flags & MSG_CTRUNC) != 0) {
      return LogicalError("recvmsg: ancillary data truncated (too many fds?)");
    }
    if (n == 0) {
      break;  // EOF
    }
    got += static_cast<size_t>(n);
  }
  return got;
}

}  // namespace

Result<uint64_t> SendGathered(int sock, struct iovec* iov, size_t iovcnt,
                              const std::vector<int>& fds, size_t* sent_bytes) {
  if (sent_bytes != nullptr) *sent_bytes = 0;
  if (fds.size() > kMaxFdsPerFrame) {
    return LogicalError("SendGathered: too many fds (" + std::to_string(fds.size()) + ")");
  }
  size_t total = 0;
  for (size_t i = 0; i < iovcnt; ++i) total += iov[i].iov_len;
  if (total == 0) {
    if (!fds.empty()) {
      return LogicalError("SendGathered: fds require at least one byte");
    }
    return static_cast<uint64_t>(0);
  }

  if (fds.empty()) {
    auto r = WritevFull(sock, iov, iovcnt);
    if (!r.ok()) {
      return Err(r.error());
    }
    WritevOps().Increment(*r);
    if (sent_bytes != nullptr) *sent_bytes = total;
    return *r;
  }

  // Descriptor-carrying run: sendmsg so the ancillary data attaches to the
  // first bytes that make it out (which, because the caller puts the carrying
  // frame first, are that frame's own first bytes).
  uint64_t syscalls = 0;
  size_t idx = 0;
  size_t sent = 0;
  bool fds_pending = true;
  while (idx < iovcnt) {
    if (iov[idx].iov_len == 0) {
      ++idx;
      continue;
    }
    auto inj = fault::Check("wire.sendmsg_fds", fault::Op::kSendmsg);

    msghdr msg{};
    iovec short_iov{};
    if (inj.is_short()) {
      // Worst case: one byte goes out — the fds still ride it.
      short_iov.iov_base = iov[idx].iov_base;
      short_iov.iov_len = 1;
      msg.msg_iov = &short_iov;
      msg.msg_iovlen = 1;
    } else {
      msg.msg_iov = iov + idx;
      msg.msg_iovlen = static_cast<size_t>(
          std::min(iovcnt - idx, static_cast<size_t>(IOV_MAX)));
    }

    alignas(cmsghdr) char cbuf[CMSG_SPACE(sizeof(int) * kMaxFdsPerFrame)];
    if (fds_pending) {
      msg.msg_control = cbuf;
      msg.msg_controllen = CMSG_SPACE(sizeof(int) * fds.size());
      cmsghdr* cmsg = CMSG_FIRSTHDR(&msg);
      cmsg->cmsg_level = SOL_SOCKET;
      cmsg->cmsg_type = SCM_RIGHTS;
      cmsg->cmsg_len = CMSG_LEN(sizeof(int) * fds.size());
      std::memcpy(CMSG_DATA(cmsg), fds.data(), sizeof(int) * fds.size());
    }

    ssize_t n;
    if (inj.is_errno()) {
      n = -1;
      errno = inj.err;
    } else {
      n = ::sendmsg(sock, &msg, MSG_NOSIGNAL);
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        FORKLIFT_RETURN_IF_ERROR(WaitFdWritable(sock));
        continue;
      }
      if (sent_bytes != nullptr) *sent_bytes = sent;
      return ErrnoError("sendmsg");
    }
    SendmsgOps().Increment();
    ++syscalls;
    fds_pending = false;
    sent += static_cast<size_t>(n);
    size_t done = static_cast<size_t>(n);
    while (done > 0 && idx < iovcnt) {
      if (done >= iov[idx].iov_len) {
        done -= iov[idx].iov_len;
        iov[idx].iov_len = 0;
        ++idx;
      } else {
        iov[idx].iov_base = static_cast<char*>(iov[idx].iov_base) + done;
        iov[idx].iov_len -= done;
        done = 0;
      }
    }
  }
  if (sent_bytes != nullptr) *sent_bytes = sent;
  return syscalls;
}

Status SendFrame(int sock, std::string_view payload, const std::vector<int>& fds) {
  if (fds.size() > kMaxFdsPerFrame) {
    return LogicalError("SendFrame: too many fds (" + std::to_string(fds.size()) + ")");
  }
  if (payload.empty() && !fds.empty()) {
    return LogicalError("SendFrame: fds require a non-empty payload");
  }
  uint32_t len = static_cast<uint32_t>(payload.size());
  iovec iov[2];
  iov[0].iov_base = &len;
  iov[0].iov_len = sizeof(len);
  iov[1].iov_base = const_cast<char*>(payload.data());
  iov[1].iov_len = payload.size();
  size_t iovcnt = payload.empty() ? 1 : 2;

  size_t sent = 0;
  auto r = SendGathered(sock, iov, iovcnt, fds, &sent);
  if (r.ok()) {
    return Status::Ok();
  }
  if (!fds.empty() && sent == 0) {
    // Combined prefix+payload+fds sendmsg failed cleanly before any byte hit
    // the wire; retry in the legacy two-syscall shape so a fault confined to
    // the combined path degrades to the slow path instead of failing the
    // frame.
    FORKLIFT_RETURN_IF_ERROR(SendAll(sock, &len, sizeof(len), {}));
    return SendAll(sock, payload.data(), payload.size(), fds);
  }
  return Err(r.error());
}

void FrameBuffer::Append(const char* data, size_t n, std::vector<UniqueFd> fds) {
  if (!fds.empty() && n > 0) {
    // Stamp the fds with the gulp's LAST byte, not its first. recvmsg merges
    // plain segments from the same sender into the gulp AHEAD of the
    // fd-carrying segment and stops right after it, so the gulp may begin
    // before the carrier frame — but its last byte always lies inside the
    // carrier (the fds are delivered by the gulp that reads the carrying
    // segment's first chunk, and nothing follows it in that gulp).
    uint64_t off = base_off_ + buf_.size() + n - 1;
    for (auto& fd : fds) {
      fds_.push_back(Arrival{off, std::move(fd)});
    }
  }
  buf_.append(data, n);
}

Result<bool> FrameBuffer::Next(Frame* out, size_t max_payload) {
  size_t avail = buf_.size() - pos_;
  if (avail < sizeof(uint32_t)) {
    CompactIfWorthwhile();
    return false;
  }
  uint32_t len = 0;
  std::memcpy(&len, buf_.data() + pos_, sizeof(len));
  if (len > max_payload) {
    return LogicalError("FrameBuffer: payload length " + std::to_string(len) +
                        " exceeds cap");
  }
  if (avail < sizeof(uint32_t) + len) {
    CompactIfWorthwhile();
    return false;
  }
  uint64_t frame_end = base_off_ + pos_ + sizeof(uint32_t) + len;
  out->payload.assign(buf_.data() + pos_ + sizeof(uint32_t), len);
  out->fds.clear();
  while (!fds_.empty() && fds_.front().off < frame_end) {
    out->fds.push_back(std::move(fds_.front().fd));
    fds_.pop_front();
  }
  if (out->fds.size() > kMaxFdsPerFrame) {
    return LogicalError("FrameBuffer: frame carries too many fds (" +
                        std::to_string(out->fds.size()) + ")");
  }
  pos_ += sizeof(uint32_t) + len;
  if (pos_ == buf_.size()) {
    base_off_ += pos_;
    buf_.clear();
    pos_ = 0;
  }
  return true;
}

void FrameBuffer::CompactIfWorthwhile() {
  // Drop the consumed prefix when it dominates the buffer, so a long-lived
  // channel doesn't accumulate dead bytes while partial frames trickle in.
  if (pos_ >= (64u << 10) && pos_ >= buf_.size() / 2) {
    base_off_ += pos_;
    buf_.erase(0, pos_);
    pos_ = 0;
  }
}

Result<DrainStatus> DrainSocketInto(int sock, FrameBuffer* fb, size_t max_bytes) {
  DrainStatus st;
  char buf[64 << 10];
  size_t want = std::min(max_bytes, sizeof(buf));
  if (want == 0) want = 1;
  std::vector<UniqueFd> fds;
  for (;;) {
    auto inj = fault::Check("wire.recvmsg_drain", fault::Op::kRecvmsg);

    msghdr msg{};
    iovec iov{};
    iov.iov_base = buf;
    iov.iov_len = inj.is_short() ? 1 : want;
    msg.msg_iov = &iov;
    msg.msg_iovlen = 1;
    alignas(cmsghdr) char cbuf[CMSG_SPACE(sizeof(int) * kMaxFdsPerFrame)];
    msg.msg_control = cbuf;
    msg.msg_controllen = sizeof(cbuf);

    ssize_t n;
    if (inj.is_errno()) {
      n = -1;
      errno = inj.err;
    } else {
      n = ::recvmsg(sock, &msg, MSG_CMSG_CLOEXEC);
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        st.would_block = true;
        return st;
      }
      return ErrnoError("recvmsg");
    }
    RecvmsgOps().Increment();
    for (cmsghdr* cmsg = CMSG_FIRSTHDR(&msg); cmsg != nullptr;
         cmsg = CMSG_NXTHDR(&msg, cmsg)) {
      if (cmsg->cmsg_level == SOL_SOCKET && cmsg->cmsg_type == SCM_RIGHTS) {
        size_t nfds = (cmsg->cmsg_len - CMSG_LEN(0)) / sizeof(int);
        const int* cfds = reinterpret_cast<const int*>(CMSG_DATA(cmsg));
        for (size_t i = 0; i < nfds; ++i) {
          fds.emplace_back(cfds[i]);
        }
      }
    }
    if ((msg.msg_flags & MSG_CTRUNC) != 0) {
      return LogicalError("recvmsg: ancillary data truncated (too many fds?)");
    }
    if (n == 0) {
      st.eof = true;
      return st;
    }
    fb->Append(buf, static_cast<size_t>(n), std::move(fds));
    st.bytes = static_cast<size_t>(n);
    return st;
  }
}

Status RecvFrameInto(int sock, RecvResult* out, size_t max_payload) {
  out->frame.fds.clear();
  out->frame.payload.clear();  // keeps capacity for the next frame
  out->eof = false;
  uint32_t len = 0;
  FORKLIFT_ASSIGN_OR_RETURN(size_t got, RecvAll(sock, &len, sizeof(len), &out->frame.fds));
  if (got == 0) {
    out->eof = true;
    return Status::Ok();
  }
  if (got != sizeof(len)) {
    return LogicalError("RecvFrame: truncated length prefix");
  }
  if (len > max_payload) {
    return LogicalError("RecvFrame: payload length " + std::to_string(len) + " exceeds cap");
  }
  out->frame.payload.resize(len);
  if (len > 0) {
    FORKLIFT_ASSIGN_OR_RETURN(size_t body,
                              RecvAll(sock, out->frame.payload.data(), len, &out->frame.fds));
    if (body != len) {
      return LogicalError("RecvFrame: truncated payload");
    }
  }
  return Status::Ok();
}

Result<RecvResult> RecvFrame(int sock, size_t max_payload) {
  RecvResult out;
  FORKLIFT_RETURN_IF_ERROR(RecvFrameInto(sock, &out, max_payload));
  return out;
}

}  // namespace forklift
