#include "src/forkserver/fd_transfer.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/common/syscall.h"
#include "src/faultinject/faultinject.h"

namespace forklift {

namespace {

// Sends `len` bytes starting at `data`, attaching `fds` to the first segment.
Status SendAll(int sock, const void* data, size_t len, const std::vector<int>& fds) {
  const char* p = static_cast<const char*>(data);
  bool fds_pending = !fds.empty();
  size_t sent = 0;
  while (sent < len || fds_pending) {
    auto inj = fault::Check("fdtransfer.sendmsg", fault::Op::kSendmsg);

    msghdr msg{};
    iovec iov{};
    iov.iov_base = const_cast<char*>(p + sent);
    iov.iov_len = len - sent;
    // A short send must still carry the fds: SCM_RIGHTS rides whatever first
    // segment succeeds, however small.
    if (inj.is_short() && iov.iov_len > 1) iov.iov_len = 1;
    msg.msg_iov = &iov;
    msg.msg_iovlen = 1;

    alignas(cmsghdr) char cbuf[CMSG_SPACE(sizeof(int) * kMaxFdsPerFrame)];
    if (fds_pending) {
      msg.msg_control = cbuf;
      msg.msg_controllen = CMSG_SPACE(sizeof(int) * fds.size());
      cmsghdr* cmsg = CMSG_FIRSTHDR(&msg);
      cmsg->cmsg_level = SOL_SOCKET;
      cmsg->cmsg_type = SCM_RIGHTS;
      cmsg->cmsg_len = CMSG_LEN(sizeof(int) * fds.size());
      std::memcpy(CMSG_DATA(cmsg), fds.data(), sizeof(int) * fds.size());
    }

    ssize_t n;
    if (inj.is_errno()) {
      n = -1;
      errno = inj.err;
    } else {
      n = ::sendmsg(sock, &msg, MSG_NOSIGNAL);
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Non-blocking peer socket with a full buffer: wait for space and
        // resume — a frame must never be abandoned halfway.
        FORKLIFT_RETURN_IF_ERROR(WaitFdWritable(sock));
        continue;
      }
      return ErrnoError("sendmsg");
    }
    fds_pending = false;  // ancillary data goes out with the first successful segment
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

// Receives exactly `len` bytes; any SCM_RIGHTS descriptors encountered are
// appended to `fds` (already wrapped for leak-safety). Returns bytes received
// (< len only if EOF).
Result<size_t> RecvAll(int sock, void* data, size_t len, std::vector<UniqueFd>* fds) {
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < len) {
    auto inj = fault::Check("fdtransfer.recvmsg", fault::Op::kRecvmsg);

    msghdr msg{};
    iovec iov{};
    iov.iov_base = p + got;
    iov.iov_len = len - got;
    // A short receive still delivers the ancillary payload attached to the
    // byte it reads — the fd-collection loop below must cope either way.
    if (inj.is_short() && iov.iov_len > 1) iov.iov_len = 1;
    msg.msg_iov = &iov;
    msg.msg_iovlen = 1;
    alignas(cmsghdr) char cbuf[CMSG_SPACE(sizeof(int) * kMaxFdsPerFrame)];
    msg.msg_control = cbuf;
    msg.msg_controllen = sizeof(cbuf);

    ssize_t n;
    if (inj.is_errno()) {
      n = -1;
      errno = inj.err;
    } else {
      n = ::recvmsg(sock, &msg, MSG_CMSG_CLOEXEC);
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        FORKLIFT_RETURN_IF_ERROR(WaitFdReadable(sock));
        continue;
      }
      return ErrnoError("recvmsg");
    }
    for (cmsghdr* cmsg = CMSG_FIRSTHDR(&msg); cmsg != nullptr; cmsg = CMSG_NXTHDR(&msg, cmsg)) {
      if (cmsg->cmsg_level == SOL_SOCKET && cmsg->cmsg_type == SCM_RIGHTS) {
        size_t nfds = (cmsg->cmsg_len - CMSG_LEN(0)) / sizeof(int);
        const int* cfds = reinterpret_cast<const int*>(CMSG_DATA(cmsg));
        for (size_t i = 0; i < nfds; ++i) {
          fds->emplace_back(cfds[i]);
        }
      }
    }
    if ((msg.msg_flags & MSG_CTRUNC) != 0) {
      return LogicalError("recvmsg: ancillary data truncated (too many fds?)");
    }
    if (n == 0) {
      break;  // EOF
    }
    got += static_cast<size_t>(n);
  }
  return got;
}

}  // namespace

Status SendFrame(int sock, std::string_view payload, const std::vector<int>& fds) {
  if (fds.size() > kMaxFdsPerFrame) {
    return LogicalError("SendFrame: too many fds (" + std::to_string(fds.size()) + ")");
  }
  uint32_t len = static_cast<uint32_t>(payload.size());
  // Length prefix first (no fds attached), then payload with fds on its first
  // segment. Two sendmsg calls keep the framing logic trivial; the socket is
  // SOCK_STREAM so coalescing is irrelevant to correctness.
  FORKLIFT_RETURN_IF_ERROR(SendAll(sock, &len, sizeof(len), {}));
  if (payload.empty()) {
    if (!fds.empty()) {
      return LogicalError("SendFrame: fds require a non-empty payload");
    }
    return Status::Ok();
  }
  return SendAll(sock, payload.data(), payload.size(), fds);
}

Status RecvFrameInto(int sock, RecvResult* out, size_t max_payload) {
  out->frame.fds.clear();
  out->frame.payload.clear();  // keeps capacity for the next frame
  out->eof = false;
  uint32_t len = 0;
  FORKLIFT_ASSIGN_OR_RETURN(size_t got, RecvAll(sock, &len, sizeof(len), &out->frame.fds));
  if (got == 0) {
    out->eof = true;
    return Status::Ok();
  }
  if (got != sizeof(len)) {
    return LogicalError("RecvFrame: truncated length prefix");
  }
  if (len > max_payload) {
    return LogicalError("RecvFrame: payload length " + std::to_string(len) + " exceeds cap");
  }
  out->frame.payload.resize(len);
  if (len > 0) {
    FORKLIFT_ASSIGN_OR_RETURN(size_t body,
                              RecvAll(sock, out->frame.payload.data(), len, &out->frame.fds));
    if (body != len) {
      return LogicalError("RecvFrame: truncated payload");
    }
  }
  return Status::Ok();
}

Result<RecvResult> RecvFrame(int sock, size_t max_payload) {
  RecvResult out;
  FORKLIFT_RETURN_IF_ERROR(RecvFrameInto(sock, &out, max_payload));
  return out;
}

}  // namespace forklift
