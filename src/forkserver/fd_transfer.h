// forklift/forkserver: descriptor passing over AF_UNIX sockets (SCM_RIGHTS).
//
// A frame is a u32 byte-length followed by the payload; descriptors ride in
// the ancillary data of the payload's first segment. This is the channel that
// lets a fork-server child inherit the *client's* pipes — the capability that
// plain fork gets by ambient copying and spawn APIs must pass explicitly.
#ifndef SRC_FORKSERVER_FD_TRANSFER_H_
#define SRC_FORKSERVER_FD_TRANSFER_H_

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/unique_fd.h"

namespace forklift {

// Hard cap on descriptors per frame (kernel SCM_MAX_FD is 253; we stay lower
// and predictable).
inline constexpr size_t kMaxFdsPerFrame = 64;

struct Frame {
  std::string payload;
  std::vector<UniqueFd> fds;
};

// Sends payload + fds as one frame. `fds` are borrowed, not consumed.
Status SendFrame(int sock, std::string_view payload, const std::vector<int>& fds = {});

// Receives one frame. Returns an empty-payload frame with `eof == true` when
// the peer closed cleanly between frames. `max_payload` caps allocation.
struct RecvResult {
  Frame frame;
  bool eof = false;
};
Result<RecvResult> RecvFrame(int sock, size_t max_payload = 16u << 20);

// Same, but fills a caller-owned RecvResult so a long-lived receive loop can
// reuse the payload buffer's capacity across frames (zero steady-state
// allocations once the buffer has grown to the working frame size). `out` is
// reset (fds cleared, eof = false) before receiving.
Status RecvFrameInto(int sock, RecvResult* out, size_t max_payload = 16u << 20);

}  // namespace forklift

#endif  // SRC_FORKSERVER_FD_TRANSFER_H_
