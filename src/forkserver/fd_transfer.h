// forklift/forkserver: descriptor passing over AF_UNIX sockets (SCM_RIGHTS).
//
// A frame is a u32 byte-length followed by the payload; descriptors ride in
// the ancillary data attached to the frame's own first bytes. This is the
// channel that lets a fork-server child inherit the *client's* pipes — the
// capability that plain fork gets by ambient copying and spawn APIs must pass
// explicitly.
//
// The wire path is syscall-amortized: senders gather a run of frames into one
// writev (SendGathered), receivers drain whatever the socket holds in one
// recvmsg gulp (DrainSocketInto) and parse every complete frame out of the
// accumulated bytes (FrameBuffer). Descriptor attribution across gulps relies
// on AF_UNIX semantics: SCM_RIGHTS attaches to the first byte its sendmsg
// carries, and recvmsg stops right AFTER the segment that delivered ancillary
// data — but it happily merges same-sender plain segments in ahead of it. A
// gulp that collects fds may therefore begin before the carrying frame, but
// it always *ends* inside it, so fds are attributed by the gulp's last byte.
#ifndef SRC_FORKSERVER_FD_TRANSFER_H_
#define SRC_FORKSERVER_FD_TRANSFER_H_

#include <sys/uio.h>

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/unique_fd.h"

namespace forklift {

// Hard cap on descriptors per frame (kernel SCM_MAX_FD is 253; we stay lower
// and predictable).
inline constexpr size_t kMaxFdsPerFrame = 64;

struct Frame {
  std::string payload;
  std::vector<UniqueFd> fds;
};

// Sends payload + fds as one frame. `fds` are borrowed, not consumed. The
// length prefix, payload, and ancillary fds go out in a single writev/sendmsg;
// if the combined sendmsg fails outright before any byte is on the wire, the
// legacy two-syscall shape (prefix, then payload carrying the fds) is retried
// once so an injected fault on the combined path degrades instead of failing.
Status SendFrame(int sock, std::string_view payload, const std::vector<int>& fds = {});

// Writes every byte of `iov[0..iovcnt)` — typically a coalesced run of
// already-framed messages — attaching `fds` to the first bytes that make it
// out. Without fds this is one writev per run (faultinject site
// `syscall.writev_full`); with fds it is a sendmsg loop (site
// `wire.sendmsg_fds`) that resumes short writes at the interrupted iovec
// offset. Mutates `iov` to track progress. Returns the number of syscalls that
// moved bytes. `sent_bytes`, when non-null, receives the byte count delivered
// before any failure (SendFrame's fallback needs "did anything hit the wire").
Result<uint64_t> SendGathered(int sock, struct iovec* iov, size_t iovcnt,
                              const std::vector<int>& fds,
                              size_t* sent_bytes = nullptr);

// Reassembles frames from a byte stream that arrives in arbitrary gulps.
// Purely a parser — no I/O. Descriptors recorded by Append are attributed to
// the frame whose byte span contains their arrival offset (see file comment
// for why that is exactly the sending frame).
class FrameBuffer {
 public:
  // Records `n` bytes arriving at the current stream position; `fds` are the
  // descriptors the same recvmsg collected (attributed via the gulp's last
  // byte, which is always inside the frame that carried them).
  void Append(const char* data, size_t n, std::vector<UniqueFd> fds);

  // Extracts the next complete frame into `out` (payload buffer capacity is
  // reused). Returns false when more bytes are needed, an error on a hostile
  // length prefix or an over-cap descriptor count.
  Result<bool> Next(Frame* out, size_t max_payload = 16u << 20);

  // Bytes appended but not yet consumed by Next (a nonzero value at EOF means
  // the peer died mid-frame).
  size_t buffered() const { return buf_.size() - pos_; }

  // Descriptors awaiting attribution to a frame.
  size_t pending_fds() const { return fds_.size(); }

 private:
  void CompactIfWorthwhile();

  std::string buf_;
  size_t pos_ = 0;        // parse offset within buf_
  uint64_t base_off_ = 0; // absolute stream offset of buf_[0]
  struct Arrival {
    uint64_t off;  // absolute stream offset the carrying gulp started at
    UniqueFd fd;
  };
  std::deque<Arrival> fds_;
};

// One recvmsg gulp (up to `max_bytes`) appended into `fb`. Faultinject site
// `wire.recvmsg_drain`. would_block is only possible on O_NONBLOCK sockets;
// eof reports a clean peer close (whether mid-frame is for the caller to judge
// via fb->buffered()).
struct DrainStatus {
  size_t bytes = 0;
  bool eof = false;
  bool would_block = false;
};
Result<DrainStatus> DrainSocketInto(int sock, FrameBuffer* fb,
                                    size_t max_bytes = 64u << 10);

// Receives one frame. Returns an empty-payload frame with `eof == true` when
// the peer closed cleanly between frames. `max_payload` caps allocation.
struct RecvResult {
  Frame frame;
  bool eof = false;
};
Result<RecvResult> RecvFrame(int sock, size_t max_payload = 16u << 20);

// Same, but fills a caller-owned RecvResult so a long-lived receive loop can
// reuse the payload buffer's capacity across frames (zero steady-state
// allocations once the buffer has grown to the working frame size). `out` is
// reset (fds cleared, eof = false) before receiving.
Status RecvFrameInto(int sock, RecvResult* out, size_t max_payload = 16u << 20);

}  // namespace forklift

#endif  // SRC_FORKSERVER_FD_TRANSFER_H_
