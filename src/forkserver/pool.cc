#include "src/forkserver/pool.h"

#include <unistd.h>

#include <cerrno>

#include "src/common/syscall.h"
#include "src/spawn/service.h"
#include "src/spawn/spawner.h"

namespace forklift {

ShellWorkerPool::~ShellWorkerPool() {
  if (started_) {
    (void)Stop();
  }
}

Status ShellWorkerPool::Start(const Options& opts) {
  if (started_) {
    return LogicalError("ShellWorkerPool::Start called twice");
  }
  if (opts.workers == 0) {
    return LogicalError("ShellWorkerPool: need at least one worker");
  }
  if (!reactor_.has_value()) {
    FORKLIFT_ASSIGN_OR_RETURN(Reactor reactor, Reactor::Create());
    reactor_.emplace(std::move(reactor));
  }
  Spawner worker_template = Spawner("/bin/sh")
                                .Arg("-s")
                                .SetStdin(Stdio::Pipe())
                                .SetStdout(Stdio::Pipe())
                                .SetStderr(Stdio::Null())
                                .SetBackend(opts.backend);
  auto spawn_worker = [&]() -> Result<ProcessHandle> {
    if (opts.service != nullptr) {
      return opts.service->Spawn(worker_template);
    }
    FORKLIFT_ASSIGN_OR_RETURN(Child child, worker_template.Spawn());
    return ProcessHandle::FromChild(std::move(child));
  };
  for (size_t i = 0; i < opts.workers; ++i) {
    auto handle = spawn_worker();
    if (!handle.ok()) {
      (void)Stop();
      return Err(handle.error());
    }
    Worker w;
    w.child = std::move(handle).value();
    workers_.push_back(std::move(w));
  }
  // Arm the watches only once workers_ has its final size: the callbacks
  // index into the vector, so no reallocation may follow.
  for (size_t i = 0; i < workers_.size(); ++i) {
    auto watch = ChildWatch::Arm(*reactor_, workers_[i].child.pid(), [this, i] {
      workers_[i].healthy = false;
      (void)workers_[i].child.TryWait();
    });
    if (watch.ok()) {
      workers_[i].watch = std::move(*watch);
    }
  }
  started_ = true;
  return Status::Ok();
}

Result<ShellWorkerPool::TaskResult> ShellWorkerPool::ExecuteOn(Worker& w,
                                                               const std::string& command) {
  // Frame the task with a unique sentinel carrying the exit code; the worker
  // shell prints it after running the command, delimiting this task's output.
  // Refuse to write into a dead worker (avoids an EPIPE — or, if the caller
  // has not ignored SIGPIPE, a fatal signal — for the common crash case; a
  // worker dying mid-write is still reported as an error by WriteFull, so
  // callers should ignore SIGPIPE process-wide as with any pipe-heavy
  // library).
  auto exited = w.child.TryWait();
  if (!exited.ok()) {
    return Err(exited.error());
  }
  if (exited->has_value()) {
    w.healthy = false;
    return LogicalError("worker exited before task dispatch");
  }

  std::string sentinel = "__FORKLIFT_DONE_" + std::to_string(++task_seq_) + "_";
  // The task runs in a subshell so `exit`, cd, and variable changes cannot
  // alter (or kill) the persistent worker.
  std::string script =
      "(\n" + command + "\n)\nprintf '%s%d\\n' '" + sentinel + "' \"$?\"\n";
  FORKLIFT_RETURN_IF_ERROR(
      WriteFull(w.child.stdin_fd().get(), script.data(), script.size()));

  TaskResult result;
  std::string acc;
  char buf[4096];
  for (;;) {
    ssize_t n = ::read(w.child.stdout_fd().get(), buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      w.healthy = false;
      return ErrnoError("worker stdout read");
    }
    if (n == 0) {
      w.healthy = false;
      return LogicalError("worker exited mid-task");
    }
    acc.append(buf, static_cast<size_t>(n));
    size_t pos = acc.find(sentinel);
    if (pos != std::string::npos) {
      size_t nl = acc.find('\n', pos);
      if (nl == std::string::npos) {
        continue;  // sentinel line not complete yet
      }
      result.output = acc.substr(0, pos);
      result.exit_code = std::stoi(acc.substr(pos + sentinel.size(), nl - pos - sentinel.size()));
      ++tasks_executed_;
      return result;
    }
  }
}

Result<ShellWorkerPool::TaskResult> ShellWorkerPool::Execute(const std::string& command) {
  if (!started_) {
    return LogicalError("ShellWorkerPool: not started");
  }
  // Drain pending exit notifications (pidfd events) so workers that died
  // since the last call are already unhealthy when the round-robin runs.
  if (reactor_.has_value()) {
    (void)reactor_->PollOnce(0);
  }
  for (size_t attempts = 0; attempts < workers_.size(); ++attempts) {
    Worker& w = workers_[next_];
    next_ = (next_ + 1) % workers_.size();
    if (!w.healthy) {
      continue;
    }
    return ExecuteOn(w, command);
  }
  return LogicalError("ShellWorkerPool: no healthy workers");
}

Status ShellWorkerPool::Stop() {
  Status first_error;
  for (auto& w : workers_) {
    if (!w.child.valid()) {
      continue;
    }
    w.watch.Disarm();            // we reap explicitly below
    w.child.stdin_fd().Reset();  // EOF: sh -s exits
    auto st = w.child.WaitDeadline(5.0);
    if (!st.ok() || !st->has_value()) {
      (void)w.child.KillAndWait();
      if (first_error.ok() && !st.ok()) {
        first_error = Err(st.error());
      }
    }
  }
  workers_.clear();
  started_ = false;
  return first_error;
}

}  // namespace forklift
