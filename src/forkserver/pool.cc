#include "src/forkserver/pool.h"

#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <memory>
#include <utility>

#include "src/common/pipe.h"
#include "src/common/syscall.h"
#include "src/forkserver/client.h"
#include "src/spawn/service.h"
#include "src/spawn/spawner.h"

namespace forklift {

namespace {

// ProcessHandle::Impl for a batch-started remote worker. The worker belongs
// to the fork server, so every wait — blocking, poll, or deadline — is
// resolved through the server (WaitRemote / WaitRemoteFor). Probing the
// local pid table (kill(pid, 0)) would be wrong here: the server reaps the
// worker the moment it exits, after which the kernel may recycle the pid and
// the probe would report an unrelated process as our still-running worker.
class RemoteWorkerImpl final : public ProcessHandle::Impl {
 public:
  RemoteWorkerImpl(RemoteSpawnService* service, pid_t pid) : service_(service), pid_(pid) {}

  pid_t pid() const override { return pid_; }

  Result<ExitStatus> Wait() override {
    if (exited_.has_value()) {
      return *exited_;
    }
    FORKLIFT_ASSIGN_OR_RETURN(ExitStatus st, service_->WaitRemote(pid_));
    exited_ = st;
    return st;
  }

  Result<std::optional<ExitStatus>> TryWait() override { return PollFor(0); }

  Result<std::optional<ExitStatus>> WaitDeadline(double timeout_seconds) override {
    return PollFor(timeout_seconds);
  }

  Status Kill(int sig) override {
    // Re-probe through the server first: once it has reported the exit the
    // pid may already name a stranger. A worker exiting between this poll
    // and the kill is an inherent race, but the common stale-pid case —
    // signaling long after the server reaped — is closed.
    auto st = PollFor(0);
    if (!st.ok()) {
      return Err(st.error());
    }
    if (st.value().has_value()) {
      return LogicalError("remote worker already exited (pid may be recycled)");
    }
    if (::kill(pid_, sig) != 0) {
      return ErrnoError("kill remote worker");
    }
    return Status::Ok();
  }

 private:
  Result<std::optional<ExitStatus>> PollFor(double timeout_seconds) {
    if (exited_.has_value()) {
      return exited_;
    }
    FORKLIFT_ASSIGN_OR_RETURN(std::optional<ExitStatus> st,
                              service_->WaitRemoteFor(pid_, timeout_seconds));
    if (st.has_value()) {
      exited_ = st;
    }
    return st;
  }

  RemoteSpawnService* service_;
  pid_t pid_;
  // Exit status observed through the server; once set, the pid is dead to us
  // (and possibly recycled), so no further protocol or signal traffic.
  std::optional<ExitStatus> exited_;
};

}  // namespace

ShellWorkerPool::~ShellWorkerPool() {
  if (started_) {
    (void)Stop();
  }
}

Status ShellWorkerPool::Start(const Options& opts) {
  if (started_) {
    return LogicalError("ShellWorkerPool::Start called twice");
  }
  if (opts.workers == 0) {
    return LogicalError("ShellWorkerPool: need at least one worker");
  }
  if (!reactor_.has_value()) {
    FORKLIFT_ASSIGN_OR_RETURN(Reactor reactor, Reactor::Create());
    reactor_.emplace(std::move(reactor));
  }
  if (opts.remote != nullptr) {
    Status st = StartRemoteWorkers(opts);
    if (!st.ok()) {
      (void)Stop();
      return st;
    }
  } else {
    Spawner worker_template = Spawner("/bin/sh")
                                  .Arg("-s")
                                  .SetStdin(Stdio::Pipe())
                                  .SetStdout(Stdio::Pipe())
                                  .SetStderr(Stdio::Null())
                                  .SetBackend(opts.backend);
    auto spawn_worker = [&]() -> Result<ProcessHandle> {
      if (opts.service != nullptr) {
        return opts.service->Spawn(worker_template);
      }
      FORKLIFT_ASSIGN_OR_RETURN(Child child, worker_template.Spawn());
      return ProcessHandle::FromChild(std::move(child));
    };
    for (size_t i = 0; i < opts.workers; ++i) {
      auto handle = spawn_worker();
      if (!handle.ok()) {
        (void)Stop();
        return Err(handle.error());
      }
      Worker w;
      w.child = std::move(handle).value();
      workers_.push_back(std::move(w));
    }
  }
  // Arm the watches only once workers_ has its final size: the callbacks
  // index into the vector, so no reallocation may follow.
  for (size_t i = 0; i < workers_.size(); ++i) {
    auto watch = ChildWatch::Arm(*reactor_, workers_[i].child.pid(), [this, i] {
      workers_[i].healthy = false;
      (void)workers_[i].child.TryWait();
    });
    if (watch.ok()) {
      workers_[i].watch = std::move(*watch);
    }
  }
  started_ = true;
  return Status::Ok();
}

Status ShellWorkerPool::StartRemoteWorkers(const Options& opts) {
  // One kSpawnBatch launches the whole pool. The wire cannot carry pipe
  // stdio, so each worker's pipes are made locally and the child ends travel
  // as Stdio::Fd descriptors in the batch frame's SCM_RIGHTS payload; the
  // parent ends go onto the returned handles. N warm shells then cost one
  // coalesced submit instead of N spawn round trips.
  std::vector<Pipe> stdin_pipes;
  std::vector<Pipe> stdout_pipes;
  std::vector<SpawnRequest> reqs;
  stdin_pipes.reserve(opts.workers);
  stdout_pipes.reserve(opts.workers);
  reqs.reserve(opts.workers);
  for (size_t i = 0; i < opts.workers; ++i) {
    FORKLIFT_ASSIGN_OR_RETURN(Pipe in, MakePipe());
    FORKLIFT_ASSIGN_OR_RETURN(Pipe out, MakePipe());
    Spawner s = Spawner("/bin/sh")
                    .Arg("-s")
                    .SetStdin(Stdio::Fd(in.read_end.get()))
                    .SetStdout(Stdio::Fd(out.write_end.get()))
                    .SetStderr(Stdio::Null());
    FORKLIFT_ASSIGN_OR_RETURN(SpawnRequest req, s.BuildRequest());
    reqs.push_back(std::move(req));
    // The pipes must outlive the LaunchBatch call: the requests' fd plans
    // borrow these descriptors until the frame is encoded and sent.
    stdin_pipes.push_back(std::move(in));
    stdout_pipes.push_back(std::move(out));
  }
  std::vector<Result<pid_t>> pids = opts.remote->LaunchBatch(reqs);
  Status first_error;
  for (size_t i = 0; i < pids.size(); ++i) {
    if (!pids[i].ok()) {
      if (first_error.ok()) {
        first_error = Err(pids[i].error());
      }
      continue;
    }
    Worker w;
    w.child = ProcessHandle::FromImpl(
        std::make_unique<RemoteWorkerImpl>(opts.remote, pids[i].value()), "forkserver-batch");
    w.child.stdin_fd() = std::move(stdin_pipes[i].write_end);
    w.child.stdout_fd() = std::move(stdout_pipes[i].read_end);
    workers_.push_back(std::move(w));
  }
  // Any worker the batch could not launch fails Start as a unit; the caller's
  // Stop() tears down the ones that did come up.
  return first_error;
}

Result<ShellWorkerPool::TaskResult> ShellWorkerPool::ExecuteOn(Worker& w,
                                                               const std::string& command) {
  // Frame the task with a unique sentinel carrying the exit code; the worker
  // shell prints it after running the command, delimiting this task's output.
  // Refuse to write into a dead worker (avoids an EPIPE — or, if the caller
  // has not ignored SIGPIPE, a fatal signal — for the common crash case; a
  // worker dying mid-write is still reported as an error by WriteFull, so
  // callers should ignore SIGPIPE process-wide as with any pipe-heavy
  // library).
  auto exited = w.child.TryWait();
  if (!exited.ok()) {
    return Err(exited.error());
  }
  if (exited->has_value()) {
    w.healthy = false;
    return LogicalError("worker exited before task dispatch");
  }

  std::string sentinel = "__FORKLIFT_DONE_" + std::to_string(++task_seq_) + "_";
  // The task runs in a subshell so `exit`, cd, and variable changes cannot
  // alter (or kill) the persistent worker.
  std::string script =
      "(\n" + command + "\n)\nprintf '%s%d\\n' '" + sentinel + "' \"$?\"\n";
  FORKLIFT_RETURN_IF_ERROR(
      WriteFull(w.child.stdin_fd().get(), script.data(), script.size()));

  TaskResult result;
  std::string acc;
  char buf[4096];
  for (;;) {
    ssize_t n = ::read(w.child.stdout_fd().get(), buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      w.healthy = false;
      return ErrnoError("worker stdout read");
    }
    if (n == 0) {
      w.healthy = false;
      return LogicalError("worker exited mid-task");
    }
    acc.append(buf, static_cast<size_t>(n));
    size_t pos = acc.find(sentinel);
    if (pos != std::string::npos) {
      size_t nl = acc.find('\n', pos);
      if (nl == std::string::npos) {
        continue;  // sentinel line not complete yet
      }
      result.output = acc.substr(0, pos);
      result.exit_code = std::stoi(acc.substr(pos + sentinel.size(), nl - pos - sentinel.size()));
      ++tasks_executed_;
      return result;
    }
  }
}

Result<ShellWorkerPool::TaskResult> ShellWorkerPool::Execute(const std::string& command) {
  if (!started_) {
    return LogicalError("ShellWorkerPool: not started");
  }
  // Drain pending exit notifications (pidfd events) so workers that died
  // since the last call are already unhealthy when the round-robin runs.
  if (reactor_.has_value()) {
    (void)reactor_->PollOnce(0);
  }
  for (size_t attempts = 0; attempts < workers_.size(); ++attempts) {
    Worker& w = workers_[next_];
    next_ = (next_ + 1) % workers_.size();
    if (!w.healthy) {
      continue;
    }
    return ExecuteOn(w, command);
  }
  return LogicalError("ShellWorkerPool: no healthy workers");
}

Status ShellWorkerPool::Stop() {
  Status first_error;
  for (auto& w : workers_) {
    if (!w.child.valid()) {
      continue;
    }
    w.watch.Disarm();            // we reap explicitly below
    w.child.stdin_fd().Reset();  // EOF: sh -s exits
    auto st = w.child.WaitDeadline(5.0);
    if (!st.ok() || !st->has_value()) {
      (void)w.child.KillAndWait();
      if (first_error.ok() && !st.ok()) {
        first_error = Err(st.error());
      }
    }
  }
  workers_.clear();
  started_ = false;
  return first_error;
}

}  // namespace forklift
