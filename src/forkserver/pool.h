// forklift/forkserver: a prefork worker pool.
//
// The second half of the zygote story (§6): not just "fork from a small
// process" but "don't create a process at all" — reuse a warm worker. Workers
// are persistent `/bin/sh -s` interpreters fed commands over stdin; each
// Execute() is one request/response on a warm worker, so the process-creation
// cost is paid once per worker instead of once per task. The amortization is
// measured against cold spawns in bench/forkserver_amortization.
#ifndef SRC_FORKSERVER_POOL_H_
#define SRC_FORKSERVER_POOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/reactor.h"
#include "src/common/result.h"
#include "src/spawn/backend.h"
#include "src/spawn/process_handle.h"

namespace forklift {

class SpawnService;
class RemoteSpawnService;

class ShellWorkerPool {
 public:
  struct Options {
    size_t workers = 4;
    SpawnBackendKind backend = SpawnBackendKind::kForkExec;
    // When set, workers are launched through this routing layer (not owned,
    // must outlive the pool) instead of a direct backend spawn. Workers need
    // pipe stdio, so the service's capability check steers them onto a
    // pipe-capable (local) route automatically.
    SpawnService* service = nullptr;
    // When set (takes precedence over `service`), workers are launched on the
    // fork server in ONE kSpawnBatch submit: the wire cannot carry pipe
    // stdio, so the pool makes the pipes locally and ships the child ends as
    // Stdio::Fd descriptors riding the batch frame's SCM_RIGHTS payload. Not
    // owned; must outlive the pool (worker waits route back through it).
    RemoteSpawnService* remote = nullptr;
  };

  ShellWorkerPool() = default;
  ~ShellWorkerPool();

  ShellWorkerPool(const ShellWorkerPool&) = delete;
  ShellWorkerPool& operator=(const ShellWorkerPool&) = delete;

  // Spawns the workers. Must be called once before Execute.
  Status Start(const Options& opts);

  // Runs one shell command on a warm worker (round-robin) and returns its
  // stdout. The command must be a single line; its exit status is returned
  // alongside the output.
  struct TaskResult {
    int exit_code = 0;
    std::string output;
  };
  Result<TaskResult> Execute(const std::string& command);

  // Graceful teardown: EOF to each worker, reap all. Called by the destructor
  // if not called explicitly.
  Status Stop();

  size_t worker_count() const { return workers_.size(); }
  uint64_t tasks_executed() const { return tasks_executed_; }

 private:
  struct Worker {
    ProcessHandle child;
    bool healthy = true;
    ChildWatch watch;  // marks the worker unhealthy the moment it dies
  };

  Result<TaskResult> ExecuteOn(Worker& w, const std::string& command);
  // The Options::remote path: builds every worker's request (local pipes,
  // Stdio::Fd child ends) and launches them all with one LaunchBatch call.
  Status StartRemoteWorkers(const Options& opts);

  // Declared before workers_ so each worker's watch (which deregisters
  // against the reactor) is destroyed first. Execute pumps this reactor
  // non-blockingly, so a worker killed behind the pool's back is usually
  // marked unhealthy before the round-robin can route a task to the corpse.
  std::optional<Reactor> reactor_;
  std::vector<Worker> workers_;
  size_t next_ = 0;
  uint64_t tasks_executed_ = 0;
  uint64_t task_seq_ = 0;
  bool started_ = false;
};

}  // namespace forklift

#endif  // SRC_FORKSERVER_POOL_H_
