#include "src/forkserver/protocol.h"

#include <algorithm>
#include <cstring>
#include <map>

#include "src/forkserver/fd_transfer.h"
#include "src/forkserver/wire.h"

namespace forklift {

namespace {

constexpr uint32_t kMagic = 0x464b4c54;  // "FKLT"

// Plan-op wire tags (decoupled from the enum's in-memory values).
constexpr uint8_t kOpDupToScratch = 1;
constexpr uint8_t kOpDup2 = 2;
constexpr uint8_t kOpOpen = 3;
constexpr uint8_t kOpClose = 4;
constexpr uint8_t kOpCloseScratch = 5;

// Sentinel in the src slot meaning "src is fds[transfer_index]".
constexpr int32_t kSrcIsTransfer = -2;

// Frame header bytes: {magic, version, type} words plus the v2 request_id.
constexpr size_t kHeaderSizeV1 = 12;
constexpr size_t kHeaderSizeV2 = kHeaderSizeV1 + 8;

size_t HeaderSize(const FrameMeta& meta) {
  return meta.version >= kForkServerProtocolV2 ? kHeaderSizeV2 : kHeaderSizeV1;
}

// Upper bound on the encoded size of a spawn request, so the writer is sized
// once and the encode loop below never reallocates. Fixed-width fields are
// over-counted slightly (optional fields counted as present) — the bound is
// for reservation, not framing.
size_t EstimateSpawnRequestSize(const SpawnRequest& request) {
  size_t n = kHeaderSizeV2;
  n += 4 + request.program.size() + 1;         // program + use_path_search
  n += 4;                                      // argc
  for (size_t i = 0; i < request.argv.size(); ++i) {
    n += 4 + request.argv[i].size();
  }
  n += 4;  // envc
  for (size_t i = 0; i < request.envp.size(); ++i) {
    n += 4 + request.envp[i].size();
  }
  n += 1 + 4 + (request.cwd.has_value() ? request.cwd->size() : 0);  // cwd
  n += 1 + 4;                                  // umask
  n += 4;                                      // the four reset/session bools
  n += (1 + 4) * 2;                            // process_group, nice_value
  n += 4 + request.rlimits.size() * (4 + 8 + 8);
  n += 4;  // nops
  for (const auto& op : request.fd_plan.ops) {
    n += 1 + 4 + 4 + 4 + 4 + 4 + op.path.size();  // worst case: kOpOpen
  }
  n += 4;  // transferred-fd count
  return n;
}

// Appends one spawn body (everything after the header of a kSpawn frame):
// fields, fd plan, and the trailing fd count. Transfer indices are local to
// this body — based at the `fds_out` size on entry — so the same encoder
// serves both the single-spawn frame (base 0) and kSpawnBatch entries.
Status EncodeSpawnBodyInto(WireWriter& w, const SpawnRequest& request,
                           std::vector<int>* fds_out) {
  size_t fd_base = fds_out->size();

  w.PutString(request.program);
  w.PutBool(request.use_path_search);

  w.PutU32(static_cast<uint32_t>(request.argv.size()));
  for (size_t i = 0; i < request.argv.size(); ++i) {
    w.PutString(request.argv[i]);
  }
  w.PutU32(static_cast<uint32_t>(request.envp.size()));
  for (size_t i = 0; i < request.envp.size(); ++i) {
    w.PutString(request.envp[i]);
  }

  w.PutBool(request.cwd.has_value());
  if (request.cwd.has_value()) {
    w.PutString(*request.cwd);
  }
  w.PutBool(request.umask_value.has_value());
  if (request.umask_value.has_value()) {
    w.PutU32(static_cast<uint32_t>(*request.umask_value));
  }
  w.PutBool(request.reset_signal_mask);
  w.PutBool(request.reset_signal_handlers);
  w.PutBool(request.new_session);
  w.PutBool(request.close_other_fds);
  w.PutBool(request.process_group.has_value());
  if (request.process_group.has_value()) {
    w.PutI32(static_cast<int32_t>(*request.process_group));
  }
  w.PutBool(request.nice_value.has_value());
  if (request.nice_value.has_value()) {
    w.PutI32(*request.nice_value);
  }
  w.PutU32(static_cast<uint32_t>(request.rlimits.size()));
  for (const auto& rl : request.rlimits) {
    w.PutI32(rl.resource);
    w.PutU64(rl.limit.rlim_cur);
    w.PutU64(rl.limit.rlim_max);
  }

  // Fd plan: dup2-family sources become transfer indices; each distinct local
  // fd is transferred once.
  std::map<int, uint32_t> transfer_index;
  auto index_of = [&](int fd) -> uint32_t {
    auto it = transfer_index.find(fd);
    if (it != transfer_index.end()) {
      return it->second;
    }
    uint32_t idx = static_cast<uint32_t>(fds_out->size() - fd_base);
    transfer_index[fd] = idx;
    fds_out->push_back(fd);
    return idx;
  };

  w.PutU32(static_cast<uint32_t>(request.fd_plan.ops.size()));
  for (const auto& op : request.fd_plan.ops) {
    switch (op.kind) {
      case CompiledFdOp::Kind::kDupToScratch:
        w.PutU8(kOpDupToScratch);
        w.PutI32(kSrcIsTransfer);
        w.PutU32(index_of(op.src_fd));
        w.PutI32(op.scratch_fd);
        break;
      case CompiledFdOp::Kind::kDup2:
        w.PutU8(kOpDup2);
        // Scratch-sourced dup2s reference the server-side scratch number, not
        // a client fd; everything else is a client fd to transfer.
        if (op.src_fd >= CompiledFdPlan::kScratchBase) {
          w.PutI32(op.src_fd);
          w.PutU32(0);
        } else {
          w.PutI32(kSrcIsTransfer);
          w.PutU32(index_of(op.src_fd));
        }
        w.PutI32(op.dst_fd);
        break;
      case CompiledFdOp::Kind::kOpen:
        w.PutU8(kOpOpen);
        w.PutI32(op.dst_fd);
        w.PutString(op.path);
        w.PutI32(op.flags);
        w.PutU32(static_cast<uint32_t>(op.mode));
        break;
      case CompiledFdOp::Kind::kClose:
        w.PutU8(kOpClose);
        w.PutI32(op.dst_fd);
        break;
      case CompiledFdOp::Kind::kCloseScratch:
        w.PutU8(kOpCloseScratch);
        w.PutI32(op.scratch_fd);
        break;
    }
  }
  // Validate BEFORE the count goes into the frame: emitting first would ship
  // a frame whose declared fd count the transport then refuses, and leaving
  // fds_out populated on failure would let a caller SCM_RIGHTS a half-built
  // descriptor list for a request that was never encoded.
  if (fds_out->size() - fd_base > kMaxFdsPerFrame) {
    fds_out->clear();
    return LogicalError("EncodeSpawnRequest: plan references too many descriptors");
  }
  w.PutU32(static_cast<uint32_t>(fds_out->size() - fd_base));
  return w.status();
}

// Decodes one spawn body. `fd_base`/`fd_count` name this body's slice of the
// frame's descriptor list; the body's trailing count must agree with
// `fd_count`. Does not require the reader to be at end — callers own the
// surrounding framing.
Result<SpawnRequest> DecodeSpawnBody(WireReader& r,
                                     const std::vector<UniqueFd>& received_fds,
                                     size_t fd_base, size_t fd_count) {
  SpawnRequest req;
  FORKLIFT_ASSIGN_OR_RETURN(req.program, r.GetString());
  FORKLIFT_ASSIGN_OR_RETURN(req.use_path_search, r.GetBool());

  FORKLIFT_ASSIGN_OR_RETURN(uint32_t argc, r.GetU32());
  if (argc > 4096) {
    return LogicalError("DecodeSpawnRequest: argv too large");
  }
  std::vector<std::string> argv;
  for (uint32_t i = 0; i < argc; ++i) {
    FORKLIFT_ASSIGN_OR_RETURN(std::string s, r.GetString());
    argv.push_back(std::move(s));
  }
  req.argv = ArgvBlock(argv);

  FORKLIFT_ASSIGN_OR_RETURN(uint32_t envc, r.GetU32());
  if (envc > 16384) {
    return LogicalError("DecodeSpawnRequest: env too large");
  }
  std::vector<std::string> envp;
  for (uint32_t i = 0; i < envc; ++i) {
    FORKLIFT_ASSIGN_OR_RETURN(std::string s, r.GetString());
    envp.push_back(std::move(s));
  }
  req.envp = ArgvBlock(envp);

  FORKLIFT_ASSIGN_OR_RETURN(bool has_cwd, r.GetBool());
  if (has_cwd) {
    FORKLIFT_ASSIGN_OR_RETURN(std::string cwd, r.GetString());
    req.cwd = std::move(cwd);
  }
  FORKLIFT_ASSIGN_OR_RETURN(bool has_umask, r.GetBool());
  if (has_umask) {
    FORKLIFT_ASSIGN_OR_RETURN(uint32_t m, r.GetU32());
    req.umask_value = static_cast<mode_t>(m);
  }
  FORKLIFT_ASSIGN_OR_RETURN(req.reset_signal_mask, r.GetBool());
  FORKLIFT_ASSIGN_OR_RETURN(req.reset_signal_handlers, r.GetBool());
  FORKLIFT_ASSIGN_OR_RETURN(req.new_session, r.GetBool());
  FORKLIFT_ASSIGN_OR_RETURN(req.close_other_fds, r.GetBool());
  FORKLIFT_ASSIGN_OR_RETURN(bool has_pgid, r.GetBool());
  if (has_pgid) {
    FORKLIFT_ASSIGN_OR_RETURN(int32_t pgid, r.GetI32());
    req.process_group = static_cast<pid_t>(pgid);
  }
  FORKLIFT_ASSIGN_OR_RETURN(bool has_nice, r.GetBool());
  if (has_nice) {
    FORKLIFT_ASSIGN_OR_RETURN(int32_t nice_value, r.GetI32());
    req.nice_value = nice_value;
  }
  FORKLIFT_ASSIGN_OR_RETURN(uint32_t nrlim, r.GetU32());
  if (nrlim > 64) {
    return LogicalError("DecodeSpawnRequest: too many rlimits");
  }
  for (uint32_t i = 0; i < nrlim; ++i) {
    RlimitSpec spec;
    FORKLIFT_ASSIGN_OR_RETURN(spec.resource, r.GetI32());
    FORKLIFT_ASSIGN_OR_RETURN(uint64_t cur, r.GetU64());
    FORKLIFT_ASSIGN_OR_RETURN(uint64_t max, r.GetU64());
    spec.limit.rlim_cur = cur;
    spec.limit.rlim_max = max;
    req.rlimits.push_back(spec);
  }

  FORKLIFT_ASSIGN_OR_RETURN(uint32_t nops, r.GetU32());
  if (nops > 4096) {
    return LogicalError("DecodeSpawnRequest: too many fd ops");
  }
  auto resolve_src = [&received_fds, fd_base, fd_count](int32_t src,
                                                        uint32_t idx) -> Result<int> {
    if (src == kSrcIsTransfer) {
      if (idx >= fd_count || fd_base + idx >= received_fds.size()) {
        return LogicalError("DecodeSpawnRequest: transfer index out of range");
      }
      return received_fds[fd_base + idx].get();
    }
    if (src < CompiledFdPlan::kScratchBase) {
      return LogicalError("DecodeSpawnRequest: literal source below scratch base");
    }
    return static_cast<int>(src);
  };
  for (uint32_t i = 0; i < nops; ++i) {
    FORKLIFT_ASSIGN_OR_RETURN(uint8_t tag, r.GetU8());
    CompiledFdOp op;
    switch (tag) {
      case kOpDupToScratch: {
        op.kind = CompiledFdOp::Kind::kDupToScratch;
        FORKLIFT_ASSIGN_OR_RETURN(int32_t src, r.GetI32());
        FORKLIFT_ASSIGN_OR_RETURN(uint32_t idx, r.GetU32());
        FORKLIFT_ASSIGN_OR_RETURN(op.src_fd, resolve_src(src, idx));
        FORKLIFT_ASSIGN_OR_RETURN(op.scratch_fd, r.GetI32());
        break;
      }
      case kOpDup2: {
        op.kind = CompiledFdOp::Kind::kDup2;
        FORKLIFT_ASSIGN_OR_RETURN(int32_t src, r.GetI32());
        FORKLIFT_ASSIGN_OR_RETURN(uint32_t idx, r.GetU32());
        FORKLIFT_ASSIGN_OR_RETURN(op.src_fd, resolve_src(src, idx));
        FORKLIFT_ASSIGN_OR_RETURN(op.dst_fd, r.GetI32());
        if (op.dst_fd < 0 || op.dst_fd >= CompiledFdPlan::kScratchBase) {
          return LogicalError("DecodeSpawnRequest: dup2 target out of range");
        }
        break;
      }
      case kOpOpen: {
        op.kind = CompiledFdOp::Kind::kOpen;
        FORKLIFT_ASSIGN_OR_RETURN(op.dst_fd, r.GetI32());
        FORKLIFT_ASSIGN_OR_RETURN(op.path, r.GetString());
        FORKLIFT_ASSIGN_OR_RETURN(op.flags, r.GetI32());
        FORKLIFT_ASSIGN_OR_RETURN(uint32_t mode, r.GetU32());
        op.mode = static_cast<mode_t>(mode);
        if (op.dst_fd < 0 || op.dst_fd >= CompiledFdPlan::kScratchBase) {
          return LogicalError("DecodeSpawnRequest: open target out of range");
        }
        break;
      }
      case kOpClose: {
        op.kind = CompiledFdOp::Kind::kClose;
        FORKLIFT_ASSIGN_OR_RETURN(op.dst_fd, r.GetI32());
        if (op.dst_fd < 0) {
          return LogicalError("DecodeSpawnRequest: close target negative");
        }
        break;
      }
      case kOpCloseScratch: {
        op.kind = CompiledFdOp::Kind::kCloseScratch;
        FORKLIFT_ASSIGN_OR_RETURN(op.scratch_fd, r.GetI32());
        break;
      }
      default:
        return LogicalError("DecodeSpawnRequest: unknown fd op tag");
    }
    req.fd_plan.ops.push_back(std::move(op));
  }
  FORKLIFT_ASSIGN_OR_RETURN(uint32_t nfds, r.GetU32());
  if (nfds != fd_count) {
    return LogicalError("DecodeSpawnRequest: fd count mismatch (frame says " +
                        std::to_string(nfds) + ", received " +
                        std::to_string(fd_count) + ")");
  }
  return req;
}

}  // namespace

void EncodeHeaderInto(WireWriter& w, MsgType type, const FrameMeta& meta) {
  w.PutU32(kMagic);
  w.PutU32(meta.version);
  w.PutU32(static_cast<uint32_t>(type));
  if (meta.version >= kForkServerProtocolV2) {
    w.PutU64(meta.request_id);
  }
}

std::string EncodeHeader(MsgType type, const FrameMeta& meta) {
  WireWriter w;
  w.Reserve(HeaderSize(meta));
  EncodeHeaderInto(w, type, meta);
  return w.Take();
}

Result<FrameHeader> DecodeHeader(WireReader& reader) {
  FORKLIFT_ASSIGN_OR_RETURN(uint32_t magic, reader.GetU32());
  if (magic != kMagic) {
    return LogicalError("protocol: bad magic");
  }
  FrameHeader hdr;
  FORKLIFT_ASSIGN_OR_RETURN(hdr.meta.version, reader.GetU32());
  if (hdr.meta.version != kForkServerProtocolV1 && hdr.meta.version != kForkServerProtocolV2) {
    return LogicalError("protocol: unsupported version " + std::to_string(hdr.meta.version));
  }
  FORKLIFT_ASSIGN_OR_RETURN(uint32_t type, reader.GetU32());
  if (type < static_cast<uint32_t>(MsgType::kSpawn) ||
      type > static_cast<uint32_t>(MsgType::kSpawnBatch)) {
    return LogicalError("protocol: unknown message type " + std::to_string(type));
  }
  hdr.type = static_cast<MsgType>(type);
  if (hdr.meta.version >= kForkServerProtocolV2) {
    FORKLIFT_ASSIGN_OR_RETURN(hdr.meta.request_id, reader.GetU64());
  }
  return hdr;
}

Status EncodeSpawnRequestInto(WireWriter& w, const SpawnRequest& request,
                              std::vector<int>* fds_out, const FrameMeta& meta) {
  w.Reserve(w.data().size() + EstimateSpawnRequestSize(request));
  EncodeHeaderInto(w, MsgType::kSpawn, meta);
  fds_out->clear();
  return EncodeSpawnBodyInto(w, request, fds_out);
}

Result<std::string> EncodeSpawnRequest(const SpawnRequest& request, std::vector<int>* fds_out,
                                       const FrameMeta& meta) {
  WireWriter w;
  FORKLIFT_RETURN_IF_ERROR(EncodeSpawnRequestInto(w, request, fds_out, meta));
  return w.Take();
}

Result<SpawnRequest> DecodeSpawnRequest(std::string_view payload,
                                        const std::vector<UniqueFd>& received_fds,
                                        FrameMeta* meta) {
  WireReader r(payload);
  FORKLIFT_ASSIGN_OR_RETURN(FrameHeader hdr, DecodeHeader(r));
  if (meta != nullptr) {
    *meta = hdr.meta;
  }
  if (hdr.type != MsgType::kSpawn) {
    return LogicalError("DecodeSpawnRequest: wrong message type");
  }
  FORKLIFT_ASSIGN_OR_RETURN(
      SpawnRequest req,
      DecodeSpawnBody(r, received_fds, 0, received_fds.size()));
  if (!r.AtEnd()) {
    return LogicalError("DecodeSpawnRequest: trailing bytes");
  }
  return req;
}

Status EncodeSpawnBatchInto(WireWriter& w, const std::vector<SpawnRequest>& requests,
                            std::vector<int>* fds_out, const FrameMeta& meta) {
  fds_out->clear();
  if (requests.empty()) {
    return LogicalError("EncodeSpawnBatch: empty batch");
  }
  if (requests.size() > kMaxSpawnBatch) {
    return LogicalError("EncodeSpawnBatch: batch of " + std::to_string(requests.size()) +
                        " exceeds cap " + std::to_string(kMaxSpawnBatch));
  }
  if (meta.version < kForkServerProtocolV2 || meta.request_id == 0) {
    return LogicalError("EncodeSpawnBatch: batches require protocol v2 and a base request_id");
  }
  size_t estimate = kHeaderSizeV2 + 4;
  for (const auto& req : requests) {
    estimate += 4 + EstimateSpawnRequestSize(req);
  }
  w.Reserve(w.data().size() + estimate);
  EncodeHeaderInto(w, MsgType::kSpawnBatch, meta);
  w.PutU32(static_cast<uint32_t>(requests.size()));
  for (const auto& req : requests) {
    size_t len_pos = w.size();
    w.PutU32(0);  // placeholder, backfilled with the body length
    FORKLIFT_RETURN_IF_ERROR(EncodeSpawnBodyInto(w, req, fds_out));
    w.PokeU32(len_pos, static_cast<uint32_t>(w.size() - len_pos - 4));
  }
  // Per-entry caps were enforced by the body encoder; the frame-level
  // ancillary budget is shared by every entry.
  if (fds_out->size() > kMaxFdsPerFrame) {
    fds_out->clear();
    return LogicalError("EncodeSpawnBatch: batch references too many descriptors");
  }
  return w.status();
}

Result<std::vector<SpawnRequest>> DecodeSpawnBatch(std::string_view payload,
                                                   const std::vector<UniqueFd>& received_fds,
                                                   FrameMeta* meta) {
  WireReader r(payload);
  FORKLIFT_ASSIGN_OR_RETURN(FrameHeader hdr, DecodeHeader(r));
  if (meta != nullptr) {
    *meta = hdr.meta;
  }
  if (hdr.type != MsgType::kSpawnBatch) {
    return LogicalError("DecodeSpawnBatch: wrong message type");
  }
  if (hdr.meta.version < kForkServerProtocolV2 || hdr.meta.request_id == 0) {
    return LogicalError("DecodeSpawnBatch: batches require protocol v2 and a base request_id");
  }
  FORKLIFT_ASSIGN_OR_RETURN(uint32_t count, r.GetU32());
  if (count == 0 || count > kMaxSpawnBatch) {
    return LogicalError("DecodeSpawnBatch: entry count " + std::to_string(count) +
                        " out of range");
  }
  std::vector<SpawnRequest> out;
  out.reserve(count);
  size_t fd_off = 0;
  for (uint32_t i = 0; i < count; ++i) {
    FORKLIFT_ASSIGN_OR_RETURN(uint32_t body_len, r.GetU32());
    FORKLIFT_ASSIGN_OR_RETURN(std::string_view body, r.GetBytes(body_len));
    if (body_len < sizeof(uint32_t)) {
      return LogicalError("DecodeSpawnBatch: entry body too short");
    }
    // Each body ends with its own fd count; read it up front to slice this
    // entry's window of the frame's descriptor list.
    uint32_t nfds = 0;
    std::memcpy(&nfds, body.data() + body.size() - sizeof(nfds), sizeof(nfds));
    if (nfds > kMaxFdsPerFrame || fd_off + nfds > received_fds.size()) {
      return LogicalError("DecodeSpawnBatch: entry fd count out of range");
    }
    WireReader br(body);
    FORKLIFT_ASSIGN_OR_RETURN(SpawnRequest req,
                              DecodeSpawnBody(br, received_fds, fd_off, nfds));
    if (!br.AtEnd()) {
      return LogicalError("DecodeSpawnBatch: trailing bytes in entry");
    }
    fd_off += nfds;
    out.push_back(std::move(req));
  }
  if (!r.AtEnd()) {
    return LogicalError("DecodeSpawnBatch: trailing bytes");
  }
  if (fd_off != received_fds.size()) {
    return LogicalError("DecodeSpawnBatch: fd count mismatch (entries claim " +
                        std::to_string(fd_off) + ", received " +
                        std::to_string(received_fds.size()) + ")");
  }
  return out;
}

Result<uint32_t> PeekSpawnBatchCount(std::string_view payload, FrameMeta* meta) {
  WireReader r(payload);
  FORKLIFT_ASSIGN_OR_RETURN(FrameHeader hdr, DecodeHeader(r));
  if (meta != nullptr) {
    *meta = hdr.meta;
  }
  if (hdr.type != MsgType::kSpawnBatch) {
    return LogicalError("PeekSpawnBatchCount: wrong message type");
  }
  FORKLIFT_ASSIGN_OR_RETURN(uint32_t count, r.GetU32());
  if (count == 0 || count > kMaxSpawnBatch) {
    return LogicalError("PeekSpawnBatchCount: entry count out of range");
  }
  return count;
}

std::string EncodeSpawnReply(const SpawnReply& reply, const FrameMeta& meta) {
  WireWriter w;
  w.Reserve(HeaderSize(meta) + 1 + 4 + 4 + 4 + reply.context.size());
  EncodeHeaderInto(w, MsgType::kSpawnReply, meta);
  w.PutBool(reply.ok);
  w.PutI32(reply.pid);
  w.PutI32(reply.err);
  w.PutString(reply.context);
  return w.Take();
}

Result<SpawnReply> DecodeSpawnReply(std::string_view payload, FrameMeta* meta) {
  WireReader r(payload);
  FORKLIFT_ASSIGN_OR_RETURN(FrameHeader hdr, DecodeHeader(r));
  if (meta != nullptr) {
    *meta = hdr.meta;
  }
  if (hdr.type != MsgType::kSpawnReply) {
    return LogicalError("DecodeSpawnReply: wrong message type");
  }
  SpawnReply reply;
  FORKLIFT_ASSIGN_OR_RETURN(reply.ok, r.GetBool());
  FORKLIFT_ASSIGN_OR_RETURN(reply.pid, r.GetI32());
  FORKLIFT_ASSIGN_OR_RETURN(reply.err, r.GetI32());
  FORKLIFT_ASSIGN_OR_RETURN(reply.context, r.GetString());
  if (!r.AtEnd()) {
    return LogicalError("DecodeSpawnReply: trailing bytes");
  }
  return reply;
}

std::string EncodeWait(int32_t pid, const FrameMeta& meta) {
  WireWriter w;
  w.Reserve(HeaderSize(meta) + 4);
  EncodeHeaderInto(w, MsgType::kWait, meta);
  w.PutI32(pid);
  return w.Take();
}

Result<int32_t> DecodeWait(std::string_view payload, FrameMeta* meta) {
  WireReader r(payload);
  FORKLIFT_ASSIGN_OR_RETURN(FrameHeader hdr, DecodeHeader(r));
  if (meta != nullptr) {
    *meta = hdr.meta;
  }
  if (hdr.type != MsgType::kWait) {
    return LogicalError("DecodeWait: wrong message type");
  }
  FORKLIFT_ASSIGN_OR_RETURN(int32_t pid, r.GetI32());
  if (!r.AtEnd()) {
    return LogicalError("DecodeWait: trailing bytes");
  }
  return pid;
}

std::string EncodeWaitReply(const WaitReply& reply, const FrameMeta& meta) {
  WireWriter w;
  w.Reserve(HeaderSize(meta) + 3 + 4 * 3 + 4 + reply.context.size());
  EncodeHeaderInto(w, MsgType::kWaitReply, meta);
  w.PutBool(reply.ok);
  w.PutBool(reply.status.exited);
  w.PutI32(reply.status.exit_code);
  w.PutBool(reply.status.signaled);
  w.PutI32(reply.status.term_signal);
  w.PutI32(reply.err);
  w.PutString(reply.context);
  return w.Take();
}

Result<WaitReply> DecodeWaitReply(std::string_view payload, FrameMeta* meta) {
  WireReader r(payload);
  FORKLIFT_ASSIGN_OR_RETURN(FrameHeader hdr, DecodeHeader(r));
  if (meta != nullptr) {
    *meta = hdr.meta;
  }
  if (hdr.type != MsgType::kWaitReply) {
    return LogicalError("DecodeWaitReply: wrong message type");
  }
  WaitReply reply;
  FORKLIFT_ASSIGN_OR_RETURN(reply.ok, r.GetBool());
  FORKLIFT_ASSIGN_OR_RETURN(reply.status.exited, r.GetBool());
  FORKLIFT_ASSIGN_OR_RETURN(reply.status.exit_code, r.GetI32());
  FORKLIFT_ASSIGN_OR_RETURN(reply.status.signaled, r.GetBool());
  FORKLIFT_ASSIGN_OR_RETURN(reply.status.term_signal, r.GetI32());
  FORKLIFT_ASSIGN_OR_RETURN(reply.err, r.GetI32());
  FORKLIFT_ASSIGN_OR_RETURN(reply.context, r.GetString());
  if (!r.AtEnd()) {
    return LogicalError("DecodeWaitReply: trailing bytes");
  }
  return reply;
}

std::string EncodeStatsRequest(uint8_t format, const FrameMeta& meta) {
  WireWriter w;
  w.Reserve(HeaderSize(meta) + 1);
  EncodeHeaderInto(w, MsgType::kStats, meta);
  w.PutU8(format);
  return w.Take();
}

Result<uint8_t> DecodeStatsRequest(std::string_view payload, FrameMeta* meta) {
  WireReader r(payload);
  FORKLIFT_ASSIGN_OR_RETURN(FrameHeader hdr, DecodeHeader(r));
  if (meta != nullptr) {
    *meta = hdr.meta;
  }
  if (hdr.type != MsgType::kStats) {
    return LogicalError("DecodeStatsRequest: wrong message type");
  }
  FORKLIFT_ASSIGN_OR_RETURN(uint8_t format, r.GetU8());
  if (!r.AtEnd()) {
    return LogicalError("DecodeStatsRequest: trailing bytes");
  }
  return format;
}

std::string EncodeStatsReply(const StatsReply& reply, const FrameMeta& meta) {
  WireWriter w;
  w.Reserve(HeaderSize(meta) + 1 + 4 + 4 + reply.context.size() + 4 + reply.body.size());
  EncodeHeaderInto(w, MsgType::kStatsReply, meta);
  w.PutBool(reply.ok);
  w.PutI32(reply.err);
  w.PutString(reply.context);
  w.PutString(reply.body);
  return w.Take();
}

Result<StatsReply> DecodeStatsReply(std::string_view payload, FrameMeta* meta) {
  WireReader r(payload);
  FORKLIFT_ASSIGN_OR_RETURN(FrameHeader hdr, DecodeHeader(r));
  if (meta != nullptr) {
    *meta = hdr.meta;
  }
  if (hdr.type != MsgType::kStatsReply) {
    return LogicalError("DecodeStatsReply: wrong message type");
  }
  StatsReply reply;
  FORKLIFT_ASSIGN_OR_RETURN(reply.ok, r.GetBool());
  FORKLIFT_ASSIGN_OR_RETURN(reply.err, r.GetI32());
  FORKLIFT_ASSIGN_OR_RETURN(reply.context, r.GetString());
  FORKLIFT_ASSIGN_OR_RETURN(reply.body, r.GetString());
  if (!r.AtEnd()) {
    return LogicalError("DecodeStatsReply: trailing bytes");
  }
  return reply;
}

std::string EncodeControl(MsgType type, const FrameMeta& meta) { return EncodeHeader(type, meta); }

}  // namespace forklift
