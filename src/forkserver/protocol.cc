#include "src/forkserver/protocol.h"

#include <algorithm>
#include <map>

#include "src/forkserver/fd_transfer.h"
#include "src/forkserver/wire.h"

namespace forklift {

namespace {

constexpr uint32_t kMagic = 0x464b4c54;  // "FKLT"

// Plan-op wire tags (decoupled from the enum's in-memory values).
constexpr uint8_t kOpDupToScratch = 1;
constexpr uint8_t kOpDup2 = 2;
constexpr uint8_t kOpOpen = 3;
constexpr uint8_t kOpClose = 4;
constexpr uint8_t kOpCloseScratch = 5;

// Sentinel in the src slot meaning "src is fds[transfer_index]".
constexpr int32_t kSrcIsTransfer = -2;

}  // namespace

std::string EncodeHeader(MsgType type) {
  WireWriter w;
  w.PutU32(kMagic);
  w.PutU32(kForkServerProtocolVersion);
  w.PutU32(static_cast<uint32_t>(type));
  return w.Take();
}

Result<MsgType> DecodeHeader(WireReader& reader) {
  FORKLIFT_ASSIGN_OR_RETURN(uint32_t magic, reader.GetU32());
  if (magic != kMagic) {
    return LogicalError("protocol: bad magic");
  }
  FORKLIFT_ASSIGN_OR_RETURN(uint32_t version, reader.GetU32());
  if (version != kForkServerProtocolVersion) {
    return LogicalError("protocol: unsupported version " + std::to_string(version));
  }
  FORKLIFT_ASSIGN_OR_RETURN(uint32_t type, reader.GetU32());
  if (type < static_cast<uint32_t>(MsgType::kSpawn) ||
      type > static_cast<uint32_t>(MsgType::kNewChannelAck)) {
    return LogicalError("protocol: unknown message type " + std::to_string(type));
  }
  return static_cast<MsgType>(type);
}

Result<std::string> EncodeSpawnRequest(const SpawnRequest& request, std::vector<int>* fds_out) {
  WireWriter w;
  w.PutU32(kMagic);
  w.PutU32(kForkServerProtocolVersion);
  w.PutU32(static_cast<uint32_t>(MsgType::kSpawn));

  w.PutString(request.program);
  w.PutBool(request.use_path_search);

  w.PutU32(static_cast<uint32_t>(request.argv.size()));
  for (size_t i = 0; i < request.argv.size(); ++i) {
    w.PutString(request.argv[i]);
  }
  w.PutU32(static_cast<uint32_t>(request.envp.size()));
  for (size_t i = 0; i < request.envp.size(); ++i) {
    w.PutString(request.envp[i]);
  }

  w.PutBool(request.cwd.has_value());
  if (request.cwd.has_value()) {
    w.PutString(*request.cwd);
  }
  w.PutBool(request.umask_value.has_value());
  if (request.umask_value.has_value()) {
    w.PutU32(static_cast<uint32_t>(*request.umask_value));
  }
  w.PutBool(request.reset_signal_mask);
  w.PutBool(request.reset_signal_handlers);
  w.PutBool(request.new_session);
  w.PutBool(request.close_other_fds);
  w.PutBool(request.process_group.has_value());
  if (request.process_group.has_value()) {
    w.PutI32(static_cast<int32_t>(*request.process_group));
  }
  w.PutBool(request.nice_value.has_value());
  if (request.nice_value.has_value()) {
    w.PutI32(*request.nice_value);
  }
  w.PutU32(static_cast<uint32_t>(request.rlimits.size()));
  for (const auto& rl : request.rlimits) {
    w.PutI32(rl.resource);
    w.PutU64(rl.limit.rlim_cur);
    w.PutU64(rl.limit.rlim_max);
  }

  // Fd plan: dup2-family sources become transfer indices; each distinct local
  // fd is transferred once.
  fds_out->clear();
  std::map<int, uint32_t> transfer_index;
  auto index_of = [&](int fd) -> uint32_t {
    auto it = transfer_index.find(fd);
    if (it != transfer_index.end()) {
      return it->second;
    }
    uint32_t idx = static_cast<uint32_t>(fds_out->size());
    transfer_index[fd] = idx;
    fds_out->push_back(fd);
    return idx;
  };

  w.PutU32(static_cast<uint32_t>(request.fd_plan.ops.size()));
  for (const auto& op : request.fd_plan.ops) {
    switch (op.kind) {
      case CompiledFdOp::Kind::kDupToScratch:
        w.PutU8(kOpDupToScratch);
        w.PutI32(kSrcIsTransfer);
        w.PutU32(index_of(op.src_fd));
        w.PutI32(op.scratch_fd);
        break;
      case CompiledFdOp::Kind::kDup2:
        w.PutU8(kOpDup2);
        // Scratch-sourced dup2s reference the server-side scratch number, not
        // a client fd; everything else is a client fd to transfer.
        if (op.src_fd >= CompiledFdPlan::kScratchBase) {
          w.PutI32(op.src_fd);
          w.PutU32(0);
        } else {
          w.PutI32(kSrcIsTransfer);
          w.PutU32(index_of(op.src_fd));
        }
        w.PutI32(op.dst_fd);
        break;
      case CompiledFdOp::Kind::kOpen:
        w.PutU8(kOpOpen);
        w.PutI32(op.dst_fd);
        w.PutString(op.path);
        w.PutI32(op.flags);
        w.PutU32(static_cast<uint32_t>(op.mode));
        break;
      case CompiledFdOp::Kind::kClose:
        w.PutU8(kOpClose);
        w.PutI32(op.dst_fd);
        break;
      case CompiledFdOp::Kind::kCloseScratch:
        w.PutU8(kOpCloseScratch);
        w.PutI32(op.scratch_fd);
        break;
    }
  }
  // Validate BEFORE the count goes into the frame: emitting first would ship
  // a frame whose declared fd count the transport then refuses, and leaving
  // fds_out populated on failure would let a caller SCM_RIGHTS a half-built
  // descriptor list for a request that was never encoded.
  if (fds_out->size() > kMaxFdsPerFrame) {
    fds_out->clear();
    return LogicalError("EncodeSpawnRequest: plan references too many descriptors");
  }
  w.PutU32(static_cast<uint32_t>(fds_out->size()));
  return w.Take();
}

Result<SpawnRequest> DecodeSpawnRequest(std::string_view payload,
                                        const std::vector<UniqueFd>& received_fds) {
  WireReader r(payload);
  FORKLIFT_ASSIGN_OR_RETURN(MsgType type, DecodeHeader(r));
  if (type != MsgType::kSpawn) {
    return LogicalError("DecodeSpawnRequest: wrong message type");
  }

  SpawnRequest req;
  FORKLIFT_ASSIGN_OR_RETURN(req.program, r.GetString());
  FORKLIFT_ASSIGN_OR_RETURN(req.use_path_search, r.GetBool());

  FORKLIFT_ASSIGN_OR_RETURN(uint32_t argc, r.GetU32());
  if (argc > 4096) {
    return LogicalError("DecodeSpawnRequest: argv too large");
  }
  std::vector<std::string> argv;
  for (uint32_t i = 0; i < argc; ++i) {
    FORKLIFT_ASSIGN_OR_RETURN(std::string s, r.GetString());
    argv.push_back(std::move(s));
  }
  req.argv = ArgvBlock(argv);

  FORKLIFT_ASSIGN_OR_RETURN(uint32_t envc, r.GetU32());
  if (envc > 16384) {
    return LogicalError("DecodeSpawnRequest: env too large");
  }
  std::vector<std::string> envp;
  for (uint32_t i = 0; i < envc; ++i) {
    FORKLIFT_ASSIGN_OR_RETURN(std::string s, r.GetString());
    envp.push_back(std::move(s));
  }
  req.envp = ArgvBlock(envp);

  FORKLIFT_ASSIGN_OR_RETURN(bool has_cwd, r.GetBool());
  if (has_cwd) {
    FORKLIFT_ASSIGN_OR_RETURN(std::string cwd, r.GetString());
    req.cwd = std::move(cwd);
  }
  FORKLIFT_ASSIGN_OR_RETURN(bool has_umask, r.GetBool());
  if (has_umask) {
    FORKLIFT_ASSIGN_OR_RETURN(uint32_t m, r.GetU32());
    req.umask_value = static_cast<mode_t>(m);
  }
  FORKLIFT_ASSIGN_OR_RETURN(req.reset_signal_mask, r.GetBool());
  FORKLIFT_ASSIGN_OR_RETURN(req.reset_signal_handlers, r.GetBool());
  FORKLIFT_ASSIGN_OR_RETURN(req.new_session, r.GetBool());
  FORKLIFT_ASSIGN_OR_RETURN(req.close_other_fds, r.GetBool());
  FORKLIFT_ASSIGN_OR_RETURN(bool has_pgid, r.GetBool());
  if (has_pgid) {
    FORKLIFT_ASSIGN_OR_RETURN(int32_t pgid, r.GetI32());
    req.process_group = static_cast<pid_t>(pgid);
  }
  FORKLIFT_ASSIGN_OR_RETURN(bool has_nice, r.GetBool());
  if (has_nice) {
    FORKLIFT_ASSIGN_OR_RETURN(int32_t nice_value, r.GetI32());
    req.nice_value = nice_value;
  }
  FORKLIFT_ASSIGN_OR_RETURN(uint32_t nrlim, r.GetU32());
  if (nrlim > 64) {
    return LogicalError("DecodeSpawnRequest: too many rlimits");
  }
  for (uint32_t i = 0; i < nrlim; ++i) {
    RlimitSpec spec;
    FORKLIFT_ASSIGN_OR_RETURN(spec.resource, r.GetI32());
    FORKLIFT_ASSIGN_OR_RETURN(uint64_t cur, r.GetU64());
    FORKLIFT_ASSIGN_OR_RETURN(uint64_t max, r.GetU64());
    spec.limit.rlim_cur = cur;
    spec.limit.rlim_max = max;
    req.rlimits.push_back(spec);
  }

  FORKLIFT_ASSIGN_OR_RETURN(uint32_t nops, r.GetU32());
  if (nops > 4096) {
    return LogicalError("DecodeSpawnRequest: too many fd ops");
  }
  auto resolve_src = [&received_fds](int32_t src, uint32_t idx) -> Result<int> {
    if (src == kSrcIsTransfer) {
      if (idx >= received_fds.size()) {
        return LogicalError("DecodeSpawnRequest: transfer index out of range");
      }
      return received_fds[idx].get();
    }
    if (src < CompiledFdPlan::kScratchBase) {
      return LogicalError("DecodeSpawnRequest: literal source below scratch base");
    }
    return static_cast<int>(src);
  };
  for (uint32_t i = 0; i < nops; ++i) {
    FORKLIFT_ASSIGN_OR_RETURN(uint8_t tag, r.GetU8());
    CompiledFdOp op;
    switch (tag) {
      case kOpDupToScratch: {
        op.kind = CompiledFdOp::Kind::kDupToScratch;
        FORKLIFT_ASSIGN_OR_RETURN(int32_t src, r.GetI32());
        FORKLIFT_ASSIGN_OR_RETURN(uint32_t idx, r.GetU32());
        FORKLIFT_ASSIGN_OR_RETURN(op.src_fd, resolve_src(src, idx));
        FORKLIFT_ASSIGN_OR_RETURN(op.scratch_fd, r.GetI32());
        break;
      }
      case kOpDup2: {
        op.kind = CompiledFdOp::Kind::kDup2;
        FORKLIFT_ASSIGN_OR_RETURN(int32_t src, r.GetI32());
        FORKLIFT_ASSIGN_OR_RETURN(uint32_t idx, r.GetU32());
        FORKLIFT_ASSIGN_OR_RETURN(op.src_fd, resolve_src(src, idx));
        FORKLIFT_ASSIGN_OR_RETURN(op.dst_fd, r.GetI32());
        if (op.dst_fd < 0 || op.dst_fd >= CompiledFdPlan::kScratchBase) {
          return LogicalError("DecodeSpawnRequest: dup2 target out of range");
        }
        break;
      }
      case kOpOpen: {
        op.kind = CompiledFdOp::Kind::kOpen;
        FORKLIFT_ASSIGN_OR_RETURN(op.dst_fd, r.GetI32());
        FORKLIFT_ASSIGN_OR_RETURN(op.path, r.GetString());
        FORKLIFT_ASSIGN_OR_RETURN(op.flags, r.GetI32());
        FORKLIFT_ASSIGN_OR_RETURN(uint32_t mode, r.GetU32());
        op.mode = static_cast<mode_t>(mode);
        if (op.dst_fd < 0 || op.dst_fd >= CompiledFdPlan::kScratchBase) {
          return LogicalError("DecodeSpawnRequest: open target out of range");
        }
        break;
      }
      case kOpClose: {
        op.kind = CompiledFdOp::Kind::kClose;
        FORKLIFT_ASSIGN_OR_RETURN(op.dst_fd, r.GetI32());
        if (op.dst_fd < 0) {
          return LogicalError("DecodeSpawnRequest: close target negative");
        }
        break;
      }
      case kOpCloseScratch: {
        op.kind = CompiledFdOp::Kind::kCloseScratch;
        FORKLIFT_ASSIGN_OR_RETURN(op.scratch_fd, r.GetI32());
        break;
      }
      default:
        return LogicalError("DecodeSpawnRequest: unknown fd op tag");
    }
    req.fd_plan.ops.push_back(std::move(op));
  }
  FORKLIFT_ASSIGN_OR_RETURN(uint32_t nfds, r.GetU32());
  if (nfds != received_fds.size()) {
    return LogicalError("DecodeSpawnRequest: fd count mismatch (frame says " +
                        std::to_string(nfds) + ", received " +
                        std::to_string(received_fds.size()) + ")");
  }
  if (!r.AtEnd()) {
    return LogicalError("DecodeSpawnRequest: trailing bytes");
  }
  return req;
}

std::string EncodeSpawnReply(const SpawnReply& reply) {
  WireWriter w;
  w.PutU32(kMagic);
  w.PutU32(kForkServerProtocolVersion);
  w.PutU32(static_cast<uint32_t>(MsgType::kSpawnReply));
  w.PutBool(reply.ok);
  w.PutI32(reply.pid);
  w.PutI32(reply.err);
  w.PutString(reply.context);
  return w.Take();
}

Result<SpawnReply> DecodeSpawnReply(std::string_view payload) {
  WireReader r(payload);
  FORKLIFT_ASSIGN_OR_RETURN(MsgType type, DecodeHeader(r));
  if (type != MsgType::kSpawnReply) {
    return LogicalError("DecodeSpawnReply: wrong message type");
  }
  SpawnReply reply;
  FORKLIFT_ASSIGN_OR_RETURN(reply.ok, r.GetBool());
  FORKLIFT_ASSIGN_OR_RETURN(reply.pid, r.GetI32());
  FORKLIFT_ASSIGN_OR_RETURN(reply.err, r.GetI32());
  FORKLIFT_ASSIGN_OR_RETURN(reply.context, r.GetString());
  if (!r.AtEnd()) {
    return LogicalError("DecodeSpawnReply: trailing bytes");
  }
  return reply;
}

std::string EncodeWait(int32_t pid) {
  WireWriter w;
  w.PutU32(kMagic);
  w.PutU32(kForkServerProtocolVersion);
  w.PutU32(static_cast<uint32_t>(MsgType::kWait));
  w.PutI32(pid);
  return w.Take();
}

Result<int32_t> DecodeWait(std::string_view payload) {
  WireReader r(payload);
  FORKLIFT_ASSIGN_OR_RETURN(MsgType type, DecodeHeader(r));
  if (type != MsgType::kWait) {
    return LogicalError("DecodeWait: wrong message type");
  }
  FORKLIFT_ASSIGN_OR_RETURN(int32_t pid, r.GetI32());
  if (!r.AtEnd()) {
    return LogicalError("DecodeWait: trailing bytes");
  }
  return pid;
}

std::string EncodeWaitReply(const WaitReply& reply) {
  WireWriter w;
  w.PutU32(kMagic);
  w.PutU32(kForkServerProtocolVersion);
  w.PutU32(static_cast<uint32_t>(MsgType::kWaitReply));
  w.PutBool(reply.ok);
  w.PutBool(reply.status.exited);
  w.PutI32(reply.status.exit_code);
  w.PutBool(reply.status.signaled);
  w.PutI32(reply.status.term_signal);
  w.PutI32(reply.err);
  w.PutString(reply.context);
  return w.Take();
}

Result<WaitReply> DecodeWaitReply(std::string_view payload) {
  WireReader r(payload);
  FORKLIFT_ASSIGN_OR_RETURN(MsgType type, DecodeHeader(r));
  if (type != MsgType::kWaitReply) {
    return LogicalError("DecodeWaitReply: wrong message type");
  }
  WaitReply reply;
  FORKLIFT_ASSIGN_OR_RETURN(reply.ok, r.GetBool());
  FORKLIFT_ASSIGN_OR_RETURN(reply.status.exited, r.GetBool());
  FORKLIFT_ASSIGN_OR_RETURN(reply.status.exit_code, r.GetI32());
  FORKLIFT_ASSIGN_OR_RETURN(reply.status.signaled, r.GetBool());
  FORKLIFT_ASSIGN_OR_RETURN(reply.status.term_signal, r.GetI32());
  FORKLIFT_ASSIGN_OR_RETURN(reply.err, r.GetI32());
  FORKLIFT_ASSIGN_OR_RETURN(reply.context, r.GetString());
  if (!r.AtEnd()) {
    return LogicalError("DecodeWaitReply: trailing bytes");
  }
  return reply;
}

std::string EncodeControl(MsgType type) { return EncodeHeader(type); }

}  // namespace forklift
