// forklift/forkserver: the request/reply protocol.
//
// The fork server is the paper's §6 observation made concrete: the ecosystem's
// surviving legitimate use of fork is a small, early-forked "zygote" that
// creates processes on behalf of large clients, because forking a small
// process is cheap while forking the client is not. The protocol ships a
// resolved SpawnRequest (argv/env/attrs/fd-plan) to the zygote; descriptors
// referenced by the plan travel as SCM_RIGHTS and are renumbered on arrival,
// so the plan encodes them as transfer *indices*, not raw fd numbers.
#ifndef SRC_FORKSERVER_PROTOCOL_H_
#define SRC_FORKSERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/syscall.h"
#include "src/common/unique_fd.h"
#include "src/spawn/backend.h"

namespace forklift {

inline constexpr uint32_t kForkServerProtocolVersion = 1;

enum class MsgType : uint32_t {
  kSpawn = 1,       // client → server: launch this request
  kSpawnReply = 2,  // server → client: pid or error
  kWait = 3,        // client → server: block until pid exits
  kWaitReply = 4,   // server → client: decoded exit status
  kPing = 5,        // client → server: liveness probe
  kPong = 6,        // server → client
  kShutdown = 7,    // client → server: drain and exit
  kShutdownAck = 8, // server → client
  kNewChannel = 9,      // client → server: adopt the attached socket as a new client
  kNewChannelAck = 10,  // server → client
};

// A SpawnRequest plus the descriptor list its plan references. Local fd
// numbers in dup2 sources are replaced by indices into `fds` during encoding.
struct WireSpawnRequest {
  SpawnRequest request;
  std::vector<int> fds;  // borrowed fds to transfer (encode side)
};

// Encodes header {version, type} + typed payload.
std::string EncodeHeader(MsgType type);
// Decodes and validates the header, leaving the reader at the payload.
Result<MsgType> DecodeHeader(class WireReader& reader);

// kSpawn. Returns the payload and fills `fds_out` with the descriptors (in
// transfer order) the frame must carry.
Result<std::string> EncodeSpawnRequest(const SpawnRequest& request, std::vector<int>* fds_out);

// Decodes a kSpawn payload. `received_fds` are the SCM_RIGHTS descriptors in
// arrival order; the decoded plan's sources point at their (renumbered) fd
// values. Ownership of the fds stays with the caller; the returned request
// borrows them and must be launched before they are released.
Result<SpawnRequest> DecodeSpawnRequest(std::string_view payload,
                                        const std::vector<UniqueFd>& received_fds);

// kSpawnReply.
struct SpawnReply {
  bool ok = false;
  int32_t pid = -1;
  int32_t err = 0;
  std::string context;
};
std::string EncodeSpawnReply(const SpawnReply& reply);
Result<SpawnReply> DecodeSpawnReply(std::string_view payload);

// kWait / kWaitReply.
std::string EncodeWait(int32_t pid);
Result<int32_t> DecodeWait(std::string_view payload);

struct WaitReply {
  bool ok = false;
  ExitStatus status;
  int32_t err = 0;
  std::string context;
};
std::string EncodeWaitReply(const WaitReply& reply);
Result<WaitReply> DecodeWaitReply(std::string_view payload);

// Bare control messages (kPing/kPong/kShutdown/kShutdownAck) are header-only.
std::string EncodeControl(MsgType type);

}  // namespace forklift

#endif  // SRC_FORKSERVER_PROTOCOL_H_
