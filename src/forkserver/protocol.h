// forklift/forkserver: the request/reply protocol.
//
// The fork server is the paper's §6 observation made concrete: the ecosystem's
// surviving legitimate use of fork is a small, early-forked "zygote" that
// creates processes on behalf of large clients, because forking a small
// process is cheap while forking the client is not. The protocol ships a
// resolved SpawnRequest (argv/env/attrs/fd-plan) to the zygote; descriptors
// referenced by the plan travel as SCM_RIGHTS and are renumbered on arrival,
// so the plan encodes them as transfer *indices*, not raw fd numbers.
#ifndef SRC_FORKSERVER_PROTOCOL_H_
#define SRC_FORKSERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/syscall.h"
#include "src/common/unique_fd.h"
#include "src/spawn/backend.h"

namespace forklift {

// Protocol versions are per-frame: every frame carries the version it was
// encoded with, and the server answers in the version of the request, so a v1
// client and a v2 client can share one server (and one channel can in
// principle mix versions frame by frame). v2 adds a u64 `request_id` after
// the {magic, version, type} words; replies echo it, which is what lets a
// client keep many requests in flight and match out-of-order completions.
inline constexpr uint32_t kForkServerProtocolV1 = 1;
inline constexpr uint32_t kForkServerProtocolV2 = 2;
inline constexpr uint32_t kForkServerProtocolVersion = kForkServerProtocolV2;

enum class MsgType : uint32_t {
  kSpawn = 1,       // client → server: launch this request
  kSpawnReply = 2,  // server → client: pid or error
  kWait = 3,        // client → server: block until pid exits
  kWaitReply = 4,   // server → client: decoded exit status
  kPing = 5,        // client → server: liveness probe
  kPong = 6,        // server → client
  kShutdown = 7,    // client → server: drain and exit
  kShutdownAck = 8, // server → client
  kNewChannel = 9,      // client → server: adopt the attached socket as a new client
  kNewChannelAck = 10,  // server → client
  kStats = 11,          // client → server: render the metrics registry
  kStatsReply = 12,     // server → client: rendered export (or error)
  kSpawnBatch = 13,     // client → server: N spawn requests in one frame
};

// Cap on entries per kSpawnBatch frame. Generous relative to useful burst
// sizes (the client chunks far below this); exists so a hostile count can't
// drive allocation.
inline constexpr uint32_t kMaxSpawnBatch = 1024;

// A SpawnRequest plus the descriptor list its plan references. Local fd
// numbers in dup2 sources are replaced by indices into `fds` during encoding.
struct WireSpawnRequest {
  SpawnRequest request;
  std::vector<int> fds;  // borrowed fds to transfer (encode side)
};

// Per-frame framing metadata. Defaults encode a v1 frame (request_id is not
// on the wire), which keeps every pre-pipelining call site byte-identical;
// pipelining callers pass {kForkServerProtocolV2, id}.
struct FrameMeta {
  uint32_t version = kForkServerProtocolV1;
  uint64_t request_id = 0;
};

// A decoded frame header: the message type plus the framing metadata the
// reply must echo.
struct FrameHeader {
  MsgType type = MsgType::kSpawn;
  FrameMeta meta;
};

// Encodes header {magic, version, type[, request_id]} + typed payload.
void EncodeHeaderInto(class WireWriter& w, MsgType type, const FrameMeta& meta);
std::string EncodeHeader(MsgType type, const FrameMeta& meta = {});
// Decodes and validates the header, leaving the reader at the payload. Both
// protocol versions are accepted; v1 frames decode with request_id == 0.
Result<FrameHeader> DecodeHeader(class WireReader& reader);

// kSpawn. Returns the payload and fills `fds_out` with the descriptors (in
// transfer order) the frame must carry. The Into variant appends to a
// caller-owned (reusable) writer so a hot-path client can encode every spawn
// into the same scratch buffer; both size the frame up front.
Status EncodeSpawnRequestInto(WireWriter& w, const SpawnRequest& request,
                              std::vector<int>* fds_out, const FrameMeta& meta = {});
Result<std::string> EncodeSpawnRequest(const SpawnRequest& request, std::vector<int>* fds_out,
                                       const FrameMeta& meta = {});

// Decodes a kSpawn payload. `received_fds` are the SCM_RIGHTS descriptors in
// arrival order; the decoded plan's sources point at their (renumbered) fd
// values. Ownership of the fds stays with the caller; the returned request
// borrows them and must be launched before they are released. When `meta` is
// non-null it receives the frame's version/request_id.
Result<SpawnRequest> DecodeSpawnRequest(std::string_view payload,
                                        const std::vector<UniqueFd>& received_fds,
                                        FrameMeta* meta = nullptr);

// kSpawnBatch: N spawn requests in one frame, amortizing framing and wire
// syscalls across a burst. Layout after the v2 header: u32 count, then per
// entry a u32 body length and the same body bytes a kSpawn frame carries (fd
// transfer indices are LOCAL to the entry; each body ends with its own fd
// count). The frame's request_id is the BASE of a contiguous range allocated
// with obs::NextRequestIdRange(count): entry i is answered by an ordinary
// kSpawnReply under request_id base+i, so batch replies flow through the same
// completion machinery as single spawns. Batch frames are v2-only — without a
// request_id there is no way to correlate the N replies.
Status EncodeSpawnBatchInto(WireWriter& w, const std::vector<SpawnRequest>& requests,
                            std::vector<int>* fds_out, const FrameMeta& meta);

// Decodes a kSpawnBatch payload. `received_fds` is the concatenation of every
// entry's descriptors in entry order; each entry's local indices are resolved
// against its own slice. All-or-nothing: any malformed entry fails the whole
// frame (the server then answers every slot in the id range with an error).
Result<std::vector<SpawnRequest>> DecodeSpawnBatch(std::string_view payload,
                                                   const std::vector<UniqueFd>& received_fds,
                                                   FrameMeta* meta = nullptr);

// Reads just the header + entry count of a kSpawnBatch frame, so a server
// whose full decode failed can still address the right number of error
// replies at the right id range.
Result<uint32_t> PeekSpawnBatchCount(std::string_view payload, FrameMeta* meta = nullptr);

// kSpawnReply.
struct SpawnReply {
  bool ok = false;
  int32_t pid = -1;
  int32_t err = 0;
  std::string context;
};
std::string EncodeSpawnReply(const SpawnReply& reply, const FrameMeta& meta = {});
Result<SpawnReply> DecodeSpawnReply(std::string_view payload, FrameMeta* meta = nullptr);

// kWait / kWaitReply.
std::string EncodeWait(int32_t pid, const FrameMeta& meta = {});
Result<int32_t> DecodeWait(std::string_view payload, FrameMeta* meta = nullptr);

struct WaitReply {
  bool ok = false;
  ExitStatus status;
  int32_t err = 0;
  std::string context;
};
std::string EncodeWaitReply(const WaitReply& reply, const FrameMeta& meta = {});
Result<WaitReply> DecodeWaitReply(std::string_view payload, FrameMeta* meta = nullptr);

// kStats / kStatsReply. The request carries one format byte (the
// obs::StatsFormat wire value: 0 = Prometheus text, 1 = JSON); the reply
// carries the rendered export body, or an {err, context} pair when rendering
// failed server-side.
std::string EncodeStatsRequest(uint8_t format, const FrameMeta& meta = {});
Result<uint8_t> DecodeStatsRequest(std::string_view payload, FrameMeta* meta = nullptr);

struct StatsReply {
  bool ok = false;
  int32_t err = 0;
  std::string context;
  std::string body;  // the rendered export when ok
};
std::string EncodeStatsReply(const StatsReply& reply, const FrameMeta& meta = {});
Result<StatsReply> DecodeStatsReply(std::string_view payload, FrameMeta* meta = nullptr);

// Bare control messages (kPing/kPong/kShutdown/kShutdownAck) are header-only.
std::string EncodeControl(MsgType type, const FrameMeta& meta = {});

}  // namespace forklift

#endif  // SRC_FORKSERVER_PROTOCOL_H_
