#include "src/forkserver/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <string>
#include <utility>
#include <vector>

#include "src/common/log.h"
#include "src/common/pipe.h"
#include "src/common/syscall.h"
#include "src/forkserver/fd_transfer.h"
#include "src/forkserver/protocol.h"
#include "src/forkserver/wire.h"
#include "src/spawn/backend.h"

namespace forklift {

namespace {

// Received descriptors are renumbered here so they can never collide with the
// request's plan targets (< CompiledFdPlan::kScratchBase) or its scratch range.
constexpr int kTransferFdFloor = 600;

}  // namespace

ForkServer::ForkServer(UniqueFd sock) { socks_.push_back(std::move(sock)); }

Result<ForkServer> ForkServer::Listen(const std::string& path) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    return LogicalError("ForkServer::Listen: socket path too long");
  }
  int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return ErrnoError("socket (forkserver listener)");
  }
  UniqueFd listener(fd);
  ::unlink(path.c_str());  // clear a stale socket from a previous run
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  path.copy(addr.sun_path, sizeof(addr.sun_path) - 1);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return ErrnoError("bind " + path);
  }
  if (::listen(fd, 16) < 0) {
    return ErrnoError("listen " + path);
  }
  ForkServer server;
  server.listener_ = std::move(listener);
  server.listen_path_ = path;
  return server;
}

Result<uint64_t> ForkServer::Serve() {
  while (listener_.valid() || !socks_.empty()) {
    std::vector<pollfd> pfds;
    pfds.reserve(socks_.size() + 1);
    for (const auto& sock : socks_) {
      pfds.push_back(pollfd{sock.get(), POLLIN, 0});
    }
    if (listener_.valid()) {
      pfds.push_back(pollfd{listener_.get(), POLLIN, 0});
    }
    int rc = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), -1);
    if (rc < 0) {
      if (errno == EINTR) {
        continue;
      }
      return ErrnoError("forkserver poll");
    }

    if (listener_.valid() && (pfds.back().revents & POLLIN) != 0) {
      int client = ::accept4(listener_.get(), nullptr, nullptr, SOCK_CLOEXEC);
      if (client >= 0) {
        socks_.emplace_back(client);
      } else if (errno != EINTR && errno != EAGAIN && errno != ECONNABORTED) {
        return ErrnoError("accept (forkserver)");
      }
      continue;  // channel list changed: rebuild the poll set
    }

    // Walk backwards so channel removal does not disturb earlier indices.
    for (size_t i = socks_.size(); i-- > 0;) {
      if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
        continue;
      }
      FORKLIFT_ASSIGN_OR_RETURN(RecvResult rr, RecvFrame(socks_[i].get()));
      if (rr.eof) {
        socks_.erase(socks_.begin() + static_cast<long>(i));
        continue;
      }
      FORKLIFT_ASSIGN_OR_RETURN(bool keep_running, HandleFrame(i, std::move(rr.frame)));
      if (!keep_running) {
        if (!listen_path_.empty()) {
          ::unlink(listen_path_.c_str());
        }
        return spawns_handled_;
      }
    }
  }
  if (!listen_path_.empty()) {
    ::unlink(listen_path_.c_str());
  }
  return spawns_handled_;
}

Result<bool> ForkServer::HandleFrame(size_t idx, Frame frame) {
  int sock = socks_[idx].get();
  WireReader reader(frame.payload);
  auto type = DecodeHeader(reader);
  if (!type.ok()) {
    SpawnReply reply;
    reply.ok = false;
    reply.context = type.error().ToString();
    FORKLIFT_RETURN_IF_ERROR(SendFrame(sock, EncodeSpawnReply(reply)));
    return true;
  }

  switch (*type) {
    case MsgType::kSpawn: {
      FORKLIFT_RETURN_IF_ERROR(HandleSpawn(sock, frame.payload, std::move(frame.fds)));
      return true;
    }
    case MsgType::kWait: {
      FORKLIFT_RETURN_IF_ERROR(HandleWait(sock, frame.payload));
      return true;
    }
    case MsgType::kPing: {
      FORKLIFT_RETURN_IF_ERROR(SendFrame(sock, EncodeControl(MsgType::kPong)));
      return true;
    }
    case MsgType::kNewChannel: {
      if (frame.fds.size() != 1) {
        SpawnReply reply;
        reply.ok = false;
        reply.context = "forkserver: kNewChannel must carry exactly one socket";
        FORKLIFT_RETURN_IF_ERROR(SendFrame(sock, EncodeSpawnReply(reply)));
        return true;
      }
      socks_.push_back(std::move(frame.fds[0]));
      FORKLIFT_RETURN_IF_ERROR(SendFrame(sock, EncodeControl(MsgType::kNewChannelAck)));
      return true;
    }
    case MsgType::kShutdown: {
      FORKLIFT_RETURN_IF_ERROR(SendFrame(sock, EncodeControl(MsgType::kShutdownAck)));
      return false;
    }
    default: {
      SpawnReply reply;
      reply.ok = false;
      reply.context = "forkserver: unexpected message type";
      FORKLIFT_RETURN_IF_ERROR(SendFrame(sock, EncodeSpawnReply(reply)));
      return true;
    }
  }
}

Status ForkServer::HandleSpawn(int sock, const std::string& payload,
                               std::vector<UniqueFd> fds) {
  // Renumber every received descriptor above the plan's reachable range.
  std::vector<UniqueFd> high_fds;
  high_fds.reserve(fds.size());
  for (auto& fd : fds) {
    int high = ::fcntl(fd.get(), F_DUPFD_CLOEXEC, kTransferFdFloor);
    if (high < 0) {
      SpawnReply reply;
      reply.ok = false;
      reply.err = errno;
      reply.context = "forkserver: relocating transferred fd";
      return SendFrame(sock, EncodeSpawnReply(reply));
    }
    high_fds.emplace_back(high);
    fd.Reset();
  }

  auto req = DecodeSpawnRequest(payload, high_fds);
  SpawnReply reply;
  if (!req.ok()) {
    reply.ok = false;
    reply.err = req.error().code();
    reply.context = req.error().ToString();
  } else {
    auto pid = ForkExecBackend().Launch(*req);
    if (!pid.ok()) {
      reply.ok = false;
      reply.err = pid.error().code();
      reply.context = pid.error().ToString();
    } else {
      reply.ok = true;
      reply.pid = static_cast<int32_t>(*pid);
      live_children_.insert(*pid);
      ++spawns_handled_;
    }
  }
  return SendFrame(sock, EncodeSpawnReply(reply));
}

Status ForkServer::HandleWait(int sock, const std::string& payload) {
  auto pid = DecodeWait(payload);
  WaitReply reply;
  if (!pid.ok()) {
    reply.ok = false;
    reply.context = pid.error().ToString();
  } else if (live_children_.count(static_cast<pid_t>(*pid)) == 0) {
    reply.ok = false;
    reply.err = ECHILD;
    reply.context = "forkserver: pid " + std::to_string(*pid) + " is not a live child";
  } else {
    auto st = WaitForExit(static_cast<pid_t>(*pid));
    if (!st.ok()) {
      reply.ok = false;
      reply.err = st.error().code();
      reply.context = st.error().ToString();
    } else {
      reply.ok = true;
      reply.status = *st;
      live_children_.erase(static_cast<pid_t>(*pid));
    }
  }
  return SendFrame(sock, EncodeWaitReply(reply));
}

Result<ForkServerHandle> StartForkServerProcess() {
  FORKLIFT_ASSIGN_OR_RETURN(SocketPair sp, MakeSocketPair());
  pid_t pid = ::fork();
  if (pid < 0) {
    return ErrnoError("fork (starting fork server)");
  }
  if (pid == 0) {
    // Server process. Drop the client end; serve; die quietly. The zygote
    // inherits the parent's current (ideally small) address space — starting
    // it early is the documented contract.
    sp.first.Reset();
    ForkServer server(std::move(sp.second));
    auto served = server.Serve();
    if (!served.ok()) {
      FORKLIFT_ERROR("fork server terminating on transport error: %s",
                     served.error().ToString().c_str());
      _exit(1);
    }
    _exit(0);
  }
  ForkServerHandle handle;
  handle.client_sock = std::move(sp.first);
  handle.server_pid = pid;
  return handle;
}

}  // namespace forklift
