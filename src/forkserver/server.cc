#include "src/forkserver/server.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/epoll.h>
#include <sys/signalfd.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "src/common/log.h"
#include "src/common/pipe.h"
#include "src/faultinject/faultinject.h"
#include "src/forkserver/fd_transfer.h"
#include "src/forkserver/protocol.h"
#include "src/forkserver/wire.h"
#include "src/obs/export.h"
#include "src/obs/registry.h"
#include "src/spawn/backend.h"

namespace forklift {

namespace {

// Received descriptors are renumbered here so they can never collide with the
// request's plan targets (< CompiledFdPlan::kScratchBase) or its scratch range.
constexpr int kTransferFdFloor = 600;

// Bind + listen a non-blocking AF_UNIX stream socket at `path`, unlinking any
// stale file first. Shared by the spawn and metrics listeners.
Result<UniqueFd> BindUnixListener(const std::string& path) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    return LogicalError("ForkServer: socket path too long");
  }
  int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return ErrnoError("socket (forkserver listener)");
  }
  UniqueFd listener(fd);
  // Non-blocking: in shard mode several processes accept(2) on one listener,
  // and a connection raced away by a sibling must not park a shard inside a
  // blocking accept. OnListenerReadable already treats EAGAIN as "someone
  // else got it".
  int flags = ::fcntl(fd, F_GETFL);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoError("fcntl O_NONBLOCK (forkserver listener)");
  }
  ::unlink(path.c_str());  // clear a stale socket from a previous run
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  path.copy(addr.sun_path, sizeof(addr.sun_path) - 1);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return ErrnoError("bind " + path);
  }
  if (::listen(fd, 64) < 0) {
    return ErrnoError("listen " + path);
  }
  return listener;
}

obs::Histogram& FramesPerFlush() {
  static obs::Histogram h =
      obs::MetricsRegistry::Global().GetHistogram("forklift_wire_frames_per_flush");
  return h;
}

}  // namespace

ForkServer::ForkServer(UniqueFd sock) { socks_.push_back(std::move(sock)); }

Result<ForkServer> ForkServer::Listen(const std::string& path) {
  FORKLIFT_ASSIGN_OR_RETURN(UniqueFd listener, BindUnixListener(path));
  ForkServer server;
  server.listener_ = std::move(listener);
  server.listen_path_ = path;
  return server;
}

Status ForkServer::ListenMetrics(const std::string& path) {
  FORKLIFT_ASSIGN_OR_RETURN(metrics_listener_, BindUnixListener(path));
  metrics_listen_path_ = path;
  return Status::Ok();
}

Status ForkServer::RegisterChannel(int fd) {
  // Non-blocking so the drain loop can empty the socket and stop on EAGAIN
  // instead of guessing how much one event is worth. (AF_UNIX fd passing
  // means each end is its own file description; this never flips the peer.)
  FORKLIFT_RETURN_IF_ERROR(SetNonBlocking(fd, true));
  channels_.emplace(fd, Channel{});
  return reactor_->AddFd(fd, EPOLLIN, [this, fd](uint32_t) { OnChannelReadable(fd); });
}

void ForkServer::CloseChannel(int fd) {
  (void)reactor_->RemoveFd(fd);
  channels_.erase(fd);
  // Waits parked by this channel die with it — their fd number may be reused
  // by the next accept, and a reply there would correlate to a stranger.
  for (auto& [pid, waiters] : parked_waits_) {
    (void)pid;
    std::erase_if(waiters, [fd](const ParkedWait& w) { return w.sock == fd; });
  }
  std::erase_if(parked_waits_, [](const auto& entry) { return entry.second.empty(); });
  for (auto it = socks_.begin(); it != socks_.end(); ++it) {
    if (it->get() == fd) {
      socks_.erase(it);
      return;
    }
  }
}

void ForkServer::OnListenerReadable(int listener_fd) {
  int client = ::accept4(listener_fd, nullptr, nullptr, SOCK_CLOEXEC);
  if (client < 0) {
    if (errno != EINTR && errno != EAGAIN && errno != ECONNABORTED) {
      serve_error_ = ErrnoError("accept (forkserver)");
    }
    return;
  }
  socks_.emplace_back(client);
  Status registered = RegisterChannel(client);
  if (!registered.ok()) {
    serve_error_ = registered;
  }
}

void ForkServer::QueueReply(int sock, std::string_view payload) {
  auto it = channels_.find(sock);
  if (it == channels_.end()) {
    // Not a registered channel (closed underneath a parked wait, or a test
    // driving handlers directly): best-effort immediate send.
    (void)SendFrame(sock, payload);
    return;
  }
  const uint32_t len = static_cast<uint32_t>(payload.size());
  char prefix[sizeof(len)];
  std::memcpy(prefix, &len, sizeof(len));
  it->second.out.append(prefix, sizeof(len));
  it->second.out.append(payload);
  ++it->second.out_frames;
}

Status ForkServer::FlushReplies(int sock) {
  auto it = channels_.find(sock);
  if (it == channels_.end() || it->second.out.empty()) {
    return Status::Ok();
  }
  // Move the burst out before writing: the write can yield (EAGAIN park) and
  // by the time it finishes a parked-wait completion may queue more.
  std::string out = std::move(it->second.out);
  const size_t frames = it->second.out_frames;
  it->second.out.clear();
  it->second.out_frames = 0;
  struct iovec iov;
  iov.iov_base = out.data();
  iov.iov_len = out.size();
  auto sent = SendGathered(sock, &iov, 1, {});
  FramesPerFlush().Observe(frames);
  if (!sent.ok()) {
    return Err(sent.error());
  }
  // Hand the (now empty) buffer's capacity back to the channel if nothing
  // else was queued meanwhile.
  it = channels_.find(sock);
  if (it != channels_.end() && it->second.out.empty()) {
    out.clear();
    it->second.out = std::move(out);
  }
  return Status::Ok();
}

void ForkServer::OnChannelReadable(int fd) {
  // Stale-event guard: a callback earlier in this epoll batch may have closed
  // a channel whose fd number was immediately reused by something that is not
  // a channel (a spawned child's pipe). Only registered channels are read.
  if (channels_.find(fd) == channels_.end()) {
    return;
  }
  // Drain everything the socket holds and handle every complete frame per
  // wakeup — replies accumulate in the channel's out-buffer and leave in one
  // writev below. The channel iterator is re-found per frame: a handler can
  // close channels (parked-wait completion to a broken peer) or adopt new
  // ones mid-burst.
  bool at_eof = false;
  for (;;) {
    auto it = channels_.find(fd);
    if (it == channels_.end()) {
      return;  // closed by a handler mid-burst
    }
    auto drained = DrainSocketInto(fd, &it->second.in);
    if (!drained.ok()) {
      serve_error_ = Err(drained.error());
      return;
    }
    at_eof = drained->eof;
    for (;;) {
      it = channels_.find(fd);
      if (it == channels_.end()) {
        return;
      }
      Frame frame;
      auto has = it->second.in.Next(&frame);
      if (!has.ok()) {
        serve_error_ = Err(has.error());
        return;
      }
      if (!*has) {
        break;
      }
      auto keep_running = HandleFrame(fd, std::move(frame));
      if (!keep_running.ok()) {
        serve_error_ = Err(keep_running.error());
        return;
      }
      if (!*keep_running) {
        stop_serving_ = true;
        Status flushed = FlushReplies(fd);
        if (!flushed.ok()) {
          serve_error_ = flushed;
        }
        return;
      }
    }
    if (at_eof || drained->would_block) {
      break;
    }
    // Full gulp with neither EAGAIN nor EOF: the socket may hold more.
  }
  Status flushed = FlushReplies(fd);
  if (!flushed.ok()) {
    serve_error_ = flushed;
    return;
  }
  if (at_eof) {
    auto it = channels_.find(fd);
    if (it != channels_.end()) {
      if (it->second.in.buffered() != 0) {
        serve_error_ = LogicalError("forkserver: peer closed mid-frame");
        return;
      }
      CloseChannel(fd);
    }
  }
}

void ForkServer::CompleteParkedWaits(pid_t pid, const ExitStatus& status) {
  auto it = parked_waits_.find(pid);
  if (it == parked_waits_.end()) {
    return;
  }
  std::vector<ParkedWait> waiters = std::move(it->second);
  parked_waits_.erase(it);
  live_children_.erase(pid);
  exited_.erase(pid);
  WaitReply reply;
  reply.ok = true;
  reply.status = status;
  for (const auto& w : waiters) {
    QueueReply(w.sock, EncodeWaitReply(reply, w.meta));
    Status sent = FlushReplies(w.sock);
    if (!sent.ok()) {
      // The waiter's channel broke while its wait was parked: that client is
      // gone, not the server — drop the channel and keep serving.
      CloseChannel(w.sock);
    }
  }
}

void ForkServer::ArmChildExitWatch(pid_t pid) {
  if (!reactor_.has_value()) {
    return;
  }
  // Eagerly reap the instant the pidfd signals so the zombie is short-lived
  // and the eventual kWait is served from exited_ without blocking — and any
  // wait already parked on this child is answered right here, out of order
  // with whatever else the channels are doing. ECHILD (already reaped by the
  // blocking v1 HandleWait path) leaves no cache entry.
  auto watch = ChildWatch::Arm(*reactor_, pid, [this, pid] {
    int raw = 0;
    pid_t reaped = ::waitpid(pid, &raw, WNOHANG);
    if (reaped == pid) {
      ExitStatus status = DecodeWaitStatus(raw);
      exited_.emplace(pid, status);
      CompleteParkedWaits(pid, status);
    }
    watches_.erase(pid);
  });
  if (watch.ok()) {
    watches_.emplace(pid, std::move(*watch));
  }
}

Result<uint64_t> ForkServer::Serve() {
  FORKLIFT_ASSIGN_OR_RETURN(Reactor reactor, Reactor::Create());
  reactor_.emplace(std::move(reactor));
  stop_serving_ = false;
  serve_error_ = Status::Ok();

  Status error;
  if (listener_.valid()) {
    int fd = listener_.get();
    error = reactor_->AddFd(fd, EPOLLIN, [this, fd](uint32_t) { OnListenerReadable(fd); });
  }
  if (error.ok() && metrics_listener_.valid()) {
    // Metrics scrapers are ordinary channels on a dedicated socket: they can
    // only usefully send kStats, but the framing and dispatch are identical.
    int fd = metrics_listener_.get();
    error = reactor_->AddFd(fd, EPOLLIN, [this, fd](uint32_t) { OnListenerReadable(fd); });
  }
  if (error.ok() && sigusr1_dump_) {
    // Dump-on-signal: block SIGUSR1 and route it through the reactor so the
    // dump happens on the serve thread, not in async-signal context.
    sigset_t mask;
    ::sigemptyset(&mask);
    ::sigaddset(&mask, SIGUSR1);
    ::sigprocmask(SIG_BLOCK, &mask, nullptr);
    int sfd = ::signalfd(-1, &mask, SFD_CLOEXEC | SFD_NONBLOCK);
    if (sfd < 0) {
      error = ErrnoError("signalfd (forkserver stats dump)");
    } else {
      sigusr1_fd_ = UniqueFd(sfd);
      error = reactor_->AddFd(sfd, EPOLLIN, [this, sfd](uint32_t) {
        signalfd_siginfo info;
        while (::read(sfd, &info, sizeof(info)) == static_cast<ssize_t>(sizeof(info))) {
        }
        (void)obs::WriteExportToFd(STDERR_FILENO, obs::RenderPrometheus());
      });
    }
  }
  for (const auto& sock : socks_) {
    if (!error.ok()) {
      break;
    }
    error = RegisterChannel(sock.get());
  }

  // One epoll set multiplexes channels, the listener, and child pidfds; the
  // loop parks here until any of them has work.
  while (error.ok() && !stop_serving_ &&
         (listener_.valid() || metrics_listener_.valid() || !socks_.empty())) {
    auto dispatched = reactor_->PollOnce(-1);
    if (!dispatched.ok()) {
      error = Err(dispatched.error());
      break;
    }
    if (!serve_error_.ok()) {
      error = serve_error_;
      break;
    }
  }

  // Drop every registration (watches first — they deregister against the
  // reactor) so no callback capturing `this` outlives Serve. Waits still
  // parked die with their channels; their clients see EOF.
  watches_.clear();
  parked_waits_.clear();
  channels_.clear();
  reactor_.reset();
  if (sigusr1_fd_.valid()) {
    sigusr1_fd_.Reset();
    sigset_t mask;
    ::sigemptyset(&mask);
    ::sigaddset(&mask, SIGUSR1);
    ::sigprocmask(SIG_UNBLOCK, &mask, nullptr);
  }
  if (!listen_path_.empty()) {
    ::unlink(listen_path_.c_str());
  }
  if (!metrics_listen_path_.empty()) {
    ::unlink(metrics_listen_path_.c_str());
  }
  if (!error.ok()) {
    return Err(error.error());
  }
  return spawns_handled_;
}

Result<bool> ForkServer::HandleFrame(int sock, Frame frame) {
  WireReader reader(frame.payload);
  auto hdr = DecodeHeader(reader);
  if (!hdr.ok()) {
    // Unparseable header: there is no version or request_id to echo, so the
    // error reply is a v1 frame — the one shape every peer can decode.
    SpawnReply reply;
    reply.ok = false;
    reply.context = hdr.error().ToString();
    QueueReply(sock, EncodeSpawnReply(reply));
    return true;
  }

  // Replies speak the version of the request and echo its request_id: this
  // per-frame mirroring IS the version negotiation — v1 peers keep their
  // lockstep framing, v2 peers get correlated out-of-order completions.
  const FrameMeta reply_meta = hdr->meta;
  switch (hdr->type) {
    case MsgType::kSpawn: {
      FORKLIFT_RETURN_IF_ERROR(HandleSpawn(sock, frame.payload, std::move(frame.fds), reply_meta));
      return true;
    }
    case MsgType::kSpawnBatch: {
      FORKLIFT_RETURN_IF_ERROR(
          HandleSpawnBatch(sock, frame.payload, std::move(frame.fds), reply_meta));
      return true;
    }
    case MsgType::kWait: {
      FORKLIFT_RETURN_IF_ERROR(HandleWait(sock, frame.payload, reply_meta));
      return true;
    }
    case MsgType::kStats: {
      FORKLIFT_RETURN_IF_ERROR(HandleStats(sock, frame.payload, reply_meta));
      return true;
    }
    case MsgType::kPing: {
      QueueReply(sock, EncodeControl(MsgType::kPong, reply_meta));
      return true;
    }
    case MsgType::kNewChannel: {
      if (frame.fds.size() != 1) {
        SpawnReply reply;
        reply.ok = false;
        reply.context = "forkserver: kNewChannel must carry exactly one socket";
        QueueReply(sock, EncodeSpawnReply(reply, reply_meta));
        return true;
      }
      int adopted = frame.fds[0].get();
      socks_.push_back(std::move(frame.fds[0]));
      FORKLIFT_RETURN_IF_ERROR(RegisterChannel(adopted));
      QueueReply(sock, EncodeControl(MsgType::kNewChannelAck, reply_meta));
      return true;
    }
    case MsgType::kShutdown: {
      QueueReply(sock, EncodeControl(MsgType::kShutdownAck, reply_meta));
      return false;
    }
    default: {
      SpawnReply reply;
      reply.ok = false;
      reply.context = "forkserver: unexpected message type";
      QueueReply(sock, EncodeSpawnReply(reply, reply_meta));
      return true;
    }
  }
}

Result<std::vector<UniqueFd>> ForkServer::RelocateFds(std::vector<UniqueFd> fds) {
  // Renumber every received descriptor above the plan's reachable range.
  std::vector<UniqueFd> high_fds;
  high_fds.reserve(fds.size());
  for (auto& fd : fds) {
    int high;
    auto inj = fault::Check("forkserver.relocate_fd", fault::Op::kDupFd);
    if (inj.is_errno()) {
      high = -1;
      errno = inj.err;
    } else {
      high = ::fcntl(fd.get(), F_DUPFD_CLOEXEC, kTransferFdFloor);
    }
    if (high < 0) {
      return ErrnoError("forkserver: relocating transferred fd");
    }
    high_fds.emplace_back(high);
    fd.Reset();
  }
  return high_fds;
}

SpawnReply ForkServer::LaunchDecoded(const SpawnRequest& req) {
  SpawnReply reply;
  auto pid = ForkExecBackend().Launch(req);
  if (!pid.ok()) {
    reply.ok = false;
    reply.err = pid.error().code();
    reply.context = pid.error().ToString();
  } else {
    reply.ok = true;
    reply.pid = static_cast<int32_t>(*pid);
    live_children_.insert(*pid);
    ArmChildExitWatch(*pid);
    ++spawns_handled_;
    // Server-side view in the shared arena: with shards forked after the
    // registry arena exists, every shard's spawns land in one counter.
    obs::MetricsRegistry::Global().GetCounter("forklift_forkserver_spawns_total").Increment();
  }
  return reply;
}

Status ForkServer::HandleSpawn(int sock, const std::string& payload,
                               std::vector<UniqueFd> fds, const FrameMeta& reply_meta) {
  auto high_fds = RelocateFds(std::move(fds));
  if (!high_fds.ok()) {
    SpawnReply reply;
    reply.ok = false;
    reply.err = high_fds.error().code();
    reply.context = high_fds.error().ToString();
    QueueReply(sock, EncodeSpawnReply(reply, reply_meta));
    return Status::Ok();
  }

  auto req = DecodeSpawnRequest(payload, *high_fds);
  SpawnReply reply;
  if (!req.ok()) {
    reply.ok = false;
    reply.err = req.error().code();
    reply.context = req.error().ToString();
  } else {
    reply = LaunchDecoded(*req);
  }
  QueueReply(sock, EncodeSpawnReply(reply, reply_meta));
  return Status::Ok();
}

Status ForkServer::HandleSpawnBatch(int sock, const std::string& payload,
                                    std::vector<UniqueFd> fds, const FrameMeta& reply_meta) {
  // Every outcome must answer each entry in the id range [base, base+count)
  // with an ordinary kSpawnReply, so the client's per-slot completion
  // machinery never learns the burst was one frame.
  const auto answer_all = [this, sock, &reply_meta, &payload](const Error& err) {
    SpawnReply reply;
    reply.ok = false;
    reply.err = err.code();
    reply.context = err.ToString();
    // The count peek reads only the header + count word, so it usually
    // survives whatever broke the full decode and every slot in the range
    // gets its error. If even the count is unreadable, answer with an
    // uncorrelated v1 error frame: hanging N slots forever is worse than the
    // client tearing the channel down.
    auto count = PeekSpawnBatchCount(payload);
    if (!count.ok()) {
      QueueReply(sock, EncodeSpawnReply(reply));
      return;
    }
    for (uint32_t i = 0; i < *count; ++i) {
      FrameMeta meta{reply_meta.version, reply_meta.request_id + i};
      QueueReply(sock, EncodeSpawnReply(reply, meta));
    }
  };

  auto high_fds = RelocateFds(std::move(fds));
  if (!high_fds.ok()) {
    answer_all(high_fds.error());
    return Status::Ok();
  }
  auto reqs = DecodeSpawnBatch(payload, *high_fds);
  if (!reqs.ok()) {
    answer_all(reqs.error());
    return Status::Ok();
  }
  for (size_t i = 0; i < reqs->size(); ++i) {
    SpawnReply reply = LaunchDecoded((*reqs)[i]);
    FrameMeta meta{reply_meta.version, reply_meta.request_id + static_cast<uint64_t>(i)};
    QueueReply(sock, EncodeSpawnReply(reply, meta));
  }
  return Status::Ok();
}

Status ForkServer::HandleStats(int sock, const std::string& payload,
                               const FrameMeta& reply_meta) {
  obs::MetricsRegistry::Global().GetCounter("forklift_forkserver_stats_requests_total")
      .Increment();
  StatsReply reply;
  auto format = DecodeStatsRequest(payload);
  if (!format.ok()) {
    reply.ok = false;
    reply.context = format.error().ToString();
  } else if (*format > static_cast<uint8_t>(obs::StatsFormat::kJson)) {
    reply.ok = false;
    reply.context = "forkserver: unknown stats format " + std::to_string(*format);
  } else {
    // The export gate sits in front of the render so an injected export
    // fault degrades to a clean error reply instead of a torn body.
    Status gate = obs::ExportGate();
    if (!gate.ok()) {
      reply.ok = false;
      reply.err = gate.error().code();
      reply.context = gate.error().ToString();
    } else {
      reply.ok = true;
      reply.body = obs::Render(static_cast<obs::StatsFormat>(*format));
    }
  }
  QueueReply(sock, EncodeStatsReply(reply, reply_meta));
  return Status::Ok();
}

Status ForkServer::HandleWait(int sock, const std::string& payload, const FrameMeta& reply_meta) {
  auto pid = DecodeWait(payload);
  WaitReply reply;
  if (!pid.ok()) {
    reply.ok = false;
    reply.context = pid.error().ToString();
  } else if (live_children_.count(static_cast<pid_t>(*pid)) == 0) {
    reply.ok = false;
    reply.err = ECHILD;
    reply.context = "forkserver: pid " + std::to_string(*pid) + " is not a live child";
  } else {
    pid_t p = static_cast<pid_t>(*pid);
    auto cached = exited_.find(p);
    if (cached != exited_.end()) {
      // The reactor already observed the exit and reaped: answer immediately.
      reply.ok = true;
      reply.status = cached->second;
      exited_.erase(cached);
      live_children_.erase(p);
    } else if (reply_meta.version >= kForkServerProtocolV2 && watches_.count(p) > 0) {
      // Not yet exited, and the caller can correlate an out-of-order reply:
      // park the wait on the child's exit watch and keep the channel moving.
      // The reply is sent by CompleteParkedWaits when the pidfd fires.
      parked_waits_[p].push_back(ParkedWait{sock, reply_meta});
      return Status::Ok();
    } else {
      // v1 peer (lockstep framing — an out-of-order park would desequence its
      // replies) or a child whose exit watch failed to arm: disarm the watch
      // (we are about to steal its reap) and block. This stalls all channels —
      // the documented trade for v1 compatibility. Flush anything already
      // queued on this channel first: a coalesced burst's earlier replies
      // must not sit unsent behind a potentially unbounded child lifetime.
      FORKLIFT_RETURN_IF_ERROR(FlushReplies(sock));
      watches_.erase(p);
      auto st = WaitForExit(p);
      if (!st.ok()) {
        reply.ok = false;
        reply.err = st.error().code();
        reply.context = st.error().ToString();
      } else {
        reply.ok = true;
        reply.status = *st;
        live_children_.erase(p);
        // Any v2 waits parked on the same child complete with the status this
        // blocking reap just obtained — the exit watch it displaced will
        // never fire.
        CompleteParkedWaits(p, *st);
      }
    }
  }
  QueueReply(sock, EncodeWaitReply(reply, reply_meta));
  return Status::Ok();
}

Result<ForkServerHandle> StartForkServerProcess() {
  FORKLIFT_ASSIGN_OR_RETURN(SocketPair sp, MakeSocketPair());
  // The one sanctioned raw fork outside src/spawn/: the zygote *is* the
  // fork-server substrate, and must clone itself before any threads exist —
  // which also answers R12: thread creations elsewhere in the program happen
  // after (and in processes other than) this early clone.
  pid_t pid = ::fork();  // forklint:ignore(R7,R12)
  if (pid < 0) {
    return ErrnoError("fork (starting fork server)");
  }
  if (pid == 0) {
    // Server process. Drop the client end; serve; die quietly. The zygote
    // inherits the parent's current (ideally small) address space — starting
    // it early is the documented contract.
    sp.first.Reset();
    // fork also copied every descriptor the caller had open (the §5.1 leak):
    // a pipe end created before a lazily-started server would hold a
    // sibling's stdin open forever, so close everything beyond stdio and the
    // channel. Descriptors a client wants the server to hold are passed
    // explicitly via SCM_RIGHTS, never inherited.
    int sock = sp.second.Release();
    if (sock != 3) {
      ::dup2(sock, 3);
      ::close(sock);
      sock = 3;
    }
    // dup2 strips FD_CLOEXEC: restore it, or every child this server execs
    // would inherit the channel socket and keep it open past our death —
    // clients would never see EOF on a dead server. Raw fcntl, like the rest
    // of this child bootstrap: fault plans inherited from the parent must not
    // fire here (a silently-skipped restore IS the hang it prevents).
    int fdflags = ::fcntl(sock, F_GETFD);
    if (fdflags >= 0) {
      ::fcntl(sock, F_SETFD, fdflags | FD_CLOEXEC);
    }
    ::syscall(SYS_close_range, 4u, ~0u, 0u);
    ForkServer server{UniqueFd(sock)};
    // Serve() allocates freely — legal here because the zygote contract
    // guarantees the parent was single-threaded at fork time, so the child's
    // heap locks cannot be held by a vanished thread.
    auto served = server.Serve();  // forklint:ignore(R10)
    if (!served.ok()) {
      FORKLIFT_ERROR("fork server terminating on transport error: %s",
                     served.error().ToString().c_str());
      _exit(1);
    }
    _exit(0);
  }
  ForkServerHandle handle;
  handle.client_sock = std::move(sp.first);
  handle.server_pid = pid;
  return handle;
}

Result<pid_t> SpawnShardProcess(ForkServer& server) {
  // The shard is the same zygote clone as StartForkServerProcess — forked
  // small, before the supervisor grows (or threads: R12) — it just inherits
  // a shared listener instead of a private socketpair.
  pid_t pid = ::fork();  // forklint:ignore(R7,R12)
  if (pid < 0) {
    return ErrnoError("fork (forkserver shard)");
  }
  if (pid == 0) {
    // The supervisor collects SIGTERM/SIGINT/SIGCHLD with a blocked mask and
    // sigwait; both the mask and any handlers are inherited across fork and
    // would make the forwarded SIGTERM a no-op here, wedging supervised
    // shutdown. The shard never execs, so R8's reset-on-exec concern does
    // not apply.
    sigset_t none;
    ::sigemptyset(&none);
    ::sigprocmask(SIG_SETMASK, &none, nullptr);
    ::signal(SIGTERM, SIG_DFL);  // forklint:ignore(R8)
    ::signal(SIGINT, SIG_DFL);   // forklint:ignore(R8)
    server.DisownListenPath();
    // Allocation in Serve() is safe for the same reason as the zygote child:
    // the supervisor is single-threaded when shards are cloned.
    auto served = server.Serve();  // forklint:ignore(R10)
    if (!served.ok()) {
      FORKLIFT_ERROR("fork-server shard terminating on transport error: %s",
                     served.error().ToString().c_str());
      _exit(1);
    }
    _exit(0);
  }
  return pid;
}

}  // namespace forklift
