// forklift/forkserver: the zygote process.
//
// A ForkServer serves one or more AF_UNIX stream channels: it decodes spawn
// requests, launches them with the fork+exec engine (forking the *small*
// server rather than the large client — the entire point of the zygote
// pattern, §6 of the paper), supervises the children, and answers wait
// requests. Additional channels are adopted at runtime via kNewChannel frames
// carrying a socket (SCM_RIGHTS), so each client thread can own a private
// channel. Single-threaded by design: a zygote must stay small and must not
// hold locks across its forks; a blocking kWait therefore stalls all
// channels, which is the documented trade for that simplicity.
#ifndef SRC_FORKSERVER_SERVER_H_
#define SRC_FORKSERVER_SERVER_H_

#include <sys/types.h>

#include <set>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/unique_fd.h"

namespace forklift {

class ForkServer {
 public:
  // Takes ownership of the server end of a connected socket pair.
  explicit ForkServer(UniqueFd sock);

  // Daemon mode: bind + listen on an AF_UNIX socket at `path` (unlinking any
  // stale socket first). Accepted connections become channels; the server
  // runs until a client sends kShutdown (EOF of all clients does NOT stop a
  // listening server). The socket file is unlinked when Serve returns.
  static Result<ForkServer> Listen(const std::string& path);

  // Serves until a client sends kShutdown or the last channel closes.
  // Returns the number of spawn requests handled, or the transport error that
  // ended the loop. Protocol errors on a single request are reported to that
  // client and do not end the loop.
  Result<uint64_t> Serve();

  // Children spawned but not yet waited (visible for tests).
  const std::set<pid_t>& live_children() const { return live_children_; }

 private:
  // Returns true when the server should keep running.
  Result<bool> HandleFrame(size_t idx, struct Frame frame);
  Status HandleSpawn(int sock, const std::string& payload, std::vector<UniqueFd> fds);
  Status HandleWait(int sock, const std::string& payload);

  ForkServer() = default;

  std::vector<UniqueFd> socks_;
  UniqueFd listener_;
  std::string listen_path_;
  std::set<pid_t> live_children_;
  uint64_t spawns_handled_ = 0;
};

// Launches a dedicated fork-server *process* (forked before the caller grows —
// call it early) and returns the client end of its socket. The server process
// serves until shutdown/EOF, then _exits. The returned pid is the server's.
struct ForkServerHandle {
  UniqueFd client_sock;
  pid_t server_pid = -1;
};
Result<ForkServerHandle> StartForkServerProcess();

}  // namespace forklift

#endif  // SRC_FORKSERVER_SERVER_H_
