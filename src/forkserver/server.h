// forklift/forkserver: the zygote process.
//
// A ForkServer serves one or more AF_UNIX stream channels: it decodes spawn
// requests, launches them with the fork+exec engine (forking the *small*
// server rather than the large client — the entire point of the zygote
// pattern, §6 of the paper), supervises the children, and answers wait
// requests. Additional channels are adopted at runtime via kNewChannel frames
// carrying a socket (SCM_RIGHTS), so each client thread can own a private
// channel. One Reactor multiplexes everything Serve watches: client channels,
// the daemon listener, and a pidfd per live child — so a child's exit is
// observed (and its status cached for the eventual kWait) without any
// polling tick. Single-threaded by design: a zygote must stay small and must
// not hold locks across its forks. Replies are answered out of order: a
// protocol-v2 kWait for a child that has not yet exited parks on that child's
// pidfd watch and is answered when the exit is observed, so it never blocks
// the channel; only a v1 kWait still takes the historical blocking path (the
// documented single-thread trade for v1 peers).
#ifndef SRC_FORKSERVER_SERVER_H_
#define SRC_FORKSERVER_SERVER_H_

#include <sys/types.h>

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/common/reactor.h"
#include "src/common/result.h"
#include "src/common/syscall.h"
#include "src/common/unique_fd.h"
#include "src/forkserver/fd_transfer.h"
#include "src/forkserver/protocol.h"

namespace forklift {

class ForkServer {
 public:
  // Takes ownership of the server end of a connected socket pair.
  explicit ForkServer(UniqueFd sock);

  // Daemon mode: bind + listen on an AF_UNIX socket at `path` (unlinking any
  // stale socket first). Accepted connections become channels; the server
  // runs until a client sends kShutdown (EOF of all clients does NOT stop a
  // listening server). The socket file is unlinked when Serve returns.
  static Result<ForkServer> Listen(const std::string& path);

  // Binds a second listener dedicated to metrics scrapes. Accepted
  // connections are ordinary protocol channels (scrapers send kStats frames);
  // the separate path just keeps observability traffic off the spawn socket.
  // Call before Serve. The file is unlinked when Serve returns unless the
  // path was disowned.
  Status ListenMetrics(const std::string& path);

  // Makes Serve watch SIGUSR1 (via signalfd) and dump the Prometheus export
  // to stderr when it arrives. Call before Serve.
  void EnableSigusr1StatsDump() { sigusr1_dump_ = true; }

  // Serves until a client sends kShutdown or the last channel closes.
  // Returns the number of spawn requests handled, or the transport error that
  // ended the loop. Protocol errors on a single request are reported to that
  // client and do not end the loop.
  Result<uint64_t> Serve();

  // Children spawned but not yet waited (visible for tests).
  const std::set<pid_t>& live_children() const { return live_children_; }

  // Shard mode (SpawnShardProcess): the forked shard serves the inherited
  // listeners but must not unlink the socket files — the supervising parent
  // owns them.
  void DisownListenPath() {
    listen_path_.clear();
    metrics_listen_path_.clear();
  }

 private:
  // A v2 kWait for a live child, parked until its pidfd watch fires.
  struct ParkedWait {
    int sock = -1;
    FrameMeta meta;
  };

  // Per-channel wire state: the receive-side reassembly buffer and the
  // send-side reply coalescing buffer (complete framed replies accumulated
  // during one wakeup's burst, flushed in one writev).
  struct Channel {
    FrameBuffer in;
    std::string out;
    size_t out_frames = 0;
  };

  // Returns true when the server should keep running.
  Result<bool> HandleFrame(int sock, struct Frame frame);
  Status HandleSpawn(int sock, const std::string& payload, std::vector<UniqueFd> fds,
                     const FrameMeta& reply_meta);
  Status HandleSpawnBatch(int sock, const std::string& payload, std::vector<UniqueFd> fds,
                          const FrameMeta& reply_meta);
  Status HandleWait(int sock, const std::string& payload, const FrameMeta& reply_meta);
  Status HandleStats(int sock, const std::string& payload, const FrameMeta& reply_meta);
  // Dups every received descriptor above the plan-reachable range
  // (faultinject site `forkserver.relocate_fd`); errno error on failure.
  Result<std::vector<UniqueFd>> RelocateFds(std::vector<UniqueFd> fds);
  // The launch half of a spawn once the request is decoded: fork+exec, child
  // bookkeeping (live set, exit watch, counters), reply construction.
  SpawnReply LaunchDecoded(const SpawnRequest& req);
  // Appends one framed reply to `sock`'s coalescing buffer (falls back to a
  // direct send for unregistered sockets).
  void QueueReply(int sock, std::string_view payload);
  // Writes the channel's queued replies in one gathered write.
  Status FlushReplies(int sock);
  // Answers every wait parked on `pid` with `status` and forgets the child.
  void CompleteParkedWaits(pid_t pid, const ExitStatus& status);

  // Reactor plumbing for Serve: channel/listener registration and the
  // callbacks they dispatch to. Callbacks record failures in serve_error_
  // (and request shutdown via stop_serving_) for the Serve loop to act on.
  Status RegisterChannel(int fd);
  void OnChannelReadable(int fd);
  void OnListenerReadable(int listener_fd);
  void CloseChannel(int fd);
  // Watches `pid` on the reactor; when it exits, the status is reaped into
  // exited_ so a later kWait is served without blocking.
  void ArmChildExitWatch(pid_t pid);

  ForkServer() = default;

  std::vector<UniqueFd> socks_;
  // Keyed by channel fd; entries live from RegisterChannel to CloseChannel.
  // std::map: handlers adopt channels (insert) mid-drain, and node-based
  // iterators stay valid across that.
  std::map<int, Channel> channels_;
  UniqueFd listener_;
  std::string listen_path_;
  UniqueFd metrics_listener_;
  std::string metrics_listen_path_;
  bool sigusr1_dump_ = false;
  std::set<pid_t> live_children_;
  uint64_t spawns_handled_ = 0;

  // Serve-scoped state. The reactor is declared before the watches so the
  // watches (which deregister against it) are destroyed first.
  std::optional<Reactor> reactor_;
  UniqueFd sigusr1_fd_;  // signalfd for the stats dump, when enabled
  std::map<pid_t, ChildWatch> watches_;
  std::map<pid_t, ExitStatus> exited_;  // reaped ahead of the client's kWait
  std::map<pid_t, std::vector<ParkedWait>> parked_waits_;
  bool stop_serving_ = false;
  Status serve_error_;
};

// Launches a dedicated fork-server *process* (forked before the caller grows —
// call it early) and returns the client end of its socket. The server process
// serves until shutdown/EOF, then _exits. The returned pid is the server's.
struct ForkServerHandle {
  UniqueFd client_sock;
  pid_t server_pid = -1;
};
Result<ForkServerHandle> StartForkServerProcess();

// Forks a shard process that serves `server`'s (already-listening, shared)
// socket and _exits when Serve returns: 0 on a clean client-initiated
// shutdown, 1 on a transport error. The caller keeps its own copy of the
// listener and supervises the returned pid (forkliftd --shards). The shard
// never unlinks the socket path; the supervisor owns the file.
Result<pid_t> SpawnShardProcess(ForkServer& server);

}  // namespace forklift

#endif  // SRC_FORKSERVER_SERVER_H_
