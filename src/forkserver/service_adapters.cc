#include "src/forkserver/service_adapters.h"

#include <signal.h>
#include <sys/wait.h>

#include <cerrno>
#include <utility>

#include "src/forkserver/server.h"

namespace forklift {

namespace {

// ProcessHandle::Impl over one shard channel: the wait is a kWait parked on
// the server, submitted lazily on the first wait call and kept in flight
// across deadline timeouts (the server answers each request_id exactly once,
// so abandoning it would lose the exit status).
class RemoteProcessImpl final : public ProcessHandle::Impl {
 public:
  RemoteProcessImpl(std::shared_ptr<ForkServerClient> channel, pid_t pid,
                    std::function<void(pid_t)> on_reaped)
      : channel_(std::move(channel)), pid_(pid), on_reaped_(std::move(on_reaped)) {}

  pid_t pid() const override { return pid_; }

  Result<ExitStatus> Wait() override {
    FORKLIFT_RETURN_IF_ERROR(EnsureWaitSubmitted());
    auto st = wait_.AwaitExit();
    if (st.ok()) {
      NoteReaped();
    }
    return st;
  }

  Result<std::optional<ExitStatus>> TryWait() override { return WaitDeadline(0); }

  Result<std::optional<ExitStatus>> WaitDeadline(double timeout_seconds) override {
    FORKLIFT_RETURN_IF_ERROR(EnsureWaitSubmitted());
    auto st = wait_.AwaitExitFor(timeout_seconds);
    if (st.ok() && st.value().has_value()) {
      NoteReaped();
    }
    return st;
  }

  Status Kill(int sig) override {
    // Plain kill(2): the server is the parent, but the pid is in our
    // namespace.
    if (::kill(pid_, sig) != 0) {
      return ErrnoError("kill remote child");
    }
    return Status::Ok();
  }

 private:
  Status EnsureWaitSubmitted() {
    if (wait_.valid()) {
      return Status::Ok();
    }
    FORKLIFT_ASSIGN_OR_RETURN(wait_, channel_->WaitAsync(pid_));
    return Status::Ok();
  }

  void NoteReaped() {
    if (on_reaped_) {
      on_reaped_(pid_);
      on_reaped_ = nullptr;
    }
  }

  std::shared_ptr<ForkServerClient> channel_;
  pid_t pid_;
  ForkServerClient::PendingReply wait_;
  std::function<void(pid_t)> on_reaped_;
};

}  // namespace

ProcessHandle MakeRemoteProcessHandle(std::shared_ptr<ForkServerClient> channel, pid_t pid,
                                      std::string route,
                                      std::function<void(pid_t)> on_reaped) {
  return ProcessHandle::FromImpl(
      std::make_unique<RemoteProcessImpl>(std::move(channel), pid, std::move(on_reaped)),
      std::move(route));
}

// ---------------------------------------------------------------------------
// ForkServerTransport

std::unique_ptr<ForkServerTransport> ForkServerTransport::ConnectLazy(std::string socket_path) {
  auto t = std::unique_ptr<ForkServerTransport>(new ForkServerTransport(Mode::kConnectPath));
  t->socket_path_ = std::move(socket_path);
  return t;
}

std::unique_ptr<ForkServerTransport> ForkServerTransport::StartInProcess() {
  return std::unique_ptr<ForkServerTransport>(new ForkServerTransport(Mode::kStartProcess));
}

std::unique_ptr<ForkServerTransport> ForkServerTransport::Adopt(
    std::shared_ptr<ForkServerClient> channel) {
  auto t = std::unique_ptr<ForkServerTransport>(new ForkServerTransport(Mode::kAdopted));
  t->channel_ = std::move(channel);
  return t;
}

ForkServerTransport::~ForkServerTransport() {
  std::lock_guard<std::mutex> lock(mu_);
  if (channel_ != nullptr && !channel_->dead() && mode_ == Mode::kStartProcess) {
    (void)channel_->Shutdown();
  }
  channel_.reset();  // EOF makes a still-alive server exit even if Shutdown failed
  ReapServerLocked();
}

void ForkServerTransport::ReapServerLocked() {
  if (server_pid_ <= 0) {
    return;
  }
  int wstatus = 0;
  while (waitpid(server_pid_, &wstatus, 0) < 0 && errno == EINTR) {
  }
  server_pid_ = -1;
}

Result<std::shared_ptr<ForkServerClient>> ForkServerTransport::EnsureChannel() {
  std::lock_guard<std::mutex> lock(mu_);
  if (channel_ != nullptr && !channel_->dead()) {
    return channel_;
  }
  switch (mode_) {
    case Mode::kAdopted:
      if (channel_ == nullptr) {
        return LogicalError("ForkServerTransport: adopted channel gone");
      }
      return LogicalError("ForkServerTransport: adopted channel is dead");
    case Mode::kConnectPath: {
      channel_.reset();
      FORKLIFT_ASSIGN_OR_RETURN(std::unique_ptr<ForkServerClient> fresh,
                                ForkServerClient::ConnectPath(socket_path_));
      channel_ = std::move(fresh);
      return channel_;
    }
    case Mode::kStartProcess: {
      channel_.reset();  // drop our end first so a half-dead server sees EOF
      ReapServerLocked();
      // Forking under mu_ is safe by construction: the server child never
      // touches transport state — it close-ranges every inherited fd and
      // serves its own socketpair end.
      FORKLIFT_ASSIGN_OR_RETURN(ForkServerHandle handle, StartForkServerProcess());  // forklint:ignore(R9)
      channel_ = std::make_shared<ForkServerClient>(std::move(handle.client_sock));
      server_pid_ = handle.server_pid;
      return channel_;
    }
  }
  return LogicalError("ForkServerTransport: unknown mode");
}

void ForkServerTransport::DropChannelIfDead() {
  std::lock_guard<std::mutex> lock(mu_);
  if (channel_ != nullptr && channel_->dead() && mode_ != Mode::kAdopted) {
    channel_.reset();  // next EnsureChannel reconnects/restarts
  }
}

Status ForkServerTransport::Probe() {
  FORKLIFT_ASSIGN_OR_RETURN(std::shared_ptr<ForkServerClient> channel, EnsureChannel());
  Status st = channel->Ping();
  if (!st.ok()) {
    DropChannelIfDead();
  }
  return st;
}

Result<ProcessHandle> ForkServerTransport::Launch(const Spawner& spawner, uint64_t trace_id,
                                                  SpawnFailureKind* failure) {
  // Connect/start failure: nothing was ever sent.
  *failure = SpawnFailureKind::kTransportRetryable;
  FORKLIFT_ASSIGN_OR_RETURN(std::shared_ptr<ForkServerClient> channel, EnsureChannel());

  *failure = SpawnFailureKind::kRequest;
  FORKLIFT_ASSIGN_OR_RETURN(SpawnRequest req, spawner.BuildRequest());

  auto pending = channel->LaunchAsync(req, trace_id);
  if (!pending.ok()) {
    // Submit failed: the frame never fully hit the wire (a partial frame is
    // unparseable to the length-prefixed reader), so no child was created.
    DropChannelIfDead();
    *failure = SpawnFailureKind::kTransportRetryable;
    return Err(pending.error());
  }
  auto pid = pending.value().AwaitPid();
  if (!pid.ok()) {
    if (channel->dead()) {
      // The request was on the wire when the channel died: the server may
      // have forked before going down, so this request must not be retried.
      DropChannelIfDead();
      *failure = SpawnFailureKind::kTransportIndeterminate;
    } else {
      // The server answered with an error: the request itself is bad.
      *failure = SpawnFailureKind::kRequest;
    }
    return Err(pid.error());
  }
  return MakeRemoteProcessHandle(std::move(channel), pid.value(), Name());
}

// ---------------------------------------------------------------------------
// ShardedTransport

std::unique_ptr<ShardedTransport> ShardedTransport::StartLazy(
    ShardedForkServer::Options options) {
  auto t = std::unique_ptr<ShardedTransport>(new ShardedTransport(nullptr, true));
  t->start_options_ = options;
  return t;
}

std::unique_ptr<ShardedTransport> ShardedTransport::Adopt(
    std::shared_ptr<ShardedForkServer> pool) {
  return std::unique_ptr<ShardedTransport>(new ShardedTransport(std::move(pool), false));
}

Result<std::shared_ptr<ShardedForkServer>> ShardedTransport::EnsurePool() {
  std::lock_guard<std::mutex> lock(mu_);
  if (pool_ != nullptr) {
    return pool_;
  }
  if (!lazy_start_) {
    return LogicalError("ShardedTransport: adopted pool gone");
  }
  FORKLIFT_ASSIGN_OR_RETURN(std::unique_ptr<ShardedForkServer> fresh,
                            ShardedForkServer::Start(start_options_));
  pool_ = std::move(fresh);
  return pool_;
}

Status ShardedTransport::Probe() {
  FORKLIFT_ASSIGN_OR_RETURN(std::shared_ptr<ShardedForkServer> pool, EnsurePool());
  return pool->Ping();
}

Result<ProcessHandle> ShardedTransport::Launch(const Spawner& spawner, uint64_t trace_id,
                                               SpawnFailureKind* failure) {
  *failure = SpawnFailureKind::kTransportRetryable;
  FORKLIFT_ASSIGN_OR_RETURN(std::shared_ptr<ShardedForkServer> pool, EnsurePool());

  *failure = SpawnFailureKind::kRequest;
  FORKLIFT_ASSIGN_OR_RETURN(SpawnRequest req, spawner.BuildRequest());

  auto pending = pool->LaunchAsync(req, trace_id);
  if (!pending.ok()) {
    // The pool already applied its own exactly-once resubmit policy; what
    // escapes is "no shard could take the frame" — nothing launched.
    *failure = SpawnFailureKind::kTransportRetryable;
    return Err(pending.error());
  }
  // Grab the routed channel before AwaitPid releases the reference: the
  // handle's waits ride this exact shard.
  std::shared_ptr<ForkServerClient> channel = pending.value().channel();
  auto pid = pending.value().AwaitPid();
  if (!pid.ok()) {
    *failure = (channel != nullptr && channel->dead())
                   ? SpawnFailureKind::kTransportIndeterminate
                   : SpawnFailureKind::kRequest;
    return Err(pid.error());
  }
  // The handle waits on the shard channel directly, so tell the pool to drop
  // its pid->shard entry once the status is collected (the lambda's captured
  // shared_ptr also keeps the pool alive as long as handles are out).
  return MakeRemoteProcessHandle(std::move(channel), pid.value(), Name(),
                                 [pool](pid_t p) { pool->ForgetChild(p); });
}

}  // namespace forklift
