// forklift/forkserver: SpawnService adapters for the fork-server data plane.
//
// These bind the location-transparent spawn layer (src/spawn/service.h) to
// the zygote transports: a single pipelined channel (ForkServerTransport) and
// the sharded pool (ShardedTransport). Both hand back ProcessHandles whose
// waits are request-id completions on the owning shard channel, so a caller
// holding a handle never learns — or cares — that the child's parent is a
// server process.
//
// Failure classification (the exactly-once contract the router relies on):
//   * connect/start failure, channel already dead, submit failure — the
//     frame never fully reached a healthy channel, so kTransportRetryable;
//   * server replied with an error — the request itself is bad, kRequest;
//   * channel died while the spawn was in flight — the server may have
//     forked before dying, kTransportIndeterminate: surface the error, let
//     the quarantine steer the NEXT request to a fallback route.
#ifndef SRC_FORKSERVER_SERVICE_ADAPTERS_H_
#define SRC_FORKSERVER_SERVICE_ADAPTERS_H_

#include <sys/types.h>

#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "src/common/result.h"
#include "src/forkserver/client.h"
#include "src/forkserver/sharded.h"
#include "src/spawn/process_handle.h"
#include "src/spawn/service.h"

namespace forklift {

// Wraps a fork-server child in a ProcessHandle. Wait/TryWait/WaitDeadline
// park a single kWait on `channel` (submitted lazily on the first wait, kept
// in flight across deadline timeouts); Kill is a plain kill(2) since pids
// share our namespace. `on_reaped` (optional) runs exactly once when the
// exit status is collected — transports use it to drop routing bookkeeping.
ProcessHandle MakeRemoteProcessHandle(std::shared_ptr<ForkServerClient> channel, pid_t pid,
                                      std::string route,
                                      std::function<void(pid_t)> on_reaped = {});

// One pipelined zygote channel as a SpawnService route ("forkserver").
// Construction is cheap; the channel is established on first Launch/Probe
// and re-established after a death (each request decides retryability from
// where the failure struck).
class ForkServerTransport final : public SpawnTransport {
 public:
  // Connects to a daemon socket path on first use (forkliftd or
  // ForkServer::Listen).
  static std::unique_ptr<ForkServerTransport> ConnectLazy(std::string socket_path);

  // Forks a private server process on first use (early — the server clones
  // this process's address space) and shuts it down on destruction. A died
  // server is restarted on the next Launch/Probe.
  static std::unique_ptr<ForkServerTransport> StartInProcess();

  // Adopts an existing channel (tests, pre-connected daemons). No restart:
  // when the channel dies the route just stays unhealthy.
  static std::unique_ptr<ForkServerTransport> Adopt(std::shared_ptr<ForkServerClient> channel);

  ~ForkServerTransport() override;

  const char* Name() const override { return "forkserver"; }
  bool SupportsPipeStdio() const override { return false; }
  Status Probe() override;
  Result<ProcessHandle> Launch(const Spawner& spawner, uint64_t trace_id,
                               SpawnFailureKind* failure) override;

 private:
  enum class Mode { kConnectPath, kStartProcess, kAdopted };

  explicit ForkServerTransport(Mode mode) : mode_(mode) {}

  // Returns a live channel, (re)establishing it per mode_. Takes mu_; the
  // returned shared_ptr keeps the channel alive outside the lock.
  Result<std::shared_ptr<ForkServerClient>> EnsureChannel();
  void DropChannelIfDead();
  // Reaps a kStartProcess server whose channel is gone (mu_ held).
  void ReapServerLocked();

  Mode mode_;
  std::string socket_path_;

  std::mutex mu_;
  std::shared_ptr<ForkServerClient> channel_;
  pid_t server_pid_ = -1;  // kStartProcess only
};

// The sharded zygote pool as a SpawnService route ("sharded"). The pool's
// own exactly-once routing (resubmit only when the frame never reached a
// healthy shard) runs underneath; this adapter only classifies what escapes
// it.
class ShardedTransport final : public SpawnTransport {
 public:
  // Forks the shard set on first use.
  static std::unique_ptr<ShardedTransport> StartLazy(ShardedForkServer::Options options);

  // Adopts a running pool (shared so handles can outlive the transport).
  static std::unique_ptr<ShardedTransport> Adopt(std::shared_ptr<ShardedForkServer> pool);

  const char* Name() const override { return "sharded"; }
  bool SupportsPipeStdio() const override { return false; }
  Status Probe() override;
  Result<ProcessHandle> Launch(const Spawner& spawner, uint64_t trace_id,
                               SpawnFailureKind* failure) override;

 private:
  ShardedTransport(std::shared_ptr<ShardedForkServer> pool, bool lazy_start)
      : pool_(std::move(pool)), lazy_start_(lazy_start) {}

  Result<std::shared_ptr<ShardedForkServer>> EnsurePool();

  std::mutex mu_;
  std::shared_ptr<ShardedForkServer> pool_;
  bool lazy_start_ = false;
  ShardedForkServer::Options start_options_;
};

}  // namespace forklift

#endif  // SRC_FORKSERVER_SERVICE_ADAPTERS_H_
