#include "src/forkserver/sharded.h"

#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "src/common/syscall.h"
#include "src/faultinject/faultinject.h"
#include "src/forkserver/server.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"

namespace forklift {

namespace {

size_t OnlineCpuCount() {
  long n = ::sysconf(_SC_NPROCESSORS_ONLN);
  return n > 0 ? static_cast<size_t>(n) : 1;
}

obs::Counter RestartCounter() {
  return obs::MetricsRegistry::Global().GetCounter("forklift_shard_restarts_total");
}

obs::Gauge LiveShardsGauge() {
  return obs::MetricsRegistry::Global().GetGauge("forklift_shards_live");
}

}  // namespace

Result<std::unique_ptr<ShardedForkServer>> ShardedForkServer::Start(const Options& options) {
  Options opts = options;
  if (opts.shards == 0) {
    opts.shards = OnlineCpuCount();
  }
  std::unique_ptr<ShardedForkServer> pool(new ShardedForkServer(opts));
  std::lock_guard<std::mutex> lock(pool->mu_);
  pool->shards_.resize(opts.shards);
  for (size_t i = 0; i < opts.shards; ++i) {
    // Forking under mu_ is safe by construction: the server child never
    // touches pool state (it close-ranges inherited fds and serves its own
    // socket), so the inherited locked mutex is dead weight, not a deadlock.
    Status started = pool->StartShardLocked(i);  // forklint:ignore(R9)
    if (!started.ok()) {
      // Roll back the shards already running so a failed Start leaks neither
      // processes nor sockets.
      for (size_t j = 0; j < i; ++j) {
        Shard& shard = pool->shards_[j];
        if (shard.client != nullptr) {
          (void)shard.client->Shutdown();
          shard.client.reset();
          LiveShardsGauge().Add(-1);
        }
        pool->ReapShardLocked(j);
      }
      pool->shut_down_ = true;
      return Err(started.error());
    }
  }
  return pool;
}

ShardedForkServer::~ShardedForkServer() { (void)Shutdown(); }

Status ShardedForkServer::StartShardLocked(size_t idx) {
  // Models the socketpair/fork resources the shard start is about to claim;
  // the sweep drives this site to prove a failed shard start (initial or
  // restart) degrades cleanly instead of wedging the pool.
  auto inj = fault::Check("sharded.start_shard", fault::Op::kCreateFd);
  if (inj.is_errno()) {
    errno = inj.err;
    return ErrnoError("sharded forkserver: starting shard");
  }
  FORKLIFT_ASSIGN_OR_RETURN(ForkServerHandle handle, StartForkServerProcess());
  Shard& shard = shards_[idx];
  shard.client = std::make_shared<ForkServerClient>(std::move(handle.client_sock));
  shard.server_pid = handle.server_pid;
  ++shard.generation;
  LiveShardsGauge().Add(1);
  return Status::Ok();
}

void ShardedForkServer::ReapShardLocked(size_t idx) {
  Shard& shard = shards_[idx];
  if (shard.server_pid > 0) {
    // A shard is retired on the first transport error its channel reports —
    // which a send-side failure can raise while the server process is still
    // alive and parked in its Serve loop (and in-flight PendingSpawn holders
    // may keep the socket open past this point). Kill before reaping so the
    // blocking wait below can never wedge the pool on a live process.
    (void)::kill(shard.server_pid, SIGKILL);
    auto reaped = WaitForExit(shard.server_pid);
    (void)reaped;  // a reap error leaves nothing further to clean up
    shard.server_pid = -1;
  }
}

void ShardedForkServer::CleanupShardLocked(size_t idx) {
  Shard& shard = shards_[idx];
  if (shard.client != nullptr) {
    LiveShardsGauge().Add(-1);
  }
  shard.client.reset();
  ReapShardLocked(idx);
  // Children of the dead shard have no parent left to wait on them; forget
  // them so their waits fail fast with ECHILD instead of routing nowhere.
  std::erase_if(owner_, [idx, gen = shard.generation](const auto& entry) {
    return entry.second.first == idx && entry.second.second == gen;
  });
}

void ShardedForkServer::NoteShardFailure(size_t idx, uint64_t generation) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shut_down_) {
    return;
  }
  Shard& shard = shards_[idx];
  if (shard.generation != generation) {
    return;  // another caller already handled this crash
  }
  CleanupShardLocked(idx);
  if (options_.restart_crashed_shards) {  // forklint:ignore-next(R9) — child never takes mu_
    Status restarted = StartShardLocked(idx);
    if (restarted.ok()) {
      ++restarts_;
      RestartCounter().Increment();
    }
    // On failure the shard stays dead; RouteLocked retries on demand.
  }
}

Result<size_t> ShardedForkServer::RouteLocked() {
  size_t best = shards_.size();
  size_t best_load = SIZE_MAX;
  for (size_t i = 0; i < shards_.size(); ++i) {
    const Shard& shard = shards_[i];
    if (shard.client == nullptr || shard.client->dead()) {
      continue;
    }
    size_t load = shard.client->outstanding();
    if (load < best_load) {
      best = i;
      best_load = load;
    }
  }
  if (best < shards_.size()) {
    return best;
  }
  if (options_.restart_crashed_shards) {
    for (size_t i = 0; i < shards_.size(); ++i) {
      CleanupShardLocked(i);
      FORKLIFT_RETURN_IF_ERROR(StartShardLocked(i));
      ++restarts_;
      RestartCounter().Increment();
      return i;
    }
  }
  return LogicalError("sharded forkserver: no live shard");
}

Result<ShardedForkServer::PendingSpawn> ShardedForkServer::LaunchAsync(const SpawnRequest& req,
                                                                       uint64_t trace_id) {
  // Allocate once, up front: the retry below re-routes the SAME request, so
  // both attempts (and the trace spans) share one id.
  if (trace_id == 0) {
    trace_id = obs::NextRequestId();
  }
  Status last_error = Status::Ok();
  // One retry: a submit failure means the frame never fully reached a healthy
  // channel, so re-routing cannot double-spawn. Failures after the frame is
  // on the wire surface through AwaitPid and are never retried here.
  for (int attempt = 0; attempt < 2; ++attempt) {
    size_t idx;
    uint64_t generation;
    std::shared_ptr<ForkServerClient> client;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shut_down_) {
        return LogicalError("sharded forkserver: already shut down");
      }
      FORKLIFT_ASSIGN_OR_RETURN(size_t routed, RouteLocked());  // forklint:ignore(R9) — see StartShardLocked
      idx = routed;
      generation = shards_[idx].generation;
      client = shards_[idx].client;
    }
    auto pending = client->LaunchAsync(req, trace_id);
    if (pending.ok()) {
      obs::Tracer::Global().Event(trace_id, "shard.dispatch",
                                  "shard=" + std::to_string(idx));
      PendingSpawn spawn;
      spawn.pool_ = this;
      spawn.channel_ = std::move(client);
      spawn.reply_ = std::move(*pending);
      spawn.shard_ = idx;
      spawn.generation_ = generation;
      return spawn;
    }
    last_error = Err(pending.error());
    NoteShardFailure(idx, generation);
  }
  return Err(last_error.error());
}

Result<pid_t> ShardedForkServer::PendingSpawn::AwaitPid() {
  if (!valid()) {
    return LogicalError("PendingSpawn::AwaitPid on empty handle");
  }
  ShardedForkServer* pool = pool_;
  pool_ = nullptr;
  auto pid = reply_.AwaitPid();
  bool channel_died = channel_->dead();
  channel_.reset();
  if (!pid.ok()) {
    if (channel_died) {
      pool->NoteShardFailure(shard_, generation_);
    }
    return Err(pid.error());
  }
  pool->RegisterChild(*pid, shard_, generation_);
  return *pid;
}

void ShardedForkServer::RegisterChild(pid_t pid, size_t idx, uint64_t generation) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shut_down_ || shards_[idx].generation != generation) {
    return;  // the shard is already gone; its child is unwaitable
  }
  owner_[pid] = {idx, generation};
}

Result<pid_t> ShardedForkServer::LaunchRequest(const SpawnRequest& req) {
  FORKLIFT_ASSIGN_OR_RETURN(PendingSpawn pending, LaunchAsync(req));
  return pending.AwaitPid();
}

std::vector<Result<pid_t>> ShardedForkServer::LaunchBatch(const std::vector<SpawnRequest>& reqs) {
  std::vector<Result<pid_t>> out;
  if (reqs.empty()) {
    return out;
  }
  Status last_error = Status::Ok();
  // Same retry contract as LaunchAsync: a batch submit failure is pre-wire
  // (no frame reached a healthy channel), so one re-route cannot double-fork.
  for (int attempt = 0; attempt < 2; ++attempt) {
    size_t idx;
    uint64_t generation;
    std::shared_ptr<ForkServerClient> client;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shut_down_) {
        last_error = LogicalError("sharded forkserver: already shut down");
        break;
      }
      auto routed = RouteLocked();  // forklint:ignore(R9) — see StartShardLocked
      if (!routed.ok()) {
        last_error = Err(routed.error());
        break;
      }
      idx = *routed;
      generation = shards_[idx].generation;
      client = shards_[idx].client;
    }
    auto batch = client->LaunchBatchAsync(reqs);
    if (!batch.ok()) {
      if (client->dead()) {
        last_error = Err(batch.error());
        NoteShardFailure(idx, generation);
        continue;
      }
      // The channel is healthy: the frame format rejected the burst (entry
      // or fd caps). Degrade to per-request routing instead of failing it.
      return RemoteSpawnService::LaunchBatch(reqs);
    }
    obs::Tracer::Global().Event(obs::NextRequestId(), "shard.dispatch_batch",
                                "shard=" + std::to_string(idx) +
                                    " n=" + std::to_string(reqs.size()));
    out.reserve(reqs.size());
    bool channel_died = false;
    for (ForkServerClient::PendingReply& pending : *batch) {
      auto pid = pending.AwaitPid();
      if (pid.ok()) {
        RegisterChild(*pid, idx, generation);
      } else if (client->dead()) {
        channel_died = true;
      }
      out.push_back(std::move(pid));
    }
    if (channel_died) {
      NoteShardFailure(idx, generation);
    }
    return out;
  }
  out.reserve(reqs.size());
  for (size_t i = 0; i < reqs.size(); ++i) {
    out.push_back(Err(last_error.error()));
  }
  return out;
}

Result<ExitStatus> ShardedForkServer::WaitRemote(pid_t pid) {
  size_t idx;
  uint64_t generation;
  std::shared_ptr<ForkServerClient> client;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = owner_.find(pid);
    if (it == owner_.end()) {
      return Err(Error(ECHILD, "sharded forkserver: pid " + std::to_string(pid) +
                                   " is not owned by any live shard"));
    }
    idx = it->second.first;
    generation = it->second.second;
    if (shards_[idx].generation != generation || shards_[idx].client == nullptr) {
      owner_.erase(it);
      return Err(Error(ECHILD, "sharded forkserver: owning shard of pid " +
                                   std::to_string(pid) + " is gone"));
    }
    client = shards_[idx].client;
  }
  auto status = client->WaitRemote(pid);
  bool channel_died = client->dead();
  client.reset();
  {
    std::lock_guard<std::mutex> lock(mu_);
    owner_.erase(pid);
  }
  if (!status.ok() && channel_died) {
    NoteShardFailure(idx, generation);
  }
  return status;
}

Result<std::optional<ExitStatus>> ShardedForkServer::WaitRemoteFor(pid_t pid,
                                                                   double timeout_seconds) {
  size_t idx;
  uint64_t generation;
  std::shared_ptr<ForkServerClient> client;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = owner_.find(pid);
    if (it == owner_.end()) {
      return Err(Error(ECHILD, "sharded forkserver: pid " + std::to_string(pid) +
                                   " is not owned by any live shard"));
    }
    idx = it->second.first;
    generation = it->second.second;
    if (shards_[idx].generation != generation || shards_[idx].client == nullptr) {
      owner_.erase(it);
      return Err(Error(ECHILD, "sharded forkserver: owning shard of pid " +
                                   std::to_string(pid) + " is gone"));
    }
    client = shards_[idx].client;
  }
  auto status = client->WaitRemoteFor(pid, timeout_seconds);
  bool channel_died = client->dead();
  client.reset();
  if (!status.ok() || status.value().has_value()) {
    // Completed (or the wait is unrecoverable): the ownership entry has
    // served its purpose. A timed-out poll keeps it for the next poll.
    std::lock_guard<std::mutex> lock(mu_);
    owner_.erase(pid);
  }
  if (!status.ok() && channel_died) {
    NoteShardFailure(idx, generation);
  }
  return status;
}

Result<RemoteChild> ShardedForkServer::Spawn(const Spawner& spawner) {
  FORKLIFT_ASSIGN_OR_RETURN(SpawnRequest req, spawner.BuildRequest());
  FORKLIFT_ASSIGN_OR_RETURN(pid_t pid, LaunchRequest(req));
  return RemoteChild(this, pid);
}

Status ShardedForkServer::Ping() {
  std::vector<std::shared_ptr<ForkServerClient>> clients;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shut_down_) {
      return LogicalError("sharded forkserver: already shut down");
    }
    for (const Shard& shard : shards_) {
      if (shard.client != nullptr) {
        clients.push_back(shard.client);
      }
    }
  }
  if (clients.empty()) {
    return LogicalError("sharded forkserver: no live shard");
  }
  for (auto& client : clients) {
    FORKLIFT_RETURN_IF_ERROR(client->Ping());
  }
  return Status::Ok();
}

Status ShardedForkServer::Shutdown() {
  std::vector<std::pair<std::shared_ptr<ForkServerClient>, pid_t>> to_stop;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shut_down_) {
      return Status::Ok();
    }
    shut_down_ = true;
    for (Shard& shard : shards_) {
      if (shard.client != nullptr) {
        LiveShardsGauge().Add(-1);
      }
      to_stop.emplace_back(std::move(shard.client), shard.server_pid);
      shard.client.reset();
      shard.server_pid = -1;
    }
    owner_.clear();
  }
  Status first_error = Status::Ok();
  for (auto& [client, pid] : to_stop) {
    if (client != nullptr) {
      Status st = client->Shutdown();
      if (!st.ok() && first_error.ok()) {
        first_error = st;
      }
      client.reset();
    }
    if (pid > 0) {
      auto reaped = WaitForExit(pid);
      if (!reaped.ok() && first_error.ok()) {
        first_error = Err(reaped.error());
      }
    }
  }
  return first_error;
}

void ShardedForkServer::ForgetChild(pid_t pid) {
  std::lock_guard<std::mutex> lock(mu_);
  owner_.erase(pid);
}

size_t ShardedForkServer::shard_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shards_.size();
}

std::vector<pid_t> ShardedForkServer::shard_pids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<pid_t> pids;
  pids.reserve(shards_.size());
  for (const Shard& shard : shards_) {
    pids.push_back(shard.server_pid);
  }
  return pids;
}

uint64_t ShardedForkServer::restarts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return restarts_;
}

}  // namespace forklift
