// forklift/forkserver: the sharded zygote pool.
//
// One fork server serializes all fork work in a single process; under many
// spawner threads the zygote itself becomes the bottleneck the paper's §6
// pattern was meant to remove. ShardedForkServer is the front-end that fixes
// the fan-in: it launches N fork-server processes (default one per online
// CPU), routes each spawn to the shard with the fewest requests in flight
// (every shard channel is a pipelined v2 ForkServerClient), keeps kWait
// affine to the shard that owns the child (only that shard is the parent),
// and transparently restarts a shard that crashes. In-flight requests on a
// crashed shard complete exactly once, with a clean error — never silently
// lost, never retried after the frame reached the wire (a retry could fork
// the child twice).
#ifndef SRC_FORKSERVER_SHARDED_H_
#define SRC_FORKSERVER_SHARDED_H_

#include <sys/types.h>

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "src/common/result.h"
#include "src/forkserver/client.h"

namespace forklift {

class ShardedForkServer final : public RemoteSpawnService {
 public:
  struct Options {
    size_t shards = 0;  // 0 → one shard per online CPU
    // Restart a crashed shard on the next request that needs it. When false a
    // dead shard just drops out of the routing set.
    bool restart_crashed_shards = true;
  };

  // Forks the shard processes. Like StartForkServerProcess, call it early,
  // while this process is small — every shard clones the caller's address
  // space.
  static Result<std::unique_ptr<ShardedForkServer>> Start(const Options& options);
  static Result<std::unique_ptr<ShardedForkServer>> Start() { return Start(Options{}); }

  // Shuts every shard down (if not already done via Shutdown()).
  ~ShardedForkServer() override;
  ShardedForkServer(const ShardedForkServer&) = delete;
  ShardedForkServer& operator=(const ShardedForkServer&) = delete;

  // A routed in-flight spawn. AwaitPid() blocks for the reply and registers
  // the pid→shard ownership needed by WaitRemote.
  class PendingSpawn {
   public:
    PendingSpawn() = default;
    PendingSpawn(PendingSpawn&&) noexcept = default;
    PendingSpawn& operator=(PendingSpawn&&) noexcept = default;

    bool valid() const { return pool_ != nullptr; }
    Result<pid_t> AwaitPid();

    // The shard channel this spawn was routed to. Grab it BEFORE AwaitPid
    // (which releases the reference): a caller who wants per-channel waits
    // — e.g. a ProcessHandle parking a kWait on the same shard — needs the
    // channel to outlive the pool's routing bookkeeping.
    std::shared_ptr<ForkServerClient> channel() const { return channel_; }

   private:
    friend class ShardedForkServer;

    ShardedForkServer* pool_ = nullptr;
    // Keeps the channel alive across a concurrent shard restart.
    std::shared_ptr<ForkServerClient> channel_;
    ForkServerClient::PendingReply reply_;
    size_t shard_ = 0;
    uint64_t generation_ = 0;
  };

  // Routes to the least-loaded live shard and submits without waiting.
  // `trace_id` 0 allocates a fresh request id; a routed caller passes its
  // trace id so the wire frame and the shard.dispatch span carry it.
  Result<PendingSpawn> LaunchAsync(const SpawnRequest& req, uint64_t trace_id = 0);

  // RemoteSpawnService: synchronous routed spawn / affine wait. The timed
  // poll routes to the owning shard like WaitRemote, but keeps the pid→shard
  // entry until the wait actually completes (or fails).
  Result<pid_t> LaunchRequest(const SpawnRequest& req) override;
  Result<ExitStatus> WaitRemote(pid_t pid) override;
  Result<std::optional<ExitStatus>> WaitRemoteFor(pid_t pid, double timeout_seconds) override;

  // Routes the whole burst to ONE shard as a single kSpawnBatch frame — a
  // coalesced run is a unit, not N routing decisions — and awaits every
  // reply. Bursts the frame format cannot carry (over the entry or fd caps)
  // degrade to the per-request routed path.
  std::vector<Result<pid_t>> LaunchBatch(const std::vector<SpawnRequest>& reqs) override;

  // Ships the spawner's resolved request through the pool.
  Result<RemoteChild> Spawn(const Spawner& spawner);

  // Probes every shard.
  Status Ping();

  // Asks every shard to exit and reaps the shard processes.
  Status Shutdown();

  // Drops the pid→shard ownership entry without waiting. For callers that
  // wait on the shard channel directly (via PendingSpawn::channel()) instead
  // of WaitRemote, so a reaped child does not leak a map entry.
  void ForgetChild(pid_t pid);

  size_t shard_count() const;
  // Server-process pids, one per shard (tests and the fault sweep kill
  // these to exercise crash recovery).
  std::vector<pid_t> shard_pids() const;
  // Number of shard restarts performed so far.
  uint64_t restarts() const;

 private:
  struct Shard {
    std::shared_ptr<ForkServerClient> client;  // null when dead and not restarted
    pid_t server_pid = -1;
    uint64_t generation = 0;
  };

  explicit ShardedForkServer(const Options& options) : options_(options) {}

  // Forks a fresh server process into shards_[idx] (mu_ held).
  Status StartShardLocked(size_t idx);
  // Reaps shards_[idx]'s dead server (mu_ held).
  void ReapShardLocked(size_t idx);
  // Drops the channel, reaps the server, forgets its children (mu_ held).
  void CleanupShardLocked(size_t idx);
  // Records pid→shard ownership after a successful routed spawn.
  void RegisterChild(pid_t pid, size_t idx, uint64_t generation);
  // Called when a request observed shards_[idx] (at `generation`) dead:
  // restarts or retires the shard, exactly once per generation.
  void NoteShardFailure(size_t idx, uint64_t generation);
  // Picks the live shard with the fewest requests in flight, restarting one
  // if every shard is dead and restarts are enabled (mu_ held).
  Result<size_t> RouteLocked();

  Options options_;
  mutable std::mutex mu_;
  std::vector<Shard> shards_;
  // child pid → owning {shard, generation}: kWait must go to the parent.
  std::map<pid_t, std::pair<size_t, uint64_t>> owner_;
  uint64_t restarts_ = 0;
  bool shut_down_ = false;
};

}  // namespace forklift

#endif  // SRC_FORKSERVER_SHARDED_H_
