// forklift/forkserver: bounds-checked binary serialization.
//
// The fork server's client and server are different processes with different
// lifetimes (and, in deployment, potentially different builds), so every field
// read is bounds- and sanity-checked; a malformed frame produces an error, not
// UB. Integers are little-endian fixed-width; strings are u32-length-prefixed.
#ifndef SRC_FORKSERVER_WIRE_H_
#define SRC_FORKSERVER_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/result.h"

namespace forklift {

class WireWriter {
 public:
  // Pre-sizes the buffer for a frame whose encoded size is known (or bounded)
  // up front, so encoding appends without reallocation. Combined with Clear()
  // this makes a long-lived writer a zero-steady-state-allocation scratch
  // buffer: capacity survives Clear and is reused by the next frame.
  void Reserve(size_t n) { buf_.reserve(n); }
  void Clear() {
    buf_.clear();
    overflow_ = false;
  }

  // Takes over `buf` as the backing store (cleared, capacity kept). Lets
  // encoders recycle flushed frame buffers instead of allocating per frame.
  void AdoptBuffer(std::string buf) {
    buf_ = std::move(buf);
    buf_.clear();
    overflow_ = false;
  }

  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutI32(int32_t v) { PutRaw(&v, sizeof(v)); }
  void PutString(std::string_view s) {
    // The length prefix is a u32; a larger string would be silently truncated
    // by the cast and decode as garbage. Check BEFORE touching the bytes — a
    // caller may legitimately discover the bound with an untouchable view.
    if (s.size() > UINT32_MAX) {
      overflow_ = true;
      return;
    }
    PutU32(static_cast<uint32_t>(s.size()));
    buf_.append(s);
  }
  void PutBool(bool b) { PutU8(b ? 1 : 0); }

  // Overwrites 4 bytes at `pos` (a placeholder written earlier with PutU32).
  // Backfills length prefixes for sections whose size is known only after
  // encoding, e.g. kSpawnBatch entry bodies.
  void PokeU32(size_t pos, uint32_t v) {
    if (pos + sizeof(v) > buf_.size()) {
      overflow_ = true;
      return;
    }
    std::memcpy(&buf_[pos], &v, sizeof(v));
  }

  // False once any Put* was rejected (oversized string, bad Poke offset).
  // Encoders must check before shipping the frame; the buffer contents are
  // incomplete after an overflow.
  bool ok() const { return !overflow_; }
  Status status() const {
    if (overflow_) {
      return LogicalError("wire: value exceeds u32 framing bounds");
    }
    return Status::Ok();
  }

  size_t size() const { return buf_.size(); }
  const std::string& data() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  void PutRaw(const void* p, size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }

  std::string buf_;
  bool overflow_ = false;
};

class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  Result<uint8_t> GetU8() {
    if (pos_ + 1 > data_.size()) {
      return Truncated("u8");
    }
    return static_cast<uint8_t>(data_[pos_++]);
  }
  Result<uint32_t> GetU32() { return GetRaw<uint32_t>("u32"); }
  Result<uint64_t> GetU64() { return GetRaw<uint64_t>("u64"); }
  Result<int32_t> GetI32() { return GetRaw<int32_t>("i32"); }
  Result<bool> GetBool() {
    FORKLIFT_ASSIGN_OR_RETURN(uint8_t v, GetU8());
    if (v > 1) {
      return LogicalError("wire: bool out of range");
    }
    return v == 1;
  }
  // `max_len` guards against hostile length prefixes.
  Result<std::string> GetString(size_t max_len = 1u << 20) {
    FORKLIFT_ASSIGN_OR_RETURN(uint32_t len, GetU32());
    if (len > max_len) {
      return LogicalError("wire: string length " + std::to_string(len) + " exceeds cap");
    }
    if (pos_ + len > data_.size()) {
      return Truncated("string body");
    }
    std::string s(data_.substr(pos_, len));
    pos_ += len;
    return s;
  }

  // Returns a view of the next `n` raw bytes and advances past them. The view
  // aliases the reader's underlying buffer — valid only while it lives.
  // kSpawnBatch uses this to slice per-entry bodies without copying.
  Result<std::string_view> GetBytes(size_t n) {
    if (pos_ + n > data_.size() || pos_ + n < pos_) {
      return Truncated("bytes");
    }
    std::string_view v = data_.substr(pos_, n);
    pos_ += n;
    return v;
  }

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  template <typename T>
  Result<T> GetRaw(const char* what) {
    if (pos_ + sizeof(T) > data_.size()) {
      return Truncated(what);
    }
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  static ErrTag Truncated(const char* what) {
    return LogicalError(std::string("wire: truncated reading ") + what);
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace forklift

#endif  // SRC_FORKSERVER_WIRE_H_
