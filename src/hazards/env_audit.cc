#include "src/hazards/env_audit.h"

#include <cctype>
#include <string_view>

#include "src/common/string_util.h"

namespace forklift {

namespace {

// Key substrings that overwhelmingly name credentials. Matched
// case-insensitively against the key.
constexpr std::string_view kSecretKeyPatterns[] = {
    "SECRET", "TOKEN", "PASSWORD", "PASSWD", "API_KEY", "APIKEY",
    "PRIVATE_KEY", "ACCESS_KEY", "AUTH", "CREDENTIAL", "SESSION_KEY",
};

// Value prefixes used by well-known credential formats.
constexpr std::string_view kSecretValuePrefixes[] = {
    "sk-",      // OpenAI/Stripe-style secret keys
    "ghp_",     // GitHub personal access tokens
    "gho_",     // GitHub OAuth tokens
    "xoxb-",    // Slack bot tokens
    "xoxp-",    // Slack user tokens
    "AKIA",     // AWS access key ids
    "eyJhbGci", // JWTs (base64 of {"alg":...)
    "-----BEGIN",  // PEM material
};

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace

std::string EnvFinding::ToString() const {
  return key + ": " + reason + " (would be inherited by every child)";
}

std::vector<EnvFinding> AuditEnv(const EnvMap& env) {
  std::vector<EnvFinding> findings;
  for (const auto& [key, value] : env.vars()) {
    std::string upper_key = ToUpper(key);
    bool flagged = false;
    for (std::string_view pattern : kSecretKeyPatterns) {
      if (upper_key.find(pattern) != std::string::npos) {
        findings.push_back(
            EnvFinding{key, EnvFindingKind::kSecretKeyName,
                       "key contains '" + std::string(pattern) + "'"});
        flagged = true;
        break;
      }
    }
    if (flagged) {
      continue;
    }
    for (std::string_view prefix : kSecretValuePrefixes) {
      if (StartsWith(value, prefix)) {
        findings.push_back(
            EnvFinding{key, EnvFindingKind::kSecretValueShape,
                       "value starts with credential prefix '" + std::string(prefix) + "'"});
        break;
      }
    }
  }
  return findings;
}

std::vector<EnvFinding> AuditCurrentEnv() { return AuditEnv(EnvMap::FromCurrent()); }

std::vector<std::string> StripFlagged(EnvMap* env) {
  std::vector<std::string> removed;
  for (const auto& finding : AuditEnv(*env)) {
    env->Unset(finding.key);
    removed.push_back(finding.key);
  }
  return removed;
}

}  // namespace forklift
