// forklift/hazards: environment auditing.
//
// The environment block is fork+exec's third ambient channel (after memory
// and descriptors): every child of every spawn inherits it wholesale unless a
// call site remembers ClearEnv. Credentials exported "temporarily" —
// AWS_SECRET_ACCESS_KEY, DATABASE_URL with embedded passwords, *_TOKEN — thus
// leak into build tools, shells, and crash reporters. This audit flags
// suspicious variables by key pattern and value shape so a spawn policy can
// strip them (Spawner::UnsetEnv) before any child exists.
#ifndef SRC_HAZARDS_ENV_AUDIT_H_
#define SRC_HAZARDS_ENV_AUDIT_H_

#include <string>
#include <vector>

#include "src/common/env.h"

namespace forklift {

enum class EnvFindingKind {
  kSecretKeyName,    // key matches a credential naming pattern
  kSecretValueShape, // value looks like a key/token (long, high-entropy prefix)
};

struct EnvFinding {
  std::string key;
  EnvFindingKind kind;
  // Why it was flagged, e.g. "key contains 'SECRET'".
  std::string reason;

  std::string ToString() const;
};

// Audits an environment (defaults to the current process's).
std::vector<EnvFinding> AuditEnv(const EnvMap& env);
std::vector<EnvFinding> AuditCurrentEnv();

// Removes every flagged variable from `env`; returns the removed keys.
// (For the current process, apply to a Spawner via UnsetEnv instead of
// mutating global state.)
std::vector<std::string> StripFlagged(EnvMap* env);

}  // namespace forklift

#endif  // SRC_HAZARDS_ENV_AUDIT_H_
