#include "src/hazards/fd_audit.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>

#include "src/common/string_util.h"
#include "src/common/unique_fd.h"

namespace forklift {

const char* FdKindName(FdKind kind) {
  switch (kind) {
    case FdKind::kRegularFile:
      return "file";
    case FdKind::kDirectory:
      return "dir";
    case FdKind::kPipe:
      return "pipe";
    case FdKind::kSocket:
      return "socket";
    case FdKind::kCharDevice:
      return "chardev";
    case FdKind::kAnon:
      return "anon";
    case FdKind::kOther:
      return "other";
  }
  return "?";
}

std::string FdInfo::ToString() const {
  std::string out = "fd " + std::to_string(fd) + " [" + FdKindName(kind) + "] ";
  out += cloexec ? "cloexec " : "INHERITABLE ";
  out += target;
  return out;
}

namespace {

FdKind ClassifyFd(int fd, const std::string& target) {
  struct stat st;
  if (::fstat(fd, &st) == 0) {
    if (S_ISREG(st.st_mode)) {
      return FdKind::kRegularFile;
    }
    if (S_ISDIR(st.st_mode)) {
      return FdKind::kDirectory;
    }
    if (S_ISFIFO(st.st_mode)) {
      return FdKind::kPipe;
    }
    if (S_ISSOCK(st.st_mode)) {
      return FdKind::kSocket;
    }
    if (S_ISCHR(st.st_mode)) {
      return FdKind::kCharDevice;
    }
  }
  if (StartsWith(target, "anon_inode:")) {
    return FdKind::kAnon;
  }
  return FdKind::kOther;
}

}  // namespace

Result<std::vector<FdInfo>> AuditFds() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) {
    return ErrnoError("opendir /proc/self/fd");
  }
  int dir_fd = ::dirfd(dir);

  std::vector<FdInfo> out;
  for (;;) {
    errno = 0;
    dirent* ent = ::readdir(dir);
    if (ent == nullptr) {
      if (errno != 0) {
        int saved = errno;
        ::closedir(dir);
        errno = saved;
        return ErrnoError("readdir /proc/self/fd");
      }
      break;
    }
    if (ent->d_name[0] == '.') {
      continue;
    }
    char* endp = nullptr;
    long fd_long = std::strtol(ent->d_name, &endp, 10);
    if (endp == ent->d_name || *endp != '\0') {
      continue;
    }
    int fd = static_cast<int>(fd_long);
    if (fd == dir_fd) {
      continue;  // our own directory handle
    }

    FdInfo info;
    info.fd = fd;
    int flags = ::fcntl(fd, F_GETFD);
    if (flags < 0) {
      continue;  // raced with a close; skip
    }
    info.cloexec = (flags & FD_CLOEXEC) != 0;

    char buf[512];
    std::string link = "/proc/self/fd/" + std::string(ent->d_name);
    ssize_t n = ::readlink(link.c_str(), buf, sizeof(buf) - 1);
    if (n > 0) {
      info.target.assign(buf, static_cast<size_t>(n));
    }
    info.kind = ClassifyFd(fd, info.target);
    out.push_back(std::move(info));
  }
  ::closedir(dir);
  return out;
}

std::string FdLeakReport::ToString() const {
  std::string out = "fd audit: " + std::to_string(total_fds) + " open, " +
                    std::to_string(inheritable.size()) + " inheritable";
  for (const auto& info : inheritable) {
    out += "\n  " + info.ToString();
  }
  return out;
}

Result<FdLeakReport> FindInheritableFds(bool ignore_stdio) {
  FORKLIFT_ASSIGN_OR_RETURN(std::vector<FdInfo> fds, AuditFds());
  FdLeakReport report;
  report.total_fds = fds.size();
  for (auto& info : fds) {
    if (info.cloexec) {
      continue;
    }
    if (ignore_stdio && info.fd <= 2) {
      continue;
    }
    report.inheritable.push_back(std::move(info));
  }
  return report;
}

}  // namespace forklift
