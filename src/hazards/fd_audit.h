// forklift/hazards: descriptor-table auditing.
//
// HotOS'19 §4, "Fork is insecure by default": every descriptor without
// FD_CLOEXEC silently flows into any child the process ever forks, and from
// there through exec into arbitrary programs. This module makes the leak
// surface visible: it enumerates /proc/self/fd, classifies each descriptor,
// and reports the inheritable ones so code (or a ForkGuard policy) can fail
// loudly instead of leaking quietly.
#ifndef SRC_HAZARDS_FD_AUDIT_H_
#define SRC_HAZARDS_FD_AUDIT_H_

#include <string>
#include <vector>

#include "src/common/result.h"

namespace forklift {

enum class FdKind {
  kRegularFile,
  kDirectory,
  kPipe,
  kSocket,
  kCharDevice,
  kAnon,   // anon_inode: eventfd, epoll, timerfd, ...
  kOther,
};

const char* FdKindName(FdKind kind);

struct FdInfo {
  int fd = -1;
  bool cloexec = false;
  FdKind kind = FdKind::kOther;
  std::string target;  // readlink of /proc/self/fd/<n>

  std::string ToString() const;
};

// Snapshot of the calling process's descriptor table. The fd used to read the
// /proc directory is excluded.
Result<std::vector<FdInfo>> AuditFds();

struct FdLeakReport {
  std::vector<FdInfo> inheritable;  // would survive fork+exec
  size_t total_fds = 0;

  bool clean() const { return inheritable.empty(); }
  std::string ToString() const;
};

// Reports descriptors that would leak through fork+exec. stdio (0,1,2) is
// exempt by default: inheriting the standard streams is the contract.
Result<FdLeakReport> FindInheritableFds(bool ignore_stdio = true);

}  // namespace forklift

#endif  // SRC_HAZARDS_FD_AUDIT_H_
