#include "src/hazards/fork_guard.h"

#include <pthread.h>

#include <atomic>
#include <mutex>

#include "src/common/log.h"
#include "src/hazards/lock_registry.h"

namespace forklift {

namespace {

std::mutex g_state_mu;
HazardReport g_last_report;
std::atomic<int> g_action{static_cast<int>(ForkGuardAction::kReport)};
std::atomic<bool> g_installed{false};
std::atomic<uint64_t> g_forks_observed{0};

void PrepareHook() {
  g_forks_observed.fetch_add(1);
  auto report = ForkGuard::CheckNow();
  if (!report.ok()) {
    FORKLIFT_WARN("fork guard: audit failed: %s", report.error().ToString().c_str());
    return;
  }
  auto action = static_cast<ForkGuardAction>(g_action.load());
  if (action == ForkGuardAction::kFlushAndWarn && !report->unflushed_streams.empty()) {
    size_t flushed = StdioAudit::Instance().FlushAll();
    FORKLIFT_WARN("fork guard: flushed %zu buffered bytes before fork", flushed);
  }
  if (action != ForkGuardAction::kReport && !report->clean()) {
    FORKLIFT_WARN("fork guard: forking with %zu hazard(s):\n%s", report->finding_count(),
                  report->ToString().c_str());
  }
  std::lock_guard<std::mutex> lock(g_state_mu);
  g_last_report = std::move(report).value();
}

}  // namespace

std::string HazardReport::ToString() const {
  std::string out;
  if (clean()) {
    return "no fork hazards detected";
  }
  for (const auto& name : locks_held_by_others) {
    out += "  [lock] '" + name + "' is held by another thread (child would deadlock)\n";
  }
  for (const auto& s : unflushed_streams) {
    out += "  [stdio] " + s.name + " has " + std::to_string(s.pending_bytes) +
           " unflushed bytes (child would duplicate them)\n";
  }
  for (const auto& info : fd_leaks.inheritable) {
    out += "  [fd] " + info.ToString() + " (child would inherit it)\n";
  }
  if (!out.empty() && out.back() == '\n') {
    out.pop_back();
  }
  return out;
}

Result<HazardReport> ForkGuard::CheckNow(bool ignore_stdio_fds) {
  HazardReport report;
  report.locks_held_by_others = LockRegistry::Instance().HeldByOtherThreads();
  report.unflushed_streams = StdioAudit::Instance().FindUnflushed();
  FORKLIFT_ASSIGN_OR_RETURN(report.fd_leaks, FindInheritableFds(ignore_stdio_fds));
  return report;
}

Status ForkGuard::Install(ForkGuardAction action) {
  g_action.store(static_cast<int>(action));
  bool expected = false;
  if (g_installed.compare_exchange_strong(expected, true)) {
    if (::pthread_atfork(&PrepareHook, nullptr, nullptr) != 0) {
      g_installed.store(false);
      return ErrnoError("pthread_atfork");
    }
  }
  return Status::Ok();
}

HazardReport ForkGuard::LastReport() {
  std::lock_guard<std::mutex> lock(g_state_mu);
  return g_last_report;
}

uint64_t ForkGuard::ForksObserved() { return g_forks_observed.load(); }

}  // namespace forklift
