// forklift/hazards: ForkGuard — run the §4 hazard checks at (or before) fork.
//
// A HazardReport aggregates the three auditable fork hazards:
//   * locks held by other threads   (child would inherit orphaned locks)
//   * unflushed stdio buffers       (output would be duplicated)
//   * inheritable descriptors       (capabilities would leak to the child)
//
// CheckNow() answers "is it safe to fork right now?" on demand; Install()
// arms a pthread_atfork prepare-hook so every fork in the process — including
// ones inside libraries — is audited, with a configurable reaction. This is
// deliberately the inverse of the fork contract: fork asks nothing and copies
// everything; ForkGuard asks everything before anything is copied.
#ifndef SRC_HAZARDS_FORK_GUARD_H_
#define SRC_HAZARDS_FORK_GUARD_H_

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/hazards/fd_audit.h"
#include "src/hazards/stdio_audit.h"

namespace forklift {

struct HazardReport {
  std::vector<std::string> locks_held_by_others;
  std::vector<UnflushedStream> unflushed_streams;
  FdLeakReport fd_leaks;

  bool clean() const {
    return locks_held_by_others.empty() && unflushed_streams.empty() && fd_leaks.clean();
  }
  // Number of distinct findings.
  size_t finding_count() const {
    return locks_held_by_others.size() + unflushed_streams.size() + fd_leaks.inheritable.size();
  }
  std::string ToString() const;
};

enum class ForkGuardAction {
  kReport,          // collect only; caller inspects LastReport()
  kWarn,            // log each finding at warning level
  kFlushAndWarn,    // additionally flush unflushed streams (fixes that hazard)
};

class ForkGuard {
 public:
  // Runs all audits immediately.
  static Result<HazardReport> CheckNow(bool ignore_stdio_fds = true);

  // Arms the process-wide pthread_atfork prepare hook. Idempotent: later
  // calls only update the action. Cannot be disarmed (pthread_atfork handlers
  // are permanent) — the action can be set back to kReport to silence it.
  static Status Install(ForkGuardAction action);

  // The report captured by the most recent guarded fork (or CheckNow).
  static HazardReport LastReport();

  // Number of forks observed by the installed hook.
  static uint64_t ForksObserved();
};

}  // namespace forklift

#endif  // SRC_HAZARDS_FORK_GUARD_H_
