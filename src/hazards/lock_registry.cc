#include "src/hazards/lock_registry.h"

#include <atomic>

namespace forklift {

uint64_t CurrentThreadToken() {
  static std::atomic<uint64_t> next{1};
  thread_local uint64_t token = next.fetch_add(1);
  return token;
}

TrackedMutex::TrackedMutex(std::string name) : name_(std::move(name)) {
  LockRegistry::Instance().Register(this);
}

TrackedMutex::~TrackedMutex() { LockRegistry::Instance().Unregister(this); }

void TrackedMutex::lock() {
  mu_.lock();
  holder_.store(CurrentThreadToken(), std::memory_order_release);
}

void TrackedMutex::unlock() {
  holder_.store(0, std::memory_order_release);
  mu_.unlock();
}

bool TrackedMutex::try_lock() {
  if (!mu_.try_lock()) {
    return false;
  }
  holder_.store(CurrentThreadToken(), std::memory_order_release);
  return true;
}

bool TrackedMutex::held() const { return holder_.load(std::memory_order_acquire) != 0; }

bool TrackedMutex::held_by_me() const {
  return holder_.load(std::memory_order_acquire) == CurrentThreadToken();
}

LockRegistry& LockRegistry::Instance() {
  static LockRegistry* instance = new LockRegistry();  // leaked: outlives all users
  return *instance;
}

void LockRegistry::Register(TrackedMutex* mu) {
  std::lock_guard<std::mutex> lock(mu_);
  locks_.push_back(mu);
}

void LockRegistry::Unregister(TrackedMutex* mu) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = locks_.begin(); it != locks_.end(); ++it) {
    if (*it == mu) {
      locks_.erase(it);
      return;
    }
  }
}

std::vector<HeldLockInfo> LockRegistry::HeldLocks() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<HeldLockInfo> out;
  uint64_t me = CurrentThreadToken();
  for (TrackedMutex* mu : locks_) {
    uint64_t holder = mu->holder_.load(std::memory_order_acquire);
    if (holder != 0) {
      out.push_back(HeldLockInfo{mu->name(), holder == me});
    }
  }
  return out;
}

std::vector<std::string> LockRegistry::HeldByOtherThreads() {
  std::vector<std::string> out;
  for (auto& info : HeldLocks()) {
    if (!info.held_by_current_thread) {
      out.push_back(info.name);
    }
  }
  return out;
}

size_t LockRegistry::size() {
  std::lock_guard<std::mutex> lock(mu_);
  return locks_.size();
}

}  // namespace forklift
