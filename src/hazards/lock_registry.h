// forklift/hazards: lock tracking — the fork-vs-threads deadlock made visible.
//
// HotOS'19 §4, "Fork doesn't compose" / "isn't thread-safe": fork snapshots
// the whole address space but only the calling thread. A mutex held by any
// *other* thread at fork time is copied in the locked state with its owner
// gone — the child deadlocks the first time it touches that lock (malloc's
// arena locks being the classic victim). TrackedMutex + LockRegistry make the
// hazard checkable: at any moment the registry can answer "which locks are
// held, and by whom relative to me", which is exactly the question a fork call
// site cannot answer with raw pthread mutexes.
#ifndef SRC_HAZARDS_LOCK_REGISTRY_H_
#define SRC_HAZARDS_LOCK_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace forklift {

class LockRegistry;

// A named mutex that reports its hold state to the global LockRegistry.
// Satisfies the Lockable requirements (usable with std::lock_guard).
class TrackedMutex {
 public:
  explicit TrackedMutex(std::string name);
  ~TrackedMutex();

  TrackedMutex(const TrackedMutex&) = delete;
  TrackedMutex& operator=(const TrackedMutex&) = delete;

  void lock();
  void unlock();
  bool try_lock();

  const std::string& name() const { return name_; }
  // Whether the mutex is currently held (by anyone).
  bool held() const;
  // Whether the calling thread is the holder.
  bool held_by_me() const;

 private:
  friend class LockRegistry;

  std::string name_;
  std::mutex mu_;
  // Holder identity, guarded by mu_ being held (writes only happen while
  // holding mu_); reads are racy-by-design snapshots for reporting.
  std::atomic<uint64_t> holder_{0};  // 0 = unheld, else hashed thread id
};

struct HeldLockInfo {
  std::string name;
  bool held_by_current_thread = false;
};

// Process-wide registry of TrackedMutex instances.
class LockRegistry {
 public:
  static LockRegistry& Instance();

  // Snapshot of currently-held tracked locks.
  std::vector<HeldLockInfo> HeldLocks();

  // The fork hazard: locks held by threads OTHER than the caller. Forking
  // while this is non-empty copies orphaned locked mutexes into the child.
  std::vector<std::string> HeldByOtherThreads();

  // Total number of registered (live) tracked mutexes.
  size_t size();

 private:
  friend class TrackedMutex;

  void Register(TrackedMutex* mu);
  void Unregister(TrackedMutex* mu);

  std::mutex mu_;
  std::vector<TrackedMutex*> locks_;
};

// Stable per-thread token (never 0) for holder identification.
uint64_t CurrentThreadToken();

}  // namespace forklift

#endif  // SRC_HAZARDS_LOCK_REGISTRY_H_
