#include "src/hazards/secret.h"

#include <string.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cstring>
#include <utility>

namespace forklift {

Result<SecretBuffer> SecretBuffer::Create(size_t size) {
  if (size == 0) {
    return LogicalError("SecretBuffer: zero size");
  }
  long page = ::sysconf(_SC_PAGESIZE);
  size_t map_size = (size + static_cast<size_t>(page) - 1) & ~(static_cast<size_t>(page) - 1);
  void* p = ::mmap(nullptr, map_size, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) {
    return ErrnoError("mmap (secret buffer)");
  }
  SecretBuffer buf;
  buf.data_ = static_cast<uint8_t*>(p);
  buf.size_ = size;
  buf.map_size_ = map_size;
#ifdef MADV_WIPEONFORK
  buf.wipe_on_fork_ = ::madvise(p, map_size, MADV_WIPEONFORK) == 0;
#endif
  // Best effort: keep the secret off swap; ignore EPERM under tight rlimits.
  (void)::mlock(p, map_size);
  return buf;
}

SecretBuffer::~SecretBuffer() {
  if (data_ != nullptr) {
    Wipe();
    ::munmap(data_, map_size_);
  }
}

SecretBuffer::SecretBuffer(SecretBuffer&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      map_size_(std::exchange(other.map_size_, 0)),
      wipe_on_fork_(other.wipe_on_fork_) {}

SecretBuffer& SecretBuffer::operator=(SecretBuffer&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) {
      Wipe();
      ::munmap(data_, map_size_);
    }
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    map_size_ = std::exchange(other.map_size_, 0);
    wipe_on_fork_ = other.wipe_on_fork_;
  }
  return *this;
}

Status SecretBuffer::Store(std::string_view secret) {
  if (!valid()) {
    return LogicalError("SecretBuffer: not allocated");
  }
  if (secret.size() > size_) {
    return LogicalError("SecretBuffer: secret larger than buffer");
  }
  Wipe();
  std::memcpy(data_, secret.data(), secret.size());
  return Status::Ok();
}

std::string_view SecretBuffer::View() const {
  if (!valid()) {
    return {};
  }
  return std::string_view(reinterpret_cast<const char*>(data_), size_);
}

void SecretBuffer::Wipe() {
  if (data_ != nullptr) {
    ::explicit_bzero(data_, map_size_);
  }
}

}  // namespace forklift
