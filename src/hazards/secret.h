// forklift/hazards: secrets that refuse to cross a fork.
//
// HotOS'19 §4, "Fork is insecure": the child receives a byte-for-byte copy of
// the parent's memory — keys, tokens, password buffers — whether or not it
// needs them, and an exec'd successor can be heap-sprayed into revealing them.
// SecretBuffer stores sensitive bytes in a dedicated mapping marked
// MADV_WIPEONFORK (Linux ≥ 4.14): the kernel replaces the pages with zeros in
// every forked child, making the leak structurally impossible rather than
// procedurally avoided. mlock-ing (no swap) and explicit_bzero-on-destroy are
// applied as well.
#ifndef SRC_HAZARDS_SECRET_H_
#define SRC_HAZARDS_SECRET_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "src/common/result.h"

namespace forklift {

class SecretBuffer {
 public:
  // Allocates a page-aligned wipe-on-fork mapping of at least `size` bytes.
  static Result<SecretBuffer> Create(size_t size);

  SecretBuffer() = default;
  ~SecretBuffer();

  SecretBuffer(const SecretBuffer&) = delete;
  SecretBuffer& operator=(const SecretBuffer&) = delete;
  SecretBuffer(SecretBuffer&& other) noexcept;
  SecretBuffer& operator=(SecretBuffer&& other) noexcept;

  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool valid() const { return data_ != nullptr; }

  // Convenience: copy a secret in / view it.
  Status Store(std::string_view secret);
  std::string_view View() const;

  // Zeroes the contents now (compiler-proof).
  void Wipe();

  // True when the kernel honoured MADV_WIPEONFORK for this mapping. On
  // kernels without it the buffer still works but children must be trusted;
  // callers can branch on this to refuse to fork instead.
  bool wipe_on_fork() const { return wipe_on_fork_; }

 private:
  uint8_t* data_ = nullptr;
  size_t size_ = 0;       // usable size requested by the caller
  size_t map_size_ = 0;   // page-rounded mapping size
  bool wipe_on_fork_ = false;
};

}  // namespace forklift

#endif  // SRC_HAZARDS_SECRET_H_
