#include "src/hazards/stdio_audit.h"

#include <stdio_ext.h>

namespace forklift {

size_t PendingBytes(FILE* stream) {
  if (stream == nullptr) {
    return 0;
  }
  return __fpending(stream);
}

StdioAudit& StdioAudit::Instance() {
  static StdioAudit* instance = new StdioAudit();
  return *instance;
}

StdioAudit::StdioAudit() {
  tracked_.push_back(UnflushedStream{"stdout", stdout, 0});
  tracked_.push_back(UnflushedStream{"stderr", stderr, 0});
}

void StdioAudit::Register(std::string name, FILE* stream) {
  tracked_.push_back(UnflushedStream{std::move(name), stream, 0});
}

void StdioAudit::Unregister(FILE* stream) {
  for (auto it = tracked_.begin(); it != tracked_.end(); ++it) {
    if (it->stream == stream) {
      tracked_.erase(it);
      return;
    }
  }
}

std::vector<UnflushedStream> StdioAudit::FindUnflushed() {
  std::vector<UnflushedStream> out;
  for (const auto& t : tracked_) {
    size_t pending = PendingBytes(t.stream);
    if (pending > 0) {
      out.push_back(UnflushedStream{t.name, t.stream, pending});
    }
  }
  return out;
}

size_t StdioAudit::FlushAll() {
  size_t total = 0;
  for (const auto& t : tracked_) {
    total += PendingBytes(t.stream);
    std::fflush(t.stream);
  }
  return total;
}

}  // namespace forklift
