// forklift/hazards: buffered-stream auditing.
//
// HotOS'19 §4, "Fork doesn't compose": stdio buffers are ordinary heap memory,
// so fork duplicates any unflushed bytes into the child; if both processes
// then exit (flushing), the output appears twice. The classic demo is
// `printf("hello"); fork();` printing "hellohello" when stdout is a pipe.
// This module counts the bytes at risk (glibc's __fpending) so a fork guard
// can flush — or object — before the duplication happens.
#ifndef SRC_HAZARDS_STDIO_AUDIT_H_
#define SRC_HAZARDS_STDIO_AUDIT_H_

#include <cstdio>

#include <string>
#include <vector>

namespace forklift {

// Bytes sitting in `stream`'s output buffer, not yet written to the kernel.
size_t PendingBytes(FILE* stream);

struct UnflushedStream {
  std::string name;  // "stdout", "stderr", or user-registered name
  FILE* stream;
  size_t pending_bytes;
};

// Audits stdout/stderr plus any registered streams.
class StdioAudit {
 public:
  static StdioAudit& Instance();

  // Tracks an additional stream (e.g. a log file) in audits. The stream must
  // be unregistered before it is fclosed.
  void Register(std::string name, FILE* stream);
  void Unregister(FILE* stream);

  // Streams with unflushed output right now.
  std::vector<UnflushedStream> FindUnflushed();

  // Flushes every audited stream; returns the number of bytes that were
  // pending (i.e. how much output a fork would have duplicated).
  size_t FlushAll();

 private:
  StdioAudit();

  std::vector<UnflushedStream> tracked_;  // pending_bytes unused in storage
};

}  // namespace forklift

#endif  // SRC_HAZARDS_STDIO_AUDIT_H_
