#include "src/obs/export.h"

#include <cerrno>
#include <cstdio>

#include "src/common/syscall.h"
#include "src/faultinject/faultinject.h"

namespace forklift {
namespace obs {

namespace {

// "base{labels}" → "base"; names without labels pass through.
std::string_view BaseName(std::string_view name) {
  size_t brace = name.find('{');
  return brace == std::string_view::npos ? name : name.substr(0, brace);
}

void AppendJsonString(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char esc[8];
          std::snprintf(esc, sizeof(esc), "\\u%04x", static_cast<unsigned char>(c));
          out += esc;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void AppendDouble(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  out += buf;
}

const char* TypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "?";
}

}  // namespace

std::string RenderPrometheus(const std::vector<MetricSnapshot>& metrics) {
  std::string out;
  std::string last_base;  // one # TYPE line per basename (labeled families share it)
  for (const MetricSnapshot& m : metrics) {
    std::string base(BaseName(m.name));
    if (base != last_base) {
      out += "# TYPE " + base + " " + TypeName(m.type) + "\n";
      last_base = base;
    }
    switch (m.type) {
      case MetricType::kCounter:
        out += m.name + " " + std::to_string(m.value) + "\n";
        break;
      case MetricType::kGauge:
        out += m.name + " " + std::to_string(m.gauge) + "\n";
        break;
      case MetricType::kHistogram: {
        uint64_t cum = 0;
        for (size_t i = 0; i < kHistogramBuckets; ++i) {
          cum += m.hist.buckets[i];
          std::string le = i == kHistogramOverflowBucket
                               ? std::string("+Inf")
                               : std::to_string(HistogramBucketBound(i));
          out += m.name + "_bucket{le=\"" + le + "\"} " + std::to_string(cum) + "\n";
        }
        out += m.name + "_sum " + std::to_string(m.hist.sum) + "\n";
        out += m.name + "_count " + std::to_string(m.hist.count) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string RenderJson(const std::vector<MetricSnapshot>& metrics) {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const MetricSnapshot& m : metrics) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    AppendJsonString(out, m.name);
    out += ",\"type\":\"";
    out += TypeName(m.type);
    out += '"';
    switch (m.type) {
      case MetricType::kCounter:
        out += ",\"value\":" + std::to_string(m.value);
        break;
      case MetricType::kGauge:
        out += ",\"value\":" + std::to_string(m.gauge);
        break;
      case MetricType::kHistogram: {
        out += ",\"count\":" + std::to_string(m.hist.count);
        out += ",\"sum\":" + std::to_string(m.hist.sum);
        out += ",\"mean\":";
        AppendDouble(out, m.hist.Mean());
        out += ",\"p50\":";
        AppendDouble(out, m.hist.Percentile(50));
        out += ",\"p95\":";
        AppendDouble(out, m.hist.Percentile(95));
        out += ",\"p99\":";
        AppendDouble(out, m.hist.Percentile(99));
        out += ",\"buckets\":[";
        for (size_t i = 0; i < kHistogramBuckets; ++i) {
          if (i != 0) out += ',';
          out += "{\"le\":" + std::to_string(HistogramBucketBound(i)) +
                 ",\"count\":" + std::to_string(m.hist.buckets[i]) + "}";
        }
        out += ']';
        break;
      }
    }
    out += '}';
  }
  out += "]}\n";
  return out;
}

std::string RenderPrometheus() {
  return RenderPrometheus(MetricsRegistry::Global().SnapshotAll());
}

std::string RenderJson() { return RenderJson(MetricsRegistry::Global().SnapshotAll()); }

std::string Render(StatsFormat format) {
  return format == StatsFormat::kJson ? RenderJson() : RenderPrometheus();
}

Status ExportGate() {
  for (;;) {
    auto inj = fault::Check("obs.export_write", fault::Op::kWrite);
    if (!inj.active()) {
      return Status::Ok();
    }
    if (inj.is_errno()) {
      if (inj.err == EINTR || inj.err == EAGAIN) {
        // Recoverable: the write path retries these, so the gate absorbs
        // them and asks the plan again (a bounded plan stops injecting).
        continue;
      }
      errno = inj.err;
      return ErrnoError("obs.export_write");
    }
    // kShort: a clamped transfer is recoverable by WriteFull's loop; proceed.
    return Status::Ok();
  }
}

Status WriteExportToFd(int fd, std::string_view body) {
  FORKLIFT_RETURN_IF_ERROR(ExportGate());
  return WriteFull(fd, body.data(), body.size());
}

}  // namespace obs
}  // namespace forklift
