// forklift/obs: registry exporters — Prometheus text exposition and JSON.
//
// Both renderers read one SnapshotAll() pass, so the two formats always
// describe the same instant. Counter and gauge names may carry a
// label-in-name suffix (`forklift_route_attempts_total{route="sharded"}`);
// the Prometheus renderer groups the shared basename under one # TYPE line
// and emits the sample verbatim. Histograms render as the standard
// cumulative _bucket{le=...}/_sum/_count triplet (values are microseconds;
// the _us suffix in the metric name says so).
//
// Every export write funnels through WriteExportToFd, which consults the
// "obs.export_write" fault site first — the sweep drives EINTR/EAGAIN/short
// (absorbed, export must still succeed) and EIO (must degrade to a clean
// Status, never a torn half-write treated as success).
#ifndef SRC_OBS_EXPORT_H_
#define SRC_OBS_EXPORT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/obs/registry.h"

namespace forklift {
namespace obs {

// Wire values of the kStats request's format byte.
enum class StatsFormat : uint8_t {
  kPrometheus = 0,
  kJson = 1,
};

std::string RenderPrometheus(const std::vector<MetricSnapshot>& metrics);
std::string RenderJson(const std::vector<MetricSnapshot>& metrics);

// Render the global registry.
std::string RenderPrometheus();
std::string RenderJson();
std::string Render(StatsFormat format);

// The injectable gate in front of every export write. Recoverable injected
// faults (EINTR/EAGAIN/short) are absorbed here — the sweep's
// recoverable-must-succeed invariant — and hard faults come back as a clean
// errno Status.
Status ExportGate();

// Fault-gated full write of an export body.
Status WriteExportToFd(int fd, std::string_view body);

}  // namespace obs
}  // namespace forklift

#endif  // SRC_OBS_EXPORT_H_
