#include "src/obs/registry.h"

#include <pthread.h>
#include <sched.h>
#include <stdlib.h>
#include <string.h>
#include <sys/mman.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <unordered_map>

namespace forklift {
namespace obs {

namespace internal {

// ---------------------------------------------------------------------------
// Shared arena. One anonymous MAP_SHARED region holds every metric slot plus
// the request-id allocator, so a zygote shard forked after the arena exists
// writes the same counters the supervisor scrapes. std::atomic on shared
// memory is valid because these sizes are lock-free and address-free on every
// platform we target (x86-64, aarch64) — same contract as src/faultinject.
// ---------------------------------------------------------------------------

constexpr size_t kMaxSlots = 256;
constexpr size_t kMaxMetricName = 104;  // includes NUL

constexpr uint32_t kSlotFree = 0;
constexpr uint32_t kSlotBusy = 1;  // claimed, name not yet published
constexpr uint32_t kSlotReady = 2;

struct Slot {
  std::atomic<uint32_t> state;
  uint32_t type;
  char name[kMaxMetricName];
  std::atomic<uint64_t> value;                      // counter count / histogram sum
  std::atomic<int64_t> gauge;                       // gauge value
  std::atomic<uint64_t> buckets[kHistogramBuckets]; // histogram only
};

struct Arena {
  std::atomic<uint64_t> next_request_id;
  Slot slots[kMaxSlots];
};

static_assert(std::atomic<uint64_t>::is_always_lock_free,
              "shared-memory counters require lock-free 64-bit atomics");
static_assert(std::atomic<int64_t>::is_always_lock_free,
              "shared-memory gauges require lock-free 64-bit atomics");
static_assert(std::atomic<uint32_t>::is_always_lock_free,
              "shared-memory slot states require lock-free 32-bit atomics");

}  // namespace internal

namespace {

using internal::Arena;
using internal::kMaxMetricName;
using internal::kMaxSlots;
using internal::kSlotBusy;
using internal::kSlotFree;
using internal::kSlotReady;
using internal::Slot;

Arena* g_arena = nullptr;

// Serializes arena creation and the slot-pointer cache. Zygote children
// resolve metrics too (a forked shard binds its server counters at startup),
// and fork(2) can land while another thread of the parent holds this lock —
// the atfork hooks keep the child's copy unlocked, exactly like
// src/faultinject's registry mutex.
std::mutex g_mu;
std::unordered_map<std::string, Slot*>* g_slot_cache = nullptr;

void LockBeforeFork() { g_mu.lock(); }
void UnlockAfterFork() { g_mu.unlock(); }
struct AtforkGuard {
  AtforkGuard() { ::pthread_atfork(&LockBeforeFork, &UnlockAfterFork, &UnlockAfterFork); }
};
AtforkGuard g_atfork_guard;

Arena* EnsureArenaLocked() {
  if (g_arena != nullptr) return g_arena;
  void* mem = ::mmap(nullptr, sizeof(Arena), PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) {
    // Private fallback: metrics still work within this process; only
    // cross-process aggregation (and cross-process id uniqueness) is lost.
    mem = ::calloc(1, sizeof(Arena));
    if (mem == nullptr) return nullptr;
  }
  g_arena = new (mem) Arena();
  return g_arena;
}

Slot* FindOrClaimSlot(std::string_view name, MetricType type) {
  if (name.empty() || name.size() >= kMaxMetricName) return nullptr;
  std::string key(name);
  Arena* arena;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    arena = EnsureArenaLocked();
    if (arena == nullptr) return nullptr;
    if (g_slot_cache == nullptr) {
      g_slot_cache = new std::unordered_map<std::string, Slot*>();
    }
    auto it = g_slot_cache->find(key);
    if (it != g_slot_cache->end()) {
      return it->second->type == static_cast<uint32_t>(type) ? it->second : nullptr;
    }
  }
  for (size_t i = 0; i < kMaxSlots; ++i) {
    Slot& slot = arena->slots[i];
    uint32_t state = slot.state.load(std::memory_order_acquire);
    if (state == kSlotFree) {
      uint32_t expected = kSlotFree;
      if (slot.state.compare_exchange_strong(expected, kSlotBusy,
                                             std::memory_order_acq_rel)) {
        ::strncpy(slot.name, key.c_str(), kMaxMetricName - 1);
        slot.name[kMaxMetricName - 1] = '\0';
        slot.type = static_cast<uint32_t>(type);
        slot.value.store(0, std::memory_order_relaxed);
        slot.gauge.store(0, std::memory_order_relaxed);
        for (auto& b : slot.buckets) b.store(0, std::memory_order_relaxed);
        slot.state.store(kSlotReady, std::memory_order_release);
        state = kSlotReady;
      } else {
        state = expected;
      }
    }
    // Another process may have the slot mid-claim; wait for the name.
    while (state == kSlotBusy) {
      ::sched_yield();
      state = slot.state.load(std::memory_order_acquire);
    }
    if (state == kSlotReady && ::strncmp(slot.name, key.c_str(), kMaxMetricName) == 0) {
      std::lock_guard<std::mutex> lock(g_mu);
      (*g_slot_cache)[key] = &slot;
      return slot.type == static_cast<uint32_t>(type) ? &slot : nullptr;
    }
  }
  return nullptr;  // table full: record nothing rather than fail the caller
}

}  // namespace

size_t HistogramBucketIndex(uint64_t value) {
  // Bucket i holds value <= 2^i: 0 and 1 land in bucket 0, 2^i in bucket i.
  if (value <= 1) return 0;
  size_t bit = 64 - static_cast<size_t>(__builtin_clzll(value - 1));
  return bit <= kHistogramOverflowBucket - 1 ? bit : kHistogramOverflowBucket;
}

uint64_t HistogramBucketBound(size_t index) {
  if (index >= kHistogramOverflowBucket) {
    return 1ull << kHistogramOverflowBucket;  // sentinel: beyond the tracked range
  }
  return 1ull << index;
}

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  uint64_t target = static_cast<uint64_t>(p / 100.0 * static_cast<double>(count));
  if (target == 0) target = 1;
  uint64_t cum = 0;
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    cum += buckets[i];
    if (cum >= target) {
      return static_cast<double>(HistogramBucketBound(i));
    }
  }
  return static_cast<double>(HistogramBucketBound(kHistogramOverflowBucket));
}

void Counter::Increment(uint64_t n) {
  if (slot_ != nullptr) slot_->value.fetch_add(n, std::memory_order_relaxed);
}

uint64_t Counter::Value() const {
  return slot_ == nullptr ? 0 : slot_->value.load(std::memory_order_relaxed);
}

void Counter::Reset() {
  if (slot_ != nullptr) slot_->value.store(0, std::memory_order_relaxed);
}

void Gauge::Set(int64_t value) {
  if (slot_ != nullptr) slot_->gauge.store(value, std::memory_order_relaxed);
}

void Gauge::Add(int64_t delta) {
  if (slot_ != nullptr) slot_->gauge.fetch_add(delta, std::memory_order_relaxed);
}

int64_t Gauge::Value() const {
  return slot_ == nullptr ? 0 : slot_->gauge.load(std::memory_order_relaxed);
}

void Gauge::Reset() {
  if (slot_ != nullptr) slot_->gauge.store(0, std::memory_order_relaxed);
}

void Histogram::Observe(uint64_t value) {
  if (slot_ == nullptr) return;
  slot_->buckets[HistogramBucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  slot_->value.fetch_add(value, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  if (slot_ == nullptr) return snap;
  // The count is derived from the same bucket loads it is reported next to,
  // so count == Σ buckets holds for every snapshot even under concurrent
  // Observe calls; only `sum` can drift by in-flight observations.
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    snap.buckets[i] = slot_->buckets[i].load(std::memory_order_relaxed);
    snap.count += snap.buckets[i];
  }
  snap.sum = slot_->value.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::Reset() {
  if (slot_ == nullptr) return;
  for (auto& b : slot_->buckets) b.store(0, std::memory_order_relaxed);
  slot_->value.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  // Creating the arena here (not lazily at the first Get*) is what lets
  // "touch Global() before forking shards" guarantee a shared arena.
  std::lock_guard<std::mutex> lock(g_mu);
  (void)EnsureArenaLocked();
  return *registry;
}

internal::Slot* MetricsRegistry::Lookup(std::string_view name, MetricType type) {
  return FindOrClaimSlot(name, type);
}

Counter MetricsRegistry::GetCounter(std::string_view name) {
  return Counter(Lookup(name, MetricType::kCounter));
}

Gauge MetricsRegistry::GetGauge(std::string_view name) {
  return Gauge(Lookup(name, MetricType::kGauge));
}

Histogram MetricsRegistry::GetHistogram(std::string_view name) {
  return Histogram(Lookup(name, MetricType::kHistogram));
}

std::vector<MetricSnapshot> MetricsRegistry::SnapshotAll() const {
  std::vector<MetricSnapshot> out;
  Arena* arena;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    arena = g_arena;
  }
  if (arena == nullptr) return out;
  for (size_t i = 0; i < kMaxSlots; ++i) {
    Slot& slot = arena->slots[i];
    if (slot.state.load(std::memory_order_acquire) != kSlotReady) continue;
    MetricSnapshot snap;
    snap.name.assign(slot.name);
    snap.type = static_cast<MetricType>(slot.type);
    switch (snap.type) {
      case MetricType::kCounter:
        snap.value = slot.value.load(std::memory_order_relaxed);
        break;
      case MetricType::kGauge:
        snap.gauge = slot.gauge.load(std::memory_order_relaxed);
        break;
      case MetricType::kHistogram:
        snap.hist = Histogram(&slot).snapshot();
        break;
    }
    out.push_back(std::move(snap));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) { return a.name < b.name; });
  return out;
}

void MetricsRegistry::ResetAllForTest() {
  Arena* arena;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    arena = g_arena;
  }
  if (arena == nullptr) return;
  for (size_t i = 0; i < kMaxSlots; ++i) {
    Slot& slot = arena->slots[i];
    if (slot.state.load(std::memory_order_acquire) != kSlotReady) continue;
    slot.value.store(0, std::memory_order_relaxed);
    slot.gauge.store(0, std::memory_order_relaxed);
    for (auto& b : slot.buckets) b.store(0, std::memory_order_relaxed);
  }
}

uint64_t NextRequestId() { return NextRequestIdRange(1); }

uint64_t NextRequestIdRange(uint64_t n) {
  if (n == 0) n = 1;
  Arena* arena;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    arena = EnsureArenaLocked();
  }
  if (arena == nullptr) {
    // Arena allocation failed: fall back to a process-local allocator so ids
    // stay unique (and nonzero) within this process at least.
    static std::atomic<uint64_t> local{0};
    return local.fetch_add(n, std::memory_order_relaxed) + 1;
  }
  return arena->next_request_id.fetch_add(n, std::memory_order_relaxed) + 1;
}

}  // namespace obs
}  // namespace forklift
