// forklift/obs: the process-wide metrics registry.
//
// SpawnMetrics, RouteMetrics, and the sharded pool each grew their own ad-hoc
// counter bag; none of them could be exported, and none survived a fork into
// the zygote shards. This registry unifies them: named counters, gauges, and
// fixed-bucket latency histograms, all stored in one anonymous MAP_SHARED
// arena (the same idiom as src/faultinject's site registry), so a zygote
// shard forked after the arena exists increments the same slots the
// supervisor exports. The hot path — Increment / Observe — is a handful of
// relaxed fetch_adds on pre-resolved slot pointers: no locks, no lookups, no
// allocation. Name resolution (GetCounter & co.) is the slow path and is
// meant to run once, at construction/bind time.
//
// The arena also owns the process-tree-wide request-id allocator
// (NextRequestId): protocol-v2 request ids double as trace ids, so they must
// be unique across every channel and shard a process talks to — a single
// shared fetch_add gives exactly that, and never returns 0 (the pipelined
// client treats a zero request_id as a protocol violation).
#ifndef SRC_OBS_REGISTRY_H_
#define SRC_OBS_REGISTRY_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace forklift {
namespace obs {

enum class MetricType : uint32_t {
  kCounter = 0,
  kGauge = 1,
  kHistogram = 2,
};

// Histogram layout: bucket i (i in [0, 26]) counts observations with
// value <= 2^i; bucket 27 is the overflow bucket. With microsecond
// observations this spans 1 µs .. ~67 s — wider than any spawn latency worth
// averaging and narrow enough that one slot stays small.
constexpr size_t kHistogramBuckets = 28;
constexpr size_t kHistogramOverflowBucket = kHistogramBuckets - 1;

// The bucket an observation lands in, and a bucket's inclusive upper bound
// (the overflow bucket reports 2^27 as a "beyond the tracked range"
// sentinel). Exposed for the boundary tests and the exporters.
size_t HistogramBucketIndex(uint64_t value);
uint64_t HistogramBucketBound(size_t index);

struct HistogramSnapshot {
  uint64_t count = 0;  // derived from the bucket reads, so count == Σ buckets
  uint64_t sum = 0;
  uint64_t buckets[kHistogramBuckets] = {};

  // Percentile as the upper bound of the bucket holding the p-th observation
  // (p in [0, 100]); 0 when empty.
  double Percentile(double p) const;
  double Mean() const { return count == 0 ? 0.0 : static_cast<double>(sum) / count; }
};

namespace internal {
struct Slot;
}  // namespace internal

// Handles are thin copyable views over a registry slot, resolved once by
// name. A default-constructed (or type-mismatched) handle is a no-op on
// writes and reads zero — metric recording must never become a failure path.
class Counter {
 public:
  Counter() = default;
  void Increment(uint64_t n = 1);
  uint64_t Value() const;
  void Reset();
  bool valid() const { return slot_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Counter(internal::Slot* slot) : slot_(slot) {}
  internal::Slot* slot_ = nullptr;
};

class Gauge {
 public:
  Gauge() = default;
  void Set(int64_t value);
  void Add(int64_t delta);
  int64_t Value() const;
  void Reset();
  bool valid() const { return slot_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(internal::Slot* slot) : slot_(slot) {}
  internal::Slot* slot_ = nullptr;
};

class Histogram {
 public:
  Histogram() = default;
  void Observe(uint64_t value);
  HistogramSnapshot snapshot() const;
  void Reset();
  bool valid() const { return slot_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(internal::Slot* slot) : slot_(slot) {}
  internal::Slot* slot_ = nullptr;
};

// One metric as read by SnapshotAll. For counters `value` holds the count;
// for gauges `gauge`; for histograms `hist`.
struct MetricSnapshot {
  std::string name;
  MetricType type = MetricType::kCounter;
  uint64_t value = 0;
  int64_t gauge = 0;
  HistogramSnapshot hist;
};

class MetricsRegistry {
 public:
  // The one registry of this process tree. First use creates the shared
  // arena; call it before forking shards that should share counters.
  static MetricsRegistry& Global();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Resolve-or-claim by name. Asking for an existing name with a different
  // type — or overflowing the fixed slot table — returns an invalid (no-op)
  // handle rather than failing.
  Counter GetCounter(std::string_view name);
  Gauge GetGauge(std::string_view name);
  Histogram GetHistogram(std::string_view name);

  // Every claimed metric, sorted by name.
  std::vector<MetricSnapshot> SnapshotAll() const;

  // Zeroes every value (names and handles stay bound). For tests.
  void ResetAllForTest();

 private:
  MetricsRegistry() = default;
  internal::Slot* Lookup(std::string_view name, MetricType type);
};

// Allocates the next process-tree-unique request/trace id. Starts at 1 and
// never returns 0.
uint64_t NextRequestId();

// Allocates `n` consecutive ids in one fetch_add and returns the first.
// kSpawnBatch frames carry one base id; entry i is answered under base+i, so
// the whole range must come from the same allocator that single spawns use.
// n == 0 is treated as 1.
uint64_t NextRequestIdRange(uint64_t n);

}  // namespace obs
}  // namespace forklift

#endif  // SRC_OBS_REGISTRY_H_
