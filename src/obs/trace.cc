#include "src/obs/trace.h"

#include <fcntl.h>
#include <pthread.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <deque>
#include <mutex>
#include <utility>

#include "src/common/clock.h"
#include "src/common/unique_fd.h"
#include "src/obs/export.h"

namespace forklift {
namespace obs {

namespace {

// Bounded retention: old spans age out instead of growing the process. 4096
// spans is ~600 full spawn lifecycles — plenty for a trace dump, bounded for
// a long-lived service.
constexpr size_t kMaxSpans = 4096;

// The span store. Guarded by g_mu; the atfork hooks keep a forked child's
// copy of the lock released (a spawn backend forks while other threads may be
// mid-Record), mirroring the registry and faultinject mutexes.
std::mutex g_mu;
std::deque<TraceSpan>* g_spans = nullptr;
std::atomic<bool> g_enabled{true};

void LockBeforeFork() { g_mu.lock(); }
void UnlockAfterFork() { g_mu.unlock(); }
struct AtforkGuard {
  AtforkGuard() { ::pthread_atfork(&LockBeforeFork, &UnlockAfterFork, &UnlockAfterFork); }
};
AtforkGuard g_atfork_guard;

std::deque<TraceSpan>& SpansLocked() {
  if (g_spans == nullptr) {
    g_spans = new std::deque<TraceSpan>();
  }
  return *g_spans;
}

void AppendJsonString(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char esc[8];
          std::snprintf(esc, sizeof(esc), "\\u%04x", static_cast<unsigned char>(c));
          out += esc;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Record(uint64_t trace_id, std::string_view name, uint64_t start_ns, uint64_t end_ns,
                    std::string_view detail) {
  if (trace_id == 0 || !g_enabled.load(std::memory_order_relaxed)) {
    return;
  }
  TraceSpan span;
  span.trace_id = trace_id;
  span.start_ns = start_ns;
  span.end_ns = end_ns;
  span.name.assign(name);
  span.detail.assign(detail);
  std::lock_guard<std::mutex> lock(g_mu);
  auto& spans = SpansLocked();
  if (spans.size() >= kMaxSpans) {
    spans.pop_front();
  }
  spans.push_back(std::move(span));
}

void Tracer::Event(uint64_t trace_id, std::string_view name, std::string_view detail) {
  uint64_t now = MonotonicNanos();
  Record(trace_id, name, now, now, detail);
}

std::vector<TraceSpan> Tracer::SpansForTrace(uint64_t trace_id) const {
  std::vector<TraceSpan> out;
  std::lock_guard<std::mutex> lock(g_mu);
  if (g_spans == nullptr) return out;
  for (const TraceSpan& span : *g_spans) {
    if (span.trace_id == trace_id) out.push_back(span);
  }
  return out;
}

std::vector<TraceSpan> Tracer::AllSpans() const {
  std::lock_guard<std::mutex> lock(g_mu);
  if (g_spans == nullptr) return {};
  return std::vector<TraceSpan>(g_spans->begin(), g_spans->end());
}

std::string Tracer::RenderJson() const {
  std::vector<TraceSpan> spans = AllSpans();
  std::string out = "{\"spans\":[";
  bool first = true;
  for (const TraceSpan& span : spans) {
    if (!first) out += ',';
    first = false;
    out += "{\"trace_id\":" + std::to_string(span.trace_id);
    out += ",\"name\":";
    AppendJsonString(out, span.name);
    out += ",\"start_ns\":" + std::to_string(span.start_ns);
    out += ",\"end_ns\":" + std::to_string(span.end_ns);
    if (!span.detail.empty()) {
      out += ",\"detail\":";
      AppendJsonString(out, span.detail);
    }
    out += '}';
  }
  out += "]}\n";
  return out;
}

Status Tracer::WriteJsonFile(const std::string& path) const {
  std::string body = RenderJson();
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return ErrnoError("open " + path + " (trace dump)");
  }
  UniqueFd guard(fd);
  return WriteExportToFd(fd, body);
}

void Tracer::set_enabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool Tracer::enabled() const { return g_enabled.load(std::memory_order_relaxed); }

void Tracer::ResetForTest() {
  std::lock_guard<std::mutex> lock(g_mu);
  if (g_spans != nullptr) g_spans->clear();
}

}  // namespace obs
}  // namespace forklift
