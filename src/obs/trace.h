// forklift/obs: span-based tracing keyed by protocol-v2 request ids.
//
// Every spawn routed through SpawnService allocates one NextRequestId() and
// threads it down the stack: the service records the submit and per-route
// spans, the pipelined client stamps the wire send under the same id (the
// id IS the frame's request_id), the sharded pool stamps which shard the
// request was dispatched to, and the ProcessHandle stamps the observed exit.
// One trace dump therefore reconstructs a spawn's whole lifecycle —
// submit → route attempts/fallthroughs → wire encode → shard dispatch →
// exec-confirmed → exit-observed — from a single id.
//
// The tracer is client-side state: server/zygote processes never record
// spans (their side of the story is the metrics arena). Storage is a bounded
// in-memory ring; recording is mutex-guarded but allocation-light, and the
// enabled flag is one relaxed atomic so disabled tracing costs a load.
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"

namespace forklift {
namespace obs {

struct TraceSpan {
  uint64_t trace_id = 0;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;  // == start_ns for point events
  std::string name;
  std::string detail;
};

class Tracer {
 public:
  static Tracer& Global();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Records a completed span [start_ns, end_ns]. Spans with trace_id == 0
  // are dropped — an unrouted spawn has nothing to correlate.
  void Record(uint64_t trace_id, std::string_view name, uint64_t start_ns, uint64_t end_ns,
              std::string_view detail = {});

  // Records a point event stamped now.
  void Event(uint64_t trace_id, std::string_view name, std::string_view detail = {});

  // Spans recorded for one trace id, in recording order.
  std::vector<TraceSpan> SpansForTrace(uint64_t trace_id) const;

  // Every retained span, oldest first.
  std::vector<TraceSpan> AllSpans() const;

  // {"spans":[...]} — every retained span as JSON.
  std::string RenderJson() const;

  // Renders and writes the JSON dump to `path` (truncating), through the
  // fault-gated export write path.
  Status WriteJsonFile(const std::string& path) const;

  void set_enabled(bool enabled);
  bool enabled() const;

  // Drops every retained span (the enabled flag is untouched).
  void ResetForTest();

 private:
  Tracer() = default;
};

}  // namespace obs
}  // namespace forklift

#endif  // SRC_OBS_TRACE_H_
