#include "src/procsim/address_space.h"

#include <algorithm>

namespace forklift::procsim {

AddressSpace::AddressSpace(PhysicalMemory* pm, Asid asid)
    : pm_(pm), asid_(asid), pt_(std::make_unique<PageTable>(pm)) {}

Status AddressSpace::MapSharedRegion(Vaddr start, uint64_t bytes, bool writable,
                                     std::string name, PageSize page_size) {
  FORKLIFT_RETURN_IF_ERROR(MapRegion(start, bytes, writable, std::move(name), page_size));
  for (auto& vma : vmas_) {
    if (vma.start == start) {
      vma.shared = true;
      vma.backing = std::make_shared<SharedBacking>(pm_);
      break;
    }
  }
  return Status::Ok();
}

Status AddressSpace::MapRegion(Vaddr start, uint64_t bytes, bool writable, std::string name,
                               PageSize page_size) {
  uint64_t page = BytesOf(page_size);
  if ((start & (page - 1)) != 0) {
    return LogicalError("MapRegion: start not aligned to page size");
  }
  if (bytes == 0) {
    return LogicalError("MapRegion: zero-length region");
  }
  uint64_t end = start + ((bytes + page - 1) & ~(page - 1));
  for (const auto& vma : vmas_) {
    if (start < vma.end && vma.start < end) {
      return LogicalError("MapRegion: overlaps VMA '" + vma.name + "'");
    }
  }
  Vma vma;
  vma.start = start;
  vma.end = end;
  vma.writable = writable;
  vma.page_size = page_size;
  vma.name = std::move(name);
  vmas_.push_back(std::move(vma));
  std::sort(vmas_.begin(), vmas_.end(),
            [](const Vma& a, const Vma& b) { return a.start < b.start; });
  return Status::Ok();
}

Status AddressSpace::UnmapRegion(Vaddr start) {
  for (auto it = vmas_.begin(); it != vmas_.end(); ++it) {
    if (it->start == start) {
      uint64_t page = BytesOf(it->page_size);
      for (Vaddr va = it->start; va < it->end; va += page) {
        if (pt_->Lookup(va).pte != nullptr) {
          FORKLIFT_RETURN_IF_ERROR(pt_->Unmap(va));
        }
      }
      vmas_.erase(it);
      return Status::Ok();
    }
  }
  return LogicalError("UnmapRegion: no VMA at given start");
}

const Vma* AddressSpace::FindVma(Vaddr va) const {
  for (const auto& vma : vmas_) {
    if (vma.Contains(va)) {
      return &vma;
    }
  }
  return nullptr;
}

Result<PteRef> AddressSpace::FaultIn(Vaddr va, const Vma& vma, SimClock* clock) {
  if (clock != nullptr) {
    clock->Charge(CostKind::kFaultTrap);
  }
  Vaddr base = va & ~(BytesOf(vma.page_size) - 1);
  uint16_t flags = static_cast<uint16_t>(kPteUser | (vma.writable ? kPteWritable : 0));

  FrameId frame = kNoFrame;
  if (vma.shared) {
    // Shared fault: every mapper of this region must see the same frame, so
    // resolve through the backing object ("the page cache").
    flags |= kPteShared;
    uint64_t index = (base - vma.start) / BytesOf(vma.page_size);
    auto it = vma.backing->frames.find(index);
    if (it != vma.backing->frames.end()) {
      frame = it->second;
      FORKLIFT_RETURN_IF_ERROR(pm_->AddRef(frame));
    } else {
      if (clock != nullptr) {
        clock->Charge(CostKind::kFrameZero,
                      vma.page_size == PageSize::k2M ? kPageSize2M / kPageSize4K : 1);
      }
      FORKLIFT_ASSIGN_OR_RETURN(frame, pm_->Allocate());  // backing's reference
      vma.backing->frames[index] = frame;
      FORKLIFT_RETURN_IF_ERROR(pm_->AddRef(frame));  // this mapping's reference
    }
  } else {
    // Demand-zero fault: a fresh private frame.
    if (clock != nullptr) {
      clock->Charge(CostKind::kFrameZero,
                    vma.page_size == PageSize::k2M ? kPageSize2M / kPageSize4K : 1);
    }
    FORKLIFT_ASSIGN_OR_RETURN(frame, pm_->Allocate());
  }

  FORKLIFT_RETURN_IF_ERROR(pt_->Map(base, frame, flags, vma.page_size));
  ++demand_faults_;
  PteRef ref = pt_->Lookup(va);
  if (ref.pte == nullptr) {
    return LogicalError("FaultIn: mapping vanished");
  }
  return ref;
}

Result<uint64_t> AddressSpace::Read(Vaddr va, SimClock* clock) {
  const Vma* vma = FindVma(va);
  if (vma == nullptr) {
    return Err(Error(EFAULT, "procsim segfault: read of unmapped va " + std::to_string(va)));
  }
  PteRef ref = pt_->Lookup(va);
  if (ref.pte == nullptr) {
    FORKLIFT_ASSIGN_OR_RETURN(ref, FaultIn(va, *vma, clock));
  }
  ref.pte->flags |= kPteAccessed;
  return pm_->Read(ref.pte->frame);
}

Status AddressSpace::Write(Vaddr va, uint64_t value, SimClock* clock, TlbDomain* tlbs,
                           size_t cpu) {
  const Vma* vma = FindVma(va);
  if (vma == nullptr) {
    return Err(Error(EFAULT, "procsim segfault: write to unmapped va " + std::to_string(va)));
  }
  if (!vma->writable) {
    return Err(Error(EFAULT, "procsim segfault: write to read-only VMA '" + vma->name + "'"));
  }
  PteRef ref = pt_->Lookup(va);
  if (ref.pte == nullptr) {
    FORKLIFT_ASSIGN_OR_RETURN(ref, FaultIn(va, *vma, clock));
  }

  if (!ref.pte->writable()) {
    if (!ref.pte->cow()) {
      return LogicalError("procsim: write-protected non-COW page in writable VMA");
    }
    // COW break.
    if (clock != nullptr) {
      clock->Charge(CostKind::kFaultTrap);
    }
    FORKLIFT_ASSIGN_OR_RETURN(uint32_t refs, pm_->RefCount(ref.pte->frame));
    if (refs > 1) {
      // Shared: copy the frame, drop our reference to the original.
      if (clock != nullptr) {
        clock->Charge(ref.size == PageSize::k2M ? CostKind::kFrameCopy2M
                                                : CostKind::kFrameCopy4K);
      }
      FORKLIFT_ASSIGN_OR_RETURN(FrameId copy, pm_->CopyFrame(ref.pte->frame));
      FORKLIFT_RETURN_IF_ERROR(pm_->Release(ref.pte->frame));
      ref.pte->frame = copy;
    }
    // Sole owner now (either we copied, or everyone else already did):
    // restore write permission.
    ref.pte->flags = static_cast<uint16_t>((ref.pte->flags | kPteWritable) & ~kPteCow);
    ++cow_breaks_;
    // The stale read-only translation must leave every TLB running this AS.
    if (tlbs != nullptr) {
      tlbs->Shootdown(asid_, cpu, clock);
    }
  }

  ref.pte->flags |= static_cast<uint16_t>(kPteDirty | kPteAccessed);
  return pm_->Write(ref.pte->frame, value);
}

Status AddressSpace::TouchRange(Vaddr start, uint64_t bytes, bool write, SimClock* clock,
                                TlbDomain* tlbs, size_t cpu) {
  const Vma* vma = FindVma(start);
  if (vma == nullptr) {
    return Err(Error(EFAULT, "procsim segfault: touch of unmapped range"));
  }
  uint64_t page = BytesOf(vma->page_size);
  for (Vaddr va = start; va < start + bytes; va += page) {
    if (write) {
      FORKLIFT_RETURN_IF_ERROR(Write(va, va, clock, tlbs, cpu));
    } else {
      FORKLIFT_ASSIGN_OR_RETURN(uint64_t ignored, Read(va, clock));
      (void)ignored;
    }
  }
  return Status::Ok();
}

Result<std::unique_ptr<AddressSpace>> AddressSpace::CloneCow(Asid new_asid, SimClock* clock,
                                                             TlbDomain* tlbs,
                                                             size_t initiating_cpu) {
  auto child = std::make_unique<AddressSpace>(pm_, new_asid);
  child->vmas_ = vmas_;
  if (clock != nullptr) {
    clock->Charge(CostKind::kVmaCopy, vmas_.size());
  }
  FORKLIFT_ASSIGN_OR_RETURN(child->pt_, pt_->CloneCow(clock));
  // The parent's writable translations were just downgraded; CPUs running the
  // parent must not keep stale writable entries.
  if (tlbs != nullptr) {
    tlbs->Shootdown(asid_, initiating_cpu, clock);
  }
  return child;
}

uint64_t AddressSpace::CowPromiseFrames() {
  uint64_t promise = 0;
  pt_->ForEach([&promise](Vaddr, Pte& pte, PageSize size) {
    if (pte.shared()) {
      return;  // MAP_SHARED pages are never copied: no promise
    }
    if (pte.writable() || pte.cow()) {
      promise += size == PageSize::k2M ? kPageSize2M / kPageSize4K : 1;
    }
  });
  return promise;
}

uint64_t AddressSpace::vma_bytes() const {
  uint64_t total = 0;
  for (const auto& vma : vmas_) {
    total += vma.bytes();
  }
  return total;
}

}  // namespace forklift::procsim
