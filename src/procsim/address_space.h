// forklift/procsim: address spaces — VMAs + page table + demand paging + COW.
//
// This is where the paper's §5 mechanics live. CloneCow() is fork's eager
// work (VMA list copy + full page-table replication + write-protect);
// Write()'s COW path is fork's deferred work (trap, frame copy, remap,
// invalidate). Both are charged to a SimClock so experiments can attribute
// simulated time to each mechanism separately.
#ifndef SRC_PROCSIM_ADDRESS_SPACE_H_
#define SRC_PROCSIM_ADDRESS_SPACE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/procsim/cost_model.h"
#include "src/procsim/page_table.h"
#include "src/procsim/phys_mem.h"
#include "src/procsim/tlb.h"

namespace forklift::procsim {

// The "page cache" object behind a MAP_SHARED region: page-index → frame.
// Shared across every address space mapping the region (the shared_ptr is
// copied by fork and by explicit grants); holds one reference per frame,
// released on destruction.
struct SharedBacking {
  PhysicalMemory* pm = nullptr;
  std::map<uint64_t, FrameId> frames;

  explicit SharedBacking(PhysicalMemory* pm_in) : pm(pm_in) {}
  ~SharedBacking() {
    for (const auto& [index, frame] : frames) {
      (void)index;
      (void)pm->Release(frame);
    }
  }
  SharedBacking(const SharedBacking&) = delete;
  SharedBacking& operator=(const SharedBacking&) = delete;
};

struct Vma {
  Vaddr start = 0;
  Vaddr end = 0;  // exclusive
  bool writable = false;
  // MAP_SHARED semantics: fork copies the PTEs (it must — that is why fork
  // stays O(pages) even for file-backed text) but the frames are genuinely
  // shared, never COW'd, and writes are mutually visible. Most of a real
  // process image (libc, the executable) is this kind of mapping.
  bool shared = false;
  std::shared_ptr<SharedBacking> backing;  // set iff shared
  PageSize page_size = PageSize::k4K;
  std::string name;

  uint64_t bytes() const { return end - start; }
  bool Contains(Vaddr va) const { return va >= start && va < end; }
};

// Conventional layout constants for synthetic processes.
inline constexpr Vaddr kTextBase = 0x0000'0000'0040'0000;
inline constexpr Vaddr kHeapBase = 0x0000'4000'0000'0000;
inline constexpr Vaddr kStackTop = 0x0000'7fff'ffff'f000;

class AddressSpace {
 public:
  AddressSpace(PhysicalMemory* pm, Asid asid);
  ~AddressSpace() = default;

  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  Asid asid() const { return asid_; }

  // Adds a demand-paged region. Must not overlap an existing VMA; start must
  // be aligned to the region's page size.
  Status MapRegion(Vaddr start, uint64_t bytes, bool writable, std::string name,
                   PageSize page_size = PageSize::k4K);

  // As MapRegion but with MAP_SHARED semantics (see Vma::shared).
  Status MapSharedRegion(Vaddr start, uint64_t bytes, bool writable, std::string name,
                         PageSize page_size = PageSize::k4K);

  // Removes the VMA starting at `start` and releases its mapped frames.
  Status UnmapRegion(Vaddr start);

  const std::vector<Vma>& vmas() const { return vmas_; }
  const Vma* FindVma(Vaddr va) const;

  // One simulated load. Demand-faults an unmapped page (zero frame).
  // Returns the page's content token.
  Result<uint64_t> Read(Vaddr va, SimClock* clock);

  // One simulated store of `value`. Demand-faults and breaks COW as needed;
  // a COW break on a shared frame copies it and, when `tlbs` is given,
  // shoots down the page on other CPUs running this address space.
  Status Write(Vaddr va, uint64_t value, SimClock* clock, TlbDomain* tlbs = nullptr,
               size_t cpu = 0);

  // Touches every page in [start, start+bytes) (stride = page size).
  Status TouchRange(Vaddr start, uint64_t bytes, bool write, SimClock* clock,
                    TlbDomain* tlbs = nullptr, size_t cpu = 0);

  // fork(): clone VMAs and page table with COW semantics. The parent's own
  // mappings are downgraded (write-protected) as a side effect, and when
  // `tlbs` is given the parent's stale writable translations are shot down —
  // the multiprocessor cost the paper highlights. The child gets `new_asid`.
  Result<std::unique_ptr<AddressSpace>> CloneCow(Asid new_asid, SimClock* clock,
                                                 TlbDomain* tlbs = nullptr,
                                                 size_t initiating_cpu = 0);

  // Statistics.
  uint64_t resident_pages() const { return pt_->present_pages(); }
  uint64_t table_pages() const { return pt_->table_pages(); }
  uint64_t mapped_bytes() const { return pt_->mapped_bytes(); }
  uint64_t vma_bytes() const;
  uint64_t cow_breaks() const { return cow_breaks_; }
  uint64_t demand_faults() const { return demand_faults_; }
  // Frames a fork of this space PROMISES beyond what it allocates: one per
  // resident private page that is (or would become) COW — each may require a
  // copy later. 2 MiB pages count as 512 frames. This is the §5 commit
  // charge a strict accountant levies at fork time.
  uint64_t CowPromiseFrames();
  PageTable& page_table() { return *pt_; }

 private:
  Result<PteRef> FaultIn(Vaddr va, const Vma& vma, SimClock* clock);

  PhysicalMemory* pm_;
  Asid asid_;
  std::vector<Vma> vmas_;
  std::unique_ptr<PageTable> pt_;
  uint64_t cow_breaks_ = 0;
  uint64_t demand_faults_ = 0;
};

}  // namespace forklift::procsim

#endif  // SRC_PROCSIM_ADDRESS_SPACE_H_
