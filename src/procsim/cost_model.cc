#include "src/procsim/cost_model.h"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace forklift::procsim {

const char* CostKindName(CostKind kind) {
  switch (kind) {
    case CostKind::kSyscallEntry:
      return "syscall_entry";
    case CostKind::kTaskCreate:
      return "task_create";
    case CostKind::kVmaCopy:
      return "vma_copy";
    case CostKind::kPtePageAlloc:
      return "pte_page_alloc";
    case CostKind::kPteCopy:
      return "pte_copy";
    case CostKind::kFrameZero:
      return "frame_zero";
    case CostKind::kFrameCopy4K:
      return "frame_copy_4k";
    case CostKind::kFrameCopy2M:
      return "frame_copy_2m";
    case CostKind::kFaultTrap:
      return "fault_trap";
    case CostKind::kTlbFlushLocal:
      return "tlb_flush_local";
    case CostKind::kTlbShootdownIpi:
      return "tlb_shootdown_ipi";
    case CostKind::kFdClone:
      return "fd_clone";
    case CostKind::kExecLoad:
      return "exec_load";
    case CostKind::kSchedWake:
      return "sched_wake";
    case CostKind::kWireByte:
      return "wire_byte";
    case CostKind::kCount:
      break;
  }
  return "?";
}

CostModel CostModel::Default() {
  CostModel m;
  m.ns.fill(0);
  m.set(CostKind::kSyscallEntry, 300);
  m.set(CostKind::kTaskCreate, 15000);
  m.set(CostKind::kVmaCopy, 150);
  m.set(CostKind::kPtePageAlloc, 250);
  m.set(CostKind::kPteCopy, 6);       // two cache-line touches amortized
  m.set(CostKind::kFrameZero, 150);
  m.set(CostKind::kFrameCopy4K, 220); // ~4KiB at ~20GB/s
  m.set(CostKind::kFrameCopy2M, 90000);
  m.set(CostKind::kFaultTrap, 500);
  m.set(CostKind::kTlbFlushLocal, 400);
  m.set(CostKind::kTlbShootdownIpi, 1200);
  m.set(CostKind::kFdClone, 60);
  m.set(CostKind::kExecLoad, 60000);  // ELF mapping, stack/arg setup
  m.set(CostKind::kSchedWake, 1500);
  m.set(CostKind::kWireByte, 1);
  return m;
}

std::string SimClock::Breakdown() const {
  struct Row {
    CostKind kind;
    uint64_t ns;
    uint64_t ops;
  };
  std::vector<Row> rows;
  for (size_t i = 0; i < static_cast<size_t>(CostKind::kCount); ++i) {
    if (by_kind_[i] > 0) {
      rows.push_back(Row{static_cast<CostKind>(i), by_kind_[i], ops_[i]});
    }
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) { return a.ns > b.ns; });
  std::string out;
  char buf[128];
  for (const auto& r : rows) {
    std::snprintf(buf, sizeof(buf), "  %-18s %12llu ns  (%llu ops)\n", CostKindName(r.kind),
                  static_cast<unsigned long long>(r.ns), static_cast<unsigned long long>(r.ops));
    out += buf;
  }
  if (!out.empty()) {
    out.pop_back();
  }
  return out;
}

}  // namespace forklift::procsim
