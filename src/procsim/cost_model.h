// forklift/procsim: the simulated-time cost model.
//
// The paper (§4-§5) attributes fork's slowness to work proportional to the
// parent's address space — copying VMAs and page tables eagerly, then paying
// copy-on-write faults lazily — while spawn-style creation does work
// proportional to the *child image*. We cannot instrument the Linux kernel in
// this environment, so procsim charges every simulated kernel operation
// against this table of per-operation costs (defaults are order-of-magnitude
// calibrations from public microarchitectural data: a PTE copy is a couple of
// cache lines, an IPI ~1us, a 4KiB copy ~200ns at ~20GB/s, a fault trap
// ~500ns round trip). Absolute numbers are not the claim — the *shape* of the
// curves is, and that is structural: it falls out of how many of each
// operation the paging data structures force.
#ifndef SRC_PROCSIM_COST_MODEL_H_
#define SRC_PROCSIM_COST_MODEL_H_

#include <array>
#include <cstdint>
#include <string>

namespace forklift::procsim {

enum class CostKind : int {
  kSyscallEntry = 0,   // trap + return
  kTaskCreate,         // task struct, kernel stack, scheduler insertion
  kVmaCopy,            // one VMA record cloned
  kPtePageAlloc,       // one page-table page allocated + linked
  kPteCopy,            // one present PTE copied + write-protected
  kFrameZero,          // zero-fill one 4KiB frame
  kFrameCopy4K,        // copy one 4KiB frame (COW break)
  kFrameCopy2M,        // copy one 2MiB frame
  kFaultTrap,          // page-fault entry/exit
  kTlbFlushLocal,      // full local TLB flush
  kTlbShootdownIpi,    // one IPI to one remote CPU
  kFdClone,            // one descriptor duplicated into a child table
  kExecLoad,           // image setup: new MM, load segments metadata
  kSchedWake,          // wake/enqueue a task
  kWireByte,           // one byte marshalled over a fork-server-style channel
  kCount,
};

const char* CostKindName(CostKind kind);

struct CostModel {
  // Simulated nanoseconds per operation.
  std::array<uint64_t, static_cast<size_t>(CostKind::kCount)> ns;

  // Defaults calibrated against commodity x86-64 (see file comment).
  static CostModel Default();

  uint64_t of(CostKind kind) const { return ns[static_cast<size_t>(kind)]; }
  void set(CostKind kind, uint64_t v) { ns[static_cast<size_t>(kind)] = v; }
};

// Accumulates simulated time, attributed per CostKind. Deterministic: equal
// operation sequences produce equal clocks.
class SimClock {
 public:
  explicit SimClock(CostModel model = CostModel::Default()) : model_(model) {}

  void Charge(CostKind kind, uint64_t count = 1) {
    uint64_t ns = model_.of(kind) * count;
    total_ns_ += ns;
    by_kind_[static_cast<size_t>(kind)] += ns;
    ops_[static_cast<size_t>(kind)] += count;
  }

  uint64_t now_ns() const { return total_ns_; }
  uint64_t ns_for(CostKind kind) const { return by_kind_[static_cast<size_t>(kind)]; }
  uint64_t ops_for(CostKind kind) const { return ops_[static_cast<size_t>(kind)]; }
  const CostModel& model() const { return model_; }

  // Per-kind breakdown, largest first, for reports.
  std::string Breakdown() const;

  void Reset() {
    total_ns_ = 0;
    by_kind_.fill(0);
    ops_.fill(0);
  }

 private:
  CostModel model_;
  uint64_t total_ns_ = 0;
  std::array<uint64_t, static_cast<size_t>(CostKind::kCount)> by_kind_{};
  std::array<uint64_t, static_cast<size_t>(CostKind::kCount)> ops_{};
};

}  // namespace forklift::procsim

#endif  // SRC_PROCSIM_COST_MODEL_H_
