#include "src/procsim/cross_process.h"

#include <utility>

namespace forklift::procsim {

Result<ProcessBuilder> ProcessBuilder::Create(SimKernel* kernel, Pid parent) {
  FORKLIFT_ASSIGN_OR_RETURN(Pid pid, kernel->CreateEmbryo(parent));
  return ProcessBuilder(kernel, parent, pid);
}

Status ProcessBuilder::LoadImage(const ProgramImage& image) {
  FORKLIFT_ASSIGN_OR_RETURN(Process * proc, kernel_->Find(pid_));
  if (proc->state != Process::State::kEmbryo) {
    return LogicalError("ProcessBuilder: process already started");
  }
  kernel_->clock().Charge(CostKind::kExecLoad);
  auto& as = *proc->as;
  FORKLIFT_RETURN_IF_ERROR(
      as.MapRegion(kTextBase, image.text_bytes, /*writable=*/false, "text", image.page_size));
  Vaddr data_base = kTextBase + (64ull << 30);
  FORKLIFT_RETURN_IF_ERROR(
      as.MapRegion(data_base, image.data_bytes, /*writable=*/true, "data", image.page_size));
  Vaddr stack_base = kStackTop - ((image.stack_bytes + kPageSize4K - 1) & ~(kPageSize4K - 1));
  FORKLIFT_RETURN_IF_ERROR(as.MapRegion(stack_base, image.stack_bytes, true, "stack"));
  proc->image_name = image.name;
  image_loaded_ = true;
  return Status::Ok();
}

Result<Vaddr> ProcessBuilder::MapAnon(uint64_t bytes, std::string name, PageSize page_size) {
  FORKLIFT_ASSIGN_OR_RETURN(Process * proc, kernel_->Find(pid_));
  if (proc->state != Process::State::kEmbryo) {
    return LogicalError("ProcessBuilder: process already started");
  }
  return kernel_->MapAnon(pid_, bytes, std::move(name), page_size);
}

Status ProcessBuilder::ShareRegion(Vaddr parent_start, bool writable) {
  FORKLIFT_ASSIGN_OR_RETURN(Process * parent, kernel_->Find(parent_));
  FORKLIFT_ASSIGN_OR_RETURN(Process * child, kernel_->Find(pid_));
  if (child->state != Process::State::kEmbryo) {
    return LogicalError("ProcessBuilder: process already started");
  }
  const Vma* vma = nullptr;
  for (const auto& v : parent->as->vmas()) {
    if (v.start == parent_start) {
      vma = &v;
      break;
    }
  }
  if (vma == nullptr) {
    return LogicalError("ProcessBuilder::ShareRegion: parent has no VMA at that address");
  }
  if (writable && !vma->writable) {
    return LogicalError("ProcessBuilder::ShareRegion: cannot grant write to a read-only region");
  }
  kernel_->clock().Charge(CostKind::kVmaCopy);
  FORKLIFT_RETURN_IF_ERROR(child->as->MapSharedRegion(vma->start, vma->bytes(), writable,
                                                      vma->name, vma->page_size));
  std::shared_ptr<SharedBacking> backing;
  for (const auto& v : child->as->vmas()) {
    if (v.start == vma->start) {
      backing = v.backing;
      break;
    }
  }

  // Resident parent pages become shared mappings in the child: refcounted
  // frames, genuinely the same memory (writes are mutually visible when
  // writable — IPC-grade sharing, not COW), and marked kPteShared so a later
  // fork of the child preserves the sharing instead of COW-downgrading it.
  uint64_t page = BytesOf(vma->page_size);
  auto& pm = kernel_->memory();
  for (Vaddr va = vma->start; va < vma->end; va += page) {
    PteRef ref = parent->as->page_table().Lookup(va);
    if (ref.pte == nullptr) {
      continue;  // not resident: the child will demand-fault via the backing
    }
    FORKLIFT_RETURN_IF_ERROR(pm.AddRef(ref.pte->frame));  // backing's reference
    backing->frames[(va - vma->start) / page] = ref.pte->frame;
    FORKLIFT_RETURN_IF_ERROR(pm.AddRef(ref.pte->frame));  // the mapping's reference
    uint16_t flags =
        static_cast<uint16_t>(kPteUser | kPteShared | (writable ? kPteWritable : 0));
    FORKLIFT_RETURN_IF_ERROR(
        child->as->page_table().Map(va, ref.pte->frame, flags, vma->page_size));
    kernel_->clock().Charge(CostKind::kPteCopy);
  }
  return Status::Ok();
}

Status ProcessBuilder::GrantFd(Fd fd) {
  FORKLIFT_ASSIGN_OR_RETURN(Process * parent, kernel_->Find(parent_));
  FORKLIFT_ASSIGN_OR_RETURN(Process * child, kernel_->Find(pid_));
  if (child->state != Process::State::kEmbryo) {
    return LogicalError("ProcessBuilder: process already started");
  }
  auto it = parent->fds.find(fd);
  if (it == parent->fds.end()) {
    return Err(Error(EBADF, "ProcessBuilder::GrantFd: parent has no such fd"));
  }
  child->fds[fd] = it->second;
  if (child->next_fd <= fd) {
    child->next_fd = fd + 1;
  }
  kernel_->clock().Charge(CostKind::kFdClone);
  return Status::Ok();
}

Status ProcessBuilder::Start() && {
  if (!image_loaded_) {
    return LogicalError("ProcessBuilder::Start: no image loaded");
  }
  return kernel_->StartEmbryo(pid_);
}

Status ProcessBuilder::Abort() && {
  FORKLIFT_ASSIGN_OR_RETURN(Process * child, kernel_->Find(pid_));
  if (child->state != Process::State::kEmbryo) {
    return LogicalError("ProcessBuilder::Abort: process already started");
  }
  // Tear down as an exit+reap so pid accounting stays consistent.
  child->state = Process::State::kRunning;
  FORKLIFT_RETURN_IF_ERROR(kernel_->Exit(pid_, 0, /*flush_streams=*/false));
  FORKLIFT_ASSIGN_OR_RETURN(int code, kernel_->Wait(parent_, pid_));
  (void)code;
  return Status::Ok();
}

}  // namespace forklift::procsim
