// forklift/procsim: cross-process operations — the paper's preferred design.
//
// §6 of HotOS'19 ends by advocating neither fork nor a monolithic spawn but
// *cross-process APIs* (Zircon, L4, Barrelfish, Windows NT internals): a
// child is created EMPTY, and the parent — or any suitably-privileged broker —
// explicitly constructs it piece by piece (map memory here, grant this
// descriptor there), then starts it. Nothing is inherited ambiently; every
// capability transfer is a visible, chargeable operation.
//
// ProcessBuilder implements that model over SimKernel. It exists so the
// repository can measure the paper's endgame against fork and spawn
// (bench/xproc_builder) and test its security property: an embryo given
// nothing HAS nothing.
#ifndef SRC_PROCSIM_CROSS_PROCESS_H_
#define SRC_PROCSIM_CROSS_PROCESS_H_

#include <string>

#include "src/common/result.h"
#include "src/procsim/kernel.h"

namespace forklift::procsim {

class ProcessBuilder {
 public:
  // Creates an embryo child of `parent`: a pid and an empty address space,
  // not yet runnable.
  static Result<ProcessBuilder> Create(SimKernel* kernel, Pid parent);

  Pid pid() const { return pid_; }

  // Maps the image's text/data/stack into the embryo (the loader's job, done
  // by the parent). Without this, Start() fails.
  Status LoadImage(const ProgramImage& image);

  // Maps an additional anonymous region into the embryo at the builder's
  // choice of address; returns the address.
  Result<Vaddr> MapAnon(uint64_t bytes, std::string name,
                        PageSize page_size = PageSize::k4K);

  // Shares one of the PARENT's regions with the embryo, read-only or
  // read-write, at the same virtual address: the explicit alternative to
  // fork's copy-everything. Pages currently resident in the parent become
  // shared mappings (refcounted frames, no COW unless read-only requested).
  Status ShareRegion(Vaddr parent_start, bool writable);

  // Grants one parent descriptor to the embryo (at the same number).
  Status GrantFd(Fd fd);

  // Makes the embryo runnable. Consumes the builder.
  Status Start() &&;

  // Abandons the embryo (frees everything). Consumed builders are inert.
  Status Abort() &&;

 private:
  ProcessBuilder(SimKernel* kernel, Pid parent, Pid pid)
      : kernel_(kernel), parent_(parent), pid_(pid) {}

  SimKernel* kernel_ = nullptr;
  Pid parent_ = 0;
  Pid pid_ = 0;
  bool image_loaded_ = false;
};

}  // namespace forklift::procsim

#endif  // SRC_PROCSIM_CROSS_PROCESS_H_
