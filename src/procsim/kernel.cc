#include "src/procsim/kernel.h"

#include <cerrno>
#include <cstdio>
#include <utility>

#include "src/procsim/trace.h"

namespace forklift::procsim {

SimKernel::SimKernel() : SimKernel(Config{}) {}

SimKernel::SimKernel(Config config)
    : pm_(config.phys_frames),
      tlbs_(config.cpus, config.tlb_entries),
      clock_(config.costs),
      commit_policy_(config.commit_policy) {}

Result<Process*> SimKernel::Find(Pid pid) {
  auto it = procs_.find(pid);
  if (it == procs_.end() || it->second->state == Process::State::kDead) {
    return Err(Error(ESRCH, "procsim: no such process " + std::to_string(pid)));
  }
  return it->second.get();
}

// User-initiated operations may only come from a process that can actually
// run: a vfork parent is suspended until its child execs or exits, and an
// embryo has not started. (Lifecycle calls check their own state rules.)
Result<Process*> SimKernel::FindRunnable(Pid pid) {
  FORKLIFT_ASSIGN_OR_RETURN(Process * proc, Find(pid));
  if (proc->state == Process::State::kBlockedVfork) {
    return Err(Error(EBUSY, "procsim: process " + std::to_string(pid) +
                                " is suspended in vfork"));
  }
  return proc;
}

void SimKernel::Trace(Pid pid, const char* op, std::string detail) {
  if (tracer_ != nullptr) {
    tracer_->Record(pid, op, std::move(detail), clock_.now_ns());
  }
}

size_t SimKernel::CpuOf(Pid pid) const {
  auto it = placement_.find(pid);
  return it == placement_.end() ? 0 : it->second;
}

Status SimKernel::SetRunningOn(Pid pid, size_t cpu) {
  FORKLIFT_ASSIGN_OR_RETURN(Process * proc, Find(pid));
  if (cpu >= tlbs_.num_cpus()) {
    return LogicalError("SetRunningOn: no such cpu");
  }
  placement_[pid] = cpu;
  tlbs_.SetActive(cpu, proc->as->asid());
  return Status::Ok();
}

Result<std::shared_ptr<AddressSpace>> SimKernel::BuildImageSpace(const ProgramImage& image,
                                                                 Asid asid) {
  auto as = std::make_shared<AddressSpace>(&pm_, asid);
  clock_.Charge(CostKind::kExecLoad);
  FORKLIFT_RETURN_IF_ERROR(
      as->MapRegion(kTextBase, image.text_bytes, /*writable=*/false, "text", image.page_size));
  Vaddr data_base = kTextBase + (64ull << 30);
  FORKLIFT_RETURN_IF_ERROR(
      as->MapRegion(data_base, image.data_bytes, /*writable=*/true, "data", image.page_size));
  Vaddr stack_base = kStackTop - ((image.stack_bytes + kPageSize4K - 1) & ~(kPageSize4K - 1));
  FORKLIFT_RETURN_IF_ERROR(
      as->MapRegion(stack_base, image.stack_bytes, /*writable=*/true, "stack"));
  // Startup touches: text is read, data is written, proportional to the
  // image's declared working set — this is why spawn cost tracks the CHILD
  // image instead of the parent's footprint.
  uint64_t touch = image.touched_at_start_bytes;
  uint64_t text_touch = std::min(touch / 2, image.text_bytes);
  uint64_t data_touch = std::min(touch - text_touch, image.data_bytes);
  FORKLIFT_RETURN_IF_ERROR(as->TouchRange(kTextBase, text_touch, /*write=*/false, &clock_));
  if (data_touch > 0) {
    FORKLIFT_RETURN_IF_ERROR(as->TouchRange(data_base, data_touch, /*write=*/true, &clock_));
  }
  return as;
}

Result<Pid> SimKernel::CreateInit(const ProgramImage& image) {
  Pid pid = next_pid_++;
  auto proc = std::make_unique<Process>();
  proc->pid = pid;
  proc->ppid = 0;
  proc->image_name = image.name;
  clock_.Charge(CostKind::kTaskCreate);
  FORKLIFT_ASSIGN_OR_RETURN(proc->as, BuildImageSpace(image, pid));
  proc->threads[Process::kMainTid] = SimThreadInfo{Process::kMainTid};
  procs_[pid] = std::move(proc);
  Trace(pid, "boot", "image=" + image.name);
  return pid;
}

Result<Pid> SimKernel::Fork(Pid caller, Tid caller_tid) {
  FORKLIFT_ASSIGN_OR_RETURN(Process * parent, Find(caller));
  if (parent->state != Process::State::kRunning) {
    return Err(Error(EBUSY, "procsim: fork from non-running process"));
  }
  if (parent->threads.count(caller_tid) == 0) {
    return LogicalError("procsim: fork from nonexistent thread");
  }
  clock_.Charge(CostKind::kSyscallEntry);

  // Strict commit accounting (§5): every private resident page the child
  // will share COW is a promised future frame. Refuse forks whose promises
  // physical memory could not honour — this is why a 2x-overcommitted Redis
  // cannot fork-snapshot under strict accounting even though the snapshot
  // would only ever copy a fraction of the pages.
  uint64_t promise = 0;
  if (commit_policy_ == CommitPolicy::kStrict) {
    promise = parent->as->CowPromiseFrames();
    if (promise > pm_.AvailableCommit()) {
      return Err(Error(ENOMEM, "procsim: fork refused under strict commit (" +
                                   std::to_string(promise) + " frames promised, " +
                                   std::to_string(pm_.AvailableCommit()) + " available)"));
    }
  }
  clock_.Charge(CostKind::kTaskCreate);

  Pid pid = next_pid_++;
  auto child = std::make_unique<Process>();
  child->pid = pid;
  child->ppid = caller;
  child->image_name = parent->image_name;
  if (promise > 0) {
    pm_.ChargeCommit(promise);
    child->commit_charge = promise;
  }

  // The expensive part: clone the whole address space COW (and shoot down the
  // parent's stale writable translations on every CPU running it).
  FORKLIFT_ASSIGN_OR_RETURN(
      std::unique_ptr<AddressSpace> as,
      parent->as->CloneCow(pid, &clock_, &tlbs_, CpuOf(caller)));
  child->as = std::move(as);

  // Descriptors: ALL of them, CLOEXEC or not — fork's ambient grant.
  child->fds = parent->fds;
  child->next_fd = parent->next_fd;
  clock_.Charge(CostKind::kFdClone, parent->fds.size());

  // Memory is copied wholesale: mutex state and stream buffers come along...
  child->mutexes = parent->mutexes;
  child->next_mutex = parent->next_mutex;
  child->streams = parent->streams;
  child->next_stream = parent->next_stream;
  child->next_map = parent->next_map;

  // ...but only the calling thread exists on the other side. This asymmetry
  // IS the paper's thread-safety hazard.
  child->threads[Process::kMainTid] = SimThreadInfo{Process::kMainTid};
  // Remap the held-by marker: if the caller held it, the child's main thread
  // holds it; if any OTHER thread held it, the holder is now a ghost.
  for (auto& [id, mu] : child->mutexes) {
    (void)id;
    if (mu.holder == caller_tid) {
      mu.holder = Process::kMainTid;
    }
  }

  clock_.Charge(CostKind::kSchedWake);
  procs_[pid] = std::move(child);
  Trace(caller, "fork", "child=" + std::to_string(pid));
  return pid;
}

Result<Pid> SimKernel::Vfork(Pid caller) {
  FORKLIFT_ASSIGN_OR_RETURN(Process * parent, Find(caller));
  if (parent->state != Process::State::kRunning) {
    return Err(Error(EBUSY, "procsim: vfork from non-running process"));
  }
  clock_.Charge(CostKind::kSyscallEntry);
  clock_.Charge(CostKind::kTaskCreate);

  Pid pid = next_pid_++;
  auto child = std::make_unique<Process>();
  child->pid = pid;
  child->ppid = caller;
  child->image_name = parent->image_name;
  child->as = parent->as;  // shared, not copied: the whole point of vfork
  child->shares_parent_as = true;
  child->fds = parent->fds;
  child->next_fd = parent->next_fd;
  clock_.Charge(CostKind::kFdClone, parent->fds.size());
  child->threads[Process::kMainTid] = SimThreadInfo{Process::kMainTid};

  parent->state = Process::State::kBlockedVfork;
  clock_.Charge(CostKind::kSchedWake);
  procs_[pid] = std::move(child);
  Trace(caller, "vfork", "child=" + std::to_string(pid));
  return pid;
}

Result<Pid> SimKernel::Spawn(Pid caller, const ProgramImage& image) {
  FORKLIFT_ASSIGN_OR_RETURN(Process * parent, Find(caller));
  if (parent->state != Process::State::kRunning) {
    return Err(Error(EBUSY, "procsim: spawn from non-running process"));
  }
  clock_.Charge(CostKind::kSyscallEntry);
  clock_.Charge(CostKind::kTaskCreate);

  Pid pid = next_pid_++;
  auto child = std::make_unique<Process>();
  child->pid = pid;
  child->ppid = caller;
  child->image_name = image.name;
  FORKLIFT_ASSIGN_OR_RETURN(child->as, BuildImageSpace(image, pid));

  // Only non-CLOEXEC descriptors cross — the explicit-grant model.
  for (const auto& [fd, entry] : parent->fds) {
    if (!entry.cloexec) {
      child->fds[fd] = entry;
      clock_.Charge(CostKind::kFdClone);
    }
  }
  child->next_fd = parent->next_fd;
  child->threads[Process::kMainTid] = SimThreadInfo{Process::kMainTid};
  clock_.Charge(CostKind::kSchedWake);
  procs_[pid] = std::move(child);
  return pid;
}

Result<Pid> SimKernel::CreateEmbryo(Pid parent) {
  FORKLIFT_ASSIGN_OR_RETURN(Process * creator, Find(parent));
  if (creator->state != Process::State::kRunning) {
    return Err(Error(EBUSY, "procsim: embryo creation from non-running process"));
  }
  clock_.Charge(CostKind::kSyscallEntry);
  clock_.Charge(CostKind::kTaskCreate);
  Pid pid = next_pid_++;
  auto child = std::make_unique<Process>();
  child->pid = pid;
  child->ppid = parent;
  child->state = Process::State::kEmbryo;
  child->image_name = "(embryo)";
  child->as = std::make_shared<AddressSpace>(&pm_, pid);
  child->threads[Process::kMainTid] = SimThreadInfo{Process::kMainTid};
  procs_[pid] = std::move(child);
  Trace(parent, "create_embryo", "child=" + std::to_string(pid));
  return pid;
}

Status SimKernel::StartEmbryo(Pid pid) {
  FORKLIFT_ASSIGN_OR_RETURN(Process * proc, Find(pid));
  if (proc->state != Process::State::kEmbryo) {
    return LogicalError("procsim: StartEmbryo on non-embryo process");
  }
  clock_.Charge(CostKind::kSyscallEntry);
  clock_.Charge(CostKind::kSchedWake);
  proc->state = Process::State::kRunning;
  Trace(pid, "start_embryo", "");
  return Status::Ok();
}

Status SimKernel::Exec(Pid pid, const ProgramImage& image) {
  FORKLIFT_ASSIGN_OR_RETURN(Process * proc, Find(pid));
  if (proc->state != Process::State::kRunning) {
    return Err(Error(EBUSY, "procsim: exec from non-running process"));
  }
  clock_.Charge(CostKind::kSyscallEntry);

  bool was_vfork_child = proc->shares_parent_as;
  FORKLIFT_ASSIGN_OR_RETURN(std::shared_ptr<AddressSpace> fresh,
                            BuildImageSpace(image, pid));
  proc->as = std::move(fresh);  // old AS released here (or returned to vfork parent)
  proc->shares_parent_as = false;
  if (proc->commit_charge > 0) {
    pm_.UnchargeCommit(proc->commit_charge);
    proc->commit_charge = 0;
  }
  proc->image_name = image.name;

  // exec discards user-space state: buffers unflushed (data loss — faithful),
  // extra threads, mutexes.
  proc->streams.clear();
  proc->mutexes.clear();
  proc->threads.clear();
  proc->threads[Process::kMainTid] = SimThreadInfo{Process::kMainTid};

  // CLOEXEC descriptors drop here.
  for (auto it = proc->fds.begin(); it != proc->fds.end();) {
    if (it->second.cloexec) {
      it = proc->fds.erase(it);
    } else {
      ++it;
    }
  }

  if (was_vfork_child) {
    FORKLIFT_ASSIGN_OR_RETURN(Process * parent, Find(proc->ppid));
    if (parent->state == Process::State::kBlockedVfork) {
      parent->state = Process::State::kRunning;
      clock_.Charge(CostKind::kSchedWake);
    }
  }
  Trace(pid, "exec", "image=" + image.name);
  return Status::Ok();
}

Status SimKernel::ReleaseProcessMemory(Process& proc) {
  if (proc.commit_charge > 0) {
    pm_.UnchargeCommit(proc.commit_charge);
    proc.commit_charge = 0;
  }
  proc.as.reset();
  proc.fds.clear();
  proc.streams.clear();
  proc.mutexes.clear();
  proc.threads.clear();
  return Status::Ok();
}

Status SimKernel::Exit(Pid pid, int code, bool flush_streams) {
  FORKLIFT_ASSIGN_OR_RETURN(Process * proc, Find(pid));
  if (proc->state == Process::State::kZombie) {
    return LogicalError("procsim: double exit");
  }
  clock_.Charge(CostKind::kSyscallEntry);

  if (flush_streams) {
    // exit(3) walks atexit handlers and flushes stdio. A forked child doing
    // this re-emits the inherited buffers: §4's duplication, by construction.
    for (auto& [id, stream] : proc->streams) {
      (void)id;
      auto it = proc->fds.find(stream.fd);
      if (it != proc->fds.end()) {
        for (uint64_t token : stream.buffer) {
          it->second.file->sink.push_back(token);
        }
      }
      stream.buffer.clear();
    }
  }

  bool was_vfork_child = proc->shares_parent_as;
  Pid ppid = proc->ppid;
  proc->shares_parent_as = false;
  FORKLIFT_RETURN_IF_ERROR(ReleaseProcessMemory(*proc));
  proc->exit_code = code;
  proc->state = Process::State::kZombie;

  if (was_vfork_child) {
    auto parent = Find(ppid);
    if (parent.ok() && (*parent)->state == Process::State::kBlockedVfork) {
      (*parent)->state = Process::State::kRunning;
      clock_.Charge(CostKind::kSchedWake);
    }
  }
  Trace(pid, "exit", "code=" + std::to_string(code));
  return Status::Ok();
}

Result<int> SimKernel::Wait(Pid parent, Pid child) {
  FORKLIFT_ASSIGN_OR_RETURN(Process * proc, Find(child));
  if (proc->ppid != parent) {
    return Err(Error(ECHILD, "procsim: not a child of the waiting process"));
  }
  if (proc->state != Process::State::kZombie) {
    return Err(Error(EBUSY, "procsim: child still running"));
  }
  clock_.Charge(CostKind::kSyscallEntry);
  int code = proc->exit_code;
  proc->state = Process::State::kDead;
  procs_.erase(child);
  placement_.erase(child);
  Trace(parent, "wait", "reaped=" + std::to_string(child) + " code=" + std::to_string(code));
  return code;
}

std::string SimKernel::FormatProcessTable() {
  std::string out =
      "  PID  PPID  STATE     IMAGE            RSS_PAGES  PT_PAGES  FDS  COMMIT\n";
  char buf[192];
  for (const auto& [pid, proc] : procs_) {
    const char* state = "?";
    switch (proc->state) {
      case Process::State::kEmbryo:
        state = "embryo";
        break;
      case Process::State::kRunning:
        state = "run";
        break;
      case Process::State::kBlockedVfork:
        state = "vfork";
        break;
      case Process::State::kZombie:
        state = "zombie";
        break;
      case Process::State::kDead:
        continue;
    }
    uint64_t rss = proc->as != nullptr ? proc->as->resident_pages() : 0;
    uint64_t pt = proc->as != nullptr ? proc->as->table_pages() : 0;
    std::snprintf(buf, sizeof(buf), "%5llu %5llu  %-8s  %-15s %10llu %9llu %4zu  %llu\n",
                  static_cast<unsigned long long>(pid),
                  static_cast<unsigned long long>(proc->ppid), state,
                  proc->image_name.c_str(), static_cast<unsigned long long>(rss),
                  static_cast<unsigned long long>(pt), proc->fds.size(),
                  static_cast<unsigned long long>(proc->commit_charge));
    out += buf;
  }
  return out;
}

Result<Vaddr> SimKernel::MapAnon(Pid pid, uint64_t bytes, std::string name,
                                 PageSize page_size) {
  FORKLIFT_ASSIGN_OR_RETURN(Process * proc, Find(pid));
  clock_.Charge(CostKind::kSyscallEntry);
  uint64_t align = BytesOf(page_size);
  Vaddr base = (proc->next_map + align - 1) & ~(align - 1);
  FORKLIFT_RETURN_IF_ERROR(
      proc->as->MapRegion(base, bytes, /*writable=*/true, std::move(name), page_size));
  proc->next_map = base + ((bytes + align - 1) & ~(align - 1)) + align;  // guard gap
  return base;
}

Result<Vaddr> SimKernel::MapSharedAnon(Pid pid, uint64_t bytes, std::string name,
                                       PageSize page_size) {
  FORKLIFT_ASSIGN_OR_RETURN(Process * proc, Find(pid));
  clock_.Charge(CostKind::kSyscallEntry);
  uint64_t align = BytesOf(page_size);
  Vaddr base = (proc->next_map + align - 1) & ~(align - 1);
  FORKLIFT_RETURN_IF_ERROR(
      proc->as->MapSharedRegion(base, bytes, /*writable=*/true, std::move(name), page_size));
  proc->next_map = base + ((bytes + align - 1) & ~(align - 1)) + align;
  return base;
}

Status SimKernel::Touch(Pid pid, Vaddr start, uint64_t bytes, bool write) {
  FORKLIFT_ASSIGN_OR_RETURN(Process * proc, FindRunnable(pid));
  return proc->as->TouchRange(start, bytes, write, &clock_, &tlbs_, CpuOf(pid));
}

Result<uint64_t> SimKernel::ReadWord(Pid pid, Vaddr va) {
  FORKLIFT_ASSIGN_OR_RETURN(Process * proc, FindRunnable(pid));
  return proc->as->Read(va, &clock_);
}

Status SimKernel::WriteWord(Pid pid, Vaddr va, uint64_t value) {
  FORKLIFT_ASSIGN_OR_RETURN(Process * proc, FindRunnable(pid));
  return proc->as->Write(va, value, &clock_, &tlbs_, CpuOf(pid));
}

Result<Fd> SimKernel::OpenFile(Pid pid, std::string description, bool cloexec) {
  FORKLIFT_ASSIGN_OR_RETURN(Process * proc, FindRunnable(pid));
  clock_.Charge(CostKind::kSyscallEntry);
  Fd fd = proc->next_fd++;
  FdEntry entry;
  entry.file = std::make_shared<SimFile>();
  entry.file->description = std::move(description);
  entry.cloexec = cloexec;
  proc->fds[fd] = std::move(entry);
  return fd;
}

Status SimKernel::CloseFd(Pid pid, Fd fd) {
  FORKLIFT_ASSIGN_OR_RETURN(Process * proc, Find(pid));
  if (proc->fds.erase(fd) == 0) {
    return Err(Error(EBADF, "procsim: close of unknown fd"));
  }
  return Status::Ok();
}

Status SimKernel::SetCloexec(Pid pid, Fd fd, bool cloexec) {
  FORKLIFT_ASSIGN_OR_RETURN(Process * proc, Find(pid));
  auto it = proc->fds.find(fd);
  if (it == proc->fds.end()) {
    return Err(Error(EBADF, "procsim: fcntl of unknown fd"));
  }
  it->second.cloexec = cloexec;
  return Status::Ok();
}

Result<std::shared_ptr<SimFile>> SimKernel::FileOf(Pid pid, Fd fd) {
  FORKLIFT_ASSIGN_OR_RETURN(Process * proc, Find(pid));
  auto it = proc->fds.find(fd);
  if (it == proc->fds.end()) {
    return Err(Error(EBADF, "procsim: no such fd"));
  }
  return it->second.file;
}

Result<Tid> SimKernel::SpawnThread(Pid pid) {
  FORKLIFT_ASSIGN_OR_RETURN(Process * proc, Find(pid));
  clock_.Charge(CostKind::kTaskCreate);
  Tid tid = proc->next_tid++;
  proc->threads[tid] = SimThreadInfo{tid};
  return tid;
}

Result<MutexId> SimKernel::MutexCreate(Pid pid, std::string name) {
  FORKLIFT_ASSIGN_OR_RETURN(Process * proc, Find(pid));
  MutexId id = proc->next_mutex++;
  proc->mutexes[id] = SimMutexState{std::move(name), 0};
  return id;
}

Status SimKernel::MutexLock(Pid pid, Tid tid, MutexId id) {
  FORKLIFT_ASSIGN_OR_RETURN(Process * proc, Find(pid));
  if (proc->threads.count(tid) == 0) {
    return LogicalError("procsim: lock from nonexistent thread");
  }
  auto it = proc->mutexes.find(id);
  if (it == proc->mutexes.end()) {
    return LogicalError("procsim: lock of unknown mutex");
  }
  SimMutexState& mu = it->second;
  if (mu.holder == 0) {
    mu.holder = tid;
    return Status::Ok();
  }
  if (mu.holder == tid) {
    return Err(Error(EDEADLK, "procsim: recursive lock of '" + mu.name + "'"));
  }
  if (proc->threads.count(mu.holder) == 0) {
    // The holder does not exist in this process: it was a thread of the
    // pre-fork parent. Nobody can ever unlock this mutex here. A real child
    // hangs; the simulator reports the deadlock.
    return Err(Error(EDEADLK, "procsim: mutex '" + mu.name +
                                  "' is held by a thread that did not survive fork"));
  }
  // A live holder: a real kernel would block; the deterministic simulator
  // (one runnable entity at a time) reports contention instead.
  return Err(Error(EBUSY, "procsim: mutex '" + mu.name + "' held by live thread " +
                              std::to_string(mu.holder)));
}

Status SimKernel::MutexUnlock(Pid pid, Tid tid, MutexId id) {
  FORKLIFT_ASSIGN_OR_RETURN(Process * proc, Find(pid));
  auto it = proc->mutexes.find(id);
  if (it == proc->mutexes.end()) {
    return LogicalError("procsim: unlock of unknown mutex");
  }
  if (it->second.holder != tid) {
    return Err(Error(EPERM, "procsim: unlock by non-holder"));
  }
  it->second.holder = 0;
  return Status::Ok();
}

Result<Tid> SimKernel::MutexHolder(Pid pid, MutexId id) {
  FORKLIFT_ASSIGN_OR_RETURN(Process * proc, Find(pid));
  auto it = proc->mutexes.find(id);
  if (it == proc->mutexes.end()) {
    return LogicalError("procsim: unknown mutex");
  }
  return it->second.holder;
}

Result<StreamId> SimKernel::StreamCreate(Pid pid, Fd fd) {
  FORKLIFT_ASSIGN_OR_RETURN(Process * proc, Find(pid));
  if (proc->fds.count(fd) == 0) {
    return Err(Error(EBADF, "procsim: stream on unknown fd"));
  }
  StreamId id = proc->next_stream++;
  SimStream s;
  s.fd = fd;
  proc->streams[id] = std::move(s);
  return id;
}

Status SimKernel::StreamWrite(Pid pid, StreamId id, uint64_t token) {
  FORKLIFT_ASSIGN_OR_RETURN(Process * proc, Find(pid));
  auto it = proc->streams.find(id);
  if (it == proc->streams.end()) {
    return LogicalError("procsim: write to unknown stream");
  }
  it->second.buffer.push_back(token);  // stays in process memory until flush
  return Status::Ok();
}

Status SimKernel::StreamFlush(Pid pid, StreamId id) {
  FORKLIFT_ASSIGN_OR_RETURN(Process * proc, Find(pid));
  auto it = proc->streams.find(id);
  if (it == proc->streams.end()) {
    return LogicalError("procsim: flush of unknown stream");
  }
  auto fd_it = proc->fds.find(it->second.fd);
  if (fd_it == proc->fds.end()) {
    return Err(Error(EBADF, "procsim: stream's fd is closed"));
  }
  clock_.Charge(CostKind::kSyscallEntry);
  for (uint64_t token : it->second.buffer) {
    fd_it->second.file->sink.push_back(token);
  }
  it->second.buffer.clear();
  return Status::Ok();
}

Result<size_t> SimKernel::StreamPending(Pid pid, StreamId id) {
  FORKLIFT_ASSIGN_OR_RETURN(Process * proc, Find(pid));
  auto it = proc->streams.find(id);
  if (it == proc->streams.end()) {
    return LogicalError("procsim: unknown stream");
  }
  return it->second.buffer.size();
}

}  // namespace forklift::procsim
