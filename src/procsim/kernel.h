// forklift/procsim: the simulated process subsystem.
//
// SimKernel implements just enough of a POSIX-shaped kernel to run every
// experiment the paper implies but that cannot be run safely or
// deterministically against a real kernel:
//
//   * Fork/Vfork/Spawn/Exec/Exit/Wait with real COW address-space semantics
//     (backed by the 4-level page table) and per-operation cost accounting;
//   * descriptor tables with CLOEXEC, copied ambiently by Fork and filtered
//     by Exec/Spawn — the §4 security model difference, executable;
//   * threads and mutexes where Fork copies *memory* (mutex state) but only
//     the calling *thread* — so the child that touches a mutex held by a
//     non-forked thread deadlocks deterministically (reported as EDEADLK
//     rather than hanging), the §4 thread-safety claim;
//   * buffered output streams living in process memory, duplicated by Fork
//     and flushed at Exit — the §4 composability (double-flush) claim.
//
// Everything is deterministic: no real time, no real concurrency; "which CPU
// runs what" is explicit test input via SetRunningOn.
#ifndef SRC_PROCSIM_KERNEL_H_
#define SRC_PROCSIM_KERNEL_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/procsim/address_space.h"
#include "src/procsim/cost_model.h"
#include "src/procsim/phys_mem.h"
#include "src/procsim/tlb.h"

namespace forklift::procsim {

class KernelTracer;

using Pid = uint64_t;
using Tid = uint64_t;
using Fd = int;
using StreamId = uint64_t;
using MutexId = uint64_t;

// A program binary, abstractly: segment sizes plus how much of the image a
// freshly exec'd process touches before doing useful work.
struct ProgramImage {
  std::string name = "a.out";
  uint64_t text_bytes = 512 * 1024;
  uint64_t data_bytes = 256 * 1024;
  uint64_t stack_bytes = 128 * 1024;
  uint64_t touched_at_start_bytes = 64 * 1024;  // demand-faulted during startup
  PageSize page_size = PageSize::k4K;
};

// A kernel-side file object (shared between processes holding descriptors to
// it). `sink` records written tokens, which is how stream-flush tests observe
// output ordering and duplication.
struct SimFile {
  std::string description;
  std::vector<uint64_t> sink;
};

struct FdEntry {
  std::shared_ptr<SimFile> file;
  bool cloexec = false;
};

struct SimThreadInfo {
  Tid tid = 0;
};

// Mutex state lives in process MEMORY (a pthread_mutex_t is just bytes), so
// Fork copies it verbatim — holder tid and all. That verbatim copy is the bug.
struct SimMutexState {
  std::string name;
  Tid holder = 0;  // 0 = unheld
};

// A user-space buffered writer (stdio FILE analogue): buffer in process
// memory, flushed to a kernel file on demand or at exit.
struct SimStream {
  Fd fd = -1;
  std::vector<uint64_t> buffer;
};

struct Process {
  enum class State { kEmbryo, kRunning, kBlockedVfork, kZombie, kDead };

  Pid pid = 0;
  Pid ppid = 0;
  State state = State::kRunning;
  std::string image_name;
  std::shared_ptr<AddressSpace> as;
  bool shares_parent_as = false;  // vfork child until exec/exit

  std::map<Fd, FdEntry> fds;
  Fd next_fd = 3;

  std::map<Tid, SimThreadInfo> threads;
  Tid next_tid = 2;
  static constexpr Tid kMainTid = 1;

  std::map<MutexId, SimMutexState> mutexes;
  MutexId next_mutex = 1;

  std::map<StreamId, SimStream> streams;
  StreamId next_stream = 1;

  int exit_code = 0;
  Vaddr next_map = kHeapBase;  // bump allocator for anonymous regions
  // Strict-commit frames this process's fork promised; released with its AS.
  uint64_t commit_charge = 0;
};

class SimKernel {
 public:
  // §5 of the paper: fork's COW promises either fail early (strict) or are
  // accepted and may blow up later at an arbitrary write (overcommit + OOM).
  enum class CommitPolicy {
    kOvercommit,  // Linux-default shape: fork never fails for commit reasons
    kStrict,      // historical/Solaris shape: fork ENOMEMs when promises
                  // exceed what physical memory could honour
  };

  struct Config {
    uint64_t phys_frames = 16ull << 20;  // 64 GiB of 4K frames by default
    size_t cpus = 4;
    size_t tlb_entries = 1536;
    CostModel costs = CostModel::Default();
    CommitPolicy commit_policy = CommitPolicy::kOvercommit;
  };

  SimKernel();  // default Config
  explicit SimKernel(Config config);

  // --- process lifecycle -----------------------------------------------
  // Boots pid 1 from `image` (no parent).
  Result<Pid> CreateInit(const ProgramImage& image);

  // fork(2): full COW clone. `caller_tid` is the only thread that exists in
  // the child.
  Result<Pid> Fork(Pid caller, Tid caller_tid = Process::kMainTid);

  // vfork(2): child borrows the parent's address space; the parent blocks
  // until the child execs or exits.
  Result<Pid> Vfork(Pid caller);

  // posix_spawn(3)-shaped: new process running `image`, inheriting only the
  // caller's non-CLOEXEC descriptors. No address-space copy at any point.
  Result<Pid> Spawn(Pid caller, const ProgramImage& image);

  // Cross-process model (see cross_process.h): an empty, not-yet-runnable
  // child that inherits NOTHING; made runnable by StartEmbryo once its
  // creator has constructed it.
  Result<Pid> CreateEmbryo(Pid parent);
  Status StartEmbryo(Pid pid);

  // execve(2): replace the address space with `image`, drop CLOEXEC fds,
  // reduce to one thread, discard user-space buffers unflushed (exec does not
  // flush stdio — faithfully modeled).
  Status Exec(Pid pid, const ProgramImage& image);

  // _exit-with-stdio-atexit semantics: flush all streams, release the address
  // space, become a zombie (or plain exit(3) path: flush_streams = true).
  Status Exit(Pid pid, int code, bool flush_streams = true);

  // waitpid: reap a zombie child. EBUSY if the child is still running.
  Result<int> Wait(Pid parent, Pid child);

  // --- memory -----------------------------------------------------------
  // Anonymous writable mapping in `pid`'s space; returns its base address.
  Result<Vaddr> MapAnon(Pid pid, uint64_t bytes, std::string name,
                        PageSize page_size = PageSize::k4K);
  // MAP_SHARED|MAP_ANONYMOUS equivalent: fork children share the frames
  // (writes mutually visible), not COW copies.
  Result<Vaddr> MapSharedAnon(Pid pid, uint64_t bytes, std::string name,
                              PageSize page_size = PageSize::k4K);
  Status Touch(Pid pid, Vaddr start, uint64_t bytes, bool write);
  Result<uint64_t> ReadWord(Pid pid, Vaddr va);
  Status WriteWord(Pid pid, Vaddr va, uint64_t value);

  // --- descriptors --------------------------------------------------------
  Result<Fd> OpenFile(Pid pid, std::string description, bool cloexec = false);
  Status CloseFd(Pid pid, Fd fd);
  Status SetCloexec(Pid pid, Fd fd, bool cloexec);
  // The file object behind a descriptor (shared across processes).
  Result<std::shared_ptr<SimFile>> FileOf(Pid pid, Fd fd);

  // --- threads and locks ---------------------------------------------------
  Result<Tid> SpawnThread(Pid pid);
  Result<MutexId> MutexCreate(Pid pid, std::string name);
  // EDEADLK when the recorded holder no longer exists in this process — the
  // post-fork orphaned-lock deadlock, detected instead of hung.
  Status MutexLock(Pid pid, Tid tid, MutexId id);
  Status MutexUnlock(Pid pid, Tid tid, MutexId id);
  Result<Tid> MutexHolder(Pid pid, MutexId id);

  // --- buffered streams -----------------------------------------------------
  Result<StreamId> StreamCreate(Pid pid, Fd fd);
  Status StreamWrite(Pid pid, StreamId id, uint64_t token);
  Status StreamFlush(Pid pid, StreamId id);
  Result<size_t> StreamPending(Pid pid, StreamId id);

  // --- placement & introspection -------------------------------------------
  // Declares that `pid` currently runs on `cpu` (for TLB/shootdown modeling).
  Status SetRunningOn(Pid pid, size_t cpu);

  // Attaches an operation journal (see trace.h). Non-owning; nullptr
  // detaches. Every lifecycle operation is recorded while attached.
  void AttachTracer(KernelTracer* tracer) { tracer_ = tracer; }

  Result<Process*> Find(Pid pid);
  // As Find, but rejects processes that cannot run (vfork-suspended).
  Result<Process*> FindRunnable(Pid pid);

  // ps(1)-style snapshot: one line per live process (pid, ppid, state, image,
  // resident/table pages, fds, commit charge), sorted by pid.
  std::string FormatProcessTable();
  SimClock& clock() { return clock_; }
  PhysicalMemory& memory() { return pm_; }
  TlbDomain& tlbs() { return tlbs_; }
  size_t process_count() const { return procs_.size(); }

 private:
  Result<std::shared_ptr<AddressSpace>> BuildImageSpace(const ProgramImage& image, Asid asid);
  Status ReleaseProcessMemory(Process& proc);
  size_t CpuOf(Pid pid) const;
  void Trace(Pid pid, const char* op, std::string detail);

  PhysicalMemory pm_;
  TlbDomain tlbs_;
  SimClock clock_;
  CommitPolicy commit_policy_ = CommitPolicy::kOvercommit;
  KernelTracer* tracer_ = nullptr;
  std::map<Pid, std::unique_ptr<Process>> procs_;
  std::map<Pid, size_t> placement_;
  Pid next_pid_ = 1;
};

}  // namespace forklift::procsim

#endif  // SRC_PROCSIM_KERNEL_H_
