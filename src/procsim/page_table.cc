#include "src/procsim/page_table.h"

#include <string>

namespace forklift::procsim {

PageTable::PageTable(PhysicalMemory* pm) : pm_(pm), root_(std::make_unique<Node>()) {
  table_pages_ = 1;  // the root (PML4) page
}

PageTable::~PageTable() {
  if (root_ != nullptr) {
    ReleaseNode(root_.get(), 3);
  }
}

void PageTable::ReleaseNode(Node* node, int level) {
  if (!node->ptes.empty()) {
    for (auto& pte : node->ptes) {
      if (pte.present()) {
        (void)pm_->Release(pte.frame);
      }
    }
  }
  if (level > 0) {
    for (auto& child : node->children) {
      if (child != nullptr) {
        ReleaseNode(child.get(), level - 1);
      }
    }
  }
}

PageTable::Node* PageTable::DescendAlloc(Vaddr va, int to_level, SimClock* clock) {
  Node* node = root_.get();
  for (int level = 3; level > to_level; --level) {
    int idx = IndexAt(va, level);
    if (node->children[idx] == nullptr) {
      node->children[idx] = std::make_unique<Node>();
      ++table_pages_;
      if (clock != nullptr) {
        clock->Charge(CostKind::kPtePageAlloc);
      }
    }
    node = node->children[idx].get();
  }
  return node;
}

Status PageTable::Map(Vaddr va, FrameId frame, uint16_t flags, PageSize size) {
  uint64_t bytes = BytesOf(size);
  if ((va & (bytes - 1)) != 0) {
    return LogicalError("PageTable::Map: misaligned va " + std::to_string(va));
  }
  if (va >> kVaBits != 0) {
    return LogicalError("PageTable::Map: va beyond 48 bits");
  }
  if (Lookup(va).pte != nullptr) {
    // Covers both an exact duplicate and a 4K map shadowed by a huge page.
    return LogicalError("PageTable::Map: va already mapped");
  }
  int leaf_level = size == PageSize::k4K ? 0 : 1;
  Node* node = DescendAlloc(va, leaf_level, nullptr);
  node->EnsurePtes();
  int idx = IndexAt(va, leaf_level);
  if (leaf_level == 1 && node->children[idx] != nullptr) {
    return LogicalError("PageTable::Map: huge page overlaps existing 4K subtree");
  }
  Pte& pte = node->ptes[idx];
  if (pte.present()) {
    return LogicalError("PageTable::Map: va already mapped");
  }
  pte.frame = frame;
  pte.flags = static_cast<uint16_t>(flags | kPtePresent |
                                    (size == PageSize::k2M ? kPteHuge : 0));
  ++present_pages_;
  if (size == PageSize::k2M) {
    ++huge_pages_;
  }
  return Status::Ok();
}

PteRef PageTable::Lookup(Vaddr va) {
  PteRef out;
  if (va >> kVaBits != 0) {
    return out;
  }
  Node* node = root_.get();
  for (int level = 3; level >= 0; --level) {
    int idx = IndexAt(va, level);
    // Huge leaf at the PD level.
    if (level == 1 && !node->ptes.empty() && node->ptes[idx].present()) {
      out.pte = &node->ptes[idx];
      out.size = PageSize::k2M;
      out.base = va & ~(kPageSize2M - 1);
      return out;
    }
    if (level == 0) {
      if (node->ptes.empty() || !node->ptes[idx].present()) {
        return out;
      }
      out.pte = &node->ptes[idx];
      out.size = PageSize::k4K;
      out.base = va & ~(kPageSize4K - 1);
      return out;
    }
    if (node->children[idx] == nullptr) {
      return out;
    }
    node = node->children[idx].get();
  }
  return out;
}

Status PageTable::Unmap(Vaddr va) {
  PteRef ref = Lookup(va);
  if (ref.pte == nullptr) {
    return LogicalError("PageTable::Unmap: va not mapped");
  }
  FORKLIFT_RETURN_IF_ERROR(pm_->Release(ref.pte->frame));
  if (ref.size == PageSize::k2M) {
    --huge_pages_;
  }
  --present_pages_;
  *ref.pte = Pte{};
  return Status::Ok();
}

void PageTable::ForEachNode(Node* node, int level, Vaddr base,
                            const std::function<void(Vaddr, Pte&, PageSize)>& fn) {
  uint64_t span = 1ull << (12 + 9 * level);
  for (int idx = 0; idx < 512; ++idx) {
    Vaddr va = base + static_cast<uint64_t>(idx) * span;
    if (!node->ptes.empty() && node->ptes[idx].present()) {
      fn(va, node->ptes[idx], level == 0 ? PageSize::k4K : PageSize::k2M);
    }
    if (level > 0 && node->children[idx] != nullptr) {
      ForEachNode(node->children[idx].get(), level - 1, va, fn);
    }
  }
}

void PageTable::ForEach(const std::function<void(Vaddr, Pte&, PageSize)>& fn) {
  ForEachNode(root_.get(), 3, 0, fn);
}

std::unique_ptr<PageTable::Node> PageTable::CloneNode(const Node* node, int level,
                                                      PageTable* dst, SimClock* clock) {
  auto copy = std::make_unique<Node>();
  ++dst->table_pages_;
  if (clock != nullptr) {
    clock->Charge(CostKind::kPtePageAlloc);
  }
  if (!node->ptes.empty()) {
    copy->ptes = node->ptes;  // PTE array copy; also applies the COW downgrade below
    for (int idx = 0; idx < 512; ++idx) {
      Pte& pte = copy->ptes[idx];
      if (!pte.present()) {
        continue;
      }
      // Both copies lose write permission; writable pages become COW —
      // except MAP_SHARED pages, which stay writable and shared.
      if (pte.writable() && !pte.shared()) {
        pte.flags = static_cast<uint16_t>((pte.flags & ~kPteWritable) | kPteCow);
        Pte& orig = const_cast<Node*>(node)->ptes[idx];
        orig.flags = static_cast<uint16_t>((orig.flags & ~kPteWritable) | kPteCow);
      }
      (void)dst->pm_->AddRef(pte.frame);
      ++dst->present_pages_;
      if (pte.huge()) {
        ++dst->huge_pages_;
      }
      if (clock != nullptr) {
        clock->Charge(CostKind::kPteCopy);
      }
    }
  }
  if (level > 0) {
    for (int idx = 0; idx < 512; ++idx) {
      if (node->children[idx] != nullptr) {
        copy->children[idx] = CloneNode(node->children[idx].get(), level - 1, dst, clock);
      }
    }
  }
  return copy;
}

Result<std::unique_ptr<PageTable>> PageTable::CloneCow(SimClock* clock) {
  auto dst = std::unique_ptr<PageTable>(new PageTable(pm_));
  dst->table_pages_ = 0;  // CloneNode counts every node including the new root
  dst->root_ = CloneNode(root_.get(), 3, dst.get(), clock);
  return dst;
}

uint64_t PageTable::mapped_bytes() const {
  return (present_pages_ - huge_pages_) * kPageSize4K + huge_pages_ * kPageSize2M;
}

}  // namespace forklift::procsim
