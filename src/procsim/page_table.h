// forklift/procsim: a faithful x86-64 4-level radix page table.
//
// Virtual addresses are 48-bit; each level indexes 9 bits (PML4→PDPT→PD→PT)
// over a 4KiB page, and the PD level can hold 2MiB "huge" leaf entries. The
// structure is modeled exactly — including the page-table *pages* themselves —
// because the paper's central quantitative claim is that fork must replicate
// this whole radix tree eagerly: CloneCow() is precisely that work, charged
// PTE-by-PTE and node-by-node to the SimClock, which is what makes the
// simulated Figure-1 slope emerge from structure rather than from a fitted
// formula.
#ifndef SRC_PROCSIM_PAGE_TABLE_H_
#define SRC_PROCSIM_PAGE_TABLE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/result.h"
#include "src/procsim/cost_model.h"
#include "src/procsim/phys_mem.h"

namespace forklift::procsim {

using Vaddr = uint64_t;

inline constexpr uint64_t kPageSize4K = 4096;
inline constexpr uint64_t kPageSize2M = 2ull << 20;
inline constexpr int kVaBits = 48;

enum PteFlag : uint16_t {
  kPtePresent = 1u << 0,
  kPteWritable = 1u << 1,
  kPteUser = 1u << 2,
  kPteCow = 1u << 3,
  kPteDirty = 1u << 4,
  kPteAccessed = 1u << 5,
  kPteHuge = 1u << 6,
  // MAP_SHARED page: fork copies the entry verbatim (no COW downgrade) and
  // the frame is never copied — writes are mutually visible by design.
  kPteShared = 1u << 7,
};

struct Pte {
  FrameId frame = kNoFrame;
  uint16_t flags = 0;

  bool present() const { return (flags & kPtePresent) != 0; }
  bool writable() const { return (flags & kPteWritable) != 0; }
  bool cow() const { return (flags & kPteCow) != 0; }
  bool huge() const { return (flags & kPteHuge) != 0; }
  bool shared() const { return (flags & kPteShared) != 0; }
};

enum class PageSize { k4K, k2M };

inline uint64_t BytesOf(PageSize size) {
  return size == PageSize::k4K ? kPageSize4K : kPageSize2M;
}

// Result of a lookup: a borrowed, mutable view of the live entry.
struct PteRef {
  Pte* pte = nullptr;
  PageSize size = PageSize::k4K;
  Vaddr base = 0;  // page-aligned start of the mapping
};

class PageTable {
 public:
  // Frames mapped into this table hold references in `pm`; the destructor
  // releases them (and the table pages are accounted as freed).
  explicit PageTable(PhysicalMemory* pm);
  ~PageTable();

  PageTable(const PageTable&) = delete;
  PageTable& operator=(const PageTable&) = delete;
  PageTable(PageTable&&) = delete;
  PageTable& operator=(PageTable&&) = delete;

  // Installs a mapping. `va` must be size-aligned and unmapped; the frame's
  // reference is consumed (caller allocated or AddRef'd it for us).
  Status Map(Vaddr va, FrameId frame, uint16_t flags, PageSize size);

  // Removes a mapping and releases its frame reference.
  Status Unmap(Vaddr va);

  // Finds the entry covering `va` (any alignment within the page).
  // Returns nullopt PteRef (pte == nullptr) if unmapped.
  PteRef Lookup(Vaddr va);

  // Visits every present entry in ascending address order.
  void ForEach(const std::function<void(Vaddr, Pte&, PageSize)>& fn);

  // fork(): deep-copies the radix structure into a fresh table. Private
  // writable mappings become read-only+COW in BOTH tables (the write-protect
  // fork performs on the parent is charged too); every frame gains a
  // reference. Table-page allocations and PTE copies are charged to `clock`.
  Result<std::unique_ptr<PageTable>> CloneCow(SimClock* clock);

  // Statistics.
  uint64_t present_pages() const { return present_pages_; }   // leaf mappings
  uint64_t huge_pages() const { return huge_pages_; }
  uint64_t table_pages() const { return table_pages_; }       // radix nodes
  uint64_t mapped_bytes() const;

 private:
  struct Node {
    std::array<std::unique_ptr<Node>, 512> children;  // interior slots
    std::vector<Pte> ptes;                            // leaf slots (lazily sized to 512)

    void EnsurePtes() {
      if (ptes.empty()) {
        ptes.resize(512);
      }
    }
  };

  static int IndexAt(Vaddr va, int level) {
    // level 3 = PML4 (bits 47:39) ... level 0 = PT (bits 20:12)
    return static_cast<int>((va >> (12 + 9 * level)) & 0x1ff);
  }

  Node* DescendAlloc(Vaddr va, int to_level, SimClock* clock);
  void ForEachNode(Node* node, int level, Vaddr base,
                   const std::function<void(Vaddr, Pte&, PageSize)>& fn);
  std::unique_ptr<Node> CloneNode(const Node* node, int level, PageTable* dst, SimClock* clock);
  void ReleaseNode(Node* node, int level);

  PhysicalMemory* pm_;
  std::unique_ptr<Node> root_;
  uint64_t present_pages_ = 0;
  uint64_t huge_pages_ = 0;
  uint64_t table_pages_ = 0;
};

}  // namespace forklift::procsim

#endif  // SRC_PROCSIM_PAGE_TABLE_H_
