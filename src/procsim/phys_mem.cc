#include "src/procsim/phys_mem.h"

#include <cerrno>
#include <string>

namespace forklift::procsim {

Result<FrameId> PhysicalMemory::Allocate() {
  if (frames_.size() >= capacity_) {
    return Err(Error(ENOMEM, "procsim: out of physical frames (" +
                                 std::to_string(capacity_) + " capacity)"));
  }
  FrameId id = next_++;
  frames_[id] = Frame{1, 0};
  ++allocations_;
  return id;
}

Status PhysicalMemory::AddRef(FrameId frame) {
  auto it = frames_.find(frame);
  if (it == frames_.end()) {
    return LogicalError("procsim: AddRef of unknown frame " + std::to_string(frame));
  }
  ++it->second.refcount;
  return Status::Ok();
}

Status PhysicalMemory::Release(FrameId frame) {
  auto it = frames_.find(frame);
  if (it == frames_.end()) {
    return LogicalError("procsim: Release of unknown frame " + std::to_string(frame));
  }
  if (--it->second.refcount == 0) {
    frames_.erase(it);
    ++frees_;
  }
  return Status::Ok();
}

Result<uint32_t> PhysicalMemory::RefCount(FrameId frame) const {
  auto it = frames_.find(frame);
  if (it == frames_.end()) {
    return LogicalError("procsim: RefCount of unknown frame " + std::to_string(frame));
  }
  return it->second.refcount;
}

Result<uint64_t> PhysicalMemory::Read(FrameId frame) const {
  auto it = frames_.find(frame);
  if (it == frames_.end()) {
    return LogicalError("procsim: Read of unknown frame " + std::to_string(frame));
  }
  return it->second.content;
}

Status PhysicalMemory::Write(FrameId frame, uint64_t value) {
  auto it = frames_.find(frame);
  if (it == frames_.end()) {
    return LogicalError("procsim: Write of unknown frame " + std::to_string(frame));
  }
  it->second.content = value;
  return Status::Ok();
}

Result<FrameId> PhysicalMemory::CopyFrame(FrameId src) {
  auto it = frames_.find(src);
  if (it == frames_.end()) {
    return LogicalError("procsim: CopyFrame of unknown frame " + std::to_string(src));
  }
  uint64_t content = it->second.content;  // read before Allocate can rehash
  FORKLIFT_ASSIGN_OR_RETURN(FrameId dst, Allocate());
  frames_[dst].content = content;
  return dst;
}

}  // namespace forklift::procsim
