// forklift/procsim: the simulated physical memory manager.
//
// Frames are integer handles with a reference count (COW sharing) and a
// 64-bit content token standing in for the page's data. The token is what
// lets tests prove COW end-to-end: after a simulated fork, parent and child
// must read the same token through different page tables; after a write in
// one, the other's token must be unchanged.
#ifndef SRC_PROCSIM_PHYS_MEM_H_
#define SRC_PROCSIM_PHYS_MEM_H_

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "src/common/result.h"

namespace forklift::procsim {

using FrameId = uint64_t;
inline constexpr FrameId kNoFrame = 0;  // frame ids start at 1

class PhysicalMemory {
 public:
  // `capacity_frames` bounds allocation; exceeding it is the simulated OOM.
  explicit PhysicalMemory(uint64_t capacity_frames) : capacity_(capacity_frames) {}

  // --- commit accounting (the paper's §5 overcommit argument) -------------
  //
  // Every COW sharing created by fork is a *promise* of a future frame: if
  // both sides write, the kernel owes one more frame than it charged. Under
  // STRICT accounting the kernel refuses promises it cannot keep (fork fails
  // with ENOMEM long before memory is actually exhausted — the historical
  // behaviour that pushed Unix into overcommit); under OVERCOMMIT it accepts
  // them and a COW break can fail at an unrelated, un-handleable moment (the
  // OOM-killer scenario). Charge/Uncharge track the outstanding promises;
  // AvailableCommit says whether a strict fork may proceed.
  void ChargeCommit(uint64_t frames) { committed_ += frames; }
  void UnchargeCommit(uint64_t frames) {
    committed_ -= std::min(committed_, frames);
  }
  uint64_t committed_frames() const { return committed_; }
  // Frames a strict accountant may still promise.
  uint64_t AvailableCommit() const {
    uint64_t used = frames_.size() + committed_;
    return used >= capacity_ ? 0 : capacity_ - used;
  }

  // Allocates a frame with refcount 1 and content 0 ("zeroed").
  Result<FrameId> Allocate();

  // Increments the sharing count (fork mapping the same frame twice).
  Status AddRef(FrameId frame);

  // Decrements; frees at zero.
  Status Release(FrameId frame);

  Result<uint32_t> RefCount(FrameId frame) const;

  // Content token access (the "page data").
  Result<uint64_t> Read(FrameId frame) const;
  Status Write(FrameId frame, uint64_t value);

  // Allocates a new frame holding a copy of `src`'s content (COW break).
  Result<FrameId> CopyFrame(FrameId src);

  uint64_t used_frames() const { return frames_.size(); }
  uint64_t capacity_frames() const { return capacity_; }
  uint64_t allocations() const { return allocations_; }
  uint64_t frees() const { return frees_; }

 private:
  struct Frame {
    uint32_t refcount = 0;
    uint64_t content = 0;
  };

  uint64_t capacity_;
  uint64_t committed_ = 0;
  FrameId next_ = 1;
  uint64_t allocations_ = 0;
  uint64_t frees_ = 0;
  std::unordered_map<FrameId, Frame> frames_;
};

}  // namespace forklift::procsim

#endif  // SRC_PROCSIM_PHYS_MEM_H_
