#include "src/procsim/tlb.h"

#include <algorithm>

namespace forklift::procsim {

bool Tlb::Access(Asid asid, Vaddr page_base) {
  Key key{asid, page_base};
  if (entries_.count(key) != 0) {
    ++hits_;
    return true;
  }
  ++misses_;
  if (entries_.size() >= capacity_ && !fifo_.empty()) {
    entries_.erase(fifo_.front());
    fifo_.pop_front();
    ++evictions_;
  }
  entries_.insert(key);
  fifo_.push_back(key);
  return false;
}

void Tlb::FlushAll() {
  entries_.clear();
  fifo_.clear();
}

void Tlb::FlushAsid(Asid asid) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first == asid) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  fifo_.erase(std::remove_if(fifo_.begin(), fifo_.end(),
                             [asid](const Key& k) { return k.first == asid; }),
              fifo_.end());
}

void Tlb::FlushPage(Asid asid, Vaddr page_base) {
  Key key{asid, page_base};
  entries_.erase(key);
  fifo_.erase(std::remove(fifo_.begin(), fifo_.end(), key), fifo_.end());
}

TlbDomain::TlbDomain(size_t num_cpus, size_t tlb_capacity) {
  cpus_.reserve(num_cpus);
  for (size_t i = 0; i < num_cpus; ++i) {
    cpus_.emplace_back(tlb_capacity);
  }
}

void TlbDomain::SetActive(size_t cpu, Asid asid) { cpus_[cpu].active = asid; }

bool TlbDomain::Access(size_t cpu, Asid asid, Vaddr page_base) {
  return cpus_[cpu].tlb.Access(asid, page_base);
}

size_t TlbDomain::Shootdown(Asid asid, size_t initiator, SimClock* clock) {
  size_t ipis = 0;
  for (size_t i = 0; i < cpus_.size(); ++i) {
    if (i == initiator) {
      cpus_[i].tlb.FlushAsid(asid);
      if (clock != nullptr) {
        clock->Charge(CostKind::kTlbFlushLocal);
      }
      continue;
    }
    if (cpus_[i].active == asid) {
      cpus_[i].tlb.FlushAsid(asid);
      ++ipis;
      if (clock != nullptr) {
        clock->Charge(CostKind::kTlbShootdownIpi);
      }
    }
  }
  return ipis;
}

}  // namespace forklift::procsim
