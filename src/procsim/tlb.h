// forklift/procsim: TLB model with shootdown accounting.
//
// Relevant to two of the paper's claims: COW faults after fork pay not just a
// frame copy but a TLB invalidation, and on multiprocessors the write-protect
// pass fork performs on the *parent's* live address space requires shootdown
// IPIs to every CPU running it ("fork doesn't scale"). The model is a per-CPU
// set-of-pages cache with FIFO eviction — enough to count hits, misses, and
// the remote invalidations a real kernel would issue.
#ifndef SRC_PROCSIM_TLB_H_
#define SRC_PROCSIM_TLB_H_

#include <cstdint>
#include <deque>
#include <set>
#include <utility>
#include <vector>

#include "src/procsim/cost_model.h"
#include "src/procsim/page_table.h"

namespace forklift::procsim {

using Asid = uint64_t;  // address-space id; procsim uses the owning pid

class Tlb {
 public:
  explicit Tlb(size_t capacity) : capacity_(capacity) {}

  // True on hit; on miss the translation is inserted (FIFO eviction).
  bool Access(Asid asid, Vaddr page_base);

  void FlushAll();
  void FlushAsid(Asid asid);
  void FlushPage(Asid asid, Vaddr page_base);

  bool Contains(Asid asid, Vaddr page_base) const {
    return entries_.count({asid, page_base}) != 0;
  }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  size_t size() const { return entries_.size(); }

 private:
  using Key = std::pair<Asid, Vaddr>;

  size_t capacity_;
  std::set<Key> entries_;
  std::deque<Key> fifo_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

// A set of CPUs, each with a private TLB and a notion of which address space
// is currently active on it.
class TlbDomain {
 public:
  TlbDomain(size_t num_cpus, size_t tlb_capacity);

  size_t num_cpus() const { return cpus_.size(); }
  Tlb& cpu(size_t i) { return cpus_[i].tlb; }

  // Marks `asid` as running on `cpu` (kNoAsid to idle it).
  static constexpr Asid kNoAsid = 0;
  void SetActive(size_t cpu, Asid asid);
  Asid active(size_t cpu) const { return cpus_[cpu].active; }

  // One memory access from `cpu` in `asid`; charges the fault-free TLB cost
  // is the caller's business — this only tracks hit/miss state.
  bool Access(size_t cpu, Asid asid, Vaddr page_base);

  // Invalidate `asid` everywhere. CPUs other than `initiator` that are
  // actively running the address space cost one IPI each (charged to clock);
  // the initiator pays a local flush. Returns the number of IPIs sent.
  size_t Shootdown(Asid asid, size_t initiator, SimClock* clock);

 private:
  struct Cpu {
    Tlb tlb;
    Asid active = kNoAsid;
    explicit Cpu(size_t capacity) : tlb(capacity) {}
  };

  std::vector<Cpu> cpus_;
};

}  // namespace forklift::procsim

#endif  // SRC_PROCSIM_TLB_H_
