#include "src/procsim/trace.h"

#include <cstdio>

namespace forklift::procsim {

std::string TraceEntry::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "#%04llu t=%lluns pid=%llu %s%s%s",
                static_cast<unsigned long long>(seq),
                static_cast<unsigned long long>(sim_ns),
                static_cast<unsigned long long>(pid), op.c_str(),
                detail.empty() ? "" : " ", detail.c_str());
  return buf;
}

std::vector<std::string> KernelTracer::OpSequence() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) {
    out.push_back(e.op);
  }
  return out;
}

std::vector<TraceEntry> KernelTracer::ForPid(uint64_t pid) const {
  std::vector<TraceEntry> out;
  for (const auto& e : entries_) {
    if (e.pid == pid) {
      out.push_back(e);
    }
  }
  return out;
}

std::string KernelTracer::ToString() const {
  std::string out;
  for (const auto& e : entries_) {
    out += e.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace forklift::procsim
