// forklift/procsim: the kernel operation journal.
//
// A deterministic simulator's superpower is that the *exact* sequence of
// kernel operations is an assertable artifact. When a tracer is attached,
// SimKernel records every process-lifecycle operation with its simulated
// timestamp, so tests can pin down regressions as "the op sequence changed",
// and sim_explorer-style tools can narrate what the kernel did and why it
// cost what it cost.
#ifndef SRC_PROCSIM_TRACE_H_
#define SRC_PROCSIM_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace forklift::procsim {

struct TraceEntry {
  uint64_t seq = 0;      // 0-based, gapless
  uint64_t sim_ns = 0;   // clock AFTER the operation completed
  uint64_t pid = 0;      // acting process
  std::string op;        // "fork", "exec", ...
  std::string detail;    // op-specific, e.g. "child=3"

  std::string ToString() const;
};

class KernelTracer {
 public:
  void Record(uint64_t pid, std::string op, std::string detail, uint64_t sim_ns) {
    TraceEntry e;
    e.seq = entries_.size();
    e.sim_ns = sim_ns;
    e.pid = pid;
    e.op = std::move(op);
    e.detail = std::move(detail);
    entries_.push_back(std::move(e));
  }

  const std::vector<TraceEntry>& entries() const { return entries_; }
  void Clear() { entries_.clear(); }

  // Just the op names, in order — the usual assertion target.
  std::vector<std::string> OpSequence() const;
  // Entries for one pid.
  std::vector<TraceEntry> ForPid(uint64_t pid) const;

  std::string ToString() const;

 private:
  std::vector<TraceEntry> entries_;
};

}  // namespace forklift::procsim

#endif  // SRC_PROCSIM_TRACE_H_
