// forklift/spawn: the backend interface — a fully-resolved spawn request and
// the engines that can launch it.
//
// The paper compares fork+exec, vfork+exec, and posix_spawn; forklift makes
// them interchangeable engines behind one API so every experiment can hold the
// workload constant and vary only the creation primitive. A custom backend
// hook lets higher layers (the fork server) plug in without a dependency cycle.
#ifndef SRC_SPAWN_BACKEND_H_
#define SRC_SPAWN_BACKEND_H_

#include <sys/resource.h>
#include <sys/types.h>

#include <optional>
#include <string>
#include <vector>

#include "src/common/env.h"
#include "src/common/result.h"
#include "src/spawn/fd_actions.h"

namespace forklift {

enum class SpawnBackendKind {
  kForkExec,    // fork(2) + execve(2): the API under indictment
  kVfork,       // vfork(2) + execve(2): shares the AS, parent suspended
  kPosixSpawn,  // posix_spawn(3): the paper's recommended replacement
  kCloneVm,     // clone(CLONE_VM|CLONE_VFORK): glibc posix_spawn's own engine
  kCustom,      // user-provided engine (e.g. forkserver::ForkServerBackend)
};

const char* SpawnBackendKindName(SpawnBackendKind kind);

struct RlimitSpec {
  int resource;  // RLIMIT_*
  rlimit limit;
};

// Everything a backend needs, pre-resolved into stable storage. Nothing in
// here requires allocation to use, so the child side of fork/vfork can consume
// it async-signal-safely.
struct SpawnRequest {
  std::string program;          // path, or bare name if use_path_search
  bool use_path_search = false;
  ArgvBlock argv;               // argv[0] included
  ArgvBlock envp;               // full environment block
  CompiledFdPlan fd_plan;

  std::optional<std::string> cwd;
  std::optional<mode_t> umask_value;
  bool reset_signal_mask = true;      // unblock everything in the child
  bool reset_signal_handlers = true;  // restore SIG_DFL for caught signals
  bool new_session = false;           // setsid()
  std::optional<pid_t> process_group; // setpgid(0, value); 0 = own new group
  std::optional<int> nice_value;      // setpriority(PRIO_PROCESS, 0, value)
  std::vector<RlimitSpec> rlimits;
  // Close every fd > max(plan targets, stderr) in the child via close_range(2)
  // — the paper's fd-leak hazard, fixed wholesale.
  bool close_other_fds = false;
};

// A launch engine. Implementations must be thread-safe: Spawner is documented
// as callable from multiple threads concurrently (unlike fork+globals idioms).
class SpawnBackend {
 public:
  virtual ~SpawnBackend() = default;

  // Launches `req`; on success the child's exec has been confirmed (or the
  // backend documents it cannot confirm, cf. posix_spawn) and the pid is
  // returned. The caller owns reaping.
  virtual Result<pid_t> Launch(const SpawnRequest& req) = 0;

  virtual const char* Name() const = 0;
};

// The built-in engines. Stateless and reusable.
SpawnBackend& ForkExecBackend();
SpawnBackend& VforkBackend();
SpawnBackend& PosixSpawnBackend();
SpawnBackend& Clone3Backend();  // clone(CLONE_VM|CLONE_VFORK); vfork fallback off-Linux

}  // namespace forklift

#endif  // SRC_SPAWN_BACKEND_H_
