// The clone(2) CLONE_VM|CLONE_VFORK backend — fork's flag-proliferation
// endpoint (§5 of the paper: "fork now takes a growing matrix of flags"),
// and also the engine glibc's own posix_spawn uses internally: CLONE_VM
// shares the address space (vfork-speed creation, nothing copied), a
// caller-provided stack removes vfork's stack-aliasing fragility, and
// CLONE_VFORK suspends the parent until exec so the shared memory is
// race-free. Signal-handler reset is done by ChildExec as with the other
// fork-family engines (CLONE_CLEAR_SIGHAND needs clone3, whose raw syscall
// cannot be used safely through libc's syscall() wrapper — the child would
// resume on an empty stack inside a C frame; the clone() wrapper does the
// necessary assembly for us).
#include <sched.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <vector>

#include "src/common/pipe.h"
#include "src/spawn/backend.h"
#include "src/spawn/backend_common.h"

namespace forklift {

namespace {

#ifdef __linux__

struct CloneChildArgs {
  const SpawnRequest* req;
  const char* const* targets;
  int err_fd;
};

// Entry point on the dedicated child stack. Shares the parent's address
// space (CLONE_VM) but not its stack; the parent is suspended (CLONE_VFORK)
// until exec or _exit, so reads of the request are race-free.
int CloneChildMain(void* raw) {
  auto* args = static_cast<CloneChildArgs*>(raw);
  internal::ChildExec(*args->req, args->targets, args->err_fd);
  // ChildExec never returns.
}

class Clone3Engine : public SpawnBackend {
 public:
  Result<pid_t> Launch(const SpawnRequest& req) override {
    FORKLIFT_ASSIGN_OR_RETURN(std::vector<std::string> targets,
                              internal::ResolveExecTargets(req));
    std::vector<const char*> target_ptrs;
    target_ptrs.reserve(targets.size() + 1);
    for (const auto& t : targets) {
      target_ptrs.push_back(t.c_str());
    }
    target_ptrs.push_back(nullptr);

    FORKLIFT_ASSIGN_OR_RETURN(Pipe exec_pipe, MakePipe());

    // A modest dedicated stack: ChildExec's frames are shallow and the exec
    // replaces everything. 128 KiB leaves slack for libc path buffers.
    constexpr size_t kStackBytes = 128 * 1024;
    std::vector<uint64_t> stack(kStackBytes / sizeof(uint64_t));

    CloneChildArgs args;
    args.req = &req;
    args.targets = target_ptrs.data();
    args.err_fd = exec_pipe.write_end.get();

    // Stacks grow down on every architecture we target: pass the top.
    void* stack_top = stack.data() + stack.size();
    int pid = ::clone(CloneChildMain, stack_top, CLONE_VM | CLONE_VFORK | SIGCHLD, &args);
    if (pid < 0) {
      return ErrnoError("clone(CLONE_VM|CLONE_VFORK)");
    }
    exec_pipe.write_end.Reset();
    FORKLIFT_RETURN_IF_ERROR(internal::AwaitExec(exec_pipe.read_end.get(), pid));
    return pid;
  }

  const char* Name() const override { return "clone(CLONE_VM|CLONE_VFORK)"; }
};

#endif  // __linux__

}  // namespace

SpawnBackend& Clone3Backend() {
#ifdef __linux__
  static Clone3Engine engine;
  return engine;
#else
  return VforkBackend();  // portable fallback: closest semantics
#endif
}

}  // namespace forklift
