#include "src/spawn/backend_common.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "src/common/string_util.h"
#include "src/common/syscall.h"

#ifdef __linux__
#include <linux/close_range.h>
#include <sys/syscall.h>
#endif

namespace forklift {
namespace internal {

Result<std::vector<std::string>> ResolveExecTargets(const SpawnRequest& req) {
  std::vector<std::string> out;
  if (!req.use_path_search || req.program.find('/') != std::string::npos) {
    out.push_back(req.program);
    return out;
  }
  const char* path = std::getenv("PATH");
  std::string search = path != nullptr ? path : "/bin:/usr/bin";
  for (const auto& dir : Split(search, ':')) {
    std::string full = dir.empty() ? "./" + req.program : dir + "/" + req.program;
    out.push_back(std::move(full));
  }
  if (out.empty()) {
    return LogicalError("ResolveExecTargets: empty PATH");
  }
  return out;
}

namespace {

// Relocation target for the exec pipe: above the scratch range so fd-plan ops
// can never collide with it.
constexpr int kErrFdFloor = 1000;

// Writes the failure record and dies. Async-signal-safe.
[[noreturn]] void Fail(int err_fd, int err, const char* stage) {
  ExecFailure f;
  f.err = err;
  size_t i = 0;
  for (; stage[i] != '\0' && i < sizeof(f.stage) - 1; ++i) {
    f.stage[i] = stage[i];
  }
  for (; i < sizeof(f.stage); ++i) {
    f.stage[i] = '\0';
  }
  const char* p = reinterpret_cast<const char*>(&f);
  size_t left = sizeof(f);
  while (left > 0) {
    ssize_t n = ::write(err_fd, p, left);
    if (n <= 0) {
      break;  // nothing more we can do
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  _exit(127);
}

}  // namespace

void ChildExec(const SpawnRequest& req, const char* const* exec_paths, int err_fd) {
  // Move the error pipe out of the way of the fd plan and make sure it
  // disappears on exec.
  int high = ::fcntl(err_fd, F_DUPFD_CLOEXEC, kErrFdFloor);
  if (high >= 0) {
    ::close(err_fd);
    err_fd = high;
  }

  if (req.reset_signal_handlers) {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = SIG_DFL;
    for (int sig = 1; sig < NSIG; ++sig) {
      // SIGKILL/SIGSTOP fail with EINVAL; that is fine.
      ::sigaction(sig, &sa, nullptr);
    }
  }
  if (req.reset_signal_mask) {
    sigset_t empty;
    sigemptyset(&empty);
    if (::sigprocmask(SIG_SETMASK, &empty, nullptr) < 0) {
      Fail(err_fd, errno, "sigprocmask");
    }
  }

  if (req.new_session) {
    if (::setsid() < 0) {
      Fail(err_fd, errno, "setsid");
    }
  }
  if (req.process_group.has_value()) {
    if (::setpgid(0, *req.process_group) < 0) {
      Fail(err_fd, errno, "setpgid");
    }
  }
  if (req.umask_value.has_value()) {
    ::umask(*req.umask_value);
  }
  if (req.nice_value.has_value()) {
    if (::setpriority(PRIO_PROCESS, 0, *req.nice_value) < 0) {
      Fail(err_fd, errno, "setpriority");
    }
  }
  for (const auto& rl : req.rlimits) {
    if (::setrlimit(rl.resource, &rl.limit) < 0) {
      Fail(err_fd, errno, "setrlimit");
    }
  }
  if (req.cwd.has_value()) {
    if (::chdir(req.cwd->c_str()) < 0) {
      Fail(err_fd, errno, "chdir");
    }
  }

  int max_target = 2;
  for (const auto& op : req.fd_plan.ops) {
    switch (op.kind) {
      case CompiledFdOp::Kind::kDupToScratch: {
        if (::dup2(op.src_fd, op.scratch_fd) < 0) {
          Fail(err_fd, errno, "dup2(scratch)");
        }
        break;
      }
      case CompiledFdOp::Kind::kDup2: {
        if (op.src_fd == op.dst_fd) {
          int flags = ::fcntl(op.dst_fd, F_GETFD);
          if (flags < 0 || ::fcntl(op.dst_fd, F_SETFD, flags & ~FD_CLOEXEC) < 0) {
            Fail(err_fd, errno, "fcntl(inherit)");
          }
        } else if (::dup2(op.src_fd, op.dst_fd) < 0) {
          Fail(err_fd, errno, "dup2");
        }
        if (op.dst_fd > max_target) {
          max_target = op.dst_fd;
        }
        break;
      }
      case CompiledFdOp::Kind::kOpen: {
        int fd = ::open(op.path.c_str(), op.flags, op.mode);
        if (fd < 0) {
          Fail(err_fd, errno, "open");
        }
        if (fd != op.dst_fd) {
          if (::dup2(fd, op.dst_fd) < 0) {
            Fail(err_fd, errno, "dup2(open)");
          }
          ::close(fd);
        }
        if (op.dst_fd > max_target) {
          max_target = op.dst_fd;
        }
        break;
      }
      case CompiledFdOp::Kind::kClose: {
        if (::close(op.dst_fd) < 0 && errno != EBADF) {
          Fail(err_fd, errno, "close");
        }
        break;
      }
      case CompiledFdOp::Kind::kCloseScratch: {
        ::close(op.scratch_fd);
        break;
      }
    }
  }

#ifdef __linux__
  if (req.close_other_fds) {
    // Everything above the plan's highest target is forfeit, except the error
    // pipe (which is CLOEXEC and must survive until exec).
    unsigned int from = static_cast<unsigned int>(max_target) + 1;
    if (static_cast<int>(from) < err_fd) {
      ::syscall(SYS_close_range, from, static_cast<unsigned int>(err_fd - 1), 0u);
    }
    ::syscall(SYS_close_range, static_cast<unsigned int>(err_fd + 1), ~0u, 0u);
  }
#endif

  int last_err = ENOENT;
  for (const char* const* p = exec_paths; *p != nullptr; ++p) {
    ::execve(*p, req.argv.data(), req.envp.data());
    // Keep searching on "not here" errors; report anything else immediately.
    if (errno != ENOENT && errno != ENOTDIR && errno != EACCES) {
      Fail(err_fd, errno, "execve");
    }
    last_err = errno;
  }
  Fail(err_fd, last_err, "execve");
}

Status AwaitExec(int read_fd, pid_t pid) {
  ExecFailure f;
  auto n = ReadFull(read_fd, &f, sizeof(f));
  if (!n.ok()) {
    // The read failed but the child may be alive (possibly already exec'd).
    // Returning without reclaiming it would leak a running process AND a
    // zombie entry — the caller has no pid to clean up with. Kill and reap
    // before surfacing the error.
    (void)::kill(pid, SIGKILL);
    (void)WaitPid(pid);
    return Err(n.error());
  }
  if (*n == 0) {
    return Status::Ok();  // pipe closed by exec: success
  }
  // The child failed before exec; reap it so no zombie leaks, then report.
  (void)WaitPid(pid);
  if (*n != sizeof(f)) {
    return LogicalError("exec pipe: short failure record");
  }
  f.stage[sizeof(f.stage) - 1] = '\0';
  errno = f.err;
  return ErrnoError(std::string("child ") + f.stage);
}

}  // namespace internal
}  // namespace forklift
