// forklift/spawn: shared machinery for the fork- and vfork-based backends.
//
// The child side between fork()/vfork() and execve() may only use
// async-signal-safe primitives (the paper's thread-safety complaint §4: any
// other library code may observe a snapshot of locks held by threads that do
// not exist in the child). ChildExec therefore performs raw syscalls on
// pre-resolved, stable-storage inputs and reports failure through the classic
// CLOEXEC "exec pipe": if exec succeeds the pipe closes silently; if any stage
// fails the child writes {errno, stage-tag} and _exit(127)s, and the parent
// converts that to a clean Result error with the failing stage named.
#ifndef SRC_SPAWN_BACKEND_COMMON_H_
#define SRC_SPAWN_BACKEND_COMMON_H_

#include <sys/types.h>

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/spawn/backend.h"

namespace forklift {
namespace internal {

// Candidate executable paths, in try-order. Resolved in the parent, where
// allocation is legal; the child only walks the array.
Result<std::vector<std::string>> ResolveExecTargets(const SpawnRequest& req);

// Fixed-size record the child writes on failure. `stage` is a short tag like
// "execve" or "chdir".
struct ExecFailure {
  int32_t err;
  char stage[24];
};

// Child-side: applies `req`, then execve()s each of `exec_paths` (a
// NULL-terminated array of candidate c-strings) until one sticks. On any
// failure, reports through `err_fd` and _exit(127)s. Never returns.
// Async-signal-safe. `err_fd` may be any descriptor; it is relocated above the
// plan's fd range internally.
[[noreturn]] void ChildExec(const SpawnRequest& req, const char* const* exec_paths, int err_fd);

// Parent-side: waits for the exec pipe to close (success) or deliver an
// ExecFailure (failure; the dead child is reaped before returning the error).
Status AwaitExec(int read_fd, pid_t pid);

}  // namespace internal
}  // namespace forklift

#endif  // SRC_SPAWN_BACKEND_COMMON_H_
