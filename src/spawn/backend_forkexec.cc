// The fork(2)+execve(2) backend — the primitive the paper indicts. Kept
// faithful (a full COW address-space clone per spawn) so experiments measure
// the real thing; the only deviation from naive fork+exec is the exec pipe for
// error reporting, which adds two descriptors and no memory work.
#include <unistd.h>

#include <vector>

#include "src/common/pipe.h"
#include "src/spawn/backend.h"
#include "src/spawn/backend_common.h"

namespace forklift {

namespace {

class ForkExecEngine : public SpawnBackend {
 public:
  Result<pid_t> Launch(const SpawnRequest& req) override {
    FORKLIFT_ASSIGN_OR_RETURN(std::vector<std::string> targets,
                              internal::ResolveExecTargets(req));
    std::vector<const char*> target_ptrs;
    target_ptrs.reserve(targets.size() + 1);
    for (const auto& t : targets) {
      target_ptrs.push_back(t.c_str());
    }
    target_ptrs.push_back(nullptr);

    FORKLIFT_ASSIGN_OR_RETURN(Pipe exec_pipe, MakePipe());

    pid_t pid = ::fork();
    if (pid < 0) {
      return ErrnoError("fork");
    }
    if (pid == 0) {
      // Child. Only async-signal-safe work from here to exec.
      internal::ChildExec(req, target_ptrs.data(), exec_pipe.write_end.get());
    }
    exec_pipe.write_end.Reset();
    FORKLIFT_RETURN_IF_ERROR(internal::AwaitExec(exec_pipe.read_end.get(), pid));
    return pid;
  }

  const char* Name() const override { return "fork+exec"; }
};

}  // namespace

SpawnBackend& ForkExecBackend() {
  static ForkExecEngine engine;
  return engine;
}

const char* SpawnBackendKindName(SpawnBackendKind kind) {
  switch (kind) {
    case SpawnBackendKind::kForkExec:
      return "fork+exec";
    case SpawnBackendKind::kVfork:
      return "vfork+exec";
    case SpawnBackendKind::kPosixSpawn:
      return "posix_spawn";
    case SpawnBackendKind::kCloneVm:
      return "clone_vm";
    case SpawnBackendKind::kCustom:
      return "custom";
  }
  return "?";
}

}  // namespace forklift
