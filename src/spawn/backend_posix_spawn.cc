// The posix_spawn(3) backend — the replacement the paper recommends. The
// request's compiled fd plan lowers 1:1 onto posix_spawn file-actions; the
// attributes map onto spawn attrs where POSIX (plus glibc extensions) provide
// them, and produce a clean "unsupported" error where they do not — that gap
// is itself one of the paper's observations (spawn APIs lag fork's
// flexibility), and bench/tab1_api_matrix reports it as data.
#include <signal.h>
#include <spawn.h>
#include <unistd.h>

#include <vector>

#include "src/spawn/backend.h"
#include "src/spawn/backend_common.h"

namespace forklift {

namespace {

class ScopedFileActions {
 public:
  ScopedFileActions() { posix_spawn_file_actions_init(&fa_); }
  ~ScopedFileActions() { posix_spawn_file_actions_destroy(&fa_); }
  ScopedFileActions(const ScopedFileActions&) = delete;
  ScopedFileActions& operator=(const ScopedFileActions&) = delete;

  posix_spawn_file_actions_t* get() { return &fa_; }

 private:
  posix_spawn_file_actions_t fa_;
};

class ScopedSpawnAttr {
 public:
  ScopedSpawnAttr() { posix_spawnattr_init(&attr_); }
  ~ScopedSpawnAttr() { posix_spawnattr_destroy(&attr_); }
  ScopedSpawnAttr(const ScopedSpawnAttr&) = delete;
  ScopedSpawnAttr& operator=(const ScopedSpawnAttr&) = delete;

  posix_spawnattr_t* get() { return &attr_; }

 private:
  posix_spawnattr_t attr_;
};

class PosixSpawnEngine : public SpawnBackend {
 public:
  Result<pid_t> Launch(const SpawnRequest& req) override {
    // Capability gaps, reported rather than silently dropped.
    if (!req.rlimits.empty()) {
      return LogicalError("posix_spawn backend: rlimits are not expressible in posix_spawn");
    }
    if (req.umask_value.has_value()) {
      return LogicalError("posix_spawn backend: umask is not expressible in posix_spawn");
    }
    if (req.nice_value.has_value()) {
      return LogicalError("posix_spawn backend: niceness is not expressible in posix_spawn");
    }

    ScopedFileActions fa;
    for (const auto& op : req.fd_plan.ops) {
      int rc = 0;
      switch (op.kind) {
        case CompiledFdOp::Kind::kDupToScratch:
          rc = posix_spawn_file_actions_adddup2(fa.get(), op.src_fd, op.scratch_fd);
          break;
        case CompiledFdOp::Kind::kDup2:
          // src == dst is the POSIX-specified "clear CLOEXEC" idiom.
          rc = posix_spawn_file_actions_adddup2(fa.get(), op.src_fd, op.dst_fd);
          break;
        case CompiledFdOp::Kind::kOpen:
          rc = posix_spawn_file_actions_addopen(fa.get(), op.dst_fd, op.path.c_str(), op.flags,
                                                op.mode);
          break;
        case CompiledFdOp::Kind::kClose:
          rc = posix_spawn_file_actions_addclose(fa.get(), op.dst_fd);
          break;
        case CompiledFdOp::Kind::kCloseScratch:
          rc = posix_spawn_file_actions_addclose(fa.get(), op.scratch_fd);
          break;
      }
      if (rc != 0) {
        errno = rc;
        return ErrnoError("posix_spawn_file_actions");
      }
    }

#if defined(__GLIBC__)
    if (req.cwd.has_value()) {
      int rc = posix_spawn_file_actions_addchdir_np(fa.get(), req.cwd->c_str());
      if (rc != 0) {
        errno = rc;
        return ErrnoError("posix_spawn_file_actions_addchdir_np");
      }
    }
    if (req.close_other_fds) {
      int max_target = 2;
      for (const auto& op : req.fd_plan.ops) {
        if (op.dst_fd > max_target) {
          max_target = op.dst_fd;
        }
      }
      int rc = posix_spawn_file_actions_addclosefrom_np(fa.get(), max_target + 1);
      if (rc != 0) {
        errno = rc;
        return ErrnoError("posix_spawn_file_actions_addclosefrom_np");
      }
    }
#else
    if (req.cwd.has_value()) {
      return LogicalError("posix_spawn backend: chdir requires glibc");
    }
    if (req.close_other_fds) {
      return LogicalError("posix_spawn backend: closefrom requires glibc");
    }
#endif

    ScopedSpawnAttr attr;
    short flags = 0;  // NOLINT(runtime/int): posix_spawnattr_setflags takes short
    if (req.reset_signal_mask) {
      sigset_t empty;
      sigemptyset(&empty);
      posix_spawnattr_setsigmask(attr.get(), &empty);
      flags |= POSIX_SPAWN_SETSIGMASK;
    }
    if (req.reset_signal_handlers) {
      sigset_t all;
      sigfillset(&all);
      posix_spawnattr_setsigdefault(attr.get(), &all);
      flags |= POSIX_SPAWN_SETSIGDEF;
    }
#ifdef POSIX_SPAWN_SETSID
    if (req.new_session) {
      flags |= POSIX_SPAWN_SETSID;
    }
#else
    if (req.new_session) {
      return LogicalError("posix_spawn backend: setsid not supported by this libc");
    }
#endif
    if (req.process_group.has_value()) {
      posix_spawnattr_setpgroup(attr.get(), *req.process_group);
      flags |= POSIX_SPAWN_SETPGROUP;
    }
    posix_spawnattr_setflags(attr.get(), flags);

    pid_t pid = -1;
    int rc;
    if (req.use_path_search) {
      rc = ::posix_spawnp(&pid, req.program.c_str(), fa.get(), attr.get(), req.argv.data(),
                          req.envp.data());
    } else {
      rc = ::posix_spawn(&pid, req.program.c_str(), fa.get(), attr.get(), req.argv.data(),
                         req.envp.data());
    }
    if (rc != 0) {
      errno = rc;
      return ErrnoError("posix_spawn");
    }
    return pid;
  }

  const char* Name() const override { return "posix_spawn"; }
};

}  // namespace

SpawnBackend& PosixSpawnBackend() {
  static PosixSpawnEngine engine;
  return engine;
}

}  // namespace forklift
