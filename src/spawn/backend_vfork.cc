// The vfork(2)+execve(2) backend. vfork shares the parent's address space and
// suspends the parent until the child execs or exits, so process creation cost
// is independent of parent memory size (the paper's Figure 1 shows it flat
// where fork grows linearly). The price is the API's notorious fragility: the
// child runs on the parent's stack, so everything it touches must be dead by
// the time the parent resumes. We confine the child to a noinline helper whose
// frames sit below the vfork frame and which terminates only via exec or
// _exit — the same discipline glibc's posix_spawn uses internally.
#include <unistd.h>

#include <vector>

#include "src/common/pipe.h"
#include "src/spawn/backend.h"
#include "src/spawn/backend_common.h"

namespace forklift {

namespace {

// Must not be inlined into the vfork frame: its locals live strictly below the
// suspended parent's stack pointer and are dead when the parent resumes.
[[gnu::noinline]] void VforkChild(const SpawnRequest& req, const char* const* targets,
                                  int err_fd) {
  internal::ChildExec(req, targets, err_fd);
}

class VforkEngine : public SpawnBackend {
 public:
  Result<pid_t> Launch(const SpawnRequest& req) override {
    FORKLIFT_ASSIGN_OR_RETURN(std::vector<std::string> targets,
                              internal::ResolveExecTargets(req));
    std::vector<const char*> target_ptrs;
    target_ptrs.reserve(targets.size() + 1);
    for (const auto& t : targets) {
      target_ptrs.push_back(t.c_str());
    }
    target_ptrs.push_back(nullptr);

    FORKLIFT_ASSIGN_OR_RETURN(Pipe exec_pipe, MakePipe());

    // Everything the child needs is resolved before the vfork so the child
    // performs no allocation and writes no parent-visible state.
    const char* const* targets_ptr = target_ptrs.data();
    int err_fd = exec_pipe.write_end.get();
    const SpawnRequest* req_ptr = &req;

    pid_t pid = ::vfork();
    if (pid < 0) {
      return ErrnoError("vfork");
    }
    if (pid == 0) {
      VforkChild(*req_ptr, targets_ptr, err_fd);
      _exit(127);  // unreachable; ChildExec never returns
    }
    exec_pipe.write_end.Reset();
    FORKLIFT_RETURN_IF_ERROR(internal::AwaitExec(exec_pipe.read_end.get(), pid));
    return pid;
  }

  const char* Name() const override { return "vfork+exec"; }
};

}  // namespace

SpawnBackend& VforkBackend() {
  static VforkEngine engine;
  return engine;
}

}  // namespace forklift
