#include "src/spawn/child.h"

#include <signal.h>
#include <sys/epoll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>

#include "src/common/clock.h"
#include "src/common/log.h"
#include "src/common/reactor.h"

namespace forklift {

Child::~Child() {
  if (valid() && !reaped_.has_value()) {
    FORKLIFT_WARN("Child handle for pid %d dropped without Wait(); process not reaped",
                  static_cast<int>(pid_));
  }
}

Child::Child(Child&& other) noexcept
    : pid_(other.pid_),
      reaped_(other.reaped_),
      timeline_(other.timeline_),
      stdin_fd_(std::move(other.stdin_fd_)),
      stdout_fd_(std::move(other.stdout_fd_)),
      stderr_fd_(std::move(other.stderr_fd_)) {
  other.pid_ = -1;
  other.reaped_.reset();
  other.timeline_ = SpawnTimeline{};
}

Child& Child::operator=(Child&& other) noexcept {
  if (this != &other) {
    if (valid() && !reaped_.has_value()) {
      FORKLIFT_WARN("Child handle for pid %d overwritten without Wait()",
                    static_cast<int>(pid_));
    }
    pid_ = other.pid_;
    reaped_ = other.reaped_;
    timeline_ = other.timeline_;
    stdin_fd_ = std::move(other.stdin_fd_);
    stdout_fd_ = std::move(other.stdout_fd_);
    stderr_fd_ = std::move(other.stderr_fd_);
    other.pid_ = -1;
    other.reaped_.reset();
    other.timeline_ = SpawnTimeline{};
  }
  return *this;
}

void Child::SetReaped(ExitStatus status) {
  reaped_ = status;
  if (timeline_.exit_observed_ns == 0) {
    timeline_.exit_observed_ns = MonotonicNanos();
    // Children without spawn instrumentation (bare Child(pid) handles, e.g.
    // the fork-server client's remote pids) stay out of the global counters.
    if (timeline_.exec_confirmed_ns != 0) {
      SpawnMetrics::Global().RecordExitObserved(timeline_);
    }
  }
}

Result<ExitStatus> Child::Wait() {
  if (reaped_.has_value()) {
    return *reaped_;
  }
  if (!valid()) {
    return LogicalError("Wait on invalid Child");
  }
  FORKLIFT_ASSIGN_OR_RETURN(ExitStatus st, WaitForExit(pid_));
  SetReaped(st);
  return st;
}

Result<std::optional<ExitStatus>> Child::TryWait() {
  if (reaped_.has_value()) {
    return std::optional<ExitStatus>(*reaped_);
  }
  if (!valid()) {
    return LogicalError("TryWait on invalid Child");
  }
  for (;;) {
    int status = 0;
    pid_t r = ::waitpid(pid_, &status, WNOHANG);
    if (r == 0) {
      return std::optional<ExitStatus>();
    }
    if (r == pid_) {
      SetReaped(DecodeWaitStatus(status));
      return std::optional<ExitStatus>(*reaped_);
    }
    if (errno != EINTR) {
      return ErrnoError("waitpid(WNOHANG)");
    }
  }
}

Result<std::optional<ExitStatus>> Child::WaitDeadline(double timeout_seconds) {
  // Fast path: already exited (or reaped).
  FORKLIFT_ASSIGN_OR_RETURN(std::optional<ExitStatus> st, TryWait());
  if (st.has_value()) {
    return st;
  }

  // Park in a reactor until the pidfd (or its poll-fallback) reports the exit
  // or the deadline timer fires — no sleep loop in either mode.
  FORKLIFT_ASSIGN_OR_RETURN(Reactor reactor, Reactor::Create());
  bool exited = false;
  bool expired = false;
  FORKLIFT_ASSIGN_OR_RETURN(ChildWatch watch,
                            ChildWatch::Arm(reactor, pid_, [&exited] { exited = true; }));
  reactor.AddTimerAfter(timeout_seconds, [&expired] { expired = true; });
  while (!exited && !expired) {
    FORKLIFT_RETURN_IF_ERROR(reactor.PollOnce(-1));
  }
  if (!exited) {
    return std::optional<ExitStatus>();
  }
  return TryWait();
}

Status Child::Kill(int sig) {
  if (!valid()) {
    return LogicalError("Kill on invalid Child");
  }
  if (reaped_.has_value()) {
    return LogicalError("Kill on already-reaped Child");
  }
  if (::kill(pid_, sig) < 0) {
    return ErrnoError("kill");
  }
  return Status::Ok();
}

Status Child::KillAndWait() {
  if (reaped_.has_value()) {
    return Status::Ok();
  }
  FORKLIFT_RETURN_IF_ERROR(Kill(SIGKILL));
  auto res = Wait();
  if (!res.ok()) {
    return Err(res.error());
  }
  return Status::Ok();
}

Result<internal::StdioDrainResult> internal::DrainStdioUntilClosed(
    UniqueFd& stdin_fd, UniqueFd& stdout_fd, UniqueFd& stderr_fd, std::string_view input,
    pid_t pid, const std::function<void()>& poll_exit) {
  // Non-blocking everywhere so a child that stalls on one stream can't wedge
  // us on another; one reactor multiplexes all three streams plus the child's
  // exit, so output and the exit notification arrive from a single wait.
  struct Stream {
    UniqueFd* fd;
    std::string data;
    bool open;
  };
  Stream out{&stdout_fd, {}, stdout_fd.valid()};
  Stream err{&stderr_fd, {}, stderr_fd.valid()};
  if (out.open) {
    FORKLIFT_RETURN_IF_ERROR(SetNonBlocking(out.fd->get(), true));
  }
  if (err.open) {
    FORKLIFT_RETURN_IF_ERROR(SetNonBlocking(err.fd->get(), true));
  }

  size_t in_off = 0;
  bool in_open = stdin_fd.valid();
  if (!in_open && !input.empty()) {
    return LogicalError("Communicate: input given but stdin was not piped");
  }
  if (in_open && input.empty()) {
    stdin_fd.Reset();  // nothing to write: give the child EOF immediately
    in_open = false;
  }
  if (in_open) {
    FORKLIFT_RETURN_IF_ERROR(SetNonBlocking(stdin_fd.get(), true));
  }

  FORKLIFT_ASSIGN_OR_RETURN(Reactor reactor, Reactor::Create());
  Status stream_error;

  auto close_stdin = [&] {
    (void)reactor.RemoveFd(stdin_fd.get());
    stdin_fd.Reset();
    in_open = false;
  };

  if (in_open) {
    FORKLIFT_RETURN_IF_ERROR(reactor.AddFd(stdin_fd.get(), EPOLLOUT, [&](uint32_t revents) {
      if ((revents & (EPOLLERR | EPOLLHUP)) != 0 && (revents & EPOLLOUT) == 0) {
        // Child closed its stdin (EPIPE side); stop writing.
        close_stdin();
        return;
      }
      ssize_t w = ::write(stdin_fd.get(), input.data() + in_off, input.size() - in_off);
      if (w < 0) {
        if (errno == EPIPE) {
          close_stdin();
        } else if (errno != EINTR && errno != EAGAIN) {
          stream_error = ErrnoError("write to child stdin");
        }
        return;
      }
      in_off += static_cast<size_t>(w);
      if (in_off == input.size()) {
        close_stdin();  // EOF to the child
      }
    }));
  }

  auto drain = [&](Stream& s) {
    char buf[16384];
    for (;;) {
      ssize_t r = ::read(s.fd->get(), buf, sizeof(buf));
      if (r > 0) {
        s.data.append(buf, static_cast<size_t>(r));
        if (static_cast<size_t>(r) < sizeof(buf)) {
          return;
        }
        continue;
      }
      if (r == 0) {
        (void)reactor.RemoveFd(s.fd->get());
        s.fd->Reset();
        s.open = false;
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return;
      }
      if (errno != EINTR) {
        stream_error = ErrnoError("read from child");
        return;
      }
    }
  };
  if (out.open) {
    FORKLIFT_RETURN_IF_ERROR(
        reactor.AddFd(out.fd->get(), EPOLLIN, [&](uint32_t) { drain(out); }));
  }
  if (err.open) {
    FORKLIFT_RETURN_IF_ERROR(
        reactor.AddFd(err.fd->get(), EPOLLIN, [&](uint32_t) { drain(err); }));
  }

  // Exit detection shares the epoll set: the instant the child becomes
  // waitable it is reaped (stamping exit-observed), even while streams are
  // still draining.
  FORKLIFT_ASSIGN_OR_RETURN(ChildWatch watch, ChildWatch::Arm(reactor, pid, poll_exit));

  while (in_open || out.open || err.open) {
    FORKLIFT_RETURN_IF_ERROR(reactor.PollOnce(-1));
    if (!stream_error.ok()) {
      return Err(stream_error.error());
    }
  }
  watch.Disarm();

  StdioDrainResult result;
  result.stdout_data = std::move(out.data);
  result.stderr_data = std::move(err.data);
  return result;
}

Result<Child::Outcome> Child::Communicate(std::string_view input) {
  FORKLIFT_ASSIGN_OR_RETURN(
      internal::StdioDrainResult drained,
      internal::DrainStdioUntilClosed(stdin_fd_, stdout_fd_, stderr_fd_, input, pid_,
                                      [this] { (void)TryWait(); }));
  FORKLIFT_ASSIGN_OR_RETURN(ExitStatus st, Wait());
  Outcome oc;
  oc.status = st;
  oc.stdout_data = std::move(drained.stdout_data);
  oc.stderr_data = std::move(drained.stderr_data);
  return oc;
}

}  // namespace forklift
