#include "src/spawn/child.h"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/syscall.h>
#endif

#include <cerrno>

#include "src/common/clock.h"
#include "src/common/log.h"

namespace forklift {

Child::~Child() {
  if (valid() && !reaped_.has_value()) {
    FORKLIFT_WARN("Child handle for pid %d dropped without Wait(); process not reaped",
                  static_cast<int>(pid_));
  }
}

Child::Child(Child&& other) noexcept
    : pid_(other.pid_),
      reaped_(other.reaped_),
      stdin_fd_(std::move(other.stdin_fd_)),
      stdout_fd_(std::move(other.stdout_fd_)),
      stderr_fd_(std::move(other.stderr_fd_)) {
  other.pid_ = -1;
  other.reaped_.reset();
}

Child& Child::operator=(Child&& other) noexcept {
  if (this != &other) {
    if (valid() && !reaped_.has_value()) {
      FORKLIFT_WARN("Child handle for pid %d overwritten without Wait()",
                    static_cast<int>(pid_));
    }
    pid_ = other.pid_;
    reaped_ = other.reaped_;
    stdin_fd_ = std::move(other.stdin_fd_);
    stdout_fd_ = std::move(other.stdout_fd_);
    stderr_fd_ = std::move(other.stderr_fd_);
    other.pid_ = -1;
    other.reaped_.reset();
  }
  return *this;
}

Result<ExitStatus> Child::Wait() {
  if (reaped_.has_value()) {
    return *reaped_;
  }
  if (!valid()) {
    return LogicalError("Wait on invalid Child");
  }
  FORKLIFT_ASSIGN_OR_RETURN(ExitStatus st, WaitForExit(pid_));
  reaped_ = st;
  return st;
}

Result<std::optional<ExitStatus>> Child::TryWait() {
  if (reaped_.has_value()) {
    return std::optional<ExitStatus>(*reaped_);
  }
  if (!valid()) {
    return LogicalError("TryWait on invalid Child");
  }
  for (;;) {
    int status = 0;
    pid_t r = ::waitpid(pid_, &status, WNOHANG);
    if (r == 0) {
      return std::optional<ExitStatus>();
    }
    if (r == pid_) {
      reaped_ = DecodeWaitStatus(status);
      return std::optional<ExitStatus>(*reaped_);
    }
    if (errno != EINTR) {
      return ErrnoError("waitpid(WNOHANG)");
    }
  }
}

Result<std::optional<ExitStatus>> Child::WaitWithTimeout(double timeout_seconds) {
  // Fast path: already exited (or reaped).
  FORKLIFT_ASSIGN_OR_RETURN(std::optional<ExitStatus> st, TryWait());
  if (st.has_value()) {
    return st;
  }

#ifdef __linux__
  // pidfd path: block in poll(2) until exit or deadline — no polling loop.
  int pidfd = static_cast<int>(::syscall(SYS_pidfd_open, pid_, 0));
  if (pidfd >= 0) {
    UniqueFd guard(pidfd);
    Stopwatch sw;
    for (;;) {
      double remaining = timeout_seconds - sw.ElapsedSeconds();
      if (remaining <= 0) {
        return std::optional<ExitStatus>();
      }
      pollfd pfd{pidfd, POLLIN, 0};
      int rc = ::poll(&pfd, 1, static_cast<int>(remaining * 1000) + 1);
      if (rc < 0) {
        if (errno == EINTR) {
          continue;
        }
        return ErrnoError("poll(pidfd)");
      }
      if (rc == 0) {
        return std::optional<ExitStatus>();
      }
      return TryWait();
    }
  }
  // pidfd_open can fail (ESRCH race, old kernel, seccomp): fall through.
#endif

  // Portable fallback: poll with exponential backoff.
  Stopwatch sw;
  uint64_t sleep_ns = 50'000;  // 50us initial poll interval
  for (;;) {
    FORKLIFT_ASSIGN_OR_RETURN(st, TryWait());
    if (st.has_value()) {
      return st;
    }
    if (sw.ElapsedSeconds() >= timeout_seconds) {
      return std::optional<ExitStatus>();
    }
    timespec ts{0, static_cast<long>(sleep_ns)};
    ::nanosleep(&ts, nullptr);
    sleep_ns = std::min<uint64_t>(sleep_ns * 2, 5'000'000);
  }
}

Status Child::Kill(int sig) {
  if (!valid()) {
    return LogicalError("Kill on invalid Child");
  }
  if (reaped_.has_value()) {
    return LogicalError("Kill on already-reaped Child");
  }
  if (::kill(pid_, sig) < 0) {
    return ErrnoError("kill");
  }
  return Status::Ok();
}

Status Child::KillAndWait() {
  if (reaped_.has_value()) {
    return Status::Ok();
  }
  FORKLIFT_RETURN_IF_ERROR(Kill(SIGKILL));
  auto res = Wait();
  if (!res.ok()) {
    return Err(res.error());
  }
  return Status::Ok();
}

Result<Child::Outcome> Child::Communicate(std::string_view input) {
  // Non-blocking everywhere so a child that stalls on one stream can't wedge
  // us on another.
  struct Stream {
    UniqueFd* fd;
    std::string data;
    bool open;
  };
  Stream out{&stdout_fd_, {}, stdout_fd_.valid()};
  Stream err{&stderr_fd_, {}, stderr_fd_.valid()};
  if (out.open) {
    FORKLIFT_RETURN_IF_ERROR(SetNonBlocking(out.fd->get(), true));
  }
  if (err.open) {
    FORKLIFT_RETURN_IF_ERROR(SetNonBlocking(err.fd->get(), true));
  }

  size_t in_off = 0;
  bool in_open = stdin_fd_.valid();
  if (!in_open && !input.empty()) {
    return LogicalError("Communicate: input given but stdin was not piped");
  }
  if (in_open && input.empty()) {
    stdin_fd_.Reset();  // nothing to write: give the child EOF immediately
    in_open = false;
  }
  if (in_open) {
    FORKLIFT_RETURN_IF_ERROR(SetNonBlocking(stdin_fd_.get(), true));
  }

  while (in_open || out.open || err.open) {
    pollfd fds[3];
    int n = 0;
    int in_idx = -1, out_idx = -1, err_idx = -1;
    if (in_open) {
      in_idx = n;
      fds[n++] = {stdin_fd_.get(), POLLOUT, 0};
    }
    if (out.open) {
      out_idx = n;
      fds[n++] = {out.fd->get(), POLLIN, 0};
    }
    if (err.open) {
      err_idx = n;
      fds[n++] = {err.fd->get(), POLLIN, 0};
    }
    int rc = ::poll(fds, static_cast<nfds_t>(n), -1);
    if (rc < 0) {
      if (errno == EINTR) {
        continue;
      }
      return ErrnoError("poll");
    }

    if (in_idx >= 0 && (fds[in_idx].revents & (POLLOUT | POLLERR | POLLHUP)) != 0) {
      if ((fds[in_idx].revents & (POLLERR | POLLHUP)) != 0 && (fds[in_idx].revents & POLLOUT) == 0) {
        // Child closed its stdin (EPIPE side); stop writing.
        stdin_fd_.Reset();
        in_open = false;
      } else {
        ssize_t w = ::write(stdin_fd_.get(), input.data() + in_off, input.size() - in_off);
        if (w < 0) {
          if (errno == EPIPE) {
            stdin_fd_.Reset();
            in_open = false;
          } else if (errno != EINTR && errno != EAGAIN) {
            return ErrnoError("write to child stdin");
          }
        } else {
          in_off += static_cast<size_t>(w);
          if (in_off == input.size()) {
            stdin_fd_.Reset();  // EOF to the child
            in_open = false;
          }
        }
      }
    }

    auto drain = [](Stream& s) -> Status {
      char buf[16384];
      for (;;) {
        ssize_t r = ::read(s.fd->get(), buf, sizeof(buf));
        if (r > 0) {
          s.data.append(buf, static_cast<size_t>(r));
          if (static_cast<size_t>(r) < sizeof(buf)) {
            return Status::Ok();
          }
          continue;
        }
        if (r == 0) {
          s.fd->Reset();
          s.open = false;
          return Status::Ok();
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          return Status::Ok();
        }
        if (errno != EINTR) {
          return ErrnoError("read from child");
        }
      }
    };
    if (out_idx >= 0 && (fds[out_idx].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      FORKLIFT_RETURN_IF_ERROR(drain(out));
    }
    if (err_idx >= 0 && (fds[err_idx].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      FORKLIFT_RETURN_IF_ERROR(drain(err));
    }
  }

  FORKLIFT_ASSIGN_OR_RETURN(ExitStatus st, Wait());
  Outcome oc;
  oc.status = st;
  oc.stdout_data = std::move(out.data);
  oc.stderr_data = std::move(err.data);
  return oc;
}

}  // namespace forklift
