// forklift/spawn: Child — the handle a spawn returns.
//
// Owns the child's pid for reaping plus any pipe ends the Spawner set up for
// stdio capture. Destroying an un-reaped Child does NOT kill or reap it (that
// would turn a dropped handle into a silent SIGKILL); it logs a warning and
// leaks the zombie to the caller's wait discipline, exactly like std::thread's
// terminate-on-drop is replaced with a softer failure here because processes,
// unlike threads, are reaped by init eventually.
#ifndef SRC_SPAWN_CHILD_H_
#define SRC_SPAWN_CHILD_H_

#include <sys/types.h>

#include <csignal>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "src/common/result.h"
#include "src/common/syscall.h"
#include "src/common/unique_fd.h"
#include "src/spawn/metrics.h"

namespace forklift {

namespace internal {

// The reactor-multiplexed stdio pump shared by Child::Communicate and
// ProcessHandle::Communicate: writes `input` to `stdin_fd` (then closes it),
// drains `stdout_fd`/`stderr_fd` to EOF, and keeps an exit watch on `pid`
// armed so `poll_exit` reaps the process the instant it becomes waitable —
// while streams are still draining, from the same epoll set. The final
// blocking reap is the caller's (mechanism-specific) job.
struct StdioDrainResult {
  std::string stdout_data;
  std::string stderr_data;
};
Result<StdioDrainResult> DrainStdioUntilClosed(UniqueFd& stdin_fd, UniqueFd& stdout_fd,
                                               UniqueFd& stderr_fd, std::string_view input,
                                               pid_t pid,
                                               const std::function<void()>& poll_exit);

}  // namespace internal

class Child {
 public:
  Child() = default;
  explicit Child(pid_t pid) : pid_(pid) {}
  ~Child();

  Child(const Child&) = delete;
  Child& operator=(const Child&) = delete;
  Child(Child&& other) noexcept;
  Child& operator=(Child&& other) noexcept;

  pid_t pid() const { return pid_; }
  bool valid() const { return pid_ > 0; }

  // Blocks until the child exits; reaps it. Idempotent: after the first
  // successful Wait, returns the cached status.
  Result<ExitStatus> Wait();

  // Non-blocking: returns nullopt if still running.
  Result<std::optional<ExitStatus>> TryWait();

  // Blocks until exit or deadline, whichever first; returns nullopt on
  // timeout (child keeps running). Event-driven: parks in a Reactor on a
  // pidfd (timer-poll fallback on pre-5.3 kernels) — there is no sleep loop,
  // so the exit is observed within a scheduler quantum.
  Result<std::optional<ExitStatus>> WaitDeadline(double timeout_seconds);

  // kill(2).
  Status Kill(int sig = SIGTERM);

  // SIGKILL then reap. Use from tests' cleanup paths.
  Status KillAndWait();

  // Pipe ends owned by this handle when the Spawner configured Stdio::kPipe.
  // stdin_fd is the write end; stdout/stderr are read ends.
  UniqueFd& stdin_fd() { return stdin_fd_; }
  UniqueFd& stdout_fd() { return stdout_fd_; }
  UniqueFd& stderr_fd() { return stderr_fd_; }

  // Writes `input` to the child's stdin (then closes it), drains stdout and
  // stderr concurrently, and reaps the child. Stdio draining and exit
  // detection share one Reactor epoll set, so output and the exit
  // notification arrive from a single wait — deadlock-free even when the
  // child interleaves output on both streams.
  struct Outcome {
    ExitStatus status;
    std::string stdout_data;
    std::string stderr_data;
  };
  Result<Outcome> Communicate(std::string_view input = "");

  // Phase timestamps for this spawn (submit/exec-confirmed filled by the
  // Spawner; exit-observed stamped at the first reap).
  const SpawnTimeline& timeline() const { return timeline_; }

 private:
  friend class Spawner;

  // Central reap bookkeeping: caches the status, stamps exit-observed, and
  // feeds SpawnMetrics. Every path that learns the exit status funnels here.
  void SetReaped(ExitStatus status);

  pid_t pid_ = -1;
  std::optional<ExitStatus> reaped_;
  SpawnTimeline timeline_;
  UniqueFd stdin_fd_;
  UniqueFd stdout_fd_;
  UniqueFd stderr_fd_;
};

}  // namespace forklift

#endif  // SRC_SPAWN_CHILD_H_
