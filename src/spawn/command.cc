#include "src/spawn/command.h"

#include <utility>

#include "src/common/pipe.h"
#include "src/common/syscall.h"

namespace forklift {

Result<RunResult> RunAndCapture(const std::string& program, const std::vector<std::string>& args,
                                const RunOptions& opts) {
  Spawner spawner(program);
  spawner.Args(args)
      .SetStdout(Stdio::Pipe())
      .SetStderr(Stdio::Pipe())
      .SetBackend(opts.backend);
  if (!opts.stdin_data.empty()) {
    spawner.SetStdin(Stdio::Pipe());
  } else {
    spawner.SetStdin(Stdio::Null());
  }
  FORKLIFT_ASSIGN_OR_RETURN(Child child, spawner.Spawn());

  if (opts.timeout_seconds > 0) {
    // Supervised mode: drain with a deadline. Simpler discipline: communicate
    // in a watchdog loop is overkill here; Communicate blocks until EOF, which
    // a runaway child may never deliver, so enforce the deadline first on exit
    // and then drain what the (now dead) child produced.
    FORKLIFT_ASSIGN_OR_RETURN(auto maybe_status, child.WaitDeadline(opts.timeout_seconds));
    if (!maybe_status.has_value()) {
      (void)child.KillAndWait();
      return LogicalError("RunAndCapture: timeout after " +
                          std::to_string(opts.timeout_seconds) + "s running " + program);
    }
  }

  FORKLIFT_ASSIGN_OR_RETURN(Child::Outcome oc, child.Communicate(opts.stdin_data));
  RunResult r;
  r.status = oc.status;
  r.stdout_data = std::move(oc.stdout_data);
  r.stderr_data = std::move(oc.stderr_data);
  return r;
}

Result<PipelineResult> RunPipeline(const std::vector<PipelineStage>& stages,
                                   const std::string& stdin_data, SpawnBackendKind backend) {
  if (stages.empty()) {
    return LogicalError("RunPipeline: no stages");
  }

  // Pipes between consecutive stages. pipes[i] connects stage i's stdout to
  // stage i+1's stdin.
  std::vector<Pipe> pipes;
  pipes.reserve(stages.size() - 1);
  for (size_t i = 0; i + 1 < stages.size(); ++i) {
    FORKLIFT_ASSIGN_OR_RETURN(Pipe p, MakePipe());
    pipes.push_back(std::move(p));
  }

  std::vector<Child> children;
  children.reserve(stages.size());
  for (size_t i = 0; i < stages.size(); ++i) {
    Spawner s(stages[i].program);
    s.Args(stages[i].args).SetBackend(backend);
    if (i == 0) {
      s.SetStdin(stdin_data.empty() ? Stdio::Null() : Stdio::Pipe());
    } else {
      s.SetStdin(Stdio::Fd(pipes[i - 1].read_end.get()));
    }
    if (i + 1 < stages.size()) {
      s.SetStdout(Stdio::Fd(pipes[i].write_end.get()));
    } else {
      s.SetStdout(Stdio::Pipe());
    }
    auto child = s.Spawn();
    if (!child.ok()) {
      // Unwind: kill anything already launched so we don't strand a half
      // pipeline blocked on pipes we are about to destroy.
      for (auto& c : children) {
        (void)c.KillAndWait();
      }
      return Err(child.error());
    }
    children.push_back(std::move(child).value());
  }
  // The parent must drop its copies of the inter-stage pipe ends or the
  // readers never see EOF.
  pipes.clear();

  // Feed the head and drain the tail concurrently (poll loop): sequential
  // feed-then-drain deadlocks once stdin_data exceeds the kernel pipe buffers,
  // because every inter-stage pipe can fill while we are still writing.
  PipelineResult result;
  if (stages.size() == 1) {
    FORKLIFT_ASSIGN_OR_RETURN(Child::Outcome oc, children.back().Communicate(stdin_data));
    result.stdout_data = std::move(oc.stdout_data);
  } else {
    // Move the head's stdin pipe onto the tail child and let Communicate's
    // poll loop pump both ends; the tail has no stdin pipe of its own (it
    // reads from the inter-stage pipe), so the slot is free.
    children.back().stdin_fd() = std::move(children.front().stdin_fd());
    FORKLIFT_ASSIGN_OR_RETURN(Child::Outcome oc, children.back().Communicate(stdin_data));
    result.stdout_data = std::move(oc.stdout_data);
  }
  for (auto& c : children) {
    FORKLIFT_ASSIGN_OR_RETURN(ExitStatus st, c.Wait());
    result.statuses.push_back(st);
  }
  return result;
}

}  // namespace forklift
