// forklift/spawn: one-call conveniences over Spawner — run-and-capture and
// shell-style pipelines. This layer is what downstream code actually calls for
// the "shells and build tools" use case the paper motivates.
#ifndef SRC_SPAWN_COMMAND_H_
#define SRC_SPAWN_COMMAND_H_

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/spawn/child.h"
#include "src/spawn/spawner.h"

namespace forklift {

struct RunResult {
  ExitStatus status;
  std::string stdout_data;
  std::string stderr_data;
};

struct RunOptions {
  std::string stdin_data;
  SpawnBackendKind backend = SpawnBackendKind::kForkExec;
  // Seconds; <= 0 means wait forever. On timeout the child is SIGKILLed and an
  // error returned.
  double timeout_seconds = 0;
};

// Runs `program` with `args`, feeding stdin_data and capturing both output
// streams. A non-zero exit is NOT an error at this level (callers inspect
// `status`); only failures to create or supervise the process are.
Result<RunResult> RunAndCapture(const std::string& program, const std::vector<std::string>& args,
                                const RunOptions& opts = {});

// One stage of a pipeline.
struct PipelineStage {
  std::string program;
  std::vector<std::string> args;
};

struct PipelineResult {
  std::vector<ExitStatus> statuses;  // one per stage, in order
  std::string stdout_data;           // output of the last stage
};

// Spawns all stages connected stdin→stdout by pipes (as a shell would for
// "a | b | c"), feeds `stdin_data` to the first, captures the last stage's
// stdout, and reaps every stage. All stages are spawned before any completes —
// true concurrent pipeline semantics, not sequential buffering.
Result<PipelineResult> RunPipeline(const std::vector<PipelineStage>& stages,
                                   const std::string& stdin_data = "",
                                   SpawnBackendKind backend = SpawnBackendKind::kForkExec);

}  // namespace forklift

#endif  // SRC_SPAWN_COMMAND_H_
