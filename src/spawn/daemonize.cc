#include "src/spawn/daemonize.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdlib>

#include "src/common/pipe.h"
#include "src/common/syscall.h"

namespace forklift {

Status ReadyNotifier::NotifyReady() {
  if (!fd_.valid()) {
    return Status::Ok();  // already notified (or never armed)
  }
  char ok = 'R';
  FORKLIFT_RETURN_IF_ERROR(WriteFull(fd_.get(), &ok, 1));
  fd_.Reset();
  return Status::Ok();
}

Result<ReadyNotifier> Daemonize(const DaemonizeOptions& options) {
  FORKLIFT_ASSIGN_OR_RETURN(Pipe ready, MakePipe());

  // No reap obligation: the original process _exits below and both children
  // re-parent to init, which collects them. forklint:ignore(R6)
  pid_t first = ::fork();
  if (first < 0) {
    return ErrnoError("fork (daemonize, first)");
  }
  if (first > 0) {
    // Original process: block until the (grand)child reports readiness.
    ready.write_end.Reset();
    char buf = 0;
    auto n = ReadFull(ready.read_end.get(), &buf, 1);
    _exit(n.ok() && *n == 1 && buf == 'R' ? 0 : 1);
  }

  // First child: new session, then fork again so the daemon can never
  // reacquire a controlling terminal.
  ready.read_end.Reset();
  if (::setsid() < 0) {
    return ErrnoError("setsid (daemonize)");
  }
  pid_t second = ::fork();  // forklint:ignore(R6) — intermediate _exits, init reaps
  if (second < 0) {
    return ErrnoError("fork (daemonize, second)");
  }
  if (second > 0) {
    // Intermediate: vanish quietly, keeping the ready pipe OPEN in the
    // grandchild only (CLOEXEC fds survive fork; we just exit).
    _exit(0);
  }

  // The daemon.
  ::umask(options.umask_value);
  if (options.chdir_root && ::chdir("/") < 0) {
    return ErrnoError("chdir / (daemonize)");
  }
  if (options.null_stdio) {
    // CLOEXEC on the source fd: the dup2'd stdio copies stay inheritable.
    FORKLIFT_ASSIGN_OR_RETURN(UniqueFd devnull, OpenFd("/dev/null", O_RDWR | O_CLOEXEC));
    FORKLIFT_RETURN_IF_ERROR(Dup2(devnull.get(), 0));
    FORKLIFT_RETURN_IF_ERROR(Dup2(devnull.get(), 1));
    FORKLIFT_RETURN_IF_ERROR(Dup2(devnull.get(), 2));
  }
  return ReadyNotifier(std::move(ready.write_end));
}

}  // namespace forklift
