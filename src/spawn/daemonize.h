// forklift/spawn: classic daemonization, with a readiness handshake.
//
// The double-fork dance is fork's most ritualized use: fork, setsid (escape
// the controlling terminal), fork again (never reacquire one), detach stdio,
// chdir. It is also where naive implementations race: the launcher exits
// before the daemon is actually serving. Daemonize() keeps a pipe between the
// generations — the original process does not exit until the daemon calls
// NotifyReady() (or dies), so "the command returned 0" means "the service is
// up", not "a fork happened".
//
// Call once, early, from a single-threaded process (the usual fork-vs-threads
// rules apply — ForkGuard::CheckNow can vouch). Returns ONLY in the daemon.
#ifndef SRC_SPAWN_DAEMONIZE_H_
#define SRC_SPAWN_DAEMONIZE_H_

#include <sys/types.h>

#include "src/common/result.h"
#include "src/common/unique_fd.h"

namespace forklift {

struct DaemonizeOptions {
  bool chdir_root = true;    // avoid pinning the launch directory's filesystem
  bool null_stdio = true;    // stdin/stdout/stderr onto /dev/null
  mode_t umask_value = 027;
};

// One-shot token the daemon uses to release its launcher.
class ReadyNotifier {
 public:
  ReadyNotifier() = default;
  explicit ReadyNotifier(UniqueFd fd) : fd_(std::move(fd)) {}

  // Unblocks the original process, which then exits 0. Idempotent.
  Status NotifyReady();

  // If the daemon dies (or drops the notifier) without notifying, the
  // launcher sees EOF and exits 1 — startup failure is visible at the shell.
  bool armed() const { return fd_.valid(); }

 private:
  UniqueFd fd_;
};

// Forks twice; the intermediate generations _exit. Returns, in the DAEMON
// ONLY, the notifier to call once initialization succeeds. The original
// caller never sees a return: it waits for readiness (exit 0) or EOF (exit 1).
Result<ReadyNotifier> Daemonize(const DaemonizeOptions& options);

}  // namespace forklift

#endif  // SRC_SPAWN_DAEMONIZE_H_
