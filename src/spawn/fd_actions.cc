#include "src/spawn/fd_actions.h"

#include <algorithm>
#include <set>
#include <utility>

namespace forklift {

FdPlan& FdPlan::Dup2(int parent_fd, int child_fd) {
  FdAction a;
  a.kind = FdAction::Kind::kDup2;
  a.src_fd = parent_fd;
  a.child_fd = child_fd;
  actions_.push_back(std::move(a));
  return *this;
}

FdPlan& FdPlan::Open(std::string path, int flags, mode_t mode, int child_fd) {
  FdAction a;
  a.kind = FdAction::Kind::kOpen;
  a.path = std::move(path);
  a.flags = flags;
  a.mode = mode;
  a.child_fd = child_fd;
  actions_.push_back(std::move(a));
  return *this;
}

FdPlan& FdPlan::Close(int child_fd) {
  FdAction a;
  a.kind = FdAction::Kind::kClose;
  a.child_fd = child_fd;
  actions_.push_back(std::move(a));
  return *this;
}

FdPlan& FdPlan::Inherit(int fd) {
  FdAction a;
  a.kind = FdAction::Kind::kInherit;
  a.child_fd = fd;
  actions_.push_back(std::move(a));
  return *this;
}

Result<CompiledFdPlan> FdPlan::Compile() const {
  constexpr int kScratchBase = CompiledFdPlan::kScratchBase;

  // Validation pass: all fds non-negative and below the scratch range.
  for (const auto& a : actions_) {
    if (a.child_fd < 0 || a.child_fd >= kScratchBase) {
      return LogicalError("FdPlan: child fd " + std::to_string(a.child_fd) +
                          " out of range [0, " + std::to_string(kScratchBase) + ")");
    }
    if (a.kind == FdAction::Kind::kDup2 && (a.src_fd < 0 || a.src_fd >= kScratchBase)) {
      return LogicalError("FdPlan: source fd " + std::to_string(a.src_fd) +
                          " out of range [0, " + std::to_string(kScratchBase) + ")");
    }
  }

  // Pre-staging analysis: a Dup2 source needs a scratch copy iff some *earlier*
  // action rebinds or closes that descriptor number — otherwise the parent's
  // binding is still live when the op executes.
  std::set<int> needs_scratch;
  {
    std::set<int> modified;
    for (const auto& a : actions_) {
      if (a.kind == FdAction::Kind::kDup2 && modified.count(a.src_fd) != 0) {
        needs_scratch.insert(a.src_fd);
      }
      if (a.kind != FdAction::Kind::kInherit) {
        modified.insert(a.child_fd);
      }
    }
  }

  CompiledFdPlan plan;
  std::map<int, int> scratch_of;  // parent fd -> scratch fd
  int next_scratch = kScratchBase;
  for (int src : needs_scratch) {
    CompiledFdOp op;
    op.kind = CompiledFdOp::Kind::kDupToScratch;
    op.src_fd = src;
    op.scratch_fd = next_scratch;
    scratch_of[src] = next_scratch;
    plan.max_scratch_fd = next_scratch;
    ++next_scratch;
    plan.ops.push_back(op);
  }

  // Main pass: emit user actions in order, rewriting endangered sources to
  // their scratch copies once the original number has been rebound.
  std::set<int> modified;
  for (const auto& a : actions_) {
    CompiledFdOp op;
    switch (a.kind) {
      case FdAction::Kind::kDup2: {
        op.kind = CompiledFdOp::Kind::kDup2;
        op.src_fd =
            modified.count(a.src_fd) != 0 ? scratch_of.at(a.src_fd) : a.src_fd;
        op.dst_fd = a.child_fd;
        break;
      }
      case FdAction::Kind::kOpen: {
        op.kind = CompiledFdOp::Kind::kOpen;
        op.path = a.path;
        op.flags = a.flags;
        op.mode = a.mode;
        op.dst_fd = a.child_fd;
        break;
      }
      case FdAction::Kind::kClose: {
        op.kind = CompiledFdOp::Kind::kClose;
        op.dst_fd = a.child_fd;
        break;
      }
      case FdAction::Kind::kInherit: {
        // dup2(fd, fd) is specified (and implemented here) as "clear CLOEXEC".
        op.kind = CompiledFdOp::Kind::kDup2;
        op.src_fd = a.child_fd;
        op.dst_fd = a.child_fd;
        break;
      }
    }
    if (a.kind != FdAction::Kind::kInherit) {
      modified.insert(a.child_fd);
    }
    plan.ops.push_back(std::move(op));
  }

  // Epilogue: drop the scratch descriptors so they never reach the new image.
  for (const auto& [src, scratch] : scratch_of) {
    (void)src;
    CompiledFdOp op;
    op.kind = CompiledFdOp::Kind::kCloseScratch;
    op.scratch_fd = scratch;
    plan.ops.push_back(std::move(op));
  }
  return plan;
}

Result<std::map<int, std::string>> FdPlan::SpecApply(
    const std::map<int, std::string>& parent_inheritable,
    const std::map<int, std::string>& parent_cloexec) const {
  struct Entry {
    std::string token;
    bool inheritable;
  };

  // Snapshot of the parent table: Dup2/Inherit sources resolve against this.
  std::map<int, Entry> snapshot;
  for (const auto& [fd, tok] : parent_inheritable) {
    snapshot[fd] = Entry{tok, true};
  }
  for (const auto& [fd, tok] : parent_cloexec) {
    if (snapshot.count(fd) != 0) {
      return LogicalError("SpecApply: fd " + std::to_string(fd) + " in both parent maps");
    }
    snapshot[fd] = Entry{tok, false};
  }

  std::map<int, Entry> table = snapshot;
  for (const auto& a : actions_) {
    switch (a.kind) {
      case FdAction::Kind::kDup2: {
        auto it = snapshot.find(a.src_fd);
        if (it == snapshot.end()) {
          return LogicalError("SpecApply: dup2 from closed parent fd " +
                              std::to_string(a.src_fd));
        }
        table[a.child_fd] = Entry{it->second.token, true};
        break;
      }
      case FdAction::Kind::kOpen: {
        table[a.child_fd] = Entry{"open:" + a.path, true};
        break;
      }
      case FdAction::Kind::kClose: {
        table.erase(a.child_fd);
        break;
      }
      case FdAction::Kind::kInherit: {
        auto it = table.find(a.child_fd);
        if (it == table.end()) {
          return LogicalError("SpecApply: inherit of closed fd " + std::to_string(a.child_fd));
        }
        it->second.inheritable = true;
        break;
      }
    }
  }

  std::map<int, std::string> out;
  for (const auto& [fd, e] : table) {
    if (e.inheritable) {
      out[fd] = e.token;
    }
  }
  return out;
}

}  // namespace forklift
