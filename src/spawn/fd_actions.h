// forklift/spawn: declarative file-descriptor plans for child processes.
//
// The HotOS'19 paper's security complaint about fork() is that the child
// ambiently inherits *everything* and the programmer must remember to close or
// CLOEXEC each descriptor. forklift inverts the default: children inherit only
// stdin/stdout/stderr plus what the FdPlan explicitly grants.
//
// Semantics: every dup2 *source* refers to a descriptor of the PARENT at spawn
// time ("parent semantics"), regardless of the order of actions. This is what
// callers invariably mean, and unlike raw posix_spawn file-actions it cannot be
// silently corrupted by an earlier action clobbering a later action's source
// (e.g. the classic swap of stdout and stderr). Compile() lowers the plan to a
// clobber-free sequence of primitive operations by pre-staging endangered
// sources to high CLOEXEC scratch descriptors.
#ifndef SRC_SPAWN_FD_ACTIONS_H_
#define SRC_SPAWN_FD_ACTIONS_H_

#include <sys/types.h>

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/result.h"

namespace forklift {

// A user-level fd action. Targets are child fds; Dup2 sources are parent fds.
struct FdAction {
  enum class Kind {
    kDup2,     // child_fd := parent fd `src_fd`, inheritable
    kOpen,     // child_fd := open(path, flags, mode), inheritable
    kClose,    // close(child_fd) in the child
    kInherit,  // clear CLOEXEC on `child_fd` (same number in parent and child)
  };

  Kind kind;
  int src_fd = -1;    // kDup2
  int child_fd = -1;  // all kinds
  std::string path;   // kOpen
  int flags = 0;      // kOpen
  mode_t mode = 0;    // kOpen
};

// A primitive operation, directly executable (async-signal-safely) in the
// child between fork/vfork and exec, and translatable to posix_spawn
// file-actions.
struct CompiledFdOp {
  enum class Kind {
    kDupToScratch,  // scratch_fd := dup(src_fd) with CLOEXEC (pre-staging)
    kDup2,          // dup2(src_fd, dst_fd); if src==dst clear CLOEXEC instead
    kOpen,          // open path at dst_fd exactly
    kClose,         // close(dst_fd)
    kCloseScratch,  // close a pre-staging scratch (posix_spawn lowering only)
  };

  Kind kind;
  int src_fd = -1;
  int dst_fd = -1;
  int scratch_fd = -1;
  std::string path;
  int flags = 0;
  mode_t mode = 0;
};

// The executable lowering of an FdPlan. `ops` preserve user action order;
// pre-staging dups come first. Scratch fds are assigned starting at
// `kScratchBase` and are CLOEXEC so they never outlive exec.
struct CompiledFdPlan {
  static constexpr int kScratchBase = 400;

  std::vector<CompiledFdOp> ops;
  int max_scratch_fd = -1;  // highest scratch assigned, -1 if none

  bool empty() const { return ops.empty(); }
};

class FdPlan {
 public:
  FdPlan() = default;

  // child_fd becomes a duplicate of the parent's `parent_fd` (CLOEXEC cleared).
  FdPlan& Dup2(int parent_fd, int child_fd);
  // child_fd becomes open(path, flags, mode).
  FdPlan& Open(std::string path, int flags, mode_t mode, int child_fd);
  // child_fd is closed in the child.
  FdPlan& Close(int child_fd);
  // The parent's fd `fd` is inherited at the same number (CLOEXEC cleared).
  FdPlan& Inherit(int fd);

  const std::vector<FdAction>& actions() const { return actions_; }
  bool empty() const { return actions_.empty(); }
  size_t size() const { return actions_.size(); }

  // Lowers to a clobber-free op sequence. Fails on invalid fds (< 0), on
  // scratch-range collisions, or on a plan that assigns the same child fd from
  // two different actions where the second is an Inherit (ambiguous intent).
  Result<CompiledFdPlan> Compile() const;

  // Specification of the plan's effect, for testing: given a model of the
  // parent fd table (fd → token), returns the child's inheritable fd table
  // (after exec, i.e. CLOEXEC entries dropped). Open actions produce the token
  // "open:<path>". Entries absent from `parent_fds` are treated as closed;
  // dup2 from a closed parent fd is an error.
  Result<std::map<int, std::string>> SpecApply(
      const std::map<int, std::string>& parent_inheritable,
      const std::map<int, std::string>& parent_cloexec) const;

 private:
  std::vector<FdAction> actions_;
};

}  // namespace forklift

#endif  // SRC_SPAWN_FD_ACTIONS_H_
