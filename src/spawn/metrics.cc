#include "src/spawn/metrics.h"

namespace forklift {

RouteMetrics::Snapshot RouteMetrics::snapshot() const {
  Snapshot snap;
  snap.attempts = attempts_.load(std::memory_order_relaxed);
  snap.successes = successes_.load(std::memory_order_relaxed);
  snap.retries = retries_.load(std::memory_order_relaxed);
  snap.transport_failures = transport_failures_.load(std::memory_order_relaxed);
  snap.fallthroughs = fallthroughs_.load(std::memory_order_relaxed);
  snap.incapable_skips = incapable_skips_.load(std::memory_order_relaxed);
  snap.quarantine_skips = quarantine_skips_.load(std::memory_order_relaxed);
  return snap;
}

SpawnMetrics& SpawnMetrics::Global() {
  static SpawnMetrics metrics;
  return metrics;
}

void SpawnMetrics::RecordSpawn(const SpawnTimeline& timeline) {
  spawns_.fetch_add(1, std::memory_order_relaxed);
  if (timeline.exec_confirmed_ns >= timeline.submit_ns) {
    submit_to_exec_ns_total_.fetch_add(timeline.exec_confirmed_ns - timeline.submit_ns,
                                       std::memory_order_relaxed);
  }
}

void SpawnMetrics::RecordExitObserved(const SpawnTimeline& timeline) {
  exits_observed_.fetch_add(1, std::memory_order_relaxed);
  if (timeline.exit_observed_ns >= timeline.exec_confirmed_ns) {
    exec_to_exit_ns_total_.fetch_add(timeline.exit_observed_ns - timeline.exec_confirmed_ns,
                                     std::memory_order_relaxed);
  }
}

SpawnMetrics::Snapshot SpawnMetrics::snapshot() const {
  Snapshot snap;
  snap.spawns = spawns_.load(std::memory_order_relaxed);
  snap.exits_observed = exits_observed_.load(std::memory_order_relaxed);
  snap.submit_to_exec_ns_total = submit_to_exec_ns_total_.load(std::memory_order_relaxed);
  snap.exec_to_exit_ns_total = exec_to_exit_ns_total_.load(std::memory_order_relaxed);
  return snap;
}

void SpawnMetrics::ResetForTest() {
  spawns_.store(0, std::memory_order_relaxed);
  exits_observed_.store(0, std::memory_order_relaxed);
  submit_to_exec_ns_total_.store(0, std::memory_order_relaxed);
  exec_to_exit_ns_total_.store(0, std::memory_order_relaxed);
}

}  // namespace forklift
