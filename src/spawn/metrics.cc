#include "src/spawn/metrics.h"

#include <string>

namespace forklift {

namespace {

// Nanosecond phase delta → microsecond histogram observation, rounded up so
// any nonzero latency registers as at least 1 µs (a sum of zeros would read
// as "no latency recorded" to mean/percentile consumers).
uint64_t CeilMicros(uint64_t ns) { return (ns + 999) / 1000; }

}  // namespace

void RouteMetrics::BindRegistry(const char* route_name) {
  auto& reg = obs::MetricsRegistry::Global();
  auto bind = [&](const char* metric) {
    return reg.GetCounter(std::string("forklift_route_") + metric + "_total{route=\"" +
                          route_name + "\"}");
  };
  reg_attempts_ = bind("attempts");
  reg_successes_ = bind("successes");
  reg_retries_ = bind("retries");
  reg_transport_failures_ = bind("transport_failures");
  reg_fallthroughs_ = bind("fallthroughs");
  reg_incapable_skips_ = bind("incapable_skips");
  reg_quarantine_skips_ = bind("quarantine_skips");
}

RouteMetrics::Snapshot RouteMetrics::snapshot() const {
  Snapshot snap;
  snap.attempts = attempts_.load(std::memory_order_relaxed);
  snap.successes = successes_.load(std::memory_order_relaxed);
  snap.retries = retries_.load(std::memory_order_relaxed);
  snap.transport_failures = transport_failures_.load(std::memory_order_relaxed);
  snap.fallthroughs = fallthroughs_.load(std::memory_order_relaxed);
  snap.incapable_skips = incapable_skips_.load(std::memory_order_relaxed);
  snap.quarantine_skips = quarantine_skips_.load(std::memory_order_relaxed);
  return snap;
}

SpawnMetrics::SpawnMetrics() {
  auto& reg = obs::MetricsRegistry::Global();
  spawns_ = reg.GetCounter("forklift_spawns_total");
  exits_observed_ = reg.GetCounter("forklift_spawn_exits_observed_total");
  submit_to_exec_us_ = reg.GetHistogram("forklift_spawn_submit_to_exec_us");
  exec_to_exit_us_ = reg.GetHistogram("forklift_spawn_exec_to_exit_us");
}

SpawnMetrics& SpawnMetrics::Global() {
  static SpawnMetrics* metrics = new SpawnMetrics();
  return *metrics;
}

void SpawnMetrics::RecordSpawn(const SpawnTimeline& timeline) {
  spawns_.Increment();
  if (timeline.exec_confirmed_ns >= timeline.submit_ns) {
    submit_to_exec_us_.Observe(CeilMicros(timeline.exec_confirmed_ns - timeline.submit_ns));
  }
}

void SpawnMetrics::RecordExitObserved(const SpawnTimeline& timeline) {
  exits_observed_.Increment();
  if (timeline.exit_observed_ns >= timeline.exec_confirmed_ns) {
    exec_to_exit_us_.Observe(CeilMicros(timeline.exit_observed_ns - timeline.exec_confirmed_ns));
  }
}

SpawnMetrics::Snapshot SpawnMetrics::snapshot() const {
  Snapshot snap;
  snap.spawns = spawns_.Value();
  snap.exits_observed = exits_observed_.Value();
  snap.submit_to_exec_us = submit_to_exec_us_.snapshot();
  snap.exec_to_exit_us = exec_to_exit_us_.snapshot();
  snap.submit_to_exec_ns_total = snap.submit_to_exec_us.sum * 1000;
  snap.exec_to_exit_ns_total = snap.exec_to_exit_us.sum * 1000;
  return snap;
}

void SpawnMetrics::ResetForTest() {
  spawns_.Reset();
  exits_observed_.Reset();
  submit_to_exec_us_.Reset();
  exec_to_exit_us_.Reset();
}

}  // namespace forklift
