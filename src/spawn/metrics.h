// forklift/spawn: per-spawn phase instrumentation.
//
// Three timestamps bracket a spawned process's observable life from the
// parent's side: submit (Spawner::Spawn entered), exec-confirmed (the backend
// reported the child launched — for the fork-family engines this means the
// exec really happened; posix_spawn documents weaker confirmation), and
// exit-observed (the first reap that saw the exit status). The gap between
// the child's actual death and exit-observed is exactly what the reactor
// refactor shrinks, so these feed bench/scalability's latency series and the
// regression tests.
//
// SpawnTimeline rides on each Child. SpawnMetrics and RouteMetrics are thin
// views over the process-wide obs registry: counts are named registry
// counters and the phase latencies are fixed-bucket microsecond histograms
// (p50/p95/p99 instead of a straggler-poisoned mean), so everything here is
// visible to the Prometheus/JSON exporters and shared with zygote shards
// forked after the registry arena exists.
#ifndef SRC_SPAWN_METRICS_H_
#define SRC_SPAWN_METRICS_H_

#include <atomic>
#include <cstdint>

#include "src/obs/registry.h"

namespace forklift {

struct SpawnTimeline {
  uint64_t submit_ns = 0;          // MonotonicNanos at Spawner::Spawn entry
  uint64_t exec_confirmed_ns = 0;  // backend Launch returned a pid
  uint64_t exit_observed_ns = 0;   // first successful reap of the exit status

  bool complete() const {
    return submit_ns != 0 && exec_confirmed_ns != 0 && exit_observed_ns != 0;
  }
};

// Counters for one SpawnService route (a transport in a fallback chain).
// Atomics, not a lock: routing reads/writes them outside the service's route
// mutex, and snapshotting must not stall the spawn path.
//
// The local atomics are per-service state (RouteStats reports exact counts
// for one SpawnService instance); BindRegistry additionally mirrors every
// record into global registry counters labeled by route name, which is what
// the exporters scrape — per-service views and the process-wide aggregate
// stay separate by design.
class RouteMetrics {
 public:
  // Binds the global registry counters for `route_name`. Call once, at route
  // registration; recording works (locally) even when never bound.
  void BindRegistry(const char* route_name);

  void RecordAttempt() {
    attempts_.fetch_add(1, std::memory_order_relaxed);
    reg_attempts_.Increment();
  }
  void RecordSuccess() {
    successes_.fetch_add(1, std::memory_order_relaxed);
    reg_successes_.Increment();
  }
  // A retryable transport failure resubmitted on the same route.
  void RecordRetry() {
    retries_.fetch_add(1, std::memory_order_relaxed);
    reg_retries_.Increment();
  }
  // The transport failed (connect/send/channel death) on this attempt.
  void RecordTransportFailure() {
    transport_failures_.fetch_add(1, std::memory_order_relaxed);
    reg_transport_failures_.Increment();
  }
  // The route was exhausted and the request moved to the next route.
  void RecordFallthrough() {
    fallthroughs_.fetch_add(1, std::memory_order_relaxed);
    reg_fallthroughs_.Increment();
  }
  // The route was skipped without an attempt: it cannot carry this request
  // (e.g. pipe stdio over the wire) ...
  void RecordIncapableSkip() {
    incapable_skips_.fetch_add(1, std::memory_order_relaxed);
    reg_incapable_skips_.Increment();
  }
  // ... or it is quarantined after a recent transport failure.
  void RecordQuarantineSkip() {
    quarantine_skips_.fetch_add(1, std::memory_order_relaxed);
    reg_quarantine_skips_.Increment();
  }

  struct Snapshot {
    uint64_t attempts = 0;
    uint64_t successes = 0;
    uint64_t retries = 0;
    uint64_t transport_failures = 0;
    uint64_t fallthroughs = 0;
    uint64_t incapable_skips = 0;
    uint64_t quarantine_skips = 0;
  };
  Snapshot snapshot() const;

 private:
  std::atomic<uint64_t> attempts_{0};
  std::atomic<uint64_t> successes_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> transport_failures_{0};
  std::atomic<uint64_t> fallthroughs_{0};
  std::atomic<uint64_t> incapable_skips_{0};
  std::atomic<uint64_t> quarantine_skips_{0};

  obs::Counter reg_attempts_;
  obs::Counter reg_successes_;
  obs::Counter reg_retries_;
  obs::Counter reg_transport_failures_;
  obs::Counter reg_fallthroughs_;
  obs::Counter reg_incapable_skips_;
  obs::Counter reg_quarantine_skips_;
};

class SpawnMetrics {
 public:
  static SpawnMetrics& Global();

  // Called by Spawner::Spawn once the backend confirmed the launch.
  void RecordSpawn(const SpawnTimeline& timeline);
  // Called by Child when the exit status is first observed.
  void RecordExitObserved(const SpawnTimeline& timeline);

  struct Snapshot {
    uint64_t spawns = 0;
    uint64_t exits_observed = 0;
    obs::HistogramSnapshot submit_to_exec_us;
    obs::HistogramSnapshot exec_to_exit_us;
    // Sum views derived from the microsecond histograms, kept for callers
    // that predate the histogram migration.
    uint64_t submit_to_exec_ns_total = 0;
    uint64_t exec_to_exit_ns_total = 0;

    double MeanSubmitToExecMicros() const { return submit_to_exec_us.Mean(); }
    double SubmitToExecPercentileMicros(double p) const {
      return submit_to_exec_us.Percentile(p);
    }
    double ExecToExitPercentileMicros(double p) const { return exec_to_exit_us.Percentile(p); }
  };
  Snapshot snapshot() const;

  void ResetForTest();

 private:
  SpawnMetrics();

  obs::Counter spawns_;
  obs::Counter exits_observed_;
  obs::Histogram submit_to_exec_us_;
  obs::Histogram exec_to_exit_us_;
};

}  // namespace forklift

#endif  // SRC_SPAWN_METRICS_H_
