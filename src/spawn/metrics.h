// forklift/spawn: per-spawn phase instrumentation.
//
// Three timestamps bracket a spawned process's observable life from the
// parent's side: submit (Spawner::Spawn entered), exec-confirmed (the backend
// reported the child launched — for the fork-family engines this means the
// exec really happened; posix_spawn documents weaker confirmation), and
// exit-observed (the first reap that saw the exit status). The gap between
// the child's actual death and exit-observed is exactly what the reactor
// refactor shrinks, so these feed bench/scalability's latency series and the
// regression tests.
//
// SpawnTimeline rides on each Child; SpawnMetrics aggregates process-global
// counters (thread-safe — Spawner is documented as concurrently callable).
#ifndef SRC_SPAWN_METRICS_H_
#define SRC_SPAWN_METRICS_H_

#include <atomic>
#include <cstdint>

namespace forklift {

struct SpawnTimeline {
  uint64_t submit_ns = 0;          // MonotonicNanos at Spawner::Spawn entry
  uint64_t exec_confirmed_ns = 0;  // backend Launch returned a pid
  uint64_t exit_observed_ns = 0;   // first successful reap of the exit status

  bool complete() const {
    return submit_ns != 0 && exec_confirmed_ns != 0 && exit_observed_ns != 0;
  }
};

// Counters for one SpawnService route (a transport in a fallback chain).
// Atomics, not a lock: routing reads/writes them outside the service's route
// mutex, and snapshotting must not stall the spawn path.
class RouteMetrics {
 public:
  void RecordAttempt() { attempts_.fetch_add(1, std::memory_order_relaxed); }
  void RecordSuccess() { successes_.fetch_add(1, std::memory_order_relaxed); }
  // A retryable transport failure resubmitted on the same route.
  void RecordRetry() { retries_.fetch_add(1, std::memory_order_relaxed); }
  // The transport failed (connect/send/channel death) on this attempt.
  void RecordTransportFailure() { transport_failures_.fetch_add(1, std::memory_order_relaxed); }
  // The route was exhausted and the request moved to the next route.
  void RecordFallthrough() { fallthroughs_.fetch_add(1, std::memory_order_relaxed); }
  // The route was skipped without an attempt: it cannot carry this request
  // (e.g. pipe stdio over the wire) ...
  void RecordIncapableSkip() { incapable_skips_.fetch_add(1, std::memory_order_relaxed); }
  // ... or it is quarantined after a recent transport failure.
  void RecordQuarantineSkip() { quarantine_skips_.fetch_add(1, std::memory_order_relaxed); }

  struct Snapshot {
    uint64_t attempts = 0;
    uint64_t successes = 0;
    uint64_t retries = 0;
    uint64_t transport_failures = 0;
    uint64_t fallthroughs = 0;
    uint64_t incapable_skips = 0;
    uint64_t quarantine_skips = 0;
  };
  Snapshot snapshot() const;

 private:
  std::atomic<uint64_t> attempts_{0};
  std::atomic<uint64_t> successes_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> transport_failures_{0};
  std::atomic<uint64_t> fallthroughs_{0};
  std::atomic<uint64_t> incapable_skips_{0};
  std::atomic<uint64_t> quarantine_skips_{0};
};

class SpawnMetrics {
 public:
  static SpawnMetrics& Global();

  // Called by Spawner::Spawn once the backend confirmed the launch.
  void RecordSpawn(const SpawnTimeline& timeline);
  // Called by Child when the exit status is first observed.
  void RecordExitObserved(const SpawnTimeline& timeline);

  struct Snapshot {
    uint64_t spawns = 0;
    uint64_t exits_observed = 0;
    uint64_t submit_to_exec_ns_total = 0;  // sum over recorded spawns
    uint64_t exec_to_exit_ns_total = 0;    // sum over observed exits

    double MeanSubmitToExecMicros() const {
      return spawns == 0 ? 0.0
                         : static_cast<double>(submit_to_exec_ns_total) / 1e3 /
                               static_cast<double>(spawns);
    }
  };
  Snapshot snapshot() const;

  void ResetForTest();

 private:
  std::atomic<uint64_t> spawns_{0};
  std::atomic<uint64_t> exits_observed_{0};
  std::atomic<uint64_t> submit_to_exec_ns_total_{0};
  std::atomic<uint64_t> exec_to_exit_ns_total_{0};
};

}  // namespace forklift

#endif  // SRC_SPAWN_METRICS_H_
