#include "src/spawn/process_handle.h"

#include <utility>

#include "src/obs/trace.h"

namespace forklift {

namespace {

// The local mechanism: a Child absorbed whole, so waitpid semantics,
// timeline stamping, and the reactor/pidfd deadline wait stay exactly what
// Child implements.
class LocalProcessImpl final : public ProcessHandle::Impl {
 public:
  explicit LocalProcessImpl(Child child) : child_(std::move(child)) {}

  pid_t pid() const override { return child_.pid(); }
  Result<ExitStatus> Wait() override { return child_.Wait(); }
  Result<std::optional<ExitStatus>> TryWait() override { return child_.TryWait(); }
  Result<std::optional<ExitStatus>> WaitDeadline(double timeout_seconds) override {
    return child_.WaitDeadline(timeout_seconds);
  }
  Status Kill(int sig) override { return child_.Kill(sig); }

 private:
  Child child_;
};

}  // namespace

ProcessHandle ProcessHandle::FromChild(Child child, std::string route) {
  ProcessHandle handle;
  handle.stdin_fd_ = std::move(child.stdin_fd());
  handle.stdout_fd_ = std::move(child.stdout_fd());
  handle.stderr_fd_ = std::move(child.stderr_fd());
  handle.route_ = std::move(route);
  handle.impl_ = std::make_unique<LocalProcessImpl>(std::move(child));
  return handle;
}

ProcessHandle ProcessHandle::FromImpl(std::unique_ptr<Impl> impl, std::string route) {
  ProcessHandle handle;
  handle.impl_ = std::move(impl);
  handle.route_ = std::move(route);
  return handle;
}

void ProcessHandle::FillCache(ExitStatus st) {
  cached_ = st;
  // Tracer drops trace_id 0, so unrouted handles cost one branch here.
  obs::Tracer::Global().Event(trace_id_, "exit_observed", route_);
}

Result<ExitStatus> ProcessHandle::Wait() {
  if (cached_.has_value()) {
    return *cached_;
  }
  if (impl_ == nullptr) {
    return LogicalError("Wait on invalid ProcessHandle");
  }
  FORKLIFT_ASSIGN_OR_RETURN(ExitStatus st, impl_->Wait());
  FillCache(st);
  return st;
}

Result<std::optional<ExitStatus>> ProcessHandle::TryWait() {
  if (cached_.has_value()) {
    return std::optional<ExitStatus>(*cached_);
  }
  if (impl_ == nullptr) {
    return LogicalError("TryWait on invalid ProcessHandle");
  }
  FORKLIFT_ASSIGN_OR_RETURN(std::optional<ExitStatus> st, impl_->TryWait());
  if (st.has_value()) {
    FillCache(*st);
  }
  return st;
}

Result<std::optional<ExitStatus>> ProcessHandle::WaitDeadline(double timeout_seconds) {
  if (cached_.has_value()) {
    return std::optional<ExitStatus>(*cached_);
  }
  if (impl_ == nullptr) {
    return LogicalError("WaitDeadline on invalid ProcessHandle");
  }
  FORKLIFT_ASSIGN_OR_RETURN(std::optional<ExitStatus> st, impl_->WaitDeadline(timeout_seconds));
  if (st.has_value()) {
    FillCache(*st);
  }
  return st;
}

Status ProcessHandle::Kill(int sig) {
  if (impl_ == nullptr) {
    return LogicalError("Kill on invalid ProcessHandle");
  }
  if (cached_.has_value()) {
    return LogicalError("Kill on already-reaped ProcessHandle");
  }
  return impl_->Kill(sig);
}

Status ProcessHandle::KillAndWait() {
  if (cached_.has_value()) {
    return Status::Ok();
  }
  FORKLIFT_RETURN_IF_ERROR(Kill(SIGKILL));
  auto res = Wait();
  if (!res.ok()) {
    return Err(res.error());
  }
  return Status::Ok();
}

Result<ProcessHandle::Outcome> ProcessHandle::Communicate(std::string_view input) {
  if (impl_ == nullptr) {
    return LogicalError("Communicate on invalid ProcessHandle");
  }
  // The shared drain engine is mechanism-independent: the exit watch needs
  // only the pid (pidfd works for non-children too), and the reap routes
  // through TryWait/Wait — waitpid locally, the server protocol remotely.
  FORKLIFT_ASSIGN_OR_RETURN(
      internal::StdioDrainResult drained,
      internal::DrainStdioUntilClosed(stdin_fd_, stdout_fd_, stderr_fd_, input, impl_->pid(),
                                      [this] { (void)TryWait(); }));
  FORKLIFT_ASSIGN_OR_RETURN(ExitStatus st, Wait());
  Outcome oc;
  oc.status = st;
  oc.stdout_data = std::move(drained.stdout_data);
  oc.stderr_data = std::move(drained.stderr_data);
  return oc;
}

}  // namespace forklift
