// forklift/spawn: ProcessHandle — the one owning handle for a spawned process.
//
// The paper's complaint is not only that fork is the wrong creation API; it
// is that every creation mechanism grows its own handle type, and callers
// hardwire one. ProcessHandle erases the mechanism: whether the child came
// from a local backend (fork+exec, vfork, posix_spawn, clone) or from a fork
// server across a socket, the caller holds the same value type with the same
// contract — pid, blocking/deadline/non-blocking wait, kill, stdio pipe ends,
// Communicate. Mechanism-specific behavior lives behind the small Impl
// vtable: locally a wait is waitpid (reactor/pidfd for deadlines), remotely
// it is a pipelined request-id completion on the server channel.
//
// Wait() is idempotent at this layer: the first reap (from any of Wait,
// TryWait, WaitDeadline, KillAndWait, Communicate) caches the ExitStatus on
// the handle, and every later wait returns the cache instead of ECHILD or a
// protocol error — the same guarantee on both the local and remote paths.
#ifndef SRC_SPAWN_PROCESS_HANDLE_H_
#define SRC_SPAWN_PROCESS_HANDLE_H_

#include <sys/types.h>

#include <csignal>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "src/common/result.h"
#include "src/common/syscall.h"
#include "src/common/unique_fd.h"
#include "src/spawn/child.h"

namespace forklift {

class ProcessHandle {
 public:
  // The mechanism behind a handle. Implementations are single-owner (the
  // handle) and need not be thread-safe; idempotent-wait caching is the
  // handle's job, so a second wait never reaches a spent Impl.
  class Impl {
   public:
    virtual ~Impl() = default;
    virtual pid_t pid() const = 0;
    virtual Result<ExitStatus> Wait() = 0;
    virtual Result<std::optional<ExitStatus>> TryWait() = 0;
    virtual Result<std::optional<ExitStatus>> WaitDeadline(double timeout_seconds) = 0;
    virtual Status Kill(int sig) = 0;
  };

  ProcessHandle() = default;
  ~ProcessHandle() = default;
  ProcessHandle(const ProcessHandle&) = delete;
  ProcessHandle& operator=(const ProcessHandle&) = delete;
  ProcessHandle(ProcessHandle&&) noexcept = default;
  ProcessHandle& operator=(ProcessHandle&&) noexcept = default;

  // Wraps a locally-spawned Child. The child's pipe ends move onto the
  // handle; waiting stays waitpid/pidfd-based via the Child it absorbs.
  // `route` defaults to "local"; a routed transport passes its own name so
  // route() reports which backend actually produced the process.
  static ProcessHandle FromChild(Child child, std::string route = "local");

  // Wraps any mechanism. `route` names the transport that produced the
  // process (e.g. "local:posix_spawn", "forkserver", "sharded") — it is
  // diagnostic, surfaced by route().
  static ProcessHandle FromImpl(std::unique_ptr<Impl> impl, std::string route);

  pid_t pid() const { return impl_ == nullptr ? -1 : impl_->pid(); }
  bool valid() const { return impl_ != nullptr && impl_->pid() > 0; }
  // Which transport produced this process ("" for a default-constructed
  // handle).
  const std::string& route() const { return route_; }

  // The request/trace id the spawn ran under (0 when not routed through
  // SpawnService). Keys this process's spans in obs::Tracer; on the wire
  // routes it equals the protocol-v2 request_id.
  uint64_t trace_id() const { return trace_id_; }
  void set_trace_id(uint64_t id) { trace_id_ = id; }

  // Blocks until the child exits. Idempotent: later calls return the cached
  // status.
  Result<ExitStatus> Wait();

  // Non-blocking: nullopt while still running.
  Result<std::optional<ExitStatus>> TryWait();

  // Blocks until exit or deadline; nullopt on timeout (the process keeps
  // running, and the wait — including an in-flight remote wait request —
  // remains collectable by a later Wait/TryWait/WaitDeadline).
  Result<std::optional<ExitStatus>> WaitDeadline(double timeout_seconds);

  // kill(2)-equivalent (remote pids are in our namespace even though
  // parentage is not).
  Status Kill(int sig = SIGTERM);

  // SIGKILL then reap; Ok if already reaped.
  Status KillAndWait();

  // Pipe ends owned by this handle when the spawn configured Stdio::kPipe.
  // stdin_fd is the write end; stdout/stderr are read ends. Remote transports
  // cannot ship pipe stdio, so these are only populated on local routes.
  UniqueFd& stdin_fd() { return stdin_fd_; }
  UniqueFd& stdout_fd() { return stdout_fd_; }
  UniqueFd& stderr_fd() { return stderr_fd_; }

  // Writes `input` to the child's stdin (then closes it), drains stdout and
  // stderr concurrently through one reactor, and reaps the child — the same
  // contract as Child::Communicate, mechanism-independent.
  struct Outcome {
    ExitStatus status;
    std::string stdout_data;
    std::string stderr_data;
  };
  Result<Outcome> Communicate(std::string_view input = "");

 private:
  // First fill of the idempotent-wait cache: records the exit_observed trace
  // event exactly once, however the reap arrived.
  void FillCache(ExitStatus st);

  std::unique_ptr<Impl> impl_;
  std::string route_;
  uint64_t trace_id_ = 0;
  // The idempotent-wait cache: set by the first successful reap on any path.
  std::optional<ExitStatus> cached_;
  UniqueFd stdin_fd_;
  UniqueFd stdout_fd_;
  UniqueFd stderr_fd_;
};

}  // namespace forklift

#endif  // SRC_SPAWN_PROCESS_HANDLE_H_
