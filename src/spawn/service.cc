#include "src/spawn/service.h"

#include <chrono>
#include <thread>
#include <utility>

#include "src/common/clock.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"

namespace forklift {

namespace {

const char* LocalRouteName(SpawnBackendKind kind) {
  switch (kind) {
    case SpawnBackendKind::kForkExec:
      return "local:forkexec";
    case SpawnBackendKind::kVfork:
      return "local:vfork";
    case SpawnBackendKind::kPosixSpawn:
      return "local:posix_spawn";
    case SpawnBackendKind::kCloneVm:
      return "local:clone3";
    case SpawnBackendKind::kCustom:
      return "local:custom";
  }
  return "local:?";
}

// In-process engines: no transport to fail, so every error is a request
// error — falling through to another local engine would just repeat it.
class LocalTransport final : public SpawnTransport {
 public:
  explicit LocalTransport(SpawnBackendKind kind) : kind_(kind) {}

  const char* Name() const override { return LocalRouteName(kind_); }
  bool SupportsPipeStdio() const override { return true; }

  Result<ProcessHandle> Launch(const Spawner& spawner, uint64_t /*trace_id*/,
                               SpawnFailureKind* failure) override {
    *failure = SpawnFailureKind::kRequest;
    Spawner pinned = spawner;
    pinned.SetBackend(kind_);
    FORKLIFT_ASSIGN_OR_RETURN(Child child, pinned.Spawn());
    return ProcessHandle::FromChild(std::move(child), Name());
  }

 private:
  SpawnBackendKind kind_;
};

}  // namespace

std::unique_ptr<SpawnTransport> MakeLocalTransport(SpawnBackendKind kind) {
  return std::make_unique<LocalTransport>(kind);
}

void SpawnService::AddRoute(std::unique_ptr<SpawnTransport> transport) {
  std::lock_guard<std::mutex> lock(mu_);
  auto route = std::make_unique<Route>();
  route->transport = std::move(transport);
  // Mirror this route's counters into the global registry under its name;
  // the per-service atomics behind RouteStats stay exact and separate.
  route->metrics.BindRegistry(route->transport->Name());
  routes_.push_back(std::move(route));
}

void SpawnService::AddLocalRoute(SpawnBackendKind kind) { AddRoute(MakeLocalTransport(kind)); }

size_t SpawnService::route_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return routes_.size();
}

std::vector<std::string> SpawnService::route_names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(routes_.size());
  for (const auto& route : routes_) {
    names.emplace_back(route->transport->Name());
  }
  return names;
}

RouteMetrics::Snapshot SpawnService::RouteStats(std::string_view route_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& route : routes_) {
    if (route->transport->Name() == route_name) {
      return route->metrics.snapshot();
    }
  }
  return RouteMetrics::Snapshot{};
}

bool SpawnService::AdmitRoute(Route& route) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (route.unhealthy_until_ns == 0) {
      return true;
    }
    if (MonotonicNanos() < route.unhealthy_until_ns) {
      route.metrics.RecordQuarantineSkip();
      return false;
    }
  }
  // Quarantine elapsed: the route must prove itself before carrying a real
  // request again (Probe outside the lock — it may do a round trip).
  if (!route.transport->Probe().ok()) {
    QuarantineRoute(route);
    route.metrics.RecordQuarantineSkip();
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  route.unhealthy_until_ns = 0;
  return true;
}

void SpawnService::QuarantineRoute(Route& route) {
  if (options_.quarantine_seconds <= 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  route.unhealthy_until_ns =
      MonotonicNanos() + static_cast<uint64_t>(options_.quarantine_seconds * 1e9);
}

Result<ProcessHandle> SpawnService::SpawnOnRoute(Route& route, const Spawner& spawner,
                                                 uint64_t trace_id,
                                                 SpawnFailureKind* failure) {
  int attempts = options_.attempts_per_route < 1 ? 1 : options_.attempts_per_route;
  double backoff = options_.retry_backoff_base_seconds;
  Status last = Status::Ok();
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      route.metrics.RecordRetry();
      if (backoff > 0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
        backoff *= 2;
      }
    }
    route.metrics.RecordAttempt();
    *failure = SpawnFailureKind::kRequest;
    auto handle = route.transport->Launch(spawner, trace_id, failure);
    if (handle.ok()) {
      route.metrics.RecordSuccess();
      return handle;
    }
    if (*failure != SpawnFailureKind::kRequest) {
      route.metrics.RecordTransportFailure();
    }
    // Only a provably-unlaunched failure may be resubmitted: an indeterminate
    // one could fork the child twice, and a request error would just repeat.
    if (*failure != SpawnFailureKind::kTransportRetryable) {
      return handle;
    }
    last = Err(handle.error());
  }
  return Err(last.error());
}

Result<ProcessHandle> SpawnService::Spawn(const Spawner& spawner) {
  const uint64_t trace_id = obs::NextRequestId();
  const uint64_t submit_start = MonotonicNanos();
  auto& tracer = obs::Tracer::Global();
  // The submit span covers the whole routing decision, whatever exit path
  // this function takes.
  auto finish = [&](const char* outcome) {
    tracer.Record(trace_id, "submit", submit_start, MonotonicNanos(), outcome);
  };
  std::vector<Route*> chain;
  {
    std::lock_guard<std::mutex> lock(mu_);
    chain.reserve(routes_.size());
    for (const auto& route : routes_) {
      chain.push_back(route.get());  // stable: routes_ only ever grows
    }
  }
  if (chain.empty()) {
    finish("no_routes");
    return LogicalError("SpawnService: no routes registered");
  }
  const bool needs_pipes = spawner.UsesPipeStdio();
  Status last = Status::Ok();
  bool attempted = false;
  for (Route* route : chain) {
    if (needs_pipes && !route->transport->SupportsPipeStdio()) {
      route->metrics.RecordIncapableSkip();
      continue;
    }
    if (!AdmitRoute(*route)) {
      continue;
    }
    attempted = true;
    SpawnFailureKind failure = SpawnFailureKind::kRequest;
    const std::string route_span = std::string("route:") + route->transport->Name();
    const uint64_t route_start = MonotonicNanos();
    auto handle = SpawnOnRoute(*route, spawner, trace_id, &failure);
    if (handle.ok()) {
      tracer.Record(trace_id, route_span, route_start, MonotonicNanos(), "ok");
      tracer.Event(trace_id, "exec_confirmed", route->transport->Name());
      handle->set_trace_id(trace_id);
      finish("ok");
      return handle;
    }
    if (failure == SpawnFailureKind::kRequest) {
      tracer.Record(trace_id, route_span, route_start, MonotonicNanos(), "request_error");
      finish("request_error");
      return handle;  // no route would fare better
    }
    QuarantineRoute(*route);
    if (failure == SpawnFailureKind::kTransportIndeterminate) {
      // The child may exist on the dead transport; surface the error instead
      // of risking a double launch. The quarantine above makes the NEXT
      // request take the fallback route.
      tracer.Record(trace_id, route_span, route_start, MonotonicNanos(), "indeterminate");
      finish("indeterminate");
      return handle;
    }
    tracer.Record(trace_id, route_span, route_start, MonotonicNanos(), "fallthrough");
    route->metrics.RecordFallthrough();
    last = Err(handle.error());
  }
  if (!attempted) {
    finish("no_admissible_route");
    return LogicalError(needs_pipes
                            ? "SpawnService: no admissible route supports pipe stdio"
                            : "SpawnService: every route is quarantined");
  }
  finish("exhausted");
  return Err(last.error());
}

Result<ProcessHandle> SpawnService::Spawn(const Spawner& spawner, std::string_view pinned_route) {
  Route* pinned = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& route : routes_) {
      if (route->transport->Name() == pinned_route) {
        pinned = route.get();
        break;
      }
    }
  }
  if (pinned == nullptr) {
    return LogicalError("SpawnService: no route named '" + std::string(pinned_route) + "'");
  }
  if (spawner.UsesPipeStdio() && !pinned->transport->SupportsPipeStdio()) {
    pinned->metrics.RecordIncapableSkip();
    return LogicalError("SpawnService: route '" + std::string(pinned_route) +
                        "' cannot carry pipe stdio");
  }
  // A pin is explicit: no fallback, and no quarantine gate either — the
  // caller asked for this mechanism, so give them its real error.
  const uint64_t trace_id = obs::NextRequestId();
  const uint64_t submit_start = MonotonicNanos();
  auto& tracer = obs::Tracer::Global();
  SpawnFailureKind failure = SpawnFailureKind::kRequest;
  const std::string route_span = std::string("route:") + pinned->transport->Name();
  const uint64_t route_start = MonotonicNanos();
  auto handle = SpawnOnRoute(*pinned, spawner, trace_id, &failure);
  if (handle.ok()) {
    tracer.Record(trace_id, route_span, route_start, MonotonicNanos(), "ok");
    tracer.Event(trace_id, "exec_confirmed", pinned->transport->Name());
    handle->set_trace_id(trace_id);
    tracer.Record(trace_id, "submit", submit_start, MonotonicNanos(), "ok");
    return handle;
  }
  tracer.Record(trace_id, route_span, route_start, MonotonicNanos(), "error");
  tracer.Record(trace_id, "submit", submit_start, MonotonicNanos(), "error");
  if (failure != SpawnFailureKind::kRequest) {
    QuarantineRoute(*pinned);
  }
  return handle;
}

}  // namespace forklift
