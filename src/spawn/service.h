// forklift/spawn: SpawnService — policy-routed process creation.
//
// One spawn entry point over many mechanisms. A SpawnService owns an ordered
// chain of SpawnTransports (local backends, a fork-server channel, a sharded
// zygote pool — anything that can turn a Spawner into a ProcessHandle) and
// routes each request by policy:
//
//   * capability probing — a transport that cannot carry the request (pipe
//     stdio cannot cross the fork-server wire) is skipped, not failed;
//   * health gating — a route that just suffered a transport failure is
//     quarantined for a cool-down and re-admitted via a cheap Probe();
//   * bounded retry + backoff — a retryable transport failure is resubmitted
//     on the same route a bounded number of times before falling through;
//   * fallback chains — when a route is exhausted the request moves to the
//     next one (e.g. sharded pool -> single pipelined shard -> local
//     posix_spawn), so a dead zygote degrades to a slower spawn instead of
//     an error.
//
// Exactly-once discipline: a request only falls through when the failed
// attempt provably did not launch a child (connect refused, channel already
// dead, the frame never fully reached the wire). A transport death after the
// request was on the wire is *indeterminate* — the server may have forked
// before dying — so the error is surfaced to the caller instead of retried,
// and only the NEXT spawn takes the fallback route. Losing a request is a
// retry away; launching it twice is unfixable.
//
// Transports whose construction is expensive (forking servers) should be
// lazy: construct cheaply, connect/start on first Launch/Probe.
#ifndef SRC_SPAWN_SERVICE_H_
#define SRC_SPAWN_SERVICE_H_

#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/spawn/backend.h"
#include "src/spawn/metrics.h"
#include "src/spawn/process_handle.h"
#include "src/spawn/spawner.h"

namespace forklift {

// How a failed Launch attempt should steer routing.
enum class SpawnFailureKind {
  // The request itself is bad (program not found, invalid fd plan): no other
  // route would fare better, so the error is final.
  kRequest,
  // The transport failed before the request could have launched a child:
  // safe to retry here or fall through to the next route.
  kTransportRetryable,
  // The transport died after the request may have reached it: the child may
  // or may not exist, so neither retry nor fallback is safe for THIS request.
  kTransportIndeterminate,
};

// One mechanism a SpawnService can route to. Implementations must be
// thread-safe: a service may launch from many threads at once.
class SpawnTransport {
 public:
  virtual ~SpawnTransport() = default;

  // Stable route name (the pin key and the metrics label).
  virtual const char* Name() const = 0;

  // Whether this transport can deliver pipe stdio / PassPipe channels to the
  // caller. False for wire transports: BuildRequest cannot resolve a pipe
  // spec into something shippable.
  virtual bool SupportsPipeStdio() const = 0;

  // Cheap liveness check used to re-admit a quarantined route. Default:
  // always healthy.
  virtual Status Probe() { return Status::Ok(); }

  // Launches. `trace_id` is the request's trace id (the service allocates it
  // via obs::NextRequestId); wire transports MUST use it as the protocol-v2
  // request_id so the frame on the wire and the trace spans correlate, and
  // may record transport-level spans under it. On failure, *failure
  // classifies the error for the router (implementations must always set it
  // on the error path).
  virtual Result<ProcessHandle> Launch(const Spawner& spawner, uint64_t trace_id,
                                       SpawnFailureKind* failure) = 0;
};

// A transport over one in-process backend engine (fork+exec, vfork,
// posix_spawn, clone). Name: "local:forkexec" etc.
std::unique_ptr<SpawnTransport> MakeLocalTransport(SpawnBackendKind kind);

class SpawnService {
 public:
  struct Options {
    // Launch attempts per route for retryable transport failures (1 = no
    // retry, just fall through).
    int attempts_per_route = 2;
    // Sleep between same-route retries, doubling per attempt.
    double retry_backoff_base_seconds = 0.002;
    // Cool-down after a transport failure before a Probe() may re-admit the
    // route. 0 disables quarantine.
    double quarantine_seconds = 1.0;
  };

  SpawnService() : SpawnService(Options{}) {}
  explicit SpawnService(Options options) : options_(options) {}
  SpawnService(const SpawnService&) = delete;
  SpawnService& operator=(const SpawnService&) = delete;

  // Appends a route; registration order is fallback priority (primary
  // first). Routes cannot be removed — a quarantined route just stops being
  // chosen.
  void AddRoute(std::unique_ptr<SpawnTransport> transport);
  // Convenience: appends MakeLocalTransport(kind).
  void AddLocalRoute(SpawnBackendKind kind = SpawnBackendKind::kForkExec);

  // Routes by policy across the whole chain. Every call allocates one
  // request/trace id and records the submit and per-route spans under it
  // (obs::Tracer), so the returned handle's trace_id() keys the request's
  // whole lifecycle.
  Result<ProcessHandle> Spawn(const Spawner& spawner);

  // Pins the request to the named route: no fallback, but same-route retry
  // and capability checking still apply.
  Result<ProcessHandle> Spawn(const Spawner& spawner, std::string_view pinned_route);

  size_t route_count() const;
  std::vector<std::string> route_names() const;
  // Counters for one route (zeroes for an unknown name).
  RouteMetrics::Snapshot RouteStats(std::string_view route_name) const;

 private:
  struct Route {
    std::unique_ptr<SpawnTransport> transport;
    RouteMetrics metrics;
    // MonotonicNanos gate: quarantined until then (0 = healthy). Guarded by
    // the service mutex; Launch itself runs outside the lock.
    uint64_t unhealthy_until_ns = 0;
  };

  // True when the route may be attempted now (healthy, or quarantine elapsed,
  // or a Probe just passed and cleared the gate).
  bool AdmitRoute(Route& route);
  void QuarantineRoute(Route& route);

  // One route's bounded attempt loop. On failure *failure holds the LAST
  // attempt's classification.
  Result<ProcessHandle> SpawnOnRoute(Route& route, const Spawner& spawner, uint64_t trace_id,
                                     SpawnFailureKind* failure);

  Options options_;
  mutable std::mutex mu_;  // guards routes_ vector growth and quarantine gates
  std::vector<std::unique_ptr<Route>> routes_;
};

}  // namespace forklift

#endif  // SRC_SPAWN_SERVICE_H_
