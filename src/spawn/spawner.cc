#include "src/spawn/spawner.h"

#include <fcntl.h>
#include <unistd.h>

#include <utility>

#include "src/common/clock.h"
#include "src/common/pipe.h"
#include "src/common/syscall.h"
#include "src/spawn/metrics.h"

namespace forklift {

Spawner::Spawner(std::string program) : program_(std::move(program)) {}

Spawner& Spawner::Arg(std::string arg) {
  args_.push_back(std::move(arg));
  return *this;
}

Spawner& Spawner::Args(const std::vector<std::string>& args) {
  for (const auto& a : args) {
    args_.push_back(a);
  }
  return *this;
}

Spawner& Spawner::Argv0(std::string argv0) {
  argv0_ = std::move(argv0);
  return *this;
}

Spawner& Spawner::ClearEnv() {
  inherit_env_ = false;
  explicit_env_.reset();
  return *this;
}

Spawner& Spawner::SetEnv(std::string_view key, std::string_view value) {
  env_overrides_.Set(key, value);
  return *this;
}

Spawner& Spawner::UnsetEnv(std::string_view key) {
  env_unsets_.emplace_back(key);
  return *this;
}

Spawner& Spawner::SetEnvMap(EnvMap env) {
  explicit_env_ = std::move(env);
  inherit_env_ = false;
  return *this;
}

Spawner& Spawner::SetStdin(Stdio spec) {
  stdin_spec_ = spec;
  return *this;
}

Spawner& Spawner::SetStdout(Stdio spec) {
  stdout_spec_ = spec;
  return *this;
}

Spawner& Spawner::SetStderr(Stdio spec) {
  stderr_spec_ = spec;
  return *this;
}

Spawner& Spawner::PassFd(int parent_fd, int child_fd) {
  extra_fds_.Dup2(parent_fd, child_fd);
  return *this;
}

Result<UniqueFd> Spawner::PassPipeToChild(int child_fd) {
  FORKLIFT_ASSIGN_OR_RETURN(Pipe p, MakePipe());
  extra_fds_.Dup2(p.read_end.get(), child_fd);
  owned_child_fds_.push_back(std::make_shared<UniqueFd>(std::move(p.read_end)));
  return std::move(p.write_end);
}

Result<UniqueFd> Spawner::PassPipeFromChild(int child_fd) {
  FORKLIFT_ASSIGN_OR_RETURN(Pipe p, MakePipe());
  extra_fds_.Dup2(p.write_end.get(), child_fd);
  owned_child_fds_.push_back(std::make_shared<UniqueFd>(std::move(p.write_end)));
  return std::move(p.read_end);
}

Spawner& Spawner::CloseOtherFds() {
  close_other_fds_ = true;
  return *this;
}

Spawner& Spawner::SetCwd(std::string cwd) {
  cwd_ = std::move(cwd);
  return *this;
}

Spawner& Spawner::SetUmask(mode_t mask) {
  umask_ = mask;
  return *this;
}

Spawner& Spawner::ResetSignals(bool reset) {
  reset_signals_ = reset;
  return *this;
}

Spawner& Spawner::NewSession() {
  new_session_ = true;
  return *this;
}

Spawner& Spawner::SetProcessGroup(pid_t pgid) {
  process_group_ = pgid;
  return *this;
}

Spawner& Spawner::SetNice(int nice_value) {
  nice_value_ = nice_value;
  return *this;
}

Spawner& Spawner::AddRlimit(int resource, rlim_t soft, rlim_t hard) {
  RlimitSpec spec;
  spec.resource = resource;
  spec.limit.rlim_cur = soft;
  spec.limit.rlim_max = hard;
  rlimits_.push_back(spec);
  return *this;
}

Spawner& Spawner::SetBackend(SpawnBackendKind kind) {
  backend_kind_ = kind;
  if (kind != SpawnBackendKind::kCustom) {
    custom_backend_ = nullptr;
  }
  return *this;
}

Spawner& Spawner::SetCustomBackend(SpawnBackend* backend) {
  custom_backend_ = backend;
  backend_kind_ = SpawnBackendKind::kCustom;
  return *this;
}

namespace {

// Assembles the request fields that do not depend on stdio plumbing.
struct BaseRequest {
  SpawnRequest req;
};

EnvMap ResolveEnv(bool inherit, const std::optional<EnvMap>& explicit_env,
                  const EnvMap& overrides, const std::vector<std::string>& unsets) {
  EnvMap env;
  if (explicit_env.has_value()) {
    env = *explicit_env;
  } else if (inherit) {
    env = EnvMap::FromCurrent();
  }
  for (const auto& [k, v] : overrides.vars()) {
    env.Set(k, v);
  }
  for (const auto& k : unsets) {
    env.Unset(k);
  }
  return env;
}

}  // namespace

Result<SpawnRequest> Spawner::BuildRequest() const {
  auto is_pipe = [](const Stdio& s) { return s.kind() == Stdio::Kind::kPipe; };
  if (is_pipe(stdin_spec_) || is_pipe(stdout_spec_) || is_pipe(stderr_spec_)) {
    return LogicalError("BuildRequest: pipe stdio requires Spawn(), not BuildRequest()");
  }

  SpawnRequest req;
  req.program = program_;
  req.use_path_search = program_.find('/') == std::string::npos;

  std::vector<std::string> argv;
  argv.push_back(argv0_.value_or(program_));
  for (const auto& a : args_) {
    argv.push_back(a);
  }
  req.argv = ArgvBlock(argv);
  req.envp = ResolveEnv(inherit_env_, explicit_env_, env_overrides_, env_unsets_).ToBlock();

  // Non-pipe stdio lowers to plain fd actions (kFd/kPath handled by Spawn();
  // here only Inherit/Null/Fd/MergeStdout are representable without parent
  // state, so Path specs are lowered to child-side opens).
  FdPlan plan;
  auto lower = [&plan](const Stdio& spec, int target, int stdout_src) -> Status {
    switch (spec.kind()) {
      case Stdio::Kind::kInherit:
        return Status::Ok();
      case Stdio::Kind::kNull: {
        int flags = target == 0 ? O_RDONLY : O_WRONLY;
        plan.Open("/dev/null", flags, 0, target);
        return Status::Ok();
      }
      case Stdio::Kind::kFd:
        plan.Dup2(spec.fd(), target);
        return Status::Ok();
      case Stdio::Kind::kPath: {
        int flags = target == 0 ? O_RDONLY : (O_WRONLY | O_CREAT | O_TRUNC);
        plan.Open(spec.path(), flags, 0644, target);
        return Status::Ok();
      }
      case Stdio::Kind::kAppendPath:
        plan.Open(spec.path(), O_WRONLY | O_CREAT | O_APPEND, 0644, target);
        return Status::Ok();
      case Stdio::Kind::kMergeStdout:
        if (target != 2) {
          return LogicalError("MergeStdout is only valid for stderr");
        }
        plan.Dup2(stdout_src, 2);
        return Status::Ok();
      case Stdio::Kind::kPipe:
        return LogicalError("unreachable: pipe checked above");
    }
    return LogicalError("unknown stdio kind");
  };

  int stdout_src = stdout_spec_.kind() == Stdio::Kind::kFd ? stdout_spec_.fd() : 1;
  FORKLIFT_RETURN_IF_ERROR(lower(stdin_spec_, 0, stdout_src));
  FORKLIFT_RETURN_IF_ERROR(lower(stdout_spec_, 1, stdout_src));
  if (stderr_spec_.kind() == Stdio::Kind::kMergeStdout &&
      (stdout_spec_.kind() == Stdio::Kind::kPath ||
       stdout_spec_.kind() == Stdio::Kind::kAppendPath)) {
    // stdout is opened child-side at fd 1; stderr must clone that binding.
    // Parent semantics cannot express "fd 1 after the open", so lower stderr
    // as a second open of the same path in append-compatible mode sharing the
    // offset is NOT possible; reject rather than silently mis-share.
    return LogicalError("BuildRequest: MergeStdout with Path stdout requires Spawn()");
  }
  FORKLIFT_RETURN_IF_ERROR(lower(stderr_spec_, 2, stdout_src));
  for (const auto& a : extra_fds_.actions()) {
    switch (a.kind) {
      case FdAction::Kind::kDup2:
        plan.Dup2(a.src_fd, a.child_fd);
        break;
      case FdAction::Kind::kOpen:
        plan.Open(a.path, a.flags, a.mode, a.child_fd);
        break;
      case FdAction::Kind::kClose:
        plan.Close(a.child_fd);
        break;
      case FdAction::Kind::kInherit:
        plan.Inherit(a.child_fd);
        break;
    }
  }
  FORKLIFT_ASSIGN_OR_RETURN(req.fd_plan, plan.Compile());

  req.cwd = cwd_;
  req.umask_value = umask_;
  req.reset_signal_mask = reset_signals_;
  req.reset_signal_handlers = reset_signals_;
  req.new_session = new_session_;
  req.process_group = process_group_;
  req.nice_value = nice_value_;
  req.rlimits = rlimits_;
  req.close_other_fds = close_other_fds_;
  return req;
}

Result<Child> Spawner::Spawn() {
  SpawnTimeline timeline;
  timeline.submit_ns = MonotonicNanos();

  SpawnRequest req;
  req.program = program_;
  req.use_path_search = program_.find('/') == std::string::npos;

  std::vector<std::string> argv;
  argv.push_back(argv0_.value_or(program_));
  for (const auto& a : args_) {
    argv.push_back(a);
  }
  req.argv = ArgvBlock(argv);
  req.envp = ResolveEnv(inherit_env_, explicit_env_, env_overrides_, env_unsets_).ToBlock();

  // Stdio plumbing. Files are opened in the parent so open failures surface as
  // clean errors before any process exists; pipes keep their parent ends in
  // `child_pipes` until launch succeeds.
  FdPlan plan;
  std::vector<UniqueFd> temps;     // parent-held fds that die after launch
  UniqueFd pipe_in_parent;         // write end of the stdin pipe
  UniqueFd pipe_out_parent;        // read end of the stdout pipe
  UniqueFd pipe_err_parent;        // read end of the stderr pipe

  // Resolved parent-side source fd for each stream (for MergeStdout).
  int stdout_src = -1;

  auto lower = [&](const Stdio& spec, int target) -> Status {
    switch (spec.kind()) {
      case Stdio::Kind::kInherit:
        if (target == 1) {
          stdout_src = 1;
        }
        return Status::Ok();
      case Stdio::Kind::kNull: {
        int flags = (target == 0 ? O_RDONLY : O_WRONLY) | O_CLOEXEC;
        auto fd = OpenFd("/dev/null", flags);
        if (!fd.ok()) {
          return Err(fd.error());
        }
        if (target == 1) {
          stdout_src = fd->get();
        }
        plan.Dup2(fd->get(), target);
        temps.push_back(std::move(fd).value());
        return Status::Ok();
      }
      case Stdio::Kind::kPipe: {
        auto p = MakePipe();
        if (!p.ok()) {
          return Err(p.error());
        }
        if (target == 0) {
          plan.Dup2(p->read_end.get(), 0);
          pipe_in_parent = std::move(p->write_end);
          temps.push_back(std::move(p->read_end));
        } else {
          plan.Dup2(p->write_end.get(), target);
          if (target == 1) {
            stdout_src = p->write_end.get();
            pipe_out_parent = std::move(p->read_end);
          } else {
            pipe_err_parent = std::move(p->read_end);
          }
          temps.push_back(std::move(p->write_end));
        }
        return Status::Ok();
      }
      case Stdio::Kind::kFd:
        if (target == 1) {
          stdout_src = spec.fd();
        }
        plan.Dup2(spec.fd(), target);
        return Status::Ok();
      case Stdio::Kind::kPath:
      case Stdio::Kind::kAppendPath: {
        int flags;
        if (target == 0) {
          flags = O_RDONLY | O_CLOEXEC;
        } else if (spec.kind() == Stdio::Kind::kAppendPath) {
          flags = O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC;
        } else {
          flags = O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC;
        }
        auto fd = OpenFd(spec.path(), flags, 0644);
        if (!fd.ok()) {
          return Err(fd.error());
        }
        if (target == 1) {
          stdout_src = fd->get();
        }
        plan.Dup2(fd->get(), target);
        temps.push_back(std::move(fd).value());
        return Status::Ok();
      }
      case Stdio::Kind::kMergeStdout:
        if (target != 2) {
          return LogicalError("MergeStdout is only valid for stderr");
        }
        if (stdout_src < 0) {
          return LogicalError("MergeStdout: stdout has no resolvable source");
        }
        plan.Dup2(stdout_src, 2);
        return Status::Ok();
    }
    return LogicalError("unknown stdio kind");
  };

  FORKLIFT_RETURN_IF_ERROR(lower(stdin_spec_, 0));
  FORKLIFT_RETURN_IF_ERROR(lower(stdout_spec_, 1));
  FORKLIFT_RETURN_IF_ERROR(lower(stderr_spec_, 2));

  for (const auto& a : extra_fds_.actions()) {
    switch (a.kind) {
      case FdAction::Kind::kDup2:
        plan.Dup2(a.src_fd, a.child_fd);
        break;
      case FdAction::Kind::kOpen:
        plan.Open(a.path, a.flags, a.mode, a.child_fd);
        break;
      case FdAction::Kind::kClose:
        plan.Close(a.child_fd);
        break;
      case FdAction::Kind::kInherit:
        plan.Inherit(a.child_fd);
        break;
    }
  }
  FORKLIFT_ASSIGN_OR_RETURN(req.fd_plan, plan.Compile());

  req.cwd = cwd_;
  req.umask_value = umask_;
  req.reset_signal_mask = reset_signals_;
  req.reset_signal_handlers = reset_signals_;
  req.new_session = new_session_;
  req.process_group = process_group_;
  req.nice_value = nice_value_;
  req.rlimits = rlimits_;
  req.close_other_fds = close_other_fds_;

  SpawnBackend* backend = nullptr;
  switch (backend_kind_) {
    case SpawnBackendKind::kForkExec:
      backend = &ForkExecBackend();
      break;
    case SpawnBackendKind::kVfork:
      backend = &VforkBackend();
      break;
    case SpawnBackendKind::kPosixSpawn:
      backend = &PosixSpawnBackend();
      break;
    case SpawnBackendKind::kCloneVm:
      backend = &Clone3Backend();
      break;
    case SpawnBackendKind::kCustom:
      backend = custom_backend_;
      break;
  }
  if (backend == nullptr) {
    return LogicalError("Spawn: no backend configured");
  }

  FORKLIFT_ASSIGN_OR_RETURN(pid_t pid, backend->Launch(req));
  timeline.exec_confirmed_ns = MonotonicNanos();
  SpawnMetrics::Global().RecordSpawn(timeline);

  Child child(pid);
  child.timeline_ = timeline;
  child.stdin_fd() = std::move(pipe_in_parent);
  child.stdout_fd() = std::move(pipe_out_parent);
  child.stderr_fd() = std::move(pipe_err_parent);
  return child;
}

}  // namespace forklift
