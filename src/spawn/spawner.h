// forklift/spawn: Spawner — the public process-creation API.
//
// This is the library's answer to the HotOS'19 paper's challenge (§6): a
// spawn-style API can be as convenient as fork+exec without inheriting fork's
// hazards. A Spawner is a declarative description of the child — program,
// arguments, environment, stdio, extra descriptors, credentials-adjacent
// attributes — that is launched atomically by a pluggable backend. Properties
// fork cannot give you, guaranteed by construction:
//
//   * thread-safe: no point where a half-copied address space runs user code;
//   * secure by default: the child sees stdin/stdout/stderr plus exactly the
//     descriptors the plan grants (CloseOtherFds() makes even legacy
//     non-CLOEXEC descriptors unreachable);
//   * composable: no ambient snapshot of locks, buffers, or library state.
//
// Usage:
//   auto child = Spawner("sort")
//                    .Args({"-r"})
//                    .SetStdin(Stdio::Pipe())
//                    .SetStdout(Stdio::Pipe())
//                    .Spawn();
//   auto outcome = child->Communicate("b\na\nc\n");
#ifndef SRC_SPAWN_SPAWNER_H_
#define SRC_SPAWN_SPAWNER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/env.h"
#include "src/common/result.h"
#include "src/spawn/backend.h"
#include "src/spawn/child.h"
#include "src/spawn/fd_actions.h"

namespace forklift {

// Where a child standard stream comes from / goes to.
class Stdio {
 public:
  enum class Kind {
    kInherit,      // share the parent's descriptor (the default)
    kNull,         // /dev/null
    kPipe,         // a pipe whose parent end lands on the Child handle
    kFd,           // a caller-supplied parent descriptor
    kPath,         // a file opened by the parent (write: create/truncate)
    kAppendPath,   // as kPath but O_APPEND
    kMergeStdout,  // stderr only: same destination as stdout
  };

  static Stdio Inherit() { return Stdio(Kind::kInherit); }
  static Stdio Null() { return Stdio(Kind::kNull); }
  static Stdio Pipe() { return Stdio(Kind::kPipe); }
  static Stdio Fd(int fd) {
    Stdio s(Kind::kFd);
    s.fd_ = fd;
    return s;
  }
  static Stdio Path(std::string path) {
    Stdio s(Kind::kPath);
    s.path_ = std::move(path);
    return s;
  }
  static Stdio AppendPath(std::string path) {
    Stdio s(Kind::kAppendPath);
    s.path_ = std::move(path);
    return s;
  }
  static Stdio MergeStdout() { return Stdio(Kind::kMergeStdout); }

  Kind kind() const { return kind_; }
  int fd() const { return fd_; }
  const std::string& path() const { return path_; }

 private:
  explicit Stdio(Kind kind) : kind_(kind) {}

  Kind kind_;
  int fd_ = -1;
  std::string path_;
};

class Spawner {
 public:
  // `program`: a path (contains '/') or a bare name resolved against $PATH.
  explicit Spawner(std::string program);

  // --- argv ---
  Spawner& Arg(std::string arg);
  Spawner& Args(const std::vector<std::string>& args);
  // Overrides argv[0] (defaults to `program`).
  Spawner& Argv0(std::string argv0);

  // --- environment (defaults to inheriting the parent's) ---
  Spawner& ClearEnv();
  Spawner& SetEnv(std::string_view key, std::string_view value);
  Spawner& UnsetEnv(std::string_view key);
  Spawner& SetEnvMap(EnvMap env);

  // --- stdio ---
  Spawner& SetStdin(Stdio spec);
  Spawner& SetStdout(Stdio spec);
  Spawner& SetStderr(Stdio spec);

  // --- extra descriptors ---
  // Grants the parent's `parent_fd` to the child as `child_fd`.
  Spawner& PassFd(int parent_fd, int child_fd);
  // Creates a pipe whose read end appears in the child at `child_fd`;
  // returns the parent-held write end. (A control channel INTO the child.)
  Result<UniqueFd> PassPipeToChild(int child_fd);
  // Creates a pipe whose write end appears in the child at `child_fd`;
  // returns the parent-held read end. (A report channel OUT of the child.)
  Result<UniqueFd> PassPipeFromChild(int child_fd);
  // Direct access for advanced plans (applied after stdio actions).
  FdPlan& fd_plan() { return extra_fds_; }
  // Close every descriptor the plan does not explicitly grant (close_range(2)
  // in the child). Defense against legacy non-CLOEXEC fds.
  Spawner& CloseOtherFds();

  // --- attributes ---
  Spawner& SetCwd(std::string cwd);
  Spawner& SetUmask(mode_t mask);
  // Default true: child starts with an empty signal mask and SIG_DFL handlers.
  Spawner& ResetSignals(bool reset);
  Spawner& NewSession();                 // setsid()
  Spawner& SetProcessGroup(pid_t pgid);  // setpgid(0, pgid); 0 = new group
  // setpriority(2) niceness for the child (raising niceness never needs
  // privilege). Fork-family backends only; posix_spawn cannot express it.
  Spawner& SetNice(int nice_value);
  Spawner& AddRlimit(int resource, rlim_t soft, rlim_t hard);

  // --- engine selection ---
  Spawner& SetBackend(SpawnBackendKind kind);
  // Non-owning; must outlive Spawn(). Implies kCustom.
  Spawner& SetCustomBackend(SpawnBackend* backend);

  // Resolves the builder into a SpawnRequest without launching (used by the
  // fork server's client to ship the request over the wire). Pipe stdio specs
  // are not resolvable here and produce an error.
  Result<SpawnRequest> BuildRequest() const;

  // Whether any stream is configured as Stdio::Pipe or any PassPipe* channel
  // exists (such spawners cannot be restarted by a Supervisor — a respawn
  // would have nowhere to deliver the new pipe ends).
  bool UsesPipeStdio() const {
    auto is_pipe = [](const Stdio& s) { return s.kind() == Stdio::Kind::kPipe; };
    return is_pipe(stdin_spec_) || is_pipe(stdout_spec_) || is_pipe(stderr_spec_) ||
           !owned_child_fds_.empty();
  }

  // Launches the child.
  Result<Child> Spawn();

 private:
  std::string program_;
  std::optional<std::string> argv0_;
  std::vector<std::string> args_;

  bool inherit_env_ = true;
  EnvMap env_overrides_;           // applied on top of inherited env
  std::vector<std::string> env_unsets_;
  std::optional<EnvMap> explicit_env_;

  Stdio stdin_spec_ = Stdio::Inherit();
  Stdio stdout_spec_ = Stdio::Inherit();
  Stdio stderr_spec_ = Stdio::Inherit();
  FdPlan extra_fds_;
  // Child-side ends of PassPipe* channels, kept alive until Spawn (shared so
  // the Spawner stays copyable; copies reference the same pipe).
  std::vector<std::shared_ptr<UniqueFd>> owned_child_fds_;
  bool close_other_fds_ = false;

  std::optional<std::string> cwd_;
  std::optional<mode_t> umask_;
  bool reset_signals_ = true;
  bool new_session_ = false;
  std::optional<pid_t> process_group_;
  std::optional<int> nice_value_;
  std::vector<RlimitSpec> rlimits_;

  SpawnBackendKind backend_kind_ = SpawnBackendKind::kForkExec;
  SpawnBackend* custom_backend_ = nullptr;
};

}  // namespace forklift

#endif  // SRC_SPAWN_SPAWNER_H_
