#include "src/spawn/supervisor.h"

#include <signal.h>

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/clock.h"
#include "src/common/log.h"
#include "src/spawn/service.h"

namespace forklift {

namespace {

// Signals a service's process — or its whole process group when the
// supervisor owns the group (reaching grandchildren a shell may have left).
// Direct kill(2) rather than ProcessHandle::Kill: group targeting needs the
// negated pid, and remote pids share our namespace anyway.
void SignalService(const ProcessHandle& child, int sig, bool group) {
  pid_t target = group ? -child.pid() : child.pid();
  (void)::kill(target, sig);
}

// Epoll timeout (ms, rounded up) for the tail of a deadline window.
int RemainingMillis(const Stopwatch& sw, double deadline_seconds) {
  double remaining = deadline_seconds - sw.ElapsedSeconds();
  if (remaining <= 0) {
    return 0;
  }
  return static_cast<int>(remaining * 1000.0) + 1;
}

}  // namespace

Supervisor::Supervisor() : Supervisor(Options{}) {}

Supervisor::Supervisor(Options options) : options_(options) {}

Supervisor::Supervisor(Options options, SpawnService* service)
    : options_(options), service_(service) {}

Supervisor::~Supervisor() {
  if (running_count() > 0) {
    (void)ShutdownAll();
  }
}

Status Supervisor::EnsureReactor() {
  if (reactor_.has_value()) {
    return Status::Ok();
  }
  FORKLIFT_ASSIGN_OR_RETURN(Reactor reactor, Reactor::Create());
  reactor_.emplace(std::move(reactor));
  return Status::Ok();
}

Status Supervisor::ArmWatch(Service& svc) {
  // The callback's only job is waking the reactor and reaping promptly (which
  // stamps exit-observed); event construction stays in ReapAndRestart, which
  // sees the cached status. `svc` lives in a std::map node — address-stable
  // across insert/erase of other services — and the watch dies with it.
  FORKLIFT_ASSIGN_OR_RETURN(
      ChildWatch watch,
      ChildWatch::Arm(*reactor_, svc.child.pid(), [&svc] { (void)svc.child.TryWait(); }));
  svc.watch = std::move(watch);
  return Status::Ok();
}

void Supervisor::ScheduleRestartWake(Service& svc) {
  // A timerfd deadline at the backoff gate: the wake alone suffices, since
  // ReapAndRestart re-checks restart_not_before_ns against the clock.
  svc.restart_timer = reactor_->AddTimerAt(svc.restart_not_before_ns, [] {});
}

Result<ProcessHandle> Supervisor::SpawnChild(Service& svc) {
  if (service_ != nullptr) {
    return service_->Spawn(svc.spawner);
  }
  FORKLIFT_ASSIGN_OR_RETURN(Child child, svc.spawner.Spawn());
  return ProcessHandle::FromChild(std::move(child));
}

Result<Supervisor::ServiceId> Supervisor::Launch(const Spawner& spawner, std::string name,
                                                 RestartPolicy policy) {
  if (spawner.UsesPipeStdio()) {
    return LogicalError("Supervisor: pipe stdio cannot be supervised (restarts would orphan "
                        "the pipe ends); use Stdio::Path or Stdio::Fd");
  }
  FORKLIFT_RETURN_IF_ERROR(EnsureReactor());
  Service service{std::move(name), spawner, policy};
  if (options_.kill_process_group) {
    service.spawner.SetProcessGroup(0);  // own group, so group signals work
  }
  auto child = SpawnChild(service);
  if (!child.ok()) {
    return Err(child.error());
  }
  service.child = std::move(child).value();
  service.running = true;
  service.starts = 1;
  ServiceId id = next_id_++;
  auto [it, inserted] = services_.emplace(id, std::move(service));
  (void)inserted;
  FORKLIFT_RETURN_IF_ERROR(ArmWatch(it->second));
  return id;
}

Result<std::vector<Supervisor::Event>> Supervisor::ReapAndRestart() {
  std::vector<Event> events;
  uint64_t now = MonotonicNanos();

  for (auto& [id, svc] : services_) {
    if (svc.running) {
      auto st = svc.child.TryWait();
      if (!st.ok()) {
        return Err(st.error());
      }
      if (!st->has_value()) {
        continue;  // still alive
      }
      svc.running = false;
      svc.watch.Disarm();
      Event ev;
      ev.id = id;
      ev.name = svc.name;
      ev.status = **st;
      bool failed = !ev.status.Success();
      svc.consecutive_failures = failed ? svc.consecutive_failures + 1 : 0;
      bool want_restart = svc.policy == RestartPolicy::kAlways ||
                          (svc.policy == RestartPolicy::kOnFailure && failed);
      if (want_restart && svc.consecutive_failures > options_.max_consecutive_failures) {
        svc.abandoned = true;
        ev.abandoned = true;
        FORKLIFT_WARN("supervisor: abandoning '%s' after %d consecutive failures",
                      svc.name.c_str(), svc.consecutive_failures);
      } else if (want_restart) {
        double backoff = options_.restart_backoff_base_seconds *
                         std::pow(2.0, std::max(0, svc.consecutive_failures - 1));
        backoff = std::min(backoff, options_.restart_backoff_cap_seconds);
        svc.restart_not_before_ns = now + static_cast<uint64_t>(backoff * 1e9);
        svc.pending_restart = true;
        ScheduleRestartWake(svc);
        ev.will_restart = true;
      }
      events.push_back(std::move(ev));
    }

    if (svc.pending_restart && !svc.abandoned && MonotonicNanos() >= svc.restart_not_before_ns) {
      svc.pending_restart = false;
      auto child = SpawnChild(svc);
      if (!child.ok()) {
        // Spawn failure counts as an instant failed start.
        ++svc.consecutive_failures;
        if (svc.consecutive_failures > options_.max_consecutive_failures) {
          svc.abandoned = true;
          Event ev;
          ev.id = id;
          ev.name = svc.name;
          ev.abandoned = true;
          events.push_back(std::move(ev));
        } else {
          double backoff = options_.restart_backoff_base_seconds *
                           std::pow(2.0, std::max(0, svc.consecutive_failures - 1));
          svc.restart_not_before_ns =
              MonotonicNanos() + static_cast<uint64_t>(
                                     std::min(backoff, options_.restart_backoff_cap_seconds) * 1e9);
          svc.pending_restart = true;
          ScheduleRestartWake(svc);
        }
        continue;
      }
      svc.child = std::move(child).value();
      svc.running = true;
      ++svc.starts;
      FORKLIFT_RETURN_IF_ERROR(ArmWatch(svc));
    }
  }
  return events;
}

Result<std::vector<Supervisor::Event>> Supervisor::PollOnce() {
  if (reactor_.has_value()) {
    FORKLIFT_RETURN_IF_ERROR(reactor_->PollOnce(0));
  }
  return ReapAndRestart();
}

Result<std::vector<Supervisor::Event>> Supervisor::WaitEvents(double deadline_seconds) {
  FORKLIFT_RETURN_IF_ERROR(EnsureReactor());
  Stopwatch sw;
  for (;;) {
    FORKLIFT_ASSIGN_OR_RETURN(std::vector<Event> events, ReapAndRestart());
    int remaining_ms = RemainingMillis(sw, deadline_seconds);
    if (!events.empty() || remaining_ms == 0) {
      return events;
    }
    // Parks until a pidfd (service exit) or timerfd (restart gate) fires, or
    // the caller's deadline lapses — whichever is first.
    FORKLIFT_RETURN_IF_ERROR(reactor_->PollOnce(remaining_ms));
  }
}

Status Supervisor::Stop(ServiceId id) {
  auto it = services_.find(id);
  if (it == services_.end()) {
    return LogicalError("Supervisor::Stop: unknown service id");
  }
  Service& svc = it->second;
  svc.policy = RestartPolicy::kNever;
  svc.pending_restart = false;
  if (svc.restart_timer != 0 && reactor_.has_value()) {
    reactor_->CancelTimer(svc.restart_timer);
  }
  if (svc.running) {
    SignalService(svc.child, SIGTERM, options_.kill_process_group);
    auto st = svc.child.WaitDeadline(options_.shutdown_grace_seconds);
    if (!st.ok()) {
      return Err(st.error());
    }
    if (!st->has_value()) {
      SignalService(svc.child, SIGKILL, options_.kill_process_group);
      auto reaped = svc.child.Wait();
      if (!reaped.ok()) {
        return Err(reaped.error());
      }
    }
    svc.running = false;
  }
  services_.erase(it);
  return Status::Ok();
}

Status Supervisor::ShutdownAll() {
  // Phase 1: TERM everyone (in parallel — one grace period total, not per
  // service).
  for (auto& [id, svc] : services_) {
    (void)id;
    svc.policy = RestartPolicy::kNever;
    svc.pending_restart = false;
    if (svc.restart_timer != 0 && reactor_.has_value()) {
      reactor_->CancelTimer(svc.restart_timer);
    }
    if (svc.running) {
      SignalService(svc.child, SIGTERM, options_.kill_process_group);
    }
  }
  // Phase 2: grace window. The per-service watches stay armed, so the reactor
  // wakes per exit instead of ticking a fixed sleep.
  Stopwatch sw;
  for (;;) {
    bool any_running = false;
    for (auto& [id, svc] : services_) {
      (void)id;
      if (!svc.running) {
        continue;
      }
      auto st = svc.child.TryWait();
      if (st.ok() && st->has_value()) {
        svc.running = false;
        svc.watch.Disarm();
      } else {
        any_running = true;
      }
    }
    if (!any_running) {
      break;
    }
    int remaining_ms = RemainingMillis(sw, options_.shutdown_grace_seconds);
    if (remaining_ms == 0 || !reactor_.has_value()) {
      break;
    }
    auto polled = reactor_->PollOnce(remaining_ms);
    if (!polled.ok()) {
      break;  // fall through to SIGKILL rather than leaving stragglers
    }
  }
  // Phase 3: KILL stragglers.
  Status first_error;
  for (auto& [id, svc] : services_) {
    (void)id;
    if (svc.running) {
      SignalService(svc.child, SIGKILL, options_.kill_process_group);
      auto st = svc.child.Wait();
      if (!st.ok() && first_error.ok()) {
        first_error = Err(st.error());
      }
      svc.running = false;
    }
  }
  services_.clear();
  return first_error;
}

size_t Supervisor::running_count() const {
  size_t n = 0;
  for (const auto& [id, svc] : services_) {
    (void)id;
    if (svc.running) {
      ++n;
    }
  }
  return n;
}

std::optional<pid_t> Supervisor::PidOf(ServiceId id) const {
  auto it = services_.find(id);
  if (it == services_.end() || !it->second.running) {
    return std::nullopt;
  }
  return it->second.child.pid();
}

Result<uint64_t> Supervisor::StartCount(ServiceId id) const {
  auto it = services_.find(id);
  if (it == services_.end()) {
    return LogicalError("Supervisor::StartCount: unknown service id");
  }
  return it->second.starts;
}

}  // namespace forklift
