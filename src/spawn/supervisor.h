// forklift/spawn: Supervisor — keep a fleet of children alive.
//
// The layer every adopter writes on top of a spawn API (and the layer fork
// makes miserable to write correctly, between SIGCHLD races and wait-status
// stealing): launch named services from reusable Spawner templates, observe
// exits, restart per policy with exponential backoff, and shut the fleet down
// gracefully (SIGTERM, grace period, SIGKILL). No signal handlers are
// installed — exits are detected by per-service pidfd watches on an internal
// Reactor (non-blocking reaping of exactly the pids this supervisor owns), so
// it composes with any other child-management in the process (the
// composability bar fork-based designs fail, §4). WaitEvents parks in the
// reactor's epoll set and wakes the instant a service exits or a restart
// backoff deadline arrives; nothing in this layer sleep-polls.
#ifndef SRC_SPAWN_SUPERVISOR_H_
#define SRC_SPAWN_SUPERVISOR_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/reactor.h"
#include "src/common/result.h"
#include "src/spawn/process_handle.h"
#include "src/spawn/spawner.h"

namespace forklift {

class SpawnService;

enum class RestartPolicy {
  kNever,      // one-shot: report the exit, forget the service
  kOnFailure,  // restart unless it exited 0
  kAlways,     // restart regardless
};

class Supervisor {
 public:
  struct Options {
    // SIGTERM → grace → SIGKILL during ShutdownAll.
    double shutdown_grace_seconds = 2.0;
    // Backoff between restarts of the same service: base * 2^consecutive,
    // capped. (Simulated by a not-before timestamp; PollOnce never sleeps.)
    double restart_backoff_base_seconds = 0.05;
    double restart_backoff_cap_seconds = 2.0;
    // A service exceeding this many consecutive failed starts is abandoned.
    int max_consecutive_failures = 5;
    // Place each service in its own process group and signal the whole group:
    // TERM/KILL then reach grandchildren too (a shell's `sleep` survives the
    // shell's death otherwise). Off by default because it changes the
    // children's job-control relationship with any controlling terminal.
    bool kill_process_group = false;
  };

  using ServiceId = uint64_t;

  struct Event {
    ServiceId id = 0;
    std::string name;
    ExitStatus status;
    bool will_restart = false;
    bool abandoned = false;  // gave up after max_consecutive_failures
  };

  Supervisor();  // default Options, direct local spawning
  explicit Supervisor(Options options);
  // Routes every (re)start through `service` (not owned, must outlive the
  // supervisor). nullptr spawns directly via each service's template — the
  // same as the two-argument constructors. Exit watching is
  // location-transparent either way: ChildWatch's pidfd path works for
  // non-children, and its fallback drives the handle's own TryWait, which is
  // a protocol wait for remote children.
  explicit Supervisor(SpawnService* service) : Supervisor(Options{}, service) {}
  Supervisor(Options options, SpawnService* service);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  // Launches `spawner` now and remembers it as the service's template for
  // restarts. The spawner is copied; pipe stdio is rejected (a restarted
  // child would have nowhere to hand the new pipe ends).
  Result<ServiceId> Launch(const Spawner& spawner, std::string name, RestartPolicy policy);

  // One supervision step: pump the reactor without blocking, reap exits,
  // apply restart policies whose backoff has elapsed. Returns the events
  // observed this step (possibly empty). Never blocks — a non-blocking shim
  // over the same reactor WaitEvents parks in.
  Result<std::vector<Event>> PollOnce();

  // Blocks in the reactor until `deadline_seconds` elapses or at least one
  // event is observed (whichever first). Wakes the instant a service exits
  // (pidfd) or a restart backoff deadline (timerfd) arrives; no sleep loop.
  Result<std::vector<Event>> WaitEvents(double deadline_seconds);

  // Stops one service (kNever semantics from here on) and reaps it.
  Status Stop(ServiceId id);

  // TERM everyone, grace period, KILL stragglers, reap all.
  Status ShutdownAll();

  size_t running_count() const;
  // Pid of a service's current incarnation, if running.
  std::optional<pid_t> PidOf(ServiceId id) const;
  // Total times the service has been (re)started.
  Result<uint64_t> StartCount(ServiceId id) const;

 private:
  struct Service {
    std::string name;
    Spawner spawner;
    RestartPolicy policy;
    ProcessHandle child;
    bool running = false;
    bool abandoned = false;
    uint64_t starts = 0;
    int consecutive_failures = 0;
    uint64_t restart_not_before_ns = 0;  // MonotonicNanos gate
    bool pending_restart = false;
    ChildWatch watch;                      // exit notification for `child`
    Reactor::TimerId restart_timer = 0;    // wakes the reactor at the gate
  };

  Status EnsureReactor();
  Status ArmWatch(Service& svc);
  void ScheduleRestartWake(Service& svc);
  Result<std::vector<Event>> ReapAndRestart();
  // (Re)starts a service's child: through service_ when set, else the
  // template's own backend.
  Result<ProcessHandle> SpawnChild(Service& svc);

  Options options_;
  SpawnService* service_ = nullptr;  // optional routing layer (not owned)
  // Declared before services_ so per-service watches (which reference the
  // reactor) are destroyed first.
  std::optional<Reactor> reactor_;
  std::map<ServiceId, Service> services_;
  ServiceId next_id_ = 1;
};

}  // namespace forklift

#endif  // SRC_SPAWN_SUPERVISOR_H_
