// Unit tests for the whole-program layer beneath R9–R12: per-function summary
// extraction (calls, locks, forks, fds, threads, execs), name+arity call-graph
// linkage across files, fixed-point propagation over cycles, chain recovery,
// and the cache wire format.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/analysis/callgraph.h"
#include "src/analysis/lexer.h"
#include "src/analysis/summary.h"

namespace forklift {
namespace analysis {
namespace {

std::vector<FunctionSummary> Summarize(std::string_view src, std::string path) {
  FileContext ctx(std::move(path), Lex(src));
  return ExtractSummaries(ctx);
}

int IndexOf(const std::vector<FunctionSummary>& fns, std::string_view name) {
  for (size_t i = 0; i < fns.size(); ++i) {
    if (fns[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

const FunctionSummary& Get(const std::vector<FunctionSummary>& fns, std::string_view name) {
  int i = IndexOf(fns, name);
  EXPECT_GE(i, 0) << "no summary for " << name;
  return fns[static_cast<size_t>(i)];
}

TEST(SummaryExtraction, CallsForksAndLockState) {
  auto fns = Summarize(R"cc(
    std::mutex g_mu;
    int DoFork() {
      pid_t pid = fork();
      if (pid == 0) {
        _exit(0);
      }
      return pid;
    }
    void Caller() {
      std::lock_guard<std::mutex> guard(g_mu);
      DoFork();
    }
  )cc",
                       "a.cc");
  const FunctionSummary& do_fork = Get(fns, "DoFork");
  ASSERT_EQ(do_fork.forks.size(), 1u);
  EXPECT_FALSE(do_fork.forks[0].lock_held);
  EXPECT_EQ(do_fork.arity, 0);

  const FunctionSummary& caller = Get(fns, "Caller");
  ASSERT_EQ(caller.calls.size(), 1u);
  EXPECT_EQ(caller.calls[0].callee, "DoFork");
  EXPECT_TRUE(caller.calls[0].lock_held);
  EXPECT_EQ(caller.calls[0].lock_desc, "std::lock_guard");
}

TEST(SummaryExtraction, GuardScopeDiesWithBlockAndExplicitUnlockReleases) {
  auto fns = Summarize(R"cc(
    void Scoped() {
      {
        std::lock_guard<std::mutex> guard(g_mu);
      }
      After();
    }
    void Explicit() {
      g_mu.lock();
      Inside();
      g_mu.unlock();
      Outside();
    }
  )cc",
                       "a.cc");
  const FunctionSummary& scoped = Get(fns, "Scoped");
  ASSERT_EQ(scoped.calls.size(), 1u);
  EXPECT_FALSE(scoped.calls[0].lock_held);

  const FunctionSummary& expl = Get(fns, "Explicit");
  ASSERT_EQ(expl.calls.size(), 2u);
  EXPECT_TRUE(expl.calls[0].lock_held);
  EXPECT_EQ(expl.calls[0].callee, "Inside");
  EXPECT_FALSE(expl.calls[1].lock_held);
  EXPECT_EQ(expl.calls[1].callee, "Outside");
}

TEST(SummaryExtraction, ChildBranchThreadAndExecFacts) {
  auto fns = Summarize(R"cc(
    void Child() {
      pid_t pid = fork();
      if (pid == 0) {
        Inside();
        _exit(0);
      }
      AfterFork();
    }
    void Threads() {
      pthread_t tid;
      pthread_create(&tid, nullptr, Work, nullptr);
    }
    void Execs() {
      execv("/bin/true", nullptr);
    }
  )cc",
                       "a.cc");
  const FunctionSummary& child = Get(fns, "Child");
  ASSERT_EQ(child.calls.size(), 2u);
  EXPECT_TRUE(child.calls[0].in_child_branch);
  EXPECT_FALSE(child.calls[1].in_child_branch);

  EXPECT_NE(Get(fns, "Threads").thread_line, 0);
  const FunctionSummary& execs = Get(fns, "Execs");
  EXPECT_NE(execs.exec_line, 0);
  EXPECT_EQ(execs.exec_callee, "execv");
  EXPECT_TRUE(execs.calls.empty());  // exec terminates the chain, not an edge
}

TEST(SummaryExtraction, LeakyFdEscapeForms) {
  auto fns = Summarize(R"cc(
    int Returned() {
      int fd = open("/tmp/x", O_WRONLY);
      return fd;
    }
    void Passed() {
      int fd = open("/tmp/y", O_RDONLY);
      Consume(fd);
    }
    void Contained() {
      int fd = open("/tmp/z", O_RDONLY);
      close(fd);
    }
    int Safe() {
      return open("/tmp/w", O_WRONLY | O_CLOEXEC);
    }
  )cc",
                       "a.cc");
  const FunctionSummary& ret = Get(fns, "Returned");
  ASSERT_EQ(ret.leaky_fds.size(), 1u);
  EXPECT_TRUE(ret.leaky_fds[0].escapes);
  EXPECT_EQ(ret.leaky_fds[0].escape_how, "returned");

  const FunctionSummary& passed = Get(fns, "Passed");
  ASSERT_EQ(passed.leaky_fds.size(), 1u);
  EXPECT_TRUE(passed.leaky_fds[0].escapes);
  EXPECT_EQ(passed.leaky_fds[0].escape_how, "passed to Consume()");

  const FunctionSummary& contained = Get(fns, "Contained");
  ASSERT_EQ(contained.leaky_fds.size(), 1u);
  EXPECT_FALSE(contained.leaky_fds[0].escapes);  // close() consumes, not escapes

  EXPECT_TRUE(Get(fns, "Safe").leaky_fds.empty());
}

TEST(SummaryExtraction, LambdaBodiesAreNotTheEnclosingFunctions) {
  auto fns = Summarize(R"cc(
    void Runner() {
      auto task = [](int v) { printf("%d", v); };
      task(3);
    }
  )cc",
                       "a.cc");
  const FunctionSummary& runner = Get(fns, "Runner");
  EXPECT_TRUE(runner.unsafe_calls.empty());  // the printf belongs to the lambda
  ASSERT_GE(IndexOf(fns, "<lambda>"), 0);
  EXPECT_FALSE(Get(fns, "<lambda>").unsafe_calls.empty());
}

TEST(CallGraph, OverloadsResolveByArity) {
  auto fns = Summarize(R"cc(
    int Handle(int a) { return a; }
    int Handle(int a, int b) {
      pid_t p = fork();
      if (p == 0) { _exit(0); }
      return a + b;
    }
    void Caller() { Handle(1, 2); }
  )cc",
                       "a.cc");
  CallGraph graph;
  graph.Build(&fns);
  PropagateSummaries(graph, &fns);

  int caller = IndexOf(fns, "Caller");
  ASSERT_GE(caller, 0);
  int target = graph.ResolveCall(static_cast<size_t>(caller), 0);
  ASSERT_GE(target, 0);
  EXPECT_EQ(fns[static_cast<size_t>(target)].arity, 2);
  EXPECT_TRUE(fns[static_cast<size_t>(caller)].may_fork);
}

TEST(CallGraph, SameFileDefinitionWinsOverCrossFile) {
  auto a = Summarize("void Helper() { pid_t p = fork(); if (p == 0) { _exit(0); } }", "a.cc");
  auto b = Summarize(R"cc(
    void Helper() {}
    void User() { Helper(); }
  )cc",
                     "b.cc");
  std::vector<FunctionSummary> all;
  all.insert(all.end(), a.begin(), a.end());
  all.insert(all.end(), b.begin(), b.end());
  CallGraph graph;
  graph.Build(&all);
  PropagateSummaries(graph, &all);

  int user = IndexOf(all, "User");
  ASSERT_GE(user, 0);
  int target = graph.ResolveCall(static_cast<size_t>(user), 0);
  ASSERT_GE(target, 0);
  EXPECT_EQ(all[static_cast<size_t>(target)].path, "b.cc");
  EXPECT_FALSE(all[static_cast<size_t>(user)].may_fork);
}

TEST(CallGraph, AmbiguousCrossFileStaysUnresolved) {
  auto a = Summarize("void Helper() { pid_t p = fork(); if (p == 0) { _exit(0); } }", "a.cc");
  auto b = Summarize("void Helper() {}", "b.cc");
  auto c = Summarize("void User() { Helper(); }", "c.cc");
  std::vector<FunctionSummary> all;
  for (auto* v : {&a, &b, &c}) {
    all.insert(all.end(), v->begin(), v->end());
  }
  CallGraph graph;
  graph.Build(&all);
  PropagateSummaries(graph, &all);

  int user = IndexOf(all, "User");
  ASSERT_GE(user, 0);
  EXPECT_EQ(graph.ResolveCall(static_cast<size_t>(user), 0), -1);
  EXPECT_FALSE(all[static_cast<size_t>(user)].may_fork);
}

TEST(CallGraph, UniqueCrossFileResolves) {
  auto a = Summarize("void Helper() { pid_t p = fork(); if (p == 0) { _exit(0); } }", "a.cc");
  auto c = Summarize("void User() { Helper(); }", "c.cc");
  std::vector<FunctionSummary> all;
  all.insert(all.end(), a.begin(), a.end());
  all.insert(all.end(), c.begin(), c.end());
  CallGraph graph;
  graph.Build(&all);
  PropagateSummaries(graph, &all);

  int user = IndexOf(all, "User");
  ASSERT_GE(user, 0);
  EXPECT_GE(graph.ResolveCall(static_cast<size_t>(user), 0), 0);
  EXPECT_TRUE(all[static_cast<size_t>(user)].may_fork);
}

TEST(CallGraph, PropagationTerminatesOnCyclesWithCorrectFacts) {
  auto fns = Summarize(R"cc(
    void Ping(int n) {
      if (n > 0) { Pong(n - 1); }
    }
    void Pong(int n) {
      Ping(n - 1);
      pid_t p = fork();
      if (p == 0) { _exit(0); }
    }
    void Bystander() { Leaf(); }
    void Leaf() {}
  )cc",
                       "a.cc");
  CallGraph graph;
  graph.Build(&fns);
  PropagateSummaries(graph, &fns);
  EXPECT_TRUE(Get(fns, "Ping").may_fork);
  EXPECT_TRUE(Get(fns, "Pong").may_fork);
  EXPECT_FALSE(Get(fns, "Bystander").may_fork);
}

TEST(CallGraph, ChainToRecoversShortestPath) {
  auto fns = Summarize(R"cc(
    void Deep() { pid_t p = fork(); if (p == 0) { _exit(0); } }
    void Mid() { Deep(); }
    void Top() { Mid(); }
  )cc",
                       "a.cc");
  CallGraph graph;
  graph.Build(&fns);
  int top = IndexOf(fns, "Top");
  ASSERT_GE(top, 0);
  auto chain = graph.ChainTo(static_cast<size_t>(top),
                             [](const FunctionSummary& f) { return !f.forks.empty(); });
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_EQ(fns[chain[0].fn].name, "Top");
  EXPECT_EQ(fns[chain[0].fn].calls[chain[0].call].callee, "Mid");
  EXPECT_EQ(fns[chain[1].fn].name, "Mid");
  EXPECT_EQ(fns[chain[1].fn].calls[chain[1].call].callee, "Deep");
}

TEST(SummarySerialization, RoundTripIsLossless) {
  auto fns = Summarize(R"cc(
    int Opener() {
      int fd = open("/tmp/x", O_WRONLY);
      return fd;
    }
    void Busy() {
      std::lock_guard<std::mutex> guard(g_mu);
      pthread_create(&tid, nullptr, Work, nullptr);
      pid_t p = fork();
      if (p == 0) {
        printf("child");
        execv("/bin/true", nullptr);
      }
      Opener();
    }
  )cc",
                       "a.cc");
  const std::string wire = SerializeSummaries(fns);
  std::vector<FunctionSummary> back;
  ASSERT_TRUE(DeserializeSummaries(wire, &back));
  ASSERT_EQ(back.size(), fns.size());
  EXPECT_EQ(SerializeSummaries(back), wire);
  const FunctionSummary& busy = Get(back, "Busy");
  EXPECT_EQ(busy.forks.size(), Get(fns, "Busy").forks.size());
  EXPECT_TRUE(busy.forks[0].lock_held);
  EXPECT_NE(busy.thread_line, 0);
  EXPECT_EQ(Get(back, "Opener").leaky_fds.size(), 1u);
}

TEST(SummarySerialization, RejectsGarbage) {
  std::vector<FunctionSummary> out;
  EXPECT_FALSE(DeserializeSummaries("not a cache entry", &out));
  EXPECT_FALSE(DeserializeSummaries("summaries 1\ncall before any fn", &out));
}

}  // namespace
}  // namespace analysis
}  // namespace forklift
