// R10 negative fixture: the child-branch callee bottoms out in write() —
// async-signal-safe all the way down.
#include <unistd.h>

void SafeNote() { write(2, "x", 1); }

void TellParent() { SafeNote(); }

void RunChild() {
  pid_t pid = fork();
  if (pid == 0) {
    TellParent();
    _exit(0);
  }
}
