// R10 positive fixture: the fork child calls a clean-looking helper whose
// implementation two calls down hits printf — async-signal-unsafe, invisible
// to the per-file R1.
#include <cstdio>
#include <unistd.h>

void LogDeep(const char* msg) { printf("%s\n", msg); }

void ReportStatus() { LogDeep("child started"); }

void RunChild() {
  pid_t pid = fork();
  if (pid == 0) {
    ReportStatus();  // forklint-expect: R10
    _exit(0);
  }
}
