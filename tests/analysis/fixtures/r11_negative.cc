// R11 negative fixture: CLOEXEC at creation (nothing to leak), and a leaky fd
// whose caller closure contains no exec (nowhere to leak to).
#include <fcntl.h>
#include <unistd.h>

int ReadAll(int fd);

int OpenSafe() {
  int fd = open("/tmp/tool.log", O_WRONLY | O_CLOEXEC);
  return fd;
}

void NoExecAnywhere() {
  int fd = open("/tmp/data", O_RDONLY);
  ReadAll(fd);
  close(fd);
}

void RunTool() {
  int fd = OpenSafe();
  dup2(fd, 1);
  execlp("tool", "tool", (char*)0);
}
