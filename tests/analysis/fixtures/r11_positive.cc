// R11 positive fixture: a descriptor opened without O_CLOEXEC is returned out
// of its creating function, and the caller execs — the fd rides into the new
// process image.
#include <fcntl.h>
#include <unistd.h>

int OpenLog() {
  int fd = open("/tmp/tool.log", O_WRONLY);  // forklint-expect: R11
  return fd;
}

void RunTool() {
  int fd = OpenLog();
  dup2(fd, 1);
  execlp("tool", "tool", (char*)0);
}
