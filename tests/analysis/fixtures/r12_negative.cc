// R12 negative fixture: fork() in a program that never creates a thread —
// plain single-threaded fork semantics apply.
#include <unistd.h>

void SpawnJob() {
  pid_t pid = fork();
  if (pid == 0) {
    _exit(0);
  }
}
