// R12 positive fixture: raw fork() in a program that creates threads — the
// thread lives in a different function (a different TU in real programs),
// so only whole-program analysis connects the two.
#include <pthread.h>
#include <unistd.h>

void* Worker(void*) { return nullptr; }

void StartWorkers() {
  pthread_t tid;
  pthread_create(&tid, nullptr, Worker, nullptr);
}

void SpawnJob() {
  pid_t pid = fork();  // forklint-expect: R12
  if (pid == 0) {
    _exit(0);
  }
}
