// Golden fixture: R1 negative — a disciplined child: only async-signal-safe
// calls (write, dup2, close, execv, _exit) between fork and exec.
#include <unistd.h>

int main(int argc, char** argv) {
  (void)argc;
  pid_t pid = fork();
  if (pid == 0) {
    const char msg[] = "child up\n";
    write(2, msg, sizeof(msg) - 1);
    dup2(1, 2);
    close(0);
    execv("/bin/true", argv);
    _exit(127);
  }
  waitpid(pid, nullptr, 0);
  return 0;
}
