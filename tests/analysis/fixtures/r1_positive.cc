// Golden fixture: R1 — async-signal-unsafe work between fork() and exec.
// Trailing expectation markers name each line the rule must flag.
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <unistd.h>

std::mutex mu;

int main() {
  pid_t pid = fork();
  if (pid == 0) {
    std::printf("hello from the child\n");  // forklint-expect: R1
    std::string banner = "child";           // forklint-expect: R1
    char* buf = static_cast<char*>(malloc(64));  // forklint-expect: R1
    mu.lock();                              // forklint-expect: R1
    (void)buf;
    execl("/bin/true", "true", (char*)nullptr);
    perror("execl");  // post-exec error path: out of R1 scope
    _exit(127);
  }
  waitpid(pid, nullptr, 0);
  return 0;
}
