// Golden fixture: R2 negative — every descriptor is born CLOEXEC (or the
// flags come from a variable the rule cannot see through, which is
// deliberately not flagged: precision over recall).
#include <cstdio>
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

int OpenWithCallerFlags(const char* path, int flags) {
  return open(path, flags);  // indeterminate: caller may pass O_CLOEXEC
}

int main() {
  int fd = open("/tmp/forklint_fixture", O_RDONLY | O_CLOEXEC);
  int p[2];
  pipe2(p, O_CLOEXEC);
  int s = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  int c = accept4(s, nullptr, nullptr, SOCK_CLOEXEC);
  int d = fcntl(fd, F_DUPFD_CLOEXEC, 0);
  FILE* f = fopen("/tmp/forklint_fixture", "we");
  (void)c;
  (void)d;
  if (f != nullptr) {
    fclose(f);
  }
  return OpenWithCallerFlags("/tmp/x", O_RDONLY);
}
