// Golden fixture: R2 — descriptor creation without CLOEXEC.
#include <cstdio>
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

int main() {
  int fd = open("/tmp/forklint_fixture", O_RDONLY);  // forklint-expect: R2
  int p[2];
  pipe(p);                                           // forklint-expect: R2
  int s = socket(AF_INET, SOCK_STREAM, 0);           // forklint-expect: R2
  int c = accept(s, nullptr, nullptr);               // forklint-expect: R2
  int d = dup(fd);                                   // forklint-expect: R2
  FILE* f = fopen("/tmp/forklint_fixture", "w");     // forklint-expect: R2
  int fd2 = openat(AT_FDCWD, "x", O_RDONLY);         // forklint-expect: R2
  (void)c;
  (void)d;
  (void)fd2;
  if (f != nullptr) {
    fclose(f);
  }
  return 0;
}
