// Golden fixture: R3 negative — every fork result is bound or compared.
#include <unistd.h>

int main() {
  pid_t pid = fork();
  if (pid < 0) {
    return 1;
  }
  if (pid == 0) {
    _exit(0);
  }
  if (fork() == 0) {
    _exit(0);
  }
  waitpid(pid, nullptr, 0);
  return 0;
}
