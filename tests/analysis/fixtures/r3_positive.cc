// Golden fixture: R3 — fork()/vfork() return value ignored.
#include <unistd.h>

void FireAndForget() {
  fork();        // forklint-expect: R3
  (void)fork();  // forklint-expect: R3
}
