// Golden fixture: R4 negative — the child leaves via _exit() only.
#include <unistd.h>

int main(int argc, char** argv) {
  (void)argc;
  pid_t pid = fork();
  if (pid == 0) {
    if (chdir("/nonexistent") < 0) {
      _exit(1);
    }
    execv("/bin/true", argv);
    _exit(127);
  }
  waitpid(pid, nullptr, 0);
  return 0;
}
