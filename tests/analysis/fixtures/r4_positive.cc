// Golden fixture: R4 — exit() instead of _exit() on the child error path.
#include <cstdlib>
#include <unistd.h>

int main(int argc, char** argv) {
  (void)argc;
  pid_t pid = fork();
  if (pid == 0) {
    if (chdir("/nonexistent") < 0) {
      exit(1);  // forklint-expect: R4
    }
    execv("/bin/true", argv);
    exit(127);  // post-exec: out of R4 scope (already doomed error path)
  }
  waitpid(pid, nullptr, 0);
  return 0;
}
