// Golden fixture: R5 negative — the disciplined vfork child: everything
// resolved before the vfork, child only execs or _exits.
#include <unistd.h>

int Spawn(char** argv) {
  const char* target = "/bin/true";
  pid_t pid = vfork();
  if (pid == 0) {
    execv(target, argv);
    _exit(127);
  }
  waitpid(pid, nullptr, 0);
  return 0;
}
