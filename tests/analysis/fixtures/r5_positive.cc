// Golden fixture: R5 — a vfork child writing to (shared) memory and
// returning through the borrowed stack frame.
#include <unistd.h>

int g_ready;

int Spawn(char** argv) {
  pid_t pid = vfork();
  if (pid == 0) {
    g_ready = 1;   // forklint-expect: R5
    g_ready += 1;  // forklint-expect: R5
    return -1;     // forklint-expect: R5
  }
  waitpid(pid, nullptr, 0);
  (void)argv;
  return 0;
}
