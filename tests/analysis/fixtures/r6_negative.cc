// Golden fixture: R6 negative — reaped in scope, or ownership handed off.
#include <unistd.h>

void Reaper(pid_t pid);

void WaitsItself() {
  pid_t pid = fork();
  if (pid == 0) {
    _exit(0);
  }
  waitpid(pid, nullptr, 0);
}

pid_t ReturnsThePid() {
  pid_t pid = fork();
  if (pid == 0) {
    _exit(0);
  }
  return pid;  // caller inherits the reap obligation
}

void PassesThePid() {
  pid_t pid = fork();
  if (pid == 0) {
    _exit(0);
  }
  Reaper(pid);
}
