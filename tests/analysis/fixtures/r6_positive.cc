// Golden fixture: R6 — a forked child nobody ever reaps (zombie risk).
#include <unistd.h>

void LaunchHelper() {
  pid_t pid = fork();  // forklint-expect: R6
  if (pid == 0) {
    execl("/bin/true", "true", (char*)nullptr);
    _exit(127);
  }
  // Parent walks away: pid is never waited on, returned, stored, or passed.
}
