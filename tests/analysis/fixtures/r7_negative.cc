// Golden fixture: R7 negative — the same raw fork is legal when the file
// lives under src/spawn/ (the test analyzes this source under the display
// path "src/spawn/backend_fixture.cc").
#include <unistd.h>

int main() {
  pid_t pid = ::fork();
  if (pid == 0) {
    _exit(0);
  }
  waitpid(pid, nullptr, 0);
  return 0;
}
