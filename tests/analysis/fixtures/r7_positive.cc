// Golden fixture: R7 — raw fork outside src/spawn/ (this fixture's path is
// tests/analysis/fixtures/, which is outside the sanctioned directory).
#include <unistd.h>

int main() {
  pid_t pid = ::fork();  // forklint-expect: R7
  if (pid == 0) {
    _exit(0);
  }
  waitpid(pid, nullptr, 0);
  return 0;
}
