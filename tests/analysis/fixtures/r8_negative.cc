// Golden fixture: R8 negative — blocking signals in the child is fine
// (sigprocmask is async-signal-safe and survives exec); handler installation
// in the parent is out of scope.
#include <csignal>
#include <unistd.h>

int main(int argc, char** argv) {
  (void)argc;
  signal(SIGPIPE, SIG_IGN);  // parent: R8 does not apply
  pid_t pid = fork();
  if (pid == 0) {
    sigset_t set;
    sigemptyset(&set);
    sigaddset(&set, SIGINT);
    sigprocmask(SIG_BLOCK, &set, nullptr);
    execv("/bin/true", argv);
    _exit(127);
  }
  waitpid(pid, nullptr, 0);
  return 0;
}
