// Golden fixture: R8 — installing signal handlers between fork and exec.
#include <csignal>
#include <unistd.h>

int main(int argc, char** argv) {
  (void)argc;
  pid_t pid = fork();
  if (pid == 0) {
    signal(SIGPIPE, SIG_IGN);                   // forklint-expect: R8
    struct sigaction sa {};
    sigaction(SIGTERM, &sa, nullptr);           // forklint-expect: R8
    execv("/bin/true", argv);
    _exit(127);
  }
  waitpid(pid, nullptr, 0);
  return 0;
}
