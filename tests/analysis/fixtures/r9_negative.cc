// R9 negative fixture: every lock is released before the fork-reaching call —
// scoped guard block, explicit unlock, and a lock held only across a leaf
// call that cannot reach fork().
#include <mutex>
#include <unistd.h>

std::mutex g_mu;

void Leaf() {}

int SpawnWorker() {
  pid_t pid = fork();
  if (pid == 0) {
    _exit(0);
  }
  return pid;
}

int ScopedThenLaunch() {
  {
    std::lock_guard<std::mutex> guard(g_mu);
  }
  return SpawnWorker();
}

int UnlockThenLaunch() {
  g_mu.lock();
  g_mu.unlock();
  return SpawnWorker();
}

void LockedLeafCall() {
  std::lock_guard<std::mutex> guard(g_mu);
  Leaf();
}
