// R9 positive fixture: fork() reachable while a lock is held — once directly,
// once through a two-deep call chain (LockedLaunch -> LaunchViaHelper ->
// SpawnWorker -> fork), which only whole-program analysis can see.
#include <mutex>
#include <unistd.h>

std::mutex g_mu;

int SpawnWorker() {
  pid_t pid = fork();
  if (pid == 0) {
    _exit(0);
  }
  return pid;
}

int LaunchViaHelper() { return SpawnWorker(); }

void LockedLaunch() {
  std::lock_guard<std::mutex> guard(g_mu);
  LaunchViaHelper();  // forklint-expect: R9
}

void DirectForkUnderLock() {
  g_mu.lock();
  pid_t pid = fork();  // forklint-expect: R9
  if (pid == 0) {
    _exit(0);
  }
  g_mu.unlock();
}
