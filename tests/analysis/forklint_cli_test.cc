// End-to-end tests driving the BUILT forklint binary through the library's
// own capture API (the spawn layer dogfoods itself to test the linter that
// audits it). Binary and fixture locations are injected by CMake.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/spawn/command.h"

namespace forklift {
namespace {

#ifndef FORKLINT_BIN
#error "FORKLINT_BIN must be defined by the build"
#endif
#ifndef FORKLINT_FIXTURE_DIR
#error "FORKLINT_FIXTURE_DIR must be defined by the build"
#endif

constexpr const char* kBin = FORKLINT_BIN;
const std::string kFixtures = FORKLINT_FIXTURE_DIR;

TEST(ForklintCli, ExitCodeIsFindingCount) {
  // r3_positive.cc carries exactly two unchecked forks.
  auto r = RunAndCapture(kBin, {"--rules=R3", kFixtures + "/r3_positive.cc"});
  ASSERT_TRUE(r.ok()) << r.error().ToString();
  EXPECT_EQ(r->status.exit_code, 2) << r->stdout_data;
  EXPECT_NE(r->stdout_data.find("[R3]"), std::string::npos);
}

TEST(ForklintCli, CleanFileExitsZero) {
  auto r = RunAndCapture(kBin, {"--rules=R3", kFixtures + "/r3_negative.cc"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status.exit_code, 0) << r->stdout_data;
}

TEST(ForklintCli, SarifOutputIsWellFormed) {
  auto r = RunAndCapture(kBin, {"--format=sarif", kFixtures + "/r2_positive.cc"});
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r->stdout_data.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(r->stdout_data.find("\"ruleId\":\"R2\""), std::string::npos);
  EXPECT_NE(r->stdout_data.find("\"startLine\":"), std::string::npos);
}

TEST(ForklintCli, BaselineAcceptsKnownFindings) {
  std::string baseline = ::testing::TempDir() + "forklint_test_baseline.txt";
  {
    std::FILE* f = std::fopen(baseline.c_str(), "we");
    ASSERT_NE(f, nullptr);
    std::fputs("# test baseline\n", f);
    std::string entry = "R3 " + kFixtures + "/r3_positive.cc\n";
    std::fputs(entry.c_str(), f);
    std::fclose(f);
  }
  auto r = RunAndCapture(
      kBin, {"--rules=R3", "--baseline=" + baseline, kFixtures + "/r3_positive.cc"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status.exit_code, 0) << r->stdout_data;
  EXPECT_NE(r->stdout_data.find("2 baselined finding(s) accepted"), std::string::npos);
}

TEST(ForklintCli, UnknownRuleFails) {
  auto r = RunAndCapture(kBin, {"--rules=R99", kFixtures + "/r3_negative.cc"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status.exit_code, 255);
}

TEST(ForklintCli, MissingPathFails) {
  auto r = RunAndCapture(kBin, {"/nonexistent/forklint/input"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status.exit_code, 255);
}

TEST(ForklintCli, ListRules) {
  auto r = RunAndCapture(kBin, {"--list-rules"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status.exit_code, 0);
  for (const char* id :
       {"R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9", "R10", "R11", "R12"}) {
    EXPECT_NE(r->stdout_data.find(id), std::string::npos) << id;
  }
}

TEST(ForklintCli, ExitCodeCapsAt120) {
  // 300 unchecked forks used to exit 300 & 0xFF = 44 — a wrapped count that
  // reads as "44 findings" to CI. The cap pins any large count to 120.
  std::string big = ::testing::TempDir() + "forklint_many_findings.cc";
  {
    std::ofstream out(big, std::ios::trunc);
    ASSERT_TRUE(out.good());
    out << "void Many() {\n";
    for (int i = 0; i < 300; ++i) {
      out << "  fork();\n";
    }
    out << "}\n";
  }
  auto r = RunAndCapture(kBin, {"--rules=R3", big});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status.exit_code, 120) << r->stdout_data;
  EXPECT_NE(r->stdout_data.find("300 finding(s)"), std::string::npos);
  std::remove(big.c_str());
}

TEST(ForklintCli, ProjectModeRunsInterproceduralRules) {
  auto r = RunAndCapture(kBin, {"--project", "--rules=R9", kFixtures + "/r9_positive.cc"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status.exit_code, 2) << r->stdout_data;
  EXPECT_NE(r->stdout_data.find("[R9]"), std::string::npos);
  EXPECT_NE(r->stdout_data.find("note:"), std::string::npos) << "related locations in text";
  // The same file without --project stays silent: R9 is whole-program only.
  auto per_file = RunAndCapture(kBin, {"--rules=R9", kFixtures + "/r9_positive.cc"});
  ASSERT_TRUE(per_file.ok());
  EXPECT_EQ(per_file->status.exit_code, 0) << per_file->stdout_data;
}

TEST(ForklintCli, ProjectSarifCarriesRelatedLocations) {
  auto r = RunAndCapture(
      kBin, {"--project", "--rules=R9", "--format=sarif", kFixtures + "/r9_positive.cc"});
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r->stdout_data.find("\"relatedLocations\""), std::string::npos);
  EXPECT_NE(r->stdout_data.find("via call to SpawnWorker()"), std::string::npos);
}

TEST(ForklintCli, UpdateBaselineRegeneratesFile) {
  std::string baseline = ::testing::TempDir() + "forklint_regen_baseline.txt";
  std::remove(baseline.c_str());
  auto regen = RunAndCapture(kBin, {"--rules=R3", "--baseline=" + baseline,
                                    "--update-baseline", kFixtures + "/r3_positive.cc"});
  ASSERT_TRUE(regen.ok());
  EXPECT_EQ(regen->status.exit_code, 0) << regen->stdout_data;

  std::ifstream in(baseline);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("R3 " + kFixtures + "/r3_positive.cc"), std::string::npos)
      << buf.str();

  // The regenerated baseline makes the same invocation exit clean.
  auto gated = RunAndCapture(
      kBin, {"--rules=R3", "--baseline=" + baseline, kFixtures + "/r3_positive.cc"});
  ASSERT_TRUE(gated.ok());
  EXPECT_EQ(gated->status.exit_code, 0) << gated->stdout_data;
  std::remove(baseline.c_str());
}

TEST(ForklintCli, UpdateBaselineRequiresBaselinePath) {
  auto r = RunAndCapture(kBin, {"--update-baseline", kFixtures + "/r3_negative.cc"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status.exit_code, 255);
}

TEST(ForklintCli, ProjectCacheDirSpeedsSecondRunUnchanged) {
  std::string cache = ::testing::TempDir() + "forklint_cli_cache";
  auto first = RunAndCapture(kBin, {"--project", "--rules=R9", "--cache-dir=" + cache,
                                    kFixtures + "/r9_positive.cc"});
  ASSERT_TRUE(first.ok());
  auto second = RunAndCapture(kBin, {"--project", "--rules=R9", "--cache-dir=" + cache,
                                     kFixtures + "/r9_positive.cc"});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->status.exit_code, second->status.exit_code);
  EXPECT_EQ(first->stdout_data, second->stdout_data);
}

}  // namespace
}  // namespace forklift
