// End-to-end tests driving the BUILT forklint binary through the library's
// own capture API (the spawn layer dogfoods itself to test the linter that
// audits it). Binary and fixture locations are injected by CMake.
#include <gtest/gtest.h>

#include <string>

#include "src/spawn/command.h"

namespace forklift {
namespace {

#ifndef FORKLINT_BIN
#error "FORKLINT_BIN must be defined by the build"
#endif
#ifndef FORKLINT_FIXTURE_DIR
#error "FORKLINT_FIXTURE_DIR must be defined by the build"
#endif

constexpr const char* kBin = FORKLINT_BIN;
const std::string kFixtures = FORKLINT_FIXTURE_DIR;

TEST(ForklintCli, ExitCodeIsFindingCount) {
  // r3_positive.cc carries exactly two unchecked forks.
  auto r = RunAndCapture(kBin, {"--rules=R3", kFixtures + "/r3_positive.cc"});
  ASSERT_TRUE(r.ok()) << r.error().ToString();
  EXPECT_EQ(r->status.exit_code, 2) << r->stdout_data;
  EXPECT_NE(r->stdout_data.find("[R3]"), std::string::npos);
}

TEST(ForklintCli, CleanFileExitsZero) {
  auto r = RunAndCapture(kBin, {"--rules=R3", kFixtures + "/r3_negative.cc"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status.exit_code, 0) << r->stdout_data;
}

TEST(ForklintCli, SarifOutputIsWellFormed) {
  auto r = RunAndCapture(kBin, {"--format=sarif", kFixtures + "/r2_positive.cc"});
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r->stdout_data.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(r->stdout_data.find("\"ruleId\":\"R2\""), std::string::npos);
  EXPECT_NE(r->stdout_data.find("\"startLine\":"), std::string::npos);
}

TEST(ForklintCli, BaselineAcceptsKnownFindings) {
  std::string baseline = ::testing::TempDir() + "forklint_test_baseline.txt";
  {
    std::FILE* f = std::fopen(baseline.c_str(), "we");
    ASSERT_NE(f, nullptr);
    std::fputs("# test baseline\n", f);
    std::string entry = "R3 " + kFixtures + "/r3_positive.cc\n";
    std::fputs(entry.c_str(), f);
    std::fclose(f);
  }
  auto r = RunAndCapture(
      kBin, {"--rules=R3", "--baseline=" + baseline, kFixtures + "/r3_positive.cc"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status.exit_code, 0) << r->stdout_data;
  EXPECT_NE(r->stdout_data.find("2 baselined finding(s) accepted"), std::string::npos);
}

TEST(ForklintCli, UnknownRuleFails) {
  auto r = RunAndCapture(kBin, {"--rules=R99", kFixtures + "/r3_negative.cc"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status.exit_code, 255);
}

TEST(ForklintCli, MissingPathFails) {
  auto r = RunAndCapture(kBin, {"/nonexistent/forklint/input"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status.exit_code, 255);
}

TEST(ForklintCli, ListRules) {
  auto r = RunAndCapture(kBin, {"--list-rules"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status.exit_code, 0);
  for (const char* id : {"R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8"}) {
    EXPECT_NE(r->stdout_data.find(id), std::string::npos) << id;
  }
}

}  // namespace
}  // namespace forklift
