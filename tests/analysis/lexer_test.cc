// Lexer edge cases — exactly the constructs that would make a naive
// grep-based fork linter lie: fork() inside comments and strings, raw string
// literals, line continuations (including continuation of a // comment), and
// preprocessor directives.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/analysis/lexer.h"

namespace forklift {
namespace analysis {
namespace {

bool HasIdent(const LexedFile& lexed, const std::string& name) {
  return std::any_of(lexed.tokens.begin(), lexed.tokens.end(), [&](const Token& t) {
    return t.kind == TokKind::kIdent && t.text == name;
  });
}

TEST(Lexer, CommentContainingForkIsNotAToken) {
  LexedFile lexed = Lex("int a; // please fork() here\nint b; /* vfork() too */\n");
  EXPECT_FALSE(HasIdent(lexed, "fork"));
  EXPECT_FALSE(HasIdent(lexed, "vfork"));
  ASSERT_EQ(lexed.comments.size(), 2u);
  EXPECT_NE(lexed.comments[0].text.find("fork()"), std::string::npos);
  EXPECT_EQ(lexed.comments[0].line, 1);
  EXPECT_EQ(lexed.comments[1].line, 2);
}

TEST(Lexer, StringAndCharLiteralsAreOpaque) {
  LexedFile lexed = Lex("const char* s = \"fork( \\\" )\"; char c = '\\''; char d = '(';\n");
  EXPECT_FALSE(HasIdent(lexed, "fork"));
  // Unbalanced parens inside literals must not break bracket matching later:
  // count punct parens — there are none in this source.
  for (const auto& t : lexed.tokens) {
    if (t.kind == TokKind::kPunct) {
      EXPECT_NE(t.text, "(");
      EXPECT_NE(t.text, ")");
    }
  }
}

TEST(Lexer, RawStringSwallowsEverything) {
  LexedFile lexed = Lex("auto s = R\"(fork(); \" unbalanced ( )\"; int x;\n");
  EXPECT_FALSE(HasIdent(lexed, "fork"));
  // Delimited form with a quote-paren bomb inside.
  LexedFile d = Lex("auto t = R\"x(fork(); )\" still inside )x\"; int y = 1;\n");
  EXPECT_FALSE(HasIdent(d, "fork"));
  EXPECT_TRUE(HasIdent(d, "y"));
}

TEST(Lexer, LineContinuationExtendsLineComment) {
  // The backslash-newline glues the fork() call onto the comment line —
  // translation phase 2 runs before comment recognition.
  LexedFile lexed = Lex("// comment \\\nfork();\nint after;\n");
  EXPECT_FALSE(HasIdent(lexed, "fork"));
  EXPECT_TRUE(HasIdent(lexed, "after"));
  // The surviving identifier keeps its physical line number.
  for (const auto& t : lexed.tokens) {
    if (t.kind == TokKind::kIdent && t.text == "after") {
      EXPECT_EQ(t.line, 3);
    }
  }
}

TEST(Lexer, LineContinuationInsideIdentifier) {
  LexedFile lexed = Lex("for\\\nk();\n");
  ASSERT_FALSE(lexed.tokens.empty());
  EXPECT_EQ(lexed.tokens[0].text, "fork");
  EXPECT_EQ(lexed.tokens[0].line, 1);
}

TEST(Lexer, DirectivesAreSkippedIncludingContinuations) {
  LexedFile lexed = Lex(
      "#include <signal.h>\n"
      "#define SPAWN() \\\n  fork()\n"
      "int live;\n");
  EXPECT_FALSE(HasIdent(lexed, "fork"));
  EXPECT_FALSE(HasIdent(lexed, "include"));
  EXPECT_TRUE(HasIdent(lexed, "live"));
  for (const auto& t : lexed.tokens) {
    if (t.text == "live") {
      EXPECT_EQ(t.line, 4);
    }
  }
}

TEST(Lexer, MultiCharOperatorsStayWhole) {
  LexedFile lexed = Lex("a == b; p->q; std::x; n != 0; v <<= 2;\n");
  std::vector<std::string> ops;
  for (const auto& t : lexed.tokens) {
    if (t.kind == TokKind::kPunct && t.text != ";") {
      ops.push_back(t.text);
    }
  }
  EXPECT_EQ(ops, (std::vector<std::string>{"==", "->", "::", "!=", "<<="}));
}

TEST(Lexer, NumbersWithSeparatorsAndExponents) {
  LexedFile lexed = Lex("auto n = 1'000'000; auto f = 1.5e-3;\n");
  int numbers = 0;
  for (const auto& t : lexed.tokens) {
    if (t.kind == TokKind::kNumber) {
      ++numbers;
      EXPECT_TRUE(t.text == "1'000'000" || t.text == "1.5e-3") << t.text;
    }
  }
  EXPECT_EQ(numbers, 2);
}

TEST(Lexer, EncodingPrefixedLiterals) {
  LexedFile lexed = Lex("auto a = u8\"fork()\"; auto b = L'('; auto c = LR\"(fork())\";\n");
  EXPECT_FALSE(HasIdent(lexed, "fork"));
  int strings = 0;
  for (const auto& t : lexed.tokens) {
    strings += (t.kind == TokKind::kString) ? 1 : 0;
  }
  EXPECT_EQ(strings, 2);
}

TEST(Lexer, UnterminatedConstructsDoNotLoop) {
  // Robustness: these must terminate and not crash.
  (void)Lex("\"never closed\n");
  (void)Lex("/* never closed\n");
  (void)Lex("R\"(never closed\n");
  (void)Lex("'x\n");
  SUCCEED();
}

}  // namespace
}  // namespace analysis
}  // namespace forklift
