// Golden-fixture tests for the interprocedural rules R9–R12 (whole-program
// mode), plus project-mode behaviors the per-file tests cannot cover:
// suppressions against project findings, per-file rules riding along, the
// SARIF relatedLocations chain, and the summary cache.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/lexer.h"
#include "src/analysis/project.h"
#include "src/analysis/report.h"

namespace forklift {
namespace analysis {
namespace {

std::string FixturePath(const std::string& name) {
  return std::string(FORKLINT_FIXTURE_DIR) + "/" + name;
}

std::string ReadFixture(const std::string& name) {
  std::ifstream in(FixturePath(name), std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << name;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Same marker convention as rules_test.cc: trailing `// forklint-expect: RN`.
std::vector<std::pair<std::string, int>> ParseExpectations(const std::string& source) {
  std::vector<std::pair<std::string, int>> out;
  LexedFile lexed = Lex(source);
  for (const auto& c : lexed.comments) {
    size_t at = c.text.find("forklint-expect:");
    if (at == std::string::npos) {
      continue;
    }
    std::istringstream ids(c.text.substr(at + 16));
    std::string id;
    while (std::getline(ids, id, ',')) {
      size_t b = id.find_first_not_of(" \t");
      size_t e = id.find_last_not_of(" \t");
      if (b == std::string::npos) {
        continue;
      }
      std::string trimmed = id.substr(b, e - b + 1);
      bool well_formed = trimmed.size() >= 2 && trimmed[0] == 'R' &&
                         std::all_of(trimmed.begin() + 1, trimmed.end(),
                                     [](char ch) { return ch >= '0' && ch <= '9'; });
      if (well_formed) {
        out.emplace_back(trimmed, c.line);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

ProjectReport AnalyzeFixtureAsProject(const std::string& name, const std::string& rule_id,
                                      const std::string& display_path) {
  ProjectAnalyzer project;
  EXPECT_TRUE(project.EnableOnly({rule_id}).ok());
  return project.AnalyzeSources({{display_path, ReadFixture(name)}});
}

// Runs one project rule over a fixture-as-whole-program and compares findings
// against the fixture's markers.
void CheckProjectFixture(const std::string& name, const std::string& rule_id) {
  const std::string source = ReadFixture(name);
  ProjectReport report =
      AnalyzeFixtureAsProject(name, rule_id, "tests/analysis/fixtures/" + name);
  ASSERT_EQ(report.files.size(), 1u);
  std::vector<std::pair<std::string, int>> got;
  for (const auto& f : report.files[0].findings) {
    got.emplace_back(f.rule, f.line);
  }
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, ParseExpectations(source)) << "fixture " << name << " rule " << rule_id;
}

TEST(ProjectGolden, R9LockAcrossFork) {
  CheckProjectFixture("r9_positive.cc", "R9");
  CheckProjectFixture("r9_negative.cc", "R9");
}

TEST(ProjectGolden, R10TransitiveUnsafe) {
  CheckProjectFixture("r10_positive.cc", "R10");
  CheckProjectFixture("r10_negative.cc", "R10");
}

TEST(ProjectGolden, R11FdEscapeExec) {
  CheckProjectFixture("r11_positive.cc", "R11");
  CheckProjectFixture("r11_negative.cc", "R11");
}

TEST(ProjectGolden, R12ForkInThreaded) {
  CheckProjectFixture("r12_positive.cc", "R12");
  CheckProjectFixture("r12_negative.cc", "R12");
}

TEST(ProjectGolden, R12SparesSanctionedSpawnWrappers) {
  // The same threaded-program-with-fork source, displayed under src/spawn/,
  // is the sanctioned wrapper and must stay silent.
  ProjectReport report =
      AnalyzeFixtureAsProject("r12_positive.cc", "R12", "src/spawn/wrapper.cc");
  ASSERT_EQ(report.files.size(), 1u);
  EXPECT_TRUE(report.files[0].findings.empty());
}

TEST(ProjectMode, R9ChainSurvivesIntoSarifRelatedLocations) {
  // The acceptance case: a lock held across a two-deep call chain to fork,
  // with the chain reported via SARIF relatedLocations.
  ProjectAnalyzer project;
  ASSERT_TRUE(project.EnableOnly({"R9"}).ok());
  ProjectReport report = project.AnalyzeSources(
      {{"tests/analysis/fixtures/r9_positive.cc", ReadFixture("r9_positive.cc")}});
  ASSERT_EQ(report.files.size(), 1u);

  const Finding* chained = nullptr;
  for (const auto& f : report.files[0].findings) {
    if (f.message.find("LaunchViaHelper") != std::string::npos) {
      chained = &f;
    }
  }
  ASSERT_NE(chained, nullptr);
  // Lock site, the intermediate hop, and the fork site itself.
  ASSERT_EQ(chained->related.size(), 3u);
  EXPECT_NE(chained->related[0].message.find("lock acquired here"), std::string::npos);
  EXPECT_NE(chained->related[1].message.find("via call to SpawnWorker()"), std::string::npos);
  EXPECT_NE(chained->related[2].message.find("fork() happens here"), std::string::npos);

  const std::string sarif = RenderSarif(project.analyzer(), report.files);
  EXPECT_NE(sarif.find("\"relatedLocations\""), std::string::npos);
  EXPECT_NE(sarif.find("via call to SpawnWorker()"), std::string::npos);
}

TEST(ProjectMode, SuppressionsApplyToProjectFindings) {
  ProjectAnalyzer project;
  ASSERT_TRUE(project.EnableOnly({"R12"}).ok());
  const char* source = R"cc(
    void StartWorkers() {
      pthread_t tid;
      pthread_create(&tid, nullptr, Work, nullptr);
    }
    void SpawnJob() {
      pid_t pid = fork();  // forklint:ignore(R12)
      if (pid == 0) {
        _exit(0);
      }
    }
  )cc";
  ProjectReport report = project.AnalyzeSources({{"prog.cc", source}});
  ASSERT_EQ(report.files.size(), 1u);
  EXPECT_TRUE(report.files[0].findings.empty());
  EXPECT_EQ(report.files[0].suppressed, 1u);
}

TEST(ProjectMode, PerFileRulesStillRun) {
  ProjectAnalyzer project;  // all rules
  const char* source = R"cc(
    void Careless() {
      fork();
    }
  )cc";
  ProjectReport report = project.AnalyzeSources({{"careless.cc", source}});
  ASSERT_EQ(report.files.size(), 1u);
  bool saw_r3 = false;
  for (const auto& f : report.files[0].findings) {
    saw_r3 = saw_r3 || f.rule == "R3";
  }
  EXPECT_TRUE(saw_r3) << "per-file rules must ride along in project mode";
}

TEST(ProjectMode, CrossFileChainLinksTranslationUnits) {
  // The thread lives in one file, the fork in another: only the linked
  // program connects them.
  ProjectAnalyzer project;
  ASSERT_TRUE(project.EnableOnly({"R12"}).ok());
  ProjectReport report = project.AnalyzeSources({
      {"threads.cc", "void StartWorkers() { pthread_create(&tid, nullptr, Work, nullptr); }"},
      {"forker.cc", "void SpawnJob() { pid_t p = fork(); if (p == 0) { _exit(0); } }"},
  });
  ASSERT_EQ(report.files.size(), 2u);
  EXPECT_TRUE(report.files[0].findings.empty());
  ASSERT_EQ(report.files[1].findings.size(), 1u);
  EXPECT_EQ(report.files[1].findings[0].rule, "R12");
  ASSERT_EQ(report.files[1].findings[0].related.size(), 1u);
  EXPECT_EQ(report.files[1].findings[0].related[0].path, "threads.cc");
}

TEST(ProjectMode, SummaryCacheHitsOnSecondRunAndReportsMatch) {
  const auto cache_dir =
      std::filesystem::path(::testing::TempDir()) / "forklint_cache_test";
  std::filesystem::remove_all(cache_dir);

  ProjectAnalyzer project;
  ASSERT_TRUE(project.EnableOnly({"R9", "R10", "R11", "R12"}).ok());
  project.set_cache_dir(cache_dir.string());

  const std::vector<std::string> paths = {FixturePath("r9_positive.cc"),
                                          FixturePath("r10_positive.cc"),
                                          FixturePath("r12_positive.cc")};
  auto first = project.AnalyzeFiles(paths);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->cache_hits, 0u);
  EXPECT_EQ(first->cache_misses, paths.size());

  auto second = project.AnalyzeFiles(paths);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->cache_hits, paths.size());
  EXPECT_EQ(second->cache_misses, 0u);

  ASSERT_EQ(first->files.size(), second->files.size());
  for (size_t i = 0; i < first->files.size(); ++i) {
    const auto& a = first->files[i];
    const auto& b = second->files[i];
    ASSERT_EQ(a.findings.size(), b.findings.size()) << a.path;
    for (size_t j = 0; j < a.findings.size(); ++j) {
      EXPECT_EQ(a.findings[j].rule, b.findings[j].rule);
      EXPECT_EQ(a.findings[j].line, b.findings[j].line);
      EXPECT_EQ(a.findings[j].message, b.findings[j].message);
      EXPECT_EQ(a.findings[j].related.size(), b.findings[j].related.size());
    }
  }
  std::filesystem::remove_all(cache_dir);
}

}  // namespace
}  // namespace analysis
}  // namespace forklift
