// Golden-fixture tests for forklint rules R1–R8. Each fixture marks the lines
// its rule must flag with a trailing `// forklint-expect: RN` comment; the
// test requires the analyzer's findings to match the marked (rule, line) set
// exactly — no misses, no extras. Negative fixtures carry no markers and must
// produce zero findings.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/analyzer.h"
#include "src/analysis/lexer.h"

namespace forklift {
namespace analysis {
namespace {

std::string ReadFixture(const std::string& name) {
  std::string path = std::string(FORKLINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// (rule, line) pairs from `// forklint-expect: R1[,R2]` markers, which sit on
// the same line as the code they annotate.
std::vector<std::pair<std::string, int>> ParseExpectations(const std::string& source) {
  std::vector<std::pair<std::string, int>> out;
  LexedFile lexed = Lex(source);
  for (const auto& c : lexed.comments) {
    size_t at = c.text.find("forklint-expect:");
    if (at == std::string::npos) {
      continue;
    }
    std::istringstream ids(c.text.substr(at + 16));
    std::string id;
    while (std::getline(ids, id, ',')) {
      size_t b = id.find_first_not_of(" \t");
      size_t e = id.find_last_not_of(" \t");
      if (b == std::string::npos) {
        continue;
      }
      std::string trimmed = id.substr(b, e - b + 1);
      // Only well-formed ids (R + digits) count — prose mentioning the marker
      // in a header comment must not become a phantom expectation.
      bool well_formed = trimmed.size() >= 2 && trimmed[0] == 'R' &&
                         std::all_of(trimmed.begin() + 1, trimmed.end(),
                                     [](char ch) { return ch >= '0' && ch <= '9'; });
      if (well_formed) {
        out.emplace_back(trimmed, c.line);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

// Runs one rule over a fixture and compares findings against the markers.
void CheckFixture(const std::string& name, const std::string& rule_id,
                  const std::string& display_path = "") {
  std::string source = ReadFixture(name);
  Analyzer analyzer;
  ASSERT_TRUE(analyzer.EnableOnly({rule_id}).ok());
  std::string path = display_path.empty() ? "tests/analysis/fixtures/" + name : display_path;
  FileReport report = analyzer.AnalyzeSource(source, path);

  std::vector<std::pair<std::string, int>> got;
  for (const auto& f : report.findings) {
    got.emplace_back(f.rule, f.line);
  }
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, ParseExpectations(source)) << "fixture " << name << " rule " << rule_id;
}

TEST(ForklintGolden, R1ChildUnsafeCalls) {
  CheckFixture("r1_positive.cc", "R1");
  CheckFixture("r1_negative.cc", "R1");
}

TEST(ForklintGolden, R2Cloexec) {
  CheckFixture("r2_positive.cc", "R2");
  CheckFixture("r2_negative.cc", "R2");
}

TEST(ForklintGolden, R3UncheckedFork) {
  CheckFixture("r3_positive.cc", "R3");
  CheckFixture("r3_negative.cc", "R3");
}

TEST(ForklintGolden, R4ExitInChild) {
  CheckFixture("r4_positive.cc", "R4");
  CheckFixture("r4_negative.cc", "R4");
}

TEST(ForklintGolden, R5VforkAbuse) {
  CheckFixture("r5_positive.cc", "R5");
  CheckFixture("r5_negative.cc", "R5");
}

TEST(ForklintGolden, R6ZombieRisk) {
  CheckFixture("r6_positive.cc", "R6");
  CheckFixture("r6_negative.cc", "R6");
}

TEST(ForklintGolden, R7RawForkPolicy) {
  CheckFixture("r7_positive.cc", "R7");
  // The same source is clean when it lives under the sanctioned directory.
  CheckFixture("r7_negative.cc", "R7", "src/spawn/backend_fixture.cc");
}

TEST(ForklintGolden, R8SignalInChild) {
  CheckFixture("r8_positive.cc", "R8");
  CheckFixture("r8_negative.cc", "R8");
}

// The full rule set runs together: every positive fixture must still produce
// its rule's findings when all rules are enabled (no rule masks another).
TEST(ForklintGolden, AllRulesTogether) {
  Analyzer analyzer;
  const char* rules[] = {"R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8"};
  for (const char* rule : rules) {
    std::string name = std::string(1, 'r') + std::string(1, rule[1]) + "_positive.cc";
    std::string source = ReadFixture(name);
    FileReport report = analyzer.AnalyzeSource(source, "tests/analysis/fixtures/" + name);
    bool found = std::any_of(report.findings.begin(), report.findings.end(),
                             [&](const Finding& f) { return f.rule == rule; });
    EXPECT_TRUE(found) << "full rule set missed " << rule << " in " << name;
  }
}

TEST(ForklintGolden, UnknownRuleIdRejected) {
  Analyzer analyzer;
  EXPECT_FALSE(analyzer.EnableOnly({"R99"}).ok());
}

}  // namespace
}  // namespace analysis
}  // namespace forklift
