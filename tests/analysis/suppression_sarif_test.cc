// Coverage for the `// forklint:ignore` suppression mechanism and the JSON /
// SARIF output shapes. The SARIF checks parse the output with a minimal
// recursive-descent JSON validator (no parser dependency in the container) —
// the acceptance bar is "parses as JSON and carries rule id, path, line, and
// message for every finding".
#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "src/analysis/analyzer.h"
#include "src/analysis/report.h"

namespace forklift {
namespace analysis {
namespace {

// --- minimal JSON validator -------------------------------------------------

class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) {
      return false;
    }
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool Literal(const char* lit) {
    size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) {
      return false;
    }
    pos_ += n;
    return true;
  }
  bool String() {
    if (pos_ >= s_.size() || s_[pos_] != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) {
      return false;
    }
    ++pos_;
    return true;
  }
  bool Number() {
    size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Value() {
    SkipWs();
    if (pos_ >= s_.size()) {
      return false;
    }
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }
  bool Object() {
    ++pos_;  // {
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!String()) {
        return false;
      }
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != ':') {
        return false;
      }
      ++pos_;
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    if (pos_ >= s_.size() || s_[pos_] != '}') {
      return false;
    }
    ++pos_;
    return true;
  }
  bool Array() {
    ++pos_;  // [
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    if (pos_ >= s_.size() || s_[pos_] != ']') {
      return false;
    }
    ++pos_;
    return true;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

// --- suppression -------------------------------------------------------------

constexpr char kLeakyPipe[] = "void f() {\n  int p[2];\n  pipe(p);\n}\n";

TEST(Suppression, SameLineCommentSilencesTheFinding) {
  Analyzer analyzer;
  FileReport r = analyzer.AnalyzeSource(
      "void f() {\n  int p[2];\n  pipe(p);  // forklint:ignore(R2)\n}\n", "a.cc");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(Suppression, PrecedingLineCommentSilencesTheNextLine) {
  Analyzer analyzer;
  FileReport r = analyzer.AnalyzeSource(
      "void f() {\n  int p[2];\n  // forklint:ignore(R2) — deliberate leak\n  pipe(p);\n}\n",
      "a.cc");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(Suppression, WrongRuleIdDoesNotSuppress) {
  Analyzer analyzer;
  FileReport r = analyzer.AnalyzeSource(
      "void f() {\n  int p[2];\n  pipe(p);  // forklint:ignore(R5)\n}\n", "a.cc");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "R2");
  EXPECT_EQ(r.suppressed, 0u);
}

TEST(Suppression, BareIgnoreSilencesAllRules) {
  Analyzer analyzer;
  FileReport r = analyzer.AnalyzeSource(
      "void f() {\n  fork();  // forklint:ignore\n}\n", "a.cc");
  EXPECT_TRUE(r.findings.empty());
  // fork(); with no check trips R3, R6, and R7 — all silenced at once.
  EXPECT_EQ(r.suppressed, 3u);
}

TEST(Suppression, MultiRuleList) {
  Analyzer analyzer;
  FileReport r = analyzer.AnalyzeSource(
      "void f() {\n  fork();  // forklint:ignore(R3, R6)\n}\n", "a.cc");
  ASSERT_EQ(r.findings.size(), 1u);  // R7 survives
  EXPECT_EQ(r.findings[0].rule, "R7");
  EXPECT_EQ(r.suppressed, 2u);
}

TEST(Suppression, IgnoreNextAsTrailingCommentShieldsTheLineBelow) {
  Analyzer analyzer;
  // The marker sits on a line WITH code; plain `ignore` would shield that
  // line, `ignore-next` shields the pipe() below it.
  FileReport r = analyzer.AnalyzeSource(
      "void f() {\n  int p[2];  // forklint:ignore-next(R2)\n  pipe(p);\n}\n", "a.cc");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(Suppression, IgnoreNextDoesNotShieldItsOwnLine) {
  Analyzer analyzer;
  FileReport r = analyzer.AnalyzeSource(
      "void f() {\n  int p[2];\n  pipe(p);  // forklint:ignore-next(R2)\n}\n", "a.cc");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "R2");
}

TEST(Suppression, IgnoreNextWrongRuleDoesNotSuppress) {
  Analyzer analyzer;
  FileReport r = analyzer.AnalyzeSource(
      "void f() {\n  int p[2];  // forklint:ignore-next(R5)\n  pipe(p);\n}\n", "a.cc");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "R2");
  EXPECT_EQ(r.suppressed, 0u);
}

TEST(Suppression, UnsuppressedFindingStillReported) {
  Analyzer analyzer;
  FileReport r = analyzer.AnalyzeSource(kLeakyPipe, "a.cc");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "R2");
  EXPECT_EQ(r.findings[0].line, 3);
}

// --- output shapes -----------------------------------------------------------

std::vector<FileReport> LeakyReports() {
  Analyzer analyzer;
  return {analyzer.AnalyzeSource(kLeakyPipe, "src/demo/leak.cc")};
}

TEST(SarifOutput, ParsesAsJsonAndCarriesTheFinding) {
  Analyzer analyzer;
  std::string sarif = RenderSarif(analyzer, LeakyReports());
  EXPECT_TRUE(JsonValidator(sarif).Valid()) << sarif;
  EXPECT_NE(sarif.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\":\"forklint\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\":\"R2\""), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\":\"src/demo/leak.cc\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\":3"), std::string::npos);
  EXPECT_NE(sarif.find("pipe2(fds, O_CLOEXEC)"), std::string::npos);
}

TEST(SarifOutput, RuleCatalogListsAllTwelveRules) {
  Analyzer analyzer;
  std::string sarif = RenderSarif(analyzer, {});
  for (const char* id : {"R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9", "R10",
                         "R11", "R12"}) {
    EXPECT_NE(sarif.find("\"id\":\"" + std::string(id) + "\""), std::string::npos) << id;
  }
}

// A hand-built finding with related locations, as the interprocedural rules
// produce — exercises every renderer's chain output without a whole project.
std::vector<FileReport> ChainedReports() {
  FileReport r;
  r.path = "src/demo/chain.cc";
  Finding f;
  f.rule = "R9";
  f.path = r.path;
  f.line = 12;
  f.message = "call may reach fork() while a lock is held";
  f.related.push_back({"src/demo/chain.cc", 10, "lock acquired here"});
  f.related.push_back({"src/demo/other.cc", 4, "via call to Helper()"});
  f.related.push_back({"src/demo/other.cc", 7, "fork() happens here"});
  r.findings.push_back(std::move(f));
  return {r};
}

TEST(TextOutput, RelatedLocationsRenderAsNoteLines) {
  std::string text = RenderText(ChainedReports());
  EXPECT_NE(text.find("src/demo/chain.cc:12: [R9]"), std::string::npos);
  EXPECT_NE(text.find("  note: src/demo/chain.cc:10: lock acquired here"), std::string::npos);
  EXPECT_NE(text.find("  note: src/demo/other.cc:4: via call to Helper()"), std::string::npos);
  EXPECT_NE(text.find("  note: src/demo/other.cc:7: fork() happens here"), std::string::npos);
}

TEST(JsonOutput, RelatedLocationsCarriedAndStillValidJson) {
  std::string json = RenderJson(ChainedReports());
  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
  EXPECT_NE(json.find("\"related\":["), std::string::npos);
  EXPECT_NE(json.find("\"message\":\"via call to Helper()\""), std::string::npos);
  EXPECT_NE(json.find("\"path\":\"src/demo/other.cc\""), std::string::npos);
}

TEST(SarifOutput, RelatedLocationsCarriedAndStillValidJson) {
  Analyzer analyzer;
  std::string sarif = RenderSarif(analyzer, ChainedReports());
  EXPECT_TRUE(JsonValidator(sarif).Valid()) << sarif;
  EXPECT_NE(sarif.find("\"relatedLocations\":["), std::string::npos);
  EXPECT_NE(sarif.find("\"text\":\"fork() happens here\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\":7"), std::string::npos);
}

TEST(JsonOutput, FindingWithoutRelatedOmitsTheArray) {
  std::string json = RenderJson(LeakyReports());
  EXPECT_EQ(json.find("\"related\""), std::string::npos);
  std::string sarif;
  {
    Analyzer analyzer;
    sarif = RenderSarif(analyzer, LeakyReports());
  }
  EXPECT_EQ(sarif.find("\"relatedLocations\""), std::string::npos);
}

TEST(JsonOutput, ParsesAndCountsFindings) {
  std::string json = RenderJson(LeakyReports());
  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
  EXPECT_NE(json.find("\"rule\":\"R2\""), std::string::npos);
  EXPECT_NE(json.find("\"path\":\"src/demo/leak.cc\""), std::string::npos);
  EXPECT_NE(json.find("\"line\":3"), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

TEST(TextOutput, OneLinePerFindingPlusSummary) {
  std::string text = RenderText(LeakyReports());
  EXPECT_NE(text.find("src/demo/leak.cc:3: [R2]"), std::string::npos);
  EXPECT_NE(text.find("forklint: 1 finding(s)"), std::string::npos);
}

}  // namespace
}  // namespace analysis
}  // namespace forklift
