#include <gtest/gtest.h>
#include <unistd.h>

#include "src/benchlib/memtouch.h"
#include "src/benchlib/table.h"

namespace forklift {
namespace {

TEST(TablePrinterTest, CsvMatchesRows) {
  TablePrinter t({"a", "b"});
  t.AddRow({"1", "x"});
  t.AddRow({"2", "y"});
  EXPECT_EQ(t.ToCsv(), "a,b\n1,x\n2,y\n");
}

TEST(TablePrinterTest, CellFormatting) {
  EXPECT_EQ(TablePrinter::Cell(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Cell(3.14159, 0), "3");
  EXPECT_EQ(TablePrinter::Cell(static_cast<uint64_t>(42)), "42");
}

TEST(TablePrinterTest, PrintAlignsColumns) {
  TablePrinter t({"name", "v"});
  t.AddRow({"longer-name", "1"});
  // Render to a memstream and check the header pads to the widest cell.
  char* buf = nullptr;
  size_t len = 0;
  FILE* mem = open_memstream(&buf, &len);
  ASSERT_NE(mem, nullptr);
  t.Print(mem);
  std::fclose(mem);
  std::string out(buf, len);
  free(buf);
  EXPECT_NE(out.find("name       "), std::string::npos);  // padded header
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);  // separator line
}

TEST(HeapBallastTest, ResizeAllocatesAndZeroSizeClears) {
  HeapBallast b;
  EXPECT_EQ(b.bytes(), 0u);
  ASSERT_TRUE(b.Resize(1 << 20).ok());
  EXPECT_EQ(b.bytes(), 1u << 20);
  ASSERT_NE(b.data(), nullptr);
  // Every page was dirtied by Resize.
  for (size_t off = 0; off < b.bytes(); off += 4096) {
    EXPECT_EQ(b.data()[off], static_cast<uint8_t>(off >> 12));
  }
  ASSERT_TRUE(b.Resize(0).ok());
  EXPECT_EQ(b.bytes(), 0u);
}

TEST(HeapBallastTest, ResizeReplacesPrevious) {
  HeapBallast b;
  ASSERT_TRUE(b.Resize(1 << 20).ok());
  ASSERT_TRUE(b.Resize(2 << 20).ok());
  EXPECT_EQ(b.bytes(), 2u << 20);
  b.data()[0] = 99;
  b.TouchAll();
  EXPECT_EQ(b.data()[0], 0);  // TouchAll rewrites the pattern
}

}  // namespace
}  // namespace forklift
