#include "src/common/clock.h"

#include <gtest/gtest.h>
#include <time.h>

namespace forklift {
namespace {

TEST(ClockTest, MonotonicNeverGoesBackwards) {
  uint64_t prev = MonotonicNanos();
  for (int i = 0; i < 1000; ++i) {
    uint64_t now = MonotonicNanos();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

TEST(StopwatchTest, MeasuresSleeps) {
  Stopwatch sw;
  timespec ts{0, 20'000'000};  // 20ms
  ::nanosleep(&ts, nullptr);
  double ms = sw.ElapsedMillis();
  EXPECT_GE(ms, 19.0);
  EXPECT_LT(ms, 2000.0);  // loose upper bound: scheduler noise only
}

TEST(StopwatchTest, ResetRestarts) {
  Stopwatch sw;
  timespec ts{0, 5'000'000};
  ::nanosleep(&ts, nullptr);
  sw.Reset();
  EXPECT_LT(sw.ElapsedMillis(), 5.0);
}

TEST(StopwatchTest, UnitConversionsConsistent) {
  Stopwatch sw;
  timespec ts{0, 2'000'000};
  ::nanosleep(&ts, nullptr);
  uint64_t ns = sw.ElapsedNanos();
  // Re-reads advance, so compare loosely across units.
  EXPECT_NEAR(sw.ElapsedMicros(), static_cast<double>(ns) / 1e3, 1e3);
  EXPECT_NEAR(sw.ElapsedSeconds() * 1e6, sw.ElapsedMicros(), 1e3);
}

}  // namespace
}  // namespace forklift
