#include "src/common/env.h"

#include <gtest/gtest.h>

#include <cstring>

namespace forklift {
namespace {

TEST(ArgvBlockTest, NullTerminated) {
  ArgvBlock b({"ls", "-l", "/tmp"});
  ASSERT_EQ(b.size(), 3u);
  char* const* p = b.data();
  EXPECT_STREQ(p[0], "ls");
  EXPECT_STREQ(p[1], "-l");
  EXPECT_STREQ(p[2], "/tmp");
  EXPECT_EQ(p[3], nullptr);
}

TEST(ArgvBlockTest, EmptyBlockStillTerminated) {
  ArgvBlock b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.data()[0], nullptr);
}

TEST(ArgvBlockTest, AddRefreshesPointers) {
  ArgvBlock b;
  b.Add("a");
  b.Add("bb");
  EXPECT_STREQ(b.data()[0], "a");
  EXPECT_STREQ(b.data()[1], "bb");
  EXPECT_EQ(b.data()[2], nullptr);
}

TEST(EnvMapTest, SetGetUnset) {
  EnvMap env;
  env.Set("KEY", "value");
  EXPECT_TRUE(env.Has("KEY"));
  EXPECT_EQ(env.Get("KEY").value(), "value");
  env.Set("KEY", "other");
  EXPECT_EQ(env.Get("KEY").value(), "other");
  env.Unset("KEY");
  EXPECT_FALSE(env.Has("KEY"));
  EXPECT_FALSE(env.Get("KEY").has_value());
}

TEST(EnvMapTest, FromStringsParsesAndIgnoresMalformed) {
  EnvMap env = EnvMap::FromStrings({"A=1", "B=x=y", "NOEQ", "=empty", "C="});
  EXPECT_EQ(env.size(), 3u);
  EXPECT_EQ(env.Get("A").value(), "1");
  EXPECT_EQ(env.Get("B").value(), "x=y");  // only first '=' splits
  EXPECT_EQ(env.Get("C").value(), "");
}

TEST(EnvMapTest, ToStringsSortedDeterministic) {
  EnvMap env = EnvMap::FromStrings({"Z=9", "A=1", "M=5"});
  EXPECT_EQ(env.ToStrings(), (std::vector<std::string>{"A=1", "M=5", "Z=9"}));
}

TEST(EnvMapTest, RoundTripThroughBlock) {
  EnvMap env = EnvMap::FromStrings({"PATH=/bin", "HOME=/root"});
  ArgvBlock block = env.ToBlock();
  EnvMap back = EnvMap::FromBlock(block.data());
  EXPECT_EQ(back.ToStrings(), env.ToStrings());
}

TEST(EnvMapTest, FromCurrentSeesRealEnvironment) {
  ASSERT_EQ(setenv("FORKLIFT_TEST_VAR", "present", 1), 0);
  EnvMap env = EnvMap::FromCurrent();
  EXPECT_EQ(env.Get("FORKLIFT_TEST_VAR").value(), "present");
  unsetenv("FORKLIFT_TEST_VAR");
}

TEST(EnvMapTest, FromNullBlock) {
  EnvMap env = EnvMap::FromBlock(nullptr);
  EXPECT_EQ(env.size(), 0u);
}

}  // namespace
}  // namespace forklift
