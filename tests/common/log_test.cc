// Logf emission contract (single write, explicit truncation marker) and the
// thread-safe errno rendering that replaced std::strerror.
#include "src/common/log.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/strerror.h"

namespace forklift {
namespace {

// Swaps a pipe onto stderr around `fn` and returns everything written.
std::string CaptureStderr(const std::function<void()>& fn) {
  int fds[2];
  EXPECT_EQ(::pipe(fds), 0);
  int saved = ::dup(STDERR_FILENO);
  EXPECT_GE(saved, 0);
  EXPECT_GE(::dup2(fds[1], STDERR_FILENO), 0);
  ::close(fds[1]);

  fn();

  EXPECT_GE(::dup2(saved, STDERR_FILENO), 0);
  ::close(saved);
  std::string out;
  char buf[4096];
  for (;;) {
    ssize_t n = ::read(fds[0], buf, sizeof(buf));
    if (n <= 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fds[0]);
  return out;
}

TEST(LogTest, EmitsPrefixedSingleLine) {
  std::string out = CaptureStderr([] { Logf(LogLevel::kError, "answer %d", 42); });
  EXPECT_EQ(out, "[forklift E] answer 42\n");
}

TEST(LogTest, BelowLevelIsSuppressed) {
  LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  std::string out = CaptureStderr([] { Logf(LogLevel::kInfo, "quiet"); });
  SetLogLevel(saved);
  EXPECT_EQ(out, "");
}

// An overlong message must not be silently cut: the emission is capped at
// the buffer size and the tail is an explicit "...\n" marker.
TEST(LogTest, TruncationLeavesExplicitMarker) {
  std::string big(5000, 'x');
  std::string out =
      CaptureStderr([&] { Logf(LogLevel::kError, "%s", big.c_str()); });
  EXPECT_EQ(out.size(), 2048u);  // Logf's internal buffer, exactly
  EXPECT_EQ(out.substr(0, 13), "[forklift E] ");
  EXPECT_EQ(out.substr(out.size() - 4), "...\n");
  // Everything between prefix and marker is message payload, not garbage.
  EXPECT_EQ(out.substr(13, 10), "xxxxxxxxxx");
}

TEST(LogTest, ExactFitStillGetsNewline) {
  // A message that fills the buffer to one byte short of capacity renders
  // fully; anything at/over flips to the marker. Probe both sides.
  std::string fits(2048 - 13 - 1, 'y');  // prefix 13, newline 1
  std::string out = CaptureStderr([&] { Logf(LogLevel::kError, "%s", fits.c_str()); });
  EXPECT_EQ(out.size(), 2048u);
  EXPECT_EQ(out.back(), '\n');
  EXPECT_NE(out.substr(out.size() - 4), "...\n");

  std::string over(2048 - 13, 'z');
  out = CaptureStderr([&] { Logf(LogLevel::kError, "%s", over.c_str()); });
  EXPECT_EQ(out.size(), 2048u);
  EXPECT_EQ(out.substr(out.size() - 4), "...\n");
}

TEST(StrerrorTest, KnownErrnoMatchesLibc) {
  EXPECT_EQ(SafeStrerror(ENOENT), std::string(::strerror(ENOENT)));
  EXPECT_EQ(SafeStrerror(EAGAIN), std::string(::strerror(EAGAIN)));
}

TEST(StrerrorTest, UnknownErrnoIsNonEmpty) {
  std::string msg = SafeStrerror(123456);
  EXPECT_FALSE(msg.empty());
}

// The reason SafeStrerror exists: concurrent renderings must not shear each
// other through a shared static buffer. Run under TSan in the sanitizer CI.
TEST(StrerrorTest, ConcurrentRenderingsStayIntact) {
  const std::string want_noent = SafeStrerror(ENOENT);
  const std::string want_perm = SafeStrerror(EPERM);
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 2000; ++i) {
        if (t % 2 == 0) {
          ASSERT_EQ(SafeStrerror(ENOENT), want_noent);
        } else {
          ASSERT_EQ(SafeStrerror(EPERM), want_perm);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
}

}  // namespace
}  // namespace forklift
