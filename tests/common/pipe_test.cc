#include "src/common/pipe.h"

#include <fcntl.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include "src/common/syscall.h"

namespace forklift {
namespace {

TEST(PipeTest, DataFlowsThrough) {
  auto p = MakePipe();
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(WriteFull(p->write_end.get(), "hello", 5).ok());
  char buf[8] = {};
  auto n = ReadFull(p->read_end.get(), buf, 5);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 5u);
  EXPECT_STREQ(buf, "hello");
}

TEST(PipeTest, CloexecByDefault) {
  auto p = MakePipe();
  ASSERT_TRUE(p.ok());
  auto r = GetCloexec(p->read_end.get());
  auto w = GetCloexec(p->write_end.get());
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(w.ok());
  EXPECT_TRUE(*r);
  EXPECT_TRUE(*w);
}

TEST(PipeTest, CloexecOptOut) {
  auto p = MakePipe(/*cloexec=*/false);
  ASSERT_TRUE(p.ok());
  auto r = GetCloexec(p->read_end.get());
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
}

TEST(PipeTest, EofAfterWriterCloses) {
  auto p = MakePipe();
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(WriteFull(p->write_end.get(), "x", 1).ok());
  p->write_end.Reset();
  auto all = ReadAll(p->read_end.get());
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, "x");
}

TEST(SocketPairTest, Bidirectional) {
  auto sp = MakeSocketPair();
  ASSERT_TRUE(sp.ok());
  ASSERT_TRUE(WriteFull(sp->first.get(), "ping", 4).ok());
  char buf[4];
  auto n = ReadFull(sp->second.get(), buf, 4);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, 4), "ping");

  ASSERT_TRUE(WriteFull(sp->second.get(), "pong", 4).ok());
  auto m = ReadFull(sp->first.get(), buf, 4);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(std::string(buf, 4), "pong");
}

TEST(SocketPairTest, CloexecByDefault) {
  auto sp = MakeSocketPair();
  ASSERT_TRUE(sp.ok());
  auto c = GetCloexec(sp->first.get());
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(*c);
}

TEST(UniqueFdTest, MoveTransfersOwnership) {
  auto p = MakePipe();
  ASSERT_TRUE(p.ok());
  int raw = p->read_end.get();
  UniqueFd moved = std::move(p->read_end);
  EXPECT_EQ(moved.get(), raw);
  EXPECT_FALSE(p->read_end.valid());
}

TEST(UniqueFdTest, ResetCloses) {
  auto p = MakePipe();
  ASSERT_TRUE(p.ok());
  int raw = p->read_end.get();
  p->read_end.Reset();
  // The descriptor must now be invalid.
  EXPECT_LT(::fcntl(raw, F_GETFD), 0);
}

TEST(UniqueFdTest, ReleaseDisownsWithoutClosing) {
  auto p = MakePipe();
  ASSERT_TRUE(p.ok());
  int raw = p->read_end.Release();
  EXPECT_FALSE(p->read_end.valid());
  EXPECT_GE(::fcntl(raw, F_GETFD), 0);  // still open
  ::close(raw);
}

}  // namespace
}  // namespace forklift
